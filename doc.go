// Package unilocal is a Go reproduction of Amos Korman, Jean-Sébastien
// Sereni and Laurent Viennot, "Toward more localized local algorithms:
// removing assumptions concerning global knowledge" (PODC 2011; Distributed
// Computing 26(5-6), 2013).
//
// The repository implements the LOCAL model of distributed computing, the
// paper's pruning-algorithm framework, the transformers of Theorems 1-5
// (non-uniform to uniform, Monte Carlo to Las Vegas, weakly dominated
// parameters, fastest-of-k, and the strong-list-coloring construction), the
// Section 5.1 clique-product coloring, and the concrete algorithm stacks
// behind every row of the paper's Table 1 — Linial's color reduction,
// batched color reductions, MIS via color classes, Luby's MIS, H-partition
// MIS for bounded arboricity, sequential greedy MIS, line-graph matching
// and edge coloring, and ruling sets.
//
// See DESIGN.md for the system inventory, the simulation-engine
// architecture (CSR graph storage, flat message lanes, active-node
// frontier, persistent worker pool — DESIGN.md §2) and the per-experiment
// index (§3), EXPERIMENTS.md for measured reproductions of Table 1 and
// Figure 1, and the examples/ directory for runnable entry points. The
// implementation lives under internal/; the benchmark harness
// (bench_test.go, cmd/) is the top-level interface for regenerating the
// paper's evaluation, and the declarative scenario corpus under scenarios/
// (DESIGN.md §2.7, cmd/localbench -scenarios, cmd/scenarioctl) opens the
// workload beyond the hard-coded experiment set. The same scenario stack is
// served by the long-lived cmd/localserved service (internal/serve,
// DESIGN.md §2.8): clients POST one spec each and receive the deterministic
// document, with request cancellation threaded into the engine's round loop
// and the graph corpus bounded by LRU eviction. With -spool the service
// additionally mounts the durable async job API (internal/job, DESIGN.md
// §2.10): submissions are journaled to a crash-safe spool, executions
// checkpoint at shard boundaries and resume across restarts — even after
// SIGKILL — with byte-identical recovered documents, progress streams over
// SSE, and duplicate submissions coalesce onto one execution.
package unilocal
