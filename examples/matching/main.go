// Sensor pairing without global knowledge.
//
// A field of sensors must pair up with one neighbour each (for mutual
// health checks), maximally: any unpaired sensor must have all neighbours
// paired. This is maximal matching — Table 1's row (vi). The paper's
// Theorem 1 with the P_MM pruner of Observation 3.3 makes the line-graph
// matching algorithm uniform: no sensor needs to know the size or the
// degree of the deployment.
package main

import (
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "matching:", err)
		os.Exit(1)
	}
}

func run() error {
	// The deployment: a torus-shaped sensor grid with some random long
	// links (maintenance robots' docking paths).
	torus, err := graph.Torus(20, 25)
	if err != nil {
		return err
	}
	extra, err := graph.GNP(torus.N(), 0.002, 5)
	if err != nil {
		return err
	}
	b := graph.NewBuilder(torus.N())
	for u := 0; u < torus.N(); u++ {
		for _, v := range torus.Neighbors(u) {
			if u < int(v) {
				b.AddEdge(u, int(v))
			}
		}
		for _, v := range extra.Neighbors(u) {
			if u < int(v) {
				b.AddEdge(u, int(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return err
	}

	baseline := engines.NonUniformMatching(engines.GraphParams(g))
	uniform := engines.UniformMatching()

	resBase, err := local.Run(g, baseline, local.Options{Seed: 2})
	if err != nil {
		return err
	}
	resUni, err := local.Run(g, uniform, local.Options{Seed: 2})
	if err != nil {
		return err
	}
	for name, res := range map[string]*local.Result{"non-uniform": resBase, "uniform": resUni} {
		if err := problems.ValidMaximalMatching(g, res.Outputs); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		paired := 0
		for _, o := range res.Outputs {
			if c, ok := o.(problems.EdgeClaim); ok && c.Claimed() {
				paired++
			}
		}
		fmt.Printf("%-12s rounds=%4d  paired sensors=%d/%d\n", name, res.Rounds, paired, g.N())
	}
	fmt.Printf("\nuniform/non-uniform round ratio: %.2f\n",
		float64(resUni.Rounds)/float64(resBase.Rounds))
	return nil
}
