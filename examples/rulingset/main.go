// Cluster-head election in a network of unknown size (Las Vegas, Theorem 2).
//
// An ad-hoc deployment elects cluster heads: heads must not be adjacent,
// and every node must be within β hops of a head — a (2, β)-ruling set.
// The natural randomized algorithm (Luby's MIS on the β-th power graph)
// needs the network size to pick its round budget; the paper's Theorem 2
// removes the assumption, converting the weak Monte Carlo algorithm into a
// uniform Las Vegas one whose output is ALWAYS correct and whose expected
// running time matches the budgeted baseline.
package main

import (
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rulingset:", err)
		os.Exit(1)
	}
}

func run() error {
	const beta = 2
	// The deployment grows in waves; nobody updated the configured size.
	g, err := graph.GNP(1500, 7.0/1499.0, 11)
	if err != nil {
		return err
	}

	lv := engines.LasVegasRulingSet(beta)
	fmt.Printf("uniform Las Vegas (2,%d)-ruling set on %d nodes (size unknown to nodes)\n\n", beta, g.N())
	fmt.Println("seed | rounds | heads | validity")
	total := 0
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		res, err := local.Run(g, lv, local.Options{Seed: seed})
		if err != nil {
			return err
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return err
		}
		if err := problems.ValidRulingSet(g, in, 2, beta); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		heads := 0
		for _, b := range in {
			if b {
				heads++
			}
		}
		total += res.Rounds
		fmt.Printf("%4d | %6d | %5d | ok (every node ≤ %d hops from a head)\n", seed, res.Rounds, heads, beta)
	}
	fmt.Printf("\naverage running time over %d runs: %.1f rounds — the Las Vegas distribution\n", seeds, float64(total)/seeds)
	fmt.Println("(correctness held on every run: Theorem 2 trades the Monte Carlo failure risk for run-time variance)")
	return nil
}
