// Quickstart: compute a maximal independent set with ZERO global knowledge.
//
// The nodes of the network know only their own identity and their
// neighbours — not n, not Δ, not the arboricity. The paper's Theorem 1
// turns the non-uniform colormis stack (which needs upper bounds on Δ and
// on the identity space) into a uniform algorithm with the same asymptotic
// running time; this example runs both and compares them.
package main

import (
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A random network: 1000 nodes, average degree 8, shuffled identities
	// drawn from a space far larger than n (nobody can infer n from them).
	g, err := graph.GNP(1000, 8.0/999.0, 42)
	if err != nil {
		return err
	}
	g, err = graph.WithShuffledIDs(g, 1<<30, 7)
	if err != nil {
		return err
	}

	// The baseline needs to be told Δ and the identity bound m. The exact
	// regime advertises the measured parameters verbatim.
	baseline := engines.NonUniformMISDelta(engines.GraphParams(g))
	resBase, err := local.Run(g, baseline, local.Options{Seed: 1})
	if err != nil {
		return err
	}

	// The uniform algorithm is told NOTHING.
	uniform := engines.UniformMISDelta()
	resUni, err := local.Run(g, uniform, local.Options{Seed: 1})
	if err != nil {
		return err
	}

	for name, res := range map[string]*local.Result{"non-uniform": resBase, "uniform": resUni} {
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return err
		}
		if err := problems.ValidMIS(g, in); err != nil {
			return fmt.Errorf("%s produced an invalid MIS: %w", name, err)
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		fmt.Printf("%-12s  rounds=%4d  messages=%8d  |MIS|=%d\n", name, res.Rounds, res.Messages, size)
	}
	fmt.Printf("\nuniform/non-uniform round ratio: %.2f (Theorem 1: O(1) as n grows)\n",
		float64(resUni.Rounds)/float64(resBase.Rounds))
	return nil
}
