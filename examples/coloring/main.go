// Frequency assignment without global knowledge.
//
// A wireless mesh must assign frequencies (colors) so that neighbouring
// stations never share one. No station knows the size of the network or its
// maximum degree. This example runs the paper's two uniform coloring
// constructions:
//
//   - Theorem 5 (strong list coloring): a uniform O(Δ²)-coloring in
//     O(log* m) rounds, from Linial's non-uniform reduction;
//   - Section 5.1 (clique product): a uniform (deg+1)-coloring driven by a
//     uniform MIS — each station's frequency index never exceeds its own
//     degree + 1, ideal when degrees vary wildly.
package main

import (
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coloring:", err)
		os.Exit(1)
	}
}

func run() error {
	// A city-like mesh: dense core (clique), suburban grid, and long feeder
	// lines — degrees range from 2 to 30 in one network.
	core := graph.Complete(30)
	grid := graph.Grid(12, 12)
	feeders := graph.Caterpillar(40, 2)
	g := graph.DisjointUnion(core, grid, feeders)

	quad, err := engines.UniformQuadColoring()
	if err != nil {
		return err
	}
	degPlus1 := engines.UniformDegPlusOneColoring(engines.LubyMIS())

	for _, tc := range []struct {
		name string
		algo local.Algorithm
	}{
		{"Theorem 5, O(Δ²) colors, O(log* m) rounds", quad},
		{"Section 5.1, deg+1 colors via uniform MIS", degPlus1},
	} {
		res, err := local.Run(g, tc.algo, local.Options{Seed: 3})
		if err != nil {
			return err
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			return err
		}
		if err := problems.ValidColoring(g, colors, 0); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		fmt.Printf("%-45s rounds=%4d  colors used ≤ %4d (Δ=%d)\n",
			tc.name, res.Rounds, problems.MaxColor(colors), g.MaxDegree())
	}

	// The Section 5.1 guarantee is per-node: check it explicitly.
	res, err := local.Run(g, degPlus1, local.Options{Seed: 3})
	if err != nil {
		return err
	}
	colors, err := problems.Ints(res.Outputs)
	if err != nil {
		return err
	}
	worst := 0
	for u := 0; u < g.N(); u++ {
		if colors[u] > g.Degree(u)+1 {
			return fmt.Errorf("node %d: color %d exceeds deg+1", u, colors[u])
		}
		if colors[u] > worst {
			worst = colors[u]
		}
	}
	fmt.Printf("\nper-node guarantee holds: every station fits inside its own deg+1 band (max band used: %d)\n", worst)
	return nil
}
