module github.com/unilocal/unilocal

go 1.24
