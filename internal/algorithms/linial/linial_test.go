package linial

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
	"github.com/unilocal/unilocal/internal/problems"
)

func runColoring(t *testing.T, g *graph.Graph, deltaHat int, mHat int64) ([]int, int) {
	t.Helper()
	res, err := local.Run(g, New(deltaHat, mHat), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	colors, err := problems.Ints(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return colors, res.Rounds
}

func TestLinialOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(33)
	gnp, err := graph.GNP(250, 0.03, 6)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := graph.RandomRegular(150, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := graph.WithShuffledIDs(graph.Grid(10, 10), 1<<30, 5)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(40),
		"cycle":    cyc,
		"clique":   graph.Complete(25),
		"star":     graph.Star(50),
		"grid":     graph.Grid(9, 13),
		"gnp":      gnp,
		"regular":  reg,
		"tree":     graph.RandomTree(120, 3),
		"shuffled": shuffled,
		"empty":    graph.Empty(7),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			deltaHat := g.MaxDegree()
			mHat := g.MaxIDValue()
			if mHat == 0 {
				mHat = 1
			}
			colors, rounds := runColoring(t, g, deltaHat, mHat)
			palette := int(PaletteSize(deltaHat, mHat))
			if err := problems.ValidColoring(g, colors, palette); err != nil {
				t.Fatal(err)
			}
			if want := RoundsBound(deltaHat, mHat); rounds > want {
				t.Errorf("rounds %d exceed bound %d", rounds, want)
			}
		})
	}
}

func TestLinialGoodGuessesLarger(t *testing.T) {
	// Over-estimating Δ and m must stay correct (that is the definition of a
	// good guess).
	g, err := graph.GNP(120, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, mult := range []int{1, 2, 10} {
		deltaHat := g.MaxDegree() * mult
		mHat := g.MaxIDValue() * int64(mult)
		colors, _ := runColoring(t, g, deltaHat, mHat)
		if err := problems.ValidColoring(g, colors, int(PaletteSize(deltaHat, mHat))); err != nil {
			t.Errorf("mult=%d: %v", mult, err)
		}
	}
}

func TestLinialBadGuessStillTerminates(t *testing.T) {
	g := graph.Complete(20) // Δ = 19
	algo := New(2, 40)      // hopeless degree guess
	res, err := local.Run(g, algo, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > RoundsBound(2, 40) {
		t.Errorf("bad-guess run took %d rounds, bound %d", res.Rounds, RoundsBound(2, 40))
	}
}

func TestPaletteQuadraticEnvelope(t *testing.T) {
	// PaletteSize(Δ̃, m̃) <= (3Δ̃+4)² across a wide grid: the O(Δ²) claim.
	for _, d := range []int{0, 1, 2, 3, 4, 6, 8, 16, 33, 64, 100, 255} {
		for _, m := range []int64{10, 1000, 1 << 20, 1 << 31, 1 << 45, 1 << 62} {
			p := PaletteSize(d, m)
			env := int64(3*d+4) * int64(3*d+4)
			if p > env && p > m {
				t.Errorf("palette(%d, %d) = %d exceeds both envelope %d and m", d, m, p, env)
			}
		}
	}
}

func TestRoundsLogStarEnvelope(t *testing.T) {
	// RoundsBound(Δ̃, m̃) <= log*(m̃) + 12 + small Δ̃ tail: the log* claim.
	for _, d := range []int{0, 1, 2, 4, 8, 32, 128, 1024} {
		for _, m := range []int64{1, 100, 1 << 16, 1 << 31, 1 << 48, 1 << 62} {
			r := RoundsBound(d, m)
			env := mathutil.LogStar(int(min64(m, 1<<62))) + 12
			if r > env {
				t.Errorf("rounds(%d, %d) = %d exceeds log* envelope %d", d, m, r, env)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestScheduleDeterministicAndDecreasing(t *testing.T) {
	steps, final := Schedule(8, 1<<31)
	steps2, final2 := Schedule(8, 1<<31)
	if len(steps) != len(steps2) || final != final2 {
		t.Fatal("schedule not deterministic")
	}
	k := int64(1 << 31)
	for _, st := range steps {
		if st.q*st.q >= k {
			t.Fatalf("non-decreasing step: q²=%d from k=%d", st.q*st.q, k)
		}
		if !mathutil.IsPrime(int(st.q)) {
			t.Fatalf("q=%d not prime", st.q)
		}
		if st.q < int64(8*st.d+1) {
			t.Fatalf("q=%d violates q >= Δd+1 for d=%d", st.q, st.d)
		}
		k = st.q * st.q
	}
	if k != final {
		t.Fatalf("final palette mismatch: %d vs %d", k, final)
	}
}

func TestReduceColorPairwiseProperty(t *testing.T) {
	// Core invariant: for any two distinct colors whose nodes see each other,
	// the reduced colors differ. Exercised via quick over random pairs.
	st := step{q: 11, d: 2} // supports k <= 1331, Δ̃d < 11 => Δ̃ <= 5 with d=2
	f := func(a, b uint16) bool {
		ca, cb := int64(a)%1331, int64(b)%1331
		if ca == cb {
			return true
		}
		ra := reduceColor(ca, []int64{cb}, st)
		rb := reduceColor(cb, []int64{ca}, st)
		if ra == rb {
			return false
		}
		return ra >= 0 && ra < 121 && rb >= 0 && rb < 121
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInitialColorFromInput(t *testing.T) {
	// Colors supplied via Input must be honoured (used by Theorem 5 phase 2).
	g := graph.Path(6)
	withInput := local.AlgorithmFunc{
		AlgoName: "linial-with-input",
		NewNode: func(info local.Info) local.Node {
			info.Input = int(info.ID%3) + 1 // improper! but in [1,3]
			return New(2, 3).New(info)
		},
	}
	// The run must terminate regardless (outputs may be improper since the
	// input coloring is improper).
	if _, err := local.Run(g, withInput, local.Options{}); err != nil {
		t.Fatal(err)
	}
	// And with a proper input coloring the output is proper.
	proper := local.AlgorithmFunc{
		AlgoName: "linial-proper-input",
		NewNode: func(info local.Info) local.Node {
			info.Input = int(info.ID%2) + 1 // consecutive path ids alternate
			return New(2, 2).New(info)
		},
	}
	res, err := local.Run(g, proper, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	colors, err := problems.Ints(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidColoring(g, colors, int(PaletteSize(2, 2))); err != nil {
		t.Error(err)
	}
}
