// Package linial implements Linial's iterated color reduction (Linial 1987,
// 1992; Szegedy–Vishwanathan 1993): starting from the unique identities (an
// m-coloring), each round maps the current k-coloring to a q²-coloring using
// degree-d polynomials over the field F_q, where q is a prime with
// q >= Δ̃·d + 1 and q^(d+1) >= k. Iterating reaches a palette of O(Δ̃²)
// colors after log*(m̃) + O(1) rounds.
//
// The algorithm is non-uniform in the sense of the paper: its code uses the
// guesses Δ̃ (maximum degree) and m̃ (maximum identity/initial color), both
// of which determine the reduction schedule followed in lockstep by every
// node. With a good guess the output is a proper coloring with palette
// PaletteSize(Δ̃, m̃); with a bad guess nodes still terminate within
// RoundsBound(Δ̃, m̃) rounds but the output may be improper — exactly the
// black-box contract consumed by the transformers of the paper.
package linial

import (
	"math"

	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// maxPalette bounds initial colors; it accommodates the packed identities of
// derived graphs (line graphs, clique products).
const maxPalette = int64(1) << 62

// step is one reduction round: polynomials of degree at most d over F_q.
type step struct {
	q int64
	d int
}

// Schedule returns the deterministic reduction schedule for the guesses and
// the final palette size. It is a pure function of (deltaHat, mHat), so all
// nodes compute the same schedule.
func Schedule(deltaHat int, mHat int64) ([]step, int64) {
	if deltaHat < 0 {
		deltaHat = 0
	}
	if mHat < 1 {
		mHat = 1
	}
	if mHat > maxPalette {
		mHat = maxPalette
	}
	k := mHat
	var steps []step
	for {
		q, d, ok := bestStep(deltaHat, k)
		if !ok || q*q >= k {
			return steps, k
		}
		steps = append(steps, step{q: q, d: d})
		k = q * q
	}
}

// bestStep returns the (q, d) minimizing the new palette q² subject to
// q prime, q >= deltaHat*d+1 and q^(d+1) >= k.
func bestStep(deltaHat int, k int64) (int64, int, bool) {
	var bestQ int64
	bestD := 0
	for d := 1; d <= 62; d++ {
		lowDeg := int64(deltaHat)*int64(d) + 1
		root := ceilRoot(k, d+1)
		q := int64(mathutil.NextPrime(int(max64(lowDeg, root))))
		if powAtLeast(q, d+1, k) {
			if bestQ == 0 || q < bestQ {
				bestQ, bestD = q, d
			}
		}
		if root <= 2 && q >= lowDeg {
			// Larger d cannot help: the degree term only grows.
			break
		}
	}
	return bestQ, bestD, bestQ != 0
}

// ceilRoot returns the least r >= 1 with r^e >= k.
func ceilRoot(k int64, e int) int64 {
	if k <= 1 {
		return 1
	}
	r := int64(math.Ceil(math.Pow(float64(k), 1/float64(e))))
	for r > 1 && powAtLeast(r-1, e, k) {
		r--
	}
	for !powAtLeast(r, e, k) {
		r++
	}
	return r
}

// powAtLeast reports whether b^e >= k without overflowing.
func powAtLeast(b int64, e int, k int64) bool {
	if b <= 1 {
		return b >= k || (b == 1 && k <= 1)
	}
	acc := int64(1)
	for i := 0; i < e; i++ {
		if acc >= (k+b-1)/b {
			return true
		}
		acc *= b
	}
	return acc >= k
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RoundsBound returns the exact number of rounds executed by New(deltaHat,
// mHat): one initial exchange plus one round per schedule step.
func RoundsBound(deltaHat int, mHat int64) int {
	steps, _ := Schedule(deltaHat, mHat)
	return len(steps) + 1
}

// PaletteSize returns the final palette size of New(deltaHat, mHat). For all
// guesses it is O(Δ̃² log² Δ̃); tests verify a concrete (3Δ̃+4)² envelope.
func PaletteSize(deltaHat int, mHat int64) int64 {
	_, k := Schedule(deltaHat, mHat)
	return k
}

// New returns the Linial reduction algorithm for the given guesses.
//
// Input convention: a node's initial color is its Input if that is an int or
// int64 in [1, m̃], and its identity otherwise. The output is the final
// color as an int in [1, PaletteSize(deltaHat, mHat)].
func New(deltaHat int, mHat int64) local.Algorithm {
	steps, _ := Schedule(deltaHat, mHat)
	return local.AlgorithmFunc{
		AlgoName: "linial-coloring",
		NewNode: func(info local.Info) local.Node {
			c := initialColor(info, mHat)
			return &node{info: info, steps: steps, mHat: mHat, color: c - 1} // 0-based internally
		},
	}
}

// initialColor extracts the starting color (1-based) from the node input.
func initialColor(info local.Info, mHat int64) int64 {
	var c int64
	switch v := info.Input.(type) {
	case int:
		c = int64(v)
	case int64:
		c = v
	default:
		c = info.ID
	}
	if c < 1 {
		c = 1
	}
	if c > mHat {
		// Bad guess for m: clamp so the node still terminates; the coloring
		// may be improper and is then handled by pruning.
		c = mHat
	}
	return c
}

type node struct {
	info  local.Info
	steps []step
	mHat  int64
	color int64 // current color, 0-based
}

func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r > 0 {
		st := n.steps[r-1]
		nbColors := make([]int64, 0, len(recv))
		for _, m := range recv {
			if c, ok := m.(int64); ok {
				nbColors = append(nbColors, c)
			}
		}
		n.color = reduceColor(n.color, nbColors, st)
	}
	if r == len(n.steps) {
		return nil, true
	}
	return local.Broadcast(n.color, n.info.Degree), false
}

// reduceColor maps a color in [0, k) to a color in [0, q²) such that any two
// adjacent distinct colors map to distinct colors.
func reduceColor(c int64, nbColors []int64, st step) int64 {
	q, d := st.q, st.d
	own := digitsBaseQ(c, q, d+1)
	polys := make([][]int64, 0, len(nbColors))
	for _, nc := range nbColors {
		if nc == c {
			// Improper input (possible under bad guesses): no x can work;
			// fall back to an arbitrary in-range color, pruning deals with
			// the consequences.
			return evalPoly(own, 0, q)
		}
		polys = append(polys, digitsBaseQ(nc, q, d+1))
	}
	// Two distinct degree-<=d polynomials agree on at most d points, so at
	// most len(polys)*d <= Δ̃d < q candidate x values are bad when the
	// degree guess is good.
	for x := int64(0); x < q; x++ {
		px := evalPoly(own, x, q)
		ok := true
		for _, p := range polys {
			if evalPoly(p, x, q) == px {
				ok = false
				break
			}
		}
		if ok {
			return x*q + px
		}
	}
	// Degree guess exceeded: arbitrary in-range fallback.
	return evalPoly(own, 0, q)
}

// digitsBaseQ returns the base-q digits of c (least significant first) as a
// polynomial coefficient vector of the given length.
func digitsBaseQ(c, q int64, coeffs int) []int64 {
	out := make([]int64, coeffs)
	for i := 0; i < coeffs && c > 0; i++ {
		out[i] = c % q
		c /= q
	}
	return out
}

// evalPoly evaluates the polynomial with the given coefficients at x over
// F_q (Horner's rule).
func evalPoly(coeffs []int64, x, q int64) int64 {
	var acc int64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}

func (n *node) Output() any { return int(n.color + 1) }

var _ local.Node = (*node)(nil)
