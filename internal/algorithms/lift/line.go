package lift

import (
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// LineGraph returns an algorithm that simulates algo on the line graph
// L(G) of the host graph. Each edge {u, v} is one virtual node, owned by
// its smaller-identity endpoint and carrying identity
// graph.PackIDs(min, max). One virtual round costs two host rounds (owner →
// shared endpoint → owner).
//
// The host output at every node is a []any with one entry per host port:
// the final output of the virtual node simulating that incident edge.
// Virtual inputs are the virtual identities (InputFn may override this by
// mapping the two endpoint identities to an input).
func LineGraph(algo local.Algorithm, inputFn func(a, b int64) any) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "line(" + algo.Name() + ")",
		NewNode: func(info local.Info) local.Node {
			return &lineNode{info: info, algo: algo, inputFn: inputFn, hostSeed: int64(info.Rand.Uint64())}
		},
	}
}

// edgeID returns the virtual identity of the edge between identities a, b.
func edgeID(a, b int64) int64 {
	if a > b {
		a, b = b, a
	}
	return graph.PackIDs(a, b)
}

// lineItem is one virtual message in flight: from virtual node src to
// virtual node dst.
type lineItem struct {
	src, dst int64
	payload  local.Message
}

// lineBundle travels one host hop. Direction A: owner → other endpoint
// (also carrying the owner's owned-edge status flags). Direction B: shared
// endpoint → owner of the destination edge.
type lineBundle struct {
	items []lineItem
	// doneEdges lists virtual nodes (owned by the sender) that have
	// terminated, with their final outputs.
	doneEdges []lineDone
}

type lineDone struct {
	edge int64
	out  any
}

// lineVirtual is one simulated line-graph node.
type lineVirtual struct {
	id    int64   // packed edge identity
	other int64   // the non-owner endpoint identity
	nbrs  []int64 // virtual neighbour identities, sorted
	node  local.Node
	t     int
	done  bool
	out   any
	inbox []local.Message // by virtual port, for the next virtual round
}

// step runs one virtual round on the accumulated inbox.
func (v *lineVirtual) step() []local.Message {
	inbox := v.inbox
	v.inbox = make([]local.Message, len(v.nbrs))
	send, done := v.node.Round(v.t, inbox)
	v.t++
	if done {
		v.done = true
		v.out = v.node.Output()
	}
	return send
}

type lineNode struct {
	info     local.Info
	algo     local.Algorithm
	inputFn  func(a, b int64) any
	hostSeed int64

	owned    map[int64]*lineVirtual // edges this host owns
	edgeDone map[int64]bool         // incident edges that terminated
	outputs  []any                  // by host port
	buffered map[int64][]lineItem   // phase-B items to forward, by shared endpoint = me
}

func (n *lineNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	switch {
	case r == 0:
		// Setup: broadcast my incident-edge list (my neighbours' identities).
		n.outputs = make([]any, n.info.Degree)
		n.edgeDone = make(map[int64]bool, n.info.Degree)
		if n.info.Degree == 0 {
			return nil, true
		}
		return local.Broadcast(append([]int64(nil), n.info.Neighbors...), n.info.Degree), false
	case r == 1:
		n.setup(recv)
		fallthrough
	default:
	}
	if (r-1)%2 == 0 {
		return n.phaseA(r, recv), n.allDone()
	}
	return n.phaseB(recv), false
}

// setup builds the virtual nodes owned by this host from the neighbour
// lists received in round 0.
func (n *lineNode) setup(recv []local.Message) {
	me := n.info.ID
	n.owned = make(map[int64]*lineVirtual)
	n.buffered = make(map[int64][]lineItem)
	for p, other := range n.info.Neighbors {
		if me > other {
			continue // the smaller endpoint owns the edge
		}
		otherList, _ := recv[p].([]int64)
		v := &lineVirtual{id: edgeID(me, other), other: other}
		for _, w := range n.info.Neighbors {
			if w != other {
				v.nbrs = append(v.nbrs, edgeID(me, w))
			}
		}
		for _, w := range otherList {
			if w != me {
				v.nbrs = append(v.nbrs, edgeID(other, w))
			}
		}
		sortIDs(v.nbrs)
		var input any = v.id
		if n.inputFn != nil {
			input = n.inputFn(me, other)
		}
		info := local.Info{
			ID:        v.id,
			Degree:    len(v.nbrs),
			Neighbors: append([]int64(nil), v.nbrs...),
			Input:     input,
			Rand:      childRand(n.hostSeed, v.id),
		}
		v.node = n.algo.New(info)
		v.inbox = make([]local.Message, len(v.nbrs))
		n.owned[v.id] = v
	}
}

// phaseA ingests phase-B deliveries, runs one virtual round on every live
// owned edge and emits bundles toward the shared endpoints.
func (n *lineNode) phaseA(r int, recv []local.Message) []local.Message {
	if r > 1 {
		n.ingest(recv)
	}
	outgoing := make(map[int64][]lineItem) // by endpoint identity to route via
	doneByOther := make(map[int64][]lineDone)
	for _, v := range n.owned {
		if v.done {
			continue
		}
		send := v.step()
		for q, msg := range send {
			if msg == nil {
				continue
			}
			dst := v.nbrs[q]
			// The shared endpoint of v.id and dst is the endpoint of v that
			// is also an endpoint of dst.
			a, b := graph.UnpackIDs(dst)
			var via int64
			if a == n.info.ID || b == n.info.ID {
				via = n.info.ID
			} else {
				via = v.other
			}
			item := lineItem{src: v.id, dst: dst, payload: msg}
			if via == n.info.ID {
				n.buffered[via] = append(n.buffered[via], item)
			} else {
				outgoing[via] = append(outgoing[via], item)
			}
		}
		if v.done {
			// Announce termination with the final output to both endpoints.
			out := lineDone{edge: v.id, out: v.out}
			n.recordDone(out)
			doneByOther[v.other] = append(doneByOther[v.other], out)
		}
	}
	send := make([]local.Message, n.info.Degree)
	for p, other := range n.info.Neighbors {
		items := outgoing[other]
		dones := doneByOther[other]
		if len(items) > 0 || len(dones) > 0 {
			send[p] = lineBundle{items: items, doneEdges: dones}
		}
	}
	return send
}

// phaseB forwards buffered items to the owners of their destination edges
// and delivers locally owned destinations.
func (n *lineNode) phaseB(recv []local.Message) []local.Message {
	for _, m := range recv {
		if b, ok := m.(lineBundle); ok {
			n.buffered[n.info.ID] = append(n.buffered[n.info.ID], b.items...)
			for _, d := range b.doneEdges {
				n.recordDone(d)
			}
		}
	}
	outgoing := make(map[int64][]lineItem)
	for _, item := range n.buffered[n.info.ID] {
		owner, _ := graph.UnpackIDs(item.dst) // the smaller endpoint owns
		if owner == n.info.ID {
			n.deliver(item)
			continue
		}
		// I am the other endpoint of dst, so its owner is my host neighbour.
		outgoing[owner] = append(outgoing[owner], item)
	}
	delete(n.buffered, n.info.ID)
	send := make([]local.Message, n.info.Degree)
	for p, other := range n.info.Neighbors {
		if items := outgoing[other]; len(items) > 0 {
			send[p] = lineBundle{items: items}
		}
	}
	return send
}

// deliver places an item into the inbox of a locally owned virtual node.
func (n *lineNode) deliver(item lineItem) {
	v := n.owned[item.dst]
	if v == nil || v.done {
		return
	}
	if q := portOf(v.nbrs, item.src); q >= 0 {
		v.inbox[q] = item.payload
	}
}

// ingest consumes phase-B deliveries addressed to owned edges.
func (n *lineNode) ingest(recv []local.Message) {
	for _, m := range recv {
		b, ok := m.(lineBundle)
		if !ok {
			continue
		}
		for _, item := range b.items {
			n.deliver(item)
		}
		for _, d := range b.doneEdges {
			n.recordDone(d)
		}
	}
}

// recordDone marks an incident edge as finished and stores its output under
// the matching host port.
func (n *lineNode) recordDone(d lineDone) {
	if n.edgeDone[d.edge] {
		return
	}
	n.edgeDone[d.edge] = true
	a, b := graph.UnpackIDs(d.edge)
	other := a
	if a == n.info.ID {
		other = b
	}
	if p := n.info.NeighborPort(other); p >= 0 {
		n.outputs[p] = d.out
	}
}

// allDone reports whether every incident edge has terminated.
func (n *lineNode) allDone() bool {
	return len(n.edgeDone) == n.info.Degree
}

func (n *lineNode) Output() any { return n.outputs }

var _ local.Node = (*lineNode)(nil)
