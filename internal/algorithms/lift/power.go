package lift

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
)

// Power returns an algorithm that simulates algo on the k-th power G^k of
// the host graph: every node simulates itself with the nodes at distance at
// most k as virtual neighbours. One virtual round costs k host rounds
// (flooding with hop budget k); setup costs k rounds to discover the ball.
//
// Host inputs, identities, randomness and outputs pass through unchanged.
func Power(k int, algo local.Algorithm) local.Algorithm {
	if k < 1 {
		k = 1
	}
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("power%d(%s)", k, algo.Name()),
		NewNode: func(info local.Info) local.Node {
			return &powerNode{info: info, k: k, algo: algo}
		},
	}
}

// powerFlood floods records through the k-hop neighbourhood. Each record is
// flooded once per virtual round; hops counts remaining forwards.
type powerFlood struct {
	records []powerRecord
}

// powerRecord is one node's contribution to the current flood wave.
type powerRecord struct {
	src  int64
	hops int // remaining hop budget
	// payload maps destination identity to message; absent keys mean no
	// message for that destination.
	payload map[int64]local.Message
	done    bool
}

type powerNode struct {
	info local.Info
	k    int
	algo local.Algorithm

	ball    []int64 // identities within distance k, sorted (virtual ports)
	sim     local.Node
	t       int // virtual round counter
	simDone bool
	out     any

	// seenWave tracks which sources' records were already forwarded in the
	// current virtual round; inbox accumulates deliveries for the next
	// virtual round; doneNbrs tracks terminated ball members.
	seenWave map[int64]bool
	inbox    map[int64]local.Message
	doneNbrs map[int64]bool
}

func (n *powerNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r < n.k {
		return n.discover(r, recv), false
	}
	if r == n.k {
		n.finishDiscovery(recv)
	}
	phase := (r - n.k) % n.k
	if phase == 0 {
		if r > n.k {
			n.harvest(recv)
		}
		send := n.stepAndFlood()
		// With k = 1 there are no forwarding phases; a node may stop once it
		// and its whole ball have terminated (its own done flag was flooded
		// the moment it terminated).
		done := n.k == 1 && n.simDone && n.allNeighborsDone()
		return send, done
	}
	send := n.forward(recv)
	if phase == n.k-1 && n.simDone && n.allNeighborsDone() {
		// Termination is only safe on a phase boundary, after this node's
		// final flood has fully propagated through the ball.
		return send, true
	}
	return send, false
}

// discover floods identity lists for k rounds to learn the ball.
func (n *powerNode) discover(r int, recv []local.Message) []local.Message {
	if r == 0 {
		n.seenWave = map[int64]bool{n.info.ID: true}
		return local.Broadcast([]int64{n.info.ID}, n.info.Degree)
	}
	var fresh []int64
	for _, m := range recv {
		ids, ok := m.([]int64)
		if !ok {
			continue
		}
		for _, id := range ids {
			if !n.seenWave[id] {
				n.seenWave[id] = true
				fresh = append(fresh, id)
			}
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	return local.Broadcast(fresh, n.info.Degree)
}

// finishDiscovery ingests the final discovery wave and instantiates the
// simulated node on the ball.
func (n *powerNode) finishDiscovery(recv []local.Message) {
	for _, m := range recv {
		if ids, ok := m.([]int64); ok {
			for _, id := range ids {
				n.seenWave[id] = true
			}
		}
	}
	for id := range n.seenWave {
		if id != n.info.ID {
			n.ball = append(n.ball, id)
		}
	}
	sortIDs(n.ball)
	info := local.Info{
		ID:        n.info.ID,
		Degree:    len(n.ball),
		Neighbors: append([]int64(nil), n.ball...),
		Input:     n.info.Input,
		Rand:      n.info.Rand,
	}
	n.sim = n.algo.New(info)
	n.inbox = make(map[int64]local.Message)
	n.doneNbrs = make(map[int64]bool)
}

// stepAndFlood runs one virtual round and starts this node's flood wave.
func (n *powerNode) stepAndFlood() []local.Message {
	n.seenWave = map[int64]bool{n.info.ID: true}
	var rec powerRecord
	if !n.simDone {
		inbox := make([]local.Message, len(n.ball))
		for q, id := range n.ball {
			inbox[q] = n.inbox[id]
		}
		clear(n.inbox)
		send, done := n.sim.Round(n.t, inbox)
		n.t++
		rec = powerRecord{src: n.info.ID, hops: n.k - 1}
		if len(send) > 0 {
			rec.payload = make(map[int64]local.Message, len(send))
			for q, msg := range send {
				if msg != nil {
					rec.payload[n.ball[q]] = msg
				}
			}
		}
		if done {
			n.simDone = true
			n.out = n.sim.Output()
			rec.done = true
		}
	} else {
		rec = powerRecord{src: n.info.ID, hops: n.k - 1, done: true}
	}
	return local.Broadcast(powerFlood{records: []powerRecord{rec}}, n.info.Degree)
}

// forward relays unseen records with decremented hop budgets and extracts
// deliveries addressed to this node.
func (n *powerNode) forward(recv []local.Message) []local.Message {
	var relay []powerRecord
	for _, m := range recv {
		f, ok := m.(powerFlood)
		if !ok {
			continue
		}
		for _, rec := range f.records {
			n.extract(rec)
			if !n.seenWave[rec.src] {
				n.seenWave[rec.src] = true
				if rec.hops > 0 {
					fwd := rec
					fwd.hops--
					relay = append(relay, fwd)
				}
			}
		}
	}
	if len(relay) == 0 {
		return nil
	}
	return local.Broadcast(powerFlood{records: relay}, n.info.Degree)
}

// harvest ingests the final wave of the previous virtual round.
func (n *powerNode) harvest(recv []local.Message) {
	for _, m := range recv {
		if f, ok := m.(powerFlood); ok {
			for _, rec := range f.records {
				n.extract(rec)
			}
		}
	}
}

// extract records deliveries and done flags addressed to this node.
func (n *powerNode) extract(rec powerRecord) {
	if rec.src == n.info.ID {
		return
	}
	if rec.done {
		n.doneNbrs[rec.src] = true
	}
	if msg, ok := rec.payload[n.info.ID]; ok && msg != nil {
		n.inbox[rec.src] = msg
	}
}

// allNeighborsDone reports whether every ball member has terminated.
func (n *powerNode) allNeighborsDone() bool {
	for _, id := range n.ball {
		if !n.doneNbrs[id] {
			return false
		}
	}
	return true
}

func (n *powerNode) Output() any { return n.out }

var _ local.Node = (*powerNode)(nil)
