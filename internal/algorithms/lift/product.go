package lift

import (
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// Product returns an algorithm that simulates algo on the clique product
// G × K_{deg+1} of Section 5.1 of the paper: every host node simulates
// deg+1 copies of itself; copies of one node form a clique, and copy i of u
// is adjacent to copy i of each neighbour v with i <= 1 + min(deg u,
// deg v). One virtual round costs one host round; setup costs one round to
// exchange degrees.
//
// Copy i of host u carries identity graph.PackIDs(Id(u), i), matching
// graph.ProductDegPlusOne. The host output is a []any with the outputs of
// copies 1..deg+1 in order.
func Product(algo local.Algorithm) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "product(" + algo.Name() + ")",
		NewNode: func(info local.Info) local.Node {
			return &productNode{info: info, algo: algo, hostSeed: int64(info.Rand.Uint64())}
		},
	}
}

// productBundle carries, for one host edge (u, v), the messages of all
// copies u_i to their counterparts v_i, plus termination flags.
type productBundle struct {
	// byCopy[i-1] is the message from copy i of the sender to copy i of the
	// receiver (nil = silence).
	byCopy []local.Message
	// doneAll reports that every copy of the sender has terminated.
	doneAll bool
}

// productVirtual is one simulated copy.
type productVirtual struct {
	copyIdx int // 1-based copy index
	node    local.Node
	nbrs    []int64 // virtual neighbour identities, sorted
	inbox   []local.Message
	t       int
	done    bool
	out     any
}

type productNode struct {
	info     local.Info
	algo     local.Algorithm
	hostSeed int64

	copies   []*productVirtual
	crossLim []int // crossLim[p] = 1+min(deg, deg of neighbour p)
	nbrDone  []bool
}

func (n *productNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r == 0 {
		return local.Broadcast(n.info.Degree, n.info.Degree), false
	}
	if r == 1 {
		n.setup(recv)
	} else {
		n.ingest(recv)
	}
	return n.stepAll()
}

// setup exchanges degrees and instantiates the copies.
func (n *productNode) setup(recv []local.Message) {
	deg := n.info.Degree
	n.crossLim = make([]int, deg)
	n.nbrDone = make([]bool, deg)
	for p := 0; p < deg; p++ {
		nbDeg, _ := recv[p].(int)
		n.crossLim[p] = min(deg, nbDeg) + 1
	}
	n.copies = make([]*productVirtual, deg+1)
	for i := 1; i <= deg+1; i++ {
		v := &productVirtual{copyIdx: i}
		// Clique siblings.
		for j := 1; j <= deg+1; j++ {
			if j != i {
				v.nbrs = append(v.nbrs, graph.PackIDs(n.info.ID, int64(j)))
			}
		}
		// Cross neighbours.
		for p := 0; p < deg; p++ {
			if i <= n.crossLim[p] {
				v.nbrs = append(v.nbrs, graph.PackIDs(n.info.Neighbors[p], int64(i)))
			}
		}
		sortIDs(v.nbrs)
		vid := graph.PackIDs(n.info.ID, int64(i))
		info := local.Info{
			ID:        vid,
			Degree:    len(v.nbrs),
			Neighbors: append([]int64(nil), v.nbrs...),
			Input:     n.info.Input,
			Rand:      childRand(n.hostSeed, vid),
		}
		v.node = n.algo.New(info)
		v.inbox = make([]local.Message, len(v.nbrs))
		n.copies[i-1] = v
	}
}

// ingest distributes received cross messages into copy inboxes.
func (n *productNode) ingest(recv []local.Message) {
	for p, m := range recv {
		b, ok := m.(productBundle)
		if !ok {
			continue
		}
		if b.doneAll {
			n.nbrDone[p] = true
		}
		for idx, msg := range b.byCopy {
			i := idx + 1
			if msg == nil || i > len(n.copies) {
				continue
			}
			v := n.copies[i-1]
			if v.done {
				continue
			}
			src := graph.PackIDs(n.info.Neighbors[p], int64(i))
			if q := portOf(v.nbrs, src); q >= 0 {
				v.inbox[q] = msg
			}
		}
	}
}

// stepAll advances every live copy one virtual round, delivering clique
// messages locally (with the mandatory one-round delay) and bundling cross
// messages per host edge.
func (n *productNode) stepAll() ([]local.Message, bool) {
	deg := n.info.Degree
	cross := make([][]local.Message, deg) // cross[p][i-1]
	for p := 0; p < deg; p++ {
		cross[p] = make([]local.Message, deg+1)
	}
	// Collect clique deliveries for the NEXT round before overwriting
	// inboxes: snapshot sends first.
	type sendRec struct {
		v    *productVirtual
		send []local.Message
	}
	sends := make([]sendRec, 0, len(n.copies))
	for _, v := range n.copies {
		if v.done {
			continue
		}
		inbox := v.inbox
		v.inbox = make([]local.Message, len(v.nbrs))
		send, done := v.node.Round(v.t, inbox)
		v.t++
		if done {
			v.done = true
			v.out = v.node.Output()
		}
		sends = append(sends, sendRec{v: v, send: send})
	}
	for _, sr := range sends {
		for q, msg := range sr.send {
			if msg == nil {
				continue
			}
			dst := sr.v.nbrs[q]
			a, b := graph.UnpackIDs(dst)
			if a == n.info.ID {
				// Clique sibling: local delivery into next-round inbox.
				sibling := n.copies[int(b)-1]
				if !sibling.done {
					src := graph.PackIDs(n.info.ID, int64(sr.v.copyIdx))
					if q2 := portOf(sibling.nbrs, src); q2 >= 0 {
						sibling.inbox[q2] = msg
					}
				}
				continue
			}
			if p := n.info.NeighborPort(a); p >= 0 {
				cross[p][sr.v.copyIdx-1] = msg
			}
		}
	}
	allDone := true
	for _, v := range n.copies {
		if !v.done {
			allDone = false
			break
		}
	}
	send := make([]local.Message, deg)
	for p := 0; p < deg; p++ {
		bundle := productBundle{byCopy: cross[p], doneAll: allDone}
		send[p] = bundle
	}
	if allDone && n.allNbrsDone() {
		return send, true
	}
	if allDone {
		// Keep pulsing the done flag until the neighbourhood has finished,
		// so late neighbours still learn it.
		return send, false
	}
	return send, false
}

func (n *productNode) allNbrsDone() bool {
	for _, d := range n.nbrDone {
		if !d {
			return false
		}
	}
	return true
}

// Output returns the outputs of copies 1..deg+1.
func (n *productNode) Output() any {
	outs := make([]any, len(n.copies))
	for i, v := range n.copies {
		outs[i] = v.out
	}
	return outs
}

var _ local.Node = (*productNode)(nil)
