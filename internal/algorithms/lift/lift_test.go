package lift

import (
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/linial"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func hostSuite(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(60, 0.08, 21)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(11)
	return map[string]*graph.Graph{
		"path":   graph.Path(9),
		"cycle":  cyc,
		"star":   graph.Star(7),
		"clique": graph.Complete(6),
		"grid":   graph.Grid(4, 5),
		"gnp":    gnp,
		"lonely": graph.Empty(3),
	}
}

// TestLineLiftMatchesExplicitLineGraph checks the lift's defining property:
// running a deterministic algorithm through the lift produces exactly the
// outputs of running it directly on the explicit line graph.
func TestLineLiftMatchesExplicitLineGraph(t *testing.T) {
	for name, g := range hostSuite(t) {
		t.Run(name, func(t *testing.T) {
			lg, edges, err := graph.LineGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			deltaL := lg.MaxDegree()
			mL := lg.MaxIDValue()
			if mL == 0 {
				mL = 1
			}
			algo := linial.New(deltaL, mL)

			direct, err := local.Run(lg, algo, local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			lifted, err := local.Run(g, LineGraph(algo, nil), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Compare per-edge outputs: the lift reports, at each host node,
			// the output of each incident edge by port.
			for i, e := range edges {
				u := int(e.U)
				p := -1
				for q := 0; q < g.Degree(u); q++ {
					if g.Neighbor(u, q) == int(e.V) {
						p = q
						break
					}
				}
				got := lifted.Outputs[u].([]any)[p]
				want := direct.Outputs[i]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("edge %v: lifted output %v != direct output %v", e, got, want)
				}
			}
			// Both endpoints must agree on each edge's output.
			for u := 0; u < g.N(); u++ {
				outs := lifted.Outputs[u].([]any)
				for p := 0; p < g.Degree(u); p++ {
					v := g.Neighbor(u, p)
					back := g.BackPort(u, p)
					if !reflect.DeepEqual(outs[p], lifted.Outputs[v].([]any)[back]) {
						t.Fatalf("endpoints of edge %d-%d disagree", u, v)
					}
				}
			}
		})
	}
}

func TestLineLiftRoundsOverhead(t *testing.T) {
	g := graph.Grid(6, 6)
	lg, _, err := graph.LineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	algo := linial.New(lg.MaxDegree(), lg.MaxIDValue())
	direct, err := local.Run(lg, algo, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := local.Run(g, LineGraph(algo, nil), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if limit := 2*direct.Rounds + 4; lifted.Rounds > limit {
		t.Errorf("lifted %d rounds > 2x direct %d + 4", lifted.Rounds, direct.Rounds)
	}
}

// TestLineLiftMatching runs colormis through the line lift: the MIS of
// L(G) is a maximal matching of G.
func TestLineLiftMatching(t *testing.T) {
	for name, g := range hostSuite(t) {
		t.Run(name, func(t *testing.T) {
			lg, _, err := graph.LineGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			deltaL := lg.MaxDegree()
			mL := lg.MaxIDValue()
			if mL == 0 {
				mL = 1
			}
			lifted, err := local.Run(g, LineGraph(colormis.New(deltaL, mL), nil), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Translate per-port MIS bits into matching claims.
			y := make([]any, g.N())
			for u := 0; u < g.N(); u++ {
				claim := problems.EdgeClaim{}
				outs := lifted.Outputs[u].([]any)
				for p := 0; p < g.Degree(u); p++ {
					if in, ok := outs[p].(bool); ok && in {
						claim = problems.NewEdgeClaim(g.ID(u), g.ID(g.Neighbor(u, p)))
						break
					}
				}
				y[u] = claim
			}
			if err := problems.ValidMaximalMatching(g, y); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPowerLiftMatchesExplicitPower(t *testing.T) {
	for name, g := range hostSuite(t) {
		for _, k := range []int{1, 2, 3} {
			t.Run(name, func(t *testing.T) {
				pg, err := graph.Power(g, k)
				if err != nil {
					t.Fatal(err)
				}
				algo := colormis.New(pg.MaxDegree(), pg.MaxIDValue())
				direct, err := local.Run(pg, algo, local.Options{})
				if err != nil {
					t.Fatal(err)
				}
				lifted, err := local.Run(g, Power(k, algo), local.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(direct.Outputs, lifted.Outputs) {
					t.Fatalf("k=%d: lifted outputs differ from direct outputs", k)
				}
				if limit := (k+1)*direct.Rounds + 3*k + 4; lifted.Rounds > limit {
					t.Errorf("k=%d: lifted %d rounds > limit %d (direct %d)", k, lifted.Rounds, limit, direct.Rounds)
				}
			})
		}
	}
}

func TestPowerLiftLubyRulingSet(t *testing.T) {
	g, err := graph.GNP(120, 0.05, 33)
	if err != nil {
		t.Fatal(err)
	}
	const beta = 2
	res, err := local.Run(g, Power(beta, luby.New()), local.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	// MIS of G^β is a (2,β)-ruling set of G (in fact (β+1,β)).
	if err := problems.ValidRulingSet(g, in, 2, beta); err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidRulingSet(g, in, beta+1, beta); err != nil {
		t.Fatal(err)
	}
}

func TestProductLiftMatchesExplicitProduct(t *testing.T) {
	for name, g := range hostSuite(t) {
		t.Run(name, func(t *testing.T) {
			pg, copies, err := graph.ProductDegPlusOne(g)
			if err != nil {
				t.Fatal(err)
			}
			algo := colormis.New(pg.MaxDegree(), pg.MaxIDValue())
			direct, err := local.Run(pg, algo, local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			lifted, err := local.Run(g, Product(algo), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for idx, c := range copies {
				got := lifted.Outputs[c.V].([]any)[c.I-1]
				if !reflect.DeepEqual(got, direct.Outputs[idx]) {
					t.Fatalf("copy %+v: lifted %v != direct %v", c, got, direct.Outputs[idx])
				}
			}
		})
	}
}

// TestProductLiftGivesColoring verifies the Section 5.1 correspondence on
// the lifted side: an MIS of the product graph selects exactly one copy per
// clique, and the selected indices form a (deg+1)-coloring.
func TestProductLiftGivesColoring(t *testing.T) {
	g, err := graph.GNP(80, 0.07, 41)
	if err != nil {
		t.Fatal(err)
	}
	pg, _, err := graph.ProductDegPlusOne(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, Product(colormis.New(pg.MaxDegree(), pg.MaxIDValue())), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	colors := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		outs := res.Outputs[u].([]any)
		for i, o := range outs {
			if in, ok := o.(bool); ok && in {
				if colors[u] != 0 {
					t.Fatalf("node %d has two selected copies", u)
				}
				colors[u] = i + 1
			}
		}
		if colors[u] == 0 {
			t.Fatalf("node %d has no selected copy", u)
		}
		if colors[u] > g.Degree(u)+1 {
			t.Fatalf("node %d color %d exceeds deg+1", u, colors[u])
		}
	}
	if err := problems.ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}
