// Package lift simulates LOCAL algorithms on derived graphs inside the host
// graph:
//
//   - LineGraph: run a vertex algorithm on L(G) (one virtual node per edge;
//     one virtual round costs two host rounds). Maximal matching is MIS on
//     L(G), and the paper observes (Section 5) that the Barenboim–Elkin
//     edge-coloring algorithms are vertex coloring on the line graph.
//
//   - Power: run a vertex algorithm on G^k (same nodes, edges between nodes
//     at distance <= k; one virtual round costs k host rounds). An MIS of
//     G^β is a (2,β)-ruling set of G.
//
//   - Product: run a vertex algorithm on the clique product G × K_{deg+1}
//     of Section 5.1 (each node simulates deg+1 copies of itself; one
//     virtual round costs one host round). Maximal independent sets of the
//     product are exactly (deg+1)-colorings of G.
//
// Virtual identities match the explicit constructions in the graph package
// (graph.LineGraph, graph.Power, graph.ProductDegPlusOne), so a lifted run
// and a direct run on the explicit derived graph are behaviourally
// identical; the tests verify this correspondence output-by-output.
package lift

import (
	"math/rand/v2"
	"sort"

	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// childRand derives a deterministic RNG for virtual node vid from a host
// seed drawn once at start-up.
func childRand(hostSeed int64, vid int64) *rand.Rand {
	return local.DeriveRand(hostSeed, vid, uint64(mathutil.SplitMix64(uint64(vid))))
}

// portOf returns the index of id in the sorted identity slice, or -1.
func portOf(ids []int64, id int64) int {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return i
	}
	return -1
}

func sortIDs(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
