// Package coloralgo assembles the non-uniform vertex-coloring algorithms of
// Table 1 from the Linial reduction and the batched color reductions:
//
//   - DeltaPlusOne: a (Δ̃+1)-coloring in O(Δ̃ log Δ̃ + log* m̃) rounds — the
//     stand-in for the Barenboim–Elkin '09 / Kuhn '09 row (which achieves
//     O(Δ + log* n); the extra log Δ̃ comes from the simpler halving
//     reduction, see DESIGN.md §4).
//
//   - Lambda: a λ(Δ̃+1)-coloring in O(Δ̃²/λ + log* m̃) rounds — the
//     trade-off row (more colors, fewer rounds).
//
// Both require the guesses Δ̃ and m̃ and terminate within their announced
// bounds for any guesses; correctness requires good guesses. BoundDelta and
// BoundM provide the monotone additive envelope f(Δ̃, m̃) = f₁(Δ̃) + f₂(m̃)
// consumed by the paper's Theorem 1 machinery (Observation 4.1: additive
// bounds have sequence number 1).
package coloralgo

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/linial"
	"github.com/unilocal/unilocal/internal/algorithms/reduce"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// composeSlack accounts for the stage hand-off rounds of local.Compose.
const composeSlack = 4

// StartPalette returns the palette produced by the Linial stage, saturated
// to int range.
func StartPalette(deltaHat int, mHat int64) int {
	p := linial.PaletteSize(deltaHat, mHat)
	if p > int64(1)<<31 {
		p = int64(1) << 31
	}
	return int(p)
}

// DeltaPlusOne returns the composed (Δ̃+1)-coloring algorithm. Input: unique
// identities (or an int initial color); output: int color in [1, Δ̃+1].
func DeltaPlusOne(deltaHat int, mHat int64) local.Algorithm {
	k := StartPalette(deltaHat, mHat)
	return local.Compose(
		fmt.Sprintf("coloring-Δ+1(Δ̃=%d)", deltaHat),
		local.Stage{Algo: linial.New(deltaHat, mHat)},
		local.Stage{Algo: reduce.ToDeltaPlusOne(k, deltaHat)},
	)
}

// DeltaPlusOneRounds bounds the running time of DeltaPlusOne.
func DeltaPlusOneRounds(deltaHat int, mHat int64) int {
	k := StartPalette(deltaHat, mHat)
	return linial.RoundsBound(deltaHat, mHat) + reduce.ToDeltaPlusOneRounds(k, deltaHat) + composeSlack
}

// Lambda returns the composed λ(Δ̃+1)-coloring algorithm.
func Lambda(lambda, deltaHat int, mHat int64) local.Algorithm {
	if lambda < 1 {
		lambda = 1
	}
	k := StartPalette(deltaHat, mHat)
	return local.Compose(
		fmt.Sprintf("coloring-λ(Δ+1)(λ=%d,Δ̃=%d)", lambda, deltaHat),
		local.Stage{Algo: linial.New(deltaHat, mHat)},
		local.Stage{Algo: reduce.Batched(k, lambda, deltaHat)},
	)
}

// LambdaPalette returns the number of colors used by Lambda.
func LambdaPalette(lambda, deltaHat int) int { return reduce.BatchedPalette(lambda, deltaHat) }

// LambdaRounds bounds the running time of Lambda.
func LambdaRounds(lambda, deltaHat int, mHat int64) int {
	k := StartPalette(deltaHat, mHat)
	return linial.RoundsBound(deltaHat, mHat) + reduce.BatchedRounds(k, lambda, deltaHat) + composeSlack
}

// PaletteEnvelope is a monotone envelope on the Linial palette: tests verify
// StartPalette(Δ̃, ·) <= (3Δ̃+4)².
func PaletteEnvelope(d int) int {
	if d < 0 {
		d = 0
	}
	return mathutil.SatMul(3*d+4, 3*d+4)
}

// BoundDelta is the ascending Δ̃-term of the additive running-time envelope
// of DeltaPlusOne: it dominates the halving reduction from the Linial
// palette plus all slack.
func BoundDelta(d int) int {
	if d < 0 {
		d = 0
	}
	perPass := mathutil.SatAdd(mathutil.SatMul(2, d+1), 3)
	passes := mathutil.CeilLog2(PaletteEnvelope(d)) + 2
	return mathutil.SatAdd(mathutil.SatMul(perPass, passes), 64)
}

// BoundM is the ascending m̃-term of the additive running-time envelope: it
// dominates the Linial stage (log* m̃ + O(1) rounds).
func BoundM(m int) int {
	if m < 1 {
		m = 1
	}
	return mathutil.LogStar(m) + 16
}

// LambdaBoundDelta is the ascending Δ̃-term for Lambda with the given λ.
func LambdaBoundDelta(lambda int, d int) int {
	if lambda < 1 {
		lambda = 1
	}
	if d < 0 {
		d = 0
	}
	return mathutil.SatAdd(mathutil.CeilDiv(PaletteEnvelope(d), lambda), 64)
}
