package coloralgo

import (
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	cyc, _ := graph.Cycle(19)
	gnp, err := graph.GNP(180, 0.04, 5)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := graph.RandomRegular(120, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := graph.WithShuffledIDs(graph.Grid(12, 12), 1<<29, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"path":    graph.Path(30),
		"cycle":   cyc,
		"clique":  graph.Complete(17),
		"star":    graph.Star(40),
		"gnp":     gnp,
		"regular": reg,
		"tree":    graph.RandomTree(100, 2),
		"bigIDs":  big,
	}
}

func TestDeltaPlusOneColoring(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			d := g.MaxDegree()
			m := g.MaxIDValue()
			res, err := local.Run(g, DeltaPlusOne(d, m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidColoring(g, colors, d+1); err != nil {
				t.Fatal(err)
			}
			if bound := DeltaPlusOneRounds(d, m); res.Rounds > bound {
				t.Errorf("rounds %d exceed composed bound %d", res.Rounds, bound)
			}
			if env := BoundDelta(d) + BoundM(int(m)); res.Rounds > env {
				t.Errorf("rounds %d exceed additive envelope %d", res.Rounds, env)
			}
		})
	}
}

func TestLambdaColoring(t *testing.T) {
	g, err := graph.RandomRegular(150, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, m := g.MaxDegree(), g.MaxIDValue()
	prevRounds := 1 << 30
	for _, lambda := range []int{1, 2, 4, 9} {
		res, err := local.Run(g, Lambda(lambda, d, m), local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidColoring(g, colors, LambdaPalette(lambda, d)); err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if bound := LambdaRounds(lambda, d, m); res.Rounds > bound {
			t.Errorf("λ=%d: rounds %d exceed bound %d", lambda, res.Rounds, bound)
		}
		if env := LambdaBoundDelta(lambda, d) + BoundM(int(m)); res.Rounds > env {
			t.Errorf("λ=%d: rounds %d exceed envelope %d", lambda, res.Rounds, env)
		}
		if res.Rounds > prevRounds+2 {
			t.Errorf("λ=%d: trade-off not monotone: %d after %d", lambda, res.Rounds, prevRounds)
		}
		prevRounds = res.Rounds
	}
}

func TestEnvelopesDominateComputedBounds(t *testing.T) {
	// The monotone additive envelopes must dominate the exact composed
	// bounds over a wide (Δ̃, m̃) grid — this is what makes the Theorem 1
	// budgets sufficient.
	for _, d := range []int{0, 1, 2, 3, 5, 8, 13, 21, 55, 144} {
		for _, m := range []int64{1, 7, 1 << 10, 1 << 20, 1 << 31, 1 << 45, 1 << 62} {
			if exact, env := DeltaPlusOneRounds(d, m), BoundDelta(d)+BoundM(int(min64(m, 1<<62))); exact > env {
				t.Errorf("Δ+1: exact(%d,%d)=%d > envelope %d", d, m, exact, env)
			}
			for _, lambda := range []int{1, 3, 10} {
				if exact, env := LambdaRounds(lambda, d, m), LambdaBoundDelta(lambda, d)+BoundM(int(min64(m, 1<<62))); exact > env {
					t.Errorf("λ: exact(λ=%d,%d,%d)=%d > envelope %d", lambda, d, m, exact, env)
				}
			}
		}
	}
}

func TestEnvelopesMonotone(t *testing.T) {
	prevD, prevM := 0, 0
	for d := 0; d < 300; d++ {
		if b := BoundDelta(d); b < prevD {
			t.Fatalf("BoundDelta not monotone at %d", d)
		} else {
			prevD = b
		}
	}
	for _, m := range []int{1, 2, 10, 1 << 10, 1 << 30, 1 << 62} {
		if b := BoundM(m); b < prevM {
			t.Fatalf("BoundM not monotone at %d", m)
		} else {
			prevM = b
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
