package seqmis

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func TestSeqMISOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(25)
	gnp, err := graph.GNP(150, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := graph.WithShuffledIDs(graph.Grid(8, 8), 100000, 6)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(40),
		"cycle":    cyc,
		"clique":   graph.Complete(30),
		"star":     graph.Star(25),
		"gnp":      gnp,
		"shuffled": shuffled,
		"empty":    graph.Empty(4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, err := local.Run(g, New(), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
			if m := int(g.MaxIDValue()); res.Rounds > Rounds(m) {
				t.Errorf("rounds %d exceed bound %d", res.Rounds, Rounds(m))
			}
		})
	}
}

func TestSeqMISEqualsGreedyByID(t *testing.T) {
	// On sequential identities the result must equal the sequential greedy
	// MIS by index.
	g, err := graph.GNP(80, 0.08, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, New(), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	want := problems.GreedyMIS(g, nil)
	for u := range want {
		if in[u] != want[u] {
			t.Fatalf("node %d: got %v, want greedy %v", u, in[u], want[u])
		}
	}
}

func TestSeqMISProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GNP(40, 0.12, seed)
		if err != nil {
			return false
		}
		res, err := local.Run(g, New(), local.Options{})
		if err != nil {
			return false
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTruncatedBudget(t *testing.T) {
	// With a hopeless guess the truncated variant halts inside its budget.
	g := graph.Path(300)
	res, err := local.Run(g, Truncated(4), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > Rounds(4) {
		t.Errorf("rounds %d exceed budget %d", res.Rounds, Rounds(4))
	}
	// With a good guess it completes correctly.
	res2, err := local.Run(g, Truncated(int(g.MaxIDValue())), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res2.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
}
