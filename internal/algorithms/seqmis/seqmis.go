// Package seqmis implements the sequential-greedy-by-identity MIS: an
// undecided node joins the set as soon as its identity is smaller than the
// identities of all undecided neighbours; neighbours of members retire. The
// result equals the sequential greedy MIS over the identity order, and the
// running time is bounded by the length of the longest decreasing identity
// path — at most min(n, m) and typically far smaller on random identities.
//
// Its role in the reproduction (see DESIGN.md §4) is the "time depends only
// on a guess of the global size" engine of Table 1 — the slot held in the
// paper by Panconesi–Srinivasan's 2^O(√log n) network-decomposition MIS,
// whose full machinery is out of scope. Truncated provides the non-uniform
// black box f(m̃) = 2m̃+4 consumed by Theorem 1 and the Theorem 4 min{}
// combination; New is the uniform (but slow in the worst case) variant used
// directly by Theorem 4.
package seqmis

import (
	"github.com/unilocal/unilocal/internal/local"
)

// New returns the uniform greedy MIS algorithm. Output: bool.
func New() local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "seqmis",
		NewNode:  func(info local.Info) local.Node { return &node{info: info} },
	}
}

// Truncated returns the greedy MIS restricted to Rounds(m̃) rounds: a
// non-uniform algorithm requiring the guess m̃ >= m (maximum identity) for
// correctness.
func Truncated(mHat int) local.Algorithm {
	return local.RestrictRounds(New(), Rounds(mHat))
}

// Rounds bounds the running time of the greedy MIS by the identity guess:
// every decision chain strictly decreases identities, and one link resolves
// every two rounds.
func Rounds(mHat int) int {
	if mHat < 1 {
		mHat = 1
	}
	return 2*mHat + 4
}

type msgKind byte

const (
	kindJoin msgKind = iota + 1
	kindLeave
)

type msg struct {
	kind msgKind
	id   int64
}

type node struct {
	info    local.Info
	in      bool
	retired map[int64]bool
}

func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.retired == nil {
		n.retired = make(map[int64]bool, n.info.Degree)
	}
	for _, m := range recv {
		sm, ok := m.(msg)
		if !ok {
			continue
		}
		switch sm.kind {
		case kindJoin:
			// A neighbour joined: retire.
			return local.Broadcast(msg{kind: kindLeave, id: n.info.ID}, n.info.Degree), true
		case kindLeave:
			n.retired[sm.id] = true
		}
	}
	// Join when minimal among the undecided neighbourhood; blockers only
	// ever disappear, so acting on the current view is safe.
	for _, nb := range n.info.Neighbors {
		if !n.retired[nb] && nb < n.info.ID {
			return nil, false
		}
	}
	n.in = true
	return local.Broadcast(msg{kind: kindJoin, id: n.info.ID}, n.info.Degree), true
}

func (n *node) Output() any { return n.in }

var _ local.Node = (*node)(nil)
