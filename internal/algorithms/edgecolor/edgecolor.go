// Package edgecolor provides the non-uniform edge-coloring algorithms of
// Table 1's edge-coloring rows, realised — as the paper notes for
// Barenboim–Elkin [7] — by running vertex-coloring algorithms on the line
// graph:
//
//   - New: a (2Δ̃−1)-edge-coloring in O(Δ̃ log Δ̃ + log* m̃) rounds
//     (Panconesi–Rizzi regime): the line graph has maximum degree at most
//     2Δ̃−2, so its (Δ_L+1)-coloring uses 2Δ̃−1 colors.
//
//   - Lambda: the trade-off variant with λ(2Δ̃−1) colors in
//     O(Δ̃²/λ + log* m̃) rounds (Barenboim–Elkin regime; see DESIGN.md §4).
//
// The host output at each node is a []int of colors, one per port, agreed
// with the neighbour on the shared edge.
package edgecolor

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/coloralgo"
	"github.com/unilocal/unilocal/internal/algorithms/lift"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// lineParams derives line-graph guesses from host guesses.
func lineParams(deltaHat int, mHat int64) (int, int64) {
	if deltaHat < 1 {
		deltaHat = 1
	}
	if mHat < 1 {
		mHat = 1
	}
	if mHat > graph.MaxID {
		mHat = graph.MaxID
	}
	dL := 2*deltaHat - 2
	if dL < 0 {
		dL = 0
	}
	return dL, graph.PackIDs(mHat, mHat)
}

// Palette returns the number of colors used by New: 2Δ̃−1.
func Palette(deltaHat int) int {
	dL, _ := lineParams(deltaHat, 1)
	return dL + 1
}

// New returns the (2Δ̃−1)-edge-coloring algorithm for guesses Δ̃, m̃.
func New(deltaHat int, mHat int64) local.Algorithm {
	dL, mL := lineParams(deltaHat, mHat)
	return wrap(fmt.Sprintf("edgecolor(Δ̃=%d)", deltaHat),
		lift.LineGraph(coloralgo.DeltaPlusOne(dL, mL), nil))
}

// LambdaPalette returns the number of colors used by Lambda: λ(2Δ̃−1).
func LambdaPalette(lambda, deltaHat int) int {
	dL, _ := lineParams(deltaHat, 1)
	return coloralgo.LambdaPalette(lambda, dL)
}

// Lambda returns the trade-off edge coloring with λ(2Δ̃−1) colors.
func Lambda(lambda, deltaHat int, mHat int64) local.Algorithm {
	dL, mL := lineParams(deltaHat, mHat)
	return wrap(fmt.Sprintf("edgecolor-λ(λ=%d,Δ̃=%d)", lambda, deltaHat),
		lift.LineGraph(coloralgo.Lambda(lambda, dL, mL), nil))
}

// BoundDelta is the ascending Δ̃-term of the additive envelope of New.
func BoundDelta(d int) int {
	dL, _ := lineParams(d, 1)
	return mathutil.SatAdd(mathutil.SatMul(2, coloralgo.BoundDelta(dL)), 8)
}

// BoundM is the ascending m̃-term (packed identities: constant log* term).
func BoundM(m int) int {
	if m < 1 {
		m = 1
	}
	return mathutil.LogStar(m) + 2*(5+16) + 8
}

// wrap converts the lift's per-port []any output into a []int of colors.
func wrap(name string, inner local.Algorithm) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info local.Info) local.Node {
			return &node{deg: info.Degree, inner: inner.New(info)}
		},
	}
}

type node struct {
	deg    int
	inner  local.Node
	colors []int
}

func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	send, done := n.inner.Round(r, recv)
	if done {
		n.colors = make([]int, n.deg)
		if outs, ok := n.inner.Output().([]any); ok {
			for p, o := range outs {
				if c, okC := o.(int); okC {
					n.colors[p] = c
				}
			}
		}
	}
	return send, done
}

func (n *node) Output() any { return n.colors }

var _ local.Node = (*node)(nil)
