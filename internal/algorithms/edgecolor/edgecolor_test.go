package edgecolor

import (
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// collect converts per-port outputs into canonical edge colors.
func collect(t *testing.T, g *graph.Graph, outputs []any) []int {
	t.Helper()
	edges := g.Edges()
	colors := make([]int, len(edges))
	for i, e := range edges {
		outs, ok := outputs[e.U].([]int)
		if !ok {
			t.Fatalf("node %d output %T", e.U, outputs[e.U])
		}
		for p := 0; p < g.Degree(int(e.U)); p++ {
			if g.Neighbor(int(e.U), p) == int(e.V) {
				colors[i] = outs[p]
				break
			}
		}
		// Endpoint agreement.
		outsV := outputs[e.V].([]int)
		for p := 0; p < g.Degree(int(e.V)); p++ {
			if g.Neighbor(int(e.V), p) == int(e.U) {
				if outsV[p] != colors[i] {
					t.Fatalf("edge %v: endpoints disagree (%d vs %d)", e, colors[i], outsV[p])
				}
			}
		}
	}
	return colors
}

func TestEdgeColoringOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(17)
	gnp, err := graph.GNP(80, 0.06, 4)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":   graph.Path(20),
		"cycle":  cyc,
		"star":   graph.Star(15),
		"clique": graph.Complete(9),
		"grid":   graph.Grid(6, 7),
		"gnp":    gnp,
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d, m := g.MaxDegree(), g.MaxIDValue()
			res, err := local.Run(g, New(d, m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			colors := collect(t, g, res.Outputs)
			if err := problems.ValidEdgeColoring(g, colors, Palette(d)); err != nil {
				t.Fatal(err)
			}
			if env := BoundDelta(d) + BoundM(int(m)); res.Rounds > env {
				t.Errorf("rounds %d exceed envelope %d", res.Rounds, env)
			}
		})
	}
}

func TestEdgeColoringLambdaTradeoff(t *testing.T) {
	g, err := graph.RandomRegular(80, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, m := g.MaxDegree(), g.MaxIDValue()
	prev := 1 << 30
	for _, lambda := range []int{1, 3, 9} {
		res, err := local.Run(g, Lambda(lambda, d, m), local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		colors := collect(t, g, res.Outputs)
		if err := problems.ValidEdgeColoring(g, colors, LambdaPalette(lambda, d)); err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if res.Rounds > prev+4 {
			t.Errorf("λ=%d slower than smaller λ: %d after %d", lambda, res.Rounds, prev)
		}
		prev = res.Rounds
	}
}

func TestPalettes(t *testing.T) {
	if Palette(4) != 7 {
		t.Errorf("Palette(4) = %d, want 2Δ-1 = 7", Palette(4))
	}
	if LambdaPalette(2, 4) != 2*7 {
		t.Errorf("LambdaPalette(2,4) = %d, want 14", LambdaPalette(2, 4))
	}
}
