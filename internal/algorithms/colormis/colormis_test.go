package colormis

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func TestColorMISOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(23)
	gnp, err := graph.GNP(200, 0.035, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := graph.RandomRegular(100, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":    graph.Path(40),
		"cycle":   cyc,
		"clique":  graph.Complete(15),
		"star":    graph.Star(33),
		"grid":    graph.Grid(9, 9),
		"gnp":     gnp,
		"regular": reg,
		"empty":   graph.Empty(6),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d, m := g.MaxDegree(), max64(g.MaxIDValue(), 1)
			res, err := local.Run(g, New(d, m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
			if bound := Rounds(d, m); res.Rounds > bound {
				t.Errorf("rounds %d exceed bound %d", res.Rounds, bound)
			}
			if env := BoundDelta(d) + BoundM(int(m)); res.Rounds > env {
				t.Errorf("rounds %d exceed additive envelope %d", res.Rounds, env)
			}
		})
	}
}

func TestColorMISGoodOverestimates(t *testing.T) {
	g, err := graph.GNP(100, 0.06, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Any good (over-)guess must stay correct and within the envelope at the
	// guessed values — this is the transformer's budget contract.
	for _, dMult := range []int{1, 3} {
		for _, mMult := range []int64{1, 100} {
			d := g.MaxDegree() * dMult
			m := g.MaxIDValue() * mMult
			res, err := local.Run(g, New(d, m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatalf("d×%d m×%d: %v", dMult, mMult, err)
			}
			if env := BoundDelta(d) + BoundM(int(m)); res.Rounds > env {
				t.Errorf("d×%d m×%d: rounds %d exceed envelope %d", dMult, mMult, res.Rounds, env)
			}
		}
	}
}

func TestColorMISBadGuessTerminates(t *testing.T) {
	g := graph.Complete(20)
	res, err := local.Run(g, New(2, 5), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if env := BoundDelta(2) + BoundM(5); res.Rounds > env {
		t.Errorf("bad-guess rounds %d exceed envelope %d", res.Rounds, env)
	}
}

func TestColorMISProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GNP(50, 0.1, seed)
		if err != nil {
			return false
		}
		res, err := local.Run(g, New(g.MaxDegree(), g.MaxIDValue()), local.Options{})
		if err != nil {
			return false
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
