// Package colormis provides the non-uniform deterministic MIS algorithm of
// the "Det. MIS and (Δ+1)-coloring, O(Δ + log* n)" row of Table 1: color
// with Δ̃+1 colors (Linial + halving reduction), then let the color classes
// join the independent set greedily. Total time O(Δ̃ log Δ̃ + log* m̃) with
// the guesses Γ = {Δ, m}.
//
// The additive envelope BoundDelta/BoundM feeds the paper's Theorem 1
// transformer: by Observation 4.1 an additive bound has sequence number 1,
// so the resulting uniform MIS algorithm runs in O(f*) rounds.
package colormis

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/coloralgo"
	"github.com/unilocal/unilocal/internal/algorithms/linial"
	"github.com/unilocal/unilocal/internal/algorithms/reduce"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// New returns the composed MIS algorithm for guesses Δ̃ and m̃. Output: bool
// (membership in the independent set).
func New(deltaHat int, mHat int64) local.Algorithm {
	k := coloralgo.StartPalette(deltaHat, mHat)
	return local.Compose(
		fmt.Sprintf("colormis(Δ̃=%d)", deltaHat),
		local.Stage{Algo: linial.New(deltaHat, mHat)},
		local.Stage{Algo: reduce.ToDeltaPlusOne(k, deltaHat)},
		local.Stage{Algo: reduce.MISByColor(deltaHat + 1)},
	)
}

// Rounds bounds the running time of New for the given guesses.
func Rounds(deltaHat int, mHat int64) int {
	return coloralgo.DeltaPlusOneRounds(deltaHat, mHat) +
		reduce.MISByColorRounds(deltaHat+1) + 2
}

// BoundDelta is the ascending Δ̃-term of the additive envelope.
func BoundDelta(d int) int {
	if d < 0 {
		d = 0
	}
	return mathutil.SatAdd(coloralgo.BoundDelta(d), d+8)
}

// BoundM is the ascending m̃-term of the additive envelope.
func BoundM(m int) int { return coloralgo.BoundM(m) }
