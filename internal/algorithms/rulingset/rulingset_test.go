package rulingset

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func TestBitSplitOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(33)
	gnp, err := graph.GNP(200, 0.04, 5)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := graph.WithShuffledIDs(graph.Grid(10, 10), 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(64),
		"cycle":    cyc,
		"clique":   graph.Complete(20),
		"star":     graph.Star(40),
		"gnp":      gnp,
		"shuffled": shuffled,
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			m := int(g.MaxIDValue())
			res, err := local.Run(g, BitSplit(m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidRulingSet(g, in, 2, Bits(m)); err != nil {
				t.Fatal(err)
			}
			if res.Rounds > BitSplitRounds(m) {
				t.Errorf("rounds %d exceed bound %d", res.Rounds, BitSplitRounds(m))
			}
		})
	}
}

func TestBitSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.WithShuffledIDs(graph.ForestUnion(60, 2, seed), 1<<16, seed)
		if err != nil {
			return false
		}
		m := int(g.MaxIDValue())
		res, err := local.Run(g, BitSplit(m), local.Options{})
		if err != nil {
			return false
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidRulingSet(g, in, 2, Bits(m)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBitSplitBadGuessTerminates(t *testing.T) {
	g, err := graph.WithShuffledIDs(graph.Path(50), 1<<18, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, BitSplit(3), local.Options{}) // far too few bits
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > BitSplitRounds(3) {
		t.Errorf("rounds %d exceed bound %d", res.Rounds, BitSplitRounds(3))
	}
}

func TestTruncatedPowerLuby(t *testing.T) {
	g, err := graph.GNP(150, 0.04, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []int{1, 2, 3} {
		success := 0
		const trials = 8
		for seed := int64(0); seed < trials; seed++ {
			res, err := local.Run(g, TruncatedPowerLuby(beta, g.N()), local.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds > PowerLubyRounds(beta, g.N()) {
				t.Fatalf("β=%d: rounds %d exceed budget %d", beta, res.Rounds, PowerLubyRounds(beta, g.N()))
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if problems.ValidRulingSet(g, in, 2, beta) == nil {
				success++
			}
		}
		if success < trials/2 {
			t.Errorf("β=%d: weak Monte Carlo success %d/%d below 1/2", beta, success, trials)
		}
	}
}
