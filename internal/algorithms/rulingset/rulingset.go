// Package rulingset provides the ruling-set engines of Table 1's
// "(2, 2(c+1))-ruling set" row (Schneider–Wattenhofer regime; see DESIGN.md
// §4 for the substitution note):
//
//   - BitSplit: a deterministic (2, b)-ruling set in b rounds, where b is
//     the bit length of the identity-space guess m̃. Level k merges the
//     candidate sets of identity prefixes: a candidate whose bit k is 1
//     drops out iff a neighbouring candidate agrees on all higher bits and
//     has bit k equal to 0. Survivors are independent, and every dropped
//     node hangs off a chain of at most b candidate hops.
//
//   - TruncatedPowerLuby: Luby's MIS on the power graph G^β restricted to a
//     budget derived from the guess ñ — a weak Monte Carlo (2, β)-ruling
//     set algorithm (in fact (β+1, β)), the engine fed to Theorem 2 to
//     produce a uniform Las Vegas ruling-set algorithm.
package rulingset

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/lift"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// Bits returns the number of levels (and rounds) BitSplit uses for the
// identity guess m̃.
func Bits(mHat int) int {
	if mHat < 1 {
		mHat = 1
	}
	return mathutil.CeilLog2(mHat + 1)
}

// BitSplitRounds bounds the running time of BitSplit(m̃).
func BitSplitRounds(mHat int) int { return Bits(mHat) + 2 }

// BitSplit returns the deterministic bit-splitting ruling-set algorithm for
// the identity guess m̃. With a good guess the output is a (2, Bits(m̃))-
// ruling set; the node output is a bool (set membership).
func BitSplit(mHat int) local.Algorithm {
	b := Bits(mHat)
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("bitruling(m̃=%d)", mHat),
		NewNode: func(info local.Info) local.Node {
			return &bitNode{info: info, bits: b, candidate: true}
		},
	}
}

// bitMsg announces that the sender is still a candidate at the current
// level.
type bitMsg struct {
	id int64
}

type bitNode struct {
	info      local.Info
	bits      int
	candidate bool
}

// Round k processes bit level k (least significant first): a candidate with
// bit k = 1 drops iff some neighbouring candidate shares bits above k and
// has bit k = 0. Candidate status is (re-)broadcast every level.
func (n *bitNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r > 0 && n.candidate {
		k := uint(r - 1)
		if n.info.ID>>k&1 == 1 {
			for _, m := range recv {
				bm, ok := m.(bitMsg)
				if !ok {
					continue
				}
				sameHigh := bm.id>>(k+1) == n.info.ID>>(k+1)
				if sameHigh && bm.id>>k&1 == 0 {
					n.candidate = false
					break
				}
			}
		}
	}
	if r >= n.bits {
		return nil, true
	}
	if n.candidate {
		return local.Broadcast(bitMsg{id: n.info.ID}, n.info.Degree), false
	}
	return nil, false
}

func (n *bitNode) Output() any { return n.candidate }

var _ local.Node = (*bitNode)(nil)

// TruncatedPowerLuby returns Luby's MIS on G^β restricted to a budget
// derived from the node-count guess ñ: a weak Monte Carlo (2, β)-ruling-set
// algorithm with guarantee at least 1/2 under good guesses.
func TruncatedPowerLuby(beta, nHat int) local.Algorithm {
	if beta < 1 {
		beta = 1
	}
	return local.RestrictRounds(lift.Power(beta, luby.New()), PowerLubyRounds(beta, nHat))
}

// PowerLubyRounds is the truncation budget for TruncatedPowerLuby: the
// lift multiplies each of O(log ñ) Luby rounds by β hops, plus β discovery
// rounds.
func PowerLubyRounds(beta, nHat int) int {
	if beta < 1 {
		beta = 1
	}
	return mathutil.SatMul(beta, luby.Rounds(nHat)+2) + beta + 2
}
