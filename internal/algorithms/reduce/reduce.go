// Package reduce provides deterministic color-reduction algorithms in the
// LOCAL model, the second half of the coloring/MIS stack behind the
// Barenboim–Elkin/Kuhn rows of Table 1:
//
//   - Batched(k, λ, Δ̃): one pass over the color classes in batches of λ,
//     mapping a proper k-coloring to a proper λ(Δ̃+1)-coloring in
//     ceil(k/λ)+1 rounds. Within a batch, nodes with batch offset j choose
//     from the private palette P_j = {j(Δ̃+1)+1, ..., (j+1)(Δ̃+1)}, so batch
//     members never collide with each other, and at most Δ̃ already-final
//     neighbours can block colors of P_j. This realises the paper's
//     λ(Δ+1)-coloring trade-off row (with rounds O(Δ̃²/λ) from the Linial
//     palette instead of Kuhn's O(Δ̃/λ); see DESIGN.md §4).
//
//   - ToDeltaPlusOne(k, Δ̃): iterated halving via Batched with
//     λ_t = ceil(k_t / (2(Δ̃+1))), reaching palette Δ̃+1 in O(Δ̃ log Δ̃)
//     rounds overall.
//
//   - MISByColor(k): the classical reduction from a proper k-coloring to a
//     maximal independent set in k+1 rounds (color classes join greedily).
//
// All algorithms are non-uniform (their schedules depend on the guesses) but
// always terminate within their announced round bounds; under bad guesses
// the output may be invalid, which is the contract the paper's transformers
// require.
package reduce

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// Batched returns the one-pass batched reduction from palette [1,k] to
// palette [1, λ(Δ̃+1)]. The node input must be its current color (int); the
// output is the new color (int).
func Batched(k, lambda, deltaHat int) local.Algorithm {
	k, lambda, deltaHat = clampParams(k, lambda, deltaHat)
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("reduce-batched(k=%d,λ=%d)", k, lambda),
		NewNode: func(info local.Info) local.Node {
			return &batchNode{info: info, k: k, lambda: lambda, deltaHat: deltaHat,
				color: inputColor(info, k)}
		},
	}
}

// BatchedRounds returns the exact running time of Batched(k, λ, Δ̃).
func BatchedRounds(k, lambda, deltaHat int) int {
	k, lambda, _ = clampParams(k, lambda, deltaHat)
	return mathutil.CeilDiv(k, lambda) + 1
}

// BatchedPalette returns the output palette size λ(Δ̃+1).
func BatchedPalette(lambda, deltaHat int) int {
	_, lambda, deltaHat = clampParams(1, lambda, deltaHat)
	return lambda * (deltaHat + 1)
}

func clampParams(k, lambda, deltaHat int) (int, int, int) {
	if k < 1 {
		k = 1
	}
	if lambda < 1 {
		lambda = 1
	}
	if deltaHat < 0 {
		deltaHat = 0
	}
	return k, lambda, deltaHat
}

// inputColor extracts the node's current color from its input, clamped to
// [1, k] so that bad guesses still yield a terminating execution.
func inputColor(info local.Info, k int) int {
	c, ok := info.Input.(int)
	if !ok {
		if c64, ok64 := info.Input.(int64); ok64 && c64 <= int64(1)<<62 {
			c = int(c64)
		} else {
			c = 1
		}
	}
	if c < 1 {
		c = 1
	}
	if c > k {
		c = k
	}
	return c
}

// batchMsg announces a finalized color.
type batchMsg struct{ color int }

type batchNode struct {
	info     local.Info
	k        int
	lambda   int
	deltaHat int
	color    int
	taken    map[int]bool // colors already fixed by neighbours
}

// Round r >= 1 handles batch r-1; a node terminates right after fixing its
// color (its announcement is still delivered), so the pass lasts
// ceil(k/λ)+1 rounds in the worst case.
func (n *batchNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.taken == nil {
		n.taken = make(map[int]bool, n.info.Degree)
	}
	for _, m := range recv {
		if bm, ok := m.(batchMsg); ok {
			n.taken[bm.color] = true
		}
	}
	if r == 0 {
		// Spacing round: announcements of batch b are consumed in round b+2.
		return nil, false
	}
	if myBatch := (n.color - 1) / n.lambda; myBatch == r-1 {
		j := (n.color - 1) % n.lambda
		base := j * (n.deltaHat + 1)
		picked := base + 1
		for c := base + 1; c <= base+n.deltaHat+1; c++ {
			if !n.taken[c] {
				picked = c
				break
			}
		}
		n.color = picked
		return local.Broadcast(batchMsg{color: picked}, n.info.Degree), true
	}
	return nil, false
}

func (n *batchNode) Output() any { return n.color }

// ToDeltaPlusOne returns the iterated-halving reduction from palette [1, k]
// to palette [1, Δ̃+1]. Input and output are int colors.
func ToDeltaPlusOne(k, deltaHat int) local.Algorithm {
	k, _, deltaHat = clampParams(k, 1, deltaHat)
	passes := halvingSchedule(k, deltaHat)
	stages := make([]local.Stage, 0, len(passes))
	cur := k
	for _, lambda := range passes {
		stages = append(stages, local.Stage{Algo: Batched(cur, lambda, deltaHat)})
		cur = BatchedPalette(lambda, deltaHat)
	}
	if len(stages) == 0 {
		return Batched(k, 1, deltaHat) // already at most Δ̃+1 colors: one tidy pass
	}
	return local.Compose(fmt.Sprintf("reduce-to-Δ+1(k=%d,Δ̃=%d)", k, deltaHat), stages...)
}

// halvingSchedule returns the λ of each Batched pass.
func halvingSchedule(k, deltaHat int) []int {
	var passes []int
	for cur := k; cur > deltaHat+1; {
		lambda := max(1, mathutil.CeilDiv(cur, 2*(deltaHat+1)))
		passes = append(passes, lambda)
		next := BatchedPalette(lambda, deltaHat)
		if next >= cur {
			// No progress is possible only when cur <= 2(Δ̃+1) and λ=1, in
			// which case next = Δ̃+1 < cur; guard anyway.
			break
		}
		cur = next
	}
	return passes
}

// ToDeltaPlusOneRounds bounds the running time of ToDeltaPlusOne(k, Δ̃).
func ToDeltaPlusOneRounds(k, deltaHat int) int {
	k, _, deltaHat = clampParams(k, 1, deltaHat)
	total := 0
	cur := k
	for _, lambda := range halvingSchedule(k, deltaHat) {
		total += BatchedRounds(cur, lambda, deltaHat)
		cur = BatchedPalette(lambda, deltaHat)
	}
	if total == 0 {
		total = BatchedRounds(k, 1, deltaHat)
	}
	return total + 2 // compose slack
}

// MISByColor returns the reduction from a proper coloring with palette
// [1, k] to an MIS: in round c, the undecided nodes of color class c join
// the set unless a neighbour already joined. Input: int color. Output: bool.
func MISByColor(k int) local.Algorithm {
	if k < 1 {
		k = 1
	}
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("mis-by-color(k=%d)", k),
		NewNode: func(info local.Info) local.Node {
			return &misNode{info: info, k: k, color: inputColor(info, k)}
		},
	}
}

// MISByColorRounds returns the exact running time of MISByColor(k).
func MISByColorRounds(k int) int {
	if k < 1 {
		k = 1
	}
	return k + 1
}

type misJoin struct{}

type misNode struct {
	info    local.Info
	k       int
	color   int
	in      bool
	blocked bool
}

// Round c decides color class c; joins announced in round c are consumed by
// later classes in round c+1. A node terminates at its own class round.
func (n *misNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if _, ok := m.(misJoin); ok {
			n.blocked = true
		}
	}
	if r < n.color {
		return nil, false
	}
	if !n.blocked {
		n.in = true
		return local.Broadcast(misJoin{}, n.info.Degree), true
	}
	return nil, true
}

func (n *misNode) Output() any { return n.in }

var (
	_ local.Node = (*batchNode)(nil)
	_ local.Node = (*misNode)(nil)
)
