package reduce

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// withGreedyColors feeds each node its greedy color as input.
func withGreedyColors(g *graph.Graph, inner local.Algorithm) local.Algorithm {
	colors := problems.GreedyColoring(g)
	return local.AlgorithmFunc{
		AlgoName: inner.Name() + "+input",
		NewNode: func(info local.Info) local.Node {
			info.Input = colors[g.IndexOfID(info.ID)]
			return inner.New(info)
		},
	}
}

// spreadColors assigns widely spread distinct colors (node u gets 7u+1) to
// exercise large palettes.
func withSpreadColors(g *graph.Graph, inner local.Algorithm, stride int) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: inner.Name() + "+spread",
		NewNode: func(info local.Info) local.Node {
			info.Input = int(info.ID-1)*stride + 1
			return inner.New(info)
		},
	}
}

func TestBatchedReducesPalette(t *testing.T) {
	gnp, err := graph.GNP(150, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid(8, 9),
		"gnp":  gnp,
		"star": graph.Star(30),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d := g.MaxDegree()
			k := g.N()*7 + 1
			for _, lambda := range []int{1, 2, 5, 50} {
				algo := withSpreadColors(g, Batched(k, lambda, d), 7)
				res, err := local.Run(g, algo, local.Options{})
				if err != nil {
					t.Fatal(err)
				}
				colors, err := problems.Ints(res.Outputs)
				if err != nil {
					t.Fatal(err)
				}
				if err := problems.ValidColoring(g, colors, BatchedPalette(lambda, d)); err != nil {
					t.Fatalf("λ=%d: %v", lambda, err)
				}
				if res.Rounds > BatchedRounds(k, lambda, d) {
					t.Fatalf("λ=%d: rounds %d exceed bound %d", lambda, res.Rounds, BatchedRounds(k, lambda, d))
				}
			}
		})
	}
}

func TestBatchedTradeoffMonotone(t *testing.T) {
	// More colors (larger λ) must not be slower: the paper's trade-off shape.
	g, err := graph.RandomRegular(120, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := g.N() + 1
	prev := 1 << 30
	for _, lambda := range []int{1, 2, 4, 8, 16} {
		algo := withSpreadColors(g, Batched(k, lambda, 6), 1)
		res, err := local.Run(g, algo, local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > prev {
			t.Errorf("λ=%d slower than smaller λ: %d > %d", lambda, res.Rounds, prev)
		}
		prev = res.Rounds
	}
}

func TestToDeltaPlusOne(t *testing.T) {
	gnp, err := graph.GNP(120, 0.06, 8)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(17)
	graphs := map[string]*graph.Graph{
		"gnp":    gnp,
		"cycle":  cyc,
		"clique": graph.Complete(12),
		"path":   graph.Path(25),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d := g.MaxDegree()
			k := 12 * g.N()
			algo := withSpreadColors(g, ToDeltaPlusOne(k, d), 12)
			res, err := local.Run(g, algo, local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidColoring(g, colors, d+1); err != nil {
				t.Fatal(err)
			}
			if res.Rounds > ToDeltaPlusOneRounds(k, d) {
				t.Errorf("rounds %d exceed bound %d", res.Rounds, ToDeltaPlusOneRounds(k, d))
			}
		})
	}
}

func TestMISByColor(t *testing.T) {
	gnp, err := graph.GNP(150, 0.04, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{
		"gnp":  gnp,
		"grid": graph.Grid(10, 7),
		"star": graph.Star(21),
	} {
		t.Run(name, func(t *testing.T) {
			k := g.MaxDegree() + 1
			algo := withGreedyColors(g, MISByColor(k))
			res, err := local.Run(g, algo, local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
			if res.Rounds > MISByColorRounds(k) {
				t.Errorf("rounds %d exceed bound %d", res.Rounds, MISByColorRounds(k))
			}
		})
	}
}

func TestBatchedProperty(t *testing.T) {
	// Random graphs, random λ: output always proper and within palette.
	f := func(seed int64, lraw uint8) bool {
		g, err := graph.GNP(40, 0.12, seed)
		if err != nil {
			return false
		}
		lambda := int(lraw%9) + 1
		d := g.MaxDegree()
		k := g.N()
		algo := withSpreadColors(g, Batched(k, lambda, d), 1)
		res, err := local.Run(g, algo, local.Options{})
		if err != nil {
			return false
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidColoring(g, colors, BatchedPalette(lambda, d)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBadGuessesTerminate(t *testing.T) {
	// Degree guess far too small: run must halt within the bound; output may
	// be improper.
	g := graph.Complete(15)
	algo := withSpreadColors(g, Batched(g.N(), 2, 1), 1)
	res, err := local.Run(g, algo, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > BatchedRounds(g.N(), 2, 1) {
		t.Error("bad-guess run exceeded bound")
	}
	algoMIS := withGreedyColors(g, MISByColor(3)) // palette guess too small
	if _, err := local.Run(g, algoMIS, local.Options{}); err != nil {
		t.Fatal(err)
	}
}
