// Package arbmis implements the bounded-arboricity MIS algorithm behind the
// arboricity rows of Table 1 (Barenboim–Elkin [6] regime, see DESIGN.md §4):
//
//  1. H-partition (Nash–Williams peeling): for ceil(log2 ñ)+1 rounds, every
//     undecided node whose remaining degree is at most 4ã takes the current
//     layer and retires. With a good arboricity guess at least half of the
//     remaining nodes retire per round (the average degree of any subgraph
//     is < 2a), so every node is layered; each node then has at most 4ã
//     neighbours in its own or higher layers.
//
//  2. Layer-by-layer MIS, from the top layer down: within a layer the
//     induced degree is at most 4ã, so the layer is colored with 4ã+1
//     colors (Linial + halving reduction, masked to the layer) and the
//     color classes join greedily, skipping nodes that already have a
//     neighbour in the set.
//
// The running time is Θ(log ñ) windows of O(ã log ã + log* m̃) rounds — a
// product-form bound f(ñ, ã, m̃) = f1(ñ)·(f2(ã)+f3(m̃)) that exercises the
// paper's Observation 4.1 product sequence-number machinery and, with
// Γ = {a, n, m}, Theorem 3's weak domination (a <= n).
package arbmis

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/coloralgo"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// Layers returns the number of peeling rounds for the guess ñ.
func Layers(nHat int) int {
	if nHat < 1 {
		nHat = 1
	}
	return mathutil.CeilLog2(nHat) + 1
}

// windowRounds returns the length of one per-layer window.
func windowRounds(aHat int, mHat int64) int {
	d := layerDegree(aHat)
	return 1 + // status round
		coloralgo.DeltaPlusOneRounds(d, mHat) + // masked coloring
		(d + 1) + 1 // greedy classes + slack
}

// layerDegree is the degree bound 4ã inside a layer.
func layerDegree(aHat int) int {
	if aHat < 1 {
		aHat = 1
	}
	return 4 * aHat
}

// Rounds returns the exact running time of New for the given guesses.
func Rounds(aHat, nHat int, mHat int64) int {
	l := Layers(nHat)
	return l + l*windowRounds(aHat, mHat)
}

// BoundLayers is the ascending ñ-factor of the product envelope.
func BoundLayers(n int) int { return Layers(n) + 1 }

// BoundA is the ascending ã-term of the window envelope.
func BoundA(a int) int {
	d := layerDegree(a)
	return mathutil.SatAdd(coloralgo.BoundDelta(d), d+16)
}

// BoundM is the ascending m̃-term of the window envelope.
func BoundM(m int) int { return coloralgo.BoundM(m) }

// New returns the algorithm for guesses ã, ñ, m̃. Output: bool (MIS
// membership). With bad guesses some nodes may stay unlayered and output
// false; termination within Rounds(ã, ñ, m̃) is unconditional.
func New(aHat, nHat int, mHat int64) local.Algorithm {
	// The round geometry (layer count, window length, coloring rounds) is a
	// function of the guesses only; computing it once here instead of every
	// Round call keeps the per-node round cost constant (the schedule
	// helpers behind windowRounds rebuild the full Linial/halving schedule).
	sched := schedule{
		layers:      Layers(nHat),
		window:      windowRounds(aHat, mHat),
		colorRounds: coloralgo.DeltaPlusOneRounds(layerDegree(aHat), mHat),
	}
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("arbmis(ã=%d,ñ=%d)", aHat, nHat),
		NewNode: func(info local.Info) local.Node {
			return &node{info: info, aHat: aHat, nHat: nHat, mHat: mHat, sched: sched,
				activeDeg: info.Degree, layer: -1}
		},
	}
}

// schedule is the precomputed round geometry shared by all nodes.
type schedule struct {
	layers      int // H-partition peeling rounds
	window      int // rounds per per-layer window
	colorRounds int // rounds of the masked coloring inside a window
}

// Message types of the protocol.
type (
	layeredMsg struct{}        // "I joined the current layer"
	statusMsg  struct{ s int } // window round 0: encoded (layer, decided, in)
	joinMsg    struct{}        // "I joined the MIS"
)

// encodeStatus packs (layer, participating, in) into one int.
func encodeStatus(layer int, undecided, in bool) int {
	s := layer << 2
	if undecided {
		s |= 1
	}
	if in {
		s |= 2
	}
	return s
}

type node struct {
	info  local.Info
	aHat  int
	nHat  int
	mHat  int64
	sched schedule

	// Layering state.
	activeDeg int
	layer     int // 1-based; -1 while unlayered

	// Decision state.
	decided bool
	in      bool
	inNbr   bool // some neighbour is in the MIS

	// Per-window state.
	sub   *local.Subrun
	color int
}

func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	l := n.sched.layers
	if r < l {
		return n.peel(r, recv), false
	}
	w := n.sched.window
	window := (r - l) / w
	offset := (r - l) % w
	if window >= l {
		return nil, true
	}
	processedLayer := l - window // layers processed top-down
	send := n.windowRound(processedLayer, offset, recv)
	done := window == l-1 && offset == w-1
	return send, done
}

// peel runs one H-partition round.
func (n *node) peel(r int, recv []local.Message) []local.Message {
	for _, m := range recv {
		if _, ok := m.(layeredMsg); ok {
			n.activeDeg--
		}
	}
	if n.layer < 0 && n.activeDeg <= layerDegree(n.aHat) {
		n.layer = r + 1
		return local.Broadcast(layeredMsg{}, n.info.Degree)
	}
	return nil
}

// windowRound executes one round of the window for the given layer.
func (n *node) windowRound(layer, offset int, recv []local.Message) []local.Message {
	d := layerDegree(n.aHat)
	colorRounds := n.sched.colorRounds
	switch {
	case offset == 0:
		// Status exchange; also pick up joins announced in the previous
		// window's last round.
		n.ingestJoins(recv)
		n.sub = nil
		n.color = 0
		return local.Broadcast(statusMsg{s: encodeStatus(n.layer, !n.decided, n.in)}, n.info.Degree)

	case offset == 1:
		// Build the participant mask and start the masked coloring.
		if n.layer != layer || n.decided {
			return nil
		}
		ports := make([]int, 0, n.info.Degree)
		for p, m := range recv {
			if sm, ok := m.(statusMsg); ok {
				nbLayer := sm.s >> 2
				if nbLayer == layer && sm.s&1 == 1 {
					ports = append(ports, p)
				}
				if sm.s&2 == 2 {
					n.inNbr = true
				}
			}
		}
		ids := make([]int64, len(ports))
		for i, p := range ports {
			ids[i] = n.info.Neighbors[p]
		}
		inner := coloralgo.DeltaPlusOne(d, n.mHat).New(local.Info{
			ID:        n.info.ID,
			Degree:    len(ports),
			Neighbors: ids,
			Input:     nil,
			Rand:      local.DeriveRand(int64(n.info.Rand.Uint64()), n.info.ID, uint64(layer)),
		})
		n.sub = local.NewSubrun(inner, ports)
		return n.sub.Step(make([]local.Message, n.info.Degree), n.info.Degree)

	case offset <= colorRounds:
		n.ingestJoins(recv)
		if n.sub == nil {
			return nil
		}
		send := n.sub.Step(recv, n.info.Degree)
		if offset == colorRounds {
			if c, ok := n.sub.Output().(int); ok {
				n.color = c
			} else {
				n.color = 1 // arbitrary fallback under bad guesses
			}
			n.sub = nil
		}
		return send

	default:
		// Greedy color classes: class c acts at offset colorRounds + c.
		n.ingestJoins(recv)
		c := offset - colorRounds
		if n.layer == layer && !n.decided && n.color == c {
			n.decided = true
			if !n.inNbr {
				n.in = true
				return local.Broadcast(joinMsg{}, n.info.Degree)
			}
		}
		return nil
	}
}

// ingestJoins records join announcements from any layer.
func (n *node) ingestJoins(recv []local.Message) {
	for _, m := range recv {
		if _, ok := m.(joinMsg); ok {
			n.inNbr = true
		}
	}
}

func (n *node) Output() any { return n.in }

var _ local.Node = (*node)(nil)
