package arbmis

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func TestArbMISOnSparseSuites(t *testing.T) {
	cyc, _ := graph.Cycle(30)
	graphs := map[string]struct {
		g *graph.Graph
		a int
	}{
		"path":    {graph.Path(50), 1},
		"cycle":   {cyc, 2},
		"tree":    {graph.RandomTree(120, 5), 1},
		"star":    {graph.Star(60), 1},
		"forest2": {graph.ForestUnion(100, 2, 7), 2},
		"forest3": {graph.ForestUnion(100, 3, 8), 3},
		"grid":    {graph.Grid(9, 9), 2},
		"empty":   {graph.Empty(5), 1},
	}
	for name, tc := range graphs {
		t.Run(name, func(t *testing.T) {
			g := tc.g
			n := max(g.N(), 1)
			m := max(int(g.MaxIDValue()), 1)
			res, err := local.Run(g, New(tc.a, n, int64(m)), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
			if bound := Rounds(tc.a, n, int64(m)); res.Rounds > bound {
				t.Errorf("rounds %d exceed exact schedule %d", res.Rounds, bound)
			}
			env := (BoundLayers(n)) * (BoundA(tc.a) + BoundM(m))
			if res.Rounds > env {
				t.Errorf("rounds %d exceed product envelope %d", res.Rounds, env)
			}
		})
	}
}

func TestArbMISOverestimatedGuesses(t *testing.T) {
	g := graph.ForestUnion(80, 2, 3)
	for _, aMult := range []int{1, 2, 5} {
		res, err := local.Run(g, New(2*aMult, g.N()*3, g.MaxIDValue()*7), local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, in); err != nil {
			t.Fatalf("a×%d: %v", aMult, err)
		}
	}
}

func TestArbMISBadArboricityTerminates(t *testing.T) {
	// A clique has arboricity ~n/2; guessing ã=1 starves the peeling. The
	// run must halt within its schedule; the output is garbage by design.
	g := graph.Complete(24)
	res, err := local.Run(g, New(1, g.N(), g.MaxIDValue()), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bound := Rounds(1, g.N(), g.MaxIDValue()); res.Rounds > bound {
		t.Errorf("bad-guess run %d rounds exceeds schedule %d", res.Rounds, bound)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if problems.ValidMIS(g, in) == nil {
		t.Log("note: bad guess happened to produce a valid MIS (allowed)")
	}
}

func TestArbMISBadNTerminates(t *testing.T) {
	// Too few peeling rounds: some nodes stay unlayered and output false.
	g := graph.RandomTree(200, 9)
	res, err := local.Run(g, New(1, 2, g.MaxIDValue()), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bound := Rounds(1, 2, g.MaxIDValue()); res.Rounds > bound {
		t.Errorf("rounds %d exceed schedule %d", res.Rounds, bound)
	}
}

func TestArbMISProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%3) + 1
		g := graph.ForestUnion(50, k, seed)
		res, err := local.Run(g, New(k, g.N(), g.MaxIDValue()), local.Options{Seed: seed})
		if err != nil {
			return false
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestArbMISFasterThanDeltaOnStars(t *testing.T) {
	// The defining advantage of the arboricity engine: on a star (a = 1,
	// Δ = n-1) its O(log n (ã log ã + log* m̃)) schedule beats any Ω(Δ)
	// algorithm once n is large enough. The Δ/3 margin needs n ≈ 4000 (the
	// schedule plateaus near 920 rounds); -short keeps the assertion with a
	// Δ/2 margin at half the size.
	n, margin := 4000, 3
	if testing.Short() {
		n, margin = 2500, 2
	}
	g := graph.Star(n)
	res, err := local.Run(g, New(1, g.N(), g.MaxIDValue()), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
	if res.Rounds > g.MaxDegree()/margin {
		t.Errorf("arboricity MIS on a star took %d rounds (should be ≪ Δ = %d)", res.Rounds, g.MaxDegree())
	}
}
