// Package matching provides the non-uniform maximal matching algorithm of
// Table 1's "Det. Maximal Matching" row: a maximal matching of G is a
// maximal independent set of the line graph L(G), computed here by running
// the colormis stack through the line-graph lift. The guesses are Δ̃ and m̃
// for the host graph; the line graph's parameters are derived from them
// (Δ_L <= 2Δ̃−2, identities packed below (m̃+1)·2³¹).
//
// The paper's row cites Hańćkowiak–Karoński–Panconesi's O(log⁴ n)
// algorithm; this engine replaces it with an O(Δ̃ log Δ̃ + log* m̃) one with
// the same transformer contract (see DESIGN.md §4). Combined with the P_MM
// pruner of Observation 3.3 and Theorem 1, it yields the uniform maximal
// matching of Corollary 1(vi).
package matching

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/lift"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
	"github.com/unilocal/unilocal/internal/problems"
)

// lineParams derives the line-graph guesses from the host guesses.
func lineParams(deltaHat int, mHat int64) (int, int64) {
	if deltaHat < 1 {
		deltaHat = 1
	}
	if mHat < 1 {
		mHat = 1
	}
	if mHat > graph.MaxID {
		mHat = graph.MaxID
	}
	dL := 2 * deltaHat
	mL := graph.PackIDs(mHat, mHat)
	return dL, mL
}

// New returns the matching algorithm for guesses Δ̃ and m̃. The output at
// each node is a problems.EdgeClaim (zero = unmatched).
func New(deltaHat int, mHat int64) local.Algorithm {
	dL, mL := lineParams(deltaHat, mHat)
	inner := lift.LineGraph(colormis.New(dL, mL), nil)
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("matching(Δ̃=%d)", deltaHat),
		NewNode: func(info local.Info) local.Node {
			return &node{info: info, inner: inner.New(info)}
		},
	}
}

// BoundDelta is the ascending Δ̃-term of the additive envelope (the lift
// doubles every inner round).
func BoundDelta(d int) int {
	dL, _ := lineParams(d, 1)
	return mathutil.SatAdd(mathutil.SatMul(2, colormis.BoundDelta(dL)), 8)
}

// BoundM is the ascending m̃-term of the additive envelope. Packed
// line-graph identities stay below 2^62, so their log* contribution is a
// constant (log*(2^62) = 5) absorbed into the offset.
func BoundM(m int) int {
	if m < 1 {
		m = 1
	}
	return mathutil.LogStar(m) + 2*(5+16) + 8
}

type node struct {
	info  local.Info
	inner local.Node
	claim problems.EdgeClaim
}

func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	send, done := n.inner.Round(r, recv)
	if done {
		if outs, ok := n.inner.Output().([]any); ok {
			for p, o := range outs {
				if in, okB := o.(bool); okB && in {
					n.claim = problems.NewEdgeClaim(n.info.ID, n.info.Neighbors[p])
					break
				}
			}
		}
	}
	return send, done
}

func (n *node) Output() any { return n.claim }

var _ local.Node = (*node)(nil)
