package matching

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func TestMatchingOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(21)
	gnp, err := graph.GNP(120, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":   graph.Path(30),
		"cycle":  cyc,
		"star":   graph.Star(20),
		"clique": graph.Complete(11),
		"grid":   graph.Grid(7, 8),
		"gnp":    gnp,
		"empty":  graph.Empty(4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d, m := g.MaxDegree(), max(g.MaxIDValue(), 1)
			res, err := local.Run(g, New(d, m), local.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMaximalMatching(g, res.Outputs); err != nil {
				t.Fatal(err)
			}
			if env := BoundDelta(d) + BoundM(int(m)); res.Rounds > env {
				t.Errorf("rounds %d exceed additive envelope %d", res.Rounds, env)
			}
		})
	}
}

func TestMatchingClaimsAreConsistent(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := local.Run(g, New(g.MaxDegree(), g.MaxIDValue()), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		claim, ok := res.Outputs[u].(problems.EdgeClaim)
		if !ok {
			t.Fatalf("node %d output %T", u, res.Outputs[u])
		}
		if !claim.Claimed() {
			continue
		}
		// The claim names this node and one neighbour, and is reciprocated.
		other := claim.A
		if other == g.ID(u) {
			other = claim.B
		}
		p := -1
		for q := 0; q < g.Degree(u); q++ {
			if g.ID(g.Neighbor(u, q)) == other {
				p = q
				break
			}
		}
		if p < 0 {
			t.Fatalf("node %d claims non-neighbour %d", u, other)
		}
		if res.Outputs[g.Neighbor(u, p)] != claim {
			t.Fatalf("claim of node %d not reciprocated", u)
		}
	}
}

func TestMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GNP(40, 0.12, seed)
		if err != nil {
			return false
		}
		res, err := local.Run(g, New(g.MaxDegree(), g.MaxIDValue()), local.Options{Seed: seed})
		if err != nil {
			return false
		}
		return problems.ValidMaximalMatching(g, res.Outputs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMatchingBadGuessTerminates(t *testing.T) {
	g := graph.Complete(12)
	res, err := local.Run(g, New(1, 3), local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if env := BoundDelta(1) + BoundM(3); res.Rounds > env {
		t.Errorf("bad-guess rounds %d exceed envelope %d", res.Rounds, env)
	}
}
