package luby

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
	"github.com/unilocal/unilocal/internal/problems"
)

func runMIS(t *testing.T, g *graph.Graph, seed int64) (*local.Result, []bool) {
	t.Helper()
	res, err := local.Run(g, New(), local.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return res, in
}

func TestLubyOnSuites(t *testing.T) {
	cyc, _ := graph.Cycle(21)
	gnp, err := graph.GNP(300, 0.03, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := graph.RandomRegular(200, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(50),
		"cycle":    cyc,
		"clique":   graph.Complete(40),
		"star":     graph.Star(64),
		"grid":     graph.Grid(12, 12),
		"gnp":      gnp,
		"regular":  reg,
		"tree":     graph.RandomTree(150, 4),
		"isolated": graph.Empty(10),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				_, in := runMIS(t, g, seed)
				if err := problems.ValidMIS(g, in); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestLubyProperty(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		var g *graph.Graph
		var err error
		switch pick % 3 {
		case 0:
			g, err = graph.GNP(60, 0.1, seed)
		case 1:
			g = graph.RandomTree(60, seed)
		default:
			g = graph.ForestUnion(60, 2, seed)
		}
		if err != nil {
			return false
		}
		res, err := local.Run(g, New(), local.Options{Seed: seed})
		if err != nil {
			return false
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			return false
		}
		return problems.ValidMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	// Measured rounds should stay within the truncation budget for the
	// correct n, across a growing family: this validates the weak-Monte-Carlo
	// guarantee used by Theorem 2.
	for _, n := range []int{64, 256, 1024, 4096} {
		g, err := graph.GNP(n, 8.0/float64(n), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runMIS(t, g, 7)
		if res.Rounds > Rounds(n) {
			t.Errorf("n=%d: %d rounds exceed budget %d", n, res.Rounds, Rounds(n))
		}
		if res.Rounds > 6*(mathutil.CeilLog2(n)+2) {
			t.Errorf("n=%d: %d rounds not logarithmic", n, res.Rounds)
		}
	}
}

func TestTruncatedGuarantee(t *testing.T) {
	// With a good guess the truncated run must produce a full MIS in a clear
	// majority of seeds (the Theorem 2 machinery only needs probability 1/2).
	g, err := graph.GNP(400, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	success := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		res, err := local.Run(g, Truncated(400), local.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if problems.ValidMIS(g, in) == nil {
			success++
		}
		if res.Rounds > Rounds(400) {
			t.Fatalf("truncated run exceeded its budget: %d > %d", res.Rounds, Rounds(400))
		}
	}
	if success < trials*3/4 {
		t.Errorf("truncated success rate %d/%d below 3/4", success, trials)
	}
}

func TestTruncatedBadGuessStillHalts(t *testing.T) {
	// With a hopeless guess (ñ = 1) the truncated algorithm must still halt
	// within its tiny budget; outputs may be arbitrary.
	g := graph.Complete(30)
	res, err := local.Run(g, Truncated(1), local.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > Rounds(1) {
		t.Errorf("rounds %d exceed budget %d", res.Rounds, Rounds(1))
	}
}
