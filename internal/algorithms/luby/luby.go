// Package luby implements Luby's randomized maximal-independent-set
// algorithm (Luby 1986; Alon–Babai–Itai 1986) in the LOCAL model. It is the
// "Rand. MIS, uniform, O(log n)" row of Table 1 of Korman–Sereni–Viennot:
// the algorithm needs no global knowledge, every node terminates when its
// status is decided, and with high probability all nodes have terminated
// after O(log n) rounds.
//
// The package also provides the budget-truncated variant used by Theorem 2:
// running the algorithm for a fixed number T(ñ) of rounds derived from a
// guess ñ of the number of nodes yields a weak Monte Carlo MIS algorithm
// whose guarantee holds whenever the guess is good.
package luby

import (
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// New returns the uniform Las Vegas MIS algorithm. Each node outputs a bool:
// true iff it joined the independent set. Undecided nodes output false, which
// only matters for truncated runs.
func New() local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "luby-mis",
		NewNode:  func(info local.Info) local.Node { return &node{info: info} },
	}
}

// TruncationConst scales the truncation budget of Truncated; the default is
// deliberately generous so that a good guess succeeds with probability well
// above the 1/2 used in the Theorem 2 analysis.
const TruncationConst = 8

// Rounds returns the truncation budget T(ñ) used by Truncated for the guess
// nGuess: Θ(log ñ) phases of two rounds each.
func Rounds(nGuess int) int {
	if nGuess < 1 {
		nGuess = 1
	}
	return 2 * (TruncationConst*(mathutil.CeilLog2(nGuess)+1) + 2)
}

// Truncated returns Luby's algorithm restricted to Rounds(nGuess) rounds: a
// weak Monte Carlo MIS algorithm in the sense of Section 2 whose success
// probability is at least 1/2 (empirically much higher) whenever
// nGuess >= n.
func Truncated(nGuess int) local.Algorithm {
	return local.RestrictRounds(New(), Rounds(nGuess))
}

type msgKind byte

const (
	kindBid msgKind = iota + 1
	kindJoin
	kindLeave
)

// msg is the single message type of the protocol. Bids carry the random
// value and the sender identity for tie-breaking.
type msg struct {
	kind msgKind
	val  uint64
	id   int64
}

type node struct {
	info local.Info
	in   bool
	// bid is the value drawn in the current phase.
	bid uint64
}

// Round implements the two-round phase structure:
//
//	even rounds ("bid"):     process join/leave announcements; dominated
//	                         nodes leave; survivors draw and broadcast bids.
//	odd rounds ("resolve"):  a node strictly minimal among the received bids
//	                         joins the set and announces it.
func (n *node) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r%2 == 0 {
		for _, m := range recv {
			if bm, ok := m.(msg); ok && bm.kind == kindJoin {
				// A neighbour joined the set: leave and terminate.
				return local.Broadcast(msg{kind: kindLeave}, n.info.Degree), true
			}
		}
		n.bid = n.info.Rand.Uint64()
		return local.Broadcast(msg{kind: kindBid, val: n.bid, id: n.info.ID}, n.info.Degree), false
	}
	for _, m := range recv {
		bm, ok := m.(msg)
		if !ok || bm.kind != kindBid {
			continue
		}
		if bm.val < n.bid || (bm.val == n.bid && bm.id < n.info.ID) {
			// Not the local minimum: stay undecided.
			return nil, false
		}
	}
	n.in = true
	return local.Broadcast(msg{kind: kindJoin}, n.info.Degree), true
}

func (n *node) Output() any { return n.in }

var _ local.Node = (*node)(nil)
