// Package problems defines the output conventions of the classical LOCAL
// problems treated in the paper — MIS, (α,β)-ruling sets, vertex and edge
// coloring, maximal matching, strong list coloring — together with global
// validity checkers used by tests and benchmarks.
//
// Following Section 2 of Korman–Sereni–Viennot, a problem is a set of
// triplets (G, x, y); the checkers here decide membership for a concrete
// output vector. The matching checker deliberately uses the paper's
// output-value semantics ("u and v are matched iff they are adjacent,
// y(u) = y(v), and no other neighbour carries that value") rather than a
// structural edge list, so that the pruning algorithm P_MM of Observation
// 3.3 and the checker agree exactly.
package problems

import (
	"fmt"
	"sort"

	"github.com/unilocal/unilocal/internal/graph"
)

// EdgeClaim is the output value of a matching algorithm at a node: the
// identities of the two endpoints of its matched edge, with A < B. The zero
// EdgeClaim means "unmatched".
type EdgeClaim struct {
	A, B int64
}

// Claimed reports whether the claim designates an edge.
func (c EdgeClaim) Claimed() bool { return c != EdgeClaim{} }

// NewEdgeClaim returns the canonical claim for the edge between identities a
// and b.
func NewEdgeClaim(a, b int64) EdgeClaim {
	if a > b {
		a, b = b, a
	}
	return EdgeClaim{A: a, B: b}
}

// SLCColor is an output value of the strong list coloring problem of
// Section 5.2: a base color C paired with a multiplicity index J. The zero
// value is not a legal color.
type SLCColor struct {
	C, J int
}

// Bools coerces a slice of algorithm outputs to booleans; nil counts as
// false (the "restricted to i rounds" convention assigns an arbitrary
// output, which we canonicalise to the zero value).
func Bools(outputs []any) ([]bool, error) {
	res := make([]bool, len(outputs))
	for i, o := range outputs {
		if o == nil {
			continue
		}
		b, ok := o.(bool)
		if !ok {
			return nil, fmt.Errorf("problems: output %d is %T, want bool", i, o)
		}
		res[i] = b
	}
	return res, nil
}

// Ints coerces a slice of algorithm outputs to ints; nil becomes 0.
func Ints(outputs []any) ([]int, error) {
	res := make([]int, len(outputs))
	for i, o := range outputs {
		if o == nil {
			continue
		}
		v, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("problems: output %d is %T, want int", i, o)
		}
		res[i] = v
	}
	return res, nil
}

// ValidMIS checks that the indicated set is a maximal independent set of g.
func ValidMIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("problems: MIS output has %d entries for %d nodes", len(in), g.N())
	}
	for u := 0; u < g.N(); u++ {
		hasNb := false
		for _, v := range g.Neighbors(u) {
			if in[v] {
				hasNb = true
				if in[u] {
					return fmt.Errorf("problems: MIS not independent at edge %d-%d", u, v)
				}
			}
		}
		if !in[u] && !hasNb {
			return fmt.Errorf("problems: MIS not maximal at node %d", u)
		}
	}
	return nil
}

// ValidRulingSet checks that the indicated set S is an (alpha, beta)-ruling
// set of g: members are pairwise at distance >= alpha and every non-member
// is within distance beta of a member. MIS is the special case (2, 1).
func ValidRulingSet(g *graph.Graph, in []bool, alpha, beta int) error {
	if len(in) != g.N() {
		return fmt.Errorf("problems: ruling set output has %d entries for %d nodes", len(in), g.N())
	}
	if alpha < 1 || beta < 0 {
		return fmt.Errorf("problems: invalid ruling parameters (%d, %d)", alpha, beta)
	}
	// Pairwise distance >= alpha: BFS from each member to depth alpha-1.
	for s := 0; s < g.N(); s++ {
		if !in[s] {
			continue
		}
		dist := boundedBFS(g, []int{s}, alpha-1)
		for v, d := range dist {
			if v != s && d >= 0 && in[v] {
				return fmt.Errorf("problems: ruling set members %d and %d at distance %d < alpha=%d", s, v, d, alpha)
			}
		}
	}
	// Domination within beta: multi-source BFS from S.
	srcs := make([]int, 0)
	for u := 0; u < g.N(); u++ {
		if in[u] {
			srcs = append(srcs, u)
		}
	}
	dist := boundedBFS(g, srcs, beta)
	for u := 0; u < g.N(); u++ {
		if !in[u] && dist[u] < 0 {
			return fmt.Errorf("problems: node %d not dominated within beta=%d", u, beta)
		}
	}
	return nil
}

// boundedBFS returns distances from the sources up to the given depth, or -1
// beyond it.
func boundedBFS(g *graph.Graph, srcs []int, depth int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] == depth {
			continue
		}
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ValidColoring checks that colors is a proper vertex coloring of g with all
// colors in [1, palette]; pass palette <= 0 to skip the range check.
func ValidColoring(g *graph.Graph, colors []int, palette int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("problems: coloring has %d entries for %d nodes", len(colors), g.N())
	}
	for u := 0; u < g.N(); u++ {
		if colors[u] < 1 || (palette > 0 && colors[u] > palette) {
			return fmt.Errorf("problems: node %d has color %d outside [1,%d]", u, colors[u], palette)
		}
		for _, v := range g.Neighbors(u) {
			if colors[v] == colors[u] {
				return fmt.Errorf("problems: edge %d-%d monochromatic (color %d)", u, v, colors[u])
			}
		}
	}
	return nil
}

// MaxColor returns the largest color used (0 for an empty slice).
func MaxColor(colors []int) int {
	m := 0
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}

// Matched reports whether adjacent nodes u and v are matched: both output
// the canonical claim for the edge {u, v} and no other neighbour of either
// carries that value.
//
// This strengthens the paper's opaque-value predicate ("y(u) = y(v) and
// y(w) != y(u) for every other neighbour w") by additionally requiring the
// shared value to be the canonical claim NewEdgeClaim(Id(u), Id(v)). The
// strengthening makes the gluing property of the matching pruner robust:
// a canonically matched pair can never be invalidated retroactively, because
// no third node's legal output ever equals the pair's claim. Algorithms that
// emit canonical claims (all of ours) satisfy both predicates.
func Matched(g *graph.Graph, y []any, u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	want := NewEdgeClaim(g.ID(u), g.ID(v))
	if normalizeClaim(y[u]) != want || normalizeClaim(y[v]) != want {
		return false
	}
	for _, w := range g.Neighbors(u) {
		if int(w) != v && normalizeClaim(y[w]) == want {
			return false
		}
	}
	for _, w := range g.Neighbors(v) {
		if int(w) != u && normalizeClaim(y[w]) == want {
			return false
		}
	}
	return true
}

func normalizeClaim(v any) EdgeClaim {
	if v == nil {
		return EdgeClaim{}
	}
	if c, ok := v.(EdgeClaim); ok {
		return c
	}
	// Non-claim outputs never equal anything, encoded as an impossible claim.
	return EdgeClaim{A: -1, B: -1}
}

// ValidMaximalMatching checks the MM condition of Section 2: every node is
// either matched to a neighbour, or all of its neighbours are matched.
func ValidMaximalMatching(g *graph.Graph, y []any) error {
	if len(y) != g.N() {
		return fmt.Errorf("problems: matching output has %d entries for %d nodes", len(y), g.N())
	}
	matchedTo := make([]int, g.N())
	for u := range matchedTo {
		matchedTo[u] = -1
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if Matched(g, y, u, int(v)) {
				matchedTo[u] = int(v)
				break
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		if matchedTo[u] >= 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if matchedTo[v] < 0 {
				return fmt.Errorf("problems: matching not maximal at edge %d-%d", u, int(v))
			}
		}
	}
	return nil
}

// ValidEdgeColoring checks a proper edge coloring given as one color per
// canonical edge (aligned with g.Edges()), with palette as for ValidColoring.
func ValidEdgeColoring(g *graph.Graph, colors []int, palette int) error {
	edges := g.Edges()
	if len(colors) != len(edges) {
		return fmt.Errorf("problems: edge coloring has %d entries for %d edges", len(colors), len(edges))
	}
	// Two edges conflict iff they share an endpoint: sort each node's
	// incident colors and scan for duplicates (flat slices, no per-node maps).
	byNode := make([][]int, g.N())
	for i, e := range edges {
		c := colors[i]
		if c < 1 || (palette > 0 && c > palette) {
			return fmt.Errorf("problems: edge %v has color %d outside [1,%d]", e, c, palette)
		}
		byNode[e.U] = append(byNode[e.U], c)
		byNode[e.V] = append(byNode[e.V], c)
	}
	for u, cs := range byNode {
		sort.Ints(cs)
		for i := 1; i < len(cs); i++ {
			if cs[i] == cs[i-1] {
				return fmt.Errorf("problems: node %d sees color %d twice", u, cs[i])
			}
		}
	}
	return nil
}

// GreedyMIS returns the lexicographic greedy MIS by node index; used as a
// reference solution and as the gluing witness in property tests.
func GreedyMIS(g *graph.Graph, blocked []bool) []bool {
	in := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		if blocked != nil && blocked[u] {
			continue
		}
		ok := true
		for _, v := range g.Neighbors(u) {
			if in[v] {
				ok = false
				break
			}
		}
		in[u] = ok
	}
	return in
}

// GreedyColoring returns the greedy (degree+1)-coloring by node index.
func GreedyColoring(g *graph.Graph) []int {
	colors := make([]int, g.N())
	// The greedy color of u is at most deg(u)+1, so a Δ+2 palette bitmap
	// reused across nodes replaces the per-node map scratch.
	used := make([]bool, g.MaxDegree()+2)
	for u := 0; u < g.N(); u++ {
		nbs := g.Neighbors(u)
		for _, v := range nbs {
			if c := colors[v]; c > 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[u] = c
		for _, v := range nbs {
			if c := colors[v]; c > 0 && c < len(used) {
				used[c] = false
			}
		}
	}
	return colors
}

// GreedyMatching returns a maximal matching as EdgeClaim outputs, scanning
// edges lexicographically; used as a reference solution in tests.
func GreedyMatching(g *graph.Graph) []any {
	y := make([]any, g.N())
	taken := make([]bool, g.N())
	for _, e := range g.Edges() {
		if !taken[e.U] && !taken[e.V] {
			taken[e.U], taken[e.V] = true, true
			claim := NewEdgeClaim(g.ID(int(e.U)), g.ID(int(e.V)))
			y[e.U], y[e.V] = claim, claim
		}
	}
	for u := range y {
		if y[u] == nil {
			y[u] = EdgeClaim{}
		}
	}
	return y
}
