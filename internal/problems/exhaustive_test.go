package problems

import (
	"math/rand/v2"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
)

// These tests validate the validity checkers themselves by exhaustive
// enumeration on tiny graphs: every subset/assignment is classified both by
// the checker and by a from-the-definition predicate, and the two must
// agree everywhere. The rest of the repository trusts these checkers, so
// they get the strongest test available.

func tinyGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	cyc, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := graph.GNP(6, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.GNP(6, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []*graph.Graph{
		graph.Path(5), cyc, graph.Star(5), graph.Complete(4), g1, g2,
		graph.DisjointUnion(graph.Path(2), graph.Empty(1)),
	}
}

func TestValidMISAgainstEnumeration(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		n := g.N()
		for mask := 0; mask < 1<<uint(n); mask++ {
			in := make([]bool, n)
			for u := 0; u < n; u++ {
				in[u] = mask>>uint(u)&1 == 1
			}
			// From-the-definition predicate.
			want := true
			for u := 0; u < n && want; u++ {
				dominated := in[u]
				for _, v := range g.Neighbors(u) {
					if in[u] && in[v] {
						want = false
						break
					}
					if in[v] {
						dominated = true
					}
				}
				if !dominated {
					want = false
				}
			}
			got := ValidMIS(g, in) == nil
			if got != want {
				t.Fatalf("graph %d mask %b: checker says %v, definition says %v", gi, mask, got, want)
			}
		}
	}
}

func TestValidRulingSetAgainstEnumeration(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		n := g.N()
		for _, beta := range []int{1, 2} {
			for mask := 0; mask < 1<<uint(n); mask++ {
				in := make([]bool, n)
				for u := 0; u < n; u++ {
					in[u] = mask>>uint(u)&1 == 1
				}
				want := true
				for u := 0; u < n && want; u++ {
					dist := graph.BFSDistances(g, u)
					if in[u] {
						for v := 0; v < n; v++ {
							if v != u && in[v] && dist[v] >= 0 && dist[v] < 2 {
								want = false
								break
							}
						}
					} else {
						dominated := false
						for v := 0; v < n; v++ {
							if in[v] && dist[v] >= 0 && dist[v] <= beta {
								dominated = true
								break
							}
						}
						if !dominated {
							want = false
						}
					}
				}
				got := ValidRulingSet(g, in, 2, beta) == nil
				if got != want {
					t.Fatalf("graph %d beta %d mask %b: checker %v, definition %v", gi, beta, mask, got, want)
				}
			}
		}
	}
}

func TestValidColoringAgainstEnumeration(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		n := g.N()
		if n > 5 {
			continue // 4^6 assignments are fine too, but keep it quick
		}
		const palette = 3
		total := 1
		for i := 0; i < n; i++ {
			total *= palette
		}
		for code := 0; code < total; code++ {
			colors := make([]int, n)
			c := code
			for u := 0; u < n; u++ {
				colors[u] = c%palette + 1
				c /= palette
			}
			want := true
			for _, e := range g.Edges() {
				if colors[e.U] == colors[e.V] {
					want = false
					break
				}
			}
			got := ValidColoring(g, colors, palette) == nil
			if got != want {
				t.Fatalf("graph %d code %d: checker %v, definition %v", gi, code, got, want)
			}
		}
	}
}

// TestGreedySolversAgainstEnumeration cross-checks the reference solvers on
// random tiny graphs: a greedy MIS must be among the enumerated valid sets,
// and a greedy matching must pass the enumerated maximality predicate.
func TestGreedySolversAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		g, err := graph.GNP(7, 0.3+0.4*rng.Float64(), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidMIS(g, GreedyMIS(g, nil)); err != nil {
			t.Fatalf("trial %d: greedy MIS invalid: %v", trial, err)
		}
		if err := ValidMaximalMatching(g, GreedyMatching(g)); err != nil {
			t.Fatalf("trial %d: greedy matching invalid: %v", trial, err)
		}
	}
}
