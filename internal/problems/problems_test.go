package problems

import (
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
)

func TestValidMIS(t *testing.T) {
	g := graph.Path(5)
	if err := ValidMIS(g, []bool{true, false, true, false, true}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := ValidMIS(g, []bool{true, true, false, false, true}); err == nil {
		t.Error("non-independent set accepted")
	}
	if err := ValidMIS(g, []bool{true, false, false, false, true}); err == nil {
		t.Error("non-maximal set accepted")
	}
	if err := ValidMIS(g, []bool{true}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestGreedyMISIsValid(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GNP(40, 0.15, seed)
		if err != nil {
			return false
		}
		return ValidMIS(g, GreedyMIS(g, nil)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidRulingSet(t *testing.T) {
	g := graph.Path(7)
	// {0, 3, 6} is a (2,1)-ruling set (an MIS) and also (3,2) and (4,3).
	in := []bool{true, false, false, true, false, false, true}
	for _, tc := range []struct {
		alpha, beta int
		ok          bool
	}{
		{2, 1, true}, {3, 2, true}, {4, 3, false}, {2, 0, false},
	} {
		err := ValidRulingSet(g, in, tc.alpha, tc.beta)
		if (err == nil) != tc.ok {
			t.Errorf("(%d,%d)-ruling: err=%v, want ok=%v", tc.alpha, tc.beta, err, tc.ok)
		}
	}
	// A single far node dominates nothing.
	lone := []bool{true, false, false, false, false, false, false}
	if err := ValidRulingSet(g, lone, 2, 2); err == nil {
		t.Error("undominated configuration accepted")
	}
	if err := ValidRulingSet(g, lone, 2, 6); err != nil {
		t.Errorf("beta=6 should dominate the whole path: %v", err)
	}
}

func TestMISEquivalentToRuling21(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GNP(30, 0.12, seed)
		if err != nil {
			return false
		}
		in := GreedyMIS(g, nil)
		return (ValidMIS(g, in) == nil) == (ValidRulingSet(g, in, 2, 1) == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestValidColoring(t *testing.T) {
	g, _ := graph.Cycle(4)
	if err := ValidColoring(g, []int{1, 2, 1, 2}, 2); err != nil {
		t.Errorf("valid 2-coloring rejected: %v", err)
	}
	if err := ValidColoring(g, []int{1, 2, 1, 1}, 2); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := ValidColoring(g, []int{1, 2, 1, 3}, 2); err == nil {
		t.Error("out-of-palette color accepted")
	}
	if err := ValidColoring(g, []int{0, 2, 1, 2}, 0); err == nil {
		t.Error("color 0 accepted")
	}
	if err := ValidColoring(g, []int{1, 2, 1, 99}, 0); err != nil {
		t.Errorf("palette check not skipped: %v", err)
	}
}

func TestGreedyColoringIsValid(t *testing.T) {
	g, err := graph.GNP(50, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	colors := GreedyColoring(g)
	if err := ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
		t.Error(err)
	}
}

func TestMatchedSemantics(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	claim := NewEdgeClaim(g.ID(1), g.ID(2))
	y := []any{EdgeClaim{}, claim, claim, EdgeClaim{}}
	if !Matched(g, y, 1, 2) {
		t.Error("claimed edge not matched")
	}
	if Matched(g, y, 0, 1) {
		t.Error("unclaimed edge matched")
	}
	// A third node carrying the same value breaks the match.
	y2 := []any{claim, claim, claim, EdgeClaim{}}
	if Matched(g, y2, 1, 2) {
		t.Error("match with duplicated value accepted")
	}
	// Matching values that are not the canonical claim of the edge do not
	// match (the canonical strengthening).
	weird := NewEdgeClaim(998, 999)
	y3 := []any{EdgeClaim{}, weird, weird, EdgeClaim{}}
	if Matched(g, y3, 1, 2) {
		t.Error("non-canonical shared value accepted as a match")
	}
	// Two adjacent zero-claim nodes are never matched.
	y4 := []any{claim, EdgeClaim{}, EdgeClaim{}, claim}
	if Matched(g, y4, 1, 2) {
		t.Error("zero claims accepted as a match")
	}
	// nil output equals the zero claim.
	if normalizeClaim(nil) != (EdgeClaim{}) {
		t.Error("nil not treated as zero claim")
	}
}

func TestValidMaximalMatching(t *testing.T) {
	g := graph.Path(4)
	claim := NewEdgeClaim(g.ID(1), g.ID(2))
	// 1-2 matched: 0 and 3 have all neighbours matched => maximal.
	if err := ValidMaximalMatching(g, []any{EdgeClaim{}, claim, claim, EdgeClaim{}}); err != nil {
		t.Errorf("valid MM rejected: %v", err)
	}
	// Empty matching is not maximal.
	if err := ValidMaximalMatching(g, []any{EdgeClaim{}, EdgeClaim{}, EdgeClaim{}, EdgeClaim{}}); err == nil {
		t.Error("empty matching accepted on a path")
	}
	// Greedy matching is maximal on random graphs.
	rg, err := graph.GNP(40, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidMaximalMatching(rg, GreedyMatching(rg)); err != nil {
		t.Error(err)
	}
}

func TestValidEdgeColoring(t *testing.T) {
	g := graph.Star(4) // 3 edges sharing the centre
	if err := ValidEdgeColoring(g, []int{1, 2, 3}, 3); err != nil {
		t.Errorf("valid edge coloring rejected: %v", err)
	}
	if err := ValidEdgeColoring(g, []int{1, 2, 1}, 3); err == nil {
		t.Error("conflicting edge colors accepted")
	}
	if err := ValidEdgeColoring(g, []int{1, 2, 4}, 3); err == nil {
		t.Error("out-of-palette edge color accepted")
	}
}

func TestCoercions(t *testing.T) {
	bs, err := Bools([]any{true, nil, false})
	if err != nil || !bs[0] || bs[1] || bs[2] {
		t.Errorf("Bools = %v, %v", bs, err)
	}
	if _, err := Bools([]any{3}); err == nil {
		t.Error("Bools accepted an int")
	}
	is, err := Ints([]any{1, nil, 7})
	if err != nil || is[0] != 1 || is[1] != 0 || is[2] != 7 {
		t.Errorf("Ints = %v, %v", is, err)
	}
	if _, err := Ints([]any{"x"}); err == nil {
		t.Error("Ints accepted a string")
	}
}

func TestEdgeClaim(t *testing.T) {
	c := NewEdgeClaim(9, 4)
	if c.A != 4 || c.B != 9 {
		t.Errorf("claim not canonical: %+v", c)
	}
	if (EdgeClaim{}).Claimed() {
		t.Error("zero claim reported as claimed")
	}
	if !c.Claimed() {
		t.Error("real claim reported as unclaimed")
	}
}
