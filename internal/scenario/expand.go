package scenario

import (
	"fmt"
	"io"

	"github.com/unilocal/unilocal/internal/benchfmt"
	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/sweep"
)

// ExpandOptions configures the spec → job expansion.
type ExpandOptions struct {
	// Corpus memoizes the graphs; nil creates a private one.
	Corpus *graph.Corpus
	// SeedOffset is added to every spec seed. cmd/localbench maps its -seed
	// flag to SeedOffset = seed-1, so the default -seed 1 runs the corpus
	// exactly as committed while other values shift the whole grid.
	SeedOffset int64
}

// JobMeta is the planning-time context of one expanded job.
type JobMeta struct {
	// Spec indexes Batch.Specs.
	Spec int
	// Algo is the algorithm the job runs; Role is "uniform" (the algorithm
	// under test) or "baseline".
	Algo AlgoSpec
	Role string
	// Seed is the effective simulation seed (spec seed + offset); Rep is the
	// repetition index.
	Seed int64
	Rep  int
	// Know is the knowledge regime this job's algorithm was built under; the
	// zero value (exact) for uniform algorithms and default-regime corpora.
	Know core.Knowledge
	// RatioOf is the job index of the same (seed, rep)'s tightest baseline
	// run, or -1.
	RatioOf int
	// check validates the run's outputs, or is nil.
	check func(outputs []any) error
}

// label renders the benchfmt record label of one job: role/seed/rep, with a
// λ suffix under non-exact knowledge. Doc and SlotsDoc both write exactly
// this (a serve test pins the two paths together).
func (m *JobMeta) label() string {
	l := fmt.Sprintf("%s/seed=%d/rep=%d", m.Role, m.Seed, m.Rep)
	if !m.Know.IsExact() {
		l += fmt.Sprintf("/lam=%g", m.Know.Looseness)
	}
	return l
}

// Batch is an expanded corpus: the jobs in deterministic order (spec order,
// then seed-major, with the baseline preceding the algorithm under test)
// plus everything rendering needs. Each spec's jobs are contiguous, in its
// Plan's slot order, so batch job index = spec base + plan slot.
type Batch struct {
	Specs  []*Spec
	Plans  []*Plan
	Graphs []*graph.Graph
	Jobs   []sweep.Job
	Metas  []JobMeta
	// AlgoBuilds counts registry Build calls; AlgoShares counts the times a
	// scenario reused an already-built uniform algorithm (and with it the
	// algorithm's memoized plan) instead of constructing a fresh one.
	AlgoBuilds int
	AlgoShares int
}

// Check validates job ji's outputs through its registry checker; jobs whose
// algorithm has no checker accept anything. Shard executors call this on
// exactly the slots they ran — outputs exist only on the process that ran
// the simulation, so validation cannot be deferred to the coordinator.
func (b *Batch) Check(ji int, outputs []any) error {
	if c := b.Metas[ji].check; c != nil {
		return c(outputs)
	}
	return nil
}

// Expand validates the specs and turns them into sweep jobs. Uniform
// algorithms (registry entries without PerGraph) are built once per AlgoSpec
// and shared across every scenario, seed and repetition that names them, so
// their memoized plans are paid once per batch.
func Expand(specs []*Spec, opts ExpandOptions) (*Batch, error) {
	c := opts.Corpus
	if c == nil {
		c = graph.NewCorpus()
	}
	b := &Batch{Specs: specs}
	shared := make(map[AlgoSpec]local.Algorithm)
	for si, s := range specs {
		p, err := PlanOf(s, opts.SeedOffset)
		if err != nil {
			return nil, err
		}
		base, err := s.Graph.Build(c)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		g, err := s.IDs.Apply(c, base)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		b.Graphs = append(b.Graphs, g)
		b.Plans = append(b.Plans, p)

		// The true parameter vector is measured once per spec graph; each
		// PerGraph build receives it filtered through the job's knowledge
		// regime (exact by default, inflated under upper-bound).
		trueParams := engines.GraphParams(g)
		type buildKey struct {
			as   AlgoSpec
			know core.Knowledge
		}
		type buildVal struct {
			algo  local.Algorithm
			check func([]any) error
		}
		built := make(map[buildKey]buildVal)
		build := func(as AlgoSpec, know core.Knowledge) (local.Algorithm, func([]any) error, error) {
			entry, ok := LookupAlgorithm(as.Name)
			if !ok {
				return nil, nil, fmt.Errorf("scenario %s: unknown algorithm %q", s.Name, as.Name)
			}
			var check func([]any) error
			if entry.Check != nil {
				check = func(outputs []any) error { return entry.Check(g, as, outputs) }
			}
			if !entry.PerGraph {
				if a, ok := shared[as]; ok {
					b.AlgoShares++
					return a, check, nil
				}
			} else if v, ok := built[buildKey{as, know}]; ok {
				return v.algo, v.check, nil
			}
			params := core.Params{}
			if entry.PerGraph {
				var err error
				params, err = know.Advertise(trueParams)
				if err != nil {
					return nil, nil, fmt.Errorf("scenario %s: algorithm %s: %w", s.Name, as.Name, err)
				}
			}
			a, err := entry.Build(params, as)
			if err != nil {
				return nil, nil, fmt.Errorf("scenario %s: algorithm %s: %w", s.Name, as.Name, err)
			}
			b.AlgoBuilds++
			if !entry.PerGraph {
				shared[as] = a
			} else {
				built[buildKey{as, know}] = buildVal{algo: a, check: check}
			}
			return a, check, nil
		}

		// The plan already fixed the grid: attach the built graph, algorithm
		// values and checkers to its slots, re-basing RatioOf from plan-local
		// to batch-global indices. The scheduler wraps each job's algorithm
		// value — a pure function of (spec, job seed), so wrapped jobs keep
		// the determinism contract.
		baseIdx := len(b.Jobs)
		for k := range p.Metas {
			m := p.Metas[k]
			a, check, err := build(m.Algo, m.Know)
			if err != nil {
				return nil, err
			}
			a = s.Scheduler.wrapAlgo(a, m.Seed)
			b.Jobs = append(b.Jobs, sweep.Job{
				Label:     p.Labels[k],
				Graph:     g,
				Algo:      func() local.Algorithm { return a },
				Seed:      m.Seed,
				MaxRounds: s.MaxRounds,
				Permute:   s.Scheduler.permuteOpt(),
			})
			m.Spec = si
			if m.RatioOf >= 0 {
				m.RatioOf += baseIdx
			}
			m.check = check
			b.Metas = append(b.Metas, m)
		}
	}
	return b, nil
}

// Summarize validates a batch's results — job errors and registry output
// checks — and reduces them to the deterministic render model. A failed job
// or an invalid output aborts with an error naming the job.
func Summarize(b *Batch, results []sweep.Result) (*Table, error) {
	if len(results) != len(b.Jobs) {
		return nil, fmt.Errorf("scenario: %d results for %d jobs", len(results), len(b.Jobs))
	}
	t := &Table{Jobs: len(b.Jobs), Sections: make([]Section, 0, len(b.Plans))}
	base := 0
	for si, p := range b.Plans {
		slots := make([]SlotOutcome, len(p.Metas))
		for k := range p.Metas {
			ji := base + k
			r := results[ji]
			if r.Err != nil {
				return nil, fmt.Errorf("scenario %s: %s: %w", b.Specs[si].Name, b.Jobs[ji].Label, r.Err)
			}
			if err := b.Check(ji, r.Res.Outputs); err != nil {
				return nil, fmt.Errorf("scenario %s: %s: invalid output: %w", b.Specs[si].Name, b.Jobs[ji].Label, err)
			}
			slots[k] = SlotOutcome{Slot: k, Rounds: r.Res.Rounds, Messages: r.Res.Messages}
		}
		sec, err := SectionFrom(p, InfoOf(b.Graphs[si]), slots)
		if err != nil {
			return nil, err
		}
		t.Sections = append(t.Sections, sec)
		base += len(p.Metas)
	}
	return t, nil
}

// Render writes the corpus results as markdown, one section per scenario, in
// batch order. Every rendered field is deterministic (rounds, messages,
// ratios — never wall time), so sequential and parallel sweeps of the same
// batch produce byte-identical output; CI's scenario gate diffs exactly
// this. Each job's outputs are re-validated through its registry checker,
// and a failed check (or failed job) aborts rendering with an error.
// Internally this is Summarize followed by Table.Write — the same model and
// writer the distributed fabric merges shard documents into, which is what
// makes a multi-replica sweep byte-identical to this single-process path.
func Render(w io.Writer, b *Batch, results []sweep.Result) error {
	t, err := Summarize(b, results)
	if err != nil {
		return err
	}
	return t.Write(w)
}

// SlotsDoc rebuilds the serving layer's scrubbed benchfmt document for one
// plan from slot outcomes alone — no batch, no results, no graph. Every
// field it writes is a pure function of (plan, graph header, outcomes), so a
// document reassembled from journaled shard checkpoints after a crash is
// byte-identical to the one serve.DeterministicDoc renders for an
// uninterrupted synchronous run of the same spec (a serve test pins the two
// paths together). Wall times, allocation counters and parallelism are zero
// by construction, exactly as DeterministicDoc scrubs them.
func SlotsDoc(p *Plan, info GraphInfo, slots []SlotOutcome, seed int64) (*benchfmt.Doc, error) {
	if len(slots) != len(p.Metas) {
		return nil, fmt.Errorf("scenario %s: %d slot outcomes for %d jobs", p.Spec.Name, len(slots), len(p.Metas))
	}
	records := make([]benchfmt.Record, 0, len(p.Metas))
	for i := range p.Metas {
		m := &p.Metas[i]
		rec := benchfmt.Record{
			Experiment: p.Spec.Name,
			Label:      m.label(),
			Algorithm:  m.Algo.String(),
			N:          info.N,
			Rounds:     slots[i].Rounds,
			Messages:   slots[i].Messages,
		}
		if m.RatioOf >= 0 {
			rec.Ratio = float64(slots[i].Rounds) / float64(slots[m.RatioOf].Rounds)
		}
		records = append(records, rec)
	}
	return &benchfmt.Doc{
		SchemaVersion: benchfmt.SchemaVersion,
		GeneratedBy:   "cmd/localserved",
		Seed:          seed,
		Sweep:         benchfmt.SweepStats{Jobs: len(slots)},
		Results:       records,
	}, nil
}

// Doc assembles the benchfmt document for a completed batch: one record per
// job in batch order (Experiment = scenario name), plus the sweep throughput
// block. Unlike Render it does not re-validate outputs; run Render first (or
// check errors yourself) before trusting the records.
func Doc(b *Batch, results []sweep.Result, stats sweep.Stats, seed int64, parallel, workers int) (*benchfmt.Doc, error) {
	records := make([]benchfmt.Record, 0, len(b.Jobs))
	for ji := range b.Jobs {
		m := &b.Metas[ji]
		r := results[ji]
		if r.Err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", b.Specs[m.Spec].Name, b.Jobs[ji].Label, r.Err)
		}
		rec := benchfmt.Record{
			Experiment: b.Specs[m.Spec].Name,
			Label:      m.label(),
			Algorithm:  m.Algo.String(),
			N:          b.Graphs[m.Spec].N(),
			Rounds:     r.Res.Rounds,
			Messages:   r.Res.Messages,
			WallNs:     r.Wall.Nanoseconds(),
			Allocs:     r.Allocs,
		}
		if m.RatioOf >= 0 && results[m.RatioOf].Res != nil {
			rec.Ratio = float64(r.Res.Rounds) / float64(results[m.RatioOf].Res.Rounds)
		}
		records = append(records, rec)
	}
	return &benchfmt.Doc{
		SchemaVersion: benchfmt.SchemaVersion,
		GeneratedBy:   "cmd/localbench -scenarios",
		Seed:          seed,
		Parallel:      parallel,
		Workers:       workers,
		Sweep: benchfmt.SweepStats{
			Jobs:         stats.Jobs,
			Workers:      stats.Workers,
			WallNs:       stats.Wall.Nanoseconds(),
			JobsPerSec:   stats.JobsPerSec,
			EngineAllocs: stats.EngineAllocs,
		},
		Results: records,
	}, nil
}
