package scenario

import (
	"fmt"
	"io"

	"github.com/unilocal/unilocal/internal/benchfmt"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/sweep"
)

// ExpandOptions configures the spec → job expansion.
type ExpandOptions struct {
	// Corpus memoizes the graphs; nil creates a private one.
	Corpus *graph.Corpus
	// SeedOffset is added to every spec seed. cmd/localbench maps its -seed
	// flag to SeedOffset = seed-1, so the default -seed 1 runs the corpus
	// exactly as committed while other values shift the whole grid.
	SeedOffset int64
}

// JobMeta is the planning-time context of one expanded job.
type JobMeta struct {
	// Spec indexes Batch.Specs.
	Spec int
	// Algo is the algorithm the job runs; Role is "uniform" (the algorithm
	// under test) or "baseline".
	Algo AlgoSpec
	Role string
	// Seed is the effective simulation seed (spec seed + offset); Rep is the
	// repetition index.
	Seed int64
	Rep  int
	// RatioOf is the job index of the same (seed, rep)'s baseline run, or -1.
	RatioOf int
	// check validates the run's outputs, or is nil.
	check func(outputs []any) error
}

// Batch is an expanded corpus: the jobs in deterministic order (spec order,
// then seed-major, with the baseline preceding the algorithm under test)
// plus everything rendering needs.
type Batch struct {
	Specs  []*Spec
	Graphs []*graph.Graph
	Jobs   []sweep.Job
	Metas  []JobMeta
	// AlgoBuilds counts registry Build calls; AlgoShares counts the times a
	// scenario reused an already-built uniform algorithm (and with it the
	// algorithm's memoized plan) instead of constructing a fresh one.
	AlgoBuilds int
	AlgoShares int
}

// Expand validates the specs and turns them into sweep jobs. Uniform
// algorithms (registry entries without PerGraph) are built once per AlgoSpec
// and shared across every scenario, seed and repetition that names them, so
// their memoized plans are paid once per batch.
func Expand(specs []*Spec, opts ExpandOptions) (*Batch, error) {
	c := opts.Corpus
	if c == nil {
		c = graph.NewCorpus()
	}
	b := &Batch{Specs: specs}
	shared := make(map[AlgoSpec]local.Algorithm)
	for si, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		base, err := s.Graph.Build(c)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		g, err := s.IDs.Apply(c, base)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		b.Graphs = append(b.Graphs, g)

		build := func(as AlgoSpec) (local.Algorithm, func([]any) error, error) {
			entry, ok := LookupAlgorithm(as.Name)
			if !ok {
				return nil, nil, fmt.Errorf("scenario %s: unknown algorithm %q", s.Name, as.Name)
			}
			var check func([]any) error
			if entry.Check != nil {
				check = func(outputs []any) error { return entry.Check(g, as, outputs) }
			}
			if !entry.PerGraph {
				if a, ok := shared[as]; ok {
					b.AlgoShares++
					return a, check, nil
				}
			}
			a, err := entry.Build(g, as)
			if err != nil {
				return nil, nil, fmt.Errorf("scenario %s: algorithm %s: %w", s.Name, as.Name, err)
			}
			b.AlgoBuilds++
			if !entry.PerGraph {
				shared[as] = a
			}
			return a, check, nil
		}

		algo, algoCheck, err := build(s.Algorithm)
		if err != nil {
			return nil, err
		}
		var baseline local.Algorithm
		var baselineCheck func([]any) error
		if s.Baseline != nil {
			baseline, baselineCheck, err = build(*s.Baseline)
			if err != nil {
				return nil, err
			}
		}

		add := func(as AlgoSpec, a local.Algorithm, role string, seed int64, rep int, check func([]any) error) int {
			idx := len(b.Jobs)
			b.Jobs = append(b.Jobs, sweep.Job{
				Label:     fmt.Sprintf("%s/%s/seed=%d/rep=%d", s.Name, as.Name, seed, rep),
				Graph:     g,
				Algo:      func() local.Algorithm { return a },
				Seed:      seed,
				MaxRounds: s.MaxRounds,
			})
			b.Metas = append(b.Metas, JobMeta{
				Spec: si, Algo: as, Role: role, Seed: seed, Rep: rep, RatioOf: -1, check: check,
			})
			return idx
		}

		for _, sd := range s.seeds() {
			seed := sd + opts.SeedOffset
			for rep := 0; rep < s.repeat(); rep++ {
				bi := -1
				if baseline != nil {
					bi = add(*s.Baseline, baseline, "baseline", seed, rep, baselineCheck)
				}
				ui := add(s.Algorithm, algo, "uniform", seed, rep, algoCheck)
				b.Metas[ui].RatioOf = bi
			}
		}
	}
	return b, nil
}

// Render writes the corpus results as markdown, one section per scenario, in
// batch order. Every rendered field is deterministic (rounds, messages,
// ratios — never wall time), so sequential and parallel sweeps of the same
// batch produce byte-identical output; CI's scenario gate diffs exactly
// this. Each job's outputs are re-validated through its registry checker,
// and a failed check (or failed job) aborts rendering with an error.
func Render(w io.Writer, b *Batch, results []sweep.Result) error {
	if len(results) != len(b.Jobs) {
		return fmt.Errorf("scenario: %d results for %d jobs", len(results), len(b.Jobs))
	}
	fmt.Fprintf(w, "## Scenario corpus — %d scenarios, %d jobs\n", len(b.Specs), len(b.Jobs))
	for si, s := range b.Specs {
		g := b.Graphs[si]
		fmt.Fprintf(w, "\n### %s\n\n", s.Name)
		if s.Description != "" {
			fmt.Fprintf(w, "%s\n\n", s.Description)
		}
		fmt.Fprintf(w, "graph: %s · ids: %s · n=%d · edges=%d · Δ=%d · m=%d\n\n",
			s.Graph, s.IDs, g.N(), g.NumEdges(), g.MaxDegree(), g.MaxIDValue())
		fmt.Fprintln(w, "| algorithm | role | seed | rep | rounds | messages | ratio |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
		for ji := range b.Jobs {
			m := &b.Metas[ji]
			if m.Spec != si {
				continue
			}
			r := results[ji]
			if r.Err != nil {
				return fmt.Errorf("scenario %s: %s: %w", s.Name, b.Jobs[ji].Label, r.Err)
			}
			if m.check != nil {
				if err := m.check(r.Res.Outputs); err != nil {
					return fmt.Errorf("scenario %s: %s: invalid output: %w", s.Name, b.Jobs[ji].Label, err)
				}
			}
			ratio := "—"
			if m.RatioOf >= 0 {
				base := results[m.RatioOf]
				if base.Err != nil {
					return fmt.Errorf("scenario %s: baseline: %w", s.Name, base.Err)
				}
				ratio = fmt.Sprintf("%.2f", float64(r.Res.Rounds)/float64(base.Res.Rounds))
			}
			fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %d | %s |\n",
				m.Algo, m.Role, m.Seed, m.Rep, r.Res.Rounds, r.Res.Messages, ratio)
		}
	}
	return nil
}

// Doc assembles the benchfmt document for a completed batch: one record per
// job in batch order (Experiment = scenario name), plus the sweep throughput
// block. Unlike Render it does not re-validate outputs; run Render first (or
// check errors yourself) before trusting the records.
func Doc(b *Batch, results []sweep.Result, stats sweep.Stats, seed int64, parallel, workers int) (*benchfmt.Doc, error) {
	records := make([]benchfmt.Record, 0, len(b.Jobs))
	for ji := range b.Jobs {
		m := &b.Metas[ji]
		r := results[ji]
		if r.Err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", b.Specs[m.Spec].Name, b.Jobs[ji].Label, r.Err)
		}
		rec := benchfmt.Record{
			Experiment: b.Specs[m.Spec].Name,
			Label:      fmt.Sprintf("%s/seed=%d/rep=%d", m.Role, m.Seed, m.Rep),
			Algorithm:  m.Algo.String(),
			N:          b.Graphs[m.Spec].N(),
			Rounds:     r.Res.Rounds,
			Messages:   r.Res.Messages,
			WallNs:     r.Wall.Nanoseconds(),
			Allocs:     r.Allocs,
		}
		if m.RatioOf >= 0 && results[m.RatioOf].Res != nil {
			rec.Ratio = float64(r.Res.Rounds) / float64(results[m.RatioOf].Res.Rounds)
		}
		records = append(records, rec)
	}
	return &benchfmt.Doc{
		SchemaVersion: benchfmt.SchemaVersion,
		GeneratedBy:   "cmd/localbench -scenarios",
		Seed:          seed,
		Parallel:      parallel,
		Workers:       workers,
		Sweep: benchfmt.SweepStats{
			Jobs:         stats.Jobs,
			Workers:      stats.Workers,
			WallNs:       stats.Wall.Nanoseconds(),
			JobsPerSec:   stats.JobsPerSec,
			EngineAllocs: stats.EngineAllocs,
		},
		Results: records,
	}, nil
}
