package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/unilocal/unilocal/internal/graph"
)

// GraphSpec declaratively names one generated topology: a family plus the
// subset of parameters that family consumes. It is the JSON-facing half of
// the graph layer — every family listed by Families builds through a
// graph.Corpus, so identical specs across scenarios share one instance.
type GraphSpec struct {
	Family string `json:"family"`
	// N is the node count (the spine length for caterpillar, the clique size
	// for lollipop).
	N int `json:"n,omitempty"`
	// Rows and Cols size the grid and torus families.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// D is the degree (regular) or dimension (hypercube).
	D int `json:"d,omitempty"`
	// K is the forest count (forest), legs per spine node (caterpillar),
	// tail length (lollipop), attachments per node (ba), or lattice degree
	// (smallworld).
	K int `json:"k,omitempty"`
	// P is the edge probability (gnp).
	P float64 `json:"p,omitempty"`
	// Radius is the connection radius (geometric).
	Radius float64 `json:"radius,omitempty"`
	// Beta is the rewiring probability (smallworld).
	Beta float64 `json:"beta,omitempty"`
	// Seed drives the family's generator; deterministic families ignore it.
	Seed int64 `json:"seed,omitempty"`
}

// String renders the spec compactly and deterministically, e.g.
// "smallworld(n=1024, k=6, beta=0.1, seed=2)". Only set fields appear, in a
// fixed order, so the string is stable across runs and processes.
func (gs GraphSpec) String() string {
	var b strings.Builder
	b.WriteString(gs.Family)
	b.WriteByte('(')
	first := true
	add := func(name, val string) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if gs.N != 0 {
		add("n", fmt.Sprint(gs.N))
	}
	if gs.Rows != 0 {
		add("rows", fmt.Sprint(gs.Rows))
	}
	if gs.Cols != 0 {
		add("cols", fmt.Sprint(gs.Cols))
	}
	if gs.D != 0 {
		add("d", fmt.Sprint(gs.D))
	}
	if gs.K != 0 {
		add("k", fmt.Sprint(gs.K))
	}
	if gs.P != 0 {
		add("p", fmt.Sprintf("%g", gs.P))
	}
	if gs.Radius != 0 {
		add("radius", fmt.Sprintf("%g", gs.Radius))
	}
	if gs.Beta != 0 {
		add("beta", fmt.Sprintf("%g", gs.Beta))
	}
	if gs.Seed != 0 {
		add("seed", fmt.Sprint(gs.Seed))
	}
	b.WriteByte(')')
	return b.String()
}

// fieldSet declares which GraphSpec parameters a family consumes; Validate
// rejects any set parameter outside the set, so a mis-parameterized spec
// (e.g. "n" on hypercube, which takes "d") fails loudly instead of silently
// measuring a different graph than its author intended.
type fieldSet struct {
	N, Rows, Cols, D, K, P, Radius, Beta, Seed bool
}

// Family describes one graph family: its spec parameters (for help text and
// validation) and its corpus-backed builder. The table below is the single
// source of truth for every consumer — the scenario loader, cmd/scenarioctl
// and cmd/graphgen all enumerate it, so a family added here appears
// everywhere at once.
type Family struct {
	// Name is the spec's family string.
	Name string
	// Params names the GraphSpec fields the family consumes, for help text.
	Params string
	// Doc is a one-line description.
	Doc string
	// Validate rejects out-of-range parameters without building.
	Validate func(gs GraphSpec) error
	// Build constructs (or fetches) the graph through the corpus.
	Build func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error)
	// uses declares the consumed parameters (enforced by GraphSpec.Validate,
	// applied by Normalize).
	uses fieldSet
}

func needN(gs GraphSpec) error {
	if gs.N < 1 {
		return fmt.Errorf("family %s needs n >= 1, got %d", gs.Family, gs.N)
	}
	return nil
}

var families = map[string]Family{
	"path": {
		Name: "path", Params: "n", Doc: "the path on n nodes",
		uses:     fieldSet{N: true},
		Validate: needN,
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.Path(gs.N), nil
		},
	},
	"cycle": {
		Name: "cycle", Params: "n", Doc: "the cycle on n >= 3 nodes",
		uses: fieldSet{N: true},
		Validate: func(gs GraphSpec) error {
			if gs.N < 3 {
				return fmt.Errorf("family cycle needs n >= 3, got %d", gs.N)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.Cycle(gs.N)
		},
	},
	"star": {
		Name: "star", Params: "n", Doc: "the star with one centre and n-1 leaves",
		uses:     fieldSet{N: true},
		Validate: needN,
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.Star(gs.N), nil
		},
	},
	"clique": {
		Name: "clique", Params: "n", Doc: "the complete graph K_n",
		uses:     fieldSet{N: true},
		Validate: needN,
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.Complete(gs.N), nil
		},
	},
	"grid": {
		Name: "grid", Params: "rows, cols", Doc: "the rows x cols grid",
		uses: fieldSet{Rows: true, Cols: true},
		Validate: func(gs GraphSpec) error {
			if gs.Rows < 1 || gs.Cols < 1 {
				return fmt.Errorf("family grid needs rows, cols >= 1, got %dx%d", gs.Rows, gs.Cols)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.Grid(gs.Rows, gs.Cols), nil
		},
	},
	"torus": {
		Name: "torus", Params: "rows, cols", Doc: "the rows x cols torus (grid with wraparound)",
		uses: fieldSet{Rows: true, Cols: true},
		Validate: func(gs GraphSpec) error {
			if gs.Rows < 3 || gs.Cols < 3 {
				return fmt.Errorf("family torus needs rows, cols >= 3, got %dx%d", gs.Rows, gs.Cols)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			key := graph.CorpusKey{Family: "torus", A: int64(gs.Rows), B: int64(gs.Cols)}
			return c.Get(key, func() (*graph.Graph, error) { return graph.Torus(gs.Rows, gs.Cols) })
		},
	},
	"hypercube": {
		Name: "hypercube", Params: "d", Doc: "the d-dimensional hypercube on 2^d nodes",
		uses: fieldSet{D: true},
		Validate: func(gs GraphSpec) error {
			if gs.D < 0 || gs.D > 20 {
				return fmt.Errorf("family hypercube needs d in [0, 20], got %d", gs.D)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			key := graph.CorpusKey{Family: "hypercube", A: int64(gs.D)}
			return c.Get(key, func() (*graph.Graph, error) { return graph.Hypercube(gs.D) })
		},
	},
	"tree": {
		Name: "tree", Params: "n, seed", Doc: "a uniformly random recursive tree",
		uses:     fieldSet{N: true, Seed: true},
		Validate: needN,
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.RandomTree(gs.N, gs.Seed), nil
		},
	},
	"caterpillar": {
		Name: "caterpillar", Params: "n (spine), k (legs)",
		uses: fieldSet{N: true, K: true},
		Doc:  "a spine path with k pendant leaves per spine node",
		Validate: func(gs GraphSpec) error {
			if gs.N < 1 || gs.K < 0 {
				return fmt.Errorf("family caterpillar needs n >= 1 and k >= 0, got n=%d k=%d", gs.N, gs.K)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			key := graph.CorpusKey{Family: "caterpillar", A: int64(gs.N), B: int64(gs.K)}
			return c.Get(key, func() (*graph.Graph, error) { return graph.Caterpillar(gs.N, gs.K), nil })
		},
	},
	"lollipop": {
		Name: "lollipop", Params: "n (clique), k (tail)",
		uses: fieldSet{N: true, K: true},
		Doc:  "a clique of size n with a pendant path of k nodes",
		Validate: func(gs GraphSpec) error {
			if gs.N < 1 || gs.K < 0 {
				return fmt.Errorf("family lollipop needs n >= 1 and k >= 0, got n=%d k=%d", gs.N, gs.K)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			key := graph.CorpusKey{Family: "lollipop", A: int64(gs.N), B: int64(gs.K)}
			return c.Get(key, func() (*graph.Graph, error) { return graph.Lollipop(gs.N, gs.K), nil })
		},
	},
	"gnp": {
		Name: "gnp", Params: "n, p, seed", Doc: "the Erdős–Rényi random graph G(n, p)",
		uses: fieldSet{N: true, P: true, Seed: true},
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if gs.P < 0 || gs.P > 1 || math.IsNaN(gs.P) {
				return fmt.Errorf("family gnp needs p in [0, 1], got %v", gs.P)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.GNP(gs.N, gs.P, gs.Seed)
		},
	},
	"regular": {
		Name: "regular", Params: "n, d, seed", Doc: "a random d-regular simple graph",
		uses: fieldSet{N: true, D: true, Seed: true},
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if gs.D < 0 || gs.D >= gs.N || gs.N*gs.D%2 != 0 {
				return fmt.Errorf("family regular needs 0 <= d < n with n*d even, got n=%d d=%d", gs.N, gs.D)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.RandomRegular(gs.N, gs.D, gs.Seed)
		},
	},
	"forest": {
		Name: "forest", Params: "n, k, seed",
		uses: fieldSet{N: true, K: true, Seed: true},
		Doc:  "the union of k random recursive forests (arboricity <= k)",
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if gs.K < 1 {
				return fmt.Errorf("family forest needs k >= 1, got %d", gs.K)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.ForestUnion(gs.N, gs.K, gs.Seed), nil
		},
	},
	"ba": {
		Name: "ba", Params: "n, k (attachments), seed",
		uses: fieldSet{N: true, K: true, Seed: true},
		Doc:  "Barabási–Albert preferential attachment (power-law tail, degeneracy <= k)",
		Validate: func(gs GraphSpec) error {
			if gs.K < 1 || gs.K >= gs.N {
				return fmt.Errorf("family ba needs 1 <= k < n, got n=%d k=%d", gs.N, gs.K)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.PreferentialAttachment(gs.N, gs.K, gs.Seed)
		},
	},
	"geometric": {
		Name: "geometric", Params: "n, radius, seed",
		uses: fieldSet{N: true, Radius: true, Seed: true},
		Doc:  "random geometric (unit-disk) graph on the unit square",
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if !(gs.Radius > 0 && gs.Radius <= 1) {
				return fmt.Errorf("family geometric needs radius in (0, 1], got %v", gs.Radius)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.RandomGeometric(gs.N, gs.Radius, gs.Seed)
		},
	},
	"huge-geometric": {
		Name: "huge-geometric", Params: "n, d (target average degree), seed",
		uses: fieldSet{N: true, D: true, Seed: true},
		Doc:  "big-graph geometric: unit-disk graph with radius derived from a target average degree",
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if int64(gs.N) > graph.MaxID {
				return fmt.Errorf("family huge-geometric needs n <= %d, got %d", graph.MaxID, gs.N)
			}
			if gs.D < 1 || gs.D >= gs.N {
				return fmt.Errorf("family huge-geometric needs 1 <= d < n, got n=%d d=%d", gs.N, gs.D)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.RandomGeometric(gs.N, hugeGeomRadius(gs.N, gs.D), gs.Seed)
		},
	},
	"huge-ba": {
		Name: "huge-ba", Params: "n, k (attachments), seed",
		uses: fieldSet{N: true, K: true, Seed: true},
		Doc:  "big-graph preferential attachment: ba at 10^7–10^8 nodes via streaming CSR generation",
		Validate: func(gs GraphSpec) error {
			if err := needN(gs); err != nil {
				return err
			}
			if int64(gs.N) > graph.MaxID {
				return fmt.Errorf("family huge-ba needs n <= %d, got %d", graph.MaxID, gs.N)
			}
			if gs.K < 1 || gs.K >= gs.N {
				return fmt.Errorf("family huge-ba needs 1 <= k < n, got n=%d k=%d", gs.N, gs.K)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.PreferentialAttachment(gs.N, gs.K, gs.Seed)
		},
	},
	"smallworld": {
		Name: "smallworld", Params: "n, k (lattice degree), beta, seed",
		uses: fieldSet{N: true, K: true, Beta: true, Seed: true},
		Doc:  "Watts–Strogatz small world: ring lattice with beta-rewired edges",
		Validate: func(gs GraphSpec) error {
			if gs.K < 2 || gs.K%2 != 0 || gs.K >= gs.N {
				return fmt.Errorf("family smallworld needs even k in [2, n), got n=%d k=%d", gs.N, gs.K)
			}
			if gs.Beta < 0 || gs.Beta > 1 || math.IsNaN(gs.Beta) {
				return fmt.Errorf("family smallworld needs beta in [0, 1], got %v", gs.Beta)
			}
			return nil
		},
		Build: func(c *graph.Corpus, gs GraphSpec) (*graph.Graph, error) {
			return c.WattsStrogatz(gs.N, gs.K, gs.Beta, gs.Seed)
		},
	},
}

// hugeGeomRadius derives the unit-disk radius that gives a target average
// degree d on n uniform points: the expected degree is ~(n-1)·πr², so
// r = sqrt(d / (π(n-1))). The formula is a fixed deterministic function of
// the spec, so a huge-geometric spec names the same underlying geometric
// corpus key (and store image) on every replica.
func hugeGeomRadius(n, d int) float64 {
	r := math.Sqrt(float64(d) / (math.Pi * float64(n-1)))
	if r > 1 {
		r = 1
	}
	return r
}

// satMulInt multiplies non-negative sizes saturating at math.MaxInt, so a
// client-supplied dimension pair can never wrap a size estimate negative
// (which would slip past any "estimate > limit" admission check). Negative
// inputs — impossible after Validate, but estimators stay total — clamp
// to 0.
func satMulInt(a, b int) int {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// satAddInt adds non-negative sizes saturating at math.MaxInt.
func satAddInt(a, b int) int {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// ApproxNodes estimates the node count the (validated) spec will build —
// an upper bound good enough for admission control in serving contexts,
// where an arbitrary client must not be able to commission an arbitrarily
// large graph. Arithmetic saturates at math.MaxInt, so absurd dimensions
// report absurd (never negative) estimates. Unknown families report their
// raw n.
func (gs GraphSpec) ApproxNodes() int {
	switch gs.Family {
	case "grid", "torus":
		return satMulInt(gs.Rows, gs.Cols)
	case "hypercube":
		if gs.D < 0 {
			return 0
		}
		if gs.D >= 62 { // Validate caps d at 20; stay total regardless
			return math.MaxInt
		}
		return 1 << gs.D
	case "caterpillar":
		return satMulInt(gs.N, satAddInt(gs.K, 1))
	case "lollipop":
		return satAddInt(gs.N, gs.K)
	default:
		return max(gs.N, 0)
	}
}

// ApproxEdges estimates the edge count the (validated) spec will build, for
// the same admission purpose: families whose edge count is superlinear in n
// (clique, lollipop, dense gnp/geometric) must be bounded by the memory
// they actually allocate, not their node count.
func (gs GraphSpec) ApproxEdges() int {
	half := func(n int) int { return satMulInt(n, n-1) / 2 }
	switch gs.Family {
	case "clique":
		return half(gs.N)
	case "lollipop":
		return satAddInt(half(gs.N), gs.K)
	case "grid", "torus":
		return satMulInt(2, satMulInt(gs.Rows, gs.Cols))
	case "hypercube":
		return satMulInt(gs.D, gs.ApproxNodes()) / 2
	case "regular":
		return satMulInt(gs.N, gs.D) / 2
	case "gnp":
		return int(math.Min(gs.P*float64(half(gs.N)), math.MaxInt/2))
	case "geometric":
		// Expected pairs within radius r on the unit square: ~ n²·πr²/2.
		return int(math.Min(math.Pi*gs.Radius*gs.Radius*float64(half(gs.N)), math.MaxInt/2))
	case "huge-geometric":
		// The radius is derived from the target average degree d, so the
		// expected edge count is simply n·d/2.
		return satMulInt(gs.N, gs.D) / 2
	case "ba", "huge-ba", "smallworld", "forest", "caterpillar":
		k := gs.K
		if k == 0 {
			k = 1
		}
		return satMulInt(gs.ApproxNodes(), k)
	default:
		return gs.ApproxNodes()
	}
}

// Families returns the family table sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyTable renders the family table as aligned help text, one line per
// family — the single listing cmd/graphgen -families and cmd/scenarioctl
// -families both print.
func FamilyTable() string {
	var b strings.Builder
	for _, f := range Families() {
		fmt.Fprintf(&b, "%-14s (%s) — %s\n", f.Name, f.Params, f.Doc)
	}
	return b.String()
}

// FamilyNames returns the comma-separated sorted family names, for help text.
func FamilyNames() string {
	var names []string
	for _, f := range Families() {
		names = append(names, f.Name)
	}
	return strings.Join(names, ", ")
}

// LookupFamily returns the family table entry for name.
func LookupFamily(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// Validate checks the spec against its family's parameter ranges without
// building the graph. A set parameter the family does not consume is an
// error, for the same reason the loader rejects unknown JSON fields: a spec
// that silently measures something other than what its author wrote is the
// drift a declarative corpus exists to surface.
func (gs GraphSpec) Validate() error {
	f, ok := families[gs.Family]
	if !ok {
		return fmt.Errorf("unknown graph family %q (have: %s)", gs.Family, FamilyNames())
	}
	type param struct {
		name string
		set  bool
		used bool
	}
	for _, p := range []param{
		{"n", gs.N != 0, f.uses.N},
		{"rows", gs.Rows != 0, f.uses.Rows},
		{"cols", gs.Cols != 0, f.uses.Cols},
		{"d", gs.D != 0, f.uses.D},
		{"k", gs.K != 0, f.uses.K},
		{"p", gs.P != 0, f.uses.P},
		{"radius", gs.Radius != 0, f.uses.Radius},
		{"beta", gs.Beta != 0, f.uses.Beta},
		{"seed", gs.Seed != 0, f.uses.Seed},
	} {
		if p.set && !p.used {
			return fmt.Errorf("family %s takes no %s parameter (takes: %s)", gs.Family, p.name, f.Params)
		}
	}
	return f.Validate(gs)
}

// Normalize returns gs with every parameter its family does not consume
// zeroed. Flag-driven callers (cmd/graphgen) populate every field with flag
// defaults; normalizing first makes the result identical to what a scenario
// file would declare. Unknown families pass through untouched for Validate
// to reject.
func Normalize(gs GraphSpec) GraphSpec {
	f, ok := families[gs.Family]
	if !ok {
		return gs
	}
	if !f.uses.N {
		gs.N = 0
	}
	if !f.uses.Rows {
		gs.Rows = 0
	}
	if !f.uses.Cols {
		gs.Cols = 0
	}
	if !f.uses.D {
		gs.D = 0
	}
	if !f.uses.K {
		gs.K = 0
	}
	if !f.uses.P {
		gs.P = 0
	}
	if !f.uses.Radius {
		gs.Radius = 0
	}
	if !f.uses.Beta {
		gs.Beta = 0
	}
	if !f.uses.Seed {
		gs.Seed = 0
	}
	return gs
}

// Build constructs the graph through the corpus.
func (gs GraphSpec) Build(c *graph.Corpus) (*graph.Graph, error) {
	if err := gs.Validate(); err != nil {
		return nil, err
	}
	return families[gs.Family].Build(c, gs)
}
