package scenario

import (
	"fmt"
	"io"
	"strings"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
)

// GraphInfo is the deterministic graph header of one scenario section —
// exactly the fields the rendered document prints. A shard reports these
// over the wire so the coordinator can reproduce the header (and
// cross-check that every replica built the same graph) without building the
// graph itself.
type GraphInfo struct {
	N      int   `json:"n"`
	Edges  int   `json:"edges"`
	MaxDeg int   `json:"max_degree"`
	MaxID  int64 `json:"max_id"`
}

// InfoOf reads the header fields off a built graph.
func InfoOf(g *graph.Graph) GraphInfo {
	return GraphInfo{N: g.N(), Edges: g.NumEdges(), MaxDeg: g.MaxDegree(), MaxID: g.MaxIDValue()}
}

// SlotOutcome is the deterministic outcome of one job slot: the only fields
// that cross the wire in a shard document. Outputs never travel — they are
// validated by the registry checkers on the process that ran the slot.
type SlotOutcome struct {
	Slot     int   `json:"slot"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// Row is one rendered table line.
type Row struct {
	Algo     string
	Role     string
	Seed     int64
	Rep      int
	Rounds   int
	Messages int64
	Ratio    string
}

// SweepRow is one (seed, rep) line of a looseness-sweep pivot: the uniform
// algorithm's rounds next to the baseline's rounds at every λ of the grid.
type SweepRow struct {
	Seed     int64
	Rep      int
	Uniform  int
	Baseline []int
}

// Section is one scenario's slice of the render model.
type Section struct {
	Name        string
	Description string
	Graph       string
	IDs         string
	// Knowledge and Scheduler render in the header only when the spec sets
	// a non-default regime, so exact-knowledge corpora stay byte-identical.
	Knowledge string
	Scheduler string
	Info      GraphInfo
	Rows      []Row
	// Looseness and Sweep carry the pivot table of an upper-bound spec with
	// a multi-λ grid and a single uniform run per (seed, rep); empty
	// otherwise.
	Looseness []float64
	Sweep     []SweepRow
}

// Table is the deterministic render model of a whole corpus document. Both
// execution paths reduce to it — Summarize from in-process sweep results,
// the fabric coordinator from merged shard documents — so the markdown they
// write is byte-identical by construction, not by parallel maintenance of
// two formatters.
type Table struct {
	Jobs     int
	Sections []Section
}

// SectionFrom assembles one spec's section from its plan, the graph header
// and a full slot-indexed set of outcomes (slots[k] is the outcome of plan
// slot k). Ratios are computed here, coordinator-side in a distributed run:
// a baseline and its uniform partner may have executed on different
// replicas, but both report raw rounds, and the ratio is a pure function of
// those.
func SectionFrom(p *Plan, info GraphInfo, slots []SlotOutcome) (Section, error) {
	if len(slots) != len(p.Metas) {
		return Section{}, fmt.Errorf("scenario %s: %d slot outcomes for %d jobs", p.Spec.Name, len(slots), len(p.Metas))
	}
	s := p.Spec
	sec := Section{
		Name:        s.Name,
		Description: s.Description,
		Graph:       s.Graph.String(),
		IDs:         s.IDs.String(),
		Info:        info,
		Rows:        make([]Row, 0, len(p.Metas)),
	}
	if !s.Knowledge.IsDefault() {
		sec.Knowledge = s.Knowledge.String()
	}
	if !s.Scheduler.IsDefault() {
		sec.Scheduler = s.Scheduler.String()
	}
	for i := range p.Metas {
		m := &p.Metas[i]
		ratio := "—"
		if m.RatioOf >= 0 {
			ratio = fmt.Sprintf("%.2f", float64(slots[i].Rounds)/float64(slots[m.RatioOf].Rounds))
		}
		algo := m.Algo.String()
		if !m.Know.IsExact() {
			algo = fmt.Sprintf("%s @ λ=%g", algo, m.Know.Looseness)
		}
		sec.Rows = append(sec.Rows, Row{
			Algo:     algo,
			Role:     m.Role,
			Seed:     m.Seed,
			Rep:      m.Rep,
			Rounds:   slots[i].Rounds,
			Messages: slots[i].Messages,
			Ratio:    ratio,
		})
	}
	sec.Looseness, sec.Sweep = sweepPivot(p, slots)
	return sec, nil
}

// sweepPivot reduces an upper-bound spec's slots to the looseness pivot:
// one row per (seed, rep) with the uniform rounds and the baseline rounds
// at every λ, in grid order. It applies only to the canonical sweep shape —
// a multi-λ grid on the baseline, a single (exact) uniform run — and
// returns nothing otherwise. Like every rendered field it is a pure
// function of (plan, slots), so the distributed merge path pivots
// identically to the single-process one.
func sweepPivot(p *Plan, slots []SlotOutcome) ([]float64, []SweepRow) {
	s := p.Spec
	if s.Knowledge.Regime != core.KnowUpperBound || s.Baseline == nil {
		return nil, nil
	}
	grid := s.Knowledge.Grid()
	if len(grid) < 2 || len(s.knowledgeGrid(s.Algorithm)) != 1 {
		return nil, nil
	}
	lams := make([]float64, len(grid))
	for i, k := range grid {
		lams[i] = k.Looseness
	}
	var rows []SweepRow
	perGroup := len(grid) + 1 // λ baselines then one uniform, per (seed, rep)
	for base := 0; base+perGroup <= len(p.Metas); base += perGroup {
		m := &p.Metas[base]
		row := SweepRow{Seed: m.Seed, Rep: m.Rep, Baseline: make([]int, len(grid))}
		for i := range grid {
			row.Baseline[i] = slots[base+i].Rounds
		}
		row.Uniform = slots[base+len(grid)].Rounds
		rows = append(rows, row)
	}
	return lams, rows
}

// Write renders the document. Every written field is deterministic, so two
// tables built from the same specs and seeds — whether the outcomes came
// from one process or were merged from N replicas — serialize to the same
// bytes.
func (t *Table) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "## Scenario corpus — %d scenarios, %d jobs\n", len(t.Sections), t.Jobs)
	for i := range t.Sections {
		sec := &t.Sections[i]
		fmt.Fprintf(ew, "\n### %s\n\n", sec.Name)
		if sec.Description != "" {
			fmt.Fprintf(ew, "%s\n\n", sec.Description)
		}
		fmt.Fprintf(ew, "graph: %s · ids: %s · n=%d · edges=%d · Δ=%d · m=%d",
			sec.Graph, sec.IDs, sec.Info.N, sec.Info.Edges, sec.Info.MaxDeg, sec.Info.MaxID)
		if sec.Knowledge != "" {
			fmt.Fprintf(ew, " · knowledge: %s", sec.Knowledge)
		}
		if sec.Scheduler != "" {
			fmt.Fprintf(ew, " · scheduler: %s", sec.Scheduler)
		}
		fmt.Fprint(ew, "\n\n")
		fmt.Fprintln(ew, "| algorithm | role | seed | rep | rounds | messages | ratio |")
		fmt.Fprintln(ew, "|---|---|---|---|---|---|---|")
		for _, r := range sec.Rows {
			fmt.Fprintf(ew, "| %s | %s | %d | %d | %d | %d | %s |\n",
				r.Algo, r.Role, r.Seed, r.Rep, r.Rounds, r.Messages, r.Ratio)
		}
		if len(sec.Sweep) > 0 {
			fmt.Fprintln(ew, "\nOverhead vs looseness (baseline rounds per λ; ×u is the overhead over the uniform run):")
			fmt.Fprintln(ew)
			var h, d strings.Builder
			h.WriteString("| seed | rep | uniform |")
			d.WriteString("|---|---|---|")
			for _, lam := range sec.Looseness {
				fmt.Fprintf(&h, " λ=%g |", lam)
				d.WriteString("---|")
			}
			fmt.Fprintln(ew, h.String())
			fmt.Fprintln(ew, d.String())
			for _, r := range sec.Sweep {
				fmt.Fprintf(ew, "| %d | %d | %d |", r.Seed, r.Rep, r.Uniform)
				for _, b := range r.Baseline {
					fmt.Fprintf(ew, " %d (×u %.2f) |", b, float64(b)/float64(r.Uniform))
				}
				fmt.Fprintln(ew)
			}
		}
	}
	return ew.err
}

// errWriter latches the first write error so the formatting code above
// stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
