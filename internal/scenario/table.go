package scenario

import (
	"fmt"
	"io"

	"github.com/unilocal/unilocal/internal/graph"
)

// GraphInfo is the deterministic graph header of one scenario section —
// exactly the fields the rendered document prints. A shard reports these
// over the wire so the coordinator can reproduce the header (and
// cross-check that every replica built the same graph) without building the
// graph itself.
type GraphInfo struct {
	N      int   `json:"n"`
	Edges  int   `json:"edges"`
	MaxDeg int   `json:"max_degree"`
	MaxID  int64 `json:"max_id"`
}

// InfoOf reads the header fields off a built graph.
func InfoOf(g *graph.Graph) GraphInfo {
	return GraphInfo{N: g.N(), Edges: g.NumEdges(), MaxDeg: g.MaxDegree(), MaxID: g.MaxIDValue()}
}

// SlotOutcome is the deterministic outcome of one job slot: the only fields
// that cross the wire in a shard document. Outputs never travel — they are
// validated by the registry checkers on the process that ran the slot.
type SlotOutcome struct {
	Slot     int   `json:"slot"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// Row is one rendered table line.
type Row struct {
	Algo     string
	Role     string
	Seed     int64
	Rep      int
	Rounds   int
	Messages int64
	Ratio    string
}

// Section is one scenario's slice of the render model.
type Section struct {
	Name        string
	Description string
	Graph       string
	IDs         string
	Info        GraphInfo
	Rows        []Row
}

// Table is the deterministic render model of a whole corpus document. Both
// execution paths reduce to it — Summarize from in-process sweep results,
// the fabric coordinator from merged shard documents — so the markdown they
// write is byte-identical by construction, not by parallel maintenance of
// two formatters.
type Table struct {
	Jobs     int
	Sections []Section
}

// SectionFrom assembles one spec's section from its plan, the graph header
// and a full slot-indexed set of outcomes (slots[k] is the outcome of plan
// slot k). Ratios are computed here, coordinator-side in a distributed run:
// a baseline and its uniform partner may have executed on different
// replicas, but both report raw rounds, and the ratio is a pure function of
// those.
func SectionFrom(p *Plan, info GraphInfo, slots []SlotOutcome) (Section, error) {
	if len(slots) != len(p.Metas) {
		return Section{}, fmt.Errorf("scenario %s: %d slot outcomes for %d jobs", p.Spec.Name, len(slots), len(p.Metas))
	}
	s := p.Spec
	sec := Section{
		Name:        s.Name,
		Description: s.Description,
		Graph:       s.Graph.String(),
		IDs:         s.IDs.String(),
		Info:        info,
		Rows:        make([]Row, 0, len(p.Metas)),
	}
	for i := range p.Metas {
		m := &p.Metas[i]
		ratio := "—"
		if m.RatioOf >= 0 {
			ratio = fmt.Sprintf("%.2f", float64(slots[i].Rounds)/float64(slots[m.RatioOf].Rounds))
		}
		sec.Rows = append(sec.Rows, Row{
			Algo:     m.Algo.String(),
			Role:     m.Role,
			Seed:     m.Seed,
			Rep:      m.Rep,
			Rounds:   slots[i].Rounds,
			Messages: slots[i].Messages,
			Ratio:    ratio,
		})
	}
	return sec, nil
}

// Write renders the document. Every written field is deterministic, so two
// tables built from the same specs and seeds — whether the outcomes came
// from one process or were merged from N replicas — serialize to the same
// bytes.
func (t *Table) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "## Scenario corpus — %d scenarios, %d jobs\n", len(t.Sections), t.Jobs)
	for i := range t.Sections {
		sec := &t.Sections[i]
		fmt.Fprintf(ew, "\n### %s\n\n", sec.Name)
		if sec.Description != "" {
			fmt.Fprintf(ew, "%s\n\n", sec.Description)
		}
		fmt.Fprintf(ew, "graph: %s · ids: %s · n=%d · edges=%d · Δ=%d · m=%d\n\n",
			sec.Graph, sec.IDs, sec.Info.N, sec.Info.Edges, sec.Info.MaxDeg, sec.Info.MaxID)
		fmt.Fprintln(ew, "| algorithm | role | seed | rep | rounds | messages | ratio |")
		fmt.Fprintln(ew, "|---|---|---|---|---|---|---|")
		for _, r := range sec.Rows {
			fmt.Fprintf(ew, "| %s | %s | %d | %d | %d | %d | %s |\n",
				r.Algo, r.Role, r.Seed, r.Rep, r.Rounds, r.Messages, r.Ratio)
		}
	}
	return ew.err
}

// errWriter latches the first write error so the formatting code above
// stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
