package scenario

import (
	"fmt"
	"sort"
	"strings"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// AlgoSpec names an algorithm from the registry plus the integer parameters
// some entries require (the λ of the Theorem 5 coloring trade-off, the β of
// the ruling-set rows). It is the JSON-facing half of internal/engines.
type AlgoSpec struct {
	Name   string `json:"name"`
	Lambda int    `json:"lambda,omitempty"`
	Beta   int    `json:"beta,omitempty"`
}

// String renders the spec deterministically, e.g.
// "uniform-lambda-coloring(λ=4)".
func (as AlgoSpec) String() string {
	var parts []string
	if as.Lambda != 0 {
		parts = append(parts, fmt.Sprintf("λ=%d", as.Lambda))
	}
	if as.Beta != 0 {
		parts = append(parts, fmt.Sprintf("β=%d", as.Beta))
	}
	if len(parts) == 0 {
		return as.Name
	}
	return as.Name + "(" + strings.Join(parts, ", ") + ")"
}

// AlgoEntry is one registered algorithm: a named constructor over
// internal/engines plus the problem checker that validates its outputs. The
// registry is the single place scenario files can reach algorithms by name,
// so the wiring of names to transformer stacks cannot drift per consumer.
type AlgoEntry struct {
	// Name is the spec's algorithm string.
	Name string
	// Doc is a one-line description.
	Doc string
	// PerGraph marks non-uniform baselines that are instantiated with the
	// correct guesses of a concrete graph. Uniform algorithms (PerGraph ==
	// false) are built once per AlgoSpec and shared across scenarios, seeds
	// and concurrent runs — sharing is what makes their memoized plans pay
	// off (DESIGN.md §2.5).
	PerGraph bool
	// PacksIDs marks algorithms that simulate pair-packed derived graphs
	// (line graphs, clique products) and therefore require node identities
	// <= graph.MaxID; spec validation rejects pairing them with ID regimes
	// that exceed it.
	PacksIDs bool
	// NeedsLambda / NeedsBeta declare the required AlgoSpec parameters;
	// validation also rejects parameters an entry does not consume.
	NeedsLambda bool
	NeedsBeta   bool
	// Build constructs the algorithm for the given (validated) spec.
	// PerGraph entries consume the advertised parameter vector p — the
	// knowledge regime decides how loose it is relative to the concrete
	// graph; uniform entries ignore it (that is the point of the paper).
	Build func(p core.Params, as AlgoSpec) (local.Algorithm, error)
	// Check validates a simulation's outputs on g, or is nil.
	Check func(g *graph.Graph, as AlgoSpec, outputs []any) error
}

func checkMIS(g *graph.Graph, _ AlgoSpec, outputs []any) error {
	in, err := problems.Bools(outputs)
	if err != nil {
		return err
	}
	return problems.ValidMIS(g, in)
}

func checkColoring(palette func(g *graph.Graph) int) func(*graph.Graph, AlgoSpec, []any) error {
	return func(g *graph.Graph, _ AlgoSpec, outputs []any) error {
		colors, err := problems.Ints(outputs)
		if err != nil {
			return err
		}
		bound := 0
		if palette != nil {
			bound = palette(g)
		}
		return problems.ValidColoring(g, colors, bound)
	}
}

func checkMatching(g *graph.Graph, _ AlgoSpec, outputs []any) error {
	return problems.ValidMaximalMatching(g, outputs)
}

func checkRulingSet(g *graph.Graph, as AlgoSpec, outputs []any) error {
	in, err := problems.Bools(outputs)
	if err != nil {
		return err
	}
	return problems.ValidRulingSet(g, in, 2, as.Beta)
}

var algorithms = map[string]AlgoEntry{
	"uniform-mis-delta": {
		Name: "uniform-mis-delta",
		Doc:  "Theorem 1 uniform MIS from the colormis stack (Γ = {Δ, m})",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformMISDelta(), nil
		},
		Check: checkMIS,
	},
	"nonuniform-mis-delta": {
		Name: "nonuniform-mis-delta", PerGraph: true,
		Doc: "colormis baseline with correct {Δ, m}",
		Build: func(p core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformMISDelta(p), nil
		},
		Check: checkMIS,
	},
	"uniform-mis-id": {
		Name: "uniform-mis-id",
		Doc:  "Theorem 1 uniform MIS whose time depends on m only (greedy substitution)",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformMISID(), nil
		},
		Check: checkMIS,
	},
	"nonuniform-mis-id": {
		Name: "nonuniform-mis-id", PerGraph: true,
		Doc: "truncated greedy-by-identity baseline with correct m",
		Build: func(p core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformMISID(p), nil
		},
		Check: checkMIS,
	},
	"uniform-mis-arb": {
		Name: "uniform-mis-arb",
		Doc:  "Theorem 1 uniform MIS for bounded arboricity (Obs 4.1 product bound)",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformMISArb(), nil
		},
		Check: checkMIS,
	},
	"nonuniform-mis-arb": {
		Name: "nonuniform-mis-arb", PerGraph: true,
		Doc: "H-partition MIS baseline with correct {a, n, m}",
		Build: func(p core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformMISArb(p), nil
		},
		Check: checkMIS,
	},
	"best-mis": {
		Name: "best-mis",
		Doc:  "Theorem 4 min of the Δ-, m- and arboricity-engines (Corollary 1(i))",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.BestMIS(), nil
		},
		Check: checkMIS,
	},
	"luby-mis": {
		Name: "luby-mis",
		Doc:  "uniform randomized O(log n) MIS (Luby)",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.LubyMIS(), nil
		},
		Check: checkMIS,
	},
	"lasvegas-mis": {
		Name: "lasvegas-mis",
		Doc:  "Theorem 2 Las Vegas MIS from truncated Luby",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.LasVegasMIS(), nil
		},
		Check: checkMIS,
	},
	"uniform-lambda-coloring": {
		Name: "uniform-lambda-coloring", NeedsLambda: true,
		Doc: "Theorem 5 uniform λ(Δ+1)-style coloring (Corollary 1(iii))",
		Build: func(_ core.Params, as AlgoSpec) (local.Algorithm, error) {
			return engines.UniformLambdaColoring(as.Lambda)
		},
		Check: checkColoring(nil),
	},
	"nonuniform-lambda-coloring": {
		Name: "nonuniform-lambda-coloring", PerGraph: true, NeedsLambda: true,
		Doc: "λ-coloring baseline with correct {Δ, m}",
		Build: func(p core.Params, as AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformLambdaColoring(as.Lambda)(p), nil
		},
		Check: checkColoring(nil),
	},
	"uniform-quad-coloring": {
		Name: "uniform-quad-coloring",
		Doc:  "Theorem 5 uniform O(Δ²)-coloring in O(log* m) rounds",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformQuadColoring()
		},
		Check: checkColoring(nil),
	},
	"uniform-deg-coloring": {
		Name: "uniform-deg-coloring", PacksIDs: true,
		Doc: "Section 5.1 uniform (deg+1)-coloring from uniform MIS (clique product)",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformDegPlusOneColoring(engines.LubyMIS()), nil
		},
		Check: checkColoring(func(g *graph.Graph) int { return g.MaxDegree() + 1 }),
	},
	"uniform-matching": {
		Name: "uniform-matching", PacksIDs: true,
		Doc: "Theorem 1 uniform maximal matching (line-graph lift)",
		Build: func(_ core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.UniformMatching(), nil
		},
		Check: checkMatching,
	},
	"nonuniform-matching": {
		Name: "nonuniform-matching", PerGraph: true, PacksIDs: true,
		Doc: "line-graph matching baseline with correct {Δ, m}",
		Build: func(p core.Params, _ AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformMatching(p), nil
		},
		Check: checkMatching,
	},
	"lasvegas-rulingset": {
		Name: "lasvegas-rulingset", NeedsBeta: true,
		Doc: "Theorem 2 Las Vegas (2,β)-ruling set from truncated power-graph Luby",
		Build: func(_ core.Params, as AlgoSpec) (local.Algorithm, error) {
			return engines.LasVegasRulingSet(as.Beta), nil
		},
		Check: checkRulingSet,
	},
	"nonuniform-rulingset": {
		Name: "nonuniform-rulingset", PerGraph: true, NeedsBeta: true,
		Doc: "truncated power-graph Luby baseline with correct n",
		Build: func(p core.Params, as AlgoSpec) (local.Algorithm, error) {
			return engines.NonUniformRulingSet(as.Beta)(p), nil
		},
		Check: checkRulingSet,
	},
}

// Algorithms returns the registry sorted by name.
func Algorithms() []AlgoEntry {
	out := make([]AlgoEntry, 0, len(algorithms))
	for _, e := range algorithms {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AlgorithmNames returns the comma-separated sorted registry names.
func AlgorithmNames() string {
	var names []string
	for _, e := range Algorithms() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

// LookupAlgorithm returns the registry entry for name.
func LookupAlgorithm(name string) (AlgoEntry, bool) {
	e, ok := algorithms[name]
	return e, ok
}

// Validate checks the spec against the registry: the entry must exist, every
// parameter it needs must be set, and no unused parameter may be set (a set
// but silently ignored parameter is exactly the drift a declarative corpus
// is meant to surface).
func (as AlgoSpec) Validate() error {
	e, ok := algorithms[as.Name]
	if !ok {
		return fmt.Errorf("unknown algorithm %q (have: %s)", as.Name, AlgorithmNames())
	}
	if e.NeedsLambda && as.Lambda < 1 {
		return fmt.Errorf("algorithm %s needs lambda >= 1, got %d", as.Name, as.Lambda)
	}
	if !e.NeedsLambda && as.Lambda != 0 {
		return fmt.Errorf("algorithm %s takes no lambda parameter", as.Name)
	}
	if e.NeedsBeta && as.Beta < 1 {
		return fmt.Errorf("algorithm %s needs beta >= 1, got %d", as.Name, as.Beta)
	}
	if !e.NeedsBeta && as.Beta != 0 {
		return fmt.Errorf("algorithm %s takes no beta parameter", as.Name)
	}
	return nil
}
