package scenario

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/sweep"
)

// looseSpec is the canonical looseness-sweep shape: a PerGraph baseline run
// at every λ against one exact uniform run.
func looseSpec(lams ...float64) *Spec {
	s := validSpec()
	s.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
	s.Knowledge = KnowledgeSpec{Regime: core.KnowUpperBound, Looseness: lams}
	return s
}

func TestKnowledgeSpecValidate(t *testing.T) {
	good := []*Spec{
		looseSpec(1, 2, 4, 16),
		looseSpec(), // default grid [1]
		func() *Spec { s := validSpec(); s.Knowledge = KnowledgeSpec{Regime: core.KnowExact}; return s }(),
		func() *Spec { s := validSpec(); s.Knowledge = KnowledgeSpec{Regime: core.KnowNone}; return s }(),
		func() *Spec {
			s := validSpec()
			s.Scheduler = SchedSpec{Kind: SchedStaggered, MaxDelay: 4, Seed: 9}
			return s
		}(),
		func() *Spec { s := validSpec(); s.Scheduler = SchedSpec{Kind: SchedPermuted, Seed: 3}; return s }(),
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"looseness below 1", func(s *Spec) {
			s.Knowledge = KnowledgeSpec{Regime: core.KnowUpperBound, Looseness: []float64{0.5}}
		}, ">= 1"},
		{"non-ascending grid", func(s *Spec) {
			s.Knowledge = KnowledgeSpec{Regime: core.KnowUpperBound, Looseness: []float64{2, 2}}
		}, "strictly ascending"},
		{"grid on none", func(s *Spec) {
			s.Knowledge = KnowledgeSpec{Regime: core.KnowNone, Looseness: []float64{2}}
		}, "meaningless"},
		{"grid on exact", func(s *Spec) {
			s.Knowledge = KnowledgeSpec{Regime: core.KnowExact, Looseness: []float64{2}}
		}, "no looseness grid"},
		{"unknown regime", func(s *Spec) {
			s.Knowledge = KnowledgeSpec{Regime: "psychic"}
		}, "unknown regime"},
		{"none with a baseline", func(s *Spec) {
			s.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
			s.Knowledge = KnowledgeSpec{Regime: core.KnowNone}
		}, "cannot run"},
		{"unknown scheduler kind", func(s *Spec) {
			s.Scheduler = SchedSpec{Kind: "chaotic"}
		}, "unknown kind"},
		{"negative max_delay", func(s *Spec) {
			s.Scheduler = SchedSpec{Kind: SchedStaggered, MaxDelay: -1}
		}, "must be >= 0"},
		{"max_delay on permuted", func(s *Spec) {
			s.Scheduler = SchedSpec{Kind: SchedPermuted, MaxDelay: 4}
		}, "only meaningful"},
		{"seed on lockstep", func(s *Spec) {
			s.Scheduler = SchedSpec{Seed: 7}
		}, "takes no seed"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: not rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// The exhaustive-report contract: multiple problems surface together.
	s := validSpec()
	s.Knowledge = KnowledgeSpec{Regime: core.KnowUpperBound, Looseness: []float64{0.5, 4, 2}}
	err := s.Validate()
	if err == nil {
		t.Fatal("doubly-bad grid not rejected")
	}
	if !strings.Contains(err.Error(), ">= 1") || !strings.Contains(err.Error(), "strictly ascending") {
		t.Errorf("error reports only part of the problems: %v", err)
	}
}

// TestLoosenessGridPlanShape pins the grid expansion: per (seed, rep) one
// baseline job per λ in grid order, then the uniform run, whose ratio is
// against the tightest (first-λ) baseline; labels carry the λ suffix only on
// non-exact jobs; ApproxJobs matches the real plan.
func TestLoosenessGridPlanShape(t *testing.T) {
	s := looseSpec(1, 2, 4)
	s.Seeds = []int64{3, 5}
	p, err := PlanOf(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Jobs(), 2*(3+1); got != want {
		t.Fatalf("plan has %d jobs, want %d", got, want)
	}
	if got := s.ApproxJobs(); got != p.Jobs() {
		t.Errorf("ApproxJobs = %d, plan = %d", got, p.Jobs())
	}
	for g := 0; g < 2; g++ {
		base := g * 4
		for i, lam := range []float64{1, 2, 4} {
			m := p.Metas[base+i]
			if m.Role != "baseline" || m.Know.Looseness != lam || m.RatioOf != -1 {
				t.Errorf("slot %d: %+v, want baseline λ=%g", base+i, m, lam)
			}
			if want := fmt.Sprintf("/lam=%g", lam); !strings.HasSuffix(p.Labels[base+i], want) {
				t.Errorf("slot %d label %q lacks %q", base+i, p.Labels[base+i], want)
			}
		}
		u := p.Metas[base+3]
		if u.Role != "uniform" || !u.Know.IsExact() {
			t.Errorf("slot %d: %+v, want exact uniform", base+3, u)
		}
		if u.RatioOf != base {
			t.Errorf("uniform slot %d ratios against %d, want tightest baseline %d", base+3, u.RatioOf, base)
		}
		if strings.Contains(p.Labels[base+3], "lam=") {
			t.Errorf("uniform label %q carries a λ suffix", p.Labels[base+3])
		}
	}
}

// TestLoosenessSweepMonotone runs a small upper-bound sweep end to end and
// checks the committed-slice invariant in miniature: baseline rounds are
// non-decreasing in λ, outputs stay valid at every λ, and the rendered
// section carries the knowledge header and the pivot table.
func TestLoosenessSweepMonotone(t *testing.T) {
	s := looseSpec(1, 2, 4, 16)
	s.Graph = GraphSpec{Family: "cycle", N: 96}
	b, err := Expand([]*Spec{s}, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := sweep.Run(b.Jobs, sweep.Options{Parallel: 4})
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i := range b.Jobs {
		if err := b.Check(i, results[i].Res.Outputs); err != nil {
			t.Errorf("job %d (%s): %v", i, b.Jobs[i].Label, err)
		}
	}
	prev := 0
	for i := 0; i < 4; i++ { // the first (seed, rep) group's baselines
		r := results[i].Res.Rounds
		if r < prev {
			t.Errorf("baseline rounds fell from %d to %d at λ=%g", prev, r, b.Metas[i].Know.Looseness)
		}
		prev = r
	}
	if results[3].Res.Rounds <= results[0].Res.Rounds {
		t.Errorf("λ=16 baseline (%d rounds) is no slower than λ=1 (%d): the sweep axis is dead",
			results[3].Res.Rounds, results[0].Res.Rounds)
	}

	var buf bytes.Buffer
	if err := Render(&buf, b, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"knowledge: upper-bound(λ=1,2,4,16)",
		"@ λ=16",
		"Overhead vs looseness",
		"| seed | rep | uniform | λ=1 | λ=2 | λ=4 | λ=16 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered document lacks %q:\n%s", want, out)
		}
	}
}

// TestAdversarialRenderDeterministicAcrossParallelism is the scheduler
// acceptance invariant: an adversarially scheduled spec (staggered wake-ups
// plus permuted frontiers) renders byte-identical markdown at any sweep
// parallelism, reproducible across full re-expansions from the spec alone.
func TestAdversarialRenderDeterministicAcrossParallelism(t *testing.T) {
	specs := func() []*Spec {
		s := validSpec()
		s.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
		s.Seeds = []int64{1, 2}
		s.Scheduler = SchedSpec{Kind: SchedStaggeredPermuted, Seed: 7}
		return []*Spec{s}
	}
	render := func(parallel int) string {
		b, err := Expand(specs(), ExpandOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results, _ := sweep.Run(b.Jobs, sweep.Options{Parallel: parallel})
		if err := sweep.FirstErr(results); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Render(&buf, b, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	for _, parallel := range []int{1, 4} {
		if got := render(parallel); got != seq {
			t.Fatalf("parallel=%d render differs:\n--- seq ---\n%s\n--- got ---\n%s", parallel, seq, got)
		}
	}
	if !strings.Contains(seq, "scheduler: staggered-permuted(max=8, seed=7)") {
		t.Errorf("rendered document lacks the scheduler header:\n%s", seq)
	}

	// The adversary must be live: the same spec under lockstep renders
	// different rounds.
	lockstep := specs()
	lockstep[0].Scheduler = SchedSpec{}
	b, err := Expand(lockstep, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := sweep.Run(b.Jobs, sweep.Options{Parallel: 1})
	var buf bytes.Buffer
	if err := Render(&buf, b, results); err != nil {
		t.Fatal(err)
	}
	if strings.ReplaceAll(seq, " · scheduler: staggered-permuted(max=8, seed=7)", "") == buf.String() {
		t.Error("adversarial schedule produced the lockstep document: the scheduler is a no-op")
	}
}

// TestKnowledgeSliceCommitted keeps the committed scenarios/knowledge corpus
// loadable and on-axis: at least three looseness sweeps over distinct
// problems plus one adversarial-scheduler spec.
func TestKnowledgeSliceCommitted(t *testing.T) {
	specs, err := LoadDir(filepath.Join("..", "..", "scenarios", "knowledge"))
	if err != nil {
		t.Fatal(err)
	}
	sweeps, scheds := 0, 0
	problems := make(map[string]bool)
	for _, s := range specs {
		if s.Knowledge.Regime == core.KnowUpperBound && len(s.Knowledge.Looseness) >= 3 {
			sweeps++
			problems[s.Algorithm.Name] = true
		}
		if !s.Scheduler.IsDefault() {
			scheds++
		}
	}
	if sweeps < 3 || len(problems) < 3 {
		t.Errorf("slice has %d looseness sweeps over %d problems, want >= 3 distinct", sweeps, len(problems))
	}
	if scheds < 1 {
		t.Error("slice has no adversarial-scheduler spec")
	}
	if _, err := Expand(specs, ExpandOptions{}); err != nil {
		t.Fatal(err)
	}
}
