package scenario

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/local"
)

// KnowledgeSpec selects the knowledge regime of a spec's non-uniform
// (PerGraph) algorithms: how loose the parameter vector they are fed is,
// relative to the concrete graph. Uniform algorithms never receive
// parameters, so the regime only shapes baseline jobs — which is exactly
// the paper's point made into an experimental axis.
type KnowledgeSpec struct {
	// Regime is one of "", "exact", "upper-bound", "none". The default ""
	// is exact knowledge: baselines get the measured parameters, today's
	// behavior.
	Regime string `json:"regime,omitempty"`
	// Looseness is the λ grid of the upper-bound regime: baselines run once
	// per λ, fed ⌈λ·n⌉/⌈λ·Δ⌉/⌈λ·a⌉/⌈λ·m⌉. Strictly ascending, every λ >= 1.
	// Defaults to [1] when the regime is upper-bound.
	Looseness []float64 `json:"looseness,omitempty"`
}

// IsDefault reports whether the spec leaves the regime at its default.
func (ks KnowledgeSpec) IsDefault() bool {
	return ks.Regime == "" && len(ks.Looseness) == 0
}

// Validate collects every problem of the regime/looseness combination, in
// the exhaustive style scenarioctl -validate reports.
func (ks KnowledgeSpec) Validate() error {
	var errs []error
	switch ks.Regime {
	case "", core.KnowExact:
		if len(ks.Looseness) != 0 {
			errs = append(errs, fmt.Errorf("knowledge: the %s regime takes no looseness grid (baselines get the measured parameters)", core.KnowExact))
		}
	case core.KnowNone:
		if len(ks.Looseness) != 0 {
			errs = append(errs, fmt.Errorf("knowledge: the %s regime advertises no parameters, so a looseness grid is meaningless", core.KnowNone))
		}
	case core.KnowUpperBound:
		prev := math.Inf(-1)
		for i, lam := range ks.Looseness {
			if err := core.UpperBound(lam).Validate(); err != nil {
				errs = append(errs, fmt.Errorf("knowledge: looseness[%d]: %w", i, err))
				continue
			}
			if lam <= prev {
				errs = append(errs, fmt.Errorf("knowledge: looseness grid must be strictly ascending (looseness[%d] = %g after %g)", i, lam, prev))
			}
			prev = lam
		}
	default:
		errs = append(errs, fmt.Errorf("knowledge: unknown regime %q (have: %s, %s, %s)",
			ks.Regime, core.KnowExact, core.KnowUpperBound, core.KnowNone))
	}
	return errors.Join(errs...)
}

// Grid returns the per-job knowledge values of PerGraph roles, in plan
// order: one zero (exact) value by default, one per λ under upper-bound.
func (ks KnowledgeSpec) Grid() []core.Knowledge {
	switch ks.Regime {
	case core.KnowUpperBound:
		if len(ks.Looseness) == 0 {
			return []core.Knowledge{core.UpperBound(1)}
		}
		out := make([]core.Knowledge, len(ks.Looseness))
		for i, lam := range ks.Looseness {
			out[i] = core.UpperBound(lam)
		}
		return out
	case core.KnowNone:
		return []core.Knowledge{core.None()}
	default:
		return []core.Knowledge{{}}
	}
}

// String renders the regime deterministically, e.g. "upper-bound(λ=1,2,4,16)".
func (ks KnowledgeSpec) String() string {
	switch ks.Regime {
	case "", core.KnowExact:
		return core.KnowExact
	case core.KnowNone:
		return core.KnowNone
	}
	lams := make([]string, 0, len(ks.Looseness))
	for _, lam := range ks.Looseness {
		lams = append(lams, fmt.Sprintf("%g", lam))
	}
	if len(lams) == 0 {
		lams = []string{"1"}
	}
	return fmt.Sprintf("%s(λ=%s)", core.KnowUpperBound, strings.Join(lams, ","))
}

// Scheduler kinds: how the rounds of a spec's runs are scheduled within the
// synchronous model.
const (
	// SchedLockstep is the default clean schedule: simultaneous wake-up,
	// ascending delivery order.
	SchedLockstep = "lockstep"
	// SchedStaggered wakes each node hash(seed, id) mod (max_delay+1) rounds
	// late through the α-synchronizer (local.StaggeredWakeup).
	SchedStaggered = "staggered"
	// SchedPermuted steps each round's frontier in a seeded pseudo-random
	// order (local.Options.Permute).
	SchedPermuted = "permuted"
	// SchedStaggeredPermuted composes both adversaries.
	SchedStaggeredPermuted = "staggered-permuted"
)

// defaultMaxDelay is the staggered wake-up bound when max_delay is unset.
const defaultMaxDelay = 8

// SchedSpec selects a deterministic adversarial scheduler for every run of a
// spec. All schedules are pure functions of (spec, seed): byte-identical at
// any -workers/-parallel setting and reproducible from the seeds alone.
type SchedSpec struct {
	// Kind is one of "", "lockstep", "staggered", "permuted",
	// "staggered-permuted" ("" = lockstep).
	Kind string `json:"kind,omitempty"`
	// MaxDelay bounds the staggered wake-up delay (staggered kinds only;
	// default 8).
	MaxDelay int `json:"max_delay,omitempty"`
	// Seed drives the adversarial schedule, mixed with each job's run seed.
	Seed int64 `json:"seed,omitempty"`
}

// IsDefault reports whether the spec leaves the scheduler at lockstep.
func (ss SchedSpec) IsDefault() bool {
	return ss.Kind == "" || ss.Kind == SchedLockstep
}

func (ss SchedSpec) staggers() bool {
	return ss.Kind == SchedStaggered || ss.Kind == SchedStaggeredPermuted
}

func (ss SchedSpec) permutes() bool {
	return ss.Kind == SchedPermuted || ss.Kind == SchedStaggeredPermuted
}

// effectiveMaxDelay is the wake-up delay bound a staggered schedule uses.
func (ss SchedSpec) effectiveMaxDelay() int {
	if ss.MaxDelay != 0 {
		return ss.MaxDelay
	}
	return defaultMaxDelay
}

// Validate collects every problem of the kind/parameter combination.
func (ss SchedSpec) Validate() error {
	var errs []error
	switch ss.Kind {
	case "", SchedLockstep, SchedStaggered, SchedPermuted, SchedStaggeredPermuted:
	default:
		errs = append(errs, fmt.Errorf("scheduler: unknown kind %q (have: %s, %s, %s, %s)",
			ss.Kind, SchedLockstep, SchedStaggered, SchedPermuted, SchedStaggeredPermuted))
		return errors.Join(errs...)
	}
	if ss.MaxDelay < 0 {
		errs = append(errs, fmt.Errorf("scheduler: max_delay %d must be >= 0", ss.MaxDelay))
	}
	if !ss.staggers() && ss.MaxDelay != 0 {
		errs = append(errs, fmt.Errorf("scheduler: max_delay is only meaningful for the %s kinds", SchedStaggered))
	}
	if ss.IsDefault() && ss.Seed != 0 {
		errs = append(errs, fmt.Errorf("scheduler: the %s kind takes no seed (rounds are not perturbed)", SchedLockstep))
	}
	return errors.Join(errs...)
}

// String renders the scheduler deterministically, e.g.
// "staggered(max=8, seed=7)".
func (ss SchedSpec) String() string {
	switch {
	case ss.IsDefault():
		return SchedLockstep
	case ss.staggers():
		return fmt.Sprintf("%s(max=%d, seed=%d)", ss.Kind, ss.effectiveMaxDelay(), ss.Seed)
	default:
		return fmt.Sprintf("%s(seed=%d)", ss.Kind, ss.Seed)
	}
}

// wrapAlgo applies the wake-up half of the schedule to one job's algorithm.
// The delay seed mixes the scheduler seed with the job seed, so two seeds of
// one spec face different (but individually reproducible) wake-up patterns.
func (ss SchedSpec) wrapAlgo(a local.Algorithm, jobSeed int64) local.Algorithm {
	if !ss.staggers() {
		return a
	}
	return local.StaggeredWakeup(a, ss.Seed^(jobSeed*0x9E3779B9), ss.effectiveMaxDelay())
}

// permuteOpt returns the engine permutation half of the schedule, or nil.
func (ss SchedSpec) permuteOpt() *local.Permute {
	if !ss.permutes() {
		return nil
	}
	return &local.Permute{Seed: ss.Seed}
}
