package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/sweep"
)

func validSpec() *Spec {
	return &Spec{
		Name:      "test-mis",
		Graph:     GraphSpec{Family: "cycle", N: 64},
		Algorithm: AlgoSpec{Name: "uniform-mis-delta"},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"bad name", func(s *Spec) { s.Name = "Bad Name" }},
		{"unknown family", func(s *Spec) { s.Graph.Family = "nope" }},
		{"cycle too small", func(s *Spec) { s.Graph.N = 2 }},
		{"unused graph param", func(s *Spec) { s.Graph.P = 0.5 }},
		{"n on hypercube", func(s *Spec) { s.Graph = GraphSpec{Family: "hypercube", N: 1024} }},
		{"ids seed on default regime", func(s *Spec) { s.IDs = IDSpec{Seed: 3} }},
		{"unknown algorithm", func(s *Spec) { s.Algorithm.Name = "nope" }},
		{"missing lambda", func(s *Spec) { s.Algorithm = AlgoSpec{Name: "uniform-lambda-coloring"} }},
		{"stray lambda", func(s *Spec) { s.Algorithm.Lambda = 2 }},
		{"stray beta", func(s *Spec) { s.Algorithm.Beta = 2 }},
		{"missing beta", func(s *Spec) { s.Algorithm = AlgoSpec{Name: "lasvegas-rulingset"} }},
		{"bad baseline", func(s *Spec) { s.Baseline = &AlgoSpec{Name: "nope"} }},
		{"unknown regime", func(s *Spec) { s.IDs.Regime = "nope" }},
		{"max_id on dense", func(s *Spec) { s.IDs = IDSpec{Regime: RegimeDense, MaxID: 100} }},
		{"clusters on sparse", func(s *Spec) { s.IDs = IDSpec{Regime: RegimeSparseHuge, Clusters: 4} }},
		{"duplicate seeds", func(s *Spec) { s.Seeds = []int64{1, 2, 1} }},
		{"negative repeat", func(s *Spec) { s.Repeat = -1 }},
		{"negative max_rounds", func(s *Spec) { s.MaxRounds = -1 }},
		{"packs-ids under sparse-huge", func(s *Spec) {
			s.Algorithm = AlgoSpec{Name: "uniform-matching"}
			s.IDs = IDSpec{Regime: RegimeSparseHuge}
		}},
		{"packs-ids baseline under sparse-huge", func(s *Spec) {
			s.Baseline = &AlgoSpec{Name: "nonuniform-matching"}
			s.IDs = IDSpec{Regime: RegimeSparseHuge}
		}},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: not rejected", c.name)
		}
	}
}

func TestLoadFileStrict(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ok := write("ok.json", `{"name": "ok", "graph": {"family": "path", "n": 8}, "algorithm": {"name": "luby-mis"}}`)
	if _, err := LoadFile(ok); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	typo := write("typo.json", `{"name": "typo", "graph": {"family": "path", "n": 8}, "algorithm": {"name": "luby-mis"}, "sseeds": [1]}`)
	if _, err := LoadFile(typo); err == nil {
		t.Error("unknown JSON field not rejected")
	}
	trailing := write("trailing.json", `{"name": "trailing", "graph": {"family": "path", "n": 8}, "algorithm": {"name": "luby-mis"}} {}`)
	if _, err := LoadFile(trailing); err == nil {
		t.Error("trailing data not rejected")
	}
	garbage := write("garbage.json", `{"name": "garbage", "graph": {"family": "path", "n": 8}, "algorithm": {"name": "luby-mis"}}}`)
	if _, err := LoadFile(garbage); err == nil {
		t.Error("malformed trailing garbage not rejected")
	}
}

func TestLoadDirDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	body := `{"name": "same", "graph": {"family": "path", "n": 8}, "algorithm": {"name": "luby-mis"}}`
	for _, f := range []string{"a.json", "b.json"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("duplicate scenario names not rejected")
	}
}

func TestExpandShape(t *testing.T) {
	s := validSpec()
	s.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
	s.Seeds = []int64{3, 5}
	s.Repeat = 2
	b, err := Expand([]*Spec{s}, ExpandOptions{SeedOffset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Jobs) != 8 {
		t.Fatalf("expanded %d jobs, want 8 (2 seeds x 2 reps x baseline+uniform)", len(b.Jobs))
	}
	for i, m := range b.Metas {
		if m.Seed != 13 && m.Seed != 15 {
			t.Errorf("job %d: seed %d not offset by 10", i, m.Seed)
		}
		switch m.Role {
		case "baseline":
			if m.RatioOf != -1 {
				t.Errorf("baseline job %d has RatioOf %d", i, m.RatioOf)
			}
		case "uniform":
			if m.RatioOf != i-1 {
				t.Errorf("uniform job %d has RatioOf %d, want %d", i, m.RatioOf, i-1)
			}
		default:
			t.Errorf("job %d: unexpected role %q", i, m.Role)
		}
	}
}

// TestExpandSharesUniformAlgorithms pins the plan-cache sharing contract:
// two scenarios naming the same uniform algorithm must run the same value,
// while per-graph baselines are rebuilt per scenario.
func TestExpandSharesUniformAlgorithms(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.Name = "test-mis-2"
	b.Graph = GraphSpec{Family: "path", N: 32}
	batch, err := Expand([]*Spec{a, b}, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2", len(batch.Jobs))
	}
	if batch.AlgoBuilds != 1 || batch.AlgoShares != 1 {
		t.Errorf("builds/shares = %d/%d, want 1/1 (one shared uniform value)", batch.AlgoBuilds, batch.AlgoShares)
	}

	// Per-graph baselines must be rebuilt per scenario, never shared.
	a2 := validSpec()
	a2.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
	b2 := validSpec()
	b2.Name = "test-mis-2"
	b2.Graph = GraphSpec{Family: "path", N: 32}
	b2.Baseline = &AlgoSpec{Name: "nonuniform-mis-delta"}
	batch2, err := Expand([]*Spec{a2, b2}, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if batch2.AlgoBuilds != 3 || batch2.AlgoShares != 1 {
		t.Errorf("builds/shares = %d/%d, want 3/1 (two baselines + one shared uniform)", batch2.AlgoBuilds, batch2.AlgoShares)
	}
}

// TestRenderDeterministicAcrossParallelism is the in-repo version of CI's
// scenario gate: expanding the same specs twice and sweeping once
// sequentially and once fully parallel must render byte-identical markdown.
func TestRenderDeterministicAcrossParallelism(t *testing.T) {
	specs := func() []*Spec {
		return []*Spec{
			{
				Name:      "det-mis",
				Graph:     GraphSpec{Family: "smallworld", N: 64, K: 4, Beta: 0.2, Seed: 3},
				IDs:       IDSpec{Regime: RegimeDense, Seed: 2},
				Algorithm: AlgoSpec{Name: "uniform-mis-delta"},
				Baseline:  &AlgoSpec{Name: "nonuniform-mis-delta"},
				Seeds:     []int64{1, 2},
			},
			{
				Name:      "det-luby",
				Graph:     GraphSpec{Family: "ba", N: 128, K: 2, Seed: 1},
				Algorithm: AlgoSpec{Name: "luby-mis"},
				Seeds:     []int64{1, 2, 3},
			},
		}
	}
	render := func(parallel int) string {
		b, err := Expand(specs(), ExpandOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results, _ := sweep.Run(b.Jobs, sweep.Options{Parallel: parallel})
		var buf bytes.Buffer
		if err := Render(&buf, b, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("sequential and parallel renders differ:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestCommittedCorpus keeps the checked-in scenario files and the code
// honest against each other: the corpus must stay >= 12 scenarios, load,
// validate and expand.
func TestCommittedCorpus(t *testing.T) {
	specs, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 12 {
		t.Fatalf("committed corpus has %d scenarios, want >= 12", len(specs))
	}
	b, err := Expand(specs, ExpandOptions{Corpus: graph.NewCorpus()})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Jobs) < len(specs) {
		t.Fatalf("corpus expanded to %d jobs for %d scenarios", len(b.Jobs), len(specs))
	}
	families := make(map[string]bool)
	regimes := make(map[string]bool)
	for _, s := range specs {
		families[s.Graph.Family] = true
		regimes[s.IDs.Regime] = true
	}
	for _, fam := range []string{"ba", "geometric", "smallworld"} {
		if !families[fam] {
			t.Errorf("committed corpus does not exercise the %s family", fam)
		}
	}
	for _, reg := range []string{RegimeDense, RegimeSparseHuge, RegimeClustered} {
		if !regimes[reg] {
			t.Errorf("committed corpus does not exercise the %s id regime", reg)
		}
	}
}

func TestRegistryTables(t *testing.T) {
	if got := len(Families()); got < 16 {
		t.Errorf("family table has %d entries, want >= 16", got)
	}
	if got := len(Algorithms()); got < 15 {
		t.Errorf("algorithm registry has %d entries, want >= 15", got)
	}
	for _, e := range Algorithms() {
		if e.Build == nil {
			t.Errorf("algorithm %s has no builder", e.Name)
		}
		if e.Check == nil {
			t.Errorf("algorithm %s has no checker", e.Name)
		}
	}
	for _, f := range Families() {
		if f.Build == nil || f.Validate == nil {
			t.Errorf("family %s is missing a builder or validator", f.Name)
		}
	}
}
