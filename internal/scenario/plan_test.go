package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/sweep"
)

func planTestSpec() *Spec {
	base := &AlgoSpec{Name: "nonuniform-mis-delta"}
	return &Spec{
		Name:      "plan-probe",
		Graph:     GraphSpec{Family: "cycle", N: 16},
		Algorithm: AlgoSpec{Name: "uniform-mis-delta"},
		Baseline:  base,
		Seeds:     []int64{1, 5},
		Repeat:    2,
	}
}

// TestPlanMatchesExpand pins the contract the fabric depends on: the
// graph-free plan and the full expansion agree on grid shape, labels, metas
// and ratio links (after re-basing to batch indices).
func TestPlanMatchesExpand(t *testing.T) {
	s := planTestSpec()
	p, err := PlanOf(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs() != s.ApproxJobs() {
		t.Fatalf("plan has %d jobs, ApproxJobs says %d", p.Jobs(), s.ApproxJobs())
	}
	b, err := Expand([]*Spec{s}, ExpandOptions{SeedOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Jobs) != p.Jobs() {
		t.Fatalf("batch has %d jobs, plan %d", len(b.Jobs), p.Jobs())
	}
	if len(b.Plans) != 1 || b.Plans[0].Jobs() != p.Jobs() {
		t.Fatalf("batch plans not attached: %+v", b.Plans)
	}
	for k := range p.Metas {
		if got, want := b.Jobs[k].Label, p.Labels[k]; got != want {
			t.Errorf("slot %d label: batch %q, plan %q", k, got, want)
		}
		pm, bm := p.Metas[k], b.Metas[k]
		pm.Spec = bm.Spec // plan metas are spec-local
		bm.check = nil
		if !reflect.DeepEqual(pm, bm) {
			t.Errorf("slot %d meta: batch %+v, plan %+v", k, bm, pm)
		}
		if got, want := b.Jobs[k].Seed, p.Metas[k].Seed; got != want {
			t.Errorf("slot %d seed: job %d, meta %d", k, got, want)
		}
	}
}

func TestShardSlotsPartition(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 8, 24} {
		for _, count := range []int{1, 2, 3, 5, 9} {
			seen := make(map[int]int)
			for i := 0; i < count; i++ {
				sh := Shard{Index: i, Count: count}
				slots := sh.Slots(jobs)
				if len(slots) != sh.Size(jobs) {
					t.Fatalf("shard %s of %d jobs: Size %d but %d slots", sh, jobs, sh.Size(jobs), len(slots))
				}
				for _, s := range slots {
					seen[s]++
					if s%count != i {
						t.Fatalf("shard %s got slot %d", sh, s)
					}
				}
			}
			if len(seen) != jobs {
				t.Fatalf("count=%d jobs=%d: union covers %d slots", count, jobs, len(seen))
			}
			for s, n := range seen {
				if n != 1 {
					t.Fatalf("count=%d jobs=%d: slot %d owned %d times", count, jobs, s, n)
				}
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("2/5")
	if err != nil || sh != (Shard{Index: 2, Count: 5}) {
		t.Fatalf("ParseShard(2/5) = %v, %v", sh, err)
	}
	if sh.String() != "2/5" {
		t.Fatalf("String = %q", sh.String())
	}
	for _, bad := range []string{"", "3", "a/2", "1/b", "-1/2", "2/2", "0/0", "1/-3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestTableFromSlotsMatchesRender proves the merge path: rebuilding the
// document from plan + graph header + per-slot outcomes (as a coordinator
// does from shard documents) is byte-identical to Render on the full batch.
func TestTableFromSlotsMatchesRender(t *testing.T) {
	s := planTestSpec()
	b, err := Expand([]*Spec{s}, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := sweep.Run(b.Jobs, sweep.Options{Parallel: 1})
	var want bytes.Buffer
	if err := Render(&want, b, results); err != nil {
		t.Fatal(err)
	}

	p := b.Plans[0]
	slots := make([]SlotOutcome, len(results))
	for i, r := range results {
		slots[i] = SlotOutcome{Slot: i, Rounds: r.Res.Rounds, Messages: r.Res.Messages}
	}
	sec, err := SectionFrom(p, InfoOf(b.Graphs[0]), slots)
	if err != nil {
		t.Fatal(err)
	}
	tab := &Table{Jobs: len(results), Sections: []Section{sec}}
	var got bytes.Buffer
	if err := tab.Write(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("slot-rebuilt table diverges from Render:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

func TestSectionFromSlotCountMismatch(t *testing.T) {
	p, err := PlanOf(planTestSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SectionFrom(p, GraphInfo{}, make([]SlotOutcome, p.Jobs()-1)); err == nil {
		t.Fatal("short slot set accepted")
	}
}
