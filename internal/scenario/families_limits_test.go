package scenario

// Admission-estimator tests: ApproxNodes/ApproxEdges back the serving
// layer's per-request work bounds, so they must never wrap negative on
// client-controlled dimensions — an overflowed (negative) estimate would
// pass every "estimate > limit" check and let an absurd request through.

import (
	"math"
	"testing"
)

func TestApproxSizesSaneOnCommittedShapes(t *testing.T) {
	for _, tc := range []struct {
		gs    GraphSpec
		nodes int
		edges int
	}{
		{GraphSpec{Family: "cycle", N: 1024}, 1024, 1024},
		{GraphSpec{Family: "clique", N: 100}, 100, 4950},
		{GraphSpec{Family: "grid", Rows: 8, Cols: 16}, 128, 256},
		{GraphSpec{Family: "hypercube", D: 10}, 1024, 5120},
		{GraphSpec{Family: "caterpillar", N: 10, K: 3}, 40, 40 * 3},
		{GraphSpec{Family: "lollipop", N: 64, K: 32}, 96, 64*63/2 + 32},
		{GraphSpec{Family: "regular", N: 1000, D: 4}, 1000, 2000},
	} {
		if got := tc.gs.ApproxNodes(); got != tc.nodes {
			t.Errorf("%s: ApproxNodes = %d, want %d", tc.gs, got, tc.nodes)
		}
		if got := tc.gs.ApproxEdges(); got != tc.edges {
			t.Errorf("%s: ApproxEdges = %d, want %d", tc.gs, got, tc.edges)
		}
	}
	// gnp's estimate is an expectation, not exact: just pin the magnitude.
	gnp := GraphSpec{Family: "gnp", N: 1000, P: 0.01}
	if e := gnp.ApproxEdges(); e < 4000 || e > 6000 {
		t.Errorf("gnp estimate %d implausible for n=1000 p=0.01", e)
	}
}

// TestApproxSizesNeverNegative hammers the estimators with adversarial
// dimensions (the overflow shapes: rows*cols past MaxInt, k+1 wrapping,
// clique n² overflow) and requires saturation, never wraparound.
func TestApproxSizesNeverNegative(t *testing.T) {
	huge := int(math.MaxInt)
	adversarial := []GraphSpec{
		{Family: "grid", Rows: 3037000500, Cols: 3037000500},
		{Family: "torus", Rows: huge, Cols: 2},
		{Family: "caterpillar", N: 1 << 31, K: huge},
		{Family: "caterpillar", N: huge, K: huge},
		{Family: "lollipop", N: huge, K: huge},
		{Family: "clique", N: huge},
		{Family: "clique", N: 1 << 32},
		{Family: "regular", N: huge, D: huge},
		{Family: "ba", N: huge, K: huge},
		{Family: "smallworld", N: huge, K: huge},
		{Family: "gnp", N: huge, P: 1},
		{Family: "geometric", N: huge, Radius: 1},
		{Family: "hypercube", D: 63},
		{Family: "hypercube", D: -1}, // negative shift must not panic
		{Family: "path", N: -5},      // totality on nonsense input
	}
	for _, gs := range adversarial {
		if n := gs.ApproxNodes(); n < 0 {
			t.Errorf("%s: ApproxNodes wrapped to %d", gs, n)
		}
		if e := gs.ApproxEdges(); e < 0 {
			t.Errorf("%s: ApproxEdges wrapped to %d", gs, e)
		}
	}
	// The canonical DoS shapes must saturate high enough that any sane
	// limit rejects them.
	if n := (GraphSpec{Family: "grid", Rows: 3037000500, Cols: 3037000500}).ApproxNodes(); n < 1<<40 {
		t.Errorf("overflowing grid reports only %d nodes", n)
	}
	if n := (GraphSpec{Family: "caterpillar", N: 1 << 31, K: huge}).ApproxNodes(); n < 1<<40 {
		t.Errorf("overflowing caterpillar reports only %d nodes", n)
	}
}
