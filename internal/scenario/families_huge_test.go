package scenario

import (
	"os"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
)

// hugeN picks the big-graph test size: 10^7 nodes when the operator opts in
// with UNILOCAL_HUGE=1 (minutes of generation, hundreds of MB of CSR),
// otherwise a CI-friendly size that still dwarfs the memory budget below,
// shrunk further under -short.
func hugeN(t *testing.T) int {
	t.Helper()
	if os.Getenv("UNILOCAL_HUGE") == "1" {
		return 10_000_000
	}
	if testing.Short() {
		return 1 << 16
	}
	return 1 << 18
}

// TestHugeFamiliesValidate pins the huge-* parameter ranges, including the
// int32 node-index ceiling the CSR layout imposes.
func TestHugeFamiliesValidate(t *testing.T) {
	valid := []GraphSpec{
		{Family: "huge-geometric", N: 1 << 20, D: 8, Seed: 1},
		{Family: "huge-ba", N: 1 << 20, K: 4, Seed: 1},
	}
	for _, gs := range valid {
		if err := gs.Validate(); err != nil {
			t.Errorf("%s: %v", gs, err)
		}
	}
	invalid := []GraphSpec{
		{Family: "huge-geometric", N: 0, D: 8},
		{Family: "huge-geometric", N: 100, D: 0},
		{Family: "huge-geometric", N: 100, D: 100},
		{Family: "huge-geometric", N: 100, D: 8, Radius: 0.5}, // takes no radius
		{Family: "huge-ba", N: 100, K: 0},
		{Family: "huge-ba", N: 100, K: 100},
		{Family: "huge-ba", N: 100, K: 3, P: 0.5}, // takes no p
	}
	if maxN := int64(graph.MaxID) + 1; int64(int(maxN)) == maxN {
		// 64-bit int: an n beyond the int32 index space must be rejected.
		invalid = append(invalid,
			GraphSpec{Family: "huge-geometric", N: int(maxN), D: 8},
			GraphSpec{Family: "huge-ba", N: int(maxN), K: 4})
	}
	for _, gs := range invalid {
		if err := gs.Validate(); err == nil {
			t.Errorf("%s: validated, want error", gs)
		}
	}
}

// TestHugeGeometricSharesImage pins the delegation contract: a huge-geometric
// spec builds through the plain geometric corpus key, so its derived-radius
// graph and a literal geometric spec with that radius share one corpus entry
// (and therefore one CSR image on disk).
func TestHugeGeometricSharesImage(t *testing.T) {
	c := graph.NewCorpus()
	huge := GraphSpec{Family: "huge-geometric", N: 2000, D: 6, Seed: 4}
	g1, err := huge.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.RandomGeometric(2000, hugeGeomRadius(2000, 6), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("huge-geometric did not reuse the geometric corpus entry")
	}
	avg := 2 * float64(g1.NumEdges()) / float64(g1.N())
	if avg < 3 || avg > 9 {
		t.Fatalf("derived radius misses the degree target: average degree %.2f, want ~6", avg)
	}
}

// TestHugeScenarioMemoryBudget is the big-graph regime end to end: a huge-*
// spec generates CSR-direct, persists its image, and a restarted (fresh)
// corpus under a byte budget far below the raw CSR size serves it from the
// disk tier without regenerating. At the default CI size this runs in
// seconds; UNILOCAL_HUGE=1 runs the full 10^7-node version.
func TestHugeScenarioMemoryBudget(t *testing.T) {
	n := hugeN(t)
	spec := GraphSpec{Family: "huge-geometric", N: n, D: 8, Seed: 1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	store, err := graph.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmer := graph.NewCorpus()
	warmer.AttachStore(store)
	g0, err := spec.Build(warmer)
	if err != nil {
		t.Fatal(err)
	}
	if g0.N() != n {
		t.Fatalf("built %d nodes, want %d", g0.N(), n)
	}
	if st := store.Stats(); st.Written != 1 {
		t.Fatalf("huge build did not persist its image: %+v", st)
	}

	budget := g0.CSRBytes() / 16
	c := graph.NewCorpus()
	c.AttachStore(store)
	c.SetMemLimit(budget)
	g, err := spec.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != g0.N() || g.NumEdges() != g0.NumEdges() {
		t.Fatalf("disk-tier graph shape n=%d m=%d, want n=%d m=%d",
			g.N(), g.NumEdges(), g0.N(), g0.NumEdges())
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("budgeted corpus regenerated instead of loading: %+v", st)
	}
	if m := c.Metrics(); m.MemBytes > budget {
		t.Fatalf("corpus exceeds its byte budget: %d > %d", m.MemBytes, budget)
	}
}
