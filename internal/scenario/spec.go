// Package scenario turns benchmark workloads into data. A scenario is a
// declarative description of one experiment — a graph family with
// parameters, an identity-assignment regime, an algorithm (and optionally a
// non-uniform baseline) named through a registry over internal/engines, a
// seed grid and a repetition count — stored as a JSON file and expanded into
// internal/sweep jobs at run time.
//
// The paper's uniform algorithms are exactly the ones that must survive any
// graph, any identity assignment and any parameter regime without being told
// global quantities; a hard-coded experiment list exercises only the
// combinations its author thought of. The committed corpus under scenarios/
// is the workload-open replacement: cmd/localbench -scenarios runs a
// directory of specs through the sweep scheduler (byte-identical output for
// any parallelism, which CI's scenario gate enforces), and cmd/scenarioctl
// validates a corpus without running it.
//
// Determinism contract: every simulation outcome rendered or written to JSON
// is a pure function of (spec, seed offset). Graphs build through a shared
// graph.Corpus; identity regimes are corpus-cached derived constructions;
// job order, table order and all rendered fields are independent of
// scheduler parallelism and engine worker count.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
)

// ID regimes: how node identities are perturbed before the run. The paper's
// parameter m (the maximum identity) is exactly the global knowledge a
// uniform algorithm is denied, so the regimes stress the three adversarial
// shapes: tightly packed, astronomically sparse, and clustered.
const (
	// RegimeDefault keeps the generator's identities (1..n in builder order).
	RegimeDefault = "default"
	// RegimeDense assigns a uniform random permutation of [1, n] — maximum
	// collision pressure on the shuffler and the smallest possible m.
	RegimeDense = "dense"
	// RegimeSparseHuge scatters identities uniformly over [1, 2^40] (or
	// max_id): m is ~2^40 while n stays small, the regime that punishes any
	// algorithm whose time depends on m more than logarithmically.
	RegimeSparseHuge = "sparse-huge"
	// RegimeClustered packs identities into a few tight far-apart blocks
	// (see graph.WithClusteredIDs) — adversarial for identity-based symmetry
	// breaking and for guess growth at once.
	RegimeClustered = "clustered"
)

// defaultSparseMaxID is the sparse-huge identity range when max_id is unset.
const defaultSparseMaxID = int64(1) << 40

// Clustered-regime defaults when the spec leaves them unset.
const (
	defaultClusters       = 8
	defaultClusteredMaxID = int64(1) << 30
)

// IDSpec selects an identity-assignment regime.
type IDSpec struct {
	// Regime is one of "", "default", "dense", "sparse-huge", "clustered".
	Regime string `json:"regime,omitempty"`
	// MaxID overrides the regime's identity range (sparse-huge, clustered).
	MaxID int64 `json:"max_id,omitempty"`
	// Clusters overrides the block count (clustered only).
	Clusters int `json:"clusters,omitempty"`
	// Seed drives the perturbation.
	Seed int64 `json:"seed,omitempty"`
}

// String renders the spec deterministically, e.g. "clustered(blocks=8)".
func (is IDSpec) String() string {
	switch is.Regime {
	case "", RegimeDefault:
		return RegimeDefault
	case RegimeDense:
		return fmt.Sprintf("dense(seed=%d)", is.Seed)
	case RegimeClustered:
		c := is.Clusters
		if c == 0 {
			c = defaultClusters
		}
		return fmt.Sprintf("%s(blocks=%d, max=%d, seed=%d)", is.Regime, c, is.effectiveMaxID(0), is.Seed)
	default:
		return fmt.Sprintf("%s(max=%d, seed=%d)", is.Regime, is.effectiveMaxID(0), is.Seed)
	}
}

// effectiveMaxID is the identity range the regime will actually use on a
// graph of n nodes (n == 0 renders defaults only).
func (is IDSpec) effectiveMaxID(n int) int64 {
	switch is.Regime {
	case RegimeSparseHuge:
		if is.MaxID != 0 {
			return is.MaxID
		}
		return defaultSparseMaxID
	case RegimeClustered:
		if is.MaxID != 0 {
			return is.MaxID
		}
		return defaultClusteredMaxID
	default:
		return int64(n)
	}
}

// Validate checks regime names and parameter compatibility.
func (is IDSpec) Validate() error {
	switch is.Regime {
	case "", RegimeDefault:
		if is.Seed != 0 {
			return fmt.Errorf("ids: the default regime takes no seed (identities are not perturbed)")
		}
		if is.MaxID != 0 {
			return fmt.Errorf("ids: regime %q takes no max_id", is.String())
		}
	case RegimeDense:
		if is.MaxID != 0 {
			return fmt.Errorf("ids: regime %q takes no max_id", is.String())
		}
	case RegimeSparseHuge, RegimeClustered:
		if is.MaxID < 0 || is.MaxID > graph.MaxPackedID {
			return fmt.Errorf("ids: max_id %d out of range [0, %d]", is.MaxID, graph.MaxPackedID)
		}
	default:
		return fmt.Errorf("ids: unknown regime %q (have: default, dense, sparse-huge, clustered)", is.Regime)
	}
	if is.Regime != RegimeClustered && is.Clusters != 0 {
		return fmt.Errorf("ids: clusters is only meaningful for the clustered regime")
	}
	if is.Clusters < 0 {
		return fmt.Errorf("ids: clusters %d must be >= 1", is.Clusters)
	}
	return nil
}

// Apply perturbs g's identities through the corpus, so repeated expansions
// of the same (graph, regime) share one instance.
func (is IDSpec) Apply(c *graph.Corpus, g *graph.Graph) (*graph.Graph, error) {
	switch is.Regime {
	case "", RegimeDefault:
		return g, nil
	case RegimeDense:
		return c.ShuffledIDsOf(g, int64(g.N()), is.Seed)
	case RegimeSparseHuge:
		return c.ShuffledIDsOf(g, is.effectiveMaxID(g.N()), is.Seed)
	case RegimeClustered:
		clusters := is.Clusters
		if clusters == 0 {
			clusters = defaultClusters
		}
		return c.ClusteredIDsOf(g, clusters, is.effectiveMaxID(g.N()), is.Seed)
	default:
		return nil, fmt.Errorf("ids: unknown regime %q", is.Regime)
	}
}

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario in output and artifacts (lower-case
	// kebab-case, unique within a corpus).
	Name string `json:"name"`
	// Description is free-form prose rendered above the scenario's table.
	Description string `json:"description,omitempty"`
	// Graph names the topology.
	Graph GraphSpec `json:"graph"`
	// IDs selects the identity regime (default: keep generator identities).
	IDs IDSpec `json:"ids,omitzero"`
	// Algorithm is the algorithm under test.
	Algorithm AlgoSpec `json:"algorithm"`
	// Baseline optionally names a non-uniform reference; when present every
	// (seed, rep) also runs the baseline and the table reports the
	// uniform/baseline round ratio.
	Baseline *AlgoSpec `json:"baseline,omitempty"`
	// Knowledge selects the knowledge regime of non-uniform algorithms
	// (default: exact — the measured parameters, today's behavior). Under
	// the upper-bound regime every PerGraph role runs once per looseness
	// factor λ, fed ⌈λ·true⌉ parameters.
	Knowledge KnowledgeSpec `json:"knowledge,omitzero"`
	// Scheduler selects a deterministic adversarial scheduler for every run
	// (default: clean lockstep).
	Scheduler SchedSpec `json:"scheduler,omitzero"`
	// Seeds is the simulation seed grid (default: [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// Repeat runs every seed this many times (default: 1). Repetitions are
	// deterministic replicas — useful for wall-time stability in the JSON
	// artifact, invisible in the deterministic fields.
	Repeat int `json:"repeat,omitempty"`
	// MaxRounds caps each simulation; 0 means the engine default.
	MaxRounds int `json:"max_rounds,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks the whole spec without building anything.
func (s *Spec) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario name %q must be lower-case kebab-case", s.Name)
	}
	if err := s.Graph.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.IDs.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Knowledge.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Scheduler.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for _, as := range s.algoSpecs() {
		if err := as.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		// Pair-packing algorithms cannot carry identities beyond graph.MaxID;
		// catch the conflict at validation time instead of mid-run.
		entry, _ := LookupAlgorithm(as.Name)
		if entry.PacksIDs && s.IDs.effectiveMaxID(1) > graph.MaxID {
			return fmt.Errorf("scenario %s: algorithm %s packs identity pairs and cannot run under ids regime %s (max_id %d > %d)",
				s.Name, as.Name, s.IDs.Regime, s.IDs.effectiveMaxID(1), graph.MaxID)
		}
		// Under the none regime no parameters are advertised, so a
		// non-uniform algorithm cannot run at all — reject the pairing at
		// validation time instead of at expansion.
		if entry.PerGraph && s.Knowledge.Regime == core.KnowNone {
			return fmt.Errorf("scenario %s: knowledge regime %s advertises no parameters; non-uniform algorithm %s cannot run (drop it or pick exact/upper-bound)",
				s.Name, core.KnowNone, as.Name)
		}
	}
	seen := make(map[int64]bool, len(s.Seeds))
	for _, sd := range s.Seeds {
		if seen[sd] {
			return fmt.Errorf("scenario %s: duplicate seed %d", s.Name, sd)
		}
		seen[sd] = true
	}
	if s.Repeat < 0 {
		return fmt.Errorf("scenario %s: repeat %d must be >= 0", s.Name, s.Repeat)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("scenario %s: max_rounds %d must be >= 0", s.Name, s.MaxRounds)
	}
	return nil
}

// algoSpecs lists the algorithm and, when present, the baseline.
func (s *Spec) algoSpecs() []AlgoSpec {
	out := []AlgoSpec{s.Algorithm}
	if s.Baseline != nil {
		out = append(out, *s.Baseline)
	}
	return out
}

// seeds returns the effective seed grid.
func (s *Spec) seeds() []int64 {
	if len(s.Seeds) == 0 {
		return []int64{1}
	}
	return s.Seeds
}

// repeat returns the effective repetition count.
func (s *Spec) repeat() int {
	if s.Repeat == 0 {
		return 1
	}
	return s.Repeat
}

// knowledgeGrid returns the per-job knowledge values one role expands into:
// the spec's looseness grid for PerGraph (non-uniform) entries, a single
// exact value for uniform ones, which never receive parameters.
func (s *Spec) knowledgeGrid(as AlgoSpec) []core.Knowledge {
	if e, ok := LookupAlgorithm(as.Name); ok && e.PerGraph {
		return s.Knowledge.Grid()
	}
	return []core.Knowledge{{}}
}

// ApproxJobs returns the number of sweep jobs the spec expands into (seed
// grid × repetitions × Σ per-role knowledge-grid width, the baseline
// counted), saturating at math.MaxInt so serving-layer admission checks can
// bound it without overflow. It lives beside the expansion it models: if
// Expand's job shape changes, this estimate must change with it.
func (s *Spec) ApproxJobs() int {
	per := 0
	for _, as := range s.algoSpecs() {
		per = satAddInt(per, len(s.knowledgeGrid(as)))
	}
	return satMulInt(satMulInt(len(s.seeds()), s.repeat()), per)
}

// Parse decodes and validates one scenario spec from raw JSON. Unknown
// fields and trailing data are errors: a typoed key in a committed corpus —
// or in a client request to the serving layer, which parses request bodies
// through exactly this path — must fail loudly, not silently fall back to a
// default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("trailing data after scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile parses and validates one scenario file via Parse, prefixing
// problems with the path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Files lists the scenario files of dir (*.json, sorted by name).
func Files(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// FileResult is the outcome of loading one scenario file during LintDir.
type FileResult struct {
	Path string
	// Spec is the loaded scenario, nil when Err is set.
	Spec *Spec
	// Err is the load/validation problem, including cross-file ones
	// (duplicate names are reported on the later file).
	Err error
}

// LintDir loads every scenario file of dir in name order, continuing past
// per-file problems so a validator can report all of them, and checks the
// cross-file invariants (at least one scenario, unique names). The returned
// error covers only directory-level failures.
func LintDir(dir string) ([]FileResult, error) {
	paths, err := Files(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json files in %s", dir)
	}
	results := make([]FileResult, 0, len(paths))
	byName := make(map[string]string, len(paths))
	for _, p := range paths {
		s, err := LoadFile(p)
		if err == nil {
			if prev, dup := byName[s.Name]; dup {
				s, err = nil, fmt.Errorf("%s: scenario name %q already used by %s", p, s.Name, prev)
			} else {
				byName[s.Name] = p
			}
		}
		results = append(results, FileResult{Path: p, Spec: s, Err: err})
	}
	return results, nil
}

// LoadDir loads every scenario file of dir in name order, failing on the
// first problem LintDir finds.
func LoadDir(dir string) ([]*Spec, error) {
	results, err := LintDir(dir)
	if err != nil {
		return nil, err
	}
	specs := make([]*Spec, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		specs = append(specs, r.Spec)
	}
	return specs, nil
}
