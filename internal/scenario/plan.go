package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/unilocal/unilocal/internal/core"
)

// Plan is the graph-free half of a spec's expansion: the job grid — metas
// and labels in slot order — computed without building a single graph or
// algorithm. The grid shape is a pure function of the spec (seed grid ×
// repetitions × algorithms, baseline preceding the algorithm under test;
// under an upper-bound knowledge grid every PerGraph role runs once per λ,
// in grid order), so a coordinator can know every slot a remote shard must
// report, and what each slot means, without paying for expansion itself.
// RatioOf indices are slot indices into this plan (Expand re-bases them
// when it concatenates specs into one batch). The uniform run's ratio is
// taken against the tightest (first-λ) baseline.
type Plan struct {
	Spec   *Spec
	Metas  []JobMeta
	Labels []string
}

// PlanOf validates the spec and computes its job grid. seedOffset shifts
// every spec seed, exactly as ExpandOptions.SeedOffset does.
func PlanOf(s *Spec, seedOffset int64) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Spec: s}
	add := func(as AlgoSpec, role string, seed int64, rep int, know core.Knowledge) int {
		idx := len(p.Metas)
		p.Metas = append(p.Metas, JobMeta{Algo: as, Role: role, Seed: seed, Rep: rep, Know: know, RatioOf: -1})
		label := fmt.Sprintf("%s/%s/seed=%d/rep=%d", s.Name, as.Name, seed, rep)
		// Only the non-default regimes suffix the label, so exact-knowledge
		// corpora keep their committed labels byte for byte.
		if !know.IsExact() {
			label += fmt.Sprintf("/lam=%g", know.Looseness)
		}
		p.Labels = append(p.Labels, label)
		return idx
	}
	for _, sd := range s.seeds() {
		seed := sd + seedOffset
		for rep := 0; rep < s.repeat(); rep++ {
			bi := -1
			if s.Baseline != nil {
				for _, know := range s.knowledgeGrid(*s.Baseline) {
					idx := add(*s.Baseline, "baseline", seed, rep, know)
					if bi < 0 {
						bi = idx
					}
				}
			}
			for _, know := range s.knowledgeGrid(s.Algorithm) {
				ui := add(s.Algorithm, "uniform", seed, rep, know)
				p.Metas[ui].RatioOf = bi
			}
		}
	}
	return p, nil
}

// Jobs returns the grid size.
func (p *Plan) Jobs() int { return len(p.Metas) }

// Shard names one of Count same-sized partitions of a job grid. Slots are
// assigned by modulus — shard i owns slots i, i+Count, i+2·Count, … — so a
// spec whose baseline and uniform runs alternate spreads both roles across
// all shards, and the union of all shards is exactly the grid. Because
// every simulation outcome is a pure function of (spec, seed), partitioning
// is invisible in the merged document: results land back at their global
// slot index no matter which replica computed them.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate checks 1 <= Count and 0 <= Index < Count.
func (sh Shard) Validate() error {
	if sh.Count < 1 {
		return fmt.Errorf("shard: count %d must be >= 1", sh.Count)
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("shard: index %d out of range [0, %d)", sh.Index, sh.Count)
	}
	return nil
}

// String renders the shard as "index/count", the serve API's query form.
func (sh Shard) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// Slots returns this shard's slot indices in a grid of jobs slots, ascending.
// A shard whose index is >= jobs owns nothing and returns nil.
func (sh Shard) Slots(jobs int) []int {
	if jobs <= sh.Index {
		return nil
	}
	out := make([]int, 0, (jobs-sh.Index+sh.Count-1)/sh.Count)
	for i := sh.Index; i < jobs; i += sh.Count {
		out = append(out, i)
	}
	return out
}

// Size returns len(Slots(jobs)) without allocating.
func (sh Shard) Size(jobs int) int {
	if jobs <= sh.Index {
		return 0
	}
	return (jobs - sh.Index + sh.Count - 1) / sh.Count
}

// ParseShard parses the "index/count" form, validating the result.
func ParseShard(s string) (Shard, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("shard %q: want index/count", s)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("shard %q: bad index: %v", s, err)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil {
		return Shard{}, fmt.Errorf("shard %q: bad count: %v", s, err)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}
