// Package cliutil holds the small flag-validation and conversion helpers
// the commands share. Every command that takes a node count, an average
// degree, a scenario directory or a replica endpoint list used to grow its
// own near-identical checks (localtrace and scenarioctl each did in PR 5);
// keeping them here means the error message for "-n 0" is the same sentence
// everywhere and a bound fixed once is fixed for every tool.
//
// All helpers take the flag's display name (e.g. "-n") as their first
// argument so the returned errors point at the flag the user actually
// typed, not at an internal field.
package cliutil

import (
	"fmt"
	"net/url"
	"os"
	"strings"
)

// Nodes validates a node-count flag: every graph needs at least one node.
func Nodes(flag string, n int) error {
	if n < 1 {
		return fmt.Errorf("%s %d: need at least one node", flag, n)
	}
	return nil
}

// AvgDegree validates an average-degree flag against the node count: a
// simple graph on n nodes supports average degree in [0, n-1]. Callers
// should validate the node count first (see Nodes).
func AvgDegree(flag string, n int, deg float64) error {
	if deg < 0 {
		return fmt.Errorf("%s %g: average degree cannot be negative", flag, deg)
	}
	if deg > float64(n-1) {
		return fmt.Errorf("%s %g: a graph on %d nodes supports average degree at most %d", flag, deg, n, n-1)
	}
	return nil
}

// GNPProb converts a validated (n, average degree) pair into the G(n,p)
// edge probability realizing that degree. n <= 1 yields 0: AvgDegree
// guarantees deg == 0 there, and GNP on one node has no edges to flip.
func GNPProb(n int, deg float64) float64 {
	if n <= 1 {
		return 0
	}
	return deg / float64(n-1)
}

// NonNegative validates a flag that must be zero or positive (bounds,
// budgets, -max-rounds style truncations where 0 means "unlimited").
func NonNegative(flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s %d: must be >= 0", flag, v)
	}
	return nil
}

// Positive validates a flag that must be at least one (counts where zero
// would mean "do nothing", like a fault trigger threshold).
func Positive(flag string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s %d: must be >= 1", flag, v)
	}
	return nil
}

// Dir validates a required directory flag: set, existing, and a directory.
func Dir(flag, path string) error {
	if path == "" {
		return fmt.Errorf("%s: required", flag)
	}
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%s %s: %w", flag, path, err)
	}
	if !st.IsDir() {
		return fmt.Errorf("%s %s: not a directory", flag, path)
	}
	return nil
}

// Endpoints parses a comma-separated list of HTTP base URLs (the -endpoints
// flag of localsweepd). Entries are trimmed of surrounding space and
// trailing slashes; each must carry an http or https scheme and a host.
// An empty list is valid and yields nil — whether that is acceptable is the
// caller's call (the fabric requires endpoints unless fallback is enabled).
func Endpoints(flag, list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []string
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimRight(strings.TrimSpace(item), "/")
		if item == "" {
			return nil, fmt.Errorf("%s %q: empty endpoint in list", flag, list)
		}
		u, err := url.Parse(item)
		if err != nil {
			return nil, fmt.Errorf("%s %q: %w", flag, item, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("%s %q: need an http:// or https:// base URL", flag, item)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("%s %q: missing host", flag, item)
		}
		out = append(out, item)
	}
	return out, nil
}
