package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNodes(t *testing.T) {
	if err := Nodes("-n", 1); err != nil {
		t.Fatalf("n=1: %v", err)
	}
	err := Nodes("-n", 0)
	if err == nil || !strings.Contains(err.Error(), "need at least one node") {
		t.Fatalf("n=0: %v", err)
	}
	if !strings.Contains(err.Error(), "-n 0") {
		t.Fatalf("error should name the flag and value: %v", err)
	}
}

func TestAvgDegree(t *testing.T) {
	if err := AvgDegree("-deg", 16, 15); err != nil {
		t.Fatalf("deg=n-1 is the maximum: %v", err)
	}
	if err := AvgDegree("-deg", 1, 0); err != nil {
		t.Fatalf("one node, degree zero: %v", err)
	}
	if err := AvgDegree("-deg", 16, -1); err == nil || !strings.Contains(err.Error(), "cannot be negative") {
		t.Fatalf("negative degree: %v", err)
	}
	err := AvgDegree("-deg", 16, 20)
	if err == nil || !strings.Contains(err.Error(), "average degree at most 15") {
		t.Fatalf("degree over n-1: %v", err)
	}
}

func TestGNPProb(t *testing.T) {
	if p := GNPProb(1, 0); p != 0 {
		t.Fatalf("n=1: p = %g, want 0", p)
	}
	if p := GNPProb(17, 8); p != 0.5 {
		t.Fatalf("n=17 deg=8: p = %g, want 0.5", p)
	}
}

func TestNonNegativeAndPositive(t *testing.T) {
	if err := NonNegative("-max-rounds", 0); err != nil {
		t.Fatalf("zero is allowed: %v", err)
	}
	if err := NonNegative("-max-rounds", -3); err == nil || !strings.Contains(err.Error(), "must be >= 0") {
		t.Fatalf("negative: %v", err)
	}
	if err := Positive("-after", 1); err != nil {
		t.Fatalf("one is allowed: %v", err)
	}
	if err := Positive("-after", 0); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Fatalf("zero: %v", err)
	}
}

func TestDir(t *testing.T) {
	d := t.TempDir()
	if err := Dir("-scenarios", d); err != nil {
		t.Fatalf("existing dir: %v", err)
	}
	if err := Dir("-scenarios", ""); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("empty: %v", err)
	}
	if err := Dir("-scenarios", filepath.Join(d, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	f := filepath.Join(d, "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Dir("-scenarios", f); err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("plain file: %v", err)
	}
}

func TestEndpoints(t *testing.T) {
	got, err := Endpoints("-endpoints", " http://a:1/ ,https://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "https://b:2" {
		t.Fatalf("parsed %v", got)
	}
	if got, err := Endpoints("-endpoints", "  "); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	for _, bad := range []string{"http://a,,http://b", "ftp://a", "http://", "127.0.0.1:8080"} {
		if _, err := Endpoints("-endpoints", bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
