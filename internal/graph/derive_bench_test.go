package graph

// BenchmarkDerive* guards the CSR-direct derived-construction hot paths
// (LineGraph, Power) and the corpus cache that amortizes them. CI runs these
// with -benchmem; the flattened builds must stay allocation-lean (no
// edge-index map, no Builder arc resort).

import (
	"fmt"
	"testing"
)

func benchBaseGraph(b *testing.B, n int, avgDeg float64) *Graph {
	b.Helper()
	g, err := GNP(n, avgDeg/float64(n-1), int64(n))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkDeriveLineGraph(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g := benchBaseGraph(b, n, 8)
		b.Run(fmt.Sprintf("gnp8/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := LineGraph(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDerivePower(b *testing.B) {
	g := benchBaseGraph(b, 2048, 6)
	for _, k := range []int{2, 3} {
		b.Run(fmt.Sprintf("gnp6/n=2048/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Power(g, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeriveProduct(b *testing.B) {
	g := benchBaseGraph(b, 1024, 6)
	b.Run("gnp6/n=1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ProductDegPlusOne(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusWarm measures the steady-state cost of going through the
// corpus for an already-built family — the per-lookup overhead every cached
// experiment pays.
func BenchmarkCorpusWarm(b *testing.B) {
	c := NewCorpus()
	if _, err := c.GNP(4096, 8/4095.0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GNP(4096, 8/4095.0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
