// CSR image store: the on-disk tier of the two-tier corpus (DESIGN.md §2.11).
//
// A built Graph's flat arrays (ids/off/data/back/cross) serialize into a
// versioned, checksummed, page-aligned image whose filename is the SHA-256 of
// its CorpusKey — content addressing makes a store directory shareable by a
// fleet of replicas with no coordination: every process that needs
// (family, params, seed) computes the same name, and generators are
// deterministic, so concurrent writers race to produce identical bytes and
// the atomic tmp+rename publish lets whichever finishes first win.
//
// Images load via mmap where the platform supports it (zero-copy: the
// Graph's slices are views into the page cache, so a 10^8-node graph costs
// almost no Go heap), with a portable ReadFile fallback elsewhere. The
// payload is written in native byte order for the zero-copy views; an
// endianness probe in the header rejects images written by a foreign
// architecture, which then simply regenerate.
package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Image format constants. The header occupies one page so the payload starts
// page-aligned — mmap'ed section pointers are then naturally aligned for
// their element types (ids first at an 8-byte boundary, the int32 tables
// after it at 4-byte boundaries).
const (
	imageMagic      = "ULCSRIMG"
	imageVersion    = 1
	imageHeaderSize = 4096
)

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// amd64/arm64, which matters when checksumming multi-gigabyte payloads.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nativeOrderProbe returns a fixed 8-byte pattern laid out in the machine's
// native byte order. Payloads are raw native-order arrays (the point of
// mmap), so a loader must reject images whose probe bytes differ from its
// own.
func nativeOrderProbe() [8]byte {
	v := uint64(0x0102030405060708)
	return *(*[8]byte)(unsafe.Pointer(&v))
}

// imageHeader is the parsed fixed-size header of a CSR image.
type imageHeader struct {
	n          int64
	edges      int64
	maxDeg     int64
	maxID      int64
	payloadLen int64
	payloadCRC uint32
}

// Header byte layout (fields after the magic and probe are little-endian so
// the header itself parses anywhere; only the payload is native-order):
//
//	[0:8)    magic "ULCSRIMG"
//	[8:16)   native-order probe
//	[16:24)  version
//	[24:32)  n
//	[32:40)  edges
//	[40:48)  maxDeg
//	[48:56)  maxID
//	[56:64)  payloadLen
//	[64:68)  payload CRC-32C
//	[68:72)  header CRC-32C over bytes [0:68)
//	[72:4096) zero padding
const (
	hdrOffVersion    = 16
	hdrOffN          = 24
	hdrOffEdges      = 32
	hdrOffMaxDeg     = 40
	hdrOffMaxID      = 48
	hdrOffPayloadLen = 56
	hdrOffPayloadCRC = 64
	hdrOffHeaderCRC  = 68
)

func (h *imageHeader) encode() []byte {
	buf := make([]byte, imageHeaderSize)
	copy(buf, imageMagic)
	probe := nativeOrderProbe()
	copy(buf[8:16], probe[:])
	binary.LittleEndian.PutUint64(buf[hdrOffVersion:], imageVersion)
	binary.LittleEndian.PutUint64(buf[hdrOffN:], uint64(h.n))
	binary.LittleEndian.PutUint64(buf[hdrOffEdges:], uint64(h.edges))
	binary.LittleEndian.PutUint64(buf[hdrOffMaxDeg:], uint64(h.maxDeg))
	binary.LittleEndian.PutUint64(buf[hdrOffMaxID:], uint64(h.maxID))
	binary.LittleEndian.PutUint64(buf[hdrOffPayloadLen:], uint64(h.payloadLen))
	binary.LittleEndian.PutUint32(buf[hdrOffPayloadCRC:], h.payloadCRC)
	binary.LittleEndian.PutUint32(buf[hdrOffHeaderCRC:], crc32.Checksum(buf[:hdrOffHeaderCRC], castagnoli))
	return buf
}

// decodeImageHeader validates a raw header. Any mismatch — magic, version,
// foreign byte order, bad header checksum, nonsensical sizes — returns an
// error; the caller treats every such image as regenerable garbage.
func decodeImageHeader(buf []byte) (imageHeader, error) {
	var h imageHeader
	if len(buf) < imageHeaderSize {
		return h, fmt.Errorf("graph: store: short header (%d bytes)", len(buf))
	}
	if string(buf[:8]) != imageMagic {
		return h, fmt.Errorf("graph: store: bad magic %q", buf[:8])
	}
	probe := nativeOrderProbe()
	if string(buf[8:16]) != string(probe[:]) {
		return h, fmt.Errorf("graph: store: image written with foreign byte order")
	}
	if v := binary.LittleEndian.Uint64(buf[hdrOffVersion:]); v != imageVersion {
		return h, fmt.Errorf("graph: store: unsupported image version %d (want %d)", v, imageVersion)
	}
	if got, want := crc32.Checksum(buf[:hdrOffHeaderCRC], castagnoli), binary.LittleEndian.Uint32(buf[hdrOffHeaderCRC:]); got != want {
		return h, fmt.Errorf("graph: store: header checksum mismatch")
	}
	h.n = int64(binary.LittleEndian.Uint64(buf[hdrOffN:]))
	h.edges = int64(binary.LittleEndian.Uint64(buf[hdrOffEdges:]))
	h.maxDeg = int64(binary.LittleEndian.Uint64(buf[hdrOffMaxDeg:]))
	h.maxID = int64(binary.LittleEndian.Uint64(buf[hdrOffMaxID:]))
	h.payloadLen = int64(binary.LittleEndian.Uint64(buf[hdrOffPayloadLen:]))
	h.payloadCRC = binary.LittleEndian.Uint32(buf[hdrOffPayloadCRC:])
	if h.n < 0 || h.edges < 0 || h.maxDeg < 0 || h.maxID < 0 || h.n > int64(MaxID) {
		return h, fmt.Errorf("graph: store: corrupt header counts (n=%d edges=%d)", h.n, h.edges)
	}
	if want := imagePayloadLen(h.n, h.edges); h.payloadLen != want {
		return h, fmt.Errorf("graph: store: payload length %d does not match counts (want %d)", h.payloadLen, want)
	}
	return h, nil
}

// imagePayloadLen is the exact payload size for a graph with n nodes and m
// undirected edges: ids (8n) + off (4(n+1)) + data/back/cross (4·2m each).
// Every section length is a multiple of 4 and ids leads at a page boundary,
// so all sections are naturally aligned with no padding.
func imagePayloadLen(n, edges int64) int64 {
	return 8*n + 4*(n+1) + 3*4*2*edges
}

// StoreStats is a point-in-time snapshot of a store's disk-tier counters,
// surfaced through CorpusStats into the serving layer's /metrics.
type StoreStats struct {
	// Hits and Misses count Load calls that found a usable image vs not.
	Hits, Misses uint64
	// Written counts images persisted by Save (excluding already-present
	// skips); Corrupt counts images rejected and removed by Load.
	Written, Corrupt uint64
	// BytesWritten totals the image bytes Save wrote; BytesMapped totals the
	// image bytes currently (and historically) mapped via mmap — it is a
	// monotone counter, not a gauge, because unmapping happens lazily at GC.
	BytesWritten, BytesMapped int64
}

// Store is a content-addressed directory of CSR images. All methods are safe
// for concurrent use, including by multiple processes sharing the directory.
type Store struct {
	dir string

	hits, misses, written, corrupt atomic.Uint64
	bytesWritten, bytesMapped      atomic.Int64
}

// OpenStore opens (creating if needed) a CSR image store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("graph: store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graph: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Written:      s.written.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesWritten: s.bytesWritten.Load(),
		BytesMapped:  s.bytesMapped.Load(),
	}
}

// ImageName returns the content-addressed filename for key: the hex SHA-256
// of the versioned key string. Every field participates, so distinct
// families, parameters or seeds can never collide onto one image.
func ImageName(key CorpusKey) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("ulcsr-v%d|%s|%d|%d|%d|%d",
		imageVersion, key.Family, key.A, key.B, key.F, key.Seed)))
	return hex.EncodeToString(sum[:20]) + ".csr"
}

// ImagePath returns the path the image for key lives at (whether or not it
// exists yet).
func (s *Store) ImagePath(key CorpusKey) string {
	return filepath.Join(s.dir, ImageName(key))
}

// Save persists g's CSR image for key, unless one already exists — images
// are content-addressed and generators deterministic, so an existing file is
// already the right bytes. The image is staged in a temp file and published
// by atomic rename, so concurrent writers (other goroutines or other
// processes sharing the directory) never expose a partial image; a crash
// mid-write leaves only a stale .tmp file that a later Save overwrites-by-
// rename or the operator clears.
func (s *Store) Save(key CorpusKey, g *Graph) error {
	path := s.ImagePath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*.csr")
	if err != nil {
		return fmt.Errorf("graph: store: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	// Stream the payload after a placeholder header, checksumming as we go,
	// then seek back and write the real header.
	if _, err := tmp.Write(make([]byte, imageHeaderSize)); err != nil {
		return fmt.Errorf("graph: store: %w", err)
	}
	crc := crc32.New(castagnoli)
	w := bufio.NewWriterSize(io.MultiWriter(tmp, crc), 1<<20)
	for _, sec := range [][]byte{
		int64Bytes(g.ids), int32Bytes(g.off), int32Bytes(g.data),
		int32Bytes(g.back), int32Bytes(g.cross),
	} {
		if _, err := w.Write(sec); err != nil {
			return fmt.Errorf("graph: store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("graph: store: %w", err)
	}
	h := imageHeader{
		n:          int64(g.N()),
		edges:      int64(g.edges),
		maxDeg:     int64(g.maxDeg),
		maxID:      g.maxID,
		payloadLen: imagePayloadLen(int64(g.N()), int64(g.edges)),
		payloadCRC: crc.Sum32(),
	}
	if _, err := tmp.WriteAt(h.encode(), 0); err != nil {
		return fmt.Errorf("graph: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("graph: store: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("graph: store: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("graph: store: %w", err)
	}
	s.written.Add(1)
	s.bytesWritten.Add(imageHeaderSize + h.payloadLen)
	return nil
}

// Load returns the graph for key if a valid image exists. A missing image is
// a plain miss; a truncated, corrupted, foreign-order or wrong-version image
// is counted, removed (so the next Save rewrites it), and reported as a miss
// — the caller falls back to regeneration, never to bad data. The loaded
// graph shares no state with other loads and is immutable like any Graph.
func (s *Store) Load(key CorpusKey) (*Graph, bool) {
	g, err := s.load(s.ImagePath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			s.corrupt.Add(1)
			os.Remove(s.ImagePath(key))
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return g, true
}

func (s *Store) load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, imageHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("graph: store: reading header: %w", err)
	}
	h, err := decodeImageHeader(hdr)
	if err != nil {
		return nil, err
	}
	if fi.Size() != imageHeaderSize+h.payloadLen {
		return nil, fmt.Errorf("graph: store: truncated image: %d bytes, want %d",
			fi.Size(), imageHeaderSize+h.payloadLen)
	}

	var payload []byte
	var m *mapping
	if mmapSupported {
		raw, err := mmapFile(f, fi.Size())
		if err == nil {
			payload = raw[imageHeaderSize:]
			m = &mapping{data: raw}
			// The mapping outlives this call for as long as the Graph holds
			// it; when the Graph (and thus the mapping) becomes unreachable,
			// the finalizer returns the address space.
			runtime.SetFinalizer(m, (*mapping).unmap)
			s.bytesMapped.Add(fi.Size())
		}
		// mmap failure (e.g. an exotic filesystem) falls through to the read
		// path rather than failing the load.
	}
	if payload == nil {
		// Portable fallback: read the payload into a 64-bit-aligned heap
		// buffer so the zero-copy casts below stay naturally aligned.
		buf := make([]uint64, (h.payloadLen+7)/8)
		payload = unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), h.payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, fmt.Errorf("graph: store: reading payload: %w", err)
		}
	}
	if got := crc32.Checksum(payload[:h.payloadLen], castagnoli); got != h.payloadCRC {
		if m != nil {
			m.unmap()
		}
		return nil, fmt.Errorf("graph: store: payload checksum mismatch")
	}

	n, w := h.n, 2*h.edges
	ids := bytesInt64(payload[:8*n])
	rest := payload[8*n:]
	off := bytesInt32(rest[:4*(n+1)])
	rest = rest[4*(n+1):]
	data := bytesInt32(rest[:4*w])
	back := bytesInt32(rest[4*w : 8*w])
	cross := bytesInt32(rest[8*w : 12*w])
	return newFromStoredCSR(ids, off, data, back, cross, int(h.maxDeg), int(h.edges), h.maxID, m), nil
}

// ImageInfo describes one image in a store, as listed by Images.
type ImageInfo struct {
	// Name is the content-addressed filename (hash + ".csr").
	Name string
	// Nodes and Edges are the stored graph's counts; Bytes is the full image
	// size on disk including the header page.
	Nodes, Edges, Bytes int64
}

// Images lists the valid CSR images in the store, in directory order.
// Unreadable or invalid files are skipped, not errors — a shared store may
// contain another process's in-flight temp files.
func (s *Store) Images() ([]ImageInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("graph: store: %w", err)
	}
	var out []ImageInfo
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".csr" || e.Name()[0] == '.' {
			continue
		}
		info, err := s.imageInfo(e)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	return out, nil
}

func (s *Store) imageInfo(e fs.DirEntry) (ImageInfo, error) {
	f, err := os.Open(filepath.Join(s.dir, e.Name()))
	if err != nil {
		return ImageInfo{}, err
	}
	defer f.Close()
	hdr := make([]byte, imageHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return ImageInfo{}, err
	}
	h, err := decodeImageHeader(hdr)
	if err != nil {
		return ImageInfo{}, err
	}
	return ImageInfo{
		Name:  e.Name(),
		Nodes: h.n,
		Edges: h.edges,
		Bytes: imageHeaderSize + h.payloadLen,
	}, nil
}

// mapping retains one mmap'ed image for the lifetime of the Graph viewing
// it. unmap is idempotent: called by the GC finalizer, or eagerly by a load
// that fails after mapping.
type mapping struct {
	data []byte
}

func (m *mapping) unmap() {
	if m.data != nil {
		munmapFile(m.data)
		m.data = nil
	}
}

// Zero-copy reinterpretation between the Graph's typed slices and image
// bytes. Sound because the payload sections are naturally aligned (see
// imagePayloadLen) and int32/int64 have no invalid bit patterns; the probe
// check guarantees native byte order.

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func bytesInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
