package graph

import (
	"slices"
	"testing"
)

// sameEdges reports whether two graphs have identical edge sets (by index).
func sameEdges(a, b *Graph) bool {
	return a.N() == b.N() && slices.Equal(a.Edges(), b.Edges())
}

func TestPreferentialAttachment(t *testing.T) {
	const n, m = 200, 3
	g, err := PreferentialAttachment(n, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, g)
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	m0 := m + 1
	want := m0*(m0-1)/2 + (n-m0)*m
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d (seed clique + %d attachments each)", g.NumEdges(), want, m)
	}
	if _, comps := Components(g); comps != 1 {
		t.Fatalf("graph has %d components, want connected", comps)
	}
	for u := m0; u < n; u++ {
		if g.Degree(u) < m {
			t.Fatalf("node %d has degree %d < m=%d", u, g.Degree(u), m)
		}
	}
	// Determinism: same seed reproduces the graph, another seed differs.
	again, err := PreferentialAttachment(n, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdges(g, again) {
		t.Fatal("same seed produced different graphs")
	}
	other, err := PreferentialAttachment(n, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sameEdges(g, other) {
		t.Fatal("different seeds produced identical graphs")
	}
	if _, err := PreferentialAttachment(10, 0, 1); err == nil {
		t.Error("m = 0 not rejected")
	}
	if _, err := PreferentialAttachment(10, 10, 1); err == nil {
		t.Error("m >= n not rejected")
	}
}

func TestRandomGeometric(t *testing.T) {
	const n = 300
	const r = 0.15
	g, err := RandomGeometric(n, r, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, g)
	// Reference check against the documented sampling order (node u draws x
	// then y) with brute-force O(n²) distance comparisons: the cell binning
	// must change nothing.
	rng := newRNG(9)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for u := 0; u < n; u++ {
		xs[u] = rng.Float64()
		ys[u] = rng.Float64()
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			want := dx*dx+dy*dy <= r*r
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("edge (%d,%d): got %v, brute force says %v", u, v, got, want)
			}
		}
	}
	again, err := RandomGeometric(n, r, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdges(g, again) {
		t.Fatal("same seed produced different graphs")
	}
	if _, err := RandomGeometric(10, 0, 1); err == nil {
		t.Error("radius 0 not rejected")
	}
	if _, err := RandomGeometric(10, 1.5, 1); err == nil {
		t.Error("radius > 1 not rejected")
	}
	// A tiny radius must not allocate a 1/r² cell grid for a handful of
	// points (the grid is capped at ~sqrt(n) a side).
	tiny, err := RandomGeometric(100, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.NumEdges() != 0 {
		t.Errorf("radius 1e-10 produced %d edges on 100 points", tiny.NumEdges())
	}
}

func TestWattsStrogatz(t *testing.T) {
	const n, k = 100, 4
	g, err := WattsStrogatz(n, k, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, g)
	if g.NumEdges() != n*k/2 {
		t.Fatalf("edges = %d, want exactly %d (rewiring preserves the count)", g.NumEdges(), n*k/2)
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) < k/2 {
			t.Fatalf("node %d has degree %d < k/2=%d (originating endpoints are kept)", u, g.Degree(u), k/2)
		}
	}
	again, err := WattsStrogatz(n, k, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdges(g, again) {
		t.Fatal("same seed produced different graphs")
	}

	// beta = 0 is the exact ring lattice for any seed.
	lattice, err := WattsStrogatz(n, k, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(n)
	for j := 1; j <= k/2; j++ {
		for u := 0; u < n; u++ {
			b.AddEdge(u, (u+j)%n)
		}
	}
	if !sameEdges(lattice, mustBuild(b)) {
		t.Fatal("beta = 0 is not the ring lattice")
	}

	if _, err := WattsStrogatz(10, 3, 0.1, 1); err == nil {
		t.Error("odd k not rejected")
	}
	if _, err := WattsStrogatz(10, 10, 0.1, 1); err == nil {
		t.Error("k >= n not rejected")
	}
	if _, err := WattsStrogatz(10, 4, 1.5, 1); err == nil {
		t.Error("beta > 1 not rejected")
	}
}

func TestCorpusNewFamilies(t *testing.T) {
	c := NewCorpus()
	ba1, err := c.PreferentialAttachment(64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ba2, err := c.PreferentialAttachment(64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ba1 != ba2 {
		t.Error("corpus rebuilt an identical preferential-attachment key")
	}
	geo1, err := c.RandomGeometric(64, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	geo2, err := c.RandomGeometric(64, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if geo1 != geo2 {
		t.Error("corpus rebuilt an identical geometric key")
	}
	ws1, err := c.WattsStrogatz(64, 4, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := c.WattsStrogatz(64, 4, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ws1 == ws2 {
		t.Error("different beta shares a corpus entry")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 4 {
		t.Errorf("stats = (%d hits, %d misses), want (2, 4)", hits, misses)
	}
}
