package graph

// Differential tests for the CSR-direct LineGraph and Power constructions
// against the pre-flattening reference implementations (map-of-neighbors +
// Builder), frozen below verbatim. The flattened builds must be
// indistinguishable: same identities, same adjacency, same canonical edge
// lists, same precomputed tables.

import (
	"fmt"
	"slices"
	"testing"
)

// lineGraphRef is the frozen pre-flattening implementation.
func lineGraphRef(g *Graph) (*Graph, []Edge, error) {
	edges := g.Edges()
	idx := make(map[Edge]int, len(edges))
	for i, e := range edges {
		idx[e] = i
	}
	b := NewBuilder(len(edges))
	for i, e := range edges {
		u, v := g.ID(int(e.U)), g.ID(int(e.V))
		if u > v {
			u, v = v, u
		}
		b.SetID(i, PackIDs(u, v))
	}
	for i, e := range edges {
		for _, endpoint := range [2]int32{e.U, e.V} {
			for _, w := range g.Neighbors(int(endpoint)) {
				f := Edge{U: endpoint, V: w}
				if f.U > f.V {
					f.U, f.V = f.V, f.U
				}
				j := idx[f]
				if j != i {
					b.AddEdge(i, j)
				}
			}
		}
	}
	lg, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("graph: line graph: %w", err)
	}
	return lg, edges, nil
}

// powerRef is the frozen pre-flattening implementation.
func powerRef(g *Graph, k int) (*Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: power exponent %d < 1", k)
	}
	n := g.N()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.SetID(u, g.ID(u))
	}
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for u := 0; u < n; u++ {
		queue = append(queue[:0], int32(u))
		stamp[u] = u
		dist[u] = 0
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			if dist[x] == k {
				continue
			}
			for _, y := range g.Neighbors(int(x)) {
				if stamp[y] != u {
					stamp[y] = u
					dist[y] = dist[x] + 1
					queue = append(queue, y)
					if int(y) > u {
						b.AddEdge(u, int(y))
					} else {
						b.AddEdge(int(y), u)
					}
				}
			}
		}
	}
	return b.Build()
}

// sameGraph asserts two graphs are structurally identical, tables included.
func sameGraph(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.NumEdges() != want.NumEdges() ||
		got.MaxDegree() != want.MaxDegree() || got.MaxIDValue() != want.MaxIDValue() {
		t.Fatalf("%s: shape differs: n=%d/%d m=%d/%d Δ=%d/%d maxID=%d/%d", label,
			got.N(), want.N(), got.NumEdges(), want.NumEdges(),
			got.MaxDegree(), want.MaxDegree(), got.MaxIDValue(), want.MaxIDValue())
	}
	if !slices.Equal(got.ids, want.ids) {
		t.Fatalf("%s: identities differ", label)
	}
	if !slices.Equal(got.off, want.off) || !slices.Equal(got.data, want.data) {
		t.Fatalf("%s: adjacency differs", label)
	}
	if !slices.Equal(got.back, want.back) || !slices.Equal(got.cross, want.cross) {
		t.Fatalf("%s: reverse tables differ", label)
	}
}

func deriveFamilies(t *testing.T) map[string]*Graph {
	t.Helper()
	gnp, err := GNP(150, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RandomRegular(64, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := Cycle(40)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"gnp":     gnp,
		"regular": reg,
		"cycle":   cyc,
		"grid":    Grid(7, 5),
		"star":    Star(30),
		"tree":    RandomTree(90, 11),
		"clique":  Complete(12),
		"empty":   Empty(5),
		"single":  Path(1),
	}
}

func TestLineGraphMatchesReference(t *testing.T) {
	for name, g := range deriveFamilies(t) {
		got, gotEdges, err := LineGraph(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, wantEdges, err := lineGraphRef(g)
		if err != nil {
			t.Fatalf("%s: ref: %v", name, err)
		}
		if !slices.Equal(gotEdges, wantEdges) {
			t.Fatalf("%s: canonical edge lists differ", name)
		}
		sameGraph(t, name, got, want)
		checkSimple(t, got)
	}
}

func TestPowerMatchesReference(t *testing.T) {
	for name, g := range deriveFamilies(t) {
		for _, k := range []int{1, 2, 3} {
			got, err := Power(g, k)
			if err != nil {
				t.Fatalf("%s^%d: %v", name, k, err)
			}
			want, err := powerRef(g, k)
			if err != nil {
				t.Fatalf("%s^%d: ref: %v", name, k, err)
			}
			sameGraph(t, fmt.Sprintf("%s^%d", name, k), got, want)
			checkSimple(t, got)
		}
	}
}
