package graph

import (
	"fmt"
	"slices"
	"sort"
)

// PackIDs packs two identities (each in [1, MaxID]) into a single identity
// for a derived-graph node. The packing is order-preserving lexicographically
// and injective. Inputs outside [1, MaxID] panic: the runtime lifts pack
// identities deep inside a simulation with no error path, and a loud failure
// beats two distinct virtual nodes silently colliding on one identity (the
// scenario layer rejects such graph/algorithm pairings at validation time).
func PackIDs(a, b int64) int64 {
	if a < 1 || a > MaxID || b < 1 || b > MaxID {
		panic(fmt.Sprintf("graph: PackIDs(%d, %d) outside [1, %d]", a, b, MaxID))
	}
	return a<<31 | b
}

// UnpackIDs is the inverse of PackIDs.
func UnpackIDs(p int64) (a, b int64) { return p >> 31, p & MaxID }

// LineGraph returns the line graph L(g): one node per edge of g, with two
// nodes adjacent iff the edges share an endpoint. The i-th returned node
// corresponds to edges[i] of the also-returned canonical edge list, and
// carries identity PackIDs(idU, idV) with idU < idV, matching the virtual
// identities used by the line-graph lift.
//
// The construction is CSR-direct: no edge→index map and no Builder re-sort.
// Edge indices are lexicographic in (min endpoint, max endpoint), so the
// incident-edge list of every vertex is already sorted in port order, and the
// neighbours of line-node e = {u, v} are the merge of u's and v's incident
// lists (which share exactly e itself) — each adjacency segment is emitted
// sorted in one pass.
func LineGraph(g *Graph) (*Graph, []Edge, error) {
	if g.MaxIDValue() > MaxID {
		return nil, nil, fmt.Errorf("graph: line graph needs identities <= %d for pair packing, got max %d",
			MaxID, g.MaxIDValue())
	}
	edges := g.Edges()
	m := len(edges)
	ids := make([]int64, m)
	for i, e := range edges {
		u, v := g.ID(int(e.U)), g.ID(int(e.V))
		if u > v {
			u, v = v, u
		}
		ids[i] = PackIDs(u, v)
	}
	// inc[d] is the undirected-edge index of directed edge d. Both directions
	// of edge i are stamped when the lexicographically first endpoint reaches
	// it, so inc[AdjOffset(u):][k] is ascending for every vertex u: ports with
	// v < u inherit the (v, u) block order, ports with v > u the (u, v) one,
	// and every (·<u) block precedes the (u, ·) block.
	inc := make([]int32, 2*g.NumEdges())
	next := int32(0)
	for u := 0; u < g.N(); u++ {
		off := g.AdjOffset(u)
		rev := g.ReverseEdges(u)
		for k, v := range g.Neighbors(u) {
			if int(v) > u {
				inc[off+k] = next
				inc[rev[k]] = next
				next++
			}
		}
	}
	loff := make([]int32, m+1)
	for i, e := range edges {
		loff[i+1] = loff[i] + int32(g.Degree(int(e.U))+g.Degree(int(e.V))-2)
	}
	data := make([]int32, loff[m])
	for i, e := range edges {
		a := inc[g.AdjOffset(int(e.U)):][:g.Degree(int(e.U))]
		b := inc[g.AdjOffset(int(e.V)):][:g.Degree(int(e.V))]
		w := loff[i]
		x, y := 0, 0
		for x < len(a) || y < len(b) {
			var id int32
			if y == len(b) || (x < len(a) && a[x] < b[y]) {
				id = a[x]
				x++
			} else {
				id = b[y]
				y++
			}
			if id != int32(i) {
				data[w] = id
				w++
			}
		}
	}
	lg, err := newFromSortedCSR(ids, loff, data)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: line graph: %w", err)
	}
	return lg, edges, nil
}

// Power returns the k-th power g^k: same nodes and identities, with an edge
// between any two distinct nodes at distance at most k in g.
//
// The construction is CSR-direct: each node's BFS ball (one flat scratch
// queue reused across nodes, stamp-reset) is sorted in place and written
// straight into the power graph's adjacency array — no Builder arc
// accumulation, counting sort or deduplication pass.
func Power(g *Graph, k int) (*Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: power exponent %d < 1", k)
	}
	n := g.N()
	ids := make([]int64, n)
	for u := 0; u < n; u++ {
		ids[u] = g.ID(u)
	}
	off := make([]int32, n+1)
	data := make([]int32, 0, 2*g.NumEdges())
	// BFS to depth k from every node; queue[1:] is exactly u's neighbourhood
	// in g^k, sorted before being appended to the CSR array.
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for u := 0; u < n; u++ {
		queue = append(queue[:0], int32(u))
		stamp[u] = u
		dist[u] = 0
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			if dist[x] == k {
				continue
			}
			for _, y := range g.Neighbors(int(x)) {
				if stamp[y] != u {
					stamp[y] = u
					dist[y] = dist[x] + 1
					queue = append(queue, y)
				}
			}
		}
		reach := queue[1:]
		slices.Sort(reach)
		data = append(data, reach...)
		off[u+1] = int32(len(data))
	}
	return newFromSortedCSR(ids, off, slices.Clip(data))
}

// CliqueCopy identifies one node of the clique product: copy I (1-based,
// I <= deg+1) of original node V.
type CliqueCopy struct {
	V int32
	I int32
}

// ProductDegPlusOne returns the graph G x K_{deg+1} of Section 5.1 of the
// paper: every node u of g is replaced by a clique C_u on deg(u)+1 copies
// u_1..u_{deg(u)+1}, and for every edge (u,v) of g the copies u_i and v_i are
// adjacent for every i <= 1+min(deg(u), deg(v)). Maximal independent sets of
// the product correspond one-to-one to (deg+1)-colorings of g.
//
// Copy u_i carries identity PackIDs(ID(u), i), matching the product lift.
func ProductDegPlusOne(g *Graph) (*Graph, []CliqueCopy, error) {
	if g.MaxIDValue() > MaxID {
		return nil, nil, fmt.Errorf("graph: clique product needs identities <= %d for pair packing, got max %d",
			MaxID, g.MaxIDValue())
	}
	n := g.N()
	offset := make([]int, n+1)
	for u := 0; u < n; u++ {
		offset[u+1] = offset[u] + g.Degree(u) + 1
	}
	total := offset[n]
	copies := make([]CliqueCopy, total)
	b := NewBuilder(total)
	for u := 0; u < n; u++ {
		du := g.Degree(u)
		for i := 0; i <= du; i++ {
			node := offset[u] + i
			copies[node] = CliqueCopy{V: int32(u), I: int32(i + 1)}
			b.SetID(node, PackIDs(g.ID(u), int64(i+1)))
		}
		// Clique on the copies of u.
		for i := 0; i <= du; i++ {
			for j := i + 1; j <= du; j++ {
				b.AddEdge(offset[u]+i, offset[u]+j)
			}
		}
		// Cross edges u_i -- v_i for i <= 1+min(deg u, deg v).
		for _, v := range g.Neighbors(u) {
			if int(v) < u {
				continue
			}
			m := min(du, g.Degree(int(v))) + 1
			for i := 0; i < m; i++ {
				b.AddEdge(offset[u]+i, offset[int(v)]+i)
			}
		}
	}
	pg, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("graph: clique product: %w", err)
	}
	return pg, copies, nil
}

// InducedSubgraph returns the subgraph of g induced by the nodes with
// keep[u] == true, preserving identities, together with the mapping from new
// node indices to original indices.
func InducedSubgraph(g *Graph, keep []bool) (*Graph, []int32, error) {
	if len(keep) != g.N() {
		return nil, nil, fmt.Errorf("graph: keep mask has %d entries for %d nodes", len(keep), g.N())
	}
	orig := make([]int32, 0)
	newIdx := make([]int32, g.N())
	for u := range newIdx {
		newIdx[u] = -1
	}
	for u := 0; u < g.N(); u++ {
		if keep[u] {
			newIdx[u] = int32(len(orig))
			orig = append(orig, int32(u))
		}
	}
	b := NewBuilder(len(orig))
	for i, u := range orig {
		b.SetID(i, g.ID(int(u)))
		for _, v := range g.Neighbors(int(u)) {
			if keep[v] && u < v {
				b.AddEdge(i, int(newIdx[v]))
			}
		}
	}
	sg, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sg, orig, nil
}

// BFSDistances returns the distances from src to every node (-1 when
// unreachable).
func BFSDistances(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// SortedIDs returns the identities of g in increasing order (a convenience
// for tests).
func SortedIDs(g *Graph) []int64 {
	ids := append([]int64(nil), g.ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
