package graph

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Corpus memoizes generated graph families and derived constructions. The
// benchmark harness runs hundreds of simulations that keep asking for the
// same topologies — the same GNP(n, p, seed) appears in several experiments —
// and regenerating them per experiment wastes the time the sweep scheduler
// saves. A built Graph is immutable and safe for concurrent use, so one
// cached instance can back any number of concurrent runs.
//
// Generated families are keyed by (family, params, seed) via CorpusKey;
// derived constructions (LineGraphOf, PowerOf, ProductOf) are keyed by the
// identity of their (cached, canonical) source graph. All methods are safe
// for concurrent use; concurrent requests for a missing entry build it
// exactly once (other callers block until it is ready without holding the
// corpus lock).
//
// A corpus from NewCorpus is unbounded — correct for one-shot harnesses,
// fatal for a long-lived server that would otherwise retain every graph
// family any client ever requested. NewBoundedCorpus caps the entry count
// with LRU eviction: entries fall out least-recently-used first, and
// evicting a generated graph also drops the derived constructions keyed by
// its identity (their canonical source pointer can never be requested
// again, so they would otherwise be unreachable dead weight). An evicted
// graph that is requested again is simply rebuilt — generators are
// deterministic, so the rebuilt instance is structurally identical and
// results stay byte-for-byte reproducible across evictions. SetMemLimit
// adds an orthogonal byte-denominated bound over the entries' estimated
// heap footprint, the bound that matters once individual graphs dwarf any
// entry count.
//
// AttachStore adds the disk tier (DESIGN.md §2.11): generated-family misses
// first try Store.Load (an mmap'ed image is near-free in both time and
// heap), and fresh builds are persisted best-effort with Store.Save. The
// memory LRU is unchanged by the store — an evicted entry that is requested
// again reloads from disk instead of regenerating, and a corrupt or missing
// image silently falls back to the generator. Derived constructions are not
// stored: they are keyed by source-graph pointer, cheap relative to
// generation, and reconstructible from a stored source.
type Corpus struct {
	mu      sync.Mutex
	gen     map[CorpusKey]*corpusEntry
	derived map[derivedKey]*corpusEntry
	// limit caps len(gen)+len(derived); 0 means unbounded. lru orders all
	// entries most recently used first (values are *corpusEntry).
	limit int
	lru   *list.List
	// memLimit bounds memBytes, the summed HeapBytes of built entries;
	// 0 means unbounded. Guarded by mu like the maps.
	memLimit  int64
	memBytes  int64
	hits      uint64
	misses    uint64
	evictions uint64

	// store is the optional disk tier; atomic so Get's build closures read
	// it without holding mu.
	store atomic.Pointer[Store]
}

// CorpusStats is a point-in-time snapshot of a corpus's cache behaviour,
// exported by long-lived owners (the serving layer's /metrics).
type CorpusStats struct {
	// Hits and Misses count lookups served from the cache vs built.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU bound (including derived
	// entries cascaded out with their evicted source).
	Evictions uint64
	// Entries is the current number of cached graphs; Limit is the bound (0
	// means unbounded).
	Entries, Limit int
	// MemBytes is the estimated heap footprint of the cached graphs;
	// MemLimit is the byte bound (0 means unbounded).
	MemBytes, MemLimit int64
	// DiskEnabled reports whether a store is attached; Disk is its counters
	// (zero value when no store).
	DiskEnabled bool
	Disk        StoreStats
}

// CorpusKey identifies a generated graph: the family name, up to two integer
// parameters, one float parameter (stored as bits so keys stay comparable)
// and the generator seed.
type CorpusKey struct {
	Family string
	A, B   int64
	F      uint64
	Seed   int64
}

// derivedKey identifies a derived construction by its source graph's
// identity plus the construction's own parameters. Pointer keying is sound
// because graphs are immutable and the corpus hands out one canonical
// instance per generated key.
type derivedKey struct {
	src  *Graph
	op   string
	k    int
	a, b int64
}

// corpusEntry carries one built graph plus the side artifacts some
// constructions return. The per-entry once lets concurrent first requests
// build without serializing unrelated builds behind the corpus lock.
type corpusEntry struct {
	once   sync.Once
	g      *Graph
	err    error
	edges  []Edge
	copies []CliqueCopy
	// built flips to true after once completes; eviction skips entries still
	// building (their graph pointer is not out yet, and removing them would
	// duplicate an in-flight build for no memory gain).
	built atomic.Bool
	// bytes is the entry's estimated heap footprint, accounted into
	// Corpus.memBytes when the build completes and out again on drop.
	// Guarded by Corpus.mu.
	bytes int64
	// LRU bookkeeping, guarded by Corpus.mu. key/dkey identify the map slot
	// to delete on eviction; isDerived selects which map.
	elem      *list.Element
	key       CorpusKey
	dkey      derivedKey
	isDerived bool
}

// NewCorpus returns an empty, unbounded corpus.
func NewCorpus() *Corpus {
	return NewBoundedCorpus(0)
}

// NewBoundedCorpus returns an empty corpus holding at most limit graphs
// (generated plus derived), evicting least-recently-used entries beyond it.
// limit <= 0 means unbounded.
func NewBoundedCorpus(limit int) *Corpus {
	if limit < 0 {
		limit = 0
	}
	return &Corpus{
		gen:     make(map[CorpusKey]*corpusEntry),
		derived: make(map[derivedKey]*corpusEntry),
		limit:   limit,
		lru:     list.New(),
	}
}

// AttachStore connects the on-disk CSR image tier. Call once, before the
// corpus starts serving; attaching mid-flight is safe (requests race to see
// the store or not) but pointless.
func (c *Corpus) AttachStore(s *Store) {
	c.store.Store(s)
}

// SetMemLimit bounds the estimated heap bytes of cached graphs; entries
// beyond it are LRU-evicted exactly like the entry-count bound. bytes <= 0
// means unbounded. Call before the corpus starts serving.
func (c *Corpus) SetMemLimit(bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	c.memLimit = bytes
}

// Stats returns how many lookups were served from the cache and how many had
// to build.
func (c *Corpus) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Metrics returns the full cache counters, including evictions and the
// current entry count.
func (c *Corpus) Metrics() CorpusStats {
	c.mu.Lock()
	st := CorpusStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.gen) + len(c.derived),
		Limit:     c.limit,
		MemBytes:  c.memBytes,
		MemLimit:  c.memLimit,
	}
	c.mu.Unlock()
	if s := c.store.Load(); s != nil {
		st.DiskEnabled = true
		st.Disk = s.Stats()
	}
	return st
}

// touch moves e to the front of the LRU list, linking it on first use.
// Caller holds c.mu.
func (c *Corpus) touch(e *corpusEntry) {
	if e.elem == nil {
		e.elem = c.lru.PushFront(e)
	} else {
		c.lru.MoveToFront(e.elem)
	}
}

// drop removes e from its map and the LRU list, releases its byte account
// and counts the eviction. Caller holds c.mu.
func (c *Corpus) drop(e *corpusEntry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	if e.isDerived {
		delete(c.derived, e.dkey)
	} else {
		delete(c.gen, e.key)
	}
	c.memBytes -= e.bytes
	c.evictions++
}

// overLimit reports whether either bound — entry count or estimated heap
// bytes — is exceeded. Caller holds c.mu.
func (c *Corpus) overLimit() bool {
	if c.limit > 0 && len(c.gen)+len(c.derived) > c.limit {
		return true
	}
	return c.memLimit > 0 && c.memBytes > c.memLimit
}

// evict enforces the entry and byte bounds after an insert or a completed
// build, walking from the LRU tail. Entries still building are skipped
// (their pointer is not public yet), as is keep, the entry just inserted.
// Evicting a generated graph cascades to the derived entries keyed by its
// identity: once the canonical source instance leaves the map, those keys
// can never be requested again. Caller holds c.mu.
func (c *Corpus) evict(keep *corpusEntry) {
	if c.limit <= 0 && c.memLimit <= 0 {
		return
	}
	el := c.lru.Back()
	for c.overLimit() && el != nil {
		e := el.Value.(*corpusEntry)
		if e == keep || !e.built.Load() {
			el = el.Prev()
			continue
		}
		c.drop(e)
		if !e.isDerived && e.g != nil {
			for dk, de := range c.derived {
				// The cascade honours the same guards as the walk: never the
				// entry being inserted (it would vanish before ever serving a
				// hit) and never one still building. A spared derived entry
				// keeps its dead source key and simply ages out by LRU.
				if dk.src == e.g && de != keep && de.built.Load() {
					c.drop(de)
				}
			}
		}
		// The cascade may have removed the walk cursor's neighbours, so
		// restart from the back; every restart follows a drop, so the loop
		// still terminates.
		el = c.lru.Back()
	}
}

// entry returns the memo slot for key, creating it on miss.
func (c *Corpus) entry(key CorpusKey) *corpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.gen[key]
	if !ok {
		e = &corpusEntry{key: key}
		c.gen[key] = e
		c.misses++
		c.touch(e)
		c.evict(e)
	} else {
		c.hits++
		c.touch(e)
	}
	return e
}

// derivedEntry returns the memo slot for a derived construction.
func (c *Corpus) derivedEntry(key derivedKey) *corpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.derived[key]
	if !ok {
		e = &corpusEntry{dkey: key, isDerived: true}
		c.derived[key] = e
		c.misses++
		c.touch(e)
		c.evict(e)
	} else {
		c.hits++
		c.touch(e)
	}
	return e
}

// runBuild runs e's once-guarded construction, then — exactly once, under
// the corpus lock — accounts the entry's heap bytes, marks it evictable and
// re-enforces the bounds (a just-built huge graph can push the byte budget
// over even though the insert already ran evict). The construction itself
// runs without the lock, so unrelated builds never serialize.
func (c *Corpus) runBuild(e *corpusEntry, fn func()) {
	e.once.Do(fn)
	if e.built.Load() {
		return
	}
	c.mu.Lock()
	if !e.built.Load() {
		if e.g != nil {
			e.bytes = e.g.HeapBytes() +
				8*int64(len(e.edges)) + 16*int64(len(e.copies))
			c.memBytes += e.bytes
		}
		e.built.Store(true)
		c.evict(e)
	}
	c.mu.Unlock()
}

// Get memoizes an arbitrary generated graph under key, building it with
// build on first request. The named helpers below cover the standard
// families; Get is the extension point for callers with their own
// generators.
//
// With a store attached, a miss consults the disk tier before generating
// (the image was checksum-verified, so a load is as good as a build), and a
// fresh build is persisted best-effort — a Save failure (full disk,
// read-only directory) costs nothing but the warm start.
func (c *Corpus) Get(key CorpusKey, build func() (*Graph, error)) (*Graph, error) {
	e := c.entry(key)
	c.runBuild(e, func() {
		if s := c.store.Load(); s != nil {
			if g, ok := s.Load(key); ok {
				e.g = g
				return
			}
			e.g, e.err = build()
			if e.err == nil {
				s.Save(key, e.g)
			}
			return
		}
		e.g, e.err = build()
	})
	return e.g, e.err
}

// Path returns the cached path on n nodes.
func (c *Corpus) Path(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "path", A: int64(n)}, func() (*Graph, error) {
		return Path(n), nil
	}))
}

// Cycle returns the cached cycle on n nodes.
func (c *Corpus) Cycle(n int) (*Graph, error) {
	return c.Get(CorpusKey{Family: "cycle", A: int64(n)}, func() (*Graph, error) {
		return Cycle(n)
	})
}

// Star returns the cached star on n nodes.
func (c *Corpus) Star(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "star", A: int64(n)}, func() (*Graph, error) {
		return Star(n), nil
	}))
}

// Complete returns the cached clique K_n.
func (c *Corpus) Complete(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "complete", A: int64(n)}, func() (*Graph, error) {
		return Complete(n), nil
	}))
}

// Grid returns the cached r x c grid.
func (c *Corpus) Grid(r, cols int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "grid", A: int64(r), B: int64(cols)}, func() (*Graph, error) {
		return Grid(r, cols), nil
	}))
}

// GNP returns the cached Erdős–Rényi graph G(n, p) for the given seed.
func (c *Corpus) GNP(n int, p float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "gnp", A: int64(n), F: math.Float64bits(p), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return GNP(n, p, seed) })
}

// RandomRegular returns the cached random d-regular graph for the given seed.
func (c *Corpus) RandomRegular(n, d int, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "regular", A: int64(n), B: int64(d), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return RandomRegular(n, d, seed) })
}

// ForestUnion returns the cached union of k random recursive forests.
func (c *Corpus) ForestUnion(n, k int, seed int64) *Graph {
	key := CorpusKey{Family: "forest-union", A: int64(n), B: int64(k), Seed: seed}
	return mustCorpus(c.Get(key, func() (*Graph, error) { return ForestUnion(n, k, seed), nil }))
}

// RandomTree returns the cached random recursive tree for the given seed.
func (c *Corpus) RandomTree(n int, seed int64) *Graph {
	key := CorpusKey{Family: "random-tree", A: int64(n), Seed: seed}
	return mustCorpus(c.Get(key, func() (*Graph, error) { return RandomTree(n, seed), nil }))
}

// PreferentialAttachment returns the cached Barabási–Albert graph for the
// given seed.
func (c *Corpus) PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "ba", A: int64(n), B: int64(m), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return PreferentialAttachment(n, m, seed) })
}

// RandomGeometric returns the cached random geometric (unit-disk) graph for
// the given seed.
func (c *Corpus) RandomGeometric(n int, r float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "geometric", A: int64(n), F: math.Float64bits(r), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return RandomGeometric(n, r, seed) })
}

// WattsStrogatz returns the cached Watts–Strogatz small-world graph for the
// given seed.
func (c *Corpus) WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "smallworld", A: int64(n), B: int64(k), F: math.Float64bits(beta), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return WattsStrogatz(n, k, beta, seed) })
}

// ShuffledIDsOf returns the cached WithShuffledIDs perturbation of g. Like
// the other derived constructions it is keyed by the identity of the source
// graph, so the scenario layer's ID regimes reuse one perturbed instance per
// (graph, maxID, seed).
func (c *Corpus) ShuffledIDsOf(g *Graph, maxID, seed int64) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "shuffled-ids", a: maxID, b: seed})
	c.runBuild(e, func() { e.g, e.err = WithShuffledIDs(g, maxID, seed) })
	return e.g, e.err
}

// ClusteredIDsOf returns the cached WithClusteredIDs perturbation of g.
func (c *Corpus) ClusteredIDsOf(g *Graph, clusters int, maxID, seed int64) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "clustered-ids", k: clusters, a: maxID, b: seed})
	c.runBuild(e, func() { e.g, e.err = WithClusteredIDs(g, clusters, maxID, seed) })
	return e.g, e.err
}

// LineGraphOf returns the cached line graph of g with its canonical edge
// list (see LineGraph).
func (c *Corpus) LineGraphOf(g *Graph) (*Graph, []Edge, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "line"})
	c.runBuild(e, func() { e.g, e.edges, e.err = LineGraph(g) })
	return e.g, e.edges, e.err
}

// PowerOf returns the cached k-th power of g.
func (c *Corpus) PowerOf(g *Graph, k int) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "power", k: k})
	c.runBuild(e, func() { e.g, e.err = Power(g, k) })
	return e.g, e.err
}

// ProductOf returns the cached clique product of g with its copy table (see
// ProductDegPlusOne).
func (c *Corpus) ProductOf(g *Graph) (*Graph, []CliqueCopy, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "product"})
	c.runBuild(e, func() { e.g, e.copies, e.err = ProductDegPlusOne(g) })
	return e.g, e.copies, e.err
}

// mustCorpus unwraps helpers whose underlying generators cannot fail.
func mustCorpus(g *Graph, err error) *Graph {
	if err != nil {
		panic(fmt.Sprintf("graph: corpus: infallible generator failed: %v", err))
	}
	return g
}
