package graph

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Corpus memoizes generated graph families and derived constructions. The
// benchmark harness runs hundreds of simulations that keep asking for the
// same topologies — the same GNP(n, p, seed) appears in several experiments —
// and regenerating them per experiment wastes the time the sweep scheduler
// saves. A built Graph is immutable and safe for concurrent use, so one
// cached instance can back any number of concurrent runs.
//
// Generated families are keyed by (family, params, seed) via CorpusKey;
// derived constructions (LineGraphOf, PowerOf, ProductOf) are keyed by the
// identity of their (cached, canonical) source graph. All methods are safe
// for concurrent use; concurrent requests for a missing entry build it
// exactly once (other callers block until it is ready without holding the
// corpus lock).
//
// A corpus from NewCorpus is unbounded — correct for one-shot harnesses,
// fatal for a long-lived server that would otherwise retain every graph
// family any client ever requested. NewBoundedCorpus caps the entry count
// with LRU eviction: entries fall out least-recently-used first, and
// evicting a generated graph also drops the derived constructions keyed by
// its identity (their canonical source pointer can never be requested
// again, so they would otherwise be unreachable dead weight). An evicted
// graph that is requested again is simply rebuilt — generators are
// deterministic, so the rebuilt instance is structurally identical and
// results stay byte-for-byte reproducible across evictions.
type Corpus struct {
	mu      sync.Mutex
	gen     map[CorpusKey]*corpusEntry
	derived map[derivedKey]*corpusEntry
	// limit caps len(gen)+len(derived); 0 means unbounded. lru orders all
	// entries most recently used first (values are *corpusEntry).
	limit     int
	lru       *list.List
	hits      uint64
	misses    uint64
	evictions uint64
}

// CorpusStats is a point-in-time snapshot of a corpus's cache behaviour,
// exported by long-lived owners (the serving layer's /metrics).
type CorpusStats struct {
	// Hits and Misses count lookups served from the cache vs built.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU bound (including derived
	// entries cascaded out with their evicted source).
	Evictions uint64
	// Entries is the current number of cached graphs; Limit is the bound (0
	// means unbounded).
	Entries, Limit int
}

// CorpusKey identifies a generated graph: the family name, up to two integer
// parameters, one float parameter (stored as bits so keys stay comparable)
// and the generator seed.
type CorpusKey struct {
	Family string
	A, B   int64
	F      uint64
	Seed   int64
}

// derivedKey identifies a derived construction by its source graph's
// identity plus the construction's own parameters. Pointer keying is sound
// because graphs are immutable and the corpus hands out one canonical
// instance per generated key.
type derivedKey struct {
	src  *Graph
	op   string
	k    int
	a, b int64
}

// corpusEntry carries one built graph plus the side artifacts some
// constructions return. The per-entry once lets concurrent first requests
// build without serializing unrelated builds behind the corpus lock.
type corpusEntry struct {
	once   sync.Once
	g      *Graph
	err    error
	edges  []Edge
	copies []CliqueCopy
	// built flips to true after once completes; eviction skips entries still
	// building (their graph pointer is not out yet, and removing them would
	// duplicate an in-flight build for no memory gain).
	built atomic.Bool
	// LRU bookkeeping, guarded by Corpus.mu. key/dkey identify the map slot
	// to delete on eviction; isDerived selects which map.
	elem      *list.Element
	key       CorpusKey
	dkey      derivedKey
	isDerived bool
}

// NewCorpus returns an empty, unbounded corpus.
func NewCorpus() *Corpus {
	return NewBoundedCorpus(0)
}

// NewBoundedCorpus returns an empty corpus holding at most limit graphs
// (generated plus derived), evicting least-recently-used entries beyond it.
// limit <= 0 means unbounded.
func NewBoundedCorpus(limit int) *Corpus {
	if limit < 0 {
		limit = 0
	}
	return &Corpus{
		gen:     make(map[CorpusKey]*corpusEntry),
		derived: make(map[derivedKey]*corpusEntry),
		limit:   limit,
		lru:     list.New(),
	}
}

// Stats returns how many lookups were served from the cache and how many had
// to build.
func (c *Corpus) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Metrics returns the full cache counters, including evictions and the
// current entry count.
func (c *Corpus) Metrics() CorpusStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CorpusStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.gen) + len(c.derived),
		Limit:     c.limit,
	}
}

// touch moves e to the front of the LRU list, linking it on first use.
// Caller holds c.mu.
func (c *Corpus) touch(e *corpusEntry) {
	if e.elem == nil {
		e.elem = c.lru.PushFront(e)
	} else {
		c.lru.MoveToFront(e.elem)
	}
}

// drop removes e from its map and the LRU list and counts the eviction.
// Caller holds c.mu.
func (c *Corpus) drop(e *corpusEntry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	if e.isDerived {
		delete(c.derived, e.dkey)
	} else {
		delete(c.gen, e.key)
	}
	c.evictions++
}

// evict enforces the entry bound after an insert, walking from the LRU tail.
// Entries still building are skipped (their pointer is not public yet), as is
// keep, the entry just inserted. Evicting a generated graph cascades to the
// derived entries keyed by its identity: once the canonical source instance
// leaves the map, those keys can never be requested again. Caller holds c.mu.
func (c *Corpus) evict(keep *corpusEntry) {
	if c.limit <= 0 {
		return
	}
	el := c.lru.Back()
	for len(c.gen)+len(c.derived) > c.limit && el != nil {
		e := el.Value.(*corpusEntry)
		if e == keep || !e.built.Load() {
			el = el.Prev()
			continue
		}
		c.drop(e)
		if !e.isDerived && e.g != nil {
			for dk, de := range c.derived {
				// The cascade honours the same guards as the walk: never the
				// entry being inserted (it would vanish before ever serving a
				// hit) and never one still building. A spared derived entry
				// keeps its dead source key and simply ages out by LRU.
				if dk.src == e.g && de != keep && de.built.Load() {
					c.drop(de)
				}
			}
		}
		// The cascade may have removed the walk cursor's neighbours, so
		// restart from the back; every restart follows a drop, so the loop
		// still terminates.
		el = c.lru.Back()
	}
}

// entry returns the memo slot for key, creating it on miss.
func (c *Corpus) entry(key CorpusKey) *corpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.gen[key]
	if !ok {
		e = &corpusEntry{key: key}
		c.gen[key] = e
		c.misses++
		c.touch(e)
		c.evict(e)
	} else {
		c.hits++
		c.touch(e)
	}
	return e
}

// derivedEntry returns the memo slot for a derived construction.
func (c *Corpus) derivedEntry(key derivedKey) *corpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.derived[key]
	if !ok {
		e = &corpusEntry{dkey: key, isDerived: true}
		c.derived[key] = e
		c.misses++
		c.touch(e)
		c.evict(e)
	} else {
		c.hits++
		c.touch(e)
	}
	return e
}

// build runs e's once-guarded construction and marks it evictable.
func (e *corpusEntry) build(fn func()) {
	e.once.Do(fn)
	e.built.Store(true)
}

// Get memoizes an arbitrary generated graph under key, building it with
// build on first request. The named helpers below cover the standard
// families; Get is the extension point for callers with their own
// generators.
func (c *Corpus) Get(key CorpusKey, build func() (*Graph, error)) (*Graph, error) {
	e := c.entry(key)
	e.build(func() { e.g, e.err = build() })
	return e.g, e.err
}

// Path returns the cached path on n nodes.
func (c *Corpus) Path(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "path", A: int64(n)}, func() (*Graph, error) {
		return Path(n), nil
	}))
}

// Cycle returns the cached cycle on n nodes.
func (c *Corpus) Cycle(n int) (*Graph, error) {
	return c.Get(CorpusKey{Family: "cycle", A: int64(n)}, func() (*Graph, error) {
		return Cycle(n)
	})
}

// Star returns the cached star on n nodes.
func (c *Corpus) Star(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "star", A: int64(n)}, func() (*Graph, error) {
		return Star(n), nil
	}))
}

// Complete returns the cached clique K_n.
func (c *Corpus) Complete(n int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "complete", A: int64(n)}, func() (*Graph, error) {
		return Complete(n), nil
	}))
}

// Grid returns the cached r x c grid.
func (c *Corpus) Grid(r, cols int) *Graph {
	return mustCorpus(c.Get(CorpusKey{Family: "grid", A: int64(r), B: int64(cols)}, func() (*Graph, error) {
		return Grid(r, cols), nil
	}))
}

// GNP returns the cached Erdős–Rényi graph G(n, p) for the given seed.
func (c *Corpus) GNP(n int, p float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "gnp", A: int64(n), F: math.Float64bits(p), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return GNP(n, p, seed) })
}

// RandomRegular returns the cached random d-regular graph for the given seed.
func (c *Corpus) RandomRegular(n, d int, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "regular", A: int64(n), B: int64(d), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return RandomRegular(n, d, seed) })
}

// ForestUnion returns the cached union of k random recursive forests.
func (c *Corpus) ForestUnion(n, k int, seed int64) *Graph {
	key := CorpusKey{Family: "forest-union", A: int64(n), B: int64(k), Seed: seed}
	return mustCorpus(c.Get(key, func() (*Graph, error) { return ForestUnion(n, k, seed), nil }))
}

// RandomTree returns the cached random recursive tree for the given seed.
func (c *Corpus) RandomTree(n int, seed int64) *Graph {
	key := CorpusKey{Family: "random-tree", A: int64(n), Seed: seed}
	return mustCorpus(c.Get(key, func() (*Graph, error) { return RandomTree(n, seed), nil }))
}

// PreferentialAttachment returns the cached Barabási–Albert graph for the
// given seed.
func (c *Corpus) PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "ba", A: int64(n), B: int64(m), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return PreferentialAttachment(n, m, seed) })
}

// RandomGeometric returns the cached random geometric (unit-disk) graph for
// the given seed.
func (c *Corpus) RandomGeometric(n int, r float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "geometric", A: int64(n), F: math.Float64bits(r), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return RandomGeometric(n, r, seed) })
}

// WattsStrogatz returns the cached Watts–Strogatz small-world graph for the
// given seed.
func (c *Corpus) WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	key := CorpusKey{Family: "smallworld", A: int64(n), B: int64(k), F: math.Float64bits(beta), Seed: seed}
	return c.Get(key, func() (*Graph, error) { return WattsStrogatz(n, k, beta, seed) })
}

// ShuffledIDsOf returns the cached WithShuffledIDs perturbation of g. Like
// the other derived constructions it is keyed by the identity of the source
// graph, so the scenario layer's ID regimes reuse one perturbed instance per
// (graph, maxID, seed).
func (c *Corpus) ShuffledIDsOf(g *Graph, maxID, seed int64) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "shuffled-ids", a: maxID, b: seed})
	e.build(func() { e.g, e.err = WithShuffledIDs(g, maxID, seed) })
	return e.g, e.err
}

// ClusteredIDsOf returns the cached WithClusteredIDs perturbation of g.
func (c *Corpus) ClusteredIDsOf(g *Graph, clusters int, maxID, seed int64) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "clustered-ids", k: clusters, a: maxID, b: seed})
	e.build(func() { e.g, e.err = WithClusteredIDs(g, clusters, maxID, seed) })
	return e.g, e.err
}

// LineGraphOf returns the cached line graph of g with its canonical edge
// list (see LineGraph).
func (c *Corpus) LineGraphOf(g *Graph) (*Graph, []Edge, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "line"})
	e.build(func() { e.g, e.edges, e.err = LineGraph(g) })
	return e.g, e.edges, e.err
}

// PowerOf returns the cached k-th power of g.
func (c *Corpus) PowerOf(g *Graph, k int) (*Graph, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "power", k: k})
	e.build(func() { e.g, e.err = Power(g, k) })
	return e.g, e.err
}

// ProductOf returns the cached clique product of g with its copy table (see
// ProductDegPlusOne).
func (c *Corpus) ProductOf(g *Graph) (*Graph, []CliqueCopy, error) {
	e := c.derivedEntry(derivedKey{src: g, op: "product"})
	e.build(func() { e.g, e.copies, e.err = ProductDegPlusOne(g) })
	return e.g, e.copies, e.err
}

// mustCorpus unwraps helpers whose underlying generators cannot fail.
func mustCorpus(g *Graph, err error) *Graph {
	if err != nil {
		panic(fmt.Sprintf("graph: corpus: infallible generator failed: %v", err))
	}
	return g
}
