package graph

import (
	"slices"
	"testing"
)

// TestWithShuffledIDsMaxIDCollisions pins the tight end of the range: with
// maxID == n every draw collides until the rejection loop has found the full
// permutation, and the result must be exactly a permutation of [1, n].
func TestWithShuffledIDsMaxIDCollisions(t *testing.T) {
	g := Grid(16, 16)
	n := g.N()
	h, err := WithShuffledIDs(g, int64(n), 5)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, h)
	ids := make([]int64, n)
	for u := 0; u < n; u++ {
		ids[u] = h.ID(u)
	}
	slices.Sort(ids)
	for i, id := range ids {
		if id != int64(i)+1 {
			t.Fatalf("sorted ids[%d] = %d, want %d: not a permutation of [1, n]", i, id, i+1)
		}
	}
	if slices.Equal(ids, identities(h)) {
		t.Error("dense shuffle left identities in sorted order (astronomically unlikely)")
	}
	if !sameEdges(g, h) {
		t.Error("shuffling ids changed the edge set")
	}
}

// TestWithShuffledIDsSparseHuge pins the sparse end used by the scenario
// layer's sparse-huge regime: identities drawn from [1, 2^40] exceed the
// pair-packing range, so direct use works while the packing constructions
// reject the graph.
func TestWithShuffledIDsSparseHuge(t *testing.T) {
	g := Grid(8, 8)
	h, err := WithShuffledIDs(g, 1<<40, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, h)
	if h.MaxIDValue() <= MaxID {
		t.Fatalf("max id %d unexpectedly within the packed range for maxID 2^40", h.MaxIDValue())
	}
	if h.MaxIDValue() > 1<<40 {
		t.Fatalf("max id %d exceeds requested range 2^40", h.MaxIDValue())
	}
	if !sameEdges(g, h) {
		t.Error("shuffling ids changed the edge set")
	}
	for u := 0; u < h.N(); u++ {
		if h.IndexOfID(h.ID(u)) != u {
			t.Fatalf("id index lookup broken for huge id %d", h.ID(u))
		}
	}
	if _, _, err := LineGraph(h); err == nil {
		t.Error("LineGraph accepted identities beyond the packing range")
	}
	if _, _, err := ProductDegPlusOne(h); err == nil {
		t.Error("ProductDegPlusOne accepted identities beyond the packing range")
	}
	if _, err := Power(h, 2); err != nil {
		t.Errorf("Power should accept huge identities (no packing): %v", err)
	}
}

func TestWithShuffledIDsRange(t *testing.T) {
	g := Path(10)
	if _, err := WithShuffledIDs(g, 9, 1); err == nil {
		t.Error("maxID < n not rejected")
	}
	if _, err := WithShuffledIDs(g, MaxPackedID+1, 1); err == nil {
		t.Error("maxID > MaxPackedID not rejected")
	}
	if _, err := WithShuffledIDs(g, MaxPackedID, 1); err != nil {
		t.Errorf("maxID == MaxPackedID rejected: %v", err)
	}
}

func identities(g *Graph) []int64 {
	ids := make([]int64, g.N())
	for u := 0; u < g.N(); u++ {
		ids[u] = g.ID(u)
	}
	return ids
}

func TestWithClusteredIDs(t *testing.T) {
	g := Grid(25, 10) // n = 250: 7 full blocks of 32 plus one partial
	n := g.N()
	const clusters = 8
	maxID := int64(1) << 30
	h, err := WithClusteredIDs(g, clusters, maxID, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, h)
	if !sameEdges(g, h) {
		t.Error("clustering ids changed the edge set")
	}
	ids := identities(h)
	slices.Sort(ids)
	if ids[0] < 1 || ids[n-1] > maxID {
		t.Fatalf("ids out of [1, maxID]: min %d max %d", ids[0], ids[n-1])
	}
	width := int64((n + clusters - 1) / clusters)
	runs := 1
	runLen := int64(1)
	for i := 1; i < n; i++ {
		if ids[i] == ids[i-1]+1 {
			runLen++
			if runLen > width {
				t.Fatalf("consecutive identity run longer than block width %d", width)
			}
			continue
		}
		runs++
		runLen = 1
	}
	if runs != clusters {
		t.Fatalf("found %d consecutive-id blocks, want %d", runs, clusters)
	}
	again, err := WithClusteredIDs(g, clusters, maxID, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(identities(h), identities(again)) {
		t.Fatal("same seed produced different clustered assignments")
	}

	if _, err := WithClusteredIDs(g, 0, maxID, 1); err == nil {
		t.Error("clusters = 0 not rejected")
	}
	// maxID >= n but slots too small for a full block: n=250, 8 clusters of
	// width 32 need slots >= 32, maxID 250 gives slots of 31.
	if _, err := WithClusteredIDs(g, clusters, int64(n), 1); err == nil {
		t.Error("slot smaller than block width not rejected")
	}
	// clusters > n clamps to n (every block a singleton).
	many, err := WithClusteredIDs(Path(5), 100, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, many)
}

func TestCorpusIDPerturbations(t *testing.T) {
	c := NewCorpus()
	g := c.Path(64)
	s1, err := c.ShuffledIDsOf(g, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.ShuffledIDsOf(g, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("corpus rebuilt an identical shuffled-ids key")
	}
	s3, err := c.ShuffledIDsOf(g, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s3 {
		t.Error("different shuffle seeds share a corpus entry")
	}
	c1, err := c.ClusteredIDsOf(g, 4, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.ClusteredIDsOf(g, 4, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("corpus rebuilt an identical clustered-ids key")
	}
}
