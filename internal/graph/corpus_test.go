package graph

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCorpusHitMissSemantics pins the caching contract: the first request
// for a key builds and counts a miss, every later request returns the same
// canonical instance and counts a hit, and distinct keys never collide.
func TestCorpusHitMissSemantics(t *testing.T) {
	c := NewCorpus()
	g1, err := c.GNP(120, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first build: hits=%d misses=%d, want 0/1", h, m)
	}
	g2, err := c.GNP(120, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("same key returned distinct instances")
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("after hit: hits=%d misses=%d, want 1/1", h, m)
	}
	// Different p, seed or n are different keys.
	g3, _ := c.GNP(120, 0.06, 7)
	g4, _ := c.GNP(120, 0.05, 8)
	g5, _ := c.GNP(121, 0.05, 7)
	if g3 == g1 || g4 == g1 || g5 == g1 {
		t.Fatal("distinct keys collided")
	}
	if h, m := c.Stats(); h != 1 || m != 4 {
		t.Fatalf("after distinct keys: hits=%d misses=%d, want 1/4", h, m)
	}
	// Generator errors are memoized too (and don't panic the helpers that
	// can fail).
	if _, err := c.Cycle(2); err == nil {
		t.Fatal("corpus hid the generator error")
	}
	if _, err := c.Cycle(2); err == nil {
		t.Fatal("memoized error lost")
	}
}

// TestCorpusDerivedKeying checks that derived constructions are cached per
// (source graph, op, k) and return their side artifacts on every lookup.
func TestCorpusDerivedKeying(t *testing.T) {
	c := NewCorpus()
	base := c.Grid(4, 4)
	lg1, edges1, err := c.LineGraphOf(base)
	if err != nil {
		t.Fatal(err)
	}
	lg2, edges2, err := c.LineGraphOf(base)
	if err != nil {
		t.Fatal(err)
	}
	if lg1 != lg2 || &edges1[0] != &edges2[0] {
		t.Fatal("line graph not cached per source")
	}
	p2, err := c.PowerOf(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := c.PowerOf(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p3 {
		t.Fatal("powers with different k collided")
	}
	if again, _ := c.PowerOf(base, 2); again != p2 {
		t.Fatal("power not cached")
	}
	pg1, copies1, err := c.ProductOf(base)
	if err != nil {
		t.Fatal(err)
	}
	pg2, copies2, err := c.ProductOf(base)
	if err != nil {
		t.Fatal(err)
	}
	if pg1 != pg2 || &copies1[0] != &copies2[0] {
		t.Fatal("product not cached per source")
	}
	// A different source graph with equal parameters is a different key.
	other := Grid(4, 4)
	lgOther, _, err := c.LineGraphOf(other)
	if err != nil {
		t.Fatal(err)
	}
	if lgOther == lg1 {
		t.Fatal("derived cache keyed by value, not source identity")
	}
}

// TestCorpusConcurrentBuildOnce floods one cold key from many goroutines:
// the generator must run exactly once and everyone must get that instance.
// Run under -race in CI.
func TestCorpusConcurrentBuildOnce(t *testing.T) {
	c := NewCorpus()
	var builds atomic.Int64
	key := CorpusKey{Family: "custom", A: 99}
	const goroutines = 16
	got := make([]*Graph, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			g, err := c.Get(key, func() (*Graph, error) {
				builds.Add(1)
				return Path(500), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = g
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("generator ran %d times, want 1", builds.Load())
	}
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent callers saw different instances")
		}
	}
	if h, m := c.Stats(); m != 1 || h != goroutines-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", h, m, goroutines-1)
	}
}
