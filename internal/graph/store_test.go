package graph

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// storeTestGraphs builds one representative graph per generator shape —
// random families, a deterministic family, and the single-node/no-edge
// edge case — each under the corpus key its family would use.
func storeTestGraphs(t *testing.T) map[CorpusKey]*Graph {
	t.Helper()
	gnp, err := GNP(200, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := RandomGeometric(256, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PreferentialAttachment(300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := Cycle(50)
	if err != nil {
		t.Fatal(err)
	}
	return map[CorpusKey]*Graph{
		{Family: "gnp", A: 200, F: 42, Seed: 3}:       gnp,
		{Family: "geometric", A: 256, F: 43, Seed: 2}: geo,
		{Family: "ba", A: 300, B: 3, Seed: 7}:         ba,
		{Family: "cycle", A: 50}:                      cyc,
		{Family: "path", A: 1}:                        Path(1),
	}
}

// TestStoreRoundTrip pins the disk tier's core contract: Save then Load
// reproduces every observable field of the graph, including the derived CSR
// tables, lazy ID index, and byte estimates, for every generator shape.
func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	graphs := storeTestGraphs(t)
	for key, g := range graphs {
		if err := s.Save(key, g); err != nil {
			t.Fatalf("%s: save: %v", key.Family, err)
		}
	}
	// Saving again must be a no-op: images are content-addressed.
	written := s.Stats().Written
	for key, g := range graphs {
		if err := s.Save(key, g); err != nil {
			t.Fatalf("%s: re-save: %v", key.Family, err)
		}
	}
	if got := s.Stats().Written; got != written {
		t.Fatalf("re-save wrote images: %d -> %d", written, got)
	}
	for key, g := range graphs {
		got, ok := s.Load(key)
		if !ok {
			t.Fatalf("%s: image missing after save", key.Family)
		}
		requireSameGraph(t, g, got)
		// The lazy ID index on a loaded graph must answer like the original.
		for _, u := range []int{0, g.N() - 1} {
			if u < 0 {
				continue
			}
			if gi, wi := got.IndexOfID(g.ID(u)), g.IndexOfID(g.ID(u)); gi != wi {
				t.Fatalf("%s: IndexOfID(%d) = %d, want %d", key.Family, g.ID(u), gi, wi)
			}
		}
	}
	st := s.Stats()
	if st.Hits != uint64(len(graphs)) || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("stats after roundtrip: %+v", st)
	}
	if mmapSupported && st.BytesMapped == 0 {
		t.Fatal("mmap supported but no bytes mapped")
	}
	images, err := s.Images()
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != len(graphs) {
		t.Fatalf("store lists %d images, want %d", len(images), len(graphs))
	}
}

// TestStoreLoadMissing pins that an absent image is a plain miss — no error,
// no corruption count.
func TestStoreLoadMissing(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := s.Load(CorpusKey{Family: "nope", A: 5}); ok || g != nil {
		t.Fatalf("load of missing image returned %v, %v", g, ok)
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats after missing load: %+v", st)
	}
}

// TestStoreRejectsBadImages corrupts a valid image every way the format
// defends against and checks each one loads as a miss (never a crash, never
// bad data), is counted corrupt, and is removed so a later Save rewrites it.
func TestStoreRejectsBadImages(t *testing.T) {
	key := CorpusKey{Family: "gnp", A: 64, Seed: 9}
	g, err := GNP(64, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(img []byte) {
		binary.LittleEndian.PutUint32(img[hdrOffHeaderCRC:],
			crc32.Checksum(img[:hdrOffHeaderCRC], castagnoli))
	}
	cases := []struct {
		name    string
		corrupt func(img []byte) []byte
	}{
		{"truncated-payload", func(img []byte) []byte { return img[:imageHeaderSize+10] }},
		{"short-header", func(img []byte) []byte { return img[:100] }},
		{"flipped-payload-byte", func(img []byte) []byte {
			img[imageHeaderSize+17] ^= 0x40
			return img
		}},
		{"bad-magic", func(img []byte) []byte {
			img[0] ^= 0xff
			return img
		}},
		{"wrong-version", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[hdrOffVersion:], 99)
			reseal(img)
			return img
		}},
		{"foreign-byte-order", func(img []byte) []byte {
			for i := 0; i < 4; i++ {
				img[8+i], img[15-i] = img[15-i], img[8+i]
			}
			reseal(img)
			return img
		}},
		{"header-counts-lie", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[hdrOffN:], 1<<40)
			reseal(img)
			return img
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save(key, g); err != nil {
				t.Fatal(err)
			}
			path := s.ImagePath(key)
			img, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(img), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Load(key); ok || got != nil {
				t.Fatalf("corrupted image loaded: %v, %v", got, ok)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt image not counted: %+v", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt image not removed: stat err %v", err)
			}
			// The tier must self-heal: a corpus backed by this store falls back
			// to regeneration and Save repopulates the image.
			c := NewCorpus()
			c.AttachStore(s)
			got, err := c.Get(key, func() (*Graph, error) { return GNP(64, 0.1, 9) })
			if err != nil {
				t.Fatal(err)
			}
			requireSameGraph(t, g, got)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("image not rewritten after fallback: %v", err)
			}
		})
	}
}

// TestCorpusDiskTierWarmStart pins the two-tier behaviour across process
// "restarts" (fresh Corpus values sharing one store directory): the first
// corpus generates and persists, the second loads from disk without ever
// invoking its builder, and both hand out identical graphs.
func TestCorpusDiskTierWarmStart(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CorpusKey{Family: "warmstart", A: 128, Seed: 5}
	build := func() (*Graph, error) { return GNP(128, 0.1, 5) }

	cold := NewCorpus()
	cold.AttachStore(s)
	builds := 0
	g1, err := cold.Get(key, func() (*Graph, error) { builds++; return build() })
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("cold corpus built %d times, want 1", builds)
	}
	if st := s.Stats(); st.Written != 1 {
		t.Fatalf("cold build did not persist: %+v", st)
	}

	warm := NewCorpus()
	warm.AttachStore(s)
	g2, err := warm.Get(key, func() (*Graph, error) {
		t.Fatal("warm corpus regenerated despite a valid image")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, g1, g2)
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("warm start did not hit the disk tier: %+v", st)
	}
	m := warm.Metrics()
	if !m.DiskEnabled || m.Disk.Hits != 1 {
		t.Fatalf("corpus metrics missing disk tier: %+v", m)
	}
	// A second request on the warm corpus is a memory hit, not a disk load.
	if g3, err := warm.Get(key, build); err != nil || g3 != g2 {
		t.Fatalf("memory hit returned %v, %v", g3, err)
	}
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("memory hit reached the disk tier: %+v", st)
	}
}

// TestBoundedCorpusReloadsFromDisk pins the eviction interplay: with the
// disk tier attached, an entry pushed out of the in-memory LRU comes back
// via a disk load, not a regeneration.
func TestBoundedCorpusReloadsFromDisk(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewBoundedCorpus(1)
	c.AttachStore(s)
	keyA := CorpusKey{Family: "evictee", A: 40}
	keyB := CorpusKey{Family: "other", A: 41}
	buildsA := 0
	a1, err := c.Get(keyA, func() (*Graph, error) { buildsA++; return GNP(40, 0.2, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(keyB, func() (*Graph, error) { return GNP(41, 0.2, 1) }); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Evictions != 1 {
		t.Fatalf("limit-1 corpus kept both entries: %+v", m)
	}
	a2, err := c.Get(keyA, func() (*Graph, error) {
		t.Fatal("evicted entry regenerated despite its on-disk image")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if buildsA != 1 {
		t.Fatalf("entry built %d times, want 1", buildsA)
	}
	requireSameGraph(t, a1, a2)
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("eviction reload bypassed the disk tier: %+v", st)
	}
}

// TestCorpusMemLimitDiskBacked is the memory-budget guarantee: with the disk
// tier attached and a byte budget far below the raw CSR size, a big graph is
// still servable — the mmap-backed view costs the budget almost nothing, so
// the entry stays resident instead of thrashing. Sized down under -short.
func TestCorpusMemLimitDiskBacked(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform: loaded images are heap-resident, so the byte budget cannot hold a bigger-than-budget graph")
	}
	n := 1 << 19
	if testing.Short() {
		n = 1 << 16
	}
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CorpusKey{Family: "big", A: int64(n), Seed: 1}
	build := func() (*Graph, error) { return GNP(n, 8/float64(n-1), 1) }

	// Pre-warm the store in a throwaway corpus, as a fleet's graphgen would.
	warmer := NewCorpus()
	warmer.AttachStore(s)
	g0, err := warmer.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	raw := g0.CSRBytes()

	const budget = 1 << 20 // 1 MiB, far below the multi-MB raw CSR
	if raw < 4*budget {
		t.Fatalf("test graph too small to prove anything: CSR %d bytes vs budget %d", raw, budget)
	}
	c := NewCorpus()
	c.AttachStore(s)
	c.SetMemLimit(budget)
	g, err := c.Get(key, func() (*Graph, error) {
		t.Fatal("budgeted corpus regenerated despite a valid image")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n || g.NumEdges() != g0.NumEdges() {
		t.Fatalf("loaded graph shape n=%d m=%d, want n=%d m=%d", g.N(), g.NumEdges(), n, g0.NumEdges())
	}
	if hb := g.HeapBytes(); hb >= budget {
		t.Fatalf("mapped graph reports %d heap bytes, want below the %d budget", hb, budget)
	}
	m := c.Metrics()
	if m.MemBytes > m.MemLimit || m.MemLimit != budget {
		t.Fatalf("budget exceeded: %+v", m)
	}
	// The entry must be resident: a repeat request is a memory hit on the
	// same instance, not another disk load.
	diskHits := s.Stats().Hits
	g2, err := c.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g || s.Stats().Hits != diskHits {
		t.Fatal("bigger-than-budget mapped graph was evicted from the budgeted corpus")
	}
}
