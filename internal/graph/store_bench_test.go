package graph

import (
	"os"
	"testing"
)

// benchStoreParams matches cmd/localbench's corpusBench — the largest
// committed family (E8's gnp at n=16384) — so the Go benchmark and the
// BENCH.json corpus block measure the same cold/warm pair.
const (
	benchStoreN    = 16384
	benchStoreSeed = int64(benchStoreN)
)

func benchStoreP() float64 { return 8 / float64(benchStoreN-1) }

// BenchmarkCorpusColdVsWarm is the disk tier's headline number: "cold"
// generates the family from scratch through a store-less corpus, "warm"
// loads its CSR image from a pre-warmed store (mmap-backed where supported).
// The acceptance bar is warm ≥ 10x faster than cold.
func BenchmarkCorpusColdVsWarm(b *testing.B) {
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	warmer := NewCorpus()
	warmer.AttachStore(s)
	if _, err := warmer.GNP(benchStoreN, benchStoreP(), benchStoreSeed); err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewCorpus().GNP(benchStoreN, benchStoreP(), benchStoreSeed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCorpus()
			c.AttachStore(s)
			if _, err := c.GNP(benchStoreN, benchStoreP(), benchStoreSeed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusStoreSave measures image persistence (temp file, streamed
// CRC, atomic rename) for the same family, including the unlink that forces
// every iteration to write rather than skip.
func BenchmarkCorpusStoreSave(b *testing.B) {
	g, err := GNP(benchStoreN, benchStoreP(), benchStoreSeed)
	if err != nil {
		b.Fatal(err)
	}
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key := CorpusKey{Family: "bench", A: benchStoreN}
	b.SetBytes(imagePayloadLen(int64(g.N()), int64(g.NumEdges())) + imageHeaderSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := os.Remove(s.ImagePath(key)); err != nil && !os.IsNotExist(err) {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Save(key, g); err != nil {
			b.Fatal(err)
		}
	}
}
