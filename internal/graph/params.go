package graph

// Degeneracy returns the degeneracy of g (the maximum, over all subgraphs,
// of the minimum degree), computed by the standard bucket-peeling algorithm
// in O(n + m) time, together with a peeling order witnessing it.
//
// Degeneracy d brackets the arboricity a of the paper's Table 1:
// ceil((d+1)/2) <= a <= d, so it serves as the computable stand-in whenever
// an experiment needs "the" arboricity of a generated graph.
func Degeneracy(g *Graph) (int, []int32) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]int32, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], int32(u))
	}
	removed := make([]bool, n)
	order := make([]int32, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur >= len(buckets) {
			break
		}
		u := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[u] || deg[u] != cur {
			// Stale entry: the node moved to a lower bucket.
			continue
		}
		removed[u] = true
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, v := range g.Neighbors(int(u)) {
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
				if deg[v] < cur {
					cur = deg[v]
				}
			}
		}
	}
	return degeneracy, order
}

// ArboricityBounds returns provable lower and upper bounds on the arboricity
// of g derived from its degeneracy d: (d+1)/2 <= a <= d (and a = 0 for an
// edgeless graph).
func ArboricityBounds(g *Graph) (lo, hi int) {
	if g.NumEdges() == 0 {
		return 0, 0
	}
	d, _ := Degeneracy(g)
	lo = (d + 2) / 2
	if lo < 1 {
		lo = 1
	}
	return lo, max(d, 1)
}

// Components labels the connected components of g and returns the label
// slice along with the number of components.
func Components(g *Graph) ([]int32, int) {
	n := g.N()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	count := int32(0)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = count
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if label[v] < 0 {
					label[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return label, int(count)
}

// Diameter returns the maximum eccentricity over all nodes of a connected
// graph, or -1 if g is disconnected or empty. It runs a BFS from every node
// and is intended for tests and small benchmark graphs.
func Diameter(g *Graph) int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for u := 0; u < g.N(); u++ {
		dist := BFSDistances(g, u)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
