package graph

import (
	"fmt"
	"math"
	"testing"
)

// The streaming CSR-direct generators must reproduce the historical
// Builder-based generators bit for bit: corpus keys, committed experiment
// tables and content-addressed store images all assume a (family, params,
// seed) names one immutable graph forever. The legacy implementations are
// frozen below as oracles.

// legacyPreferentialAttachment is the pre-streaming generator, verbatim.
func legacyPreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: attachment count %d out of range [1, n=%d)", m, n)
	}
	rng := newRNG(seed)
	b := NewBuilder(n)
	m0 := m + 1
	ends := make([]int32, 0, m0*(m0-1)+2*(n-m0)*m)
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			b.AddEdge(u, v)
			ends = append(ends, int32(u), int32(v))
		}
	}
	targets := make([]int32, 0, m)
	for u := m0; u < n; u++ {
		targets = targets[:0]
		for len(targets) < m {
			t := ends[rng.IntN(len(ends))]
			dup := false
			for _, x := range targets {
				if x == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(u, int(t))
			ends = append(ends, int32(u), t)
		}
	}
	return b.Build()
}

// legacyRandomGeometric is the pre-streaming generator, verbatim.
func legacyRandomGeometric(n int, r float64, seed int64) (*Graph, error) {
	if !(r > 0 && r <= 1) {
		return nil, fmt.Errorf("graph: geometric radius %v out of (0, 1]", r)
	}
	rng := newRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for u := 0; u < n; u++ {
		xs[u] = rng.Float64()
		ys[u] = rng.Float64()
	}
	cells := int(1 / r)
	if maxCells := int(math.Sqrt(float64(n))) + 1; cells > maxCells {
		cells = maxCells
	}
	if cells < 1 {
		cells = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	buckets := make([][]int32, cells*cells)
	for u := 0; u < n; u++ {
		c := cellOf(ys[u])*cells + cellOf(xs[u])
		buckets[c] = append(buckets[c], int32(u))
	}
	b := NewBuilder(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		cx, cy := cellOf(xs[u]), cellOf(ys[u])
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, v := range buckets[ny*cells+nx] {
					if int(v) <= u {
						continue
					}
					ddx, ddy := xs[u]-xs[v], ys[u]-ys[v]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(u, int(v))
					}
				}
			}
		}
	}
	return b.Build()
}

// requireSameGraph asserts two graphs are identical in every observable
// field, including the derived CSR tables the engine addresses directly.
func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.N() != want.N() || got.NumEdges() != want.NumEdges() ||
		got.MaxDegree() != want.MaxDegree() || got.MaxIDValue() != want.MaxIDValue() {
		t.Fatalf("shape mismatch: got n=%d m=%d Δ=%d maxID=%d, want n=%d m=%d Δ=%d maxID=%d",
			got.N(), got.NumEdges(), got.MaxDegree(), got.MaxIDValue(),
			want.N(), want.NumEdges(), want.MaxDegree(), want.MaxIDValue())
	}
	for u := 0; u < want.N(); u++ {
		if got.ID(u) != want.ID(u) {
			t.Fatalf("node %d: id %d, want %d", u, got.ID(u), want.ID(u))
		}
		if got.AdjOffset(u) != want.AdjOffset(u) {
			t.Fatalf("node %d: adj offset %d, want %d", u, got.AdjOffset(u), want.AdjOffset(u))
		}
		gn, wn := got.Neighbors(u), want.Neighbors(u)
		if len(gn) != len(wn) {
			t.Fatalf("node %d: degree %d, want %d", u, len(gn), len(wn))
		}
		for k := range wn {
			if gn[k] != wn[k] {
				t.Fatalf("node %d port %d: neighbour %d, want %d", u, k, gn[k], wn[k])
			}
			if got.BackPort(u, k) != want.BackPort(u, k) {
				t.Fatalf("node %d port %d: back port %d, want %d", u, k, got.BackPort(u, k), want.BackPort(u, k))
			}
		}
		gr, wr := got.ReverseEdges(u), want.ReverseEdges(u)
		for k := range wr {
			if gr[k] != wr[k] {
				t.Fatalf("node %d port %d: reverse edge %d, want %d", u, k, gr[k], wr[k])
			}
		}
	}
}

func TestPreferentialAttachmentMatchesLegacy(t *testing.T) {
	cases := []struct {
		n, m int
		seed int64
	}{
		{2, 1, 1}, {10, 1, 1}, {50, 2, 3}, {200, 3, 7}, {500, 5, 11}, {64, 8, 42},
	}
	for _, tc := range cases {
		want, err := legacyPreferentialAttachment(tc.n, tc.m, tc.seed)
		if err != nil {
			t.Fatalf("legacy ba(%d,%d,%d): %v", tc.n, tc.m, tc.seed, err)
		}
		got, err := PreferentialAttachment(tc.n, tc.m, tc.seed)
		if err != nil {
			t.Fatalf("ba(%d,%d,%d): %v", tc.n, tc.m, tc.seed, err)
		}
		requireSameGraph(t, want, got)
	}
}

func TestRandomGeometricMatchesLegacy(t *testing.T) {
	cases := []struct {
		n    int
		r    float64
		seed int64
	}{
		{0, 0.5, 1}, {1, 0.5, 1}, {10, 0.9, 2}, {100, 0.2, 3},
		{512, 0.07, 2}, {300, 0.01, 5}, {64, 1, 9},
	}
	for _, tc := range cases {
		want, err := legacyRandomGeometric(tc.n, tc.r, tc.seed)
		if err != nil {
			t.Fatalf("legacy geometric(%d,%v,%d): %v", tc.n, tc.r, tc.seed, err)
		}
		got, err := RandomGeometric(tc.n, tc.r, tc.seed)
		if err != nil {
			t.Fatalf("geometric(%d,%v,%d): %v", tc.n, tc.r, tc.seed, err)
		}
		requireSameGraph(t, want, got)
	}
}

func TestStreamingGeneratorsRejectBadParams(t *testing.T) {
	if _, err := PreferentialAttachment(5, 0, 1); err == nil {
		t.Error("ba m=0: want error")
	}
	if _, err := PreferentialAttachment(5, 5, 1); err == nil {
		t.Error("ba m=n: want error")
	}
	if _, err := RandomGeometric(5, 0, 1); err == nil {
		t.Error("geometric r=0: want error")
	}
	if _, err := RandomGeometric(5, 1.5, 1); err == nil {
		t.Error("geometric r>1: want error")
	}
}
