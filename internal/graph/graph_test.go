package graph

import (
	"testing"
	"testing/quick"
)

// checkSimple validates the structural invariants every built graph must
// satisfy: sorted adjacency, symmetry, no self-loops, correct back ports.
func checkSimple(t *testing.T, g *Graph) {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		nb := g.Neighbors(u)
		for k, v := range nb {
			if int(v) == u {
				t.Fatalf("self loop at %d", u)
			}
			if k > 0 && nb[k-1] >= v {
				t.Fatalf("adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(int(v), u) {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
			bp := g.BackPort(u, k)
			if g.Neighbor(int(v), bp) != u {
				t.Fatalf("back port wrong for (%d,%d)", u, k)
			}
		}
	}
	// Identities unique and positive.
	seen := make(map[int64]bool, g.N())
	for u := 0; u < g.N(); u++ {
		id := g.ID(u)
		if id <= 0 || seen[id] {
			t.Fatalf("bad identity %d at node %d", id, u)
		}
		seen[id] = true
	}
	// Degree sum = 2|E|.
	sum := 0
	for u := 0; u < g.N(); u++ {
		sum += g.Degree(u)
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges %d", sum, 2*g.NumEdges())
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0)
	if _, err := b.Build(); err == nil {
		t.Error("self-loop not rejected")
	}
	b = NewBuilder(3)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Error("out-of-range edge not rejected")
	}
	b = NewBuilder(2)
	b.SetID(0, 7)
	b.SetID(1, 7)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate identity not rejected")
	}
	b = NewBuilder(1)
	b.SetID(0, 0)
	if _, err := b.Build(); err == nil {
		t.Error("non-positive identity not rejected")
	}
	b = NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, must be deduped
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestGenerators(t *testing.T) {
	cyc, err := Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := GNP(200, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RandomRegular(100, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name      string
		g         *Graph
		wantN     int
		wantEdges int // -1 to skip
		wantMaxD  int // -1 to skip
	}{
		{"empty", Empty(5), 5, 0, 0},
		{"path", Path(6), 6, 5, 2},
		{"cycle", cyc, 10, 10, 2},
		{"complete", Complete(7), 7, 21, 6},
		{"star", Star(9), 9, 8, 8},
		{"grid", Grid(3, 4), 12, 17, 4},
		{"torus", torus, 20, 40, 4},
		{"hypercube", cube, 16, 32, 4},
		{"bintree", CompleteBinaryTree(15), 15, 14, 3},
		{"randomtree", RandomTree(50, 1), 50, 49, -1},
		{"caterpillar", Caterpillar(5, 3), 20, 19, 5},
		{"lollipop", Lollipop(5, 4), 9, 14, -1},
		{"gnp", gnp, 200, -1, -1},
		{"regular", reg, 100, 200, 4},
		{"forest", ForestUnion(60, 3, 3), 60, -1, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkSimple(t, tt.g)
			if tt.g.N() != tt.wantN {
				t.Errorf("N = %d, want %d", tt.g.N(), tt.wantN)
			}
			if tt.wantEdges >= 0 && tt.g.NumEdges() != tt.wantEdges {
				t.Errorf("edges = %d, want %d", tt.g.NumEdges(), tt.wantEdges)
			}
			if tt.wantMaxD >= 0 && tt.g.MaxDegree() != tt.wantMaxD {
				t.Errorf("maxdeg = %d, want %d", tt.g.MaxDegree(), tt.wantMaxD)
			}
		})
	}
}

func TestRandomRegularIsRegular(t *testing.T) {
	for _, d := range []int{2, 3, 6, 9} {
		n := 60
		if n*d%2 != 0 {
			n++
		}
		g, err := RandomRegular(n, d, int64(d))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		checkSimple(t, g)
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) != d {
				t.Fatalf("d=%d: node %d has degree %d", d, u, g.Degree(u))
			}
		}
	}
}

func TestGNPEdgeCount(t *testing.T) {
	n, p := 400, 0.02
	g, err := GNP(n, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, g)
	want := p * float64(n*(n-1)/2)
	got := float64(g.NumEdges())
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("GNP edge count %v too far from expectation %v", got, want)
	}
	// Determinism.
	g2, err := GNP(n, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("GNP not deterministic for fixed seed")
	}
	// p=0 and p=1 extremes.
	g0, err := GNP(50, 0, 1)
	if err != nil || g0.NumEdges() != 0 {
		t.Errorf("GNP(50,0) edges = %d, err = %v", g0.NumEdges(), err)
	}
	g1, err := GNP(50, 1, 1)
	if err != nil || g1.NumEdges() != 50*49/2 {
		t.Errorf("GNP(50,1) edges = %d, err = %v", g1.NumEdges(), err)
	}
}

func TestForestUnionArboricity(t *testing.T) {
	for k := 1; k <= 4; k++ {
		g := ForestUnion(200, k, int64(k))
		checkSimple(t, g)
		_, hi := ArboricityBounds(g)
		// Union of k forests has arboricity <= k, so degeneracy <= 2k-1.
		d, _ := Degeneracy(g)
		if d > 2*k-1 {
			t.Errorf("k=%d: degeneracy %d > 2k-1", k, d)
		}
		if hi > 2*k-1 {
			t.Errorf("k=%d: arboricity upper bound %d > 2k-1", k, hi)
		}
	}
}

func TestDegeneracy(t *testing.T) {
	cyc, _ := Cycle(8)
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", Empty(4), 0},
		{"path", Path(5), 1},
		{"tree", RandomTree(40, 9), 1},
		{"cycle", cyc, 2},
		{"clique", Complete(6), 5},
		{"grid", Grid(5, 5), 2},
		{"star", Star(10), 1},
	}
	for _, tt := range tests {
		if d, order := Degeneracy(tt.g); d != tt.want || len(order) != tt.g.N() {
			t.Errorf("%s: degeneracy = %d (order %d nodes), want %d", tt.name, d, len(order), tt.want)
		}
	}
}

func TestComponentsAndDiameter(t *testing.T) {
	g := DisjointUnion(Path(4), Complete(3), Empty(2))
	checkSimple(t, g)
	_, c := Components(g)
	if c != 4 {
		t.Errorf("components = %d, want 4", c)
	}
	if d := Diameter(g); d != -1 {
		t.Errorf("diameter of disconnected graph = %d, want -1", d)
	}
	if d := Diameter(Path(5)); d != 4 {
		t.Errorf("path diameter = %d, want 4", d)
	}
	if d := Diameter(Complete(5)); d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
	g2, _ := Cycle(8)
	if d := Diameter(g2); d != 4 {
		t.Errorf("cycle diameter = %d, want 4", d)
	}
}

func TestLineGraph(t *testing.T) {
	g := Grid(3, 3)
	lg, edges, err := LineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, lg)
	if lg.N() != g.NumEdges() {
		t.Fatalf("line graph has %d nodes, want %d", lg.N(), g.NumEdges())
	}
	// Brute-force adjacency: edges adjacent iff they share an endpoint.
	for i := 0; i < lg.N(); i++ {
		for j := i + 1; j < lg.N(); j++ {
			share := edges[i].U == edges[j].U || edges[i].U == edges[j].V ||
				edges[i].V == edges[j].U || edges[i].V == edges[j].V
			if share != lg.HasEdge(i, j) {
				t.Fatalf("line graph adjacency wrong for %v, %v", edges[i], edges[j])
			}
		}
	}
	// Identities are packed endpoint identities.
	for i, e := range edges {
		a, b := g.ID(int(e.U)), g.ID(int(e.V))
		if a > b {
			a, b = b, a
		}
		if lg.ID(i) != PackIDs(a, b) {
			t.Fatalf("line graph identity mismatch at %d", i)
		}
	}
	// Max degree of L(G) is at most 2(Δ-1).
	if lg.MaxDegree() > 2*(g.MaxDegree()-1) {
		t.Errorf("line graph max degree %d > 2(Δ-1) = %d", lg.MaxDegree(), 2*(g.MaxDegree()-1))
	}
}

func TestPower(t *testing.T) {
	g := Path(7)
	p2, err := Power(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, p2)
	// Brute force: adjacency iff BFS distance <= 2.
	for u := 0; u < g.N(); u++ {
		dist := BFSDistances(g, u)
		for v := 0; v < g.N(); v++ {
			want := u != v && dist[v] >= 1 && dist[v] <= 2
			if p2.HasEdge(u, v) != want {
				t.Fatalf("power adjacency wrong for %d,%d", u, v)
			}
		}
	}
	if _, err := Power(g, 0); err == nil {
		t.Error("Power(k=0) not rejected")
	}
	// Power of a cycle.
	c, _ := Cycle(9)
	p3, err := Power(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 9; u++ {
		if p3.Degree(u) != 6 {
			t.Fatalf("cycle^3 degree %d at %d, want 6", p3.Degree(u), u)
		}
	}
}

func TestProductDegPlusOne(t *testing.T) {
	g := Path(4)
	pg, copies, err := ProductDegPlusOne(g)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, pg)
	// Size: sum of deg+1 = 2E + N.
	want := 2*g.NumEdges() + g.N()
	if pg.N() != want {
		t.Fatalf("product has %d nodes, want %d", pg.N(), want)
	}
	// Check adjacency semantics by brute force.
	for a := 0; a < pg.N(); a++ {
		for b := a + 1; b < pg.N(); b++ {
			ca, cb := copies[a], copies[b]
			var wantAdj bool
			switch {
			case ca.V == cb.V:
				wantAdj = true // same clique
			case g.HasEdge(int(ca.V), int(cb.V)):
				limit := int32(min(g.Degree(int(ca.V)), g.Degree(int(cb.V))) + 1)
				wantAdj = ca.I == cb.I && ca.I <= limit
			}
			if pg.HasEdge(a, b) != wantAdj {
				t.Fatalf("product adjacency wrong for %+v,%+v", ca, cb)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid(4, 4)
	keep := make([]bool, g.N())
	for u := 0; u < g.N(); u += 2 {
		keep[u] = true
	}
	sg, orig, err := InducedSubgraph(g, keep)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, sg)
	if len(orig) != sg.N() {
		t.Fatalf("orig mapping length %d != %d", len(orig), sg.N())
	}
	for i := 0; i < sg.N(); i++ {
		if sg.ID(i) != g.ID(int(orig[i])) {
			t.Fatal("identity not preserved")
		}
		for j := i + 1; j < sg.N(); j++ {
			if sg.HasEdge(i, j) != g.HasEdge(int(orig[i]), int(orig[j])) {
				t.Fatal("induced adjacency wrong")
			}
		}
	}
	if _, _, err := InducedSubgraph(g, make([]bool, 3)); err == nil {
		t.Error("mask length mismatch not rejected")
	}
}

func TestWithShuffledIDs(t *testing.T) {
	g := Grid(5, 5)
	h, err := WithShuffledIDs(g, 10_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkSimple(t, h)
	if h.MaxIDValue() <= int64(g.N()) {
		t.Log("shuffled ids happen to be small; acceptable but unlikely")
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != h.HasEdge(u, v) {
				t.Fatal("shuffling ids changed adjacency")
			}
		}
	}
	if _, err := WithShuffledIDs(g, 3, 1); err == nil {
		t.Error("maxID < n not rejected")
	}
}

func TestPackIDs(t *testing.T) {
	f := func(a, b uint32) bool {
		x := int64(a%(1<<31-1)) + 1
		y := int64(b%(1<<31-1)) + 1
		ga, gb := UnpackIDs(PackIDs(x, y))
		return ga == x && gb == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := Grid(3, 3)
	es := g.Edges()
	if len(es) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, want %d", len(es), g.NumEdges())
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Fatal("edge not canonical")
		}
		if i > 0 && !(es[i-1].U < e.U || (es[i-1].U == e.U && es[i-1].V < e.V)) {
			t.Fatal("edges not sorted")
		}
	}
}

// TestCSRDirectedEdgeNumbering pins the dense directed-edge numbering the
// simulation engine's flat message lanes rely on: AdjOffset tiles
// [0, 2|E|), and ReverseEdges(u)[k] is exactly the slot of the reverse edge.
func TestCSRDirectedEdgeNumbering(t *testing.T) {
	gnp, err := GNP(150, 0.05, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Graph{gnp, Star(30), Path(12), Complete(9), Empty(4)} {
		prev := 0
		for u := 0; u < g.N(); u++ {
			if got := g.AdjOffset(u); got != prev {
				t.Fatalf("AdjOffset(%d) = %d, want %d", u, got, prev)
			}
			prev += g.Degree(u)
			rev := g.ReverseEdges(u)
			if len(rev) != g.Degree(u) {
				t.Fatalf("ReverseEdges(%d) has %d entries for degree %d", u, len(rev), g.Degree(u))
			}
			for k := range rev {
				v := g.Neighbor(u, k)
				want := g.AdjOffset(v) + g.BackPort(u, k)
				if int(rev[k]) != want {
					t.Fatalf("ReverseEdges(%d)[%d] = %d, want %d", u, k, rev[k], want)
				}
			}
		}
		if prev != 2*g.NumEdges() {
			t.Fatalf("degree sum %d does not tile 2|E| = %d", prev, 2*g.NumEdges())
		}
	}
}

// TestPrecomputedLookups checks the Build-time caches against full scans.
func TestPrecomputedLookups(t *testing.T) {
	g, err := WithShuffledIDs(mustBuild(NewBuilder(64)), 1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wantMax int64
	for u := 0; u < g.N(); u++ {
		if id := g.ID(u); id > wantMax {
			wantMax = id
		}
	}
	if g.MaxIDValue() != wantMax {
		t.Fatalf("MaxIDValue = %d, want %d", g.MaxIDValue(), wantMax)
	}
	for u := 0; u < g.N(); u++ {
		if got := g.IndexOfID(g.ID(u)); got != u {
			t.Fatalf("IndexOfID(%d) = %d, want %d", g.ID(u), got, u)
		}
	}
	if g.IndexOfID(wantMax+1) != -1 {
		t.Fatalf("IndexOfID of absent identity should be -1")
	}
	if Empty(0).MaxIDValue() != 0 {
		t.Fatal("empty graph MaxIDValue should be 0")
	}
}

// TestBuilderDeduplicatesArcs checks that duplicate AddEdge calls (in either
// orientation) collapse to one edge in the CSR layout.
func TestBuilderDeduplicatesArcs(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
		b.AddEdge(1, 0)
	}
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees after dedup: %d, %d; want 1, 1", g.Degree(0), g.Degree(1))
	}
	checkSimple(t, g)
}
