package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"github.com/unilocal/unilocal/internal/mathutil"
)

// newRNG derives a deterministic PCG stream for a generator from a seed.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), mathutil.SplitMix64(uint64(seed))))
}

func mustBuild(b *Builder) *Graph {
	g, err := b.Build()
	if err != nil {
		// Generators only call mustBuild on internally consistent data; an
		// error here is a programming bug in this package, not user input.
		panic("graph: internal generator bug: " + err.Error())
	}
	return g
}

// Empty returns the edgeless graph on n nodes.
func Empty(n int) *Graph { return mustBuild(NewBuilder(n)) }

// Path returns the path on n nodes (0-1-2-...-n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return mustBuild(b)
}

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Build()
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return mustBuild(b)
}

// Star returns the star with centre 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return mustBuild(b)
}

// Grid returns the r x c grid graph.
func Grid(r, c int) *Graph {
	b := NewBuilder(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				b.AddEdge(at(i, j), at(i+1, j))
			}
			if j+1 < c {
				b.AddEdge(at(i, j), at(i, j+1))
			}
		}
	}
	return mustBuild(b)
}

// Torus returns the r x c torus (grid with wraparound); r, c >= 3.
func Torus(r, c int) (*Graph, error) {
	if r < 3 || c < 3 {
		return nil, fmt.Errorf("graph: torus needs r,c >= 3, got %dx%d", r, c)
	}
	b := NewBuilder(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			b.AddEdge(at(i, j), at((i+1)%r, j))
			b.AddEdge(at(i, j), at(i, (j+1)%c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*Graph, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [0,20]", dim)
	}
	n := 1 << uint(dim)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for k := 0; k < dim; k++ {
			v := u ^ (1 << uint(k))
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree on n nodes using heap
// indexing (node u has children 2u+1 and 2u+2).
func CompleteBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, (u-1)/2)
	}
	return mustBuild(b)
}

// RandomTree returns a uniformly random recursive tree on n nodes: node u
// attaches to a uniform node among 0..u-1.
func RandomTree(n int, seed int64) *Graph {
	rng := newRNG(seed)
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, rng.IntN(u))
	}
	return mustBuild(b)
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant leaves attached to every spine node.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for u := 0; u+1 < spine; u++ {
		b.AddEdge(u, u+1)
	}
	leaf := spine
	for u := 0; u < spine; u++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(u, leaf)
			leaf++
		}
	}
	return mustBuild(b)
}

// Lollipop returns a clique of size k with a pendant path of tail nodes.
func Lollipop(k, tail int) *Graph {
	b := NewBuilder(k + tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	prev := 0
	for t := 0; t < tail; t++ {
		b.AddEdge(prev, k+t)
		prev = k + t
	}
	return mustBuild(b)
}

// GNP returns an Erdős–Rényi random graph G(n, p) sampled with geometric
// skipping, so the cost is proportional to the number of edges rather than
// n^2.
func GNP(n int, p float64, seed int64) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: GNP probability %v out of [0,1]", p)
	}
	b := NewBuilder(n)
	if p > 0 {
		rng := newRNG(seed)
		// Iterate over the pairs (u,v), u<v, in lexicographic order, skipping
		// ahead by geometric jumps.
		u, v := 0, 0
		for u < n-1 {
			skip := 1
			if p < 1 {
				// Geometric(p) via inversion.
				skip = int(fastGeometric(rng, p))
			}
			v += skip
			for v >= n {
				u++
				if u >= n-1 {
					// Row n-1 and beyond contain no pairs (u < v <= n-1).
					u = n
					break
				}
				v = u + 1 + (v - n)
			}
			if u >= n {
				break
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// fastGeometric samples from Geometric(p) on {1,2,...}.
func fastGeometric(rng *rand.Rand, p float64) int64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := int64(math.Log(u)/math.Log(1-p)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes using the
// configuration model with edge-swap repair. It requires n*d even and d < n.
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: regular degree %d out of range for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	rng := newRNG(seed)
	stubs := make([]int32, 0, n*d)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, int32(u))
		}
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([]stubPair, 0, len(stubs)/2)
		for i := 0; i+1 < len(stubs); i += 2 {
			a, bb := stubs[i], stubs[i+1]
			if a > bb {
				a, bb = bb, a
			}
			pairs = append(pairs, stubPair{a, bb})
		}
		// Repair conflicts (self-loops and duplicates) by random swaps.
		if repairPairs(rng, pairs) {
			b := NewBuilder(n)
			for _, p := range pairs {
				b.AddEdge(int(p.a), int(p.b))
			}
			return b.Build()
		}
	}
	return nil, fmt.Errorf("graph: random regular generation failed for n=%d d=%d", n, d)
}

// stubPair is one edge of a configuration-model pairing.
type stubPair struct{ a, b int32 }

// repairPairs removes self-loops and duplicate edges from a random pairing by
// repeatedly swapping endpoints of conflicting pairs with random other pairs.
// It reports whether a simple pairing was reached.
func repairPairs(rng *rand.Rand, pairs []stubPair) bool {
	key := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	count := make(map[int64]int, len(pairs))
	bad := make([]int, 0)
	for i, p := range pairs {
		if p.a == p.b {
			bad = append(bad, i)
			continue
		}
		k := key(p.a, p.b)
		count[k]++
		if count[k] > 1 {
			bad = append(bad, i)
		}
	}
	for iter := 0; iter < 100*len(pairs)+1000 && len(bad) > 0; iter++ {
		i := bad[len(bad)-1]
		j := rng.IntN(len(pairs))
		if i == j {
			continue
		}
		pi, pj := pairs[i], pairs[j]
		// Remove current contributions.
		if pi.a != pi.b {
			count[key(pi.a, pi.b)]--
		}
		if pj.a != pj.b {
			count[key(pj.a, pj.b)]--
		}
		// Swap one endpoint.
		ni := stubPair{pi.a, pj.b}
		nj := stubPair{pj.a, pi.b}
		ok := ni.a != ni.b && nj.a != nj.b
		if ok {
			ki, kj := key(ni.a, ni.b), key(nj.a, nj.b)
			if count[ki] > 0 || count[kj] > 0 || ki == kj {
				ok = false
			}
		}
		if !ok {
			// Restore and retry with another partner.
			if pi.a != pi.b {
				count[key(pi.a, pi.b)]++
			}
			if pj.a != pj.b {
				count[key(pj.a, pj.b)]++
			}
			continue
		}
		pairs[i], pairs[j] = ni, nj
		count[key(ni.a, ni.b)]++
		count[key(nj.a, nj.b)]++
		bad = bad[:len(bad)-1]
		// j might have been in bad; rebuild lazily when exhausted.
		if len(bad) == 0 {
			bad = bad[:0]
			for idx, p := range pairs {
				if p.a == p.b {
					bad = append(bad, idx)
					continue
				}
				if count[key(p.a, p.b)] > 1 {
					bad = append(bad, idx)
				}
			}
		}
	}
	return len(bad) == 0
}

// ForestUnion returns the union of k uniformly random recursive forests on n
// nodes; its arboricity is at most k. Each forest is a random recursive tree
// over a random permutation of the nodes.
func ForestUnion(n, k int, seed int64) *Graph {
	rng := newRNG(seed)
	b := NewBuilder(n)
	perm := make([]int, n)
	for f := 0; f < k; f++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for u := 1; u < n; u++ {
			b.AddEdge(perm[u], perm[rng.IntN(u)])
		}
	}
	return mustBuild(b)
}

// DisjointUnion returns the disjoint union of the given graphs, re-assigning
// identities 1..N to keep them unique.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	for _, g := range gs {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < int(v) {
					b.AddEdge(off+u, off+int(v))
				}
			}
		}
		off += g.N()
	}
	return mustBuild(b)
}

// WithShuffledIDs returns a copy of g whose identities are distinct values
// drawn uniformly from [1, maxID]. It requires maxID in [N, MaxPackedID].
//
// With maxID == N the result is a uniform dense permutation of 1..N (every
// value collides until the rejection loop finds the remaining ones — the
// coupon-collector worst case, still O(n log n) expected draws). With maxID
// far above MaxID (the scenario layer's sparse-huge regime uses 2^40) the
// identities exceed what the pair-packing derived constructions can encode:
// LineGraph and ProductDegPlusOne reject such graphs, while Power and every
// direct simulation handle them unchanged.
func WithShuffledIDs(g *Graph, maxID int64, seed int64) (*Graph, error) {
	n := g.N()
	if maxID < int64(n) || maxID > MaxPackedID {
		return nil, fmt.Errorf("graph: maxID %d out of range [n=%d, %d]", maxID, n, MaxPackedID)
	}
	rng := newRNG(seed)
	used := make(map[int64]bool, n)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for {
			id := rng.Int64N(maxID) + 1
			if !used[id] {
				used[id] = true
				b.SetID(u, id)
				break
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < int(v) {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}

// WithClusteredIDs returns a copy of g whose identities are packed into
// `clusters` tight consecutive blocks spread uniformly across [1, maxID]: the
// adversarial regime of the scenario layer. Within a block identities differ
// by 1 (the worst case for identity-based symmetry breaking), while the
// blocks themselves sit in disjoint maxID/clusters-wide slots, so the
// identity range — the parameter m a uniform algorithm must discover — is as
// large as a sparse assignment's. Node-to-block assignment is a uniform
// permutation. clusters is clamped to N; each block holds ceil(N/clusters)
// identities, and maxID/clusters must leave room for one block per slot.
func WithClusteredIDs(g *Graph, clusters int, maxID int64, seed int64) (*Graph, error) {
	n := g.N()
	if clusters < 1 {
		return nil, fmt.Errorf("graph: clusters %d must be >= 1", clusters)
	}
	if clusters > n {
		clusters = n
	}
	if maxID < int64(n) || maxID > MaxPackedID {
		return nil, fmt.Errorf("graph: maxID %d out of range [n=%d, %d]", maxID, n, MaxPackedID)
	}
	width := int64((n + clusters - 1) / clusters)
	slot := maxID / int64(clusters)
	if slot < width {
		return nil, fmt.Errorf("graph: maxID %d leaves slots of %d ids for %d clusters of width %d",
			maxID, slot, clusters, width)
	}
	rng := newRNG(seed)
	bases := make([]int64, clusters)
	for c := range bases {
		lo := int64(c)*slot + 1
		bases[c] = lo + rng.Int64N(slot-width+1)
	}
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i, u := range perm {
		b.SetID(u, bases[i/int(width)]+int64(i)%width)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < int(v) {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}

// PreferentialAttachment returns a Barabási–Albert preferential-attachment
// graph: a clique on m+1 seed nodes, then each new node attaches to m
// distinct existing nodes chosen proportionally to their current degree
// (sampled as a uniform draw over edge endpoints). The result is connected
// with a power-law degree tail and degeneracy at most m. Requires 1 <= m < n.
//
// Generation is CSR-direct: the endpoint array the sampler needs anyway is
// the edge list, and it scatters straight into sorted CSR segments — no
// Builder arc accumulation, so peak memory is the output plus one cursor
// array, which is what makes the huge-ba scenario family feasible. The RNG
// stream and output graph are bit-identical to the historical Builder-based
// generator (guarded by TestPreferentialAttachmentMatchesLegacy).
func PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: attachment count %d out of range [1, n=%d)", m, n)
	}
	rng := newRNG(seed)
	m0 := m + 1
	// ends lists both endpoints of every edge so far; a uniform index into it
	// is a degree-proportional node draw. Pairs (2i, 2i+1) are the edges:
	// distinct by construction (the clique enumerates distinct pairs; a new
	// node's m targets are deduplicated and all predate it), self-loop free.
	ends := make([]int32, 0, m0*(m0-1)+2*(n-m0)*m)
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			ends = append(ends, int32(u), int32(v))
		}
	}
	targets := make([]int32, 0, m)
	for u := m0; u < n; u++ {
		targets = targets[:0]
		for len(targets) < m {
			t := ends[rng.IntN(len(ends))]
			dup := false
			for _, x := range targets {
				if x == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			ends = append(ends, int32(u), t)
		}
	}
	off, data := endsToCSR(n, ends)
	return newGeneratedCSR(n, off, data), nil
}

// endsToCSR counting-sorts an endpoint array (edge i = ends[2i], ends[2i+1];
// edges distinct, no self-loops) into a sorted symmetric CSR adjacency.
func endsToCSR(n int, ends []int32) (off, data []int32) {
	off = make([]int32, n+1)
	for _, e := range ends {
		off[e+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	data = make([]int32, len(ends))
	cursor := append([]int32(nil), off[:n]...)
	for i := 0; i+1 < len(ends); i += 2 {
		a, b := ends[i], ends[i+1]
		data[cursor[a]] = b
		cursor[a]++
		data[cursor[b]] = a
		cursor[b]++
	}
	for u := 0; u < n; u++ {
		slices.Sort(data[off[u]:off[u+1]])
	}
	return off, data
}

// RandomGeometric returns a random geometric (unit-disk) graph: n points
// sampled uniformly in the unit square (point u draws its x then its y
// coordinate, in node order), with an edge between every pair at Euclidean
// distance <= r. Cell binning keeps generation near-linear in the output
// size. Requires 0 < r <= 1.
//
// Generation is CSR-direct: one binning pass groups points into cells, a
// counting pass sizes every adjacency segment, and a second identical scan
// scatters neighbours straight into the output arrays — no Builder arc list,
// so peak memory is the coordinates plus the output itself, which is what
// makes the huge-geometric scenario family feasible. The RNG stream (and
// therefore the output graph) is bit-identical to the historical
// Builder-based generator (guarded by TestRandomGeometricMatchesLegacy).
func RandomGeometric(n int, r float64, seed int64) (*Graph, error) {
	if !(r > 0 && r <= 1) {
		return nil, fmt.Errorf("graph: geometric radius %v out of (0, 1]", r)
	}
	rng := newRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for u := 0; u < n; u++ {
		xs[u] = rng.Float64()
		ys[u] = rng.Float64()
	}
	// Cell side must be >= r for the 3x3 neighbourhood scan to be exhaustive;
	// fewer (larger) cells stay correct, so cap the grid at ~sqrt(n) a side —
	// a tiny radius must not allocate 1/r² buckets for n points.
	cells := int(1 / r)
	if maxCells := int(math.Sqrt(float64(n))) + 1; cells > maxCells {
		cells = maxCells
	}
	if cells < 1 {
		cells = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	// Counting-sort the points into cells (flat arrays, not per-cell slices).
	nc := cells * cells
	cellIdx := make([]int32, n)
	cellOff := make([]int32, nc+1)
	for u := 0; u < n; u++ {
		ci := int32(cellOf(ys[u])*cells + cellOf(xs[u]))
		cellIdx[u] = ci
		cellOff[ci+1]++
	}
	for c := 0; c < nc; c++ {
		cellOff[c+1] += cellOff[c]
	}
	cellNodes := make([]int32, n)
	cur := append([]int32(nil), cellOff[:nc]...)
	for u := 0; u < n; u++ {
		cellNodes[cur[cellIdx[u]]] = int32(u)
		cur[cellIdx[u]]++
	}
	// forPairs enumerates each qualifying pair (u, v), u < v, exactly once:
	// v is found in u's 3x3 cell neighbourhood, and the v > u guard both
	// halves the distance checks and deduplicates the symmetric visit.
	r2 := r * r
	forPairs := func(emit func(u int, v int32)) {
		for u := 0; u < n; u++ {
			cx, cy := int(cellIdx[u])%cells, int(cellIdx[u])/cells
			for dy := -1; dy <= 1; dy++ {
				ny := cy + dy
				if ny < 0 || ny >= cells {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					nx := cx + dx
					if nx < 0 || nx >= cells {
						continue
					}
					for _, v := range cellNodes[cellOff[ny*cells+nx]:cellOff[ny*cells+nx+1]] {
						if int(v) <= u {
							continue
						}
						ddx, ddy := xs[u]-xs[v], ys[u]-ys[v]
						if ddx*ddx+ddy*ddy <= r2 {
							emit(u, v)
						}
					}
				}
			}
		}
	}
	off := make([]int32, n+1)
	forPairs(func(u int, v int32) {
		off[u+1]++
		off[v+1]++
	})
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	data := make([]int32, off[n])
	cursor := append([]int32(nil), off[:n]...)
	forPairs(func(u int, v int32) {
		data[cursor[u]] = v
		cursor[u]++
		data[cursor[v]] = int32(u)
		cursor[v]++
	})
	for u := 0; u < n; u++ {
		slices.Sort(data[off[u]:off[u+1]])
	}
	return newGeneratedCSR(n, off, data), nil
}

// WattsStrogatz returns a Watts–Strogatz small-world graph: the ring lattice
// where each node connects to its k/2 nearest neighbours on each side, with
// every lattice edge independently rewired with probability beta to a
// uniform non-adjacent endpoint (keeping the originating lattice endpoint u
// of the arc (u, u+j) fixed, so the edge count stays exactly n*k/2 and every
// node keeps at least its k/2 originated edges). beta == 0 is the exact
// lattice; beta == 1
// approaches G(n, p) while keeping the minimum degree k/2. Requires k even,
// 2 <= k < n, and beta in [0, 1].
func WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("graph: lattice degree %d must be even and in [2, n=%d)", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: rewiring probability %v out of [0, 1]", beta)
	}
	rng := newRNG(seed)
	type arc struct{ u, v int32 }
	pair := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	edges := make([]arc, 0, n*k/2)
	adj := make(map[int64]bool, n*k/2)
	for j := 1; j <= k/2; j++ {
		for u := 0; u < n; u++ {
			v := (u + j) % n
			edges = append(edges, arc{int32(u), int32(v)})
			adj[pair(u, v)] = true
		}
	}
	if beta > 0 {
		for i := range edges {
			if rng.Float64() >= beta {
				continue
			}
			u, v := int(edges[i].u), int(edges[i].v)
			// A few rejection attempts; on very dense lattices a node can run
			// out of non-neighbours, in which case the edge stays.
			for attempt := 0; attempt < 64; attempt++ {
				w := rng.IntN(n)
				if w == u || adj[pair(u, w)] {
					continue
				}
				delete(adj, pair(u, v))
				adj[pair(u, w)] = true
				edges[i].v = int32(w)
				break
			}
		}
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e.u), int(e.v))
	}
	return b.Build()
}
