package graph

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/unilocal/unilocal/internal/mathutil"
)

// newRNG derives a deterministic PCG stream for a generator from a seed.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), mathutil.SplitMix64(uint64(seed))))
}

func mustBuild(b *Builder) *Graph {
	g, err := b.Build()
	if err != nil {
		// Generators only call mustBuild on internally consistent data; an
		// error here is a programming bug in this package, not user input.
		panic("graph: internal generator bug: " + err.Error())
	}
	return g
}

// Empty returns the edgeless graph on n nodes.
func Empty(n int) *Graph { return mustBuild(NewBuilder(n)) }

// Path returns the path on n nodes (0-1-2-...-n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return mustBuild(b)
}

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Build()
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return mustBuild(b)
}

// Star returns the star with centre 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return mustBuild(b)
}

// Grid returns the r x c grid graph.
func Grid(r, c int) *Graph {
	b := NewBuilder(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				b.AddEdge(at(i, j), at(i+1, j))
			}
			if j+1 < c {
				b.AddEdge(at(i, j), at(i, j+1))
			}
		}
	}
	return mustBuild(b)
}

// Torus returns the r x c torus (grid with wraparound); r, c >= 3.
func Torus(r, c int) (*Graph, error) {
	if r < 3 || c < 3 {
		return nil, fmt.Errorf("graph: torus needs r,c >= 3, got %dx%d", r, c)
	}
	b := NewBuilder(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			b.AddEdge(at(i, j), at((i+1)%r, j))
			b.AddEdge(at(i, j), at(i, (j+1)%c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*Graph, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [0,20]", dim)
	}
	n := 1 << uint(dim)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for k := 0; k < dim; k++ {
			v := u ^ (1 << uint(k))
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree on n nodes using heap
// indexing (node u has children 2u+1 and 2u+2).
func CompleteBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, (u-1)/2)
	}
	return mustBuild(b)
}

// RandomTree returns a uniformly random recursive tree on n nodes: node u
// attaches to a uniform node among 0..u-1.
func RandomTree(n int, seed int64) *Graph {
	rng := newRNG(seed)
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, rng.IntN(u))
	}
	return mustBuild(b)
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant leaves attached to every spine node.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for u := 0; u+1 < spine; u++ {
		b.AddEdge(u, u+1)
	}
	leaf := spine
	for u := 0; u < spine; u++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(u, leaf)
			leaf++
		}
	}
	return mustBuild(b)
}

// Lollipop returns a clique of size k with a pendant path of tail nodes.
func Lollipop(k, tail int) *Graph {
	b := NewBuilder(k + tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	prev := 0
	for t := 0; t < tail; t++ {
		b.AddEdge(prev, k+t)
		prev = k + t
	}
	return mustBuild(b)
}

// GNP returns an Erdős–Rényi random graph G(n, p) sampled with geometric
// skipping, so the cost is proportional to the number of edges rather than
// n^2.
func GNP(n int, p float64, seed int64) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: GNP probability %v out of [0,1]", p)
	}
	b := NewBuilder(n)
	if p > 0 {
		rng := newRNG(seed)
		// Iterate over the pairs (u,v), u<v, in lexicographic order, skipping
		// ahead by geometric jumps.
		u, v := 0, 0
		for u < n-1 {
			skip := 1
			if p < 1 {
				// Geometric(p) via inversion.
				skip = int(fastGeometric(rng, p))
			}
			v += skip
			for v >= n {
				u++
				if u >= n-1 {
					// Row n-1 and beyond contain no pairs (u < v <= n-1).
					u = n
					break
				}
				v = u + 1 + (v - n)
			}
			if u >= n {
				break
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// fastGeometric samples from Geometric(p) on {1,2,...}.
func fastGeometric(rng *rand.Rand, p float64) int64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := int64(math.Log(u)/math.Log(1-p)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes using the
// configuration model with edge-swap repair. It requires n*d even and d < n.
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: regular degree %d out of range for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	rng := newRNG(seed)
	stubs := make([]int32, 0, n*d)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, int32(u))
		}
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([]stubPair, 0, len(stubs)/2)
		for i := 0; i+1 < len(stubs); i += 2 {
			a, bb := stubs[i], stubs[i+1]
			if a > bb {
				a, bb = bb, a
			}
			pairs = append(pairs, stubPair{a, bb})
		}
		// Repair conflicts (self-loops and duplicates) by random swaps.
		if repairPairs(rng, pairs) {
			b := NewBuilder(n)
			for _, p := range pairs {
				b.AddEdge(int(p.a), int(p.b))
			}
			return b.Build()
		}
	}
	return nil, fmt.Errorf("graph: random regular generation failed for n=%d d=%d", n, d)
}

// stubPair is one edge of a configuration-model pairing.
type stubPair struct{ a, b int32 }

// repairPairs removes self-loops and duplicate edges from a random pairing by
// repeatedly swapping endpoints of conflicting pairs with random other pairs.
// It reports whether a simple pairing was reached.
func repairPairs(rng *rand.Rand, pairs []stubPair) bool {
	key := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	count := make(map[int64]int, len(pairs))
	bad := make([]int, 0)
	for i, p := range pairs {
		if p.a == p.b {
			bad = append(bad, i)
			continue
		}
		k := key(p.a, p.b)
		count[k]++
		if count[k] > 1 {
			bad = append(bad, i)
		}
	}
	for iter := 0; iter < 100*len(pairs)+1000 && len(bad) > 0; iter++ {
		i := bad[len(bad)-1]
		j := rng.IntN(len(pairs))
		if i == j {
			continue
		}
		pi, pj := pairs[i], pairs[j]
		// Remove current contributions.
		if pi.a != pi.b {
			count[key(pi.a, pi.b)]--
		}
		if pj.a != pj.b {
			count[key(pj.a, pj.b)]--
		}
		// Swap one endpoint.
		ni := stubPair{pi.a, pj.b}
		nj := stubPair{pj.a, pi.b}
		ok := ni.a != ni.b && nj.a != nj.b
		if ok {
			ki, kj := key(ni.a, ni.b), key(nj.a, nj.b)
			if count[ki] > 0 || count[kj] > 0 || ki == kj {
				ok = false
			}
		}
		if !ok {
			// Restore and retry with another partner.
			if pi.a != pi.b {
				count[key(pi.a, pi.b)]++
			}
			if pj.a != pj.b {
				count[key(pj.a, pj.b)]++
			}
			continue
		}
		pairs[i], pairs[j] = ni, nj
		count[key(ni.a, ni.b)]++
		count[key(nj.a, nj.b)]++
		bad = bad[:len(bad)-1]
		// j might have been in bad; rebuild lazily when exhausted.
		if len(bad) == 0 {
			bad = bad[:0]
			for idx, p := range pairs {
				if p.a == p.b {
					bad = append(bad, idx)
					continue
				}
				if count[key(p.a, p.b)] > 1 {
					bad = append(bad, idx)
				}
			}
		}
	}
	return len(bad) == 0
}

// ForestUnion returns the union of k uniformly random recursive forests on n
// nodes; its arboricity is at most k. Each forest is a random recursive tree
// over a random permutation of the nodes.
func ForestUnion(n, k int, seed int64) *Graph {
	rng := newRNG(seed)
	b := NewBuilder(n)
	perm := make([]int, n)
	for f := 0; f < k; f++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for u := 1; u < n; u++ {
			b.AddEdge(perm[u], perm[rng.IntN(u)])
		}
	}
	return mustBuild(b)
}

// DisjointUnion returns the disjoint union of the given graphs, re-assigning
// identities 1..N to keep them unique.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	for _, g := range gs {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < int(v) {
					b.AddEdge(off+u, off+int(v))
				}
			}
		}
		off += g.N()
	}
	return mustBuild(b)
}

// WithShuffledIDs returns a copy of g whose identities are distinct values
// drawn uniformly from [1, maxID]. It requires maxID >= N.
func WithShuffledIDs(g *Graph, maxID int64, seed int64) (*Graph, error) {
	n := g.N()
	if maxID < int64(n) || maxID > MaxID {
		return nil, fmt.Errorf("graph: maxID %d out of range [n=%d, %d]", maxID, n, MaxID)
	}
	rng := newRNG(seed)
	used := make(map[int64]bool, n)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for {
			id := rng.Int64N(maxID) + 1
			if !used[id] {
				used[id] = true
				b.SetID(u, id)
				break
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < int(v) {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}
