//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map store images; when
// false the store falls back to reading images into heap buffers.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared, so every
// process mapping the same image shares one copy in the page cache.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
