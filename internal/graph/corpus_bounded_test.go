package graph

import (
	"fmt"
	"sync"
	"testing"
)

// TestBoundedCorpusEvictsLRU pins the eviction order: with limit 2, touching
// A keeps it warm while B — the least recently used — falls out when C
// arrives, and a re-request for B rebuilds (a miss on a structurally
// identical graph).
func TestBoundedCorpusEvictsLRU(t *testing.T) {
	c := NewBoundedCorpus(2)
	a := c.Path(10)
	b := c.Path(20)
	if got := c.Metrics(); got.Entries != 2 || got.Evictions != 0 {
		t.Fatalf("after two inserts: %+v", got)
	}
	if c.Path(10) != a { // touch A: B is now LRU
		t.Fatal("hit returned a different instance")
	}
	c.Path(30) // evicts B
	m := c.Metrics()
	if m.Entries != 2 || m.Evictions != 1 {
		t.Fatalf("after eviction: %+v", m)
	}
	if c.Path(10) != a {
		t.Fatal("recently-used entry was evicted")
	}
	b2 := c.Path(20) // rebuild: pointer differs, structure identical
	if b2 == b {
		t.Fatal("evicted entry returned the stale canonical instance")
	}
	if b2.N() != b.N() || b2.NumEdges() != b.NumEdges() {
		t.Fatalf("rebuilt graph differs: n=%d/%d edges=%d/%d", b2.N(), b.N(), b2.NumEdges(), b.NumEdges())
	}
}

// TestBoundedCorpusCascadesDerived checks that evicting a generated graph
// also drops the derived constructions keyed by its identity: their source
// pointer can never be requested again, so keeping them would leak.
func TestBoundedCorpusCascadesDerived(t *testing.T) {
	c := NewBoundedCorpus(3)
	src := c.Path(12)
	if _, err := c.PowerOf(src, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics(); got.Entries != 2 {
		t.Fatalf("after gen+derived: %+v", got)
	}
	// Two fresh inserts push src (and with it its power graph) out. The walk
	// starts at the LRU tail, which is src; its derived entry cascades even
	// though it was used more recently.
	c.Path(13)
	c.Path(14)
	m := c.Metrics()
	if m.Entries > 3 {
		t.Fatalf("limit exceeded: %+v", m)
	}
	if m.Evictions < 2 {
		t.Fatalf("expected src and its derived entry evicted together: %+v", m)
	}
	// A fresh request for the same family rebuilds a new canonical source; a
	// derived request against it builds fresh too (counts a miss, not a hit).
	before := c.Metrics()
	src2 := c.Path(12)
	if src2 == src {
		t.Fatal("evicted source still canonical")
	}
	if _, err := c.PowerOf(src2, 2); err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()
	if after.Misses != before.Misses+2 {
		t.Fatalf("rebuild should miss twice: before=%+v after=%+v", before, after)
	}
}

// TestBoundedCorpusCascadeSparesKeep pins the cascade guards: when inserting
// a derived entry evicts its own source graph, the cascade must not drop the
// entry being inserted — it has to survive to serve its build (and later
// hits through the same source pointer).
func TestBoundedCorpusCascadeSparesKeep(t *testing.T) {
	c := NewBoundedCorpus(1)
	src := c.Path(10)
	// Inserting the power entry pushes the corpus over the limit; the only
	// evictable entry is src itself, whose cascade targets exactly the entry
	// being inserted.
	p1, err := c.PowerOf(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Entries != 1 {
		t.Fatalf("after cascade-adjacent insert: %+v", m)
	}
	// The surviving entry must be the derived one: a repeat request through
	// the still-held source pointer is a hit on the same instance.
	p2, err := c.PowerOf(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("inserted derived entry was cascaded out with its source")
	}
	if after := c.Metrics(); after.Hits != m.Hits+1 {
		t.Fatalf("repeat derived request missed: before=%+v after=%+v", m, after)
	}
}

// TestBoundedCorpusUnboundedUnchanged pins that the default corpus never
// evicts, whatever the traffic.
func TestBoundedCorpusUnboundedUnchanged(t *testing.T) {
	c := NewCorpus()
	for n := 2; n < 40; n++ {
		c.Path(n)
	}
	m := c.Metrics()
	if m.Evictions != 0 || m.Entries != 38 || m.Limit != 0 {
		t.Fatalf("unbounded corpus evicted: %+v", m)
	}
}

// TestBoundedCorpusConcurrent hammers a small bound from many goroutines
// (run under -race in CI): whatever interleaving, every returned graph must
// be structurally correct and the entry count must respect the limit once
// the dust settles.
func TestBoundedCorpusConcurrent(t *testing.T) {
	const limit = 4
	c := NewBoundedCorpus(limit)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				n := 5 + (w+i)%10
				g := c.Path(n)
				if g.N() != n {
					errs <- fmt.Errorf("worker %d: Path(%d) has %d nodes", w, n, g.N())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Entries > limit {
		t.Fatalf("entries %d exceed limit %d after quiescence: %+v", m.Entries, limit, m)
	}
}
