// Package graph provides the static network topologies on which LOCAL-model
// algorithms run: an immutable adjacency representation with unique node
// identities, a builder, generators for the standard benchmark families, and
// derived constructions (line graphs, graph powers, the clique product of
// Section 5.1 of Korman–Sereni–Viennot, induced subgraphs).
//
// Nodes are indexed 0..N()-1; every node additionally carries a positive
// 64-bit identity, unique within the graph, which is what the distributed
// algorithms actually see. All methods on Graph are safe for concurrent use
// because a built Graph is immutable.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// MaxID is the largest identity a node of a base (non-derived) graph may
// carry. Base identities are kept below 2^31 so that derived graphs (line
// graphs, products) can pack a pair of identities into a single int64
// identity; the packed identities themselves may be as large as MaxPackedID.
const MaxID = int64(1)<<31 - 1

// MaxPackedID bounds the identities of derived graphs (PackIDs output).
const MaxPackedID = int64(1)<<62 - 1

// Graph is an immutable simple undirected graph with unique node identities.
// The zero value is an empty graph with no nodes.
type Graph struct {
	ids    []int64
	adj    [][]int32 // adj[u] lists neighbour indices of u in increasing order
	back   [][]int32 // back[u][k] = position of u in adj[v] for v = adj[u][k]
	maxDeg int
	edges  int
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.ids) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// ID returns the identity of node u.
func (g *Graph) ID(u int) int64 { return g.ids[u] }

// MaxIDValue returns the largest identity in the graph, the parameter m of
// the paper (0 for an empty graph).
func (g *Graph) MaxIDValue() int64 {
	var m int64
	for _, id := range g.ids {
		if id > m {
			m = id
		}
	}
	return m
}

// Neighbors returns the neighbour indices of u, sorted increasingly. The
// returned slice is shared with the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Neighbor returns the index of the k-th neighbour (port k) of u.
func (g *Graph) Neighbor(u, k int) int { return int(g.adj[u][k]) }

// BackPort returns the port under which u appears at its k-th neighbour:
// if v = Neighbor(u, k), then Neighbor(v, BackPort(u, k)) == u.
func (g *Graph) BackPort(u, k int) int { return int(g.back[u][k]) }

// NeighborIDs appends the identities of u's neighbours, in port order, to dst
// and returns the extended slice.
func (g *Graph) NeighborIDs(dst []int64, u int) []int64 {
	for _, v := range g.adj[u] {
		dst = append(dst, g.ids[v])
	}
	return dst
}

// HasEdge reports whether nodes u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return int(a[i]) >= v })
	return i < len(a) && int(a[i]) == v
}

// IndexOfID returns the node index carrying identity id, or -1.
func (g *Graph) IndexOfID(id int64) int {
	for u, x := range g.ids {
		if x == id {
			return u
		}
	}
	return -1
}

// Edge is an undirected edge given by its endpoint indices with U < V.
type Edge struct {
	U, V int32
}

// Edges returns the edges of g in lexicographic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				es = append(es, Edge{U: int32(u), V: v})
			}
		}
	}
	return es
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// By default node u receives identity u+1; SetID overrides this.
type Builder struct {
	ids []int64
	adj []map[int32]struct{}
	bad []badEdge
}

// NewBuilder returns a builder for a graph on n nodes and no edges.
func NewBuilder(n int) *Builder {
	b := &Builder{
		ids: make([]int64, n),
		adj: make([]map[int32]struct{}, n),
	}
	for u := 0; u < n; u++ {
		b.ids[u] = int64(u) + 1
	}
	return b
}

// SetID assigns identity id to node u.
func (b *Builder) SetID(u int, id int64) { b.ids[u] = id }

// AddEdge records the undirected edge {u, v}. Duplicate additions are
// ignored; self-loops and out-of-range endpoints surface as errors at Build.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= len(b.ids) || v >= len(b.ids) || u == v {
		// Record an impossible edge so Build reports the problem; storing it
		// under a sentinel keeps AddEdge signature chainable.
		if b.adj == nil {
			return
		}
		b.markBad(u, v)
		return
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[int32]struct{}, 4)
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int32]struct{}, 4)
	}
	b.adj[u][int32(v)] = struct{}{}
	b.adj[v][int32(u)] = struct{}{}
}

// badEdges collects invalid AddEdge calls for error reporting.
type badEdge struct{ u, v int }

var errBadEdge = errors.New("graph: invalid edge")

func (b *Builder) markBad(u, v int) {
	b.bad = append(b.bad, badEdge{u, v})
}

// Build validates the accumulated data and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	if len(b.bad) > 0 {
		return nil, fmt.Errorf("%w: {%d,%d} (n=%d)", errBadEdge, b.bad[0].u, b.bad[0].v, len(b.ids))
	}
	n := len(b.ids)
	seen := make(map[int64]int, n)
	for u, id := range b.ids {
		if id <= 0 || id > MaxPackedID {
			return nil, fmt.Errorf("graph: node %d has out-of-range identity %d", u, id)
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("graph: nodes %d and %d share identity %d", prev, u, id)
		}
		seen[id] = u
	}
	g := &Graph{
		ids: append([]int64(nil), b.ids...),
		adj: make([][]int32, n),
	}
	for u := 0; u < n; u++ {
		nb := make([]int32, 0, len(b.adj[u]))
		for v := range b.adj[u] {
			nb = append(nb, v)
		}
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		g.adj[u] = nb
		if len(nb) > g.maxDeg {
			g.maxDeg = len(nb)
		}
		g.edges += len(nb)
	}
	g.edges /= 2
	g.back = backPorts(g.adj)
	return g, nil
}

// backPorts computes, for every directed port (u,k), the reverse port index.
func backPorts(adj [][]int32) [][]int32 {
	back := make([][]int32, len(adj))
	for u := range adj {
		back[u] = make([]int32, len(adj[u]))
	}
	// pos[v] tracks how far we have scanned adj[v]; since adjacency lists are
	// sorted, scanning nodes u in increasing order visits each directed edge
	// (v,u) in increasing u, so a single cursor per node suffices after a
	// direct search. Use binary search for simplicity and robustness.
	for u := range adj {
		for k, v := range adj[u] {
			a := adj[v]
			i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(u) })
			back[u][k] = int32(i)
		}
	}
	return back
}
