// Package graph provides the static network topologies on which LOCAL-model
// algorithms run: an immutable adjacency representation with unique node
// identities, a builder, generators for the standard benchmark families, and
// derived constructions (line graphs, graph powers, the clique product of
// Section 5.1 of Korman–Sereni–Viennot, induced subgraphs).
//
// Nodes are indexed 0..N()-1; every node additionally carries a positive
// 64-bit identity, unique within the graph, which is what the distributed
// algorithms actually see. All methods on Graph are safe for concurrent use
// because a built Graph is immutable.
//
// Internally a Graph is stored in compressed sparse row (CSR) form: one flat
// []int32 of neighbour indices plus an offset table, with parallel flat
// arrays for the reverse-port and reverse-edge tables. Every directed edge
// (u, port k) therefore has a dense index AdjOffset(u)+k in [0, 2|E|), which
// the simulation engine uses to address flat per-port message lanes.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// MaxID is the largest identity a node of a base (non-derived) graph may
// carry. Base identities are kept below 2^31 so that derived graphs (line
// graphs, products) can pack a pair of identities into a single int64
// identity; the packed identities themselves may be as large as MaxPackedID.
const MaxID = int64(1)<<31 - 1

// MaxPackedID bounds the identities of derived graphs (PackIDs output).
const MaxPackedID = int64(1)<<62 - 1

// Graph is an immutable simple undirected graph with unique node identities.
// The zero value is an empty graph with no nodes.
type Graph struct {
	ids []int64

	// CSR adjacency: the neighbours of u are data[off[u]:off[u+1]], sorted
	// increasingly. back and cross are indexed like data: for the directed
	// edge e = off[u]+k with v = data[e], back[e] is the port under which u
	// appears at v, and cross[e] = off[v] + back[e] is the dense index of the
	// reverse directed edge (v -> u).
	off   []int32
	data  []int32
	back  []int32
	cross []int32

	maxDeg int
	edges  int
	maxID  int64

	// idIdx maps identity -> node index. Graphs built through the Builder (or
	// newFromSortedCSR) populate it eagerly, because identity validation needs
	// the table anyway; graphs loaded from a store image (whose identities
	// were validated when the image was written) build it lazily on the first
	// IndexOfID call via idOnce, so an out-of-core graph does not pay an O(n)
	// heap map it may never use.
	idIdx  map[int64]int32
	idOnce sync.Once

	// mapped is non-nil when the CSR arrays are zero-copy views into an
	// mmap'ed store image rather than Go heap slices; it retains the mapping
	// (unmapped by a finalizer when the Graph becomes unreachable) and makes
	// HeapBytes report only the resident footprint.
	mapped *mapping
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.ids) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// ID returns the identity of node u.
func (g *Graph) ID(u int) int64 { return g.ids[u] }

// MaxIDValue returns the largest identity in the graph, the parameter m of
// the paper (0 for an empty graph). It is precomputed at Build.
func (g *Graph) MaxIDValue() int64 { return g.maxID }

// Neighbors returns the neighbour indices of u, sorted increasingly. The
// returned slice is shared with the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(u int) []int32 { return g.data[g.off[u]:g.off[u+1]] }

// Neighbor returns the index of the k-th neighbour (port k) of u.
func (g *Graph) Neighbor(u, k int) int { return int(g.data[int(g.off[u])+k]) }

// BackPort returns the port under which u appears at its k-th neighbour:
// if v = Neighbor(u, k), then Neighbor(v, BackPort(u, k)) == u.
func (g *Graph) BackPort(u, k int) int { return int(g.back[int(g.off[u])+k]) }

// AdjOffset returns the dense index of u's port 0 in the directed-edge
// numbering: port k of u is directed edge AdjOffset(u)+k, and the indices of
// all nodes together tile [0, 2*NumEdges()).
func (g *Graph) AdjOffset(u int) int { return int(g.off[u]) }

// ReverseEdges returns, for each port k of u, the dense directed-edge index
// of the reverse edge: with v = Neighbor(u, k), ReverseEdges(u)[k] ==
// AdjOffset(v) + BackPort(u, k). The slice is shared with the graph's
// internal storage and must not be modified.
func (g *Graph) ReverseEdges(u int) []int32 { return g.cross[g.off[u]:g.off[u+1]] }

// NeighborIDs appends the identities of u's neighbours, in port order, to dst
// and returns the extended slice.
func (g *Graph) NeighborIDs(dst []int64, u int) []int64 {
	for _, v := range g.Neighbors(u) {
		dst = append(dst, g.ids[v])
	}
	return dst
}

// HasEdge reports whether nodes u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return int(a[i]) >= v })
	return i < len(a) && int(a[i]) == v
}

// IndexOfID returns the node index carrying identity id, or -1. The lookup
// table is precomputed at Build for generator-built graphs and built lazily
// (once, safe for concurrent use) for graphs loaded from a store image.
func (g *Graph) IndexOfID(id int64) int {
	g.idOnce.Do(g.ensureIDIndex)
	if u, ok := g.idIdx[id]; ok {
		return int(u)
	}
	return -1
}

// ensureIDIndex builds the identity lookup table when construction skipped
// it (store-loaded graphs). Identities in a store image were validated when
// the image was written, so no duplicate/range checking is repeated here.
func (g *Graph) ensureIDIndex() {
	if g.idIdx != nil {
		return
	}
	idx := make(map[int64]int32, len(g.ids))
	for u, id := range g.ids {
		idx[id] = int32(u)
	}
	g.idIdx = idx
}

// CSRBytes returns the raw size of the graph's flat arrays (identities plus
// the four CSR tables) — the bytes a store image's payload occupies, and the
// heap cost of holding the graph in memory without mmap.
func (g *Graph) CSRBytes() int64 {
	return 8*int64(len(g.ids)) +
		4*(int64(len(g.off))+int64(len(g.data))+int64(len(g.back))+int64(len(g.cross)))
}

// HeapBytes estimates the graph's resident Go-heap footprint, the quantity a
// byte-bounded Corpus budgets. A heap-built graph costs its CSR arrays plus
// the identity index; an mmap-backed graph costs almost nothing on the heap —
// its arrays are views into the page cache, reclaimable by the OS — which is
// exactly what lets a bounded corpus hold out-of-core graphs far larger than
// its budget. (A lazily built identity index on a mapped graph is not
// re-accounted; callers that need IndexOfID on huge graphs pay for it
// knowingly.)
func (g *Graph) HeapBytes() int64 {
	if g.mapped != nil {
		return 512 // struct header, offsets into the mapping
	}
	b := g.CSRBytes()
	if g.idIdx != nil {
		// ~24 bytes per map entry (key, value, bucket overhead).
		b += 24 * int64(len(g.idIdx))
	}
	return b
}

// Edge is an undirected edge given by its endpoint indices with U < V.
type Edge struct {
	U, V int32
}

// Edges returns the edges of g in lexicographic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				es = append(es, Edge{U: int32(u), V: v})
			}
		}
	}
	return es
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// By default node u receives identity u+1; SetID overrides this.
type Builder struct {
	ids []int64
	// arcs holds both directions of every AddEdge call, unsorted and possibly
	// duplicated; Build sorts, deduplicates and flattens them into CSR form.
	// Accumulating flat arcs instead of per-node sets keeps AddEdge
	// allocation-free on average and Build O(m log Δ).
	arcSrc []int32
	arcDst []int32
	bad    []badEdge
}

// NewBuilder returns a builder for a graph on n nodes and no edges.
func NewBuilder(n int) *Builder {
	b := &Builder{ids: make([]int64, n)}
	for u := 0; u < n; u++ {
		b.ids[u] = int64(u) + 1
	}
	return b
}

// SetID assigns identity id to node u.
func (b *Builder) SetID(u int, id int64) { b.ids[u] = id }

// AddEdge records the undirected edge {u, v}. Duplicate additions are
// ignored; self-loops and out-of-range endpoints surface as errors at Build.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= len(b.ids) || v >= len(b.ids) || u == v {
		b.markBad(u, v)
		return
	}
	b.arcSrc = append(b.arcSrc, int32(u), int32(v))
	b.arcDst = append(b.arcDst, int32(v), int32(u))
}

// badEdges collects invalid AddEdge calls for error reporting.
type badEdge struct{ u, v int }

var errBadEdge = errors.New("graph: invalid edge")

func (b *Builder) markBad(u, v int) {
	b.bad = append(b.bad, badEdge{u, v})
}

// makeIDIndex validates a node-identity slice and returns the id→index
// lookup table and the maximum identity.
func makeIDIndex(ids []int64) (map[int64]int32, int64, error) {
	idIdx := make(map[int64]int32, len(ids))
	var maxID int64
	for u, id := range ids {
		if id <= 0 || id > MaxPackedID {
			return nil, 0, fmt.Errorf("graph: node %d has out-of-range identity %d", u, id)
		}
		if prev, dup := idIdx[id]; dup {
			return nil, 0, fmt.Errorf("graph: nodes %d and %d share identity %d", prev, u, id)
		}
		idIdx[id] = int32(u)
		if id > maxID {
			maxID = id
		}
	}
	return idIdx, maxID, nil
}

// finishCSR derives everything a Graph precomputes from its sorted CSR
// adjacency (g.off, g.data): the reverse-port and reverse-edge tables, the
// maximum degree and the edge count.
func (g *Graph) finishCSR() {
	n := len(g.ids)
	w := int32(len(g.data))
	g.edges = int(w) / 2
	g.back = make([]int32, w)
	g.cross = make([]int32, w)
	for u := 0; u < n; u++ {
		if deg := int(g.off[u+1] - g.off[u]); deg > g.maxDeg {
			g.maxDeg = deg
		}
		for e := g.off[u]; e < g.off[u+1]; e++ {
			v := g.data[e]
			seg := g.data[g.off[v]:g.off[v+1]]
			i, _ := slices.BinarySearch(seg, int32(u))
			g.back[e] = int32(i)
			g.cross[e] = g.off[v] + int32(i)
		}
	}
}

// newFromSortedCSR builds a Graph directly from ids and a sorted CSR
// adjacency, bypassing the Builder's arc accumulation, counting sort and
// deduplication. The caller guarantees structural validity: off has len(ids)+1
// monotone entries, each segment data[off[u]:off[u+1]] is strictly increasing,
// self-loop free and symmetric. The derived constructions (LineGraph, Power)
// produce exactly this shape, so they skip the Builder entirely; identity
// validation still runs.
func newFromSortedCSR(ids []int64, off, data []int32) (*Graph, error) {
	idIdx, maxID, err := makeIDIndex(ids)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		ids:   ids,
		off:   off,
		data:  data,
		maxID: maxID,
		idIdx: idIdx,
	}
	g.finishCSR()
	return g, nil
}

// newGeneratedCSR assembles a Graph from a sorted, deduplicated, symmetric
// CSR adjacency emitted directly by a streaming generator. Identities are
// the Builder default u+1, which needs no validation, so the identity index
// is left to build lazily — at 10^8 nodes the eager map would cost more
// than the coordinates the generator sampled.
func newGeneratedCSR(n int, off, data []int32) *Graph {
	ids := make([]int64, n)
	for u := range ids {
		ids[u] = int64(u) + 1
	}
	g := &Graph{ids: ids, off: off, data: data, maxID: int64(n)}
	g.finishCSR()
	return g
}

// newFromStoredCSR assembles a Graph from the fully precomputed arrays of a
// store image, possibly zero-copy views into an mmap'ed file (m non-nil). No
// validation and no finishCSR: the image was written from a validated Graph
// and its integrity was checksum-verified by the loader. The identity index
// is deliberately left nil — it builds lazily on first IndexOfID, so loading
// a 10^8-node image stays O(1) heap.
func newFromStoredCSR(ids []int64, off, data, back, cross []int32, maxDeg, edges int, maxID int64, m *mapping) *Graph {
	return &Graph{
		ids:    ids,
		off:    off,
		data:   data,
		back:   back,
		cross:  cross,
		maxDeg: maxDeg,
		edges:  edges,
		maxID:  maxID,
		mapped: m,
	}
}

// Build validates the accumulated data and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	if len(b.bad) > 0 {
		return nil, fmt.Errorf("%w: {%d,%d} (n=%d)", errBadEdge, b.bad[0].u, b.bad[0].v, len(b.ids))
	}
	n := len(b.ids)
	idIdx, maxID, err := makeIDIndex(b.ids)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		ids:   append([]int64(nil), b.ids...),
		maxID: maxID,
		idIdx: idIdx,
	}

	// Counting sort of the arcs by source into CSR segments.
	off := make([]int32, n+1)
	for _, u := range b.arcSrc {
		off[u+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	data := make([]int32, len(b.arcSrc))
	cursor := append([]int32(nil), off[:n]...)
	for i, u := range b.arcSrc {
		data[cursor[u]] = b.arcDst[i]
		cursor[u]++
	}

	// Sort each segment, then deduplicate in place (write index never passes
	// the read index, so the compaction can reuse data's storage).
	w := int32(0)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		seg := data[lo:hi]
		slices.Sort(seg)
		start := w
		for i := range seg {
			if i == 0 || seg[i] != seg[i-1] {
				data[w] = seg[i]
				w++
			}
		}
		off[u] = start
	}
	off[n] = w
	g.off = off
	g.data = data[:w:w]
	g.finishCSR()
	return g, nil
}
