//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can map store images; when
// false the store falls back to reading images into heap buffers.
const mmapSupported = false

var errNoMmap = errors.New("graph: store: mmap not supported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(b []byte) error {
	return errNoMmap
}
