package mathutil

import (
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1023, 10}, {1024, 10}, {1025, 11}, {1 << 20, 20},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.in); got != tt.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20}, {(1 << 20) + 5, 20},
	}
	for _, tt := range tests {
		if got := FloorLog2(tt.in); got != tt.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {65536, 3}, {65537, 4}, {1 << 62, 4},
	}
	for _, tt := range tests {
		if got := LogStar(tt.in); got != tt.want {
			t.Errorf("LogStar(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestCeilLog2Property(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x) + 1
		l := CeilLog2(n)
		// 2^l >= n and (l == 0 or 2^(l-1) < n).
		if SatPow2(l) < n {
			return false
		}
		if l > 0 && SatPow2(l-1) >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := SatAdd(MaxRoundBudget, 1); got != MaxRoundBudget {
		t.Errorf("SatAdd saturation = %d", got)
	}
	if got := SatMul(MaxRoundBudget/2, 4); got != MaxRoundBudget {
		t.Errorf("SatMul saturation = %d", got)
	}
	if got := SatMul(3, 7); got != 21 {
		t.Errorf("SatMul(3,7) = %d", got)
	}
	if got := SatAdd(3, 7); got != 10 {
		t.Errorf("SatAdd(3,7) = %d", got)
	}
	if got := SatPow2(3); got != 8 {
		t.Errorf("SatPow2(3) = %d", got)
	}
	if got := SatPow2(63); got != MaxRoundBudget {
		t.Errorf("SatPow2(63) = %d", got)
	}
	if got := SatPow(3, 4); got != 81 {
		t.Errorf("SatPow(3,4) = %d", got)
	}
	if got := SatPow(2, 100); got != MaxRoundBudget {
		t.Errorf("SatPow(2,100) = %d", got)
	}
	if got := SatPow(10, 0); got != 1 {
		t.Errorf("SatPow(10,0) = %d", got)
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct {
		a, b, want int
	}{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {10, 5, 2}, {11, 5, 3},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true, 7919: true}
	for n := -5; n <= 100; n++ {
		want := primes[n]
		if n > 13 && n <= 100 {
			want = isPrimeSlow(n)
		}
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func isPrimeSlow(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d < n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestNextPrime(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{-10, 2}, {0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {7907, 7907}, {7908, 7919},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestNextPrimeProperty(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x)
		p := NextPrime(n)
		if p < n && n >= 2 {
			return false
		}
		if !IsPrime(p) {
			return false
		}
		// No prime strictly between n and p.
		for q := max(n, 2); q < p; q++ {
			if IsPrime(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := uint64(0); i < 1000; i++ {
		h := SplitMix64(i)
		if seen[h] {
			t.Fatalf("SplitMix64 collision at %d", i)
		}
		seen[h] = true
	}
}
