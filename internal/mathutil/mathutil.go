// Package mathutil provides small integer helpers shared by the LOCAL-model
// algorithms: iterated logarithms, saturating arithmetic and prime search.
//
// All functions are deterministic and allocation-free; several of them are
// used inside running-time bounds, where overflow must saturate rather than
// wrap (a bound that wraps around would silently truncate a transformer's
// round budget).
package mathutil

// MaxRoundBudget is the saturation point for round-budget arithmetic. It is
// far beyond any budget a simulation can execute, yet small enough that sums
// and products of saturated values cannot overflow int64.
const MaxRoundBudget = 1 << 40

// CeilLog2 returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	n := 0
	v := x - 1
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// FloorLog2 returns floor(log2(x)) for x >= 1, and 0 for x <= 1.
func FloorLog2(x int) int {
	if x <= 1 {
		return 0
	}
	n := -1
	for v := x; v > 0; v >>= 1 {
		n++
	}
	return n
}

// LogStar returns the iterated logarithm log*(x): the number of times log2
// must be applied to x before the result is at most 2. LogStar(x) is 0 for
// x <= 2.
func LogStar(x int) int {
	n := 0
	for x > 2 {
		x = CeilLog2(x)
		n++
	}
	return n
}

// SatAdd returns a+b, saturating at MaxRoundBudget. Both arguments must be
// non-negative.
func SatAdd(a, b int) int {
	if a >= MaxRoundBudget || b >= MaxRoundBudget || a+b >= MaxRoundBudget {
		return MaxRoundBudget
	}
	return a + b
}

// SatMul returns a*b, saturating at MaxRoundBudget. Both arguments must be
// non-negative.
func SatMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= MaxRoundBudget || b >= MaxRoundBudget || a > MaxRoundBudget/b {
		return MaxRoundBudget
	}
	return a * b
}

// SatPow2 returns 2^i, saturating at MaxRoundBudget; i must be non-negative.
func SatPow2(i int) int {
	if i >= 40 {
		return MaxRoundBudget
	}
	return 1 << uint(i)
}

// SatPow returns base^exp, saturating at MaxRoundBudget. Both arguments must
// be non-negative.
func SatPow(base, exp int) int {
	result := 1
	for ; exp > 0; exp-- {
		result = SatMul(result, base)
		if result >= MaxRoundBudget {
			return MaxRoundBudget
		}
	}
	return result
}

// CeilDiv returns ceil(a/b) for a >= 0, b >= 1.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// IsPrime reports whether n is prime, by trial division. Intended for the
// small primes (at most a few million) used in Linial-style color reduction.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n (and 2 for n < 2).
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// SplitMix64 is the splitmix64 mixing function; it is used to derive
// statistically independent RNG streams from (seed, node-ID) pairs so that
// simulations are reproducible regardless of scheduling.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
