package job

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// QuotaError is a refusal the client can retry after backing off: a drained
// token bucket or a full per-client queue. The HTTP layer maps it to 429
// with a Retry-After header.
type QuotaError struct {
	Reason     string
	RetryAfter int // seconds
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("job: %s (retry after %ds)", e.Reason, e.RetryAfter)
}

// quotas is the per-client token-bucket rate limiter for job submissions.
// Buckets refill at rate tokens/second up to burst; a submission costs one
// token. Coalesced duplicates are not charged — they commission no work —
// so only genuinely new executions drain a client's bucket.
type quotas struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int, now func() time.Time) *quotas {
	return &quotas{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow charges one token from client's bucket, or returns the QuotaError to
// answer with. A nil receiver (rate limiting disabled) allows everything.
func (q *quotas) allow(client string) error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, ok := q.buckets[client]
	if !ok {
		q.prune(now)
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens < 1 {
		wait := int(math.Ceil((1 - b.tokens) / q.rate))
		if wait < 1 {
			wait = 1
		}
		return &QuotaError{Reason: fmt.Sprintf("client %q over submission rate %.3g/s", client, q.rate), RetryAfter: wait}
	}
	b.tokens--
	return nil
}

// prune drops buckets that have refilled to burst — indistinguishable from
// absent — bounding the map against client-ID churn. Called with q.mu held,
// only on the new-client path, so steady-state submissions never pay for it.
func (q *quotas) prune(now time.Time) {
	if len(q.buckets) < 1024 {
		return
	}
	for c, b := range q.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*q.rate >= q.burst {
			delete(q.buckets, c)
		}
	}
}
