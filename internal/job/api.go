package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"

	"github.com/unilocal/unilocal/internal/scenario"
)

// DefaultMaxBodyBytes caps a submission body, matching the synchronous
// serving layer's bound.
const DefaultMaxBodyBytes = 1 << 20

// API is the HTTP surface over a Manager. Mount it wherever the process
// serves — cmd/localserved mounts it at /jobs — it routes:
//
//	POST   /jobs              submit (body: scenario spec; query: seed)
//	GET    /jobs              list all jobs + manager metrics
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/events  SSE progress stream
//	GET    /jobs/{id}/result  stored document (query: format=md|json)
//	DELETE /jobs/{id}         cancel
type API struct {
	m        *Manager
	maxBody  int64
	draining func() bool
	mux      *http.ServeMux
}

// NewAPI wraps a Manager. draining, when non-nil, additionally refuses
// submissions while the surrounding server drains (the manager has its own
// flag, but the HTTP layer should refuse before touching the spool).
func NewAPI(m *Manager, draining func() bool) *API {
	a := &API{m: m, maxBody: DefaultMaxBodyBytes, draining: draining}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", a.handleSubmit)
	mux.HandleFunc("GET /jobs", a.handleList)
	mux.HandleFunc("GET /jobs/{id}", a.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", a.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", a.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", a.handleCancel)
	a.mux = mux
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// clientOf derives the quota identity of a request: the X-Client header when
// present (trusted deployments put an authenticated principal there), else
// the peer host, so NATed clients share fate with their gateway rather than
// minting fresh identities per connection.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleSubmit is POST /jobs: body is one scenario.Spec (the same strict
// schema as POST /run), query parameter seed shifts the seed grid. A new
// job answers 202 with its status; a duplicate coalesces onto the existing
// job and answers 200 with that job's current status.
func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if (a.draining != nil && a.draining()) || a.m.Draining() {
		jobError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	seed := int64(1)
	if v := r.URL.Query().Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			jobError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		seed = n
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, a.maxBody+1))
	if err != nil {
		jobError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > a.maxBody {
		jobError(w, http.StatusRequestEntityTooLarge, "body over %d bytes", a.maxBody)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		jobError(w, http.StatusBadRequest, "bad scenario: %v", err)
		return
	}

	st, coalesced, err := a.m.Submit(spec, seed, clientOf(r))
	if err != nil {
		var qe *QuotaError
		switch {
		case errors.As(err, &qe):
			w.Header().Set("Retry-After", strconv.Itoa(qe.RetryAfter))
			jobError(w, http.StatusTooManyRequests, "%s", qe.Reason)
		case errors.Is(err, ErrDraining):
			jobError(w, http.StatusServiceUnavailable, "draining")
		default:
			jobError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, struct {
		Status
		Coalesced bool `json:"coalesced"`
	}{st, coalesced})
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.m.Status(r.PathValue("id"))
	if err != nil {
		jobError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.m.Cancel(r.PathValue("id"))
	if err != nil {
		jobError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *API) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs    []Status `json:"jobs"`
		Metrics Metrics  `json:"metrics"`
	}{a.m.List(), a.m.Snapshot()})
}

// handleResult is GET /jobs/{id}/result?format=md|json. A job that is not
// done answers 409 with its status document, so pollers distinguish "not
// yet" from "never submitted" without parsing error strings.
func (a *API) handleResult(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "md"
	}
	var ext, ct string
	switch format {
	case "md":
		ext, ct = ".md", "text/markdown; charset=utf-8"
	case "json":
		ext, ct = ".json", "application/json"
	default:
		jobError(w, http.StatusBadRequest, "bad format %q (md or json)", format)
		return
	}
	body, st, err := a.m.Result(r.PathValue("id"), ext)
	if errors.Is(err, ErrNotFound) {
		jobError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err != nil {
		jobError(w, http.StatusInternalServerError, "reading result: %v", err)
		return
	}
	if body == nil {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(body)
}

// handleEvents is GET /jobs/{id}/events: a Server-Sent Events stream of the
// job's progress. The hub's buffered window replays first (a subscriber that
// connects late still sees recent history), then live events follow until a
// terminal event — done, failed, canceled, or drained when the process shuts
// down with the job unfinished — ends the stream.
func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	h, err := a.m.Events(r.PathValue("id"))
	if err != nil {
		jobError(w, http.StatusNotFound, "%v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		jobError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := 0
	for {
		evs, next, done := h.nextEvents(r.Context(), cursor)
		cursor = next
		for i := range evs {
			data, err := json.Marshal(&evs[i])
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", evs[i].Seq, evs[i].Type, data)
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if done {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		jobError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func jobError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("localserved: jobs: "+format, args...), status)
}
