package job

// Crash-recovery and durability tests for the async job subsystem: journal
// torn-tail replay, resume from the last checkpointed shard boundary after a
// simulated SIGKILL with byte-identical recovered documents,
// duplicate-submission coalescing across restarts, cancellation, quotas,
// graceful drain with terminal drained events, and injected disk faults.
// All run under -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unilocal/unilocal/internal/fabric/faultinject"
	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
)

// testSpec expands to a 4-slot grid (4 seeds × 1 rep, no baseline): with
// ShardsPerJob 2 that is two checkpoints of two slots each.
const testSpec = `{
  "name": "job-luby",
  "graph": {"family": "cycle", "n": 64},
  "algorithm": {"name": "luby-mis"},
  "seeds": [1, 2, 3, 4]
}`

func parseSpec(t *testing.T, src string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parsing spec: %v", err)
	}
	return spec
}

// realExec returns a production executor: a serve.Server's shard execution
// path, exactly what cmd/localserved injects.
func realExec() ExecFunc {
	return serve.New(serve.Config{Parallel: 2}).ShardExecutor()
}

// fakeExec returns deterministic synthetic outcomes without running any
// simulation; calls counts shard executions when non-nil.
func fakeExec(calls *atomic.Int64) ExecFunc {
	return func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		if calls != nil {
			calls.Add(1)
		}
		plan, err := scenario.PlanOf(spec, seed-1)
		if err != nil {
			return scenario.GraphInfo{}, nil, err
		}
		var out []scenario.SlotOutcome
		for _, s := range shard.Slots(plan.Jobs()) {
			o := scenario.SlotOutcome{Slot: s, Rounds: s + 1, Messages: int64(10 * (s + 1))}
			if onSlot != nil {
				onSlot(o)
			}
			out = append(out, o)
		}
		return scenario.GraphInfo{N: 8, Edges: 8, MaxDeg: 2, MaxID: 8}, out, nil
	}
}

func newManager(t *testing.T, dir string, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:      dir,
		Exec:     fakeExec(nil),
		Terminal: serve.TerminalError,
		Workers:  1,
		Rate:     -1, // most tests are not about rate limiting
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func waitState(t *testing.T, m *Manager, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q): %+v", id, st.State, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestJournalTornTailReplay(t *testing.T) {
	recs := []*Record{
		{V: RecordVersion, Op: OpSubmit, ID: "a", Seed: 1, Spec: []byte(`{"x":1}`), Shards: 2, Client: "c"},
		{V: RecordVersion, Op: OpShard, ID: "a", Shard: &scenario.Shard{Index: 0, Count: 2}, Info: &scenario.GraphInfo{N: 4}, Slots: []scenario.SlotOutcome{{Slot: 0, Rounds: 3, Messages: 7}}},
		{V: RecordVersion, Op: OpDone, ID: "a"},
	}
	var raw []byte
	for _, r := range recs {
		line, err := encodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, line...)
	}

	full, valid, err := parseJournal(raw)
	if err != nil || len(full) != 3 || valid != int64(len(raw)) {
		t.Fatalf("clean journal: %d recs, valid=%d, err=%v", len(full), valid, err)
	}

	// A torn tail — the final record cut anywhere — drops exactly that
	// record and reports the clean prefix length.
	lastStart := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	for cut := lastStart + 1; cut < len(raw); cut++ {
		got, valid, err := parseJournal(raw[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(got) != 2 || valid != int64(lastStart) {
			t.Fatalf("cut at %d: %d recs, valid=%d (want 2 recs, valid=%d)", cut, len(got), valid, lastStart)
		}
	}

	// A complete final line whose middle is damaged also drops (its newline
	// landed but its bytes did not all make it).
	damaged := append([]byte(nil), raw...)
	damaged[lastStart+12] ^= 0xff
	got, valid, err := parseJournal(damaged)
	if err != nil || len(got) != 2 || valid != int64(lastStart) {
		t.Fatalf("damaged tail: %d recs, valid=%d, err=%v", len(got), valid, err)
	}

	// Mid-file damage is corruption, not a torn tail.
	damaged = append([]byte(nil), raw...)
	damaged[5] ^= 0xff
	if _, _, err := parseJournal(damaged); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
}

func TestSpoolTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, recs, err := OpenSpool(dir, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh spool replayed %d records", len(recs))
	}
	r1 := &Record{V: RecordVersion, Op: OpSubmit, ID: "a", Seed: 1, Spec: []byte(`{}`), Shards: 1}
	r2 := &Record{V: RecordVersion, Op: OpDone, ID: "a"}
	if err := s.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: raw garbage without a newline at the tail.
	if _, err := s.f.WriteString(`deadbeef {"v":1,"op":"fa`); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, recs, err := OpenSpool(dir, Hooks{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if len(recs) != 2 || recs[0].Op != OpSubmit || recs[1].Op != OpDone {
		t.Fatalf("replay after torn tail: %+v", recs)
	}
	// The tail was truncated; the journal must accept appends again.
	if err := s2.Append(&Record{V: RecordVersion, Op: OpCancel, ID: "a"}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResumeByteIdentical is the tentpole's acceptance test: kill the
// process (simulated) after the first shard checkpoint, restart on the same
// spool, and require (a) only the remaining shards re-execute and (b) the
// recovered markdown and JSON documents are byte-identical to an
// uninterrupted run's.
func TestCrashResumeByteIdentical(t *testing.T) {
	spec := parseSpec(t, testSpec)

	// Uninterrupted baseline.
	m1 := newManager(t, t.TempDir(), func(c *Config) { c.Exec = realExec(); c.ShardsPerJob = 2 })
	st, coalesced, err := m1.Submit(spec, 1, "t")
	if err != nil || coalesced {
		t.Fatalf("Submit: %+v, %v, %v", st, coalesced, err)
	}
	waitState(t, m1, st.ID, StateDone)
	wantMD, _, err := m1.Result(st.ID, ".md")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _, err := m1.Result(st.ID, ".json")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m1)
	if !strings.Contains(string(wantMD), "### job-luby") {
		t.Fatalf("baseline markdown suspect:\n%s", wantMD)
	}

	// Crash after the first of two checkpoints.
	dir := t.TempDir()
	crashed := make(chan struct{})
	m2 := newManager(t, dir, func(c *Config) {
		c.Exec = realExec()
		c.ShardsPerJob = 2
		c.CrashAfterShards = 1
		c.Crash = func() { close(crashed) }
	})
	st2, _, err := m2.Submit(spec, 1, "t")
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("same (spec, seed) hashed to different IDs: %s vs %s", st2.ID, st.ID)
	}
	select {
	case <-crashed:
	case <-time.After(15 * time.Second):
		t.Fatal("crash hook never fired")
	}
	// The dead manager journals nothing more; a duplicate of the kill test's
	// invariant: its in-memory state is irrelevant from here.

	// Restart on the same spool with an execution counter.
	var calls atomic.Int64
	base := realExec()
	countingExec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		calls.Add(1)
		return base(ctx, spec, seed, shard, onSlot)
	}
	m3 := newManager(t, dir, func(c *Config) { c.Exec = countingExec; c.ShardsPerJob = 2 })
	defer drain(t, m3)
	fin := waitState(t, m3, st.ID, StateDone)
	if fin.ShardsDone != 2 || fin.SlotsDone != 4 {
		t.Fatalf("recovered status: %+v", fin)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("resume re-executed %d shards, want exactly the 1 lost one", n)
	}
	if m3.Snapshot().Resumed != 1 {
		t.Fatalf("resumed metric: %+v", m3.Snapshot())
	}

	gotMD, _, err := m3.Result(st.ID, ".md")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _, err := m3.Result(st.ID, ".json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMD, wantMD) {
		t.Fatalf("recovered markdown differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", gotMD, wantMD)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recovered JSON differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", gotJSON, wantJSON)
	}
}

// TestCoalesceAcrossRestart: a duplicate submitted to a fresh process over
// the same spool answers from the stored result without re-executing.
func TestCoalesceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := parseSpec(t, testSpec)

	m1 := newManager(t, dir, nil)
	st, _, err := m1.Submit(spec, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, StateDone)
	drain(t, m1)

	var calls atomic.Int64
	m2 := newManager(t, dir, func(c *Config) { c.Exec = fakeExec(&calls) })
	defer drain(t, m2)
	st2, coalesced, err := m2.Submit(spec, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !coalesced || st2.State != StateDone || st2.ID != st.ID {
		t.Fatalf("restart duplicate: coalesced=%v %+v", coalesced, st2)
	}
	if calls.Load() != 0 {
		t.Fatalf("duplicate re-executed %d shards", calls.Load())
	}
	if body, _, err := m2.Result(st.ID, ".md"); err != nil || len(body) == 0 {
		t.Fatalf("stored result unreadable after restart: %v", err)
	}
	// A different seed is different work, not a duplicate.
	st3, coalesced, err := m2.Submit(spec, 2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if coalesced || st3.ID == st.ID {
		t.Fatalf("different seed coalesced: %+v", st3)
	}
}

func TestCoalesceLive(t *testing.T) {
	spec := parseSpec(t, testSpec)
	release := make(chan struct{})
	var calls atomic.Int64
	slow := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return scenario.GraphInfo{}, nil, ctx.Err()
		}
		return fakeExec(&calls)(ctx, spec, seed, shard, onSlot)
	}
	m := newManager(t, t.TempDir(), func(c *Config) { c.Exec = slow; c.ShardsPerJob = 1 })
	defer drain(t, m)
	st1, c1, err := m.Submit(spec, 1, "a")
	if err != nil || c1 {
		t.Fatalf("first submit: %v coalesced=%v", err, c1)
	}
	st2, c2, err := m.Submit(spec, 1, "b")
	if err != nil || !c2 || st2.ID != st1.ID {
		t.Fatalf("live duplicate: %v coalesced=%v %+v", err, c2, st2)
	}
	close(release)
	waitState(t, m, st1.ID, StateDone)
	if calls.Load() != 1 {
		t.Fatalf("%d executions for 2 submissions of one job", calls.Load())
	}
	if m.Snapshot().Coalesced != 1 {
		t.Fatalf("coalesced metric: %+v", m.Snapshot())
	}
}

func TestCancelAndResubmit(t *testing.T) {
	spec := parseSpec(t, testSpec)
	var blocked atomic.Bool
	blocked.Store(true)
	started := make(chan struct{}, 8)
	exec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		if blocked.Load() {
			started <- struct{}{}
			<-ctx.Done()
			return scenario.GraphInfo{}, nil, fmt.Errorf("shard %s: %w", shard, ctx.Err())
		}
		return fakeExec(nil)(ctx, spec, seed, shard, onSlot)
	}
	m := newManager(t, t.TempDir(), func(c *Config) { c.Exec = exec; c.ShardsPerJob = 2 })
	defer drain(t, m)

	st, _, err := m.Submit(spec, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	got, err := m.Cancel(st.ID)
	if err != nil || got.State != StateCanceled {
		t.Fatalf("Cancel: %+v, %v", got, err)
	}
	// Idempotent.
	if again, err := m.Cancel(st.ID); err != nil || again.State != StateCanceled {
		t.Fatalf("second Cancel: %+v, %v", again, err)
	}
	// Result refuses with status, not bytes.
	if body, rst, err := m.Result(st.ID, ".md"); err != nil || body != nil || rst.State != StateCanceled {
		t.Fatalf("Result of canceled job: body=%v st=%+v err=%v", body, rst, err)
	}

	// Resubmission requeues (coalesced=false: it is new work now).
	blocked.Store(false)
	st2, coalesced, err := m.Submit(spec, 1, "a")
	if err != nil || coalesced || st2.ID != st.ID {
		t.Fatalf("resubmit after cancel: %+v coalesced=%v err=%v", st2, coalesced, err)
	}
	waitState(t, m, st.ID, StateDone)
}

func TestQuotaMaxPerClient(t *testing.T) {
	specA := parseSpec(t, testSpec)
	specB := parseSpec(t, strings.Replace(testSpec, "job-luby", "job-luby-b", 1))
	specC := parseSpec(t, strings.Replace(testSpec, "job-luby", "job-luby-c", 1))
	release := make(chan struct{})
	exec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return scenario.GraphInfo{}, nil, ctx.Err()
		}
		return fakeExec(nil)(ctx, spec, seed, shard, onSlot)
	}
	m := newManager(t, t.TempDir(), func(c *Config) { c.Exec = exec; c.MaxPerClient = 1 })
	defer func() { close(release); drain(t, m) }()

	if _, _, err := m.Submit(specA, 1, "alice"); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Submit(specB, 1, "alice")
	var qe *QuotaError
	if !asQuota(err, &qe) || qe.RetryAfter < 1 {
		t.Fatalf("over-quota submit: %v", err)
	}
	// Another client is unaffected.
	if _, _, err := m.Submit(specC, 1, "bob"); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newQuotas(1, 2, func() time.Time { return now })
	if err := q.allow("c"); err != nil {
		t.Fatal(err)
	}
	if err := q.allow("c"); err != nil {
		t.Fatal(err)
	}
	err := q.allow("c")
	var qe *QuotaError
	if !asQuota(err, &qe) || qe.RetryAfter < 1 {
		t.Fatalf("drained bucket allowed: %v", err)
	}
	// Refill at 1 token/s.
	now = now.Add(1500 * time.Millisecond)
	if err := q.allow("c"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// Other clients have their own buckets.
	if err := q.allow("d"); err != nil {
		t.Fatalf("fresh client: %v", err)
	}
}

func asQuota(err error, qe **QuotaError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*QuotaError)
	if ok {
		*qe = e
	}
	return ok
}

// TestDrainCheckpointsAndDrainedEvent: drain stops a running job at its next
// shard boundary, flushes a drained event to its open stream, and the next
// process resumes from the checkpoint.
func TestDrainCheckpointsAndDrainedEvent(t *testing.T) {
	dir := t.TempDir()
	spec := parseSpec(t, testSpec)
	gate := make(chan struct{}, 16)
	exec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		select {
		case <-gate: // one token per shard execution
		case <-ctx.Done():
			return scenario.GraphInfo{}, nil, ctx.Err()
		}
		return fakeExec(nil)(ctx, spec, seed, shard, onSlot)
	}
	m := newManager(t, dir, func(c *Config) { c.Exec = exec; c.ShardsPerJob = 4 })
	st, _, err := m.Submit(spec, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Events(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // let exactly one shard finish

	// Wait for the first checkpoint, then drain while the worker blocks on
	// the gate for shard 2.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, _ := m.Status(st.ID)
		if s.ShardsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first checkpoint never landed: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- m.Drain(ctx)
	}()
	for !m.Draining() {
		time.Sleep(time.Millisecond)
	}
	gate <- struct{}{} // let the parked shard reach its boundary; drain stops there

	// The open stream must end with a drained event.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last Event
	cursor := 0
	for {
		evs, next, done := h.nextEvents(ctx, cursor)
		cursor = next
		for _, ev := range evs {
			last = ev
		}
		if done {
			break
		}
	}
	if last.Type != EventDrained {
		t.Fatalf("stream ended with %q, want drained", last.Type)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	close(gate)

	// Resume: the next process finishes only the remaining shards.
	var calls atomic.Int64
	m2 := newManager(t, dir, func(c *Config) { c.Exec = fakeExec(&calls); c.ShardsPerJob = 4 })
	defer drain(t, m2)
	fin := waitState(t, m2, st.ID, StateDone)
	if fin.ShardsDone != 4 {
		t.Fatalf("resumed status: %+v", fin)
	}
	if calls.Load() >= 4 {
		t.Fatalf("resume re-executed all %d shards; checkpoints ignored", calls.Load())
	}
}

// TestDiskFaultTornAppend: a short write on the journal append surfaces an
// error, and the torn record is dropped on replay — the submission it
// belonged to never happened.
func TestDiskFaultTornAppend(t *testing.T) {
	dir := t.TempDir()
	disk := &faultinject.Disk{Seed: 7, Rules: []faultinject.DiskRule{
		{Match: faultinject.OpAppend, Every: 3, ShortWrite: true},
	}}
	s, _, err := OpenSpool(dir, Hooks{Append: disk.Append, Sync: disk.Sync, WriteFile: disk.WriteFile})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(id string) *Record {
		return &Record{V: RecordVersion, Op: OpSubmit, ID: id, Seed: 1, Spec: []byte(`{}`), Shards: 1}
	}
	if err := s.Append(rec("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("c")); err == nil {
		t.Fatal("short write reported success")
	} else if !strings.Contains(err.Error(), "disk fault") {
		t.Fatalf("unexpected error: %v", err)
	}
	s.Close()
	if st := disk.Stats(); st.ShortWrites != 1 {
		t.Fatalf("disk stats: %+v", st)
	}

	s2, recs, err := OpenSpool(dir, Hooks{})
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	defer s2.Close()
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("replay after torn append: %+v", recs)
	}
}

// TestDiskFaultFsync: a failed fsync refuses the submission — the record may
// not be durable, so the job must not be acknowledged.
func TestDiskFaultFsync(t *testing.T) {
	disk := &faultinject.Disk{Seed: 7, Rules: []faultinject.DiskRule{
		{Match: faultinject.OpSync, Every: 2, FsyncError: true},
	}}
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.Hooks = Hooks{Append: disk.Append, Sync: disk.Sync, WriteFile: disk.WriteFile}
	})
	defer drain(t, m)
	// Sync 1 is the first submit (fires rule? Every:2 → fires on 2nd sync).
	if _, _, err := m.Submit(parseSpec(t, testSpec), 1, "a"); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	spec2 := parseSpec(t, strings.Replace(testSpec, "job-luby", "job-luby-2", 1))
	if _, _, err := m.Submit(spec2, 1, "a"); err == nil {
		t.Fatal("submit acknowledged over a failed fsync")
	}
	// The refused job does not exist.
	canonical, _ := json.Marshal(spec2)
	if _, err := m.Status(JobID(1, canonical)); err == nil {
		t.Fatal("failed submission left a job behind")
	}
}

// TestFailedJobReplaysToDuplicates: a deterministic failure is journaled and
// replayed to later duplicates — across restart too — without re-executing.
func TestFailedJobReplaysToDuplicates(t *testing.T) {
	dir := t.TempDir()
	spec := parseSpec(t, testSpec)
	exec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		return scenario.GraphInfo{}, nil, fmt.Errorf("%w: synthetic bad spec", serve.ErrSpec)
	}
	m := newManager(t, dir, func(c *Config) { c.Exec = exec })
	st, _, err := m.Submit(spec, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "synthetic bad spec") {
		t.Fatalf("failure message lost: %+v", fin)
	}
	drain(t, m)

	var calls atomic.Int64
	m2 := newManager(t, dir, func(c *Config) { c.Exec = fakeExec(&calls) })
	defer drain(t, m2)
	st2, coalesced, err := m2.Submit(spec, 1, "b")
	if err != nil || !coalesced || st2.State != StateFailed {
		t.Fatalf("duplicate of failed job: %+v coalesced=%v err=%v", st2, coalesced, err)
	}
	if calls.Load() != 0 {
		t.Fatalf("deterministic failure re-executed %d times", calls.Load())
	}
}

// TestTransientRetry: non-terminal failures requeue until the budget is
// spent.
func TestTransientRetry(t *testing.T) {
	spec := parseSpec(t, testSpec)
	var calls atomic.Int64
	exec := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		if calls.Add(1) <= 2 {
			return scenario.GraphInfo{}, nil, fmt.Errorf("synthetic transient failure")
		}
		return fakeExec(nil)(ctx, spec, seed, shard, onSlot)
	}
	m := newManager(t, t.TempDir(), func(c *Config) {
		c.Exec = exec
		c.Terminal = func(error) bool { return false }
		c.Retries = 3
	})
	defer drain(t, m)
	st, _, err := m.Submit(spec, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
}
