package job

import (
	"context"
	"sync"

	"github.com/unilocal/unilocal/internal/scenario"
)

// Event types, in the order a job's stream can emit them. A stream ends with
// exactly one terminal event (done, failed, canceled) — or drained, which is
// not terminal for the job: the job is still journaled and resumes after
// restart, only this stream is over.
const (
	EventQueued   = "queued"
	EventRunning  = "running"
	EventSlot     = "slot"
	EventShard    = "shard"
	EventDone     = "done"
	EventFailed   = "failed"
	EventCanceled = "canceled"
	EventDrained  = "drained"
)

// Event is one entry in a job's progress stream. Seq is a per-job sequence
// number; a subscriber that reconnects can detect a gap (the hub buffers a
// bounded window, not the whole stream).
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// Slot carries one completed slot's outcome (EventSlot).
	Slot *scenario.SlotOutcome `json:"slot,omitempty"`
	// ShardsDone / Shards and SlotsDone / Slots are progress counters,
	// stamped on running, shard and terminal events.
	ShardsDone int `json:"shards_done,omitempty"`
	Shards     int `json:"shards,omitempty"`
	SlotsDone  int `json:"slots_done,omitempty"`
	Slots      int `json:"slots,omitempty"`
	// Error is the failure message (EventFailed).
	Error string `json:"error,omitempty"`
}

// terminal reports whether the event ends its stream.
func terminalEvent(t string) bool {
	switch t {
	case EventDone, EventFailed, EventCanceled, EventDrained:
		return true
	}
	return false
}

// hubWindow bounds how many past events a hub retains for late or slow
// subscribers. A job's slot events can outnumber this (grids run to
// thousands of slots); a subscriber that falls behind sees a seq gap, not a
// stalled worker — publishing never blocks on a reader.
const hubWindow = 2048

// hub is one job's event stream: a bounded replay window plus wakeups for
// blocked subscribers. It is pull-based — subscribers poll next() with their
// cursor — so a dead or slow SSE client costs nothing but its own goroutine.
type hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event // events[k] has Seq = start+k
	start  int
	next   int
	closed bool
}

func newHub() *hub {
	h := &hub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// publish stamps the event's sequence number and appends it to the window.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e.Seq = h.next
	h.next++
	h.events = append(h.events, e)
	if len(h.events) > hubWindow {
		drop := len(h.events) - hubWindow
		h.events = append(h.events[:0], h.events[drop:]...)
		h.start += drop
	}
	h.cond.Broadcast()
}

// close ends the stream; blocked subscribers drain what remains and stop.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// nextEvents blocks until events past cursor exist (or the hub closes or ctx
// fires), then returns them with the advanced cursor. A cursor older than
// the retained window snaps forward — the subscriber observes the seq gap.
// done is true once the stream is over and fully drained.
func (h *hub) nextEvents(ctx context.Context, cursor int) (evs []Event, newCursor int, done bool) {
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for cursor >= h.next && !h.closed && ctx.Err() == nil {
		h.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, cursor, true
	}
	if cursor < h.start {
		cursor = h.start
	}
	evs = append(evs, h.events[cursor-h.start:]...)
	return evs, h.next, h.closed
}
