// Package job is the durable async half of the serving layer: submissions
// become crash-safe spooled jobs instead of held-open HTTP requests. A job's
// identity is the content address of its execution (seed + canonical spec),
// its lifecycle is an append-only fsync'd journal of state transitions, and
// its execution is checkpointed at shard boundaries — so a process crash
// loses at most the shard in flight, duplicate submissions coalesce onto one
// execution even across restarts, and the recovered result document is
// byte-identical to an uninterrupted run (the determinism contract of
// DESIGN.md §2.8, extended to §2.10's job lifecycle).
//
// The package deliberately does not import the serve package: the executor
// is injected as a function (serve.Server.ShardExecutor matches it), which
// keeps job ↔ serve dependency-free in both directions and lets tests drive
// the manager with a synthetic executor that fails, stalls or crashes on
// cue.
package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/sweep"
)

// Job states, as reported by Status. Done, Failed and Canceled are terminal;
// a canceled job can be requeued by resubmitting it (its checkpoints
// survive), a failed one replays its deterministic error to resubmissions.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Defaults for Config zero values.
const (
	DefaultWorkers      = 2
	DefaultShardsPerJob = 4
	DefaultRate         = 4    // submissions per second per client
	DefaultBurst        = 8    // bucket size
	DefaultMaxPerClient = 16   // queued+running jobs per client
	DefaultMaxJobs      = 4096 // retained job entries (terminal ones evict)
)

// ErrDraining refuses submissions while the manager drains for shutdown.
var ErrDraining = errors.New("job: manager draining")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("job: unknown job")

// ExecFunc runs one shard of one spec's grid and returns the deterministic
// graph header and the shard's slot outcomes. serve.Server.ShardExecutor
// returns exactly this shape. Errors for which terminal(err) is true are
// journaled as permanent failures; everything else is retried.
type ExecFunc func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error)

// Config configures a Manager. Dir and Exec are required; the zero value of
// everything else selects defaults.
type Config struct {
	// Dir is the spool directory (journal + result store).
	Dir string
	// Hooks inject the spool's disk primitives (fault testing); zero = real.
	Hooks Hooks
	// Exec executes one shard; required.
	Exec ExecFunc
	// Terminal classifies an Exec error as deterministic (journal it, replay
	// it to duplicates) vs transient (retry). Nil treats every error as
	// terminal. serve.TerminalError is the production classifier.
	Terminal func(error) bool
	// CheckSpec refuses oversized specs at submission (serve.Server.CheckSpec
	// applies the server's admission bounds); nil accepts everything.
	CheckSpec func(*scenario.Spec) error
	// Workers is the number of concurrent job executions; 0 = DefaultWorkers.
	Workers int
	// ShardsPerJob is the checkpoint granularity: each job's grid is split
	// into this many modulus shards, journaled one by one, and a crashed
	// execution resumes after its last journaled shard. Clamped to the grid
	// size. 0 = DefaultShardsPerJob, negative = 1 (checkpoint only at the
	// end).
	ShardsPerJob int
	// Rate / Burst shape the per-client submission token bucket; 0 selects
	// DefaultRate/DefaultBurst, negative Rate disables rate limiting.
	Rate  float64
	Burst int
	// MaxPerClient caps one client's queued+running jobs; 0 =
	// DefaultMaxPerClient, negative = unbounded.
	MaxPerClient int
	// Retries is how many times a transiently failed job is requeued before
	// it is journaled as failed; 0 = 2, negative = none.
	Retries int
	// Logf logs operational events; nil discards.
	Logf func(format string, args ...any)
	// Now is the clock (rate limiting, tests); nil = time.Now.
	Now func() time.Time

	// CrashAfterShards, when > 0, simulates a process crash for tests: after
	// that many shard checkpoints have been journaled (process-wide), the
	// manager goes dead — no further journal writes, workers abandon their
	// jobs mid-flight without journaling a thing — and Crash is called
	// (cmd/localserved maps its -fault exit-after-shard=N flag to an
	// os.Exit here; in-process tests use a no-op and then reopen the spool).
	CrashAfterShards int
	Crash            func()
}

// checkpoint is one journaled shard: its graph header and slot outcomes.
type checkpoint struct {
	info  scenario.GraphInfo
	slots []scenario.SlotOutcome
}

// entry is one job's in-memory state. Guarded by Manager.mu except where
// noted.
type entry struct {
	id        string
	seed      int64
	spec      *scenario.Spec
	canonical []byte
	client    string
	shards    int
	slots     int // grid size (plan.Jobs())
	state     string
	errMsg    string
	ckpts     []checkpoint // contiguous prefix: ckpts[i] is shard i
	retries   int
	cancel    context.CancelFunc // non-nil while running
	hub       *hub
	liveSlots atomic.Int64 // slots finished in the shard now in flight
}

func (e *entry) ckptSlots() int {
	n := 0
	for i := range e.ckpts {
		n += len(e.ckpts[i].slots)
	}
	return n
}

func (e *entry) slotsDone() int { return e.ckptSlots() + int(e.liveSlots.Load()) }

func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is one job's externally visible state.
type Status struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Spec       string `json:"spec"`
	Seed       int64  `json:"seed"`
	Shards     int    `json:"shards"`
	ShardsDone int    `json:"shards_done"`
	Slots      int    `json:"slots"`
	SlotsDone  int    `json:"slots_done"`
	Error      string `json:"error,omitempty"`
}

// Metrics is the manager's counter snapshot.
type Metrics struct {
	Jobs      int    `json:"jobs"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Coalesced uint64 `json:"coalesced"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Resumed counts jobs requeued from the journal at startup; Checkpoints
	// counts shard records journaled since start.
	Resumed     uint64 `json:"resumed"`
	Checkpoints uint64 `json:"checkpoints"`
	RateLimited uint64 `json:"rate_limited"`
}

// Manager owns the spool, the job table and the worker pool. Create with
// New; it recovers journaled state before accepting new work.
type Manager struct {
	cfg   Config
	spool *Spool
	rl    *quotas

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*entry
	order    []string // submission order, for compaction and listing
	queue    []string
	active   map[string]int // client → queued+running jobs
	running  int
	draining bool
	dead     atomic.Bool // crash simulation fired: no more journal writes

	workers    sync.WaitGroup
	ckptCount  atomic.Int64
	submitted  atomic.Uint64
	coalescedN atomic.Uint64
	doneN      atomic.Uint64
	failedN    atomic.Uint64
	canceledN  atomic.Uint64
	resumedN   atomic.Uint64
	limitedN   atomic.Uint64
}

// New opens (or creates) the spool at cfg.Dir, replays the journal —
// requeueing unfinished jobs at their last checkpointed shard boundary —
// compacts it, and starts the worker pool.
func New(cfg Config) (*Manager, error) {
	if cfg.Exec == nil {
		return nil, errors.New("job: Config.Exec is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.ShardsPerJob == 0 {
		cfg.ShardsPerJob = DefaultShardsPerJob
	}
	if cfg.ShardsPerJob < 0 {
		cfg.ShardsPerJob = 1
	}
	if cfg.Rate == 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.MaxPerClient == 0 {
		cfg.MaxPerClient = DefaultMaxPerClient
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Terminal == nil {
		cfg.Terminal = func(error) bool { return true }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	spool, recs, err := OpenSpool(cfg.Dir, cfg.Hooks)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		spool:  spool,
		jobs:   make(map[string]*entry),
		active: make(map[string]int),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Rate > 0 {
		m.rl = newQuotas(cfg.Rate, cfg.Burst, cfg.Now)
	}
	if err := m.replay(recs); err != nil {
		spool.Close()
		return nil, err
	}
	if err := m.compactLocked(); err != nil {
		spool.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m, nil
}

// replay folds the journal into the job table. Replay is the inverse of the
// append rules in execute/Submit/Cancel, so (journal → replay → compact) is
// idempotent.
func (m *Manager) replay(recs []*Record) error {
	for _, rec := range recs {
		switch rec.Op {
		case OpSubmit:
			if e, ok := m.jobs[rec.ID]; ok {
				// Resubmission after a terminal record requeues the job;
				// checkpoints survive (a canceled job resumes cheaply).
				if terminalState(e.state) {
					e.state = StateQueued
					e.errMsg = ""
				}
				continue
			}
			spec, err := scenario.Parse(rec.Spec)
			if err != nil {
				return fmt.Errorf("job %s: journaled spec: %w", rec.ID, err)
			}
			plan, err := scenario.PlanOf(spec, rec.Seed-1)
			if err != nil {
				return fmt.Errorf("job %s: journaled spec: %w", rec.ID, err)
			}
			m.jobs[rec.ID] = &entry{
				id:        rec.ID,
				seed:      rec.Seed,
				spec:      spec,
				canonical: append([]byte(nil), rec.Spec...),
				client:    rec.Client,
				shards:    rec.Shards,
				slots:     plan.Jobs(),
				state:     StateQueued,
				hub:       newHub(),
			}
			m.order = append(m.order, rec.ID)
		case OpShard:
			e, ok := m.jobs[rec.ID]
			if !ok || rec.Shard == nil || rec.Info == nil {
				continue
			}
			// Only a contiguous prefix of shards is a valid resume point;
			// anything else (a duplicate from a pre-compaction journal) is
			// discarded and re-executed, which determinism makes safe.
			if rec.Shard.Count == e.shards && rec.Shard.Index == len(e.ckpts) {
				e.ckpts = append(e.ckpts, checkpoint{info: *rec.Info, slots: rec.Slots})
			}
		case OpDone:
			if e, ok := m.jobs[rec.ID]; ok {
				e.state = StateDone
			}
		case OpFail:
			if e, ok := m.jobs[rec.ID]; ok {
				e.state = StateFailed
				e.errMsg = rec.Error
			}
		case OpCancel:
			if e, ok := m.jobs[rec.ID]; ok {
				e.state = StateCanceled
			}
		}
	}
	// Requeue survivors. A job journaled done whose result files are missing
	// (crash between rename and the directory sync) re-executes from its
	// checkpoints instead of serving a 404 forever.
	for _, id := range m.order {
		e := m.jobs[id]
		if e.state == StateDone && !m.spool.HasResult(id) {
			m.cfg.Logf("job %s: journaled done but result files missing; requeueing", id)
			e.state = StateQueued
		}
		if e.state == StateQueued {
			m.queue = append(m.queue, id)
			m.active[e.client]++
			m.resumedN.Add(1)
			e.hub.publish(Event{Type: EventQueued, Shards: e.shards, ShardsDone: len(e.ckpts), Slots: e.slots, SlotsDone: e.ckptSlots()})
		}
		if terminalState(e.state) {
			// A subscriber to a finished job's stream still sees one
			// terminal event, exactly as a live completion would have sent.
			st := m.statusLocked(e)
			e.hub.publish(Event{Type: terminalEventType(e.state), Shards: st.Shards, ShardsDone: st.ShardsDone, Slots: st.Slots, SlotsDone: st.SlotsDone, Error: e.errMsg})
			e.hub.close()
		}
	}
	return nil
}

func terminalEventType(state string) string {
	switch state {
	case StateDone:
		return EventDone
	case StateFailed:
		return EventFailed
	default:
		return EventCanceled
	}
}

// liveRecords reconstructs the minimal journal representing current state:
// per job, its submit record, then — only if unfinished — its checkpoints,
// or its terminal record. This is the spool's GC policy: a finished job
// compacts to two records regardless of how many shards it journaled.
func (m *Manager) liveRecords() []*Record {
	recs := make([]*Record, 0, len(m.order)*2)
	for _, id := range m.order {
		e := m.jobs[id]
		recs = append(recs, &Record{V: RecordVersion, Op: OpSubmit, ID: id, Seed: e.seed, Spec: e.canonical, Shards: e.shards, Client: e.client})
		switch e.state {
		case StateDone:
			recs = append(recs, &Record{V: RecordVersion, Op: OpDone, ID: id})
		case StateFailed:
			recs = append(recs, &Record{V: RecordVersion, Op: OpFail, ID: id, Error: e.errMsg})
		case StateCanceled:
			for i := range e.ckpts {
				recs = append(recs, m.ckptRecord(e, i))
			}
			recs = append(recs, &Record{V: RecordVersion, Op: OpCancel, ID: id})
		default:
			for i := range e.ckpts {
				recs = append(recs, m.ckptRecord(e, i))
			}
		}
	}
	return recs
}

func (m *Manager) ckptRecord(e *entry, i int) *Record {
	info := e.ckpts[i].info
	return &Record{
		V: RecordVersion, Op: OpShard, ID: e.id,
		Shard: &scenario.Shard{Index: i, Count: e.shards},
		Info:  &info,
		Slots: e.ckpts[i].slots,
	}
}

func (m *Manager) compactLocked() error { return m.spool.Compact(m.liveRecords()) }

// append journals one record unless the crash simulation already declared
// the process dead (a dead manager must not write — that is the point of
// the simulation).
func (m *Manager) append(rec *Record) error {
	if m.dead.Load() {
		return errors.New("job: manager dead (crash simulation)")
	}
	return m.spool.Append(rec)
}

// Submit registers a job for (spec, seed) on behalf of client and returns
// its status. If a job with the same execution identity already exists the
// submission coalesces onto it (coalesced=true): done/failed/running/queued
// jobs answer with their current state, canceled ones are requeued. New
// submissions pay the client's rate-limit token and queue quota, and are
// journaled durably before Submit returns.
func (m *Manager) Submit(spec *scenario.Spec, seed int64, client string) (st Status, coalesced bool, err error) {
	canonical, err := json.Marshal(spec)
	if err != nil {
		return Status{}, false, fmt.Errorf("job: canonicalizing spec: %w", err)
	}
	id := JobID(seed, canonical)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Status{}, false, ErrDraining
	}
	if e, ok := m.jobs[id]; ok {
		if e.state != StateCanceled {
			m.coalescedN.Add(1)
			return m.statusLocked(e), true, nil
		}
		// Requeue a canceled job: journal a fresh submit (replay requeues on
		// the same rule), keep its checkpoints.
		if err := m.append(&Record{V: RecordVersion, Op: OpSubmit, ID: id, Seed: seed, Spec: canonical, Shards: e.shards, Client: client}); err != nil {
			return Status{}, false, err
		}
		e.state = StateQueued
		e.errMsg = ""
		e.client = client
		e.hub = newHub()
		m.queue = append(m.queue, id)
		m.active[client]++
		m.submitted.Add(1)
		e.hub.publish(Event{Type: EventQueued, Shards: e.shards, ShardsDone: len(e.ckpts), Slots: e.slots, SlotsDone: e.ckptSlots()})
		m.cond.Signal()
		return m.statusLocked(e), false, nil
	}

	if err := m.rl.allow(client); err != nil {
		m.limitedN.Add(1)
		return Status{}, false, err
	}
	if m.cfg.MaxPerClient > 0 && m.active[client] >= m.cfg.MaxPerClient {
		m.limitedN.Add(1)
		return Status{}, false, &QuotaError{
			Reason:     fmt.Sprintf("client %q has %d queued jobs (limit %d)", client, m.active[client], m.cfg.MaxPerClient),
			RetryAfter: 5,
		}
	}
	if m.cfg.CheckSpec != nil {
		if err := m.cfg.CheckSpec(spec); err != nil {
			return Status{}, false, fmt.Errorf("%w", err)
		}
	}
	plan, err := scenario.PlanOf(spec, seed-1)
	if err != nil {
		return Status{}, false, err
	}
	shards := m.cfg.ShardsPerJob
	if shards > plan.Jobs() {
		shards = plan.Jobs()
	}
	if err := m.append(&Record{V: RecordVersion, Op: OpSubmit, ID: id, Seed: seed, Spec: canonical, Shards: shards, Client: client}); err != nil {
		return Status{}, false, err
	}
	e := &entry{
		id:        id,
		seed:      seed,
		spec:      spec,
		canonical: canonical,
		client:    client,
		shards:    shards,
		slots:     plan.Jobs(),
		state:     StateQueued,
		hub:       newHub(),
	}
	m.jobs[id] = e
	m.order = append(m.order, id)
	m.queue = append(m.queue, id)
	m.active[client]++
	m.submitted.Add(1)
	e.hub.publish(Event{Type: EventQueued, Shards: shards, Slots: e.slots})
	m.cond.Signal()
	return m.statusLocked(e), false, nil
}

// Cancel moves a job to canceled: queued jobs are dropped from the queue,
// running ones have their execution context fired (the sweep aborts between
// rounds). Canceling an already-terminal job is an idempotent no-op
// returning its state.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	if terminalState(e.state) {
		return m.statusLocked(e), nil
	}
	if err := m.append(&Record{V: RecordVersion, Op: OpCancel, ID: id}); err != nil {
		return Status{}, err
	}
	m.finishLocked(e, StateCanceled, "")
	if e.cancel != nil {
		e.cancel()
	}
	for i, qid := range m.queue {
		if qid == id {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	return m.statusLocked(e), nil
}

// finishLocked applies a terminal transition: state, counters, quota
// release, terminal event, stream close.
func (m *Manager) finishLocked(e *entry, state, errMsg string) {
	e.state = state
	e.errMsg = errMsg
	if n := m.active[e.client]; n > 1 {
		m.active[e.client] = n - 1
	} else {
		delete(m.active, e.client)
	}
	var typ string
	switch state {
	case StateDone:
		typ = EventDone
		m.doneN.Add(1)
	case StateFailed:
		typ = EventFailed
		m.failedN.Add(1)
	case StateCanceled:
		typ = EventCanceled
		m.canceledN.Add(1)
	}
	e.hub.publish(Event{Type: typ, Shards: e.shards, ShardsDone: len(e.ckpts), Slots: e.slots, SlotsDone: e.ckptSlots(), Error: errMsg})
	e.hub.close()
}

// Status returns one job's state.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(e), nil
}

func (m *Manager) statusLocked(e *entry) Status {
	shardsDone, slotsDone := len(e.ckpts), e.slotsDone()
	if e.state == StateDone {
		// A done job's checkpoints compact away on restart; its progress is
		// by definition complete.
		shardsDone, slotsDone = e.shards, e.slots
	}
	return Status{
		ID:         e.id,
		State:      e.state,
		Spec:       e.spec.Name,
		Seed:       e.seed,
		Shards:     e.shards,
		ShardsDone: shardsDone,
		Slots:      e.slots,
		SlotsDone:  slotsDone,
		Error:      e.errMsg,
	}
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Snapshot returns the manager's metrics.
func (m *Manager) Snapshot() Metrics {
	m.mu.Lock()
	queued, running := len(m.queue), m.running
	jobs := len(m.jobs)
	m.mu.Unlock()
	return Metrics{
		Jobs:        jobs,
		Queued:      queued,
		Running:     running,
		Submitted:   m.submitted.Load(),
		Coalesced:   m.coalescedN.Load(),
		Done:        m.doneN.Load(),
		Failed:      m.failedN.Load(),
		Canceled:    m.canceledN.Load(),
		Resumed:     m.resumedN.Load(),
		Checkpoints: uint64(m.ckptCount.Load()),
		RateLimited: m.limitedN.Load(),
	}
}

// Events subscribes to a job's progress stream: the hub replays its buffered
// window and then follows live events.
func (m *Manager) Events(id string) (*hub, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return e.hub, nil
}

// Result returns a done job's stored document; ext is ".md" or ".json". For
// a job in any other state it returns the status and a nil body.
func (m *Manager) Result(id, ext string) ([]byte, Status, error) {
	m.mu.Lock()
	e, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, Status{}, ErrNotFound
	}
	st := m.statusLocked(e)
	m.mu.Unlock()
	if st.State != StateDone {
		return nil, st, nil
	}
	body, err := m.spool.ReadResult(id, ext)
	if err != nil {
		return nil, st, err
	}
	return body, st, nil
}

// worker claims queued jobs and executes them until drain (or death).
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.draining && !m.dead.Load() {
			m.cond.Wait()
		}
		if m.draining || m.dead.Load() {
			m.mu.Unlock()
			return
		}
		id := m.queue[0]
		m.queue = m.queue[1:]
		e := m.jobs[id]
		if e == nil || e.state != StateQueued {
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		e.state = StateRunning
		e.cancel = cancel
		m.running++
		e.hub.publish(Event{Type: EventRunning, Shards: e.shards, ShardsDone: len(e.ckpts), Slots: e.slots, SlotsDone: e.ckptSlots()})
		m.mu.Unlock()

		m.execute(ctx, e)
		cancel()

		m.mu.Lock()
		m.running--
		e.cancel = nil
		m.mu.Unlock()
	}
}

// execute runs a job's remaining shards, checkpointing each, then assembles
// and stores the result. Every exit path leaves the job in a state the
// journal agrees with: terminal states are journaled before they are
// visible, and an abandoned execution (drain, crash, transient retry) leaves
// the job queued with its checkpoints intact.
func (m *Manager) execute(ctx context.Context, e *entry) {
	for {
		m.mu.Lock()
		next := len(e.ckpts)
		shards := e.shards
		stop := m.draining || m.dead.Load() || e.state != StateRunning
		m.mu.Unlock()
		if stop {
			m.requeueIfInterrupted(e)
			return
		}
		if next >= shards {
			break
		}

		sh := scenario.Shard{Index: next, Count: shards}
		e.liveSlots.Store(0)
		onSlot := func(out scenario.SlotOutcome) {
			e.liveSlots.Add(1)
			o := out
			e.hub.publish(Event{Type: EventSlot, Slot: &o, Shards: shards, Slots: e.slots})
		}
		info, slots, err := m.cfg.Exec(ctx, e.spec, e.seed, sh, onSlot)
		e.liveSlots.Store(0)
		if err != nil {
			m.execError(e, err)
			return
		}
		if len(e.ckpts) > 0 && info != e.ckpts[0].info {
			m.failJob(e, fmt.Sprintf("job %s: shard %s graph header %+v disagrees with checkpointed %+v", e.id, sh, info, e.ckpts[0].info))
			return
		}

		m.mu.Lock()
		if e.state != StateRunning {
			m.mu.Unlock()
			return
		}
		rec := &Record{V: RecordVersion, Op: OpShard, ID: e.id, Shard: &sh, Info: &info, Slots: slots}
		if err := m.append(rec); err != nil {
			m.mu.Unlock()
			m.cfg.Logf("job %s: checkpoint %s lost: %v", e.id, sh, err)
			m.retryOrFail(e, err)
			return
		}
		e.ckpts = append(e.ckpts, checkpoint{info: info, slots: slots})
		done := len(e.ckpts)
		m.mu.Unlock()
		e.hub.publish(Event{Type: EventShard, Shards: shards, ShardsDone: done, Slots: e.slots, SlotsDone: e.ckptSlots()})

		if n := m.ckptCount.Add(1); m.cfg.CrashAfterShards > 0 && n == int64(m.cfg.CrashAfterShards) {
			// Simulated SIGKILL: the process is dead from here on. Nothing
			// else may touch the journal; recovery happens in a fresh
			// manager on the same spool.
			m.dead.Store(true)
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
			if m.cfg.Crash != nil {
				m.cfg.Crash()
			}
			return
		}
	}
	m.assemble(e)
}

// requeueIfInterrupted returns an interrupted (drained/dead) running job to
// the queued state so journal replay and in-process state agree. Canceled
// jobs were already finished by Cancel.
func (m *Manager) requeueIfInterrupted(e *entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state == StateRunning {
		e.state = StateQueued
	}
}

// execError routes one shard-execution error: cancellation tracks the
// journaled cancel/drain that caused it, terminal errors journal a fail,
// transient ones retry.
func (m *Manager) execError(e *entry, err error) {
	if errors.Is(err, sweep.ErrCanceled) || errors.Is(err, context.Canceled) {
		// The context fired: either Cancel journaled OpCancel and finished
		// the job, or drain/death interrupted it — requeue for resume.
		m.requeueIfInterrupted(e)
		return
	}
	if m.cfg.Terminal(err) {
		m.failJob(e, err.Error())
		return
	}
	m.retryOrFail(e, err)
}

// failJob journals and applies a permanent failure.
func (m *Manager) failJob(e *entry, msg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != StateRunning {
		return
	}
	if err := m.append(&Record{V: RecordVersion, Op: OpFail, ID: e.id, Error: msg}); err != nil {
		m.cfg.Logf("job %s: journaling failure: %v", e.id, err)
		e.state = StateQueued // try again after restart; the journal has no fail record
		return
	}
	m.finishLocked(e, StateFailed, msg)
}

// retryOrFail requeues a transiently failed job until its retry budget is
// spent, then journals it failed.
func (m *Manager) retryOrFail(e *entry, cause error) {
	m.mu.Lock()
	if e.state != StateRunning {
		m.mu.Unlock()
		return
	}
	e.retries++
	if e.retries <= m.cfg.Retries {
		m.cfg.Logf("job %s: transient failure (retry %d/%d): %v", e.id, e.retries, m.cfg.Retries, cause)
		e.state = StateQueued
		m.queue = append(m.queue, e.id)
		m.cond.Signal()
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.failJob(e, fmt.Sprintf("after %d retries: %v", m.cfg.Retries, cause))
}

// assemble merges a fully checkpointed job into its result documents and
// journals it done. Both documents are pure functions of (spec, seed) —
// SectionFrom/Table.Write for markdown, SlotsDoc for JSON — so a document
// assembled here after a crash-and-resume is byte-identical to one from an
// uninterrupted run.
func (m *Manager) assemble(e *entry) {
	plan, err := scenario.PlanOf(e.spec, e.seed-1)
	if err != nil {
		m.failJob(e, fmt.Sprintf("planning for assembly: %v", err))
		return
	}
	slots := make([]scenario.SlotOutcome, plan.Jobs())
	filled := 0
	for i := range e.ckpts {
		for _, out := range e.ckpts[i].slots {
			if out.Slot < 0 || out.Slot >= len(slots) {
				m.failJob(e, fmt.Sprintf("checkpoint slot %d out of range [0,%d)", out.Slot, len(slots)))
				return
			}
			slots[out.Slot] = out
			filled++
		}
	}
	if filled != len(slots) {
		m.failJob(e, fmt.Sprintf("checkpoints cover %d of %d slots", filled, len(slots)))
		return
	}
	info := e.ckpts[0].info
	sec, err := scenario.SectionFrom(plan, info, slots)
	if err != nil {
		m.failJob(e, err.Error())
		return
	}
	var md bytes.Buffer
	t := scenario.Table{Jobs: plan.Jobs(), Sections: []scenario.Section{sec}}
	if err := t.Write(&md); err != nil {
		m.failJob(e, err.Error())
		return
	}
	doc, err := scenario.SlotsDoc(plan, info, slots, e.seed)
	if err != nil {
		m.failJob(e, err.Error())
		return
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		m.failJob(e, err.Error())
		return
	}
	data = append(data, '\n')
	if err := m.spool.WriteResult(e.id, md.Bytes(), data); err != nil {
		m.retryOrFail(e, err)
		return
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if e.state != StateRunning {
		return
	}
	if err := m.append(&Record{V: RecordVersion, Op: OpDone, ID: e.id}); err != nil {
		// The result files exist but the done record does not: after a
		// restart the job re-runs from its checkpoints and rewrites the
		// identical bytes. Requeue rather than lie about durability.
		m.cfg.Logf("job %s: journaling done: %v", e.id, err)
		e.state = StateQueued
		return
	}
	m.finishLocked(e, StateDone, "")
}

// Drain stops the manager for shutdown: new submissions are refused, queued
// jobs stay journaled for the next process, running jobs stop at their next
// shard boundary — or are context-canceled when ctx fires first — and every
// open event stream receives a terminal drained event before its hub
// closes. The spool is closed when Drain returns.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: stop waiting for shard boundaries, fire the running
		// executions' contexts. Their work since the last checkpoint is
		// discarded; the journal already holds everything completed.
		m.mu.Lock()
		for _, e := range m.jobs {
			if e.cancel != nil {
				e.cancel()
			}
		}
		m.mu.Unlock()
		<-done
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range m.order {
		e := m.jobs[id]
		if !terminalState(e.state) {
			e.hub.publish(Event{Type: EventDrained, Shards: e.shards, ShardsDone: len(e.ckpts), Slots: e.slots, SlotsDone: e.ckptSlots()})
			e.hub.close()
		}
	}
	if m.dead.Load() {
		// A crashed (simulated) process does not get to tidy its journal.
		return nil
	}
	return m.spool.Close()
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}
