package job

// HTTP surface tests for the async job API: submit/status/result round
// trips, SSE streaming to a terminal event, coalescing and cancellation
// status codes, quota responses with Retry-After, and drain refusal.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/unilocal/unilocal/internal/scenario"
)

func newTestAPI(t *testing.T, mut func(*Config)) (*API, *Manager) {
	t.Helper()
	m := newManager(t, t.TempDir(), mut)
	t.Cleanup(func() { drain(t, m) })
	return NewAPI(m, nil), m
}

func decodeSubmit(t *testing.T, res *http.Response) (Status, bool) {
	t.Helper()
	defer res.Body.Close()
	var out struct {
		Status
		Coalesced bool `json:"coalesced"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return out.Status, out.Coalesced
}

func TestAPISubmitStatusResult(t *testing.T) {
	api, m := newTestAPI(t, nil)
	srv := httptest.NewServer(api)
	defer srv.Close()

	res, err := http.Post(srv.URL+"/jobs?seed=1", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("submit: %d %s", res.StatusCode, body)
	}
	st, coalesced := decodeSubmit(t, res)
	if coalesced || st.ID == "" {
		t.Fatalf("submit response: %+v coalesced=%v", st, coalesced)
	}
	waitState(t, m, st.ID, StateDone)

	res, err = http.Get(srv.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got.State != StateDone || got.SlotsDone != 4 {
		t.Fatalf("status: %+v", got)
	}

	res, err = http.Get(srv.URL + "/jobs/" + st.ID + "/result?format=md")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "### job-luby") {
		t.Fatalf("result: %d\n%s", res.StatusCode, body)
	}

	// Duplicate coalesces with 200, and the list shows one job.
	res, err = http.Post(srv.URL+"/jobs?seed=1", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: %d", res.StatusCode)
	}
	if st2, coalesced := decodeSubmit(t, res); !coalesced || st2.ID != st.ID {
		t.Fatalf("duplicate: %+v coalesced=%v", st2, coalesced)
	}
	res, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs    []Status `json:"jobs"`
		Metrics Metrics  `json:"metrics"`
	}
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(list.Jobs) != 1 || list.Metrics.Coalesced != 1 {
		t.Fatalf("list: %+v", list)
	}

	// Unknown IDs are 404 on every per-job route.
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/events"} {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, res.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/nope", nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", res.StatusCode)
	}

	// Bad specs are the client's fault.
	res, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"name": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", res.StatusCode)
	}
}

func TestAPIEventsStream(t *testing.T) {
	api, _ := newTestAPI(t, func(c *Config) { c.ShardsPerJob = 2 })
	srv := httptest.NewServer(api)
	defer srv.Close()

	res, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := decodeSubmit(t, res)

	res, err = http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// The stream replays from the start (queued) and ends at the terminal
	// event; read until EOF and check the shape.
	var types []string
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(types) == 0 || types[len(types)-1] != EventDone {
		t.Fatalf("event stream %v does not end in done", types)
	}
	counts := map[string]int{}
	for _, ty := range types {
		counts[ty]++
	}
	if counts[EventShard] != 2 || counts[EventSlot] != 4 || counts[EventRunning] != 1 {
		t.Fatalf("event mix: %v", counts)
	}
}

func TestAPIResultNotReadyAndCancel(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return scenario.GraphInfo{}, nil, ctx.Err()
		}
		return fakeExec(nil)(ctx, spec, seed, shard, onSlot)
	}
	api, m := newTestAPI(t, func(c *Config) { c.Exec = blocking })
	defer close(release)
	srv := httptest.NewServer(api)
	defer srv.Close()

	res, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := decodeSubmit(t, res)

	// Result of an unfinished job: 409 with the status document.
	res, err = http.Get(srv.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var pending Status
	if err := json.NewDecoder(res.Body).Decode(&pending); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict || pending.State == StateDone {
		t.Fatalf("pending result: %d %+v", res.StatusCode, pending)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled Status
	if err := json.NewDecoder(res.Body).Decode(&canceled); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || canceled.State != StateCanceled {
		t.Fatalf("cancel: %d %+v", res.StatusCode, canceled)
	}
	waitState(t, m, st.ID, StateCanceled)
}

func TestAPIQuota(t *testing.T) {
	// Burst 1, refill 1/min: the second submission from the same client is
	// rate-limited with a Retry-After hint; a distinct X-Client is not.
	api, _ := newTestAPI(t, func(c *Config) { c.Rate = 1.0 / 60; c.Burst = 1 })
	srv := httptest.NewServer(api)
	defer srv.Close()

	post := func(client, spec string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/jobs", strings.NewReader(spec))
		req.Header.Set("X-Client", client)
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := post("alice", testSpec)
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", res.StatusCode)
	}
	res = post("alice", strings.Replace(testSpec, "job-luby", "job-luby-b", 1))
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", res.StatusCode)
	}
	if ra := res.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header %q", ra)
	}
	res = post("bob", strings.Replace(testSpec, "job-luby", "job-luby-c", 1))
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("other client: %d", res.StatusCode)
	}
}

func TestAPIDraining(t *testing.T) {
	drainingNow := false
	api, _ := newTestAPI(t, nil)
	api.draining = func() bool { return drainingNow }
	srv := httptest.NewServer(api)
	defer srv.Close()

	drainingNow = true
	res, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", res.StatusCode)
	}
}

func TestAPIBodyLimit(t *testing.T) {
	api, _ := newTestAPI(t, nil)
	api.maxBody = 64
	srv := httptest.NewServer(api)
	defer srv.Close()
	res, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(testSpec+strings.Repeat(" ", 100)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", res.StatusCode)
	}
}
