package job

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"github.com/unilocal/unilocal/internal/scenario"
)

// RecordVersion versions the journal wire format. Replay refuses records
// from a different version instead of misinterpreting fields that moved.
const RecordVersion = 1

// Journal operations. The journal is an append-only log of job state
// transitions; replaying it from the top reconstructs every job's state.
const (
	// OpSubmit creates (or, after a terminal record, requeues) a job. It
	// carries the canonical spec, the seed and the shard partition count —
	// everything resuming the execution needs.
	OpSubmit = "submit"
	// OpShard checkpoints one completed shard: the graph header and the
	// shard's slot outcomes. This is the resume boundary — work before the
	// last OpShard is never recomputed.
	OpShard = "shard"
	// OpDone marks a job complete; its result files exist in the spool.
	OpDone = "done"
	// OpFail marks a job failed with a deterministic error (re-running the
	// identical spec would fail identically).
	OpFail = "fail"
	// OpCancel marks a job canceled by a client. Checkpointed shards stay
	// valid; a resubmission requeues the job and reuses them.
	OpCancel = "cancel"
)

// Record is one journal entry. Exactly the fields its Op needs are set.
type Record struct {
	V    int    `json:"v"`
	Op   string `json:"op"`
	ID   string `json:"id"`
	Seed int64  `json:"seed,omitempty"`
	// Spec is the canonical (re-marshalled) scenario spec (OpSubmit).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Shards is the job's shard partition count (OpSubmit). It is fixed at
	// submission so a resumed execution partitions the grid identically.
	Shards int `json:"shards,omitempty"`
	// Client is the submitting client's quota identity (OpSubmit).
	Client string `json:"client,omitempty"`
	// Shard / Info / Slots carry one checkpoint (OpShard).
	Shard *scenario.Shard        `json:"shard,omitempty"`
	Info  *scenario.GraphInfo    `json:"info,omitempty"`
	Slots []scenario.SlotOutcome `json:"slots,omitempty"`
	// Error is the failure message (OpFail).
	Error string `json:"error,omitempty"`
}

// encodeRecord frames one record for the journal: an 8-hex-digit CRC32
// (IEEE) of the JSON payload, a space, the payload, a newline. The checksum
// is what makes torn tails detectable: a record whose bytes were cut short
// by a crash — or whose sync never completed — fails its CRC and is
// discarded on replay instead of being half-parsed.
func encodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(payload)+10)
	var crc [4]byte
	sum := crc32.ChecksumIEEE(payload)
	crc[0], crc[1], crc[2], crc[3] = byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)
	out = hex.AppendEncode(out, crc[:])
	out = append(out, ' ')
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// decodeLine parses one framed line (without its trailing newline).
func decodeLine(line []byte) (*Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("job: malformed journal line (%d bytes)", len(line))
	}
	crc, err := hex.DecodeString(string(line[:8]))
	if err != nil {
		return nil, fmt.Errorf("job: malformed journal checksum: %w", err)
	}
	payload := line[9:]
	want := uint32(crc[0])<<24 | uint32(crc[1])<<16 | uint32(crc[2])<<8 | uint32(crc[3])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("job: journal checksum mismatch (%08x, want %08x)", got, want)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("job: journal record: %w", err)
	}
	if rec.V != RecordVersion {
		return nil, fmt.Errorf("job: journal record version %d, want %d", rec.V, RecordVersion)
	}
	return &rec, nil
}

// parseJournal splits raw journal bytes into records, tolerating a torn
// tail. A final fragment without its newline, or a final line that fails its
// checksum, is what a crash mid-append (or a short write the sync never
// covered) leaves behind: both are dropped, and valid reports how many bytes
// of clean prefix precede the damage. Damage anywhere else — a bad record
// with valid records after it — cannot be a torn tail and is returned as a
// corruption error instead of being silently skipped.
func parseJournal(raw []byte) (recs []*Record, valid int64, err error) {
	off := int64(0)
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			// Torn tail: the final append never got its newline to disk.
			return recs, off, nil
		}
		rec, err := decodeLine(raw[:nl])
		if err != nil {
			if int64(nl+1) == int64(len(raw)) {
				// The damaged line is the last one: a torn append whose
				// newline landed but whose middle didn't. Drop it.
				return recs, off, nil
			}
			return nil, 0, fmt.Errorf("job: journal corrupt at byte %d: %w", off, err)
		}
		recs = append(recs, rec)
		raw = raw[nl+1:]
		off += int64(nl + 1)
	}
	return recs, off, nil
}
