package job

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
)

// JobID derives a job's identity from its execution identity: the hex SHA-256
// of (seed, canonical spec), truncated to 24 hex digits. Because the ID is a
// content address, duplicate submissions — concurrent, sequential, or
// separated by a process restart — collapse onto one job, one execution and
// one stored result without any coordination beyond the spool itself.
func JobID(seed int64, canonicalSpec []byte) string {
	h := sha256.New()
	h.Write([]byte(strconv.FormatInt(seed, 10)))
	h.Write([]byte{0})
	h.Write(canonicalSpec)
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// Hooks are the spool's durability primitives, injectable so the disk-fault
// test harness (internal/fabric/faultinject.Disk) can fail, short-write or
// fsync-error them on a seeded schedule. Zero fields select the real
// operations.
type Hooks struct {
	// Append writes one framed record to the open journal handle.
	Append func(f *os.File, p []byte) (int, error)
	// Sync fsyncs the journal after an append.
	Sync func(f *os.File) error
	// WriteFile atomically creates a temp file's content (result documents,
	// journal compaction): write everything, fsync, close.
	WriteFile func(name string, data []byte, perm fs.FileMode) error
}

func (h Hooks) fill() Hooks {
	if h.Append == nil {
		h.Append = func(f *os.File, p []byte) (int, error) { return f.Write(p) }
	}
	if h.Sync == nil {
		h.Sync = func(f *os.File) error { return f.Sync() }
	}
	if h.WriteFile == nil {
		h.WriteFile = func(name string, data []byte, perm fs.FileMode) error {
			f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
			if err != nil {
				return err
			}
			if _, err := f.Write(data); err != nil {
				f.Close()
				return err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	return h
}

// Spool is the crash-safe on-disk half of the job subsystem: an append-only,
// fsync'd journal of state transitions plus a content-addressed result
// store. Layout under dir:
//
//	journal.log      framed records (see journal.go), append-only
//	results/<id>.md  completed job documents, written atomically
//	results/<id>.json
//
// Durability contract: a record is in the journal only after its bytes and
// an fsync landed; result files are written to a temp name, fsync'd and
// renamed, so a reader never observes a half-written document; replay
// tolerates exactly one torn record at the tail (the append a crash cut
// short) and refuses corruption anywhere else. The Manager, not the Spool,
// owns what the records mean.
type Spool struct {
	dir   string
	hooks Hooks
	f     *os.File
}

const journalName = "journal.log"

// OpenSpool opens (creating if needed) the spool at dir, replays the
// journal, truncates a torn tail, and returns the replayed records in append
// order. The journal is then open for appends.
func OpenSpool(dir string, hooks Hooks) (*Spool, []*Record, error) {
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, nil, err
	}
	s := &Spool{dir: dir, hooks: hooks.fill()}
	path := s.journalPath()
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, valid, err := parseJournal(raw)
	if err != nil {
		return nil, nil, err
	}
	if valid < int64(len(raw)) {
		// Torn tail: cut the journal back to its clean prefix so the next
		// append starts at a record boundary.
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s.f = f
	return s, recs, nil
}

func (s *Spool) journalPath() string { return filepath.Join(s.dir, journalName) }

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// Append journals one record durably: framed bytes, then fsync. An error
// means the record may or may not have reached the disk — the caller must
// treat the transition as not having happened (replay's torn-tail handling
// discards a half-written tail record).
func (s *Spool) Append(rec *Record) error {
	data, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := s.hooks.Append(s.f, data); err != nil {
		return fmt.Errorf("job: journal append: %w", err)
	}
	if err := s.hooks.Sync(s.f); err != nil {
		return fmt.Errorf("job: journal sync: %w", err)
	}
	return nil
}

// Compact rewrites the journal to exactly recs — the live state after a
// replay — via temp file, fsync and atomic rename, bounding journal growth
// across restarts (the spool's GC policy: checkpoints of finished jobs
// collapse to their terminal record, see DESIGN.md §2.10). The append handle
// is reopened on the new file.
func (s *Spool) Compact(recs []*Record) error {
	var data []byte
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		data = append(data, line...)
	}
	tmp := s.journalPath() + ".tmp"
	if err := s.hooks.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("job: journal compaction: %w", err)
	}
	if err := os.Rename(tmp, s.journalPath()); err != nil {
		return err
	}
	s.syncDir()
	old := s.f
	f, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	return old.Close()
}

// WriteResult stores a completed job's documents content-addressed by the
// job ID: temp file, fsync, rename, for each format. Rewriting an existing
// result (a crash between the files landing and the done record) is
// harmless — the bytes are identical by the determinism contract.
func (s *Spool) WriteResult(id string, markdown, jsonDoc []byte) error {
	for _, part := range []struct {
		ext  string
		data []byte
	}{{".md", markdown}, {".json", jsonDoc}} {
		final := s.resultPath(id, part.ext)
		tmp := final + ".tmp"
		if err := s.hooks.WriteFile(tmp, part.data, 0o644); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("job: result write: %w", err)
		}
		if err := os.Rename(tmp, final); err != nil {
			return err
		}
	}
	s.syncDir()
	return nil
}

// ReadResult loads a stored result document; ext is ".md" or ".json".
func (s *Spool) ReadResult(id, ext string) ([]byte, error) {
	return os.ReadFile(s.resultPath(id, ext))
}

// HasResult reports whether both result documents exist.
func (s *Spool) HasResult(id string) bool {
	for _, ext := range []string{".md", ".json"} {
		if _, err := os.Stat(s.resultPath(id, ext)); err != nil {
			return false
		}
	}
	return true
}

func (s *Spool) resultPath(id, ext string) string {
	return filepath.Join(s.dir, "results", id+ext)
}

// syncDir best-effort fsyncs the spool directory so renames are durable.
// Failure is not fatal: the worst case is a rename replayed as missing after
// a crash, which recovery repairs by re-assembling from checkpoints.
func (s *Spool) syncDir() {
	for _, dir := range []string{s.dir, filepath.Join(s.dir, "results")} {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
}

// Close closes the journal handle.
func (s *Spool) Close() error { return s.f.Close() }
