package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/unilocal/unilocal/internal/scenario"
)

// shardTestSpec is a 12-job grid (2 algorithms × 3 seeds × repeat 2) with a
// ratio column, so the shard partition splits baseline/uniform pairs across
// different shards — exactly the case that forces ratios to be computed from
// merged slots rather than within one response.
func shardTestSpec() []byte {
	return []byte(`{
  "name": "shard-probe",
  "description": "Sharded serving-layer probe.",
  "graph": {"family": "cycle", "n": 96},
  "ids": {"regime": "dense", "seed": 5},
  "algorithm": {"name": "uniform-mis-delta"},
  "baseline": {"name": "nonuniform-mis-delta"},
  "seeds": [1, 2, 3],
  "repeat": 2
}`)
}

// TestServeShardMergeMatchesFullDocument is the serve-layer half of the
// distributed determinism contract: fetching every shard of a spec
// separately and rebuilding the document from the merged slot outcomes (as
// the fabric coordinator does) is byte-identical to the server's own
// whole-grid markdown response.
func TestServeShardMergeMatchesFullDocument(t *testing.T) {
	specJSON := shardTestSpec()
	spec, err := scenario.Parse(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scenario.PlanOf(spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, want := postSpec(t, ts.Client(), ts.URL+"/run", specJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full request: status %d: %s", resp.StatusCode, want)
	}

	const shards = 3
	slots := make([]scenario.SlotOutcome, plan.Jobs())
	filled := make([]bool, plan.Jobs())
	var info scenario.GraphInfo
	for i := 0; i < shards; i++ {
		sh := scenario.Shard{Index: i, Count: shards}
		resp, body := postSpec(t, ts.Client(), fmt.Sprintf("%s/run?shard=%s", ts.URL, sh), specJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %s: status %d: %s", sh, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("shard %s: content type %q", sh, ct)
		}
		var doc ShardDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("shard %s: decoding: %v", sh, err)
		}
		if err := doc.Validate(spec.Name, 1, sh, plan.Jobs()); err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
		if i == 0 {
			info = doc.Graph
		} else if doc.Graph != info {
			t.Fatalf("shard %s reports graph %+v, shard 0/%d reported %+v", sh, doc.Graph, shards, info)
		}
		for _, so := range doc.Slots {
			if filled[so.Slot] {
				t.Fatalf("slot %d delivered twice", so.Slot)
			}
			filled[so.Slot] = true
			slots[so.Slot] = so
		}
	}
	for i, ok := range filled {
		if !ok {
			t.Fatalf("slot %d never delivered", i)
		}
	}

	sec, err := scenario.SectionFrom(plan, info, slots)
	if err != nil {
		t.Fatal(err)
	}
	tab := &scenario.Table{Jobs: plan.Jobs(), Sections: []scenario.Section{sec}}
	var got bytes.Buffer
	if err := tab.Write(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged shard document diverges from whole-grid response:\n got: %s\nwant: %s", got.Bytes(), want)
	}
}

func TestServeShardBadRequests(t *testing.T) {
	good := shardTestSpec()
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for _, tc := range []struct{ name, query string }{
		{"index out of range", "shard=3/3"},
		{"malformed", "shard=abc"},
		{"negative", "shard=-1/2"},
		{"zero count", "shard=0/0"},
		{"shard with format", "shard=0/2&format=json"},
	} {
		resp, body := postSpec(t, ts.Client(), ts.URL+"/run?"+tc.query, good)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestServeShardJobLimit pins the per-shard work bound: a grid too large
// for one request is still servable split across enough shards, because
// admission charges a shard only for its own share of the slots.
func TestServeShardJobLimit(t *testing.T) {
	spec := shardTestSpec() // 12 jobs
	ts := httptest.NewServer(New(Config{MaxJobs: 4}))
	defer ts.Close()

	resp, body := postSpec(t, ts.Client(), ts.URL+"/run", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("whole grid over MaxJobs: status %d, want 400: %s", resp.StatusCode, body)
	}
	resp, body = postSpec(t, ts.Client(), ts.URL+"/run?shard=0/3", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("4-job shard of a 12-job grid: status %d, want 200: %s", resp.StatusCode, body)
	}
	// A shard whose share still exceeds the bound is refused.
	resp, body = postSpec(t, ts.Client(), ts.URL+"/run?shard=0/2", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("6-job shard: status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestServeShardCacheKeys(t *testing.T) {
	spec := shardTestSpec()
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, first := postSpec(t, ts.Client(), ts.URL+"/run?shard=0/2", spec)
	if got := resp.Header.Get("X-Localserved-Cache"); got != "miss" {
		t.Fatalf("first shard request: cache header %q", got)
	}
	resp, second := postSpec(t, ts.Client(), ts.URL+"/run?shard=0/2", spec)
	if got := resp.Header.Get("X-Localserved-Cache"); got != "hit" {
		t.Fatalf("repeated shard request: cache header %q", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached shard body differs from computed body")
	}
	resp, _ = postSpec(t, ts.Client(), ts.URL+"/run?shard=1/2", spec)
	if got := resp.Header.Get("X-Localserved-Cache"); got != "miss" {
		t.Fatalf("distinct shard served from cache: %q", got)
	}
}

// TestServeBusyResponse pins the 429 contract remote backoff depends on:
// Retry-After header plus the admission gauges in a JSON body.
func TestServeBusyResponse(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	s := New(Config{MaxInFlight: 1, QueueDepth: -1, CacheSize: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()
	resp, body := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1 (empty queue)", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var gauges struct {
		Error      string `json:"error"`
		InFlight   int    `json:"in_flight"`
		Queued     int    `json:"queued"`
		MaxInFl    int    `json:"max_in_flight"`
		QueueDepth int    `json:"queue_depth"`
		RetrySecs  int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &gauges); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, body)
	}
	if !strings.Contains(gauges.Error, "not admitted") || gauges.MaxInFl != 1 || gauges.RetrySecs != 1 {
		t.Fatalf("429 gauges off: %+v", gauges)
	}
}
