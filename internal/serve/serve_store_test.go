package serve

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/scenario"
)

// diffGraphBlocks gives every scenario family a small, valid graph block for
// the graph-source differential below. TestGraphSourceByteIdentity fails if
// a family in the table has no entry here, so a new family cannot dodge the
// differential.
var diffGraphBlocks = map[string]string{
	"path":           `{"family": "path", "n": 24}`,
	"cycle":          `{"family": "cycle", "n": 24}`,
	"star":           `{"family": "star", "n": 24}`,
	"clique":         `{"family": "clique", "n": 12}`,
	"grid":           `{"family": "grid", "rows": 4, "cols": 5}`,
	"torus":          `{"family": "torus", "rows": 4, "cols": 5}`,
	"hypercube":      `{"family": "hypercube", "d": 4}`,
	"tree":           `{"family": "tree", "n": 32, "seed": 3}`,
	"caterpillar":    `{"family": "caterpillar", "n": 8, "k": 2}`,
	"lollipop":       `{"family": "lollipop", "n": 6, "k": 4}`,
	"gnp":            `{"family": "gnp", "n": 64, "p": 0.08, "seed": 3}`,
	"regular":        `{"family": "regular", "n": 32, "d": 4, "seed": 3}`,
	"forest":         `{"family": "forest", "n": 32, "k": 2, "seed": 3}`,
	"ba":             `{"family": "ba", "n": 64, "k": 3, "seed": 3}`,
	"geometric":      `{"family": "geometric", "n": 64, "radius": 0.15, "seed": 3}`,
	"huge-geometric": `{"family": "huge-geometric", "n": 96, "d": 6, "seed": 3}`,
	"huge-ba":        `{"family": "huge-ba", "n": 96, "k": 3, "seed": 3}`,
	"smallworld":     `{"family": "smallworld", "n": 32, "k": 4, "beta": 0.1, "seed": 3}`,
}

// TestGraphSourceByteIdentity is the tentpole guarantee of the two-tier
// corpus: for every graph family, the rendered document is byte-identical
// whether the graph came from a fresh generation, an in-memory corpus hit,
// or a disk-tier CSR image load. A difference would mean the store changed
// the graph — exactly what the checksummed image format exists to prevent.
func TestGraphSourceByteIdentity(t *testing.T) {
	for _, fam := range scenario.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			block, ok := diffGraphBlocks[fam.Name]
			if !ok {
				t.Fatalf("family %s has no differential graph block; add one to diffGraphBlocks", fam.Name)
			}
			specJSON := fmt.Appendf(nil, `{
  "name": "diff-%s",
  "graph": %s,
  "algorithm": {"name": "luby-mis"},
  "seeds": [1, 2]
}`, fam.Name, block)
			spec, err := scenario.Parse(specJSON)
			if err != nil {
				t.Fatal(err)
			}
			specs := []*scenario.Spec{spec}

			// Fresh generation, then a memory hit on the same corpus.
			mem := graph.NewCorpus()
			fresh, err := Execute(specs, ExecOptions{Corpus: mem})
			if err != nil {
				t.Fatal(err)
			}
			memHit, err := Execute(specs, ExecOptions{Corpus: mem})
			if err != nil {
				t.Fatal(err)
			}
			if h, _ := mem.Stats(); h == 0 {
				t.Fatal("second run did not hit the in-memory tier")
			}

			// Disk hit: pre-warm the store with one corpus, load from a fresh one.
			store, err := graph.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			warmer := graph.NewCorpus()
			warmer.AttachStore(store)
			if _, err := Execute(specs, ExecOptions{Corpus: warmer}); err != nil {
				t.Fatal(err)
			}
			loader := graph.NewCorpus()
			loader.AttachStore(store)
			diskHit, err := Execute(specs, ExecOptions{Corpus: loader})
			if err != nil {
				t.Fatal(err)
			}
			if st := store.Stats(); st.Hits == 0 {
				t.Fatalf("store-backed run never loaded from disk: %+v", st)
			}

			if !bytes.Equal(fresh.Markdown, memHit.Markdown) {
				t.Error("memory-hit document diverges from fresh generation")
			}
			if !bytes.Equal(fresh.Markdown, diskHit.Markdown) {
				t.Error("disk-hit document diverges from fresh generation")
			}
		})
	}
}
