package serve

import (
	"container/list"
	"sync"
)

// respCache is the keyed response cache: served bodies are deterministic
// functions of (spec, seed, format), so a repeated request can be answered
// from memory without touching the scheduler. Bounded LRU, safe for
// concurrent use. Identical concurrent first requests may both execute and
// both store — the stored bytes are identical by the determinism contract,
// so last-write-wins is harmless.
type respCache struct {
	mu      sync.Mutex
	limit   int
	order   *list.List // front = most recently used; values are *cacheItem
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheItem struct {
	key         string
	body        []byte
	contentType string
}

// newRespCache returns a cache bounded to limit entries; limit <= 0 disables
// caching entirely (every get misses, puts are dropped).
func newRespCache(limit int) *respCache {
	return &respCache{
		limit:   limit,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *respCache) get(key string) (body []byte, contentType string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.order.MoveToFront(el)
	it := el.Value.(*cacheItem)
	return it.body, it.contentType, true
}

func (c *respCache) put(key string, body []byte, contentType string) {
	if c.limit <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		c.order.MoveToFront(el)
		el.Value.(*cacheItem).body = body
		el.Value.(*cacheItem).contentType = contentType
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, body: body, contentType: contentType})
	for c.order.Len() > c.limit {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
}

func (c *respCache) stats() (hits, misses uint64, entries, limit int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.limit
}
