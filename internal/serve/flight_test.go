package serve

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestServeSingleFlightCoalesces is the satellite acceptance test: N
// concurrent POSTs of the same spec must cause exactly one execution. The
// cache is disabled so coalescing — not caching — is what collapses the
// load. The only execution slot is occupied before the clients fire, so
// every request reaches the flight before the leader can run: one request
// leads (and queues for admission), the rest wait on the flight. Releasing
// the slot lets the leader execute once and publish to everyone.
func TestServeSingleFlightCoalesces(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	s := New(Config{MaxInFlight: 1, QueueDepth: 64, CacheSize: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.sem <- struct{}{} // hold the only slot until all clients have joined

	const clients = 8
	bodies := make([][]byte, clients)
	cacheHdr := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSpec(t, ts.Client(), ts.URL+"/run", req)
			bodies[i], cacheHdr[i] = body, resp.Header.Get("X-Localserved-Cache")
		}(i)
	}

	// Wait until every client is inside the handler (the gap between the
	// request counter and the flight join is pure in-memory parsing), then
	// release the slot and let the leader run.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().RequestsTotal < clients {
		if time.Now().After(deadline) {
			t.Fatal("clients never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	<-s.sem
	wg.Wait()

	miss, coalesced := 0, 0
	for i := 0; i < clients; i++ {
		switch cacheHdr[i] {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("client %d: cache header %q", i, cacheHdr[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
	if miss != 1 || coalesced != clients-1 {
		t.Fatalf("%d misses and %d coalesced responses, want 1 and %d", miss, coalesced, clients-1)
	}

	m := s.Snapshot()
	// The golden spec expands to 2 jobs (baseline + uniform, one seed): a
	// single execution means the job counter saw exactly one batch.
	if m.Jobs != 2 {
		t.Fatalf("jobs counter = %d, want 2 (one execution)", m.Jobs)
	}
	if m.ResponsesCoalesced != clients-1 {
		t.Fatalf("coalesced counter = %d, want %d", m.ResponsesCoalesced, clients-1)
	}
}
