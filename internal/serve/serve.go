// Package serve is the long-lived serving layer over the scenario/sweep
// stack: a request names one scenario — graph family, identity regime,
// algorithm from the registry — and the server expands it, executes it on
// the pooled sweep scheduler and returns the deterministic document, exactly
// the contract of cmd/localbench -scenarios. This is the paper's workload
// shape as a service: many independent clients, each describing only its own
// instance, none relying on shared global knowledge (PAPER.md; DESIGN.md
// §2.8).
//
// Everything a one-shot CLI tolerates and a long-lived process cannot is
// handled here: the graph corpus is bounded (LRU eviction, so the server
// does not retain every family ever requested), request contexts thread all
// the way into the engine's round loop (a client disconnect or server
// timeout stops a batch instead of running it to completion), admission is
// bounded with 429 overflow, repeated requests hit a keyed response cache,
// and /healthz + /metrics expose the state an operator needs to drain or
// debug the process.
//
// Determinism contract: response bodies are pure functions of (spec, seed,
// format) — markdown contains only deterministic fields, and the JSON
// document is scrubbed of wall-clock and allocation noise — so they are
// byte-identical for any Parallel/EngineWorkers configuration, across
// restarts, and before/after cache eviction. CI's server smoke job diffs a
// served response against localbench output for the same spec.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/unilocal/unilocal/internal/benchfmt"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/sweep"
)

// Defaults for Config zero values.
const (
	DefaultCorpusLimit  = 256
	DefaultCacheSize    = 64
	DefaultQueueDepth   = 64
	DefaultMaxBodyBytes = 1 << 20
	DefaultMaxNodes     = 1 << 20
	DefaultMaxEdges     = 1 << 23
	DefaultMaxJobs      = 4096
)

// statusClientClosedRequest reports a request whose client disconnected
// mid-execution (nginx's non-standard 499; the write usually goes nowhere,
// but the code keeps logs and metrics honest).
const statusClientClosedRequest = 499

// ErrSpec wraps every request problem that is the client's fault — a spec
// that fails validation or expansion — so the handler can map it to 400
// without string-matching.
var ErrSpec = errors.New("serve: invalid scenario request")

// Config configures a Server. The zero value selects defaults.
type Config struct {
	// Parallel is the sweep parallelism per request; 0 means GOMAXPROCS.
	Parallel int
	// EngineWorkers pins the per-simulation engine worker count; 0 = auto.
	EngineWorkers int
	// CorpusLimit bounds the shared graph corpus (entries, LRU-evicted);
	// 0 means DefaultCorpusLimit, negative means unbounded.
	CorpusLimit int
	// CorpusStore, when non-nil, is the content-addressed on-disk CSR image
	// tier backing the corpus (graph.OpenStore): misses load previously
	// built graphs by mmap instead of regenerating, and fresh builds are
	// persisted for other replicas sharing the directory. Documents are
	// byte-identical with or without a store.
	CorpusStore *graph.Store
	// CorpusMemBytes bounds the corpus's estimated in-heap graph bytes
	// (LRU-evicted like the entry bound); 0 means unbounded. With a store
	// attached, evicted graphs reload from disk, so a small budget plus a
	// warm store serves graphs far larger than the budget.
	CorpusMemBytes int64
	// CacheSize bounds the keyed response cache; 0 means DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// MaxInFlight caps concurrently executing requests; 0 means GOMAXPROCS.
	MaxInFlight int
	// QueueDepth caps requests waiting for an execution slot; beyond it the
	// server answers 429. 0 means DefaultQueueDepth, negative means no queue
	// (reject as soon as all slots are busy).
	QueueDepth int
	// Timeout caps one request's execution; 0 means no server-side deadline
	// (the client's disconnect still cancels).
	Timeout time.Duration
	// MaxBodyBytes caps the request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxNodes / MaxEdges / MaxJobs bound the work a single request may
	// commission (graph size estimated by the family table, job count =
	// seeds × repeats × algorithms); beyond them the request is refused
	// with 400 before expansion ever builds anything. Graph construction
	// itself is not cancellable, so these bounds — not the request context
	// — are what keeps one client from pinning an execution slot with
	// arbitrarily large work. 0 means the defaults, negative unbounded.
	MaxNodes int
	MaxEdges int
	MaxJobs  int
}

// Server is the HTTP serving layer. Create with New; it implements
// http.Handler (POST /run, GET /healthz, GET /metrics).
type Server struct {
	cfg     Config
	corpus  *graph.Corpus
	cache   *respCache
	flights *flightGroup
	mux     *http.ServeMux
	sem     chan struct{}
	start   time.Time

	draining atomic.Bool
	inFlight atomic.Int64
	queued   atomic.Int64

	requests     atomic.Uint64
	ok           atomic.Uint64
	cached       atomic.Uint64
	coalesced    atomic.Uint64
	rejected     atomic.Uint64
	badRequests  atomic.Uint64
	canceled     atomic.Uint64
	failed       atomic.Uint64
	jobs         atomic.Uint64
	sweepWallNs  atomic.Uint64
	engineAllocs atomic.Uint64
	nodeSteps    atomic.Uint64
	stepSlots    atomic.Uint64
}

// New returns a ready Server. The graph corpus and response cache live for
// the Server's lifetime and are shared across all requests.
func New(cfg Config) *Server {
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.CorpusLimit == 0 {
		cfg.CorpusLimit = DefaultCorpusLimit
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = DefaultMaxNodes
	}
	if cfg.MaxEdges == 0 {
		cfg.MaxEdges = DefaultMaxEdges
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	corpusLimit := cfg.CorpusLimit
	if corpusLimit < 0 {
		corpusLimit = 0 // unbounded
	}
	corpus := graph.NewBoundedCorpus(corpusLimit)
	if cfg.CorpusStore != nil {
		corpus.AttachStore(cfg.CorpusStore)
	}
	if cfg.CorpusMemBytes > 0 {
		corpus.SetMemLimit(cfg.CorpusMemBytes)
	}
	s := &Server{
		cfg:     cfg,
		corpus:  corpus,
		cache:   newRespCache(cfg.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		start:   time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the drain flag: /healthz answers 503 (so load balancers
// stop routing here) and new /run requests are refused, while requests
// already admitted run to completion under http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// ExecOptions configures one spec-set execution (the request → document path
// shared by the server and cmd/localbench -scenarios).
type ExecOptions struct {
	// Corpus memoizes graphs across calls; nil uses a private one.
	Corpus *graph.Corpus
	// SeedOffset shifts every spec seed (CLI -seed N maps to N-1).
	SeedOffset int64
	// Parallel / EngineWorkers configure the sweep (see sweep.Options).
	Parallel      int
	EngineWorkers int
	// Context cancels the batch mid-run; nil runs to completion.
	Context context.Context
	// OnSlot, when non-nil, receives each successfully completed slot's
	// deterministic outcome the moment it lands — the progress feed the
	// async job API streams over SSE. Slot indices are global grid slots
	// (identical for sharded and whole-grid execution). Callbacks arrive
	// from sweep workers concurrently and must be safe for concurrent use;
	// failed or canceled slots do not report.
	OnSlot func(out scenario.SlotOutcome)
}

// Outcome is a completed execution: the expanded batch, its results and
// stats, and the rendered deterministic markdown document.
type Outcome struct {
	Batch    *scenario.Batch
	Results  []sweep.Result
	Stats    sweep.Stats
	Markdown []byte
}

// Execute expands the specs, runs the batch and renders the markdown
// document. Expansion problems (the client's spec) are wrapped in ErrSpec;
// execution problems — including cancellation, which satisfies
// errors.Is(err, sweep.ErrCanceled) — are returned as-is.
func Execute(specs []*scenario.Spec, opts ExecOptions) (*Outcome, error) {
	// Expansion (graph generation included) is not cancellable; refuse work
	// for a context that is already dead rather than building for a caller
	// that is gone. Callers bound expansion size up front (see
	// Config.MaxNodes) — mid-expansion the context is not consulted.
	if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("%w: %w: batch not started", sweep.ErrCanceled, ctx.Err())
	}
	batch, err := scenario.Expand(specs, scenario.ExpandOptions{
		Corpus:     opts.Corpus,
		SeedOffset: opts.SeedOffset,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSpec, err)
	}
	results, stats := sweep.Run(batch.Jobs, sweep.Options{
		Parallel:      opts.Parallel,
		EngineWorkers: opts.EngineWorkers,
		Context:       opts.Context,
		OnResult:      slotReporter(opts.OnSlot, nil),
	})
	var buf bytes.Buffer
	if err := scenario.Render(&buf, batch, results); err != nil {
		return nil, err
	}
	return &Outcome{Batch: batch, Results: results, Stats: stats, Markdown: buf.Bytes()}, nil
}

// DeterministicDoc builds the benchfmt document for a served response with
// every non-deterministic field scrubbed: wall times, allocation counters
// and the server's own parallelism are zeroed, so the JSON body — like the
// markdown one — is a pure function of (spec, seed) and safe to cache and
// diff across worker counts. CLI consumers that want timing keep using
// localbench -json.
func DeterministicDoc(out *Outcome, seed int64) (*benchfmt.Doc, error) {
	doc, err := scenario.Doc(out.Batch, out.Results, out.Stats, seed, 0, 0)
	if err != nil {
		return nil, err
	}
	doc.GeneratedBy = "cmd/localserved"
	doc.Sweep = benchfmt.SweepStats{Jobs: out.Stats.Jobs}
	for i := range doc.Results {
		doc.Results[i].WallNs = 0
		doc.Results[i].Allocs = 0
	}
	return doc, nil
}

// admit acquires an execution slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success, or the HTTP status
// to answer with (429 on queue overflow, 499 when the client gave up while
// queued).
func (s *Server) admit(ctx context.Context) (func(), int) {
	admitted := false
	select {
	case s.sem <- struct{}{}:
		admitted = true
	default:
	}
	if !admitted {
		if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			return nil, http.StatusTooManyRequests
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			return nil, statusClientClosedRequest
		}
	}
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		<-s.sem
	}, 0
}

// runRequest is one parsed POST /run, threaded from handleRun to the
// single-flight leader.
type runRequest struct {
	spec  *scenario.Spec
	shard *scenario.Shard // nil for a whole-grid request
	seed  int64
	// format is "md" or "json"; ignored when shard is non-nil (a shard
	// response is always the JSON shard document).
	format string
	// variant keys the response body within a flight and the cache: the
	// format, or "shard:i/n".
	variant string
	// baseKey is seed + canonical spec — the execution identity shared by
	// both formats of a whole-grid request.
	baseKey string
}

func (req *runRequest) cacheKey() string { return req.variant + "\x00" + req.baseKey }

// flightKey excludes the format for whole-grid requests — one execution
// renders both formats, so md and json requests coalesce — but includes the
// shard, so different shards of one spec execute concurrently.
func (req *runRequest) flightKey() string {
	if req.shard != nil {
		return req.cacheKey()
	}
	return req.baseKey
}

// handleRun is POST /run: body is one scenario.Spec (same strict JSON schema
// as a scenarios/ file), query parameters seed (default 1, shifts the spec's
// seed grid exactly like localbench -seed), format (md | json) and shard
// (i/n: execute only the grid slots with index ≡ i mod n and answer with
// the JSON shard document; mutually exclusive with format).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	seed := int64(1)
	if v := r.URL.Query().Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		seed = n
	}
	var shard *scenario.Shard
	if v := r.URL.Query().Get("shard"); v != "" {
		sh, err := scenario.ParseShard(v)
		if err != nil {
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "bad shard %q: %v", v, err)
			return
		}
		shard = &sh
	}
	format := r.URL.Query().Get("format")
	if shard != nil {
		if format != "" {
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "format and shard are mutually exclusive (a shard response is always the JSON shard document)")
			return
		}
	} else {
		if format == "" {
			format = "md"
		}
		if format != "md" && format != "json" {
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "bad format %q (md or json)", format)
			return
		}
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.badRequests.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "body over %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad scenario: %v", err)
		return
	}
	if err := s.checkLimits(spec, shard); err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The cache key is the canonical (re-marshalled) spec, not the raw body:
	// two clients formatting the same scenario differently share one entry.
	canonical, err := json.Marshal(spec)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "canonicalizing spec: %v", err)
		return
	}
	req := &runRequest{
		spec:    spec,
		shard:   shard,
		seed:    seed,
		format:  format,
		variant: format,
		baseKey: strconv.FormatInt(seed, 10) + "\x00" + string(canonical),
	}
	if shard != nil {
		req.variant = "shard:" + shard.String()
	}

	for {
		if body, ct, ok := s.cache.get(req.cacheKey()); ok {
			s.cached.Add(1)
			s.ok.Add(1)
			writeResponse(w, ct, "hit", body)
			return
		}
		f, leader := s.flights.join(req.flightKey())
		if leader {
			s.lead(w, r, f, req)
			return
		}
		select {
		case <-f.done:
		case <-r.Context().Done():
			s.canceled.Add(1)
			httpError(w, statusClientClosedRequest, "canceled while coalesced")
			return
		}
		if body, ct, ok := f.lookup(req.variant); ok {
			s.coalesced.Add(1)
			s.ok.Add(1)
			writeResponse(w, ct, "coalesced", body)
			return
		}
		if f.replayStatus != 0 {
			// The leader hit a deterministic client error; re-running the
			// identical request would fail identically.
			s.coalesced.Add(1)
			s.badRequests.Add(1)
			httpError(w, f.replayStatus, "%s", f.replayMsg)
			return
		}
		// The leader's outcome was transient (rejected, canceled, failed):
		// loop — next round hits the cache, joins a newer flight, or leads.
	}
}

// lead executes a request as its flight's leader: admission, execution,
// rendering, cache fill, and publication of the outcome to coalesced
// waiters. finish runs on every path, so waiters never block on a leader
// that errored out.
func (s *Server) lead(w http.ResponseWriter, r *http.Request, f *flight, req *runRequest) {
	defer s.flights.finish(f)

	release, status := s.admit(r.Context())
	if status != 0 {
		if status == http.StatusTooManyRequests {
			s.rejected.Add(1)
			s.writeBusy(w)
		} else {
			s.canceled.Add(1)
			httpError(w, status, "not admitted")
		}
		return
	}
	defer release()

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	opts := ExecOptions{
		Corpus:        s.corpus,
		SeedOffset:    req.seed - 1,
		Parallel:      s.cfg.Parallel,
		EngineWorkers: s.cfg.EngineWorkers,
		Context:       ctx,
	}
	const mdCT = "text/markdown; charset=utf-8"
	const jsonCT = "application/json"

	if req.shard != nil {
		doc, stats, err := ExecuteShard(req.spec, *req.shard, opts)
		if err != nil {
			s.execError(w, f, err)
			return
		}
		s.recordStats(stats)
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			s.failed.Add(1)
			httpError(w, http.StatusInternalServerError, "encoding shard document: %v", err)
			return
		}
		data = append(data, '\n')
		s.cache.put(req.cacheKey(), data, jsonCT)
		f.publish(req.variant, jsonCT, data)
		s.ok.Add(1)
		writeResponse(w, jsonCT, "miss", data)
		return
	}

	out, err := Execute([]*scenario.Spec{req.spec}, opts)
	if err != nil {
		s.execError(w, f, err)
		return
	}
	s.recordStats(out.Stats)

	// One execution serves both formats: the JSON document derives from the
	// same Outcome the markdown does, so render both now — they feed the
	// cache's two format entries and any coalesced waiter that asked for the
	// other format — instead of re-running the whole batch later.
	mdBody := out.Markdown
	doc, err := DeterministicDoc(out, req.seed)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "building document: %v", err)
		return
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "encoding document: %v", err)
		return
	}
	jsonBody := append(data, '\n')
	s.cache.put("md\x00"+req.baseKey, mdBody, mdCT)
	s.cache.put("json\x00"+req.baseKey, jsonBody, jsonCT)
	f.publish("md", mdCT, mdBody)
	f.publish("json", jsonCT, jsonBody)
	s.ok.Add(1)
	if req.format == "md" {
		writeResponse(w, mdCT, "miss", mdBody)
	} else {
		writeResponse(w, jsonCT, "miss", jsonBody)
	}
}

// execError maps an Execute/ExecuteShard error to its HTTP response.
// Deterministic client errors (bad spec, max_rounds expiry) are additionally
// published to the flight so coalesced waiters replay them; transient
// outcomes (cancellation, timeout, server fault) are not — a waiter retries
// those itself.
func (s *Server) execError(w http.ResponseWriter, f *flight, err error) {
	switch {
	case errors.Is(err, ErrSpec):
		s.badRequests.Add(1)
		s.deterministicError(w, f, http.StatusBadRequest, "bad scenario: %v", err)
	case errors.Is(err, local.ErrMaxRounds):
		// The client's max_rounds (or the engine cap) expired before the
		// algorithm terminated: deterministic, client-induced, not a
		// server fault — do not page the operator for it.
		s.badRequests.Add(1)
		s.deterministicError(w, f, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, sweep.ErrCanceled):
		s.canceled.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusGatewayTimeout, "canceled: %v", err)
		} else {
			httpError(w, statusClientClosedRequest, "canceled: %v", err)
		}
	default:
		s.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "run failed: %v", err)
	}
}

func (s *Server) deterministicError(w http.ResponseWriter, f *flight, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	f.replayStatus = status
	f.replayMsg = msg
	httpError(w, status, "%s", msg)
}

func (s *Server) recordStats(stats sweep.Stats) {
	s.jobs.Add(uint64(stats.Jobs))
	s.sweepWallNs.Add(uint64(stats.Wall.Nanoseconds()))
	s.engineAllocs.Add(stats.EngineAllocs)
	s.nodeSteps.Add(uint64(stats.NodeSteps))
	s.stepSlots.Add(uint64(stats.StepSlots))
}

// writeBusy answers an admission overflow with 429, a Retry-After hint and
// the admission gauges a remote backoff policy needs: a client seeing
// queued at queue_depth should back off harder than one that merely lost
// the race for the last free slot. The hint grows with queue pressure —
// one second per full in-flight set's worth of queued requests.
func (s *Server) writeBusy(w http.ResponseWriter) {
	inFlight := s.inFlight.Load()
	queued := s.queued.Load()
	retry := 1 + int(queued)/s.cfg.MaxInFlight
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, "{\"error\":\"localserved: not admitted: all execution slots busy and queue full\",\"in_flight\":%d,\"queued\":%d,\"max_in_flight\":%d,\"queue_depth\":%d,\"retry_after_seconds\":%d}\n",
		inFlight, queued, s.cfg.MaxInFlight, s.cfg.QueueDepth, retry)
}

// checkLimits refuses a spec that would commission more work than the
// server is configured to accept from one request: estimated graph size
// (via the family table) and expanded job count. Bounding here — before any
// expansion — is what keeps graph generation, which cannot be canceled
// mid-build, from pinning an execution slot indefinitely. A shard request
// is bounded by its own share of the grid, not the whole grid: a sweep too
// large for one request stays servable split across enough shards (the
// graph-size bounds still apply unsharded — every shard builds the graph).
func (s *Server) checkLimits(spec *scenario.Spec, shard *scenario.Shard) error {
	if n := spec.Graph.ApproxNodes(); s.cfg.MaxNodes > 0 && n > s.cfg.MaxNodes {
		return fmt.Errorf("graph %s: ~%d nodes exceeds the server's per-request limit of %d", spec.Graph, n, s.cfg.MaxNodes)
	}
	if e := spec.Graph.ApproxEdges(); s.cfg.MaxEdges > 0 && e > s.cfg.MaxEdges {
		return fmt.Errorf("graph %s: ~%d edges exceeds the server's per-request limit of %d", spec.Graph, e, s.cfg.MaxEdges)
	}
	jobs := spec.ApproxJobs()
	if shard != nil {
		share := shard.Size(jobs)
		if s.cfg.MaxJobs > 0 && share > s.cfg.MaxJobs {
			return fmt.Errorf("shard %s spans %d of the spec's %d jobs, over the server's per-request limit of %d", shard, share, jobs, s.cfg.MaxJobs)
		}
		return nil
	}
	if s.cfg.MaxJobs > 0 && jobs > s.cfg.MaxJobs {
		return fmt.Errorf("spec expands to %d jobs, over the server's per-request limit of %d", jobs, s.cfg.MaxJobs)
	}
	return nil
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\"status\":\"draining\"}\n")
		return
	}
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// Metrics is the JSON body of GET /metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	InFlight      int64   `json:"in_flight"`
	Queued        int64   `json:"queued"`

	RequestsTotal   uint64 `json:"requests_total"`
	ResponsesOK     uint64 `json:"responses_ok"`
	ResponsesCached uint64 `json:"responses_cached"`
	// ResponsesCoalesced counts requests answered from another in-flight
	// identical request's execution (single-flight), without running the
	// batch or hitting the cache.
	ResponsesCoalesced uint64 `json:"responses_coalesced"`
	Rejected           uint64 `json:"rejected"`
	BadRequests        uint64 `json:"bad_requests"`
	Canceled           uint64 `json:"canceled"`
	Failed             uint64 `json:"failed"`

	// Jobs / JobsPerSec / EngineAllocs aggregate the sweep batches executed
	// since start; JobsPerSec is jobs over cumulative batch wall time (the
	// scheduler's throughput, not the server's request rate). NodeSteps is
	// the cumulative engine work in node-steps (Σ per-run live-frontier
	// sizes) and FrontierOccupancy is NodeSteps over the Rounds × n step
	// slots those runs spanned — the bitset data plane's payoff gauge: low
	// occupancy means the word-level frontier is skipping most of the graph
	// most rounds.
	Jobs              uint64  `json:"jobs"`
	JobsPerSec        float64 `json:"jobs_per_sec"`
	EngineAllocs      uint64  `json:"engine_allocs"`
	NodeSteps         uint64  `json:"node_steps"`
	FrontierOccupancy float64 `json:"frontier_occupancy"`

	Corpus struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Entries   int    `json:"entries"`
		Limit     int    `json:"limit"`
		MemBytes  int64  `json:"mem_bytes"`
		MemLimit  int64  `json:"mem_limit"`
		// Disk is present only when a CSR image store is attached.
		Disk *DiskMetrics `json:"disk,omitempty"`
	} `json:"corpus"`
	Cache struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
		Limit   int    `json:"limit"`
	} `json:"cache"`
}

// DiskMetrics is the /metrics view of the corpus's disk tier (the CSR image
// store): load hits and misses, images this process wrote, corrupt images
// rejected, and byte totals for writes and mmaps.
type DiskMetrics struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Written      uint64 `json:"written"`
	Corrupt      uint64 `json:"corrupt"`
	BytesWritten int64  `json:"bytes_written"`
	BytesMapped  int64  `json:"bytes_mapped"`
}

// Snapshot returns the current metrics.
func (s *Server) Snapshot() Metrics {
	var m Metrics
	m.UptimeSeconds = time.Since(s.start).Seconds()
	m.Draining = s.draining.Load()
	m.InFlight = s.inFlight.Load()
	m.Queued = s.queued.Load()
	m.RequestsTotal = s.requests.Load()
	m.ResponsesOK = s.ok.Load()
	m.ResponsesCached = s.cached.Load()
	m.ResponsesCoalesced = s.coalesced.Load()
	m.Rejected = s.rejected.Load()
	m.BadRequests = s.badRequests.Load()
	m.Canceled = s.canceled.Load()
	m.Failed = s.failed.Load()
	m.Jobs = s.jobs.Load()
	m.EngineAllocs = s.engineAllocs.Load()
	m.NodeSteps = s.nodeSteps.Load()
	if slots := s.stepSlots.Load(); slots > 0 {
		m.FrontierOccupancy = float64(m.NodeSteps) / float64(slots)
	}
	if wall := s.sweepWallNs.Load(); wall > 0 {
		m.JobsPerSec = float64(m.Jobs) / (float64(wall) / 1e9)
	}
	cs := s.corpus.Metrics()
	m.Corpus.Hits, m.Corpus.Misses, m.Corpus.Evictions = cs.Hits, cs.Misses, cs.Evictions
	m.Corpus.Entries, m.Corpus.Limit = cs.Entries, cs.Limit
	m.Corpus.MemBytes, m.Corpus.MemLimit = cs.MemBytes, cs.MemLimit
	if cs.DiskEnabled {
		m.Corpus.Disk = &DiskMetrics{
			Hits:         cs.Disk.Hits,
			Misses:       cs.Disk.Misses,
			Written:      cs.Disk.Written,
			Corrupt:      cs.Disk.Corrupt,
			BytesWritten: cs.Disk.BytesWritten,
			BytesMapped:  cs.Disk.BytesMapped,
		}
	}
	ch, cm, ce, cl := s.cache.stats()
	m.Cache.Hits, m.Cache.Misses, m.Cache.Entries, m.Cache.Limit = ch, cm, ce, cl
	return m
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func writeResponse(w http.ResponseWriter, contentType, cache string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Localserved-Cache", cache)
	w.Write(body)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("localserved: "+format, args...), status)
}

// CheckSpec applies the server's per-request work bounds (max nodes, edges,
// expanded jobs) to a whole-grid spec — the same admission gate handleRun
// runs — so the async job API refuses oversized work with the same errors
// and before expansion builds anything.
func (s *Server) CheckSpec(spec *scenario.Spec) error { return s.checkLimits(spec, nil) }

// TerminalError reports whether an execution error is deterministic — the
// identical request would fail identically on any replica, any retry, any
// restart: a bad spec (ErrSpec) or a max_rounds expiry. Retry machinery
// (the fabric coordinator, the job manager's crash recovery) must not burn
// attempts on these; everything else is worth re-running.
func TerminalError(err error) bool {
	return errors.Is(err, ErrSpec) || errors.Is(err, local.ErrMaxRounds)
}

// ShardExecutor returns the shard-wise execution function the async job
// manager checkpoints around: one call runs one shard of one spec's grid on
// this server's corpus and sweep configuration, reports per-slot progress
// through onSlot, and returns the deterministic graph header and slot
// outcomes — exactly the fields a journal checkpoint persists. Executions
// feed the server's /metrics throughput counters like synchronous requests
// do.
func (s *Server) ShardExecutor() func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
	return func(ctx context.Context, spec *scenario.Spec, seed int64, shard scenario.Shard, onSlot func(scenario.SlotOutcome)) (scenario.GraphInfo, []scenario.SlotOutcome, error) {
		doc, stats, err := ExecuteShard(spec, shard, ExecOptions{
			Corpus:        s.corpus,
			SeedOffset:    seed - 1,
			Parallel:      s.cfg.Parallel,
			EngineWorkers: s.cfg.EngineWorkers,
			Context:       ctx,
			OnSlot:        onSlot,
		})
		s.recordStats(stats)
		if err != nil {
			return scenario.GraphInfo{}, nil, err
		}
		return doc.Graph, doc.Slots, nil
	}
}
