package serve

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/sweep"
)

// ShardDocSchemaVersion versions the shard wire format; a coordinator
// refuses documents from replicas speaking a different version instead of
// merging fields that silently moved.
const ShardDocSchemaVersion = 1

// ShardDoc is the wire format of one shard execution: the deterministic
// outcome of every slot the shard owns, keyed by global slot index, plus
// the echo fields (spec name, seed, shard, grid size, graph header) a
// coordinator cross-checks before merging. It deliberately carries no
// outputs and no timing: outputs are validated by the registry checkers on
// the replica that ran the slot, and every remaining field is a pure
// function of (spec, seed) — which is why merging shard documents from any
// mix of replicas, retries and fallbacks reproduces the single-process
// document byte for byte.
type ShardDoc struct {
	SchemaVersion int                    `json:"schema_version"`
	Spec          string                 `json:"spec"`
	Seed          int64                  `json:"seed"`
	Shard         scenario.Shard         `json:"shard"`
	Jobs          int                    `json:"jobs"`
	Graph         scenario.GraphInfo     `json:"graph"`
	Slots         []scenario.SlotOutcome `json:"slots"`
}

// Validate checks the document's internal consistency against the grid
// shape the client planned: version, echoed identifiers, and that the slot
// set is exactly the shard's partition of the grid, in ascending order. A
// coordinator calls this on every response before merging, so a corrupted
// or truncated body — or a replica running different code — is a retriable
// transport failure, never a silent wrong merge.
func (d *ShardDoc) Validate(specName string, seed int64, shard scenario.Shard, jobs int) error {
	if d.SchemaVersion != ShardDocSchemaVersion {
		return fmt.Errorf("shard doc: schema version %d, want %d", d.SchemaVersion, ShardDocSchemaVersion)
	}
	if d.Spec != specName {
		return fmt.Errorf("shard doc: spec %q, want %q", d.Spec, specName)
	}
	if d.Seed != seed {
		return fmt.Errorf("shard doc: seed %d, want %d", d.Seed, seed)
	}
	if d.Shard != shard {
		return fmt.Errorf("shard doc: shard %s, want %s", d.Shard, shard)
	}
	if d.Jobs != jobs {
		return fmt.Errorf("shard doc: grid of %d jobs, planned %d", d.Jobs, jobs)
	}
	want := shard.Slots(jobs)
	if len(d.Slots) != len(want) {
		return fmt.Errorf("shard doc: %d slots, want %d", len(d.Slots), len(want))
	}
	for k, slot := range d.Slots {
		if slot.Slot != want[k] {
			return fmt.Errorf("shard doc: slot[%d] = %d, want %d", k, slot.Slot, want[k])
		}
		if slot.Rounds < 0 || slot.Messages < 0 {
			return fmt.Errorf("shard doc: slot %d has negative outcome", slot.Slot)
		}
	}
	return nil
}

// slotReporter adapts an ExecOptions.OnSlot callback to sweep's OnResult
// hook. slots maps the executed batch's job index to its global grid slot;
// nil means identity (whole-grid execution). Failed and canceled slots are
// not reported — a progress stream only ever sees outcomes that will appear
// in the final document.
func slotReporter(onSlot func(scenario.SlotOutcome), slots []int) func(int, sweep.Result) {
	if onSlot == nil {
		return nil
	}
	return func(i int, r sweep.Result) {
		if r.Err != nil || r.Res == nil {
			return
		}
		slot := i
		if slots != nil {
			slot = slots[i]
		}
		onSlot(scenario.SlotOutcome{Slot: slot, Rounds: r.Res.Rounds, Messages: r.Res.Messages})
	}
}

// ExecuteShard expands one spec's full job grid, runs only the slots the
// shard owns, validates their outputs and returns the shard document.
// Expansion still builds the whole graph — slots share it — but simulation
// work shrinks to the shard's share, which is the resource a sweep is
// bounded by. Error wrapping matches Execute: spec problems wrap ErrSpec,
// execution problems (including sweep.ErrCanceled) return as-is, with a
// genuine slot failure preferred over a concurrent cancellation so a
// deterministic client error is never misreported as a transient one.
func ExecuteShard(spec *scenario.Spec, shard scenario.Shard, opts ExecOptions) (*ShardDoc, sweep.Stats, error) {
	if err := shard.Validate(); err != nil {
		return nil, sweep.Stats{}, fmt.Errorf("%w: %w", ErrSpec, err)
	}
	if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
		return nil, sweep.Stats{}, fmt.Errorf("%w: %w: shard not started", sweep.ErrCanceled, ctx.Err())
	}
	batch, err := scenario.Expand([]*scenario.Spec{spec}, scenario.ExpandOptions{
		Corpus:     opts.Corpus,
		SeedOffset: opts.SeedOffset,
	})
	if err != nil {
		return nil, sweep.Stats{}, fmt.Errorf("%w: %w", ErrSpec, err)
	}
	slots := shard.Slots(len(batch.Jobs))
	sub := make([]sweep.Job, len(slots))
	for k, slot := range slots {
		sub[k] = batch.Jobs[slot]
	}
	res, stats := sweep.Run(sub, sweep.Options{
		Parallel:      opts.Parallel,
		EngineWorkers: opts.EngineWorkers,
		Context:       opts.Context,
		OnResult:      slotReporter(opts.OnSlot, slots),
	})
	if err := res.FirstErr(); err != nil {
		slot := slots[res.FirstIncomplete()]
		return nil, stats, fmt.Errorf("shard %s: %s: %w", shard, batch.Jobs[slot].Label, err)
	}
	doc := &ShardDoc{
		SchemaVersion: ShardDocSchemaVersion,
		Spec:          spec.Name,
		Seed:          opts.SeedOffset + 1,
		Shard:         shard,
		Jobs:          len(batch.Jobs),
		Graph:         scenario.InfoOf(batch.Graphs[0]),
		Slots:         make([]scenario.SlotOutcome, 0, len(slots)),
	}
	for k, slot := range slots {
		r := res[k]
		if err := batch.Check(slot, r.Res.Outputs); err != nil {
			return nil, stats, fmt.Errorf("shard %s: %s: invalid output: %w", shard, batch.Jobs[slot].Label, err)
		}
		doc.Slots = append(doc.Slots, scenario.SlotOutcome{Slot: slot, Rounds: r.Res.Rounds, Messages: r.Res.Messages})
	}
	return doc, stats, nil
}
