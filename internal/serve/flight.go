package serve

import "sync"

// flightGroup coalesces concurrent identical requests into one execution.
// The first request for a key becomes the leader and runs the batch; every
// request for the same key arriving before the leader finishes waits on the
// flight instead of burning an execution slot on work whose result is — by
// the determinism contract — byte-identical. The flight key is
// (seed, canonical spec, shard), deliberately not the format: one execution
// renders every format, so an md and a json request for the same spec
// coalesce too.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress execution. The leader fills the outcome fields
// and then closes done; waiters read them only after done is closed, so the
// channel provides the happens-before edge and no lock is needed on the
// fields themselves.
type flight struct {
	key  string
	done chan struct{}

	// bodies/cts hold the rendered response per variant ("md", "json", or
	// the shard string) on success.
	bodies map[string][]byte
	cts    map[string]string

	// replayStatus, when non-zero, is a deterministic client error (400,
	// 413, 422): re-running the request would fail identically, so waiters
	// replay it instead of becoming leaders themselves. Transient outcomes
	// (429, 499, 503, 504, 5xx) leave it zero and waiters retry.
	replayStatus int
	replayMsg    string
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key; leader is true when this caller created
// it and must execute, publish and finish it.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{
		key:    key,
		done:   make(chan struct{}),
		bodies: make(map[string][]byte),
		cts:    make(map[string]string),
	}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome: the flight leaves the map first —
// so a request arriving after the outcome is settled starts a fresh flight
// instead of attaching to a finished one — and done closes last, releasing
// the waiters.
func (g *flightGroup) finish(f *flight) {
	g.mu.Lock()
	delete(g.m, f.key)
	g.mu.Unlock()
	close(f.done)
}

// publish records one rendered variant. Leader-only, before finish.
func (f *flight) publish(variant, contentType string, body []byte) {
	f.bodies[variant] = body
	f.cts[variant] = contentType
}

// lookup returns the published body for a variant, if any. Waiter-only,
// after done.
func (f *flight) lookup(variant string) (body []byte, contentType string, ok bool) {
	body, ok = f.bodies[variant]
	return body, f.cts[variant], ok
}
