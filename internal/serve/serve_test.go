package serve

// Serving-layer tests: golden request/response files, the byte-identity
// contract between served responses and the localbench render path, cache
// and admission behaviour, drain, and the ≥64-request concurrent load test
// with mid-batch client disconnects (run under -race in CI) that must leave
// no goroutine behind.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/unilocal/unilocal/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files from live output")

func readTestdata(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSpec(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestServeGoldenResponses pins the served markdown and JSON bodies for the
// committed request file. Regenerate with: go test ./internal/serve -update
func TestServeGoldenResponses(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for _, tc := range []struct {
		format, golden string
	}{
		{"md", "mis_response.md"},
		{"json", "mis_response.json"},
	} {
		resp, body := postSpec(t, ts.Client(), ts.URL+"/run?format="+tc.format, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.format, resp.StatusCode, body)
		}
		path := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want := readTestdata(t, tc.golden)
		if !bytes.Equal(body, want) {
			t.Errorf("%s response diverges from %s:\n got: %s\nwant: %s", tc.format, tc.golden, body, want)
		}
	}
}

// TestServeByteIdenticalAcrossParallelism is the acceptance invariant: the
// served body equals the localbench render path's output for the same spec,
// whatever Parallel/EngineWorkers either side uses, and whatever seed shifts
// the grid.
func TestServeByteIdenticalAcrossParallelism(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	spec, err := scenario.Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 5} {
		// The reference: what cmd/localbench -scenarios -seed prints.
		ref, err := Execute([]*scenario.Spec{spec}, ExecOptions{SeedOffset: seed - 1, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Parallel: 1, EngineWorkers: 1},
			{Parallel: 4},
			{Parallel: 2, EngineWorkers: 3, CorpusLimit: 2, CacheSize: -1},
		} {
			ts := httptest.NewServer(New(cfg))
			url := fmt.Sprintf("%s/run?seed=%d", ts.URL, seed)
			resp, body := postSpec(t, ts.Client(), url, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cfg %+v: status %d: %s", cfg, resp.StatusCode, body)
			}
			if !bytes.Equal(body, ref.Markdown) {
				t.Errorf("cfg %+v seed %d: served body diverges from render path", cfg, seed)
			}
			ts.Close()
		}
	}
}

// TestServeCache checks the keyed response cache: a repeated request is
// served from memory (hit header, cached counter) with identical bytes, and
// a different seed or format is a distinct key.
func TestServeCache(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp1, body1 := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if got := resp1.Header.Get("X-Localserved-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	resp2, body2 := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if got := resp2.Header.Get("X-Localserved-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached body differs from computed body")
	}
	// A different seed is a distinct key and re-executes.
	resp3, _ := postSpec(t, ts.Client(), ts.URL+"/run?seed=2", req)
	if got := resp3.Header.Get("X-Localserved-Cache"); got != "miss" {
		t.Fatal("distinct seed served from cache")
	}
	// The other format of an already-executed (spec, seed) is served from
	// the cache: one execution fills both format entries.
	resp4, jsonBody := postSpec(t, ts.Client(), ts.URL+"/run?format=json", req)
	if got := resp4.Header.Get("X-Localserved-Cache"); got != "hit" {
		t.Fatalf("json format after md execution missed: %q", got)
	}
	if !bytes.Contains(jsonBody, []byte(`"generated_by": "cmd/localserved"`)) {
		t.Fatalf("json body malformed:\n%s", jsonBody)
	}
	// Whitespace-insensitive keying: a reformatted body of the same spec hits.
	reformatted := append(bytes.TrimSpace(req), '\n', '\n')
	resp5, _ := postSpec(t, ts.Client(), ts.URL+"/run", reformatted)
	if got := resp5.Header.Get("X-Localserved-Cache"); got != "hit" {
		t.Fatalf("canonicalized key missed: %q", got)
	}
	m := s.Snapshot()
	if m.ResponsesCached != 3 || m.Cache.Hits != 3 || m.Cache.Misses != 2 {
		t.Fatalf("cache metrics off: %+v", m)
	}
}

// TestServeBadRequests table-drives the 4xx surface.
func TestServeBadRequests(t *testing.T) {
	good := readTestdata(t, "mis_request.json")
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 4096}))
	defer ts.Close()

	for _, tc := range []struct {
		name, url, body string
		want            int
	}{
		{"malformed json", "/run", "{not json", http.StatusBadRequest},
		{"unknown field", "/run", `{"name":"x","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"},"typo_field":1}`, http.StatusBadRequest},
		{"unknown algorithm", "/run", `{"name":"x","graph":{"family":"cycle","n":64},"algorithm":{"name":"no-such-algo"}}`, http.StatusBadRequest},
		{"bad family params", "/run", `{"name":"x","graph":{"family":"cycle","n":1},"algorithm":{"name":"luby-mis"}}`, http.StatusBadRequest},
		{"bad seed", "/run?seed=abc", string(good), http.StatusBadRequest},
		{"bad format", "/run?format=xml", string(good), http.StatusBadRequest},
		{"oversized body", "/run", string(good) + strings.Repeat(" ", 5000), http.StatusRequestEntityTooLarge},
	} {
		resp, body := postSpec(t, ts.Client(), ts.URL+tc.url, []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	// Wrong method on /run.
	resp, err := ts.Client().Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}

// TestServeRequestLimits checks the per-request work bounds: a spec that
// would commission a huge graph or an enormous job grid is refused with 400
// before anything is built, and a client-chosen max_rounds the algorithm
// outlives is a 422, not a 500.
func TestServeRequestLimits(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		want       int
		errSubstr  string
	}{
		{
			name: "too many nodes",
			body: `{"name":"big","graph":{"family":"gnp","n":100000000,"p":0.0000001,"seed":1},"algorithm":{"name":"luby-mis"}}`,
			want: http.StatusBadRequest, errSubstr: "per-request limit",
		},
		{
			name: "quadratic family over the edge bound",
			body: `{"name":"dense","graph":{"family":"clique","n":50000},"algorithm":{"name":"luby-mis"}}`,
			want: http.StatusBadRequest, errSubstr: "edges exceeds",
		},
		{
			name: "job grid explosion",
			body: `{"name":"grid","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"},"seeds":[1,2,3,4,5,6,7,8,9,10],"repeat":1000}`,
			want: http.StatusBadRequest, errSubstr: "jobs",
		},
		{
			name: "node estimate must saturate, not wrap, past MaxInt",
			body: `{"name":"wrap1","graph":{"family":"grid","rows":3037000500,"cols":3037000500},"algorithm":{"name":"luby-mis"}}`,
			want: http.StatusBadRequest, errSubstr: "per-request limit",
		},
		{
			name: "job count must saturate, not wrap, past MaxInt",
			body: `{"name":"wrap2","graph":{"family":"cycle","n":64},"algorithm":{"name":"uniform-mis-delta"},"baseline":{"name":"nonuniform-mis-delta"},"repeat":4611686018427387904}`,
			want: http.StatusBadRequest, errSubstr: "jobs",
		},
		{
			name: "max_rounds the algorithm outlives is the client's doing",
			body: `{"name":"short","graph":{"family":"cycle","n":256},"ids":{"regime":"dense","seed":3},"algorithm":{"name":"uniform-mis-delta"},"max_rounds":4}`,
			want: http.StatusUnprocessableEntity, errSubstr: "max rounds exceeded",
		},
	} {
		resp, body := postSpec(t, ts.Client(), ts.URL+"/run", []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if !strings.Contains(string(body), tc.errSubstr) {
			t.Errorf("%s: body missing %q:\n%s", tc.name, tc.errSubstr, body)
		}
	}
	// Client-induced problems never count as server failures.
	if m := ts.Config.Handler.(*Server).Snapshot(); m.Failed != 0 {
		t.Fatalf("failed counter = %d after client errors", m.Failed)
	}
}

// TestServeHealthzAndDrain checks the drain contract: healthz flips to 503,
// new work is refused.
func TestServeHealthzAndDrain(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	runResp, _ := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if runResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /run = %d, want 503", runResp.StatusCode)
	}
}

// TestServeAdmissionOverflow fills the only execution slot and the (empty)
// queue, then checks the 429 overflow path.
func TestServeAdmissionOverflow(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	s := New(Config{MaxInFlight: 1, QueueDepth: -1, CacheSize: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.sem <- struct{}{} // occupy the only slot
	resp, _ := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	<-s.sem
	resp, body := postSpec(t, ts.Client(), ts.URL+"/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	if m := s.Snapshot(); m.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", m.Rejected)
	}
}

// TestServeConcurrentLoadWithCancellation is the acceptance load test: 64
// concurrent requests, a third of them disconnecting mid-batch, under -race
// in CI. All surviving responses for the same key must be byte-identical,
// and once the dust settles no goroutine may be left behind (engine worker
// pools, sweep workers and handler goroutines all drain).
func TestServeConcurrentLoadWithCancellation(t *testing.T) {
	req := readTestdata(t, "mis_request.json")
	before := runtime.NumGoroutine()

	s := New(Config{Parallel: 2, MaxInFlight: 4, QueueDepth: 128, CorpusLimit: 8})
	ts := httptest.NewServer(s)

	const clients = 64
	bodies := make([][]byte, clients)
	status := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Four distinct seeds so the response cache cannot collapse the
			// load, while same-seed requests must agree byte-for-byte.
			url := fmt.Sprintf("%s/run?seed=%d", ts.URL, 1+i%4)
			ctx := context.Background()
			if i%3 == 0 {
				// A third of the clients hang up mid-batch.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(500+i*200)*time.Microsecond)
				defer cancel()
			}
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(hr)
			if err != nil {
				status[i] = -1 // disconnected client: transport error is expected
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				status[i] = -1
				return
			}
			status[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()

	okBySeed := map[int][]byte{}
	completed := 0
	for i := 0; i < clients; i++ {
		switch status[i] {
		case http.StatusOK:
			completed++
			seed := 1 + i%4
			if prev, ok := okBySeed[seed]; ok {
				if !bytes.Equal(prev, bodies[i]) {
					t.Fatalf("two 200 responses for seed %d differ", seed)
				}
			} else {
				okBySeed[seed] = bodies[i]
			}
		case -1, statusClientClosedRequest, http.StatusGatewayTimeout, http.StatusTooManyRequests:
			// Disconnected, canceled or shed — all fine under load.
		default:
			t.Fatalf("client %d: unexpected status %d: %s", i, status[i], bodies[i])
		}
	}
	if completed == 0 {
		t.Fatal("no client completed")
	}
	// A client that hangs up early may never reach the handler, so the
	// request counter is bounded, not exact.
	m := s.Snapshot()
	if m.RequestsTotal < uint64(completed) || m.RequestsTotal > clients {
		t.Fatalf("requests_total = %d, want within [%d, %d]", m.RequestsTotal, completed, clients)
	}

	ts.CloseClientConnections()
	ts.Close()
	// Goroutine quiescence: poll until the count returns to the baseline
	// (plus slack for runtime helpers that linger).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Fatalf("in_flight = %d after quiescence", got)
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after quiescence", got)
	}
}
