package serve

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/unilocal/unilocal/internal/scenario"
)

// TestSlotsDocMatchesDeterministicDoc pins the crash-recovery JSON path to
// the synchronous serving path: a document reassembled from shard slot
// outcomes via scenario.SlotsDoc (what the job manager writes to its spool
// after a resume) must be byte-identical to the DeterministicDoc the server
// renders for an uninterrupted whole-grid run of the same spec. If either
// side gains or scrubs a field, this fails before the job-durability CI gate
// does.
func TestSlotsDocMatchesDeterministicDoc(t *testing.T) {
	spec, err := scenario.Parse(shardTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	const seed = int64(3)
	plan, err := scenario.PlanOf(spec, seed-1)
	if err != nil {
		t.Fatal(err)
	}

	// Whole-grid path, exactly as POST /run?format=json renders it.
	out, err := Execute([]*scenario.Spec{spec}, ExecOptions{SeedOffset: seed - 1})
	if err != nil {
		t.Fatal(err)
	}
	fullDoc, err := DeterministicDoc(out, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(fullDoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	// Sharded path, exactly as the job manager executes and reassembles.
	exec := New(Config{}).ShardExecutor()
	const shards = 3
	slots := make([]scenario.SlotOutcome, plan.Jobs())
	filled := make([]bool, plan.Jobs())
	var info scenario.GraphInfo
	for i := 0; i < shards; i++ {
		gi, outs, err := exec(context.Background(), spec, seed, scenario.Shard{Index: i, Count: shards}, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if i == 0 {
			info = gi
		} else if gi != info {
			t.Fatalf("shard %d graph %+v != shard 0 graph %+v", i, gi, info)
		}
		for _, so := range outs {
			if filled[so.Slot] {
				t.Fatalf("slot %d delivered twice", so.Slot)
			}
			filled[so.Slot] = true
			slots[so.Slot] = so
		}
	}
	for i, ok := range filled {
		if !ok {
			t.Fatalf("slot %d never delivered", i)
		}
	}
	slotsDoc, err := scenario.SlotsDoc(plan, info, slots, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(slotsDoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("SlotsDoc diverges from DeterministicDoc:\n got: %s\nwant: %s", got, want)
	}
}
