// Package benchfmt declares the BENCH.json schema shared by its writer
// (cmd/localbench) and its guard (cmd/benchguard), so the two cannot drift
// apart silently: a field added or renamed here is marshalled and compared
// by both sides, and the schema tables in EXPERIMENTS.md document exactly
// these types.
package benchfmt

// SchemaVersion is the current BENCH.json schema version. Version 3 added
// the optional corpus cold/warm block (CorpusBench); version 2 switched
// Allocs to the scheduler's per-worker counters.
const SchemaVersion = 3

// Record is one measured simulation.
type Record struct {
	Experiment string `json:"experiment"`
	Label      string `json:"label"`
	Algorithm  string `json:"algorithm"`
	N          int    `json:"n"`
	Rounds     int    `json:"rounds"`
	Messages   int64  `json:"messages"`
	WallNs     int64  `json:"wall_ns"`
	// Allocs counts the run's engine-buffer allocations from the scheduler's
	// per-worker RunState counters (schema 1 reported a global
	// runtime.MemStats delta, which misattributed concurrent allocations and
	// GC noise). Deterministic at parallel 1 — the setting the committed
	// BENCH.json is generated with; under a parallel sweep the job→worker
	// assignment is timing-dependent, so warm/cold placement may vary.
	Allocs uint64 `json:"allocs"`
	// Ratio is uniform rounds / non-uniform rounds, on uniform records only.
	Ratio float64 `json:"ratio,omitempty"`
}

// SweepStats is the batch-throughput block: the run-level throughput of the
// whole invocation, tracked across PRs.
type SweepStats struct {
	Jobs         int     `json:"jobs"`
	Workers      int     `json:"workers"`
	WallNs       int64   `json:"wall_ns"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	EngineAllocs uint64  `json:"engine_allocs"`
}

// CorpusBench is the two-tier graph-corpus measurement: how long the
// largest benchmarked family takes to generate from scratch (cold) versus
// loading its content-addressed CSR image from the disk tier (warm,
// mmap-backed where the platform supports it). Family, N, Edges and
// ImageBytes are deterministic in the seed and guarded by cmd/benchguard;
// the wall times track the disk tier's speedup across PRs but are
// machine-dependent and never gated.
type CorpusBench struct {
	Family     string  `json:"family"`
	N          int     `json:"n"`
	Edges      int     `json:"edges"`
	ImageBytes int64   `json:"image_bytes"`
	ColdNs     int64   `json:"cold_ns"`
	WarmNs     int64   `json:"warm_ns"`
	Speedup    float64 `json:"speedup"`
}

// Doc is the top-level BENCH.json document.
type Doc struct {
	SchemaVersion int        `json:"schema_version"`
	GeneratedBy   string     `json:"generated_by"`
	Seed          int64      `json:"seed"`
	Parallel      int        `json:"parallel"`
	Workers       int        `json:"workers"`
	Large         bool       `json:"large"`
	Sweep         SweepStats `json:"sweep"`
	// Corpus is the disk-tier cold/warm measurement; absent when the run
	// skipped it (schema ≤ 2 files, or -json without a measurable family).
	Corpus  *CorpusBench `json:"corpus,omitempty"`
	Results []Record     `json:"results"`
}
