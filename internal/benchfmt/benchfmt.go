// Package benchfmt declares the BENCH.json schema shared by its writer
// (cmd/localbench) and its guard (cmd/benchguard), so the two cannot drift
// apart silently: a field added or renamed here is marshalled and compared
// by both sides, and the schema tables in EXPERIMENTS.md document exactly
// these types.
package benchfmt

// SchemaVersion is the current BENCH.json schema version. Version 4 added
// the instruction-budget trend: per-record node-steps and the Instr block
// (deterministic steps-per-job plus the machine-dependent ns/step trend
// benchguard pins); version 3 added the optional corpus cold/warm block
// (CorpusBench); version 2 switched Allocs to the scheduler's per-worker
// counters.
const SchemaVersion = 4

// Record is one measured simulation.
type Record struct {
	Experiment string `json:"experiment"`
	Label      string `json:"label"`
	Algorithm  string `json:"algorithm"`
	N          int    `json:"n"`
	Rounds     int    `json:"rounds"`
	Messages   int64  `json:"messages"`
	WallNs     int64  `json:"wall_ns"`
	// Allocs counts the run's engine-buffer allocations from the scheduler's
	// per-worker RunState counters (schema 1 reported a global
	// runtime.MemStats delta, which misattributed concurrent allocations and
	// GC noise). Deterministic at parallel 1 — the setting the committed
	// BENCH.json is generated with; under a parallel sweep the job→worker
	// assignment is timing-dependent, so warm/cold placement may vary.
	Allocs uint64 `json:"allocs"`
	// Steps is the run's total node-steps (Σ per-round live-frontier sizes)
	// — the engine's deterministic work measure, identical at any worker
	// count and pinned by benchguard like rounds and messages. Zero (and
	// omitted) in documents that scrub machine-independent work metrics,
	// such as the scenario corpus's deterministic view.
	Steps int64 `json:"steps,omitempty"`
	// Ratio is uniform rounds / non-uniform rounds, on uniform records only.
	Ratio float64 `json:"ratio,omitempty"`
}

// SweepStats is the batch-throughput block: the run-level throughput of the
// whole invocation, tracked across PRs.
type SweepStats struct {
	Jobs         int     `json:"jobs"`
	Workers      int     `json:"workers"`
	WallNs       int64   `json:"wall_ns"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	EngineAllocs uint64  `json:"engine_allocs"`
}

// InstrStats is the schema-v4 instruction-budget block: the sweep's total
// engine work in node-steps and the derived trend rates. NodeSteps,
// StepsPerJob and FrontierOccupancy are pure functions of (graphs,
// algorithms, seeds) — benchguard requires them byte-equal across
// regenerations. NsPerStep (sweep wall time over node-steps) is the
// machine-dependent instruction-cost trend: benchguard normalizes it by the
// same machine factor as the pinned wall gates and fails CI on >20%
// regressions, printing the trend line either way so wins are visible too.
type InstrStats struct {
	NodeSteps         int64   `json:"node_steps"`
	StepsPerJob       float64 `json:"steps_per_job"`
	NsPerStep         float64 `json:"ns_per_step"`
	FrontierOccupancy float64 `json:"frontier_occupancy"`
}

// CorpusBench is the two-tier graph-corpus measurement: how long the
// largest benchmarked family takes to generate from scratch (cold) versus
// loading its content-addressed CSR image from the disk tier (warm,
// mmap-backed where the platform supports it). Family, N, Edges and
// ImageBytes are deterministic in the seed and guarded by cmd/benchguard;
// the wall times track the disk tier's speedup across PRs but are
// machine-dependent and never gated.
type CorpusBench struct {
	Family     string  `json:"family"`
	N          int     `json:"n"`
	Edges      int     `json:"edges"`
	ImageBytes int64   `json:"image_bytes"`
	ColdNs     int64   `json:"cold_ns"`
	WarmNs     int64   `json:"warm_ns"`
	Speedup    float64 `json:"speedup"`
}

// Doc is the top-level BENCH.json document.
type Doc struct {
	SchemaVersion int        `json:"schema_version"`
	GeneratedBy   string     `json:"generated_by"`
	Seed          int64      `json:"seed"`
	Parallel      int        `json:"parallel"`
	Workers       int        `json:"workers"`
	Large         bool       `json:"large"`
	Sweep         SweepStats `json:"sweep"`
	// Instr is the instruction-budget block (schema ≥ 4); absent in
	// documents whose records carry no step counts.
	Instr *InstrStats `json:"instr,omitempty"`
	// Corpus is the disk-tier cold/warm measurement; absent when the run
	// skipped it (schema ≤ 2 files, or -json without a measurable family).
	Corpus  *CorpusBench `json:"corpus,omitempty"`
	Results []Record     `json:"results"`
}
