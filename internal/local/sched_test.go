package local_test

// Adversarial-scheduler determinism tests: the staggered wake-up and the
// frontier permutation are pure functions of their seeds — byte-identical at
// every worker count and reproducible run to run — and the permutation is
// provably invisible in results (the two message lanes make frontier order
// unobservable), while the wake-up skew is observable by design.

import (
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/local"
)

func TestStaggeredWakeupDeterministicAcrossWorkers(t *testing.T) {
	for gname, g := range testGraphs(t) {
		a := local.StaggeredWakeup(waveAlgo(4, 3), 7, 8)
		want, err := local.Run(g, a, local.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for _, w := range workerCounts() {
			got, err := local.Run(g, a, local.Options{Seed: 1, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", gname, w, err)
			}
			sameResult(t, gname, want, got)
		}
		// Reproducible run to run from the same seeds.
		again, err := local.Run(g, a, local.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, gname+" replay", want, again)
	}
}

// TestStaggeredWakeupObservable pins that the skew is a real adversary, not
// a no-op: delayed wake-ups stretch the execution relative to lockstep, and
// a different scheduler seed yields a different (but individually
// deterministic) schedule.
func TestStaggeredWakeupObservable(t *testing.T) {
	g := testGraphs(t)["random"]
	base, err := local.Run(g, waveAlgo(4, 3), local.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	skew7, err := local.Run(g, local.StaggeredWakeup(waveAlgo(4, 3), 7, 8), local.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if skew7.Rounds <= base.Rounds {
		t.Errorf("staggered run took %d rounds, lockstep %d: the skew is invisible", skew7.Rounds, base.Rounds)
	}
	skew8, err := local.Run(g, local.StaggeredWakeup(waveAlgo(4, 3), 8, 8), local.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(skew7.HaltRounds, skew8.HaltRounds) {
		t.Error("two scheduler seeds produced identical halt schedules")
	}
}

// TestStaggeredWakeupZeroDelayIsIdentity pins the fast path: a non-positive
// delay bound returns the algorithm unchanged, not a degenerate wrapper.
func TestStaggeredWakeupZeroDelayIsIdentity(t *testing.T) {
	a := &struct{ local.Algorithm }{waveAlgo(2, 1)}
	if got := local.StaggeredWakeup(a, 7, 0); got != local.Algorithm(a) {
		t.Error("maxDelay=0 did not return the algorithm unchanged")
	}
}

// TestPermuteInvisibleInResults checks the engine-design theorem the
// permuted scheduler leans on: sends land in the next round's lane, so the
// order nodes step within one round cannot affect any result field. A
// permuted run must be identical to lockstep — at every worker count.
func TestPermuteInvisibleInResults(t *testing.T) {
	for gname, g := range testGraphs(t) {
		want, err := local.Run(g, waveAlgo(4, 3), local.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for _, w := range workerCounts() {
			got, err := local.Run(g, waveAlgo(4, 3), local.Options{
				Seed: 1, Workers: w, Permute: &local.Permute{Seed: 9},
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", gname, w, err)
			}
			sameResult(t, gname, want, got)
		}
	}
}
