package local

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"github.com/unilocal/unilocal/internal/graph"
)

// DefaultMaxRounds is the safety cap on simulated rounds; exceeding it means
// the algorithm failed to terminate (for a correct transformer this implies
// a broken running-time bound, which the cap surfaces as an error instead of
// an endless loop).
const DefaultMaxRounds = 1 << 21

// ErrMaxRounds reports that a simulation was cut off before all nodes
// terminated.
var ErrMaxRounds = errors.New("local: max rounds exceeded before termination")

// ErrCanceled reports that a simulation was stopped by its context before all
// nodes terminated. The returned error also wraps the context's own error, so
// errors.Is works against both ErrCanceled and context.Canceled /
// context.DeadlineExceeded.
var ErrCanceled = errors.New("local: run canceled")

// Options configures a simulation run. The zero value selects defaults:
// seed 0, DefaultMaxRounds, parallel execution across GOMAXPROCS workers.
type Options struct {
	// Seed drives all node randomness deterministically.
	Seed int64
	// MaxRounds caps the simulation; 0 means DefaultMaxRounds.
	MaxRounds int
	// Context, when non-nil, stops the simulation early: the engine checks it
	// once per round (between rounds, never mid-round, so a run that is not
	// stopped stays byte-identical to an uncancelled one) and returns an error
	// wrapping ErrCanceled and the context's error. nil means run to
	// completion.
	Context context.Context
	// Sequential forces single-threaded execution. Results are identical to
	// parallel execution; this is exercised by tests and useful for tracing.
	Sequential bool
	// Workers overrides the worker count for parallel execution; 0 means
	// GOMAXPROCS.
	Workers int
	// State optionally supplies a reusable engine state (see RunState). If
	// nil, Run recycles one from an internal size-bucketed pool. A non-nil
	// State must not be used by two Runs concurrently; results are
	// byte-identical either way.
	State *RunState
	// Permute, when non-nil, steps each round's frontier in a seeded
	// pseudo-random order instead of ascending node order — the adversarial
	// message-delivery permutation of the synchronous model. A round's sends
	// are invisible until the next round (the two message lanes), so results
	// are byte-identical to the lockstep order at any worker count; what the
	// permutation diversifies is the memory-access and worker-partition
	// order, which the determinism tests pin.
	Permute *Permute
}

// Result reports the outcome of a simulation.
type Result struct {
	// Outputs holds each node's final output, indexed like the graph.
	Outputs []any
	// HaltRounds[u] is the 0-based round index in which node u terminated.
	HaltRounds []int
	// Rounds is the running time of the execution: the number of rounds
	// until every node had terminated (max HaltRounds + 1).
	Rounds int
	// Messages is the total number of (non-nil) messages delivered.
	Messages int64
}

// workerTally accumulates one worker's round statistics. It is padded to a
// cache line so the per-message counters of different workers never share a
// line (the per-node counter array of the previous engine caused false
// sharing on every delivery).
type workerTally struct {
	msgs int64
	err  error
	_    [40]byte
}

// job is one round's work assignment for a pooled worker: the round number
// and the frontier slice of node indices to step.
type job struct {
	r     int
	items []int32
}

// Run simulates algorithm a on graph g until every node has terminated and
// returns the outputs and round statistics. All nodes wake up simultaneously
// at round 0, per the paper's Section 2 reduction (non-simultaneous wake-up
// is handled by Compose/WithWakeup, which are themselves Algorithms).
//
// The engine keeps an explicit frontier of live nodes, so a round costs
// O(live nodes + messages) rather than O(n); messages travel through two
// flat lanes of 2|E| slots indexed by the graph's dense directed-edge
// numbering (graph.AdjOffset), and parallel execution reuses a persistent
// worker pool with one channel hand-off per worker per round. Sequential
// and parallel runs produce byte-identical Results for any worker count.
func Run(g *graph.Graph, a Algorithm, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Sequential || workers > n {
		workers = 1
	}

	// Every per-run buffer below lives in a RunState: resliced, selectively
	// cleared and reused across runs instead of reallocated (see runstate.go).
	// Only haltRounds and outputs are built fresh — they escape into the
	// returned Result and must survive the state's next reuse.
	lanes := 2 * g.NumEdges()
	st := opts.State
	if st == nil {
		st = AcquireRunState(n, g.NumEdges())
		defer st.Release()
	}
	st.prepare(n, lanes, workers)
	st.lanesDirty = true
	states := st.states
	halted := st.halted
	haltRounds := make([]int, n)
	outputs := make([]any, n)
	// All neighbour-ID slices are carved from one flat arena (the CSR
	// layout makes the total exactly 2|E|), one allocation instead of n.
	idArena := st.idArena
	for u := 0; u < n; u++ {
		start := len(idArena)
		idArena = g.NeighborIDs(idArena, u)
		info := Info{
			ID:        g.ID(u),
			Degree:    g.Degree(u),
			Neighbors: idArena[start:len(idArena):len(idArena)],
			Rand:      DeriveRand(opts.Seed, g.ID(u), 0),
		}
		states[u] = a.New(info)
	}
	st.idArena = idArena

	// Flat message lanes: slot AdjOffset(u)+k carries the message awaiting u
	// on port k. A node clears only its own inbox slots, and only those that
	// were actually written, after reading them; slots of halted nodes are
	// never read again, so no global wipe of the lanes is ever needed during
	// a run (prepare wipes stale slots once, before the next reuse).
	inbox := st.inbox
	next := st.next

	// The frontier lists live nodes in increasing order; halting nodes are
	// compacted out after each round, so late rounds only touch live nodes.
	frontier := st.frontier
	for u := range frontier {
		frontier[u] = int32(u)
	}

	tallies := st.tallies
	step := func(w, r int, items []int32) {
		t := &tallies[w]
		sent := int64(0)
		for _, un := range items {
			u := int(un)
			off := g.AdjOffset(u)
			deg := g.Degree(u)
			recv := inbox[off : off+deg]
			send, done := states[u].Round(r, recv)
			if len(send) != 0 && len(send) != deg {
				t.err = fmt.Errorf("local: %s: node %d sent %d messages with degree %d",
					a.Name(), u, len(send), deg)
				t.msgs += sent
				return
			}
			for k := range recv {
				if recv[k] != nil {
					recv[k] = nil
				}
			}
			if len(send) != 0 {
				rev := g.ReverseEdges(u)
				for k, msg := range send {
					if msg != nil {
						next[rev[k]] = msg
						sent++
					}
				}
			}
			if done {
				halted[u] = true
				haltRounds[u] = r
				outputs[u] = states[u].Output()
			}
		}
		t.msgs += sent
	}

	// Persistent pool: workers-1 goroutines live for the whole run, each fed
	// by its own buffered channel; the coordinator steps chunk 0 itself. The
	// channel hand-off and wg.Wait form the round barrier.
	var wg sync.WaitGroup
	var pool []chan job
	if workers > 1 {
		pool = make([]chan job, workers-1)
		for i := range pool {
			ch := make(chan job, 1)
			pool[i] = ch
			go func(w int) {
				for j := range ch {
					step(w, j.r, j.items)
					wg.Done()
				}
			}(i + 1)
		}
		defer func() {
			for _, ch := range pool {
				close(ch)
			}
		}()
	}

	var permRng *rand.Rand
	if opts.Permute != nil {
		permRng = rand.New(rand.NewPCG(DeriveSeeds(opts.Seed^opts.Permute.Seed, -2, permuteStream)))
	}

	ctx := opts.Context
	for r := 0; r < maxRounds && len(frontier) > 0; r++ {
		// One cancellation check per round: server timeouts and client
		// disconnects stop a long simulation at the next round boundary
		// instead of running it to completion. Checking between rounds keeps
		// every completed run byte-identical to an uncancelled one.
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w: algorithm %q stopped after %d rounds with %d of %d nodes still running",
					ErrCanceled, ctx.Err(), a.Name(), r, len(frontier), n)
			default:
			}
		}
		if permRng != nil {
			permRng.Shuffle(len(frontier), func(i, j int) {
				frontier[i], frontier[j] = frontier[j], frontier[i]
			})
		}
		live := len(frontier)
		nw := workers
		if nw > live {
			nw = live
		}
		if nw <= 1 {
			step(0, r, frontier)
		} else {
			chunk := (live + nw - 1) / nw
			for w := 1; w*chunk < live; w++ {
				lo := w * chunk
				hi := min(lo+chunk, live)
				wg.Add(1)
				pool[w-1] <- job{r: r, items: frontier[lo:hi]}
			}
			step(0, r, frontier[:chunk])
			wg.Wait()
		}
		for w := range tallies {
			if err := tallies[w].err; err != nil {
				return nil, err
			}
		}
		inbox, next = next, inbox
		keep := 0
		for _, u := range frontier {
			if !halted[u] {
				frontier[keep] = u
				keep++
			}
		}
		frontier = frontier[:keep]
	}
	if len(frontier) > 0 {
		return nil, fmt.Errorf("%w: algorithm %q, %d of %d nodes still running after %d rounds",
			ErrMaxRounds, a.Name(), len(frontier), n, maxRounds)
	}
	res := &Result{
		Outputs:    outputs,
		HaltRounds: haltRounds,
	}
	for u := 0; u < n; u++ {
		if haltRounds[u]+1 > res.Rounds {
			res.Rounds = haltRounds[u] + 1
		}
	}
	for w := range tallies {
		res.Messages += tallies[w].msgs
	}
	return res, nil
}
