package local

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/unilocal/unilocal/internal/graph"
)

// DefaultMaxRounds is the safety cap on simulated rounds; exceeding it means
// the algorithm failed to terminate (for a correct transformer this implies
// a broken running-time bound, which the cap surfaces as an error instead of
// an endless loop).
const DefaultMaxRounds = 1 << 21

// ErrMaxRounds reports that a simulation was cut off before all nodes
// terminated.
var ErrMaxRounds = errors.New("local: max rounds exceeded before termination")

// Options configures a simulation run. The zero value selects defaults:
// seed 0, DefaultMaxRounds, parallel execution across GOMAXPROCS workers.
type Options struct {
	// Seed drives all node randomness deterministically.
	Seed int64
	// MaxRounds caps the simulation; 0 means DefaultMaxRounds.
	MaxRounds int
	// Sequential forces single-threaded execution. Results are identical to
	// parallel execution; this is exercised by tests and useful for tracing.
	Sequential bool
	// Workers overrides the worker count for parallel execution; 0 means
	// GOMAXPROCS.
	Workers int
}

// Result reports the outcome of a simulation.
type Result struct {
	// Outputs holds each node's final output, indexed like the graph.
	Outputs []any
	// HaltRounds[u] is the 0-based round index in which node u terminated.
	HaltRounds []int
	// Rounds is the running time of the execution: the number of rounds
	// until every node had terminated (max HaltRounds + 1).
	Rounds int
	// Messages is the total number of (non-nil) messages delivered.
	Messages int64
}

// Run simulates algorithm a on graph g until every node has terminated and
// returns the outputs and round statistics. All nodes wake up simultaneously
// at round 0, per the paper's Section 2 reduction (non-simultaneous wake-up
// is handled by Compose/WithWakeup, which are themselves Algorithms).
func Run(g *graph.Graph, a Algorithm, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Sequential || workers > n {
		workers = 1
	}

	states := make([]Node, n)
	inbox := make([][]Message, n)
	next := make([][]Message, n)
	halted := make([]bool, n)
	haltRounds := make([]int, n)
	msgs := make([]int64, n)
	outputs := make([]any, n)
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		info := Info{
			ID:        g.ID(u),
			Degree:    deg,
			Neighbors: g.NeighborIDs(make([]int64, 0, deg), u),
			Rand:      DeriveRand(opts.Seed, g.ID(u), 0),
		}
		states[u] = a.New(info)
		inbox[u] = make([]Message, deg)
		next[u] = make([]Message, deg)
	}

	live := n
	runErrs := make([]error, workers)
	var wg sync.WaitGroup
	for r := 0; r < maxRounds && live > 0; r++ {
		step := func(w, lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				if halted[u] {
					continue
				}
				send, done := states[u].Round(r, inbox[u])
				if len(send) != 0 && len(send) != g.Degree(u) {
					runErrs[w] = fmt.Errorf("local: %s: node %d sent %d messages with degree %d",
						a.Name(), u, len(send), g.Degree(u))
					return
				}
				for k := range inbox[u] {
					inbox[u][k] = nil
				}
				for k, msg := range send {
					if msg != nil {
						v := g.Neighbor(u, k)
						next[v][g.BackPort(u, k)] = msg
						msgs[u]++
					}
				}
				if done {
					halted[u] = true
					haltRounds[u] = r
					outputs[u] = states[u].Output()
				}
			}
		}
		if workers == 1 {
			wg.Add(1)
			step(0, 0, n)
		} else {
			chunk := (n + workers - 1) / workers
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := min(lo+chunk, n)
				if lo >= hi {
					wg.Done()
					continue
				}
				go step(w, lo, hi)
			}
		}
		wg.Wait()
		for _, err := range runErrs {
			if err != nil {
				return nil, err
			}
		}
		inbox, next = next, inbox
		live = 0
		for u := 0; u < n; u++ {
			if !halted[u] {
				live++
			}
		}
	}
	if live > 0 {
		return nil, fmt.Errorf("%w: algorithm %q, %d of %d nodes still running after %d rounds",
			ErrMaxRounds, a.Name(), live, n, maxRounds)
	}
	res := &Result{
		Outputs:    outputs,
		HaltRounds: haltRounds,
		Rounds:     0,
	}
	for u := 0; u < n; u++ {
		if haltRounds[u]+1 > res.Rounds {
			res.Rounds = haltRounds[u] + 1
		}
		res.Messages += msgs[u]
	}
	if n == 0 {
		res.Rounds = 0
	}
	return res, nil
}
