package local

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"

	"github.com/unilocal/unilocal/internal/graph"
)

// DefaultMaxRounds is the safety cap on simulated rounds; exceeding it means
// the algorithm failed to terminate (for a correct transformer this implies
// a broken running-time bound, which the cap surfaces as an error instead of
// an endless loop).
const DefaultMaxRounds = 1 << 21

// ErrMaxRounds reports that a simulation was cut off before all nodes
// terminated.
var ErrMaxRounds = errors.New("local: max rounds exceeded before termination")

// ErrCanceled reports that a simulation was stopped by its context before all
// nodes terminated. The returned error also wraps the context's own error, so
// errors.Is works against both ErrCanceled and context.Canceled /
// context.DeadlineExceeded.
var ErrCanceled = errors.New("local: run canceled")

// Options configures a simulation run. The zero value selects defaults:
// seed 0, DefaultMaxRounds, parallel execution across GOMAXPROCS workers.
type Options struct {
	// Seed drives all node randomness deterministically.
	Seed int64
	// MaxRounds caps the simulation; 0 means DefaultMaxRounds.
	MaxRounds int
	// Context, when non-nil, stops the simulation early: the engine checks it
	// once per round (between rounds, never mid-round, so a run that is not
	// stopped stays byte-identical to an uncancelled one) and returns an error
	// wrapping ErrCanceled and the context's error. nil means run to
	// completion.
	Context context.Context
	// Sequential forces single-threaded execution. Results are identical to
	// parallel execution; this is exercised by tests and useful for tracing.
	Sequential bool
	// Workers overrides the worker count for parallel execution; 0 means
	// GOMAXPROCS.
	Workers int
	// State optionally supplies a reusable engine state (see RunState). If
	// nil, Run recycles one from an internal size-bucketed pool. A non-nil
	// State must not be used by two Runs concurrently; results are
	// byte-identical either way.
	State *RunState
	// Permute, when non-nil, steps each round's frontier in a seeded
	// pseudo-random order instead of ascending node order — the adversarial
	// message-delivery permutation of the synchronous model. The permutation
	// is applied to set-bit ranks: the round's live set is materialized from
	// the frontier bitset in ascending order (member k is the rank-k live
	// node) and that rank list is shuffled. A round's sends are invisible
	// until the next round (the two message lanes), so results are
	// byte-identical to the lockstep order at any worker count; what the
	// permutation diversifies is the memory-access and worker-partition
	// order, which the determinism tests pin.
	Permute *Permute
}

// Result reports the outcome of a simulation.
type Result struct {
	// Outputs holds each node's final output, indexed like the graph.
	Outputs []any
	// HaltRounds[u] is the 0-based round index in which node u terminated.
	HaltRounds []int
	// Rounds is the running time of the execution: the number of rounds
	// until every node had terminated (max HaltRounds + 1).
	Rounds int
	// Messages is the total number of (non-nil) messages delivered.
	Messages int64
	// Steps is the total number of node-steps executed: the sum over rounds
	// of the live-frontier size. It is a deterministic, machine-independent
	// measure of the engine work a run performs (the instruction-count proxy
	// BENCH.json tracks), identical for any worker count or scheduler.
	Steps int64
}

// FrontierOccupancy returns the mean fraction of nodes live per round:
// Steps / (Rounds × n). The paper's uniform algorithms spend most rounds in
// sparse pseudo-halted tails, so low occupancy is the common steady state —
// the regime the bitset frontier representation is shaped for.
func (r *Result) FrontierOccupancy() float64 {
	slots := int64(r.Rounds) * int64(len(r.HaltRounds))
	if slots == 0 {
		return 0
	}
	return float64(r.Steps) / float64(slots)
}

// workerTally accumulates one worker's round statistics. It is padded to a
// cache line so the per-message counters of different workers never share a
// line (the per-node counter array of the previous engine caused false
// sharing on every delivery).
type workerTally struct {
	msgs int64
	err  error
	_    [40]byte
}

// job is one round's work assignment for a pooled worker: the round number
// and either an explicit node list (the permuted scheduler's shuffled
// ranks) or a word range [loW, hiW) of the frontier bitset to scan.
type job struct {
	r        int
	items    []int32
	loW, hiW int32
}

// Run simulates algorithm a on graph g until every node has terminated and
// returns the outputs and round statistics. All nodes wake up simultaneously
// at round 0, per the paper's Section 2 reduction (non-simultaneous wake-up
// is handled by Compose/WithWakeup, which are themselves Algorithms).
//
// The engine keeps the live-node frontier and the halted set as word-level
// bitsets (internal/bitset): a round scans the frontier's words with
// branch-free bit tricks (64 nodes per probe, so the long pseudo-halted
// tails of the paper's uniform algorithms cost words-scanned, not
// nodes-considered), halting nodes set their bit in the halted set, and the
// between-rounds frontier update is one and-not + popcount pass instead of
// a per-node compaction. Messages travel through two flat lanes of 2|E|
// slots indexed by the graph's dense directed-edge numbering
// (graph.AdjOffset), and parallel execution reuses a persistent worker pool
// with one channel hand-off per worker per round; parallel rounds partition
// the frontier into popcount-balanced word ranges, so workers never share a
// word and each owns a contiguous slice of the lanes' locality. Sequential
// and parallel runs produce byte-identical Results for any worker count.
func Run(g *graph.Graph, a Algorithm, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Sequential || workers > n {
		workers = 1
	}

	// Every per-run buffer below lives in a RunState: resliced, selectively
	// cleared and reused across runs instead of reallocated (see runstate.go).
	// Only haltRounds and outputs are built fresh — they escape into the
	// returned Result and must survive the state's next reuse.
	lanes := 2 * g.NumEdges()
	st := opts.State
	if st == nil {
		st = AcquireRunState(n, g.NumEdges())
		defer st.Release()
	}
	st.prepare(n, lanes, workers)
	st.lanesDirty = true
	states := st.states
	halted := &st.halted
	active := &st.active
	haltRounds := make([]int, n)
	outputs := make([]any, n)
	// All neighbour-ID slices are carved from one flat arena (the CSR
	// layout makes the total exactly 2|E|), one allocation instead of n.
	idArena := st.idArena
	for u := 0; u < n; u++ {
		start := len(idArena)
		idArena = g.NeighborIDs(idArena, u)
		info := Info{
			ID:        g.ID(u),
			Degree:    g.Degree(u),
			Neighbors: idArena[start:len(idArena):len(idArena)],
			Rand:      DeriveRand(opts.Seed, g.ID(u), 0),
		}
		states[u] = a.New(info)
	}
	st.idArena = idArena

	// Flat message lanes: slot AdjOffset(u)+k carries the message awaiting u
	// on port k. A node clears only its own inbox slots after reading them
	// (one batched memclr per inbox window, a cache-line-wide wipe instead
	// of a branch per port); slots of halted nodes are never read again, so
	// no global wipe of the lanes is ever needed during a run (prepare wipes
	// stale slots once, before the next reuse).
	inbox := st.inbox
	next := st.next

	// The frontier bitset holds the live nodes; all n are live at wake-up.
	// Halts recorded during a round go to the halted bitset — atomically
	// when workers can share a word — and are folded into the frontier
	// between rounds, so the frontier is immutable while a round is stepped.
	activeWords := active.Words()
	numWords := int32(len(activeWords))
	atomicHalt := workers > 1

	tallies := st.tallies
	// stepNode advances one live node one round; the returned count is the
	// node's sent messages, accumulated per driver so the shared tally is
	// written once per hand-off, not once per delivery.
	stepNode := func(t *workerTally, r, u int) int64 {
		off := g.AdjOffset(u)
		deg := g.Degree(u)
		recv := inbox[off : off+deg]
		send, done := states[u].Round(r, recv)
		if len(send) != 0 && len(send) != deg {
			t.err = fmt.Errorf("local: %s: node %d sent %d messages with degree %d",
				a.Name(), u, len(send), deg)
			return 0
		}
		// Clear only the slots that were actually written: in the sparse
		// steady state a live node usually received nothing, and skipping
		// the store keeps its inbox's cache lines clean instead of dirtying
		// 16 bytes per port per round (an unconditional clear measurably
		// regresses the long-tail benchmarks).
		for k := range recv {
			if recv[k] != nil {
				recv[k] = nil
			}
		}
		sent := int64(0)
		if len(send) != 0 {
			rev := g.ReverseEdges(u)
			for k, msg := range send {
				if msg != nil {
					next[rev[k]] = msg
					sent++
				}
			}
		}
		if done {
			if atomicHalt {
				halted.AddAtomic(u)
			} else {
				halted.Add(u)
			}
			haltRounds[u] = r
			outputs[u] = states[u].Output()
		}
		return sent
	}
	// stepWords walks the frontier's set bits over a word range — the
	// lockstep hot loop: one TZCNT per live node, 64 absent nodes skipped
	// per zero-word probe.
	stepWords := func(w, r int, loW, hiW int32) {
		t := &tallies[w]
		sent := int64(0)
		for wi := loW; wi < hiW; wi++ {
			for bw := activeWords[wi]; bw != 0; bw &= bw - 1 {
				sent += stepNode(t, r, int(wi)<<6+bits.TrailingZeros64(bw))
				if t.err != nil {
					t.msgs += sent
					return
				}
			}
		}
		t.msgs += sent
	}
	// stepList steps an explicit node list — the permuted scheduler's
	// shuffled ranks, where nodes of one word may land on different workers
	// (hence the atomic halt recording).
	stepList := func(w, r int, items []int32) {
		t := &tallies[w]
		sent := int64(0)
		for _, un := range items {
			sent += stepNode(t, r, int(un))
			if t.err != nil {
				break
			}
		}
		t.msgs += sent
	}

	// Persistent pool: workers-1 goroutines live for the whole run, each fed
	// by its own buffered channel; the coordinator steps the first partition
	// itself. The channel hand-off and wg.Wait form the round barrier.
	var wg sync.WaitGroup
	var pool []chan job
	if workers > 1 {
		pool = make([]chan job, workers-1)
		for i := range pool {
			ch := make(chan job, 1)
			pool[i] = ch
			go func(w int) {
				for j := range ch {
					if j.items != nil {
						stepList(w, j.r, j.items)
					} else {
						stepWords(w, j.r, j.loW, j.hiW)
					}
					wg.Done()
				}
			}(i + 1)
		}
		defer func() {
			for _, ch := range pool {
				close(ch)
			}
		}()
	}

	var permRng *rand.Rand
	if opts.Permute != nil {
		permRng = rand.New(rand.NewPCG(DeriveSeeds(opts.Seed^opts.Permute.Seed, -2, permuteStream)))
	}

	ctx := opts.Context
	live := n
	var steps int64
	for r := 0; r < maxRounds && live > 0; r++ {
		// One cancellation check per round: server timeouts and client
		// disconnects stop a long simulation at the next round boundary
		// instead of running it to completion. Checking between rounds keeps
		// every completed run byte-identical to an uncancelled one.
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w: algorithm %q stopped after %d rounds with %d of %d nodes still running",
					ErrCanceled, ctx.Err(), a.Name(), r, live, n)
			default:
			}
		}
		nw := workers
		if nw > live {
			nw = live
		}
		if permRng != nil {
			// Rank-based adversarial permutation: materialize the frontier's
			// members in ascending order and shuffle the rank list.
			ranks := active.AppendSet(st.permScratch(n))
			st.perm = ranks
			permRng.Shuffle(len(ranks), func(i, j int) {
				ranks[i], ranks[j] = ranks[j], ranks[i]
			})
			if nw <= 1 {
				stepList(0, r, ranks)
			} else {
				chunk := (live + nw - 1) / nw
				for w := 1; w*chunk < live; w++ {
					lo := w * chunk
					hi := min(lo+chunk, live)
					wg.Add(1)
					pool[w-1] <- job{r: r, items: ranks[lo:hi]}
				}
				stepList(0, r, ranks[:chunk])
				wg.Wait()
			}
		} else if nw <= 1 {
			stepWords(0, r, 0, numWords)
		} else {
			// Popcount-balanced partition: cut the word array into at most
			// nw contiguous ranges carrying ~live/nw frontier members each.
			// Word granularity means no two workers ever touch the same
			// halted word, and each worker's lane traffic stays contiguous.
			target := (live + nw - 1) / nw
			cuts := st.cuts[:0]
			acc, goal := 0, target
			for wi := int32(0); wi < numWords && len(cuts) < nw-1; wi++ {
				acc += bits.OnesCount64(activeWords[wi])
				if acc >= goal {
					cuts = append(cuts, wi+1)
					goal += target
				}
			}
			st.cuts = cuts
			lo := int32(0)
			for i, hi := range cuts {
				if i > 0 {
					wg.Add(1)
					pool[i-1] <- job{r: r, loW: lo, hiW: hi}
				}
				lo = hi
			}
			if len(cuts) > 0 {
				wg.Add(1)
				pool[len(cuts)-1] <- job{r: r, loW: lo, hiW: numWords}
				stepWords(0, r, 0, cuts[0])
			} else {
				stepWords(0, r, 0, numWords)
			}
			wg.Wait()
		}
		for w := range tallies {
			if err := tallies[w].err; err != nil {
				return nil, err
			}
		}
		inbox, next = next, inbox
		steps += int64(live)
		// Fold this round's halts into the frontier: one word-wise and-not +
		// popcount pass replaces the per-node compaction loop.
		live = active.AndNotCount(halted)
	}
	if live > 0 {
		return nil, fmt.Errorf("%w: algorithm %q, %d of %d nodes still running after %d rounds",
			ErrMaxRounds, a.Name(), live, n, maxRounds)
	}
	res := &Result{
		Outputs:    outputs,
		HaltRounds: haltRounds,
		Steps:      steps,
	}
	for u := 0; u < n; u++ {
		if haltRounds[u]+1 > res.Rounds {
			res.Rounds = haltRounds[u] + 1
		}
	}
	for w := range tallies {
		res.Messages += tallies[w].msgs
	}
	return res, nil
}
