package local

import (
	"math/bits"
	"sync"

	"github.com/unilocal/unilocal/internal/bitset"
)

// RunState holds every per-run buffer the simulation engine needs: the node
// state-machine slice, the halted and frontier bitsets, the neighbour-identity
// arena, the two flat message lanes, the per-worker tallies and the parallel-
// partition scratch. Extracting them from Run makes warm runs on same-shaped
// graphs near-zero-alloc: a state is prepared (resliced and selectively
// cleared, never reallocated) instead of built from scratch, and Run recycles
// states through an internal size-bucketed pool when the caller does not
// supply one.
//
// The zero value is ready to use. A RunState may be reused across any number
// of sequential Runs on graphs of any shape (buffers grow as needed and
// persist), but it must never be shared by two concurrent Runs. Results are
// byte-identical to fresh-state runs for every reuse pattern and worker
// count; TestRunStatePooledReuseByteIdentical enforces this differentially.
//
// Buffers that escape into the returned Result (Outputs, HaltRounds) are
// deliberately NOT part of the state: a Result stays valid after its
// RunState is reused or released.
type RunState struct {
	states  []Node
	idArena []int64
	inbox   []Message
	next    []Message
	tallies []workerTally

	// halted and active are the engine's two word-level node sets: active is
	// the round's live frontier (read-only while a round is stepped), halted
	// collects the round's terminations and is folded into active between
	// rounds (bitset.Set.AndNotCount). Both are n/64 words — their growth is
	// word-granular and tracked by the Reset/Fill grew results, never inferred
	// from the n-sized buffers' class math (a pooled state can grow its
	// n-sized buffers without crossing a word boundary, and vice versa).
	halted bitset.Set
	active bitset.Set
	// perm is the adversarial permutation scratch: the frontier's members
	// materialized by rank, then shuffled. Lazily grown — lockstep runs never
	// allocate it.
	perm []int32
	// cuts holds the popcount-balanced word-partition boundaries of a
	// parallel round (at most workers-1 entries).
	cuts []int32

	// lanesDirty records that inbox/next may hold stale messages from a
	// previous run (slots of halted nodes are never cleared during a run, see
	// engine.go), so prepare must wipe them before the lanes are trusted.
	lanesDirty bool
	// lanesHigh is the lane count of the previous run — the exact bound of
	// the possibly-dirty region. It is reset to the current run's lanes by
	// every prepare (everything beyond is clean by then), so a small run
	// after a large one wipes O(its own lanes), not O(largest ever).
	lanesHigh int
	// allocs counts the buffer allocations this state has performed. Warm
	// runs leave it unchanged; the sweep scheduler reads per-run deltas from
	// it as a deterministic, concurrency-safe allocation metric.
	allocs uint64
}

// Allocs returns the cumulative number of engine-buffer allocations this
// state has performed. The counter is deterministic (no GC or cross-goroutine
// noise): a run on a shape the state has already seen adds zero.
func (s *RunState) Allocs() uint64 { return s.allocs }

// prepare sizes every buffer for a run on n nodes, lanes directed edges and
// the given worker count, clearing exactly the per-run data that must not
// leak between runs (halt bits, the frontier, stale lane slots, tallies).
func (s *RunState) prepare(n, lanes, workers int) {
	if cap(s.states) < n {
		s.states = make([]Node, n)
		s.allocs++
	} else {
		// Every slot [0, n) is overwritten by the wake-up loop; stale Node
		// pointers beyond n were cleared on release (pool path) or keep the
		// previous run's nodes alive only until the next larger run (explicit
		// reuse), which matches the old one-allocation-per-run lifetime.
		s.states = s.states[:n]
	}
	// The bitsets clear (or fill) exactly their WordsFor(n) live window;
	// words past it stay stale until a larger run resizes into them. Their
	// growth is counted from what actually grew: across a release/acquire
	// cycle an n-sized buffer can grow while the word count stands still
	// (n 120 → 128 keeps 2 words) or stays inside one size class while the
	// word count grows, so charging them alongside the n-sized buffers
	// would make the alloc counter shape-dependent in the wrong dimension.
	if s.halted.Reset(n) {
		s.allocs++
	}
	if s.active.Fill(n) {
		s.allocs++
	}
	if cap(s.idArena) < lanes {
		s.idArena = make([]int64, 0, lanes)
		s.allocs++
	} else {
		s.idArena = s.idArena[:0]
	}
	if cap(s.inbox) < lanes {
		s.inbox = make([]Message, lanes)
		s.next = make([]Message, lanes)
		s.allocs += 2
		s.lanesDirty = false
	} else {
		s.inbox = s.inbox[:lanes]
		s.next = s.next[:lanes]
		if s.lanesDirty {
			// Wipe the union of the previous run's dirty region and this
			// run's window (reslicing past len up to cap is what bounds the
			// clear when the previous run was the larger one).
			high := max(s.lanesHigh, lanes)
			clear(s.inbox[:high])
			clear(s.next[:high])
			s.lanesDirty = false
		}
	}
	// Every slot beyond lanes is clean now — freshly allocated, just wiped,
	// or never dirtied — and the coming run writes only [0, lanes).
	s.lanesHigh = lanes
	if workers > 1 && cap(s.cuts) < workers {
		s.cuts = make([]int32, 0, workers)
		s.allocs++
	}
	if cap(s.tallies) < workers {
		s.tallies = make([]workerTally, workers)
		s.allocs++
	} else {
		s.tallies = s.tallies[:workers]
		for w := range s.tallies {
			s.tallies[w] = workerTally{}
		}
	}
}

// permScratch returns the permutation scratch resliced to length zero with
// capacity for n ranks, growing it on first use (only the permuted scheduler
// pays for it).
func (s *RunState) permScratch(n int) []int32 {
	if cap(s.perm) < n {
		s.perm = make([]int32, 0, n)
		s.allocs++
	}
	return s.perm[:0]
}

// runStatePools buckets reusable states by the power-of-two class of their
// dominant dimension (nodes + lane slots), so a warm Run on a same-shaped
// graph pops a state whose buffers already fit and never grows them, while
// wildly different shapes never evict each other's buffers. The bitsets ride
// along: their word capacity is derived from the same node dimension
// (WordsFor is monotone in n), so a state whose states buffer fits a shape
// can at worst grow one word tail — they contribute growth accounting (see
// prepare) but never a class dimension.
var runStatePools [bits.UintSize + 1]sync.Pool

func stateSizeClass(n, lanes int) int { return bits.Len(uint(n + lanes)) }

// AcquireRunState fetches a reusable engine state for a graph with n nodes
// and edges edges from the internal size-bucketed pool (allocating an empty
// one on pool miss). Callers that drive many whole simulations — the sweep
// scheduler's workers — hold one state per goroutine and pass it via
// Options.State; everyone else can ignore this: Run pools automatically when
// Options.State is nil.
func AcquireRunState(n, edges int) *RunState {
	if st, _ := runStatePools[stateSizeClass(n, 2*edges)].Get().(*RunState); st != nil {
		return st
	}
	return &RunState{}
}

// Release returns the state to the pool it is bucketed in by its current
// capacity — deliberately not the shape it was acquired under: a sweep
// worker's state grows to the largest job it ever ran, and re-bucketing on
// every Release keeps the pool's size classes truthful (a class never holds
// a state smaller than its label implies; the grow-then-release regression
// tests pin this). The caller must not use the state afterwards; Results
// produced with it remain valid (they never alias pooled memory).
func (s *RunState) Release() {
	// Drop the node state machines and the lane contents so the pool doesn't
	// pin a dead run's algorithm state or final message values — a released
	// state may sit in the pool for a whole GC cycle. This is the same wipe
	// prepare would do lazily, just paid up front.
	clear(s.states[:cap(s.states)])
	if s.lanesDirty {
		clear(s.inbox)
		clear(s.next)
		s.lanesDirty = false
		s.lanesHigh = 0
	}
	runStatePools[stateSizeClass(cap(s.states), cap(s.inbox))].Put(s)
}
