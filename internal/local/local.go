// Package local implements the LOCAL model of distributed computing used by
// Korman–Sereni–Viennot: a synchronous, fault-free message-passing network in
// which every node runs the same algorithm, messages have unbounded size and
// local computation is free. The complexity measure is the number of rounds.
//
// An Algorithm is instantiated into one Node state machine per graph vertex.
// Computation proceeds in global lockstep rounds driven by Run; each node may
// terminate individually ("writes its final output value in its designated
// output variable", Section 2 of the paper), and the running time of an
// execution is the latest termination round over all nodes.
//
// The package also provides the paper's Section 2 composition machinery:
// Compose chains algorithms A1;A2;... under non-simultaneous local wake-up
// using the α-synchronizer, establishing Observation 2.1 (the running time of
// A1;A2 is at most the sum of the running times).
package local

import (
	"math/rand/v2"

	"github.com/unilocal/unilocal/internal/mathutil"
)

// Message is an arbitrary immutable value exchanged between neighbours in
// one round. Receivers must not modify messages: a broadcast delivers the
// same value to every neighbour.
type Message = any

// Info is the static knowledge available to a node at wake-up: its own
// identity and input, its degree, the identities of its neighbours in port
// order (the standard one-round "KT1" convenience), and a private
// deterministic randomness source.
//
// The Neighbors slice is borrowed from engine-owned storage that is recycled
// across runs: it stays valid (and immutable) for the lifetime of the run
// that created the node, but must not be retained past it — in particular,
// a value returned from Output must not alias it (copy the identities
// instead), or the Result would mutate when the engine state is reused.
type Info struct {
	ID        int64
	Degree    int
	Neighbors []int64
	Input     any
	Rand      *rand.Rand
}

// NeighborPort returns the port of the neighbour with the given identity, or
// -1 if no such neighbour exists.
func (in *Info) NeighborPort(id int64) int {
	for p, x := range in.Neighbors {
		if x == id {
			return p
		}
	}
	return -1
}

// Node is the per-node state machine of a distributed algorithm.
//
// Round is called once per synchronous round, starting at r = 0. recv[p]
// holds the message sent in the previous round by the neighbour on port p,
// or nil if it sent nothing (or has terminated); at r = 0 all entries are
// nil. The returned send slice is either empty/nil (silence) or has exactly
// Degree entries, send[p] being delivered to port p next round. Returning
// done = true terminates the node: its final messages are still delivered,
// afterwards Round is never called again and Output must return the node's
// final output.
//
// Both slices are borrowed, not owned: recv is only valid for the duration
// of the call, and the caller consumes the returned send slice before the
// next Round call, so implementations may reuse one backing array for their
// sends round after round. The Message values themselves may be retained and
// must stay immutable once sent.
//
// Output may also be consulted by a wrapper *before* termination — the
// paper's "algorithm restricted to i rounds" takes whatever tentative output
// is present when the budget expires — so implementations should always
// return their current best value (nil is acceptable and treated as an
// arbitrary output by pruning algorithms).
type Node interface {
	Round(r int, recv []Message) (send []Message, done bool)
	Output() any
}

// Algorithm creates the per-node state machines of a distributed algorithm.
// Implementations must be safe for concurrent calls to New, and the Node
// they return is driven by a single goroutine at a time.
type Algorithm interface {
	Name() string
	New(info Info) Node
}

// Broadcast returns a send slice delivering msg to every one of deg ports.
func Broadcast(msg Message, deg int) []Message {
	if deg == 0 {
		return nil
	}
	send := make([]Message, deg)
	for i := range send {
		send[i] = msg
	}
	return send
}

// Silence is the empty send slice.
func Silence() []Message { return nil }

// DeriveRand returns a deterministic child RNG for stream i of the given
// parent-less identity; Run uses it to seed per-node randomness and nested
// simulations (lifts, transformer iterations) use it for per-incarnation
// streams.
func DeriveRand(seed int64, id int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(DeriveSeeds(seed, id, stream)))
}

// DeriveSeeds returns the PCG seed pair DeriveRand would use, so hosts that
// run one child per stage or window can reseed a pooled generator in place
// instead of allocating a fresh one per incarnation.
func DeriveSeeds(seed int64, id int64, stream uint64) (uint64, uint64) {
	s1 := mathutil.SplitMix64(uint64(seed) ^ mathutil.SplitMix64(uint64(id)))
	s2 := mathutil.SplitMix64(s1 ^ mathutil.SplitMix64(stream+0x1234_5678_9abc_def0))
	return s1, s2
}

// AlgorithmFunc adapts a New function into an Algorithm.
type AlgorithmFunc struct {
	AlgoName string
	NewNode  func(info Info) Node
}

// Name implements Algorithm.
func (a AlgorithmFunc) Name() string { return a.AlgoName }

// New implements Algorithm.
func (a AlgorithmFunc) New(info Info) Node { return a.NewNode(info) }

var _ Algorithm = AlgorithmFunc{}
