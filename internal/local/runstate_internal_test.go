package local

// White-box regression tests for RunState pool bucketing. The invariant
// under audit: a state whose buffers grew after Acquire must be returned to
// the pool class matching its *current* capacities, so a future Acquire for
// the grown shape finds it and a future Acquire for the original shape can
// never be handed a state the pool believes is bigger than it is.

import (
	"testing"

	"github.com/unilocal/unilocal/internal/bitset"
)

// TestRunStateGrowThenReleaseClass pins the pure bucketing math: after a
// state acquired for a small shape grows on a much larger graph, the class
// Release computes from its current capacities equals the class
// AcquireRunState computes for the larger shape — not the class the state
// was originally acquired under.
func TestRunStateGrowThenReleaseClass(t *testing.T) {
	const (
		smallN, smallEdges = 16, 16
		bigN, bigEdges     = 4096, 8192
	)
	st := &RunState{}
	st.prepare(smallN, 2*smallEdges, 1)
	smallClass := stateSizeClass(smallN, 2*smallEdges)
	if got := stateSizeClass(cap(st.states), cap(st.inbox)); got != smallClass {
		t.Fatalf("fresh small state buckets to class %d, acquire looks in %d", got, smallClass)
	}

	st.prepare(bigN, 2*bigEdges, 4) // the growth a sweep worker causes when a bigger job lands on it
	grownClass := stateSizeClass(cap(st.states), cap(st.inbox))
	bigAcquire := stateSizeClass(bigN, 2*bigEdges)
	if grownClass != bigAcquire {
		t.Fatalf("grown state buckets to class %d, Acquire(%d, %d) looks in %d",
			grownClass, bigN, bigEdges, bigAcquire)
	}
	if grownClass == smallClass {
		t.Fatal("test shapes collapsed into one size class; pick sizes further apart")
	}
}

// TestRunStateGrowThenReleaseRoundtrip drives the real pool: grow a state,
// Release it, and require that an Acquire for the grown shape gets a state
// whose buffers already fit (so no pooled state is ever handed out
// undersized relative to its class, and warm big-shape runs stay
// zero-alloc). The released state's capacities are checked directly on the
// reacquired instance.
func TestRunStateGrowThenReleaseRoundtrip(t *testing.T) {
	const (
		smallN, smallEdges = 16, 16
		bigN, bigEdges     = 4096, 8192
	)
	// Drain anything earlier tests parked in the target class so the Get
	// below observes this test's Release rather than a leftover.
	class := stateSizeClass(bigN, 2*bigEdges)
	for runStatePools[class].Get() != nil {
	}

	st := AcquireRunState(smallN, smallEdges)
	st.prepare(smallN, 2*smallEdges, 1)
	st.prepare(bigN, 2*bigEdges, 2)
	st.Release()

	got := AcquireRunState(bigN, bigEdges)
	if got != st {
		// A concurrent GC may have swept the pool; the class math test above
		// still guards the invariant deterministically.
		t.Skipf("pool did not return the released state (GC swept it); skipping capacity check")
	}
	if cap(got.states) < bigN || cap(got.inbox) < 2*bigEdges || cap(got.next) < 2*bigEdges {
		t.Fatalf("reacquired state undersized for its class: states %d/%d, lanes %d/%d",
			cap(got.states), bigN, cap(got.inbox), 2*bigEdges)
	}
	got.Release()
}

// TestRunStateWordBoundaryAccounting pins the bitset dimension of the alloc
// accounting (ISSUE 10 satellite): the n/64-sized word arrays grow on their
// own schedule, not the n-sized buffers', so prepare must charge them only
// when a word boundary is actually crossed. A grow-then-release cycle that
// crosses an n-sized capacity but stays inside the same word count (120 →
// 128 nodes, 2 words either way) must not count a bitset allocation, and a
// one-bit step over a word boundary (128 → 129) must count exactly the two
// sets' growth while the other buffers are charged independently.
func TestRunStateWordBoundaryAccounting(t *testing.T) {
	// reclaim pulls st back out of the pool right after its Release, so the
	// test can keep driving the same instance through release cycles without
	// another Acquire racing it away (states other tests parked in the class
	// are discarded; a GC-swept pool leaves st unpooled, which is also fine).
	reclaim := func(st *RunState) {
		class := stateSizeClass(cap(st.states), cap(st.inbox))
		for {
			got, _ := runStatePools[class].Get().(*RunState)
			if got == nil || got == st {
				return
			}
		}
	}
	const lanes = 64
	st := &RunState{}
	st.prepare(120, lanes, 1)
	if got, want := len(st.active.Words()), bitset.WordsFor(120); got != want {
		t.Fatalf("active sized to %d words, want %d", got, want)
	}

	// Release/re-prepare inside the same word count: states grows (cap 120 <
	// 128) but both bitsets already hold 2 words — zero bitset allocations.
	st.Release()
	reclaim(st)
	before := st.Allocs()
	st.prepare(128, lanes, 1)
	// states grew; idArena/lanes/tallies fit; bitsets must not have grown.
	if got := st.Allocs() - before; got != 1 {
		t.Errorf("prepare(120→128): %d allocations, want 1 (states only; bitsets hold 2 words)", got)
	}
	if got := len(st.active.Words()); got != 2 {
		t.Errorf("active holds %d words after n=128, want 2", got)
	}

	// One bit across the word boundary: both bitsets grow to 3 words, states
	// grows too — exactly 3 allocations, and the fresh third word must not
	// leak stale frontier bits (Fill masks the tail, Reset clears the window).
	st.Release()
	reclaim(st)
	before = st.Allocs()
	st.prepare(129, lanes, 1)
	if got := st.Allocs() - before; got != 3 {
		t.Errorf("prepare(128→129): %d allocations, want 3 (states + halted + active)", got)
	}
	if got := st.active.Count(); got != 129 {
		t.Errorf("active frontier holds %d members after Fill(129), want 129", got)
	}
	if got := st.halted.Count(); got != 0 {
		t.Errorf("halted set holds %d members after Reset(129), want 0", got)
	}

	// Warm re-prepare on the same shape: no growth anywhere.
	st.Release()
	reclaim(st)
	before = st.Allocs()
	st.prepare(129, lanes, 1)
	if got := st.Allocs() - before; got != 0 {
		t.Errorf("warm prepare(129): %d allocations, want 0", got)
	}
}
