package local

// White-box regression tests for RunState pool bucketing. The invariant
// under audit: a state whose buffers grew after Acquire must be returned to
// the pool class matching its *current* capacities, so a future Acquire for
// the grown shape finds it and a future Acquire for the original shape can
// never be handed a state the pool believes is bigger than it is.

import (
	"testing"
)

// TestRunStateGrowThenReleaseClass pins the pure bucketing math: after a
// state acquired for a small shape grows on a much larger graph, the class
// Release computes from its current capacities equals the class
// AcquireRunState computes for the larger shape — not the class the state
// was originally acquired under.
func TestRunStateGrowThenReleaseClass(t *testing.T) {
	const (
		smallN, smallEdges = 16, 16
		bigN, bigEdges     = 4096, 8192
	)
	st := &RunState{}
	st.prepare(smallN, 2*smallEdges, 1)
	smallClass := stateSizeClass(smallN, 2*smallEdges)
	if got := stateSizeClass(cap(st.states), cap(st.inbox)); got != smallClass {
		t.Fatalf("fresh small state buckets to class %d, acquire looks in %d", got, smallClass)
	}

	st.prepare(bigN, 2*bigEdges, 4) // the growth a sweep worker causes when a bigger job lands on it
	grownClass := stateSizeClass(cap(st.states), cap(st.inbox))
	bigAcquire := stateSizeClass(bigN, 2*bigEdges)
	if grownClass != bigAcquire {
		t.Fatalf("grown state buckets to class %d, Acquire(%d, %d) looks in %d",
			grownClass, bigN, bigEdges, bigAcquire)
	}
	if grownClass == smallClass {
		t.Fatal("test shapes collapsed into one size class; pick sizes further apart")
	}
}

// TestRunStateGrowThenReleaseRoundtrip drives the real pool: grow a state,
// Release it, and require that an Acquire for the grown shape gets a state
// whose buffers already fit (so no pooled state is ever handed out
// undersized relative to its class, and warm big-shape runs stay
// zero-alloc). The released state's capacities are checked directly on the
// reacquired instance.
func TestRunStateGrowThenReleaseRoundtrip(t *testing.T) {
	const (
		smallN, smallEdges = 16, 16
		bigN, bigEdges     = 4096, 8192
	)
	// Drain anything earlier tests parked in the target class so the Get
	// below observes this test's Release rather than a leftover.
	class := stateSizeClass(bigN, 2*bigEdges)
	for runStatePools[class].Get() != nil {
	}

	st := AcquireRunState(smallN, smallEdges)
	st.prepare(smallN, 2*smallEdges, 1)
	st.prepare(bigN, 2*bigEdges, 2)
	st.Release()

	got := AcquireRunState(bigN, bigEdges)
	if got != st {
		// A concurrent GC may have swept the pool; the class math test above
		// still guards the invariant deterministically.
		t.Skipf("pool did not return the released state (GC swept it); skipping capacity check")
	}
	if cap(got.states) < bigN || cap(got.inbox) < 2*bigEdges || cap(got.next) < 2*bigEdges {
		t.Fatalf("reacquired state undersized for its class: states %d/%d, lanes %d/%d",
			cap(got.states), bigN, cap(got.inbox), 2*bigEdges)
	}
	got.Release()
}
