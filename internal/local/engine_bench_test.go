package local_test

// Microbenchmarks for the simulation engine hot path, exercising the two
// regimes the rearchitecture targets:
//
//   - LongTail: a thin frontier of nodes survives for many rounds after the
//     bulk of the graph has halted. The frontier + persistent-pool engine
//     must only touch live nodes, so late rounds are nearly free.
//   - DenseShort: every node is live and chatty for every round, the
//     worst case for frontier bookkeeping. The rearchitecture must not
//     regress here.
//
// Each workload is also run against runLegacy (the pre-refactor per-round
// goroutine fan-out engine, frozen in engine_legacy_test.go) so the speedup
// is measurable in-repo: go test -bench=BenchmarkEngine ./internal/local.

import (
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// tailAlgo halts most nodes within a handful of rounds while a sparse subset
// (one in survivorStride) stays live and broadcasting until tailRounds.
func tailAlgo(tailRounds, survivorStride int) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("tail-%d", tailRounds),
		NewNode: func(info local.Info) local.Node {
			haltAt := 2 + int(info.ID)%8
			if int(info.ID)%survivorStride == 0 {
				haltAt = tailRounds
			}
			return &tailNode{info: info, haltAt: haltAt}
		},
	}
}

type tailNode struct {
	info   local.Info
	haltAt int
}

func (n *tailNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r >= n.haltAt {
		return nil, true
	}
	// Survivors are mostly quiet (the realistic long-tail shape: stalled
	// synchronizer stages, pruning waits) but chirp periodically so the
	// message lanes stay exercised throughout the tail.
	if r&31 == 0 {
		return local.Broadcast(r, n.info.Degree), false
	}
	return nil, false
}

func (n *tailNode) Output() any { return n.haltAt }

// denseAlgo keeps every node live and broadcasting for exactly rounds rounds.
func denseAlgo(rounds int) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("dense-%d", rounds),
		NewNode: func(info local.Info) local.Node {
			return &denseNode{info: info, rounds: rounds}
		},
	}
}

type denseNode struct {
	info   local.Info
	rounds int
	acc    int
}

func (n *denseNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if v, ok := m.(int); ok {
			n.acc += v
		}
	}
	if r+1 >= n.rounds {
		return nil, true
	}
	return local.Broadcast(r, n.info.Degree), false
}

func (n *denseNode) Output() any { return n.acc }

type runner struct {
	name string
	run  func(*graph.Graph, local.Algorithm, local.Options) (*local.Result, error)
}

func engineRunners() []runner {
	return []runner{
		{"engine", local.Run},
		{"legacy", runLegacy},
	}
}

func benchWorkload(b *testing.B, g *graph.Graph, a local.Algorithm, opts local.Options) {
	for _, eng := range engineRunners() {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := eng.run(g, a, opts)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkEngineLongTail is the headline frontier workload: 4096 nodes,
// ~64 survivors running for 768 rounds after everyone else halted by round 9.
func BenchmarkEngineLongTail(b *testing.B) {
	g, err := graph.GNP(4096, 8/4095.0, 11)
	if err != nil {
		b.Fatal(err)
	}
	a := tailAlgo(768, 64)
	b.Run("parallel", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1}) })
	b.Run("sequential", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1, Sequential: true}) })
}

// BenchmarkEngineLongTailPath is the same regime on a bounded-degree
// topology, where per-round overhead (not message volume) dominates.
func BenchmarkEngineLongTailPath(b *testing.B) {
	g := graph.Path(8192)
	a := tailAlgo(512, 128)
	b.Run("parallel", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1}) })
	b.Run("sequential", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1, Sequential: true}) })
}

// BenchmarkEngineDenseShort keeps all nodes live and broadcasting on a
// denser graph for a short run: the no-regression guard for the frontier
// and flat-lane machinery.
func BenchmarkEngineDenseShort(b *testing.B) {
	g, err := graph.GNP(2048, 16/2047.0, 7)
	if err != nil {
		b.Fatal(err)
	}
	a := denseAlgo(24)
	b.Run("parallel", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1}) })
	b.Run("sequential", func(b *testing.B) { benchWorkload(b, g, a, local.Options{Seed: 1, Sequential: true}) })
}
