package local

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/graph"
)

// TestComposeObservation21Property is the property-test form of
// Observation 2.1: for random graphs, random stage lengths and random
// wake-up delays, the composed running time never exceeds the sum of the
// stage times plus the wake-up horizon (with the +1-per-stage hand-off
// slack of the synchronizer).
func TestComposeObservation21Property(t *testing.T) {
	f := func(seed int64, s1, s2, s3 uint8, dmax uint8) bool {
		g, err := graph.GNP(40, 0.1, seed)
		if err != nil {
			return false
		}
		k1, k2, k3 := int(s1%9)+1, int(s2%9)+1, int(s3%9)+1
		horizon := int(dmax%13) + 1
		rng := rand.New(rand.NewPCG(uint64(seed), 99))
		delays := make(map[int64]int, g.N())
		maxDelay := 0
		for u := 0; u < g.N(); u++ {
			d := rng.IntN(horizon)
			delays[g.ID(u)] = d
			if d > maxDelay {
				maxDelay = d
			}
		}
		comp := WithWakeup(
			Compose("three", Stage{Algo: idleFor(k1)}, Stage{Algo: idleFor(k2)}, Stage{Algo: idleFor(k3)}),
			func(id int64) int { return delays[id] },
		)
		res, err := Run(g, comp, Options{Seed: seed})
		if err != nil {
			return false
		}
		// Sleep stage takes maxDelay+1 rounds; each composed stage hands off
		// within its own budget under lockstep wake-ups.
		bound := (maxDelay + 1) + k1 + k2 + k3
		return res.Rounds <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestComposeDeepPipeline chains many message-sensitive stages: each stage
// floods from the minimum identity and verifies distances, so any
// misalignment of per-stage rounds surfaces as a wrong output.
func TestComposeDeepPipeline(t *testing.T) {
	g := graph.Caterpillar(12, 1)
	stages := make([]Stage, 0, 6)
	for i := 0; i < 6; i++ {
		stages = append(stages, Stage{
			Algo: flood,
			// Every stage starts fresh from the original input.
			MakeInput: func(orig, _ any) any { return orig },
		})
	}
	comp := WithWakeup(Compose("deep", stages...), func(id int64) int { return int(id) % 5 })
	res, err := Run(g, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := g.IndexOfID(1)
	want := graph.BFSDistances(g, src)
	for u := 0; u < g.N(); u++ {
		if res.Outputs[u] != want[u] {
			t.Fatalf("node %d: stage-6 flood distance %v, want %d", u, res.Outputs[u], want[u])
		}
	}
}

// TestComposeBufferingBoundedLead checks that a node racing many rounds
// ahead of a slow neighbour (long sleep) still delivers: buffered messages
// must survive until the laggard consumes them.
func TestComposeBufferingBoundedLead(t *testing.T) {
	// A path where one end sleeps for a long time.
	g := graph.Path(6)
	comp := WithWakeup(idExchange, func(id int64) int {
		if id == 1 {
			return 40
		}
		return 0
	})
	res, err := Run(g, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u, o := range res.Outputs {
		if o != true {
			t.Fatalf("node %d saw misaligned messages with a 40-round laggard", u)
		}
	}
	if res.Rounds < 40 {
		t.Fatalf("run finished before the laggard woke (%d rounds)", res.Rounds)
	}
}

// TestRestrictInsideCompose exercises restriction as a composed stage: the
// first stage is truncated mid-flood, the second stage must still run
// cleanly on the (arbitrary) truncated outputs.
func TestRestrictInsideCompose(t *testing.T) {
	g := graph.Path(10)
	comp := Compose("truncated-then-full",
		Stage{Algo: RestrictRounds(flood, 3)},
		Stage{Algo: flood, MakeInput: func(orig, _ any) any { return orig }},
	)
	res, err := Run(g, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if res.Outputs[u] != u {
			t.Fatalf("node %d: %v, want %d", u, res.Outputs[u], u)
		}
	}
}
