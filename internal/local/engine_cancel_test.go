package local_test

// Engine cancellation tests: Options.Context must stop a run at a round
// boundary with an error wrapping both local.ErrCanceled and the context's
// own error, and a context that never fires must leave the run byte-identical
// to an uncancelled one.

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// neverHalt is an algorithm that runs forever: the only way out is MaxRounds
// or cancellation.
func neverHalt() local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "never-halt",
		NewNode:  func(local.Info) local.Node { return neverNode{} },
	}
}

type neverNode struct{}

func (neverNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, false }
func (neverNode) Output() any                                        { return nil }

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := local.Run(graph.Star(32), waveAlgo(5, 3), local.Options{Seed: 1, Context: ctx})
	if res != nil {
		t.Fatalf("canceled run returned a Result: %+v", res)
	}
	if !errors.Is(err, local.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want it to wrap context.Canceled", err)
	}
}

func TestRunCanceledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	// Without cancellation this run would spin until DefaultMaxRounds.
	_, err := local.Run(graph.Path(64), neverHalt(), local.Options{Seed: 1, Context: ctx})
	if !errors.Is(err, local.ErrCanceled) || errors.Is(err, local.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrCanceled (not ErrMaxRounds)", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := local.Run(graph.Path(64), neverHalt(), local.Options{Seed: 1, Context: ctx})
	if !errors.Is(err, local.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestRunUnfiredContextByteIdentical pins that merely carrying a context does
// not perturb results: the check sits between rounds and never reorders work.
func TestRunUnfiredContextByteIdentical(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, w := range workerCounts() {
			plain, err := local.Run(g, waveAlgo(6, 2), local.Options{Seed: 7, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			withCtx, err := local.Run(g, waveAlgo(6, 2), local.Options{Seed: 7, Workers: w, Context: context.Background()})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, gname+"/ctx", plain, withCtx)
		}
	}
}
