package local

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
)

// idExchange broadcasts the node's identity and checks that the messages
// received on each port match Info.Neighbors; it outputs true on success.
type idExchangeNode struct {
	info Info
	ok   bool
}

func (n *idExchangeNode) Round(r int, recv []Message) ([]Message, bool) {
	switch r {
	case 0:
		return Broadcast(n.info.ID, n.info.Degree), false
	default:
		n.ok = true
		for p, m := range recv {
			id, isInt := m.(int64)
			if !isInt || id != n.info.Neighbors[p] {
				n.ok = false
			}
		}
		return nil, true
	}
}

func (n *idExchangeNode) Output() any { return n.ok }

var idExchange = AlgorithmFunc{
	AlgoName: "id-exchange",
	NewNode:  func(info Info) Node { return &idExchangeNode{info: info} },
}

func TestRunRoutesMessagesByPort(t *testing.T) {
	for _, build := range []func() *graph.Graph{
		func() *graph.Graph { return graph.Grid(4, 5) },
		func() *graph.Graph { return graph.Complete(6) },
		func() *graph.Graph { return graph.Star(8) },
		func() *graph.Graph { g, _ := graph.GNP(60, 0.1, 5); return g },
	} {
		g := build()
		res, err := Run(g, idExchange, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for u, o := range res.Outputs {
			if o != true {
				t.Fatalf("node %d saw mismatched neighbour ids", u)
			}
		}
		if res.Rounds != 2 {
			t.Errorf("rounds = %d, want 2", res.Rounds)
		}
		if res.Messages != int64(2*g.NumEdges()) {
			t.Errorf("messages = %d, want %d", res.Messages, 2*g.NumEdges())
		}
	}
}

// flood computes BFS distance from the node with identity 1.
type floodNode struct {
	info Info
	dist int
}

func (n *floodNode) Round(r int, recv []Message) ([]Message, bool) {
	if r == 0 {
		n.dist = -1
		if n.info.ID == 1 {
			n.dist = 0
			return Broadcast(0, n.info.Degree), false
		}
		return nil, false
	}
	if n.dist >= 0 {
		return nil, true
	}
	for _, m := range recv {
		if d, ok := m.(int); ok {
			n.dist = d + 1
			return Broadcast(n.dist, n.info.Degree), false
		}
	}
	return nil, false
}

func (n *floodNode) Output() any { return n.dist }

var flood = AlgorithmFunc{
	AlgoName: "flood",
	NewNode:  func(info Info) Node { return &floodNode{info: info} },
}

func TestRunFloodDistances(t *testing.T) {
	g := graph.Path(10) // node 0 has identity 1
	res, err := Run(g, flood, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if res.Outputs[u] != u {
			t.Errorf("node %d distance = %v, want %d", u, res.Outputs[u], u)
		}
	}
	// Per-node halt rounds grow with distance.
	if res.HaltRounds[9] <= res.HaltRounds[1] {
		t.Errorf("halt rounds not increasing along the path: %v", res.HaltRounds)
	}
}

// randomOutput exercises per-node determinism: each node outputs a few draws
// from its private RNG.
var randomOutput = AlgorithmFunc{
	AlgoName: "random-output",
	NewNode: func(info Info) Node {
		return &randomOutputNode{info: info}
	},
}

type randomOutputNode struct {
	info Info
	vals [3]uint64
}

func (n *randomOutputNode) Round(r int, _ []Message) ([]Message, bool) {
	for i := range n.vals {
		n.vals[i] = n.info.Rand.Uint64()
	}
	return nil, true
}

func (n *randomOutputNode) Output() any { return n.vals }

func TestRunDeterministicAcrossSchedulers(t *testing.T) {
	g, err := graph.GNP(300, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(g, randomOutput, Options{Seed: 42, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, randomOutput, Options{Seed: 42, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
		t.Fatal("sequential and parallel runs disagree")
	}
	other, err := Run(g, randomOutput, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(seq.Outputs, other.Outputs) {
		t.Fatal("different seeds produced identical randomness")
	}
}

func TestRunRejectsBadSendSize(t *testing.T) {
	bad := AlgorithmFunc{
		AlgoName: "bad-send",
		NewNode: func(info Info) Node {
			return roundFunc(func(r int, _ []Message) ([]Message, bool) {
				return make([]Message, info.Degree+1), true
			})
		},
	}
	g := graph.Path(3)
	if _, err := Run(g, bad, Options{}); err == nil {
		t.Fatal("oversized send not rejected")
	}
}

// roundFunc adapts a function into a Node with nil output.
type roundFunc func(r int, recv []Message) ([]Message, bool)

func (f roundFunc) Round(r int, recv []Message) ([]Message, bool) { return f(r, recv) }
func (f roundFunc) Output() any                                   { return nil }

func TestRunMaxRounds(t *testing.T) {
	forever := AlgorithmFunc{
		AlgoName: "forever",
		NewNode: func(info Info) Node {
			return roundFunc(func(int, []Message) ([]Message, bool) { return nil, false })
		},
	}
	_, err := Run(graph.Path(2), forever, Options{MaxRounds: 50})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res, err := Run(graph.Empty(0), idExchange, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.Outputs) != 0 {
		t.Fatalf("empty graph: rounds=%d outputs=%d", res.Rounds, len(res.Outputs))
	}
}

// idleFor runs for exactly k rounds, then outputs k.
func idleFor(k int) Algorithm {
	return AlgorithmFunc{
		AlgoName: fmt.Sprintf("idle-%d", k),
		NewNode: func(info Info) Node {
			n := &idleNode{k: k}
			return n
		},
	}
}

type idleNode struct{ k int }

func (n *idleNode) Round(r int, _ []Message) ([]Message, bool) { return nil, r+1 >= n.k }
func (n *idleNode) Output() any                                { return n.k }

func TestComposeRunsStagesInOrder(t *testing.T) {
	g := graph.Grid(3, 3)
	comp := Compose("pipeline", Stage{Algo: idleFor(3)}, Stage{Algo: idleFor(5)})
	res, err := Run(g, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Observation 2.1: composed time <= sum of stage times (all synchronous
	// here, so it should be exactly 8).
	if res.Rounds != 8 {
		t.Errorf("composed rounds = %d, want 8", res.Rounds)
	}
	for u, o := range res.Outputs {
		if o != 5 {
			t.Errorf("node %d output = %v, want last stage output 5", u, o)
		}
	}
}

func TestComposeMakeInputChaining(t *testing.T) {
	// Stage 1 outputs k=2; stage 2 receives it as input and doubles it.
	doubler := AlgorithmFunc{
		AlgoName: "doubler",
		NewNode: func(info Info) Node {
			v := info.Input.(int) * 2
			return &constNode{v: v}
		},
	}
	comp := Compose("chain", Stage{Algo: idleFor(2)}, Stage{Algo: doubler})
	res, err := Run(graph.Path(4), comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outputs {
		if o != 4 {
			t.Fatalf("output = %v, want 4", o)
		}
	}
}

type constNode struct{ v any }

func (n *constNode) Round(int, []Message) ([]Message, bool) { return nil, true }
func (n *constNode) Output() any                            { return n.v }

// TestComposeSynchronizerAlignment is the crucial α-synchronizer test: under
// skewed wake-ups, a message-sensitive algorithm (id-exchange) must still see
// properly aligned per-round messages in stage 2.
func TestComposeSynchronizerAlignment(t *testing.T) {
	g, err := graph.GNP(80, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	delayed := WithWakeup(idExchange, func(id int64) int { return int(id*7) % 13 })
	res, err := Run(g, delayed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u, o := range res.Outputs {
		if o != true {
			t.Fatalf("node %d saw misaligned messages under skewed wake-up", u)
		}
	}
	// Observation 2.1 bound: total <= max delay + T(idExchange) + slack for
	// the sleep stage transition.
	maxDelay := 0
	for u := 0; u < g.N(); u++ {
		if d := int(g.ID(u)*7) % 13; d > maxDelay {
			maxDelay = d
		}
	}
	bound := maxDelay + 2 + 2
	if res.Rounds > bound {
		t.Errorf("composed rounds %d exceed Observation 2.1 bound %d", res.Rounds, bound)
	}
}

func TestComposeObservation21RandomDelays(t *testing.T) {
	g := graph.Caterpillar(10, 2)
	for seed := int64(0); seed < 5; seed++ {
		delay := func(id int64) int { return int((id*2654435761 + int64(seed)*97) % 17) }
		comp := WithWakeup(Compose("two", Stage{Algo: idleFor(4)}, Stage{Algo: flood}), delay)
		res, err := Run(g, comp, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		maxDelay := 0
		for u := 0; u < g.N(); u++ {
			if d := delay(g.ID(u)); d > maxDelay {
				maxDelay = d
			}
		}
		// Stage times: sleep <= maxDelay+1, idle = 4, flood <= diameter+2.
		diam := graph.Diameter(g)
		bound := (maxDelay + 1) + 4 + (diam + 2) + 3
		if res.Rounds > bound {
			t.Errorf("seed %d: rounds %d exceed sum-of-stages bound %d", seed, res.Rounds, bound)
		}
		// Flood must still be correct despite skew.
		for u := 0; u < g.N(); u++ {
			want := graph.BFSDistances(g, g.IndexOfID(1))[u]
			if res.Outputs[u] != want {
				t.Fatalf("seed %d: node %d distance %v, want %d", seed, u, res.Outputs[u], want)
			}
		}
	}
}

func TestRestrictRounds(t *testing.T) {
	g := graph.Path(6)
	// Restricting flood to 3 rounds leaves far nodes with tentative output.
	res, err := Run(g, RestrictRounds(flood, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Errorf("restricted rounds = %d, want 3", res.Rounds)
	}
	if res.Outputs[1] != 1 {
		t.Errorf("near node output = %v, want 1", res.Outputs[1])
	}
	if res.Outputs[5] != -1 {
		t.Errorf("far node output = %v, want tentative -1", res.Outputs[5])
	}
	// A restriction longer than the run changes nothing.
	res2, err := Run(g, RestrictRounds(flood, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if res2.Outputs[u] != u {
			t.Errorf("node %d output = %v, want %d", u, res2.Outputs[u], u)
		}
	}
	// Zero budget terminates immediately with nil outputs.
	res3, err := Run(g, RestrictRounds(flood, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rounds != 1 {
		t.Errorf("zero budget rounds = %d, want 1", res3.Rounds)
	}
}

func TestSubrunMasksPorts(t *testing.T) {
	// Host of degree 4; inner echo node sees only ports 1 and 3.
	echo := &echoNode{}
	s := NewSubrun(echo, []int{1, 3})
	recv := []Message{"a", "b", "c", "d"}
	out := s.Step(recv, 4)
	if len(out) != 4 || out[1] != "hi" || out[3] != "hi" || out[0] != nil || out[2] != nil {
		t.Fatalf("subrun scatter wrong: %v", out)
	}
	out = s.Step(recv, 4)
	if !s.Done() {
		t.Fatal("subrun should be done after round 1")
	}
	if got := s.Output().([]Message); !reflect.DeepEqual(got, []Message{"b", "d"}) {
		t.Fatalf("subrun gathered %v, want [b d]", got)
	}
	if out != nil && (out[1] != nil || out[3] != nil) {
		t.Fatalf("unexpected send after done: %v", out)
	}
}

type echoNode struct{ got []Message }

func (e *echoNode) Round(r int, recv []Message) ([]Message, bool) {
	if r == 0 {
		return []Message{"hi", "hi"}, false
	}
	e.got = append([]Message(nil), recv...)
	return nil, true
}

func (e *echoNode) Output() any { return e.got }
