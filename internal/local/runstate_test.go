package local_test

// RunState pooling tests: a state reused across runs — same shape, changed
// shape, interleaved graphs, every worker count — must produce Results
// byte-identical to fresh-state runs, and warm same-shape reuse must not
// allocate engine buffers.

import (
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// TestRunStatePooledReuseByteIdentical is the pooled-reuse differential: one
// explicit RunState driven through every (graph, algorithm, seed, workers)
// combination twice over — so every run after the first sees a dirty, reused
// state — must reproduce the fresh-state Result exactly.
func TestRunStatePooledReuseByteIdentical(t *testing.T) {
	algos := map[string]local.Algorithm{
		"waves":       waveAlgo(7, 4),
		"random-halt": randHaltAlgo(),
	}
	st := &local.RunState{}
	for pass := 0; pass < 2; pass++ {
		for gname, g := range testGraphs(t) {
			for aname, a := range algos {
				for _, seed := range []int64{0, 3} {
					fresh, err := local.Run(g, a, local.Options{Seed: seed, Sequential: true, State: &local.RunState{}})
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range workerCounts() {
						pooled, err := local.Run(g, a, local.Options{Seed: seed, Workers: w, State: st})
						if err != nil {
							t.Fatal(err)
						}
						label := gname + "/" + aname + "/pooled"
						sameResult(t, label, fresh, pooled)
					}
				}
			}
		}
	}
}

// TestRunStateResultSurvivesReuse pins the ownership contract: a Result must
// stay intact after the state that produced it runs something else.
func TestRunStateResultSurvivesReuse(t *testing.T) {
	st := &local.RunState{}
	g := graph.Star(64)
	a := waveAlgo(5, 3)
	first, err := local.Run(g, a, local.Options{Seed: 1, State: st})
	if err != nil {
		t.Fatal(err)
	}
	wantOutputs := append([]any(nil), first.Outputs...)
	wantHalts := append([]int(nil), first.HaltRounds...)
	if _, err := local.Run(graph.Path(200), randHaltAlgo(), local.Options{Seed: 9, State: st}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Outputs, wantOutputs) || !reflect.DeepEqual(first.HaltRounds, wantHalts) {
		t.Fatal("Result mutated by a later run on the same RunState")
	}
}

// TestRunStateWarmRunsDoNotGrow pins the near-zero-alloc claim at the level
// the state controls: after one cold run, repeat runs on the same shape must
// perform zero engine-buffer allocations, and the global pool path must be
// warm by the second Run.
func TestRunStateWarmRunsDoNotGrow(t *testing.T) {
	g := graph.Path(512)
	a := waveAlgo(4, 2)
	st := &local.RunState{}
	if _, err := local.Run(g, a, local.Options{Seed: 1, Sequential: true, State: st}); err != nil {
		t.Fatal(err)
	}
	cold := st.Allocs()
	if cold == 0 {
		t.Fatal("cold run reported zero buffer allocations")
	}
	for i := 0; i < 3; i++ {
		if _, err := local.Run(g, a, local.Options{Seed: int64(i), Sequential: true, State: st}); err != nil {
			t.Fatal(err)
		}
		if got := st.Allocs(); got != cold {
			t.Fatalf("warm run %d grew engine buffers: allocs %d -> %d", i, cold, got)
		}
	}
	// Acquire/Release round-trip: a released state of the right size class
	// comes back warm.
	st2 := local.AcquireRunState(g.N(), g.NumEdges())
	if _, err := local.Run(g, a, local.Options{Seed: 5, Sequential: true, State: st2}); err != nil {
		t.Fatal(err)
	}
	before := st2.Allocs()
	st2.Release()
	st3 := local.AcquireRunState(g.N(), g.NumEdges())
	if _, err := local.Run(g, a, local.Options{Seed: 6, Sequential: true, State: st3}); err != nil {
		t.Fatal(err)
	}
	if st3 == st2 && st3.Allocs() != before {
		t.Fatalf("recycled state grew on a same-shaped run: %d -> %d", before, st3.Allocs())
	}
}

// TestRunStateShapeChangesStayCorrect drives one state through alternating
// small/large shapes so stale lanes and oversized buffers from the bigger
// graph are visible to the smaller one if any reset step is missed.
func TestRunStateShapeChangesStayCorrect(t *testing.T) {
	small := graph.Star(20)
	big, err := graph.GNP(600, 0.02, 23)
	if err != nil {
		t.Fatal(err)
	}
	a := waveAlgo(6, 2)
	st := &local.RunState{}
	for i := 0; i < 3; i++ {
		for _, g := range []*graph.Graph{big, small} {
			fresh, err := local.Run(g, a, local.Options{Seed: 2, Sequential: true, State: &local.RunState{}})
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := local.Run(g, a, local.Options{Seed: 2, Workers: 3, State: st})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "shape-change", fresh, pooled)
		}
	}
}
