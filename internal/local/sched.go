package local

import "github.com/unilocal/unilocal/internal/mathutil"

// This file implements the deterministic adversarial schedulers of the
// knowledge-regime axis: seeded staggered wake-ups (on top of the paper's
// non-simultaneous wake-up machinery in compose.go) and the engine's seeded
// per-round delivery permutation (Options.Permute). Both are pure functions
// of their seeds, so scheduled runs keep the engine's determinism contract:
// byte-identical Results at any worker count, reproducible from the seed.

// StaggeredWakeup returns algorithm a under a seeded adversarial wake-up
// schedule: the node with identity id sleeps hash(seed, id) mod (maxDelay+1)
// rounds before starting a, via the α-synchronizer wake-up wrapper. The
// delays are a pure function of (seed, id) — independent of worker count and
// reproducible across processes. A maxDelay <= 0 returns a unchanged.
func StaggeredWakeup(a Algorithm, seed int64, maxDelay int) Algorithm {
	if maxDelay <= 0 {
		return a
	}
	return WithWakeup(a, func(id int64) int {
		h := mathutil.SplitMix64(uint64(seed) ^ mathutil.SplitMix64(uint64(id)))
		return int(h % uint64(maxDelay+1))
	})
}

// Permute selects the engine's adversarial per-round delivery permutation
// (see Options.Permute). The permutation is applied to set-bit ranks of the
// frontier bitset: each round the live set is materialized in ascending node
// order (rank k = the frontier's k-th member) and that rank list is shuffled,
// so the scheduler composes with the word-level frontier representation
// without ever mutating it. Output-invariance holds regardless: a round's
// sends land in the next round's lane, so the order nodes step within a
// round cannot change any Result byte (the differential tests pin this
// against the frozen legacy lockstep oracle). The zero Seed is a valid
// schedule of its own.
type Permute struct {
	// Seed drives the permutation sequence; it is mixed with the run seed,
	// so the schedule is reproducible from (run seed, permute seed) alone.
	Seed int64
}

// permuteStream separates the permutation RNG from every node RNG stream.
const permuteStream = uint64(0x5eed_5c4e_d01e_7a11)
