package local_test

// runLegacy is the pre-refactor simulation engine, frozen verbatim (modulo
// being moved outside the package) as a comparison baseline for the
// BenchmarkEngine* microbenchmarks and as a differential-testing oracle: it
// spawns a fresh set of goroutines every round, keeps per-node [][]Message
// inbox/next pairs, and rescans all n nodes twice per round regardless of
// how many are still live.

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

func runLegacy(g *graph.Graph, a local.Algorithm, opts local.Options) (*local.Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = local.DefaultMaxRounds
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Sequential || workers > n {
		workers = 1
	}

	states := make([]local.Node, n)
	inbox := make([][]local.Message, n)
	next := make([][]local.Message, n)
	halted := make([]bool, n)
	haltRounds := make([]int, n)
	msgs := make([]int64, n)
	outputs := make([]any, n)
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		info := local.Info{
			ID:        g.ID(u),
			Degree:    deg,
			Neighbors: g.NeighborIDs(make([]int64, 0, deg), u),
			Rand:      local.DeriveRand(opts.Seed, g.ID(u), 0),
		}
		states[u] = a.New(info)
		inbox[u] = make([]local.Message, deg)
		next[u] = make([]local.Message, deg)
	}

	live := n
	var steps int64
	runErrs := make([]error, workers)
	var wg sync.WaitGroup
	for r := 0; r < maxRounds && live > 0; r++ {
		steps += int64(live)
		step := func(w, lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				if halted[u] {
					continue
				}
				send, done := states[u].Round(r, inbox[u])
				if len(send) != 0 && len(send) != g.Degree(u) {
					runErrs[w] = fmt.Errorf("local: %s: node %d sent %d messages with degree %d",
						a.Name(), u, len(send), g.Degree(u))
					return
				}
				for k := range inbox[u] {
					inbox[u][k] = nil
				}
				for k, msg := range send {
					if msg != nil {
						v := g.Neighbor(u, k)
						next[v][g.BackPort(u, k)] = msg
						msgs[u]++
					}
				}
				if done {
					halted[u] = true
					haltRounds[u] = r
					outputs[u] = states[u].Output()
				}
			}
		}
		if workers == 1 {
			wg.Add(1)
			step(0, 0, n)
		} else {
			chunk := (n + workers - 1) / workers
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := min(lo+chunk, n)
				if lo >= hi {
					wg.Done()
					continue
				}
				go step(w, lo, hi)
			}
		}
		wg.Wait()
		for _, err := range runErrs {
			if err != nil {
				return nil, err
			}
		}
		inbox, next = next, inbox
		live = 0
		for u := 0; u < n; u++ {
			if !halted[u] {
				live++
			}
		}
	}
	if live > 0 {
		return nil, fmt.Errorf("%w: algorithm %q, %d of %d nodes still running after %d rounds",
			local.ErrMaxRounds, a.Name(), live, n, maxRounds)
	}
	res := &local.Result{
		Outputs:    outputs,
		HaltRounds: haltRounds,
		Rounds:     0,
		Steps:      steps,
	}
	for u := 0; u < n; u++ {
		if haltRounds[u]+1 > res.Rounds {
			res.Rounds = haltRounds[u] + 1
		}
		res.Messages += msgs[u]
	}
	if n == 0 {
		res.Rounds = 0
	}
	return res, nil
}
