package local

import "math/rand/v2"

// This file implements the Section 2 machinery of the paper: sequential
// composition A1;A2 of local algorithms under non-simultaneous wake-up via
// the α-synchronizer, plus round restriction ("the algorithm A restricted to
// i rounds") and a masked sub-execution helper shared by the transformer
// wrappers.
//
// Composition semantics. Each node executes the stages one after the other,
// advancing through per-stage local rounds. A node may execute local round t
// of stage s only once every neighbour has executed round t-1 of stage s or
// advanced past it (the α-synchronizer rule); whenever a node executes a
// step it sends an envelope carrying its position to every neighbour, so a
// blocked node always knows when to proceed. The node with the globally
// minimal position can always step, so composition never deadlocks, and the
// standard induction yields Observation 2.1: the composed running time is at
// most the sum of the stage running times.

// Stage is one algorithm in a composition.
type Stage struct {
	// Algo is the algorithm to run in this stage.
	Algo Algorithm
	// MakeInput derives this stage's node input from the node's original
	// input and the previous stage's output at this node. If nil, stage 0
	// uses the original input and later stages use the previous output.
	MakeInput func(orig, prev any) any
}

// pos is a (stage, round) position; positions are ordered lexicographically.
type pos struct{ s, t int }

func (p pos) less(q pos) bool { return p.s < q.s || (p.s == q.s && p.t < q.t) }

// composeEnv is the envelope exchanged by composed nodes. Envelopes are sent
// by pointer and a round with no payloads shares one envelope across all
// ports. Envelope storage is double-buffered by round parity instead of
// allocated per round: a receiver reads an envelope only in the round after
// it was sent, and the sender rewrites a parity's envelopes no sooner than
// two rounds after they were last sent, so the reuse is race-free (the same
// argument as the engine's two message lanes).
type composeEnv struct {
	at      pos
	payload Message
	allDone bool
}

// Compose returns the sequential composition of the given stages as a single
// algorithm (the paper's A1;A2;...;Ak). Every stage algorithm must terminate
// at every node on its own.
func Compose(name string, stages ...Stage) Algorithm {
	return AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info Info) Node {
			n := &composeNode{info: info, stages: stages}
			n.seen = make([]pos, info.Degree)
			for p := range n.seen {
				n.seen[p] = pos{-1, -1}
			}
			n.nbDone = make([]bool, info.Degree)
			n.startStage()
			return n
		},
	}
}

// bufEntry is one buffered early payload: the port it arrived on, the
// position it was sent from, and the message. The α-synchronizer keeps
// neighbours within one position of each other (plus one free step at a
// stage boundary), so a node holds only O(degree) entries at a time and a
// linear scan beats a per-port map.
type bufEntry struct {
	p   int
	at  pos
	msg Message
}

type composeNode struct {
	info   Info
	stages []Stage

	at      pos // next step to execute
	inner   Node
	prevOut any

	seen   []pos
	nbDone []bool
	buf    []bufEntry

	// innerRecv and envs are per-round scratch buffers carved from one
	// backing array, reused across rounds (the engine consumes a returned
	// send slice before the next Round call, so handing out the same array
	// every round is safe). quiet and payloadEnvs hold the envelope objects
	// themselves, double-buffered by the parity of the sending round
	// (payloadEnvs slot parity*degree+port).
	innerRecv   []Message
	envs        []Message
	quiet       [2]composeEnv
	payloadEnvs []composeEnv

	// stagePCG/stageRand are the per-stage RNG handed to the stage's inner
	// node, reseeded in place at every stage start with the seeds a fresh
	// DeriveRand would use; the previous stage's node is dead by then.
	stagePCG  rand.PCG
	stageRand *rand.Rand
}

// startStage instantiates the state machine for the current stage.
func (n *composeNode) startStage() {
	st := n.stages[n.at.s]
	input := n.info.Input
	if st.MakeInput != nil {
		input = st.MakeInput(n.info.Input, n.prevOut)
	} else if n.at.s > 0 {
		input = n.prevOut
	}
	info := n.info
	info.Input = input
	n.stagePCG.Seed(DeriveSeeds(int64(n.info.Rand.Uint64()), n.info.ID, uint64(n.at.s)))
	if n.stageRand == nil {
		n.stageRand = rand.New(&n.stagePCG)
	}
	info.Rand = n.stageRand
	n.inner = st.Algo.New(info)
}

func (n *composeNode) Round(r int, recv []Message) ([]Message, bool) {
	for p, m := range recv {
		if m == nil {
			continue
		}
		env, ok := m.(*composeEnv)
		if !ok {
			continue // foreign message; composed stages only understand envelopes
		}
		if n.seen[p].less(env.at) {
			n.seen[p] = env.at
		}
		if env.allDone {
			n.nbDone[p] = true
		}
		if env.payload != nil {
			n.buf = append(n.buf, bufEntry{p: p, at: env.at, msg: env.payload})
		}
	}
	// α-synchronizer rule: step (s,t) requires every neighbour at >= (s,t-1).
	if n.at.t > 0 {
		need := pos{n.at.s, n.at.t - 1}
		for p := range n.seen {
			if !n.nbDone[p] && n.seen[p].less(need) {
				return nil, false
			}
		}
	}
	if n.innerRecv == nil {
		scratch := make([]Message, 2*n.info.Degree)
		n.innerRecv, n.envs = scratch[:n.info.Degree:n.info.Degree], scratch[n.info.Degree:]
	}
	innerRecv := n.innerRecv
	// One batched memclr over the window (a cache-line-wide wipe) instead of
	// a bounds-checked store per port.
	clear(innerRecv)
	if n.at.t > 0 {
		key := pos{n.at.s, n.at.t - 1}
		for i := 0; i < len(n.buf); {
			if n.buf[i].at == key {
				innerRecv[n.buf[i].p] = n.buf[i].msg
				n.buf[i] = n.buf[len(n.buf)-1]
				n.buf[len(n.buf)-1] = bufEntry{}
				n.buf = n.buf[:len(n.buf)-1]
			} else {
				i++
			}
		}
	}
	send, done := n.inner.Round(n.at.t, innerRecv)
	stepped := n.at
	n.at.t++
	finished := false
	if done {
		n.prevOut = n.inner.Output()
		n.at = pos{stepped.s + 1, 0}
		if n.at.s < len(n.stages) {
			n.dropStaleBuffers(stepped.s)
			n.startStage()
		} else {
			finished = true
		}
	}
	envs := n.envs
	parity := r & 1
	// Ports without a payload share a single envelope; only payload-carrying
	// ports need their own, taken from this parity's half of the pool.
	quiet := &n.quiet[parity]
	*quiet = composeEnv{at: stepped, allDone: finished}
	for p := 0; p < n.info.Degree; p++ {
		if len(send) > 0 && send[p] != nil {
			if n.payloadEnvs == nil {
				n.payloadEnvs = make([]composeEnv, 2*n.info.Degree)
			}
			env := &n.payloadEnvs[parity*n.info.Degree+p]
			*env = composeEnv{at: stepped, payload: send[p], allDone: finished}
			envs[p] = env
		} else {
			envs[p] = quiet
		}
	}
	return envs, finished
}

// dropStaleBuffers discards buffered messages from stages <= s, which can no
// longer be consumed.
func (n *composeNode) dropStaleBuffers(s int) {
	keep := 0
	for i := range n.buf {
		if n.buf[i].at.s > s {
			n.buf[keep] = n.buf[i]
			keep++
		}
	}
	for i := keep; i < len(n.buf); i++ {
		n.buf[i] = bufEntry{}
	}
	n.buf = n.buf[:keep]
}

func (n *composeNode) Output() any { return n.prevOut }

var _ Node = (*composeNode)(nil)

// WithWakeup returns algorithm a executed under a non-simultaneous wake-up
// pattern: node with identity id stays asleep for delay(id) composed rounds
// before starting a. Sleeping nodes block their neighbours exactly as in the
// paper's asynchronous wake-up model; messages that arrive early are
// buffered by the synchronizer.
func WithWakeup(a Algorithm, delay func(id int64) int) Algorithm {
	sleeper := AlgorithmFunc{
		AlgoName: "sleep",
		NewNode: func(info Info) Node {
			return &sleepNode{remaining: delay(info.ID)}
		},
	}
	return Compose("wakeup("+a.Name()+")", Stage{Algo: sleeper}, Stage{
		Algo: a,
		// The algorithm still sees its original input, not the sleep output.
		MakeInput: func(orig, _ any) any { return orig },
	})
}

type sleepNode struct{ remaining int }

func (s *sleepNode) Round(r int, _ []Message) ([]Message, bool) {
	return nil, r >= s.remaining
}

func (s *sleepNode) Output() any { return nil }

// RestrictRounds returns algorithm a restricted to the given number of
// rounds (Section 2): after budget rounds the node terminates with whatever
// tentative output a has produced. A non-positive budget terminates
// immediately with a nil output.
func RestrictRounds(a Algorithm, budget int) Algorithm {
	return restrictRounds(a, budget, false)
}

// Truncated wraps the tentative output of a node that RestrictRoundsMarked
// force-halted: the inner algorithm had not terminated when the budget
// expired. Output is the inner node's tentative output (nil for a
// non-positive budget, where the inner node never ran a round).
type Truncated struct{ Output any }

// RestrictRoundsMarked is RestrictRounds with provenance: the outputs of
// force-halted nodes are wrapped in Truncated, while nodes whose inner
// algorithm genuinely terminated within the budget keep their plain output.
// Harnesses like cmd/localtrace use the marker to count never-halting nodes
// explicitly instead of conflating them with genuine final-round halts.
func RestrictRoundsMarked(a Algorithm, budget int) Algorithm {
	return restrictRounds(a, budget, true)
}

func restrictRounds(a Algorithm, budget int, mark bool) Algorithm {
	return AlgorithmFunc{
		AlgoName: a.Name() + "|restricted",
		NewNode: func(info Info) Node {
			return &restrictNode{inner: a.New(info), budget: budget, mark: mark}
		},
	}
}

type restrictNode struct {
	inner  Node
	budget int
	mark   bool
	done   bool
	out    any
}

func (n *restrictNode) Round(r int, recv []Message) ([]Message, bool) {
	if n.budget <= 0 {
		if n.mark {
			n.out = Truncated{}
		}
		return nil, true
	}
	var send []Message
	if !n.done {
		var innerDone bool
		send, innerDone = n.inner.Round(r, recv)
		if innerDone {
			n.done = true
			n.out = n.inner.Output()
		}
	}
	if n.done || r+1 >= n.budget {
		if !n.done {
			n.out = n.inner.Output()
			if n.mark {
				n.out = Truncated{Output: n.out}
			}
		}
		return send, true
	}
	return send, false
}

func (n *restrictNode) Output() any { return n.out }

// Subrun drives an inner Node over a masked subset of a host node's ports,
// maintaining the inner round counter. It is the building block used by the
// transformer wrappers (induced-subgraph execution) and by algorithms that
// operate on one layer of a degree partition.
type Subrun struct {
	inner  Node
	ports  []int
	t      int
	done   bool
	output any

	// recvBuf and sendBuf are reused across Step calls: the host consumes the
	// returned scatter slice within its own Round, and the inner node borrows
	// recvBuf only for the duration of its Round.
	recvBuf []Message
	sendBuf []Message
}

// NewSubrun creates a sub-execution of inner seeing only the given host
// ports (in inner-port order).
func NewSubrun(inner Node, ports []int) *Subrun {
	return &Subrun{inner: inner, ports: ports}
}

// Reset re-arms the subrun with a fresh inner node and port set, keeping
// the scratch buffers. Hosts that run one sub-execution per window (the
// alternating algorithm) reuse a single Subrun this way instead of
// allocating one per window.
func (s *Subrun) Reset(inner Node, ports []int) {
	s.inner = inner
	s.ports = ports
	s.t = 0
	s.done = false
	s.output = nil
	// Step only writes the slots of the current ports, so slots of ports
	// dropped by this Reset must not keep last window's messages.
	clear(s.sendBuf)
}

// Clear drops the inner node and makes further Step calls no-ops, so a
// host that has taken its tentative output can release the window's state
// without discarding the pooled buffers. Output keeps returning the value
// captured at the last completed Step.
func (s *Subrun) Clear() {
	s.output = s.Output()
	s.inner = nil
	s.ports = nil
	s.done = true
}

// Done reports whether the inner node has terminated.
func (s *Subrun) Done() bool { return s.done }

// Output returns the inner node's current output (its final output once
// Done; its tentative output otherwise, per the restriction convention).
func (s *Subrun) Output() any {
	if s.done {
		return s.output
	}
	return s.inner.Output()
}

// Rounds returns how many inner rounds have been executed.
func (s *Subrun) Rounds() int { return s.t }

// Step executes one inner round. recv is the host's full inbox (indexed by
// host port); hostDeg is the host degree. The returned slice is nil or
// host-degree-sized with the inner messages scattered to their host ports.
func (s *Subrun) Step(recv []Message, hostDeg int) []Message {
	if s.done {
		return nil
	}
	if cap(s.recvBuf) < len(s.ports) {
		s.recvBuf = make([]Message, len(s.ports))
	}
	s.recvBuf = s.recvBuf[:len(s.ports)]
	for i, p := range s.ports {
		s.recvBuf[i] = recv[p]
	}
	send, done := s.inner.Round(s.t, s.recvBuf)
	s.t++
	if done {
		s.done = true
		s.output = s.inner.Output()
	}
	if len(send) == 0 {
		return nil
	}
	if len(s.sendBuf) != hostDeg {
		s.sendBuf = make([]Message, hostDeg)
	}
	out := s.sendBuf
	for i, p := range s.ports {
		out[p] = send[i]
	}
	return out
}
