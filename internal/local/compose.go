package local

// This file implements the Section 2 machinery of the paper: sequential
// composition A1;A2 of local algorithms under non-simultaneous wake-up via
// the α-synchronizer, plus round restriction ("the algorithm A restricted to
// i rounds") and a masked sub-execution helper shared by the transformer
// wrappers.
//
// Composition semantics. Each node executes the stages one after the other,
// advancing through per-stage local rounds. A node may execute local round t
// of stage s only once every neighbour has executed round t-1 of stage s or
// advanced past it (the α-synchronizer rule); whenever a node executes a
// step it sends an envelope carrying its position to every neighbour, so a
// blocked node always knows when to proceed. The node with the globally
// minimal position can always step, so composition never deadlocks, and the
// standard induction yields Observation 2.1: the composed running time is at
// most the sum of the stage running times.

// Stage is one algorithm in a composition.
type Stage struct {
	// Algo is the algorithm to run in this stage.
	Algo Algorithm
	// MakeInput derives this stage's node input from the node's original
	// input and the previous stage's output at this node. If nil, stage 0
	// uses the original input and later stages use the previous output.
	MakeInput func(orig, prev any) any
}

// pos is a (stage, round) position; positions are ordered lexicographically.
type pos struct{ s, t int }

func (p pos) less(q pos) bool { return p.s < q.s || (p.s == q.s && p.t < q.t) }

// composeEnv is the envelope exchanged by composed nodes. Envelopes are sent
// by pointer and immutable once sent: a round with no payloads shares one
// envelope across all ports, so the synchronizer's stall and sleep rounds
// (the bulk of a skewed-wake-up execution) cost one allocation instead of Δ.
type composeEnv struct {
	at      pos
	payload Message
	allDone bool
}

// Compose returns the sequential composition of the given stages as a single
// algorithm (the paper's A1;A2;...;Ak). Every stage algorithm must terminate
// at every node on its own.
func Compose(name string, stages ...Stage) Algorithm {
	return AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info Info) Node {
			n := &composeNode{info: info, stages: stages}
			n.seen = make([]pos, info.Degree)
			for p := range n.seen {
				n.seen[p] = pos{-1, -1}
			}
			n.nbDone = make([]bool, info.Degree)
			n.buf = make([]map[pos]Message, info.Degree)
			for p := range n.buf {
				n.buf[p] = make(map[pos]Message)
			}
			n.startStage()
			return n
		},
	}
}

type composeNode struct {
	info   Info
	stages []Stage

	at      pos // next step to execute
	inner   Node
	prevOut any

	seen   []pos
	nbDone []bool
	buf    []map[pos]Message

	// innerRecv and envs are per-round scratch buffers, reused across rounds
	// (the engine consumes a returned send slice before the next Round call,
	// so handing out the same backing array every round is safe).
	innerRecv []Message
	envs      []Message
}

// startStage instantiates the state machine for the current stage.
func (n *composeNode) startStage() {
	st := n.stages[n.at.s]
	input := n.info.Input
	if st.MakeInput != nil {
		input = st.MakeInput(n.info.Input, n.prevOut)
	} else if n.at.s > 0 {
		input = n.prevOut
	}
	info := n.info
	info.Input = input
	info.Rand = DeriveRand(int64(n.info.Rand.Uint64()), n.info.ID, uint64(n.at.s))
	n.inner = st.Algo.New(info)
}

func (n *composeNode) Round(r int, recv []Message) ([]Message, bool) {
	for p, m := range recv {
		if m == nil {
			continue
		}
		env, ok := m.(*composeEnv)
		if !ok {
			continue // foreign message; composed stages only understand envelopes
		}
		if n.seen[p].less(env.at) {
			n.seen[p] = env.at
		}
		if env.allDone {
			n.nbDone[p] = true
		}
		if env.payload != nil {
			n.buf[p][env.at] = env.payload
		}
	}
	// α-synchronizer rule: step (s,t) requires every neighbour at >= (s,t-1).
	if n.at.t > 0 {
		need := pos{n.at.s, n.at.t - 1}
		for p := range n.seen {
			if !n.nbDone[p] && n.seen[p].less(need) {
				return nil, false
			}
		}
	}
	if n.innerRecv == nil {
		n.innerRecv = make([]Message, n.info.Degree)
	}
	innerRecv := n.innerRecv
	key := pos{n.at.s, n.at.t - 1}
	for p := range innerRecv {
		innerRecv[p] = nil
		if n.at.t > 0 {
			if msg, ok := n.buf[p][key]; ok {
				innerRecv[p] = msg
				delete(n.buf[p], key)
			}
		}
	}
	send, done := n.inner.Round(n.at.t, innerRecv)
	stepped := n.at
	n.at.t++
	finished := false
	if done {
		n.prevOut = n.inner.Output()
		n.at = pos{stepped.s + 1, 0}
		if n.at.s < len(n.stages) {
			n.dropStaleBuffers(stepped.s)
			n.startStage()
		} else {
			finished = true
		}
	}
	if n.envs == nil {
		n.envs = make([]Message, n.info.Degree)
	}
	envs := n.envs
	// Ports without a payload share a single envelope; only payload-carrying
	// ports need their own.
	quiet := &composeEnv{at: stepped, allDone: finished}
	for p := 0; p < n.info.Degree; p++ {
		if len(send) > 0 && send[p] != nil {
			envs[p] = &composeEnv{at: stepped, payload: send[p], allDone: finished}
		} else {
			envs[p] = quiet
		}
	}
	return envs, finished
}

// dropStaleBuffers discards buffered messages from stages <= s, which can no
// longer be consumed.
func (n *composeNode) dropStaleBuffers(s int) {
	for p := range n.buf {
		for k := range n.buf[p] {
			if k.s <= s {
				delete(n.buf[p], k)
			}
		}
	}
}

func (n *composeNode) Output() any { return n.prevOut }

var _ Node = (*composeNode)(nil)

// WithWakeup returns algorithm a executed under a non-simultaneous wake-up
// pattern: node with identity id stays asleep for delay(id) composed rounds
// before starting a. Sleeping nodes block their neighbours exactly as in the
// paper's asynchronous wake-up model; messages that arrive early are
// buffered by the synchronizer.
func WithWakeup(a Algorithm, delay func(id int64) int) Algorithm {
	sleeper := AlgorithmFunc{
		AlgoName: "sleep",
		NewNode: func(info Info) Node {
			return &sleepNode{remaining: delay(info.ID)}
		},
	}
	return Compose("wakeup("+a.Name()+")", Stage{Algo: sleeper}, Stage{
		Algo: a,
		// The algorithm still sees its original input, not the sleep output.
		MakeInput: func(orig, _ any) any { return orig },
	})
}

type sleepNode struct{ remaining int }

func (s *sleepNode) Round(r int, _ []Message) ([]Message, bool) {
	return nil, r >= s.remaining
}

func (s *sleepNode) Output() any { return nil }

// RestrictRounds returns algorithm a restricted to the given number of
// rounds (Section 2): after budget rounds the node terminates with whatever
// tentative output a has produced. A non-positive budget terminates
// immediately with a nil output.
func RestrictRounds(a Algorithm, budget int) Algorithm {
	return AlgorithmFunc{
		AlgoName: a.Name() + "|restricted",
		NewNode: func(info Info) Node {
			return &restrictNode{inner: a.New(info), budget: budget}
		},
	}
}

type restrictNode struct {
	inner  Node
	budget int
	done   bool
	out    any
}

func (n *restrictNode) Round(r int, recv []Message) ([]Message, bool) {
	if n.budget <= 0 {
		return nil, true
	}
	var send []Message
	if !n.done {
		var innerDone bool
		send, innerDone = n.inner.Round(r, recv)
		if innerDone {
			n.done = true
			n.out = n.inner.Output()
		}
	}
	if n.done || r+1 >= n.budget {
		if !n.done {
			n.out = n.inner.Output()
		}
		return send, true
	}
	return send, false
}

func (n *restrictNode) Output() any { return n.out }

// Subrun drives an inner Node over a masked subset of a host node's ports,
// maintaining the inner round counter. It is the building block used by the
// transformer wrappers (induced-subgraph execution) and by algorithms that
// operate on one layer of a degree partition.
type Subrun struct {
	inner  Node
	ports  []int
	t      int
	done   bool
	output any

	// recvBuf and sendBuf are reused across Step calls: the host consumes the
	// returned scatter slice within its own Round, and the inner node borrows
	// recvBuf only for the duration of its Round.
	recvBuf []Message
	sendBuf []Message
}

// NewSubrun creates a sub-execution of inner seeing only the given host
// ports (in inner-port order).
func NewSubrun(inner Node, ports []int) *Subrun {
	return &Subrun{inner: inner, ports: ports}
}

// Done reports whether the inner node has terminated.
func (s *Subrun) Done() bool { return s.done }

// Output returns the inner node's current output (its final output once
// Done; its tentative output otherwise, per the restriction convention).
func (s *Subrun) Output() any {
	if s.done {
		return s.output
	}
	return s.inner.Output()
}

// Rounds returns how many inner rounds have been executed.
func (s *Subrun) Rounds() int { return s.t }

// Step executes one inner round. recv is the host's full inbox (indexed by
// host port); hostDeg is the host degree. The returned slice is nil or
// host-degree-sized with the inner messages scattered to their host ports.
func (s *Subrun) Step(recv []Message, hostDeg int) []Message {
	if s.done {
		return nil
	}
	if s.recvBuf == nil {
		s.recvBuf = make([]Message, len(s.ports))
	}
	for i, p := range s.ports {
		s.recvBuf[i] = recv[p]
	}
	send, done := s.inner.Round(s.t, s.recvBuf)
	s.t++
	if done {
		s.done = true
		s.output = s.inner.Output()
	}
	if len(send) == 0 {
		return nil
	}
	if len(s.sendBuf) != hostDeg {
		s.sendBuf = make([]Message, hostDeg)
	}
	out := s.sendBuf
	for i, p := range s.ports {
		out[p] = send[i]
	}
	return out
}
