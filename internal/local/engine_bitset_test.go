package local_test

// Differential gate for the bitset data plane (ISSUE 10): the word-level
// frontier/halted engine must produce byte-identical Results to the frozen
// pre-refactor oracle (engine_legacy_test.go) across every graph family the
// scenario corpus uses × every scheduler × every worker count. The legacy
// lockstep run is the reference for all three schedulers on the permutation
// side: a round's sends are invisible until the next round, so the step
// order within a round — ascending, rank-shuffled, whatever — cannot change
// any Result byte. Staggered wake-up changes the executed algorithm (the
// wake-up wrapper), so there the reference is the legacy engine running the
// same wrapped algorithm.

import (
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// bitsetDiffGraphs builds one graph per family, sized to straddle word
// boundaries (257 = 4 words + 1 bit) and to leave long pseudo-halted tails
// under waveAlgo. -short trims the heavier generators.
func bitsetDiffGraphs(t testing.TB, short bool) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gs[name] = g
	}
	cyc, err := graph.Cycle(257)
	add("cycle", cyc, err)
	gnp, err := graph.GNP(320, 0.03, 23)
	add("gnp", gnp, err)
	if short {
		return gs
	}
	geo, err := graph.RandomGeometric(300, 0.09, 41)
	add("geometric", geo, err)
	pa, err := graph.PreferentialAttachment(300, 3, 59)
	add("prefattach", pa, err)
	ws, err := graph.WattsStrogatz(256, 6, 0.2, 71)
	add("wattsstrogatz", ws, err)
	return gs
}

// TestEngineBitsetDifferential is the ISSUE 10 satellite gate: all 5 graph
// families × {lockstep, staggered, permuted} × worker counts, each compared
// field-by-field (Outputs, HaltRounds, Rounds, Messages, Steps) against the
// frozen legacy oracle. Run under -race in CI, it also proves the atomic
// halt recording and the popcount-balanced word partition are race-free.
func TestEngineBitsetDifferential(t *testing.T) {
	base := waveAlgo(9, 3)
	schedulers := map[string]struct {
		algo    local.Algorithm
		permute *local.Permute
	}{
		"lockstep":  {algo: base},
		"staggered": {algo: local.StaggeredWakeup(base, 101, 5)},
		"permuted":  {algo: base, permute: &local.Permute{Seed: 77}},
	}
	for gname, g := range bitsetDiffGraphs(t, testing.Short()) {
		for sname, sched := range schedulers {
			// The oracle always runs lockstep order (it has no permutation
			// support); for the permuted scheduler this is exactly the
			// output-invariance claim under test.
			ref, err := runLegacy(g, sched.algo, local.Options{Seed: 13, Sequential: true})
			if err != nil {
				t.Fatalf("%s/%s: legacy oracle: %v", gname, sname, err)
			}
			for _, w := range workerCounts() {
				label := fmt.Sprintf("%s/%s/workers=%d", gname, sname, w)
				got, err := local.Run(g, sched.algo, local.Options{
					Seed:    13,
					Workers: w,
					Permute: sched.permute,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sameResult(t, label, ref, got)
			}
			// Sequential bitset run too — the single-worker word scan is a
			// distinct code path from the partitioned one.
			got, err := local.Run(g, sched.algo, local.Options{
				Seed:       13,
				Sequential: true,
				Permute:    sched.permute,
			})
			if err != nil {
				t.Fatalf("%s/%s/sequential: %v", gname, sname, err)
			}
			sameResult(t, gname+"/"+sname+"/sequential", ref, got)
		}
	}
}

// TestEngineStepsAccounting pins Result.Steps against the closed form for
// the wave schedule on a cycle: node u is live in rounds 0..haltAt(u), so
// Steps = Σ_u (haltAt(u)+1), independent of scheduler and worker count.
func TestEngineStepsAccounting(t *testing.T) {
	const n, waves, gap = 130, 7, 4
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for u := 0; u < n; u++ {
		want += int64(waveHalt(g.ID(u), waves, gap) + 1)
	}
	for _, w := range workerCounts() {
		res, err := local.Run(g, waveAlgo(waves, gap), local.Options{Seed: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != want {
			t.Errorf("workers=%d: Steps = %d, want %d", w, res.Steps, want)
		}
		occ := res.FrontierOccupancy()
		if wantOcc := float64(want) / (float64(res.Rounds) * float64(n)); occ != wantOcc {
			t.Errorf("workers=%d: FrontierOccupancy = %v, want %v", w, occ, wantOcc)
		}
	}
}
