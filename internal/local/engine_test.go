package local_test

// Engine rearchitecture tests: parallel-vs-sequential determinism across
// worker counts, frontier correctness under staggered halting waves, and
// differential testing against the frozen pre-refactor engine
// (engine_legacy_test.go).

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// waveAlgo halts node u at round 1 + (u-th wave)*gap, broadcasting its
// identity every round until then and recording everything it hears. Its
// output — (sum of received identities, receipt count, halt round) — is a
// certificate that the frontier kept exactly the live nodes stepping and
// that no stale lane slot ever leaked into a later round.
func waveAlgo(waves, gap int) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "waves",
		NewNode: func(info local.Info) local.Node {
			return &waveNode{info: info, haltAt: 1 + int(info.ID%int64(waves))*gap}
		},
	}
}

type waveNode struct {
	info   local.Info
	haltAt int
	sum    int64
	count  int64
}

func (n *waveNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if id, ok := m.(int64); ok {
			n.sum += id
			n.count++
		}
	}
	if r >= n.haltAt {
		return nil, true
	}
	return local.Broadcast(n.info.ID, n.info.Degree), false
}

func (n *waveNode) Output() any { return [3]int64{n.sum, n.count, int64(n.haltAt)} }

// waveHalt mirrors waveNode's halt schedule for the closed-form expectation.
func waveHalt(id int64, waves, gap int) int { return 1 + int(id%int64(waves))*gap }

func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(400, 0.02, 17)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"random": gnp,
		"path":   graph.Path(257),
		"star":   graph.Star(100),
	}
}

func workerCounts() []int {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) < 3 {
		counts = append(counts, 5) // always exercise a multi-chunk partition
	}
	return counts
}

func sameResult(t *testing.T, label string, want, got *local.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Outputs, got.Outputs) {
		t.Errorf("%s: Outputs differ", label)
	}
	if !reflect.DeepEqual(want.HaltRounds, got.HaltRounds) {
		t.Errorf("%s: HaltRounds differ: %v vs %v", label, want.HaltRounds, got.HaltRounds)
	}
	if want.Rounds != got.Rounds {
		t.Errorf("%s: Rounds %d vs %d", label, want.Rounds, got.Rounds)
	}
	if want.Messages != got.Messages {
		t.Errorf("%s: Messages %d vs %d", label, want.Messages, got.Messages)
	}
	if want.Steps != got.Steps {
		t.Errorf("%s: Steps %d vs %d", label, want.Steps, got.Steps)
	}
}

// TestEngineDeterministicAcrossWorkerCounts checks the acceptance criterion
// verbatim: sequential and parallel runs at worker counts 1, 2 and
// GOMAXPROCS produce identical Outputs, HaltRounds, Rounds and Messages on
// random, path and star graphs, for a message- and randomness-sensitive
// algorithm, and match the pre-refactor engine.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	algos := map[string]local.Algorithm{
		"waves":       waveAlgo(7, 4),
		"random-halt": randHaltAlgo(),
	}
	for gname, g := range testGraphs(t) {
		for aname, a := range algos {
			ref, err := local.Run(g, a, local.Options{Seed: 3, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := runLegacy(g, a, local.Options{Seed: 3, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, gname+"/"+aname+"/legacy", legacy, ref)
			for _, w := range workerCounts() {
				par, err := local.Run(g, a, local.Options{Seed: 3, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("%s/%s/workers=%d", gname, aname, w), ref, par)
			}
		}
	}
}

// randHaltAlgo couples per-node randomness to the halt schedule: any
// cross-worker leakage of RNG streams or round skew changes the outputs.
func randHaltAlgo() local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "rand-halt",
		NewNode: func(info local.Info) local.Node {
			return &randHaltNode{info: info, haltAt: 1 + int(info.Rand.Uint64()%11)}
		},
	}
}

type randHaltNode struct {
	info   local.Info
	haltAt int
	mix    uint64
}

func (n *randHaltNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if v, ok := m.(uint64); ok {
			n.mix ^= v + uint64(r)
		}
	}
	if r >= n.haltAt {
		return nil, true
	}
	return local.Broadcast(n.info.Rand.Uint64(), n.info.Degree), false
}

func (n *randHaltNode) Output() any { return n.mix }

// TestEngineFrontierStaggeredWaves pins the frontier bookkeeping against a
// closed form: node u hears neighbour v exactly min(halt(u), halt(v)) times
// (v broadcasts in rounds 0..halt(v)-1, u reads in rounds 1..halt(u)), so
// any node the frontier drops early, steps after halting, or feeds a stale
// lane slot shifts the per-node (sum, count) certificate.
func TestEngineFrontierStaggeredWaves(t *testing.T) {
	const waves, gap = 7, 4
	a := waveAlgo(waves, gap)
	for gname, g := range testGraphs(t) {
		for _, w := range workerCounts() {
			res, err := local.Run(g, a, local.Options{Seed: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			var wantMsgs int64
			for u := 0; u < g.N(); u++ {
				hu := waveHalt(g.ID(u), waves, gap)
				var sum, count int64
				for k := 0; k < g.Degree(u); k++ {
					v := g.Neighbor(u, k)
					hv := waveHalt(g.ID(v), waves, gap)
					times := int64(min(hu, hv))
					sum += g.ID(v) * times
					count += times
				}
				// Every broadcast of u is delivered (even to already-halted
				// neighbours), so u sends deg(u) messages per round.
				wantMsgs += int64(hu) * int64(g.Degree(u))
				got := res.Outputs[u].([3]int64)
				want := [3]int64{sum, count, int64(hu)}
				if got != want {
					t.Fatalf("%s/workers=%d: node %d certificate %v, want %v", gname, w, u, got, want)
				}
				if res.HaltRounds[u] != hu {
					t.Fatalf("%s/workers=%d: node %d halted at %d, want %d", gname, w, u, res.HaltRounds[u], hu)
				}
			}
			if res.Messages != wantMsgs {
				t.Errorf("%s/workers=%d: Messages = %d, want %d", gname, w, res.Messages, wantMsgs)
			}
		}
	}
}

// TestEngineParallelErrorPropagation checks that an oversized send surfaces
// as an error from the pooled path too.
func TestEngineParallelErrorPropagation(t *testing.T) {
	bad := local.AlgorithmFunc{
		AlgoName: "bad-send",
		NewNode: func(info local.Info) local.Node {
			return badSendNode{deg: info.Degree}
		},
	}
	g := graph.Path(64)
	if _, err := local.Run(g, bad, local.Options{Workers: 4}); err == nil {
		t.Fatal("oversized send not rejected in parallel mode")
	}
}

type badSendNode struct{ deg int }

func (n badSendNode) Round(int, []local.Message) ([]local.Message, bool) {
	return make([]local.Message, n.deg+1), true
}
func (n badSendNode) Output() any { return nil }

// TestEngineMaxRoundsParallel checks the round cap with a live frontier in
// pooled mode.
func TestEngineMaxRoundsParallel(t *testing.T) {
	forever := local.AlgorithmFunc{
		AlgoName: "forever",
		NewNode: func(info local.Info) local.Node {
			return foreverNode{}
		},
	}
	_, err := local.Run(graph.Star(32), forever, local.Options{MaxRounds: 40, Workers: 3})
	if !errors.Is(err, local.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

type foreverNode struct{}

func (foreverNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, false }
func (foreverNode) Output() any                                        { return nil }
