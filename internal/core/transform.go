package core

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// maxIterations caps the doubling schedule; with budgets saturating at
// mathutil.MaxRoundBudget this is never reached by a correct plan before the
// engine's round cap fires.
const maxIterations = 62

// Theorem1Plan implements the schedule of Algorithm 1 (Theorem 1): in
// iteration i = 1, 2, ..., run a once per guess vector of S_f(2^i), each
// restricted to C*2^i rounds, each followed by the pruning algorithm. The
// SetSequence must encode a valid running-time bound of a: every vector x it
// emits for budget 2^i guarantees a finishes within C*2^i rounds, and every
// good guess vector is eventually dominated.
func Theorem1Plan(a NonUniform, seq SetSequence) Plan {
	return theorem1Plan{build: vectorBuild(a), seq: seq}
}

// vectorBuild adapts a NonUniform to the schedule machinery, which walks
// positional SetSequence vectors: the coordinates follow a.Params(), so the
// vector converts losslessly into the typed form at the Γ boundary.
func vectorBuild(a NonUniform) func(vec []int) local.Algorithm {
	return func(vec []int) local.Algorithm {
		return a.WithParams(ParamsFromVector(a.Params(), vec))
	}
}

type theorem1Plan struct {
	build func(vec []int) local.Algorithm
	seq   SetSequence
}

func (p theorem1Plan) Step(k int) (Step, bool) {
	acc := 0
	for i := 1; i <= maxIterations; i++ {
		vs := p.seq.Sets(mathutil.SatPow2(i))
		if k < acc+len(vs) {
			g := vs[k-acc]
			return Step{
				Algo:   p.build(g),
				Budget: mathutil.SatMul(p.seq.C(), mathutil.SatPow2(i)),
			}, true
		}
		acc += len(vs)
	}
	return Step{}, false
}

// Uniform applies Theorem 1: it transforms the non-uniform algorithm a,
// whose running time is bounded by the (additive/product/...) bound encoded
// in seq, into a uniform algorithm for the problem certified by pruner, with
// asymptotically the same running time O(f* · s_f(f*)).
func Uniform(a NonUniform, seq SetSequence, pruner Pruner) local.Algorithm {
	return NewAlternating(fmt.Sprintf("uniform(%s)", a.Name()), Theorem1Plan(a, seq), pruner)
}

// Theorem2Plan implements the schedule of Algorithm 2 (Theorem 2): iteration
// i replays iterations 1..i of the Theorem 1 schedule, so a weak Monte Carlo
// algorithm gets a geometrically growing number of independent retries at
// every budget level, yielding a Las Vegas algorithm with expected running
// time O(f* · s_f(f*)).
func Theorem2Plan(a NonUniform, seq SetSequence) Plan {
	return theorem2Plan{inner: theorem1Plan{build: vectorBuild(a), seq: seq}}
}

type theorem2Plan struct {
	inner theorem1Plan
}

func (p theorem2Plan) Step(k int) (Step, bool) {
	// Iteration i of τ consists of the first len_1 + ... + len_i steps of π,
	// where len_j = |S_f(2^j)|. Walk iterations, subtracting prefix sizes.
	prefix := 0 // steps of π in iterations 1..i
	for i := 1; i <= maxIterations; i++ {
		vs := p.inner.seq.Sets(mathutil.SatPow2(i))
		prefix += len(vs)
		if k < prefix {
			break
		}
		k -= prefix
	}
	if k >= prefix {
		return Step{}, false
	}
	return p.inner.Step(k)
}

// LasVegas applies Theorem 2: it transforms the weak Monte Carlo algorithm
// a (success probability >= 1/2 under good guesses) into a uniform Las
// Vegas algorithm; correctness is certain, and the expected running time is
// O(f* · s_f(f*)). Fresh randomness is used on every retry.
func LasVegas(a NonUniform, seq SetSequence, pruner Pruner) local.Algorithm {
	return NewAlternating(fmt.Sprintf("lasvegas(%s)", a.Name()), Theorem2Plan(a, seq), pruner)
}

// Theorem4Plan implements the schedule of Theorem 4: iteration i runs each
// of the uniform algorithms restricted to 2^i rounds, followed by pruning.
func Theorem4Plan(algos []local.Algorithm) Plan {
	return theorem4Plan{algos: algos}
}

type theorem4Plan struct {
	algos []local.Algorithm
}

func (p theorem4Plan) Step(k int) (Step, bool) {
	if len(p.algos) == 0 {
		return Step{}, false
	}
	i := k/len(p.algos) + 1
	if i > maxIterations {
		return Step{}, false
	}
	return Step{Algo: p.algos[k%len(p.algos)], Budget: mathutil.SatPow2(i)}, true
}

// FastestOf applies Theorem 4: given uniform algorithms for the same
// problem whose running times depend on different unknown parameters, it
// returns a uniform algorithm that runs in O(min of their running times) on
// every instance.
func FastestOf(name string, pruner Pruner, algos ...local.Algorithm) local.Algorithm {
	return NewAlternating(name, Theorem4Plan(algos), pruner)
}

// Domination declares that a parameter of Γ \ Λ is weakly dominated in the
// sense of Section 2: G(param(G,x)) <= lambda[ByIndex](G,x) on every
// instance, with G ascending.
type Domination struct {
	// Param is the correctness-only parameter γ_j.
	Param Param
	// ByIndex is the index (into the Λ parameter vector / the SetSequence
	// coordinates) of the dominating parameter q_{h(j)}.
	ByIndex int
	// G is the ascending function g_j.
	G AscFunc
}

// UniformWeaklyDominated applies Theorem 3: algorithm a depends on
// parameters Γ = a.Params(), its running time is bounded with respect to the
// parameters lambda (encoded in seq, whose coordinates follow lambda), and
// every parameter of Γ not in lambda is weakly dominated per doms. The
// result is a uniform algorithm with running time O(f(Λ*) · s_f(f(Λ*))).
//
// Following the proof, each guess vector x for Λ is extended with the
// pseudo-guess g_j⁻¹(x[h(j)]) = max{y : g_j(y) <= x[h(j)]} for every
// dominated parameter.
func UniformWeaklyDominated(a NonUniform, lambda []Param, doms []Domination, seq SetSequence, pruner Pruner) (local.Algorithm, error) {
	if seq.Arity() != len(lambda) {
		return nil, fmt.Errorf("core: set-sequence arity %d != |Λ| = %d", seq.Arity(), len(lambda))
	}
	// Precompute, for each γ in Γ, how to fill its guess from a Λ-vector.
	type source struct {
		fromLambda int     // index into the Λ vector, or -1
		dom        AscFunc // g_j for dominated parameters
		domIdx     int
	}
	sources := make([]source, 0, len(a.Params()))
	for _, gamma := range a.Params() {
		src := source{fromLambda: -1, domIdx: -1}
		for i, l := range lambda {
			if l == gamma {
				src.fromLambda = i
				break
			}
		}
		if src.fromLambda < 0 {
			for _, d := range doms {
				if d.Param == gamma {
					if d.ByIndex < 0 || d.ByIndex >= len(lambda) {
						return nil, fmt.Errorf("core: domination of %q references Λ index %d out of range", gamma, d.ByIndex)
					}
					src.dom = d.G
					src.domIdx = d.ByIndex
					break
				}
			}
			if src.dom == nil {
				return nil, fmt.Errorf("core: parameter %q neither in Λ nor dominated", gamma)
			}
		}
		sources = append(sources, src)
	}
	// The Λ vector may repeat a parameter (two coordinates of the bound both
	// tracking n, say), so it cannot round-trip through the typed Params —
	// translate positionally here and cross the typed boundary only with the
	// duplicate-free Γ of the real algorithm.
	gamma := a.Params()
	build := func(guesses []int) local.Algorithm {
		var p Params
		for i, src := range sources {
			v := 0
			if src.fromLambda >= 0 {
				v = guesses[src.fromLambda]
			} else {
				v = MaxArg(src.dom, guesses[src.domIdx])
				if v < 1 {
					v = 1
				}
			}
			p = p.With(gamma[i], v)
		}
		return a.WithParams(p)
	}
	plan := theorem1Plan{build: build, seq: seq}
	return NewAlternating(fmt.Sprintf("uniform(%s/Θ3)", a.Name()), plan, pruner), nil
}
