package core

import (
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// misEngine wires the colormis stack (Linial + reduction + greedy-by-color)
// as a NonUniform with Γ = {Δ, m} and its additive envelope.
func misEngine() (NonUniform, SetSequence) {
	nu := NonUniformFunc{
		AlgoName: "colormis",
		Needs:    []Param{ParamMaxDegree, ParamMaxID},
		Build: func(p Params) local.Algorithm {
			return colormis.New(p.Delta, p.M)
		},
	}
	seq := Additive(colormis.BoundDelta, colormis.BoundM)
	return nu, seq
}

// lubyEngine wires truncated Luby as a weak Monte Carlo NonUniform with
// Γ = {n}.
func lubyEngine() (NonUniform, SetSequence) {
	nu := NonUniformFunc{
		AlgoName: "luby-truncated",
		Needs:    []Param{ParamN},
		Build: func(p Params) local.Algorithm {
			return luby.Truncated(p.N)
		},
	}
	seq := Additive(func(n int) int { return luby.Rounds(n) })
	return nu, seq
}

func transformerSuite(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(150, 0.035, 17)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(40)
	shuffled, err := graph.WithShuffledIDs(graph.Grid(8, 8), 1<<26, 9)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"path":     graph.Path(60),
		"cycle":    cyc,
		"clique":   graph.Complete(14),
		"star":     graph.Star(30),
		"gnp":      gnp,
		"tree":     graph.RandomTree(90, 5),
		"shuffled": shuffled,
		"twoParts": graph.DisjointUnion(graph.Path(10), graph.Complete(6)),
	}
}

func TestTheorem1UniformMIS(t *testing.T) {
	nu, seq := misEngine()
	uniform := Uniform(nu, seq, MISPruner())
	for name, g := range transformerSuite(t) {
		t.Run(name, func(t *testing.T) {
			res, err := local.Run(g, uniform, local.Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
			// Theorem 1 bound: O(f*) with s_f = 1. Generously, the doubling
			// schedule costs at most ~4*C*f* rounds plus pruning overhead.
			fStar := colormis.BoundDelta(g.MaxDegree()) + colormis.BoundM(int(g.MaxIDValue()))
			limit := 16*fStar + 200
			if res.Rounds > limit {
				t.Errorf("uniform MIS took %d rounds; Theorem 1 limit %d (f* = %d)", res.Rounds, limit, fStar)
			}
		})
	}
}

func TestTheorem1MatchesNonUniformAsymptotics(t *testing.T) {
	// The headline claim: the uniform algorithm's rounds stay within a
	// constant factor of the non-uniform algorithm run with correct guesses,
	// across a growing family.
	nu, seq := misEngine()
	uniform := Uniform(nu, seq, MISPruner())
	prevRatio := 0.0
	for _, n := range []int{64, 256, 1024} {
		g, err := graph.GNP(n, 6.0/float64(n), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		resU, err := local.Run(g, uniform, local.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		correct := nu.WithParams(Params{Delta: g.MaxDegree(), M: g.MaxIDValue()})
		resN, err := local.Run(g, correct, local.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		inU, err := problems.Bools(resU.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, inU); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ratio := float64(resU.Rounds) / float64(resN.Rounds)
		t.Logf("n=%d: uniform %d rounds, non-uniform %d rounds, ratio %.1f", n, resU.Rounds, resN.Rounds, ratio)
		if ratio > 60 {
			t.Errorf("n=%d: ratio %.1f implausibly large for an O(1)-overhead transform", n, ratio)
		}
		prevRatio = ratio
	}
	_ = prevRatio
}

func TestTheorem2LasVegasMIS(t *testing.T) {
	nu, seq := lubyEngine()
	lv := LasVegas(nu, seq, MISPruner())
	for name, g := range transformerSuite(t) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				res, err := local.Run(g, lv, local.Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				in, err := problems.Bools(res.Outputs)
				if err != nil {
					t.Fatal(err)
				}
				if err := problems.ValidMIS(g, in); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestTheorem4FastestOf(t *testing.T) {
	// Combine the uniform deterministic MIS (fast when Δ small) with plain
	// Luby (fast everywhere, randomized): Theorem 4 runs as fast as the
	// faster of the two on every instance.
	nu, seq := misEngine()
	uniformDet := Uniform(nu, seq, MISPruner())
	combined := FastestOf("fastest-mis", MISPruner(), uniformDet, luby.New())
	for name, g := range transformerSuite(t) {
		t.Run(name, func(t *testing.T) {
			res, err := local.Run(g, combined, local.Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			in, err := problems.Bools(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidMIS(g, in); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTheorem4BeatsSlowEngine(t *testing.T) {
	// Pair a uselessly slow algorithm with Luby: the combination must track
	// Luby's time, not the slow engine's.
	slow := local.AlgorithmFunc{
		AlgoName: "slow-idle",
		NewNode: func(info local.Info) local.Node {
			return idleForever{}
		},
	}
	combined := FastestOf("luby-vs-idle", MISPruner(), slow, luby.New())
	g, err := graph.GNP(200, 0.03, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, combined, local.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
	resLuby, err := local.Run(g, luby.New(), local.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Doubling overhead: combined <= ~8x luby-alone plus pruning rounds.
	if limit := 24*resLuby.Rounds + 150; res.Rounds > limit {
		t.Errorf("combined %d rounds vs luby %d: exceeds Theorem 4 overhead (%d)", res.Rounds, resLuby.Rounds, limit)
	}
}

type idleForever struct{}

func (idleForever) Round(int, []local.Message) ([]local.Message, bool) { return nil, false }
func (idleForever) Output() any                                        { return nil }

func TestTheorem3WeaklyDominated(t *testing.T) {
	// colormis requires Γ = {Δ, m}; take Λ = {m} and dominate Δ by m via the
	// identity (Δ < n <= m always). The derived uniform algorithm guesses
	// only m.
	nu, _ := misEngine()
	seq := Additive(func(m int) int {
		return colormis.BoundDelta(m) + colormis.BoundM(m)
	})
	uniform, err := UniformWeaklyDominated(nu, []Param{ParamMaxID},
		[]Domination{{Param: ParamMaxDegree, ByIndex: 0, G: func(x int) int { return x }}},
		seq, MISPruner())
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := graph.GNP(40, 0.1, 29)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(12)
	for name, g := range map[string]*graph.Graph{"gnp": gnp, "cycle": cyc, "clique": graph.Complete(8)} {
		res, err := local.Run(g, uniform, local.Options{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestUniformWeaklyDominatedValidation(t *testing.T) {
	nu, seq := misEngine()
	if _, err := UniformWeaklyDominated(nu, []Param{ParamMaxID}, nil, Additive(func(x int) int { return x }), MISPruner()); err == nil {
		t.Error("uncovered parameter not rejected")
	}
	if _, err := UniformWeaklyDominated(nu, []Param{ParamMaxID},
		[]Domination{{Param: ParamMaxDegree, ByIndex: 7, G: func(x int) int { return x }}},
		Additive(func(x int) int { return x }), MISPruner()); err == nil {
		t.Error("out-of-range domination index not rejected")
	}
	_ = seq
}

func TestAlternatingObservation34(t *testing.T) {
	// A plan that emits garbage algorithms before a correct one: the
	// alternating algorithm must still terminate with a correct combined
	// output, and garbage iterations must never corrupt pruned regions.
	garbage := local.AlgorithmFunc{
		AlgoName: "garbage",
		NewNode: func(info local.Info) local.Node {
			return garbageNode{flip: info.ID%2 == 0}
		},
	}
	g, err := graph.GNP(80, 0.07, 31)
	if err != nil {
		t.Fatal(err)
	}
	correct := colormis.New(g.MaxDegree(), g.MaxIDValue())
	plan := listPlan{steps: []Step{
		{Algo: garbage, Budget: 3},
		{Algo: garbage, Budget: 5},
		{Algo: correct, Budget: colormis.BoundDelta(g.MaxDegree()) + colormis.BoundM(int(g.MaxIDValue()))},
		{Algo: correct, Budget: colormis.BoundDelta(g.MaxDegree()) + colormis.BoundM(int(g.MaxIDValue()))},
	}}
	alt := NewAlternating("garbage-then-correct", plan, MISPruner())
	res, err := local.Run(g, alt, local.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
}

type listPlan struct{ steps []Step }

func (p listPlan) Step(k int) (Step, bool) {
	if k < len(p.steps) {
		return p.steps[k], true
	}
	return Step{}, false
}

type garbageNode struct{ flip bool }

func (n garbageNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, true }
func (n garbageNode) Output() any                                        { return n.flip }

func TestAlternatingExhaustedPlanErrors(t *testing.T) {
	// A plan whose steps never solve the problem must surface as a
	// MaxRounds error, not hang or return garbage.
	hopeless := listPlan{steps: []Step{{Algo: local.AlgorithmFunc{
		AlgoName: "never",
		NewNode:  func(local.Info) local.Node { return garbageNode{} },
	}, Budget: 2}}}
	alt := NewAlternating("hopeless", hopeless, MISPruner())
	g := graph.Path(4)
	if _, err := local.Run(g, alt, local.Options{MaxRounds: 500}); err == nil {
		t.Fatal("expected an error from an exhausted plan")
	}
}
