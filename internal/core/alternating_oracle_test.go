package core_test

// Differential tests pinning the refactored alternating hot path (delta
// flooding, pooled pruning state, memoized plans) to the frozen legacy
// implementation: for every plan family of the paper (Theorem 1, Theorem 2,
// Theorem 4), across graph families, seeds and worker counts, the two
// implementations must produce byte-identical Results — outputs, halt
// rounds, running time and message count.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/algorithms/matching"
	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// oracleMISEngine mirrors the Theorem 1 colormis wiring of the engines
// package (core_test cannot reuse the in-package test helpers).
func oracleMISEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "colormis",
		Needs:    []core.Param{core.ParamMaxDegree, core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return colormis.New(p.Delta, p.M)
		},
	}
	return nu, core.Additive(colormis.BoundDelta, colormis.BoundM)
}

func oracleLubyEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "luby-truncated",
		Needs:    []core.Param{core.ParamN},
		Build: func(p core.Params) local.Algorithm {
			return luby.Truncated(p.N)
		},
	}
	return nu, core.Additive(func(n int) int { return luby.Rounds(n) })
}

func oracleMatchingEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "line-matching",
		Needs:    []core.Param{core.ParamMaxDegree, core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return matching.New(p.Delta, p.M)
		},
	}
	return nu, core.Additive(matching.BoundDelta, matching.BoundM)
}

// oraclePairs builds (current, legacy) algorithm pairs wired identically.
// The legacy side consumes the raw plan, exactly as the old code did; the
// current side memoizes it inside NewAlternating.
func oraclePairs() map[string][2]local.Algorithm {
	misNU, misSeq := oracleMISEngine()
	lubyNU, lubySeq := oracleLubyEngine()
	mmNU, mmSeq := oracleMatchingEngine()

	pairs := map[string][2]local.Algorithm{
		"theorem1-mis": {
			core.NewAlternating("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner()),
			newAlternatingLegacy("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner()),
		},
		"theorem2-lasvegas": {
			core.NewAlternating("t2", core.Theorem2Plan(lubyNU, lubySeq), core.MISPruner()),
			newAlternatingLegacy("t2", core.Theorem2Plan(lubyNU, lubySeq), core.MISPruner()),
		},
		"theorem1-matching": {
			core.NewAlternating("t1mm", core.Theorem1Plan(mmNU, mmSeq), core.MatchingPruner()),
			newAlternatingLegacy("t1mm", core.Theorem1Plan(mmNU, mmSeq), core.MatchingPruner()),
		},
	}
	// Theorem 4 nests alternating algorithms: the combined racer is itself
	// an alternating algorithm over two engines, one of which is another
	// alternating algorithm.
	inner := core.NewAlternating("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner())
	innerLegacy := newAlternatingLegacy("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner())
	pairs["theorem4-fastest"] = [2]local.Algorithm{
		core.NewAlternating("t4", core.Theorem4Plan([]local.Algorithm{inner, luby.New()}), core.MISPruner()),
		newAlternatingLegacy("t4", core.Theorem4Plan([]local.Algorithm{innerLegacy, luby.New()}), core.MISPruner()),
	}
	return pairs
}

func oracleGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(120, 0.045, 41)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(36)
	return map[string]*graph.Graph{
		"gnp":    gnp,
		"cycle":  cyc,
		"star":   graph.Star(24),
		"tree":   graph.RandomTree(70, 9),
		"clique": graph.Complete(10),
	}
}

func TestAlternatingMatchesLegacyOracle(t *testing.T) {
	graphs := oracleGraphs(t)
	seeds := []int64{0, 1, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for name, pair := range oraclePairs() {
		t.Run(name, func(t *testing.T) {
			for gname, g := range graphs {
				for _, seed := range seeds {
					want, err := local.Run(g, pair[1], local.Options{Seed: seed, Sequential: true})
					if err != nil {
						t.Fatalf("%s seed %d: legacy: %v", gname, seed, err)
					}
					for _, opts := range []local.Options{
						{Seed: seed, Sequential: true},
						{Seed: seed, Workers: 4},
						{Seed: seed, Workers: 13},
					} {
						got, err := local.Run(g, pair[0], opts)
						if err != nil {
							t.Fatalf("%s seed %d workers %d: %v", gname, seed, opts.Workers, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s seed %d workers %d: Result diverges from legacy oracle:\n got: rounds=%d msgs=%d\nwant: rounds=%d msgs=%d\noutputs equal: %v",
								gname, seed, opts.Workers, got.Rounds, got.Messages, want.Rounds, want.Messages,
								reflect.DeepEqual(got.Outputs, want.Outputs))
						}
					}
				}
			}
		})
	}
}

// TestAlternatingSharedAcrossRuns pins the plan-cache sharing rule: one
// algorithm value (with its shared memoized plan) reused across many
// concurrent Runs must behave exactly like a fresh instance per Run.
func TestAlternatingSharedAcrossRuns(t *testing.T) {
	misNU, misSeq := oracleMISEngine()
	shared := core.NewAlternating("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner())
	g := oracleGraphs(t)["gnp"]

	type outcome struct {
		res *local.Result
		err error
	}
	const runs = 8
	results := make([]outcome, runs)
	done := make(chan int, runs)
	for i := 0; i < runs; i++ {
		go func(i int) {
			res, err := local.Run(g, shared, local.Options{Seed: int64(i % 2), Workers: 3})
			results[i] = outcome{res, err}
			done <- i
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for i, out := range results {
		if out.err != nil {
			t.Fatalf("run %d: %v", i, out.err)
		}
		fresh := core.NewAlternating("t1", core.Theorem1Plan(misNU, misSeq), core.MISPruner())
		want, err := local.Run(g, fresh, local.Options{Seed: int64(i % 2), Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.res, want) {
			t.Fatalf("run %d: shared-instance Result diverges from fresh instance", i)
		}
	}
}

// TestMemoPlanMatchesRaw checks the cache against the raw schedules step by
// step, including exhaustion, under interleaved out-of-order access.
func TestMemoPlanMatchesRaw(t *testing.T) {
	misNU, misSeq := oracleMISEngine()
	lubyNU, lubySeq := oracleLubyEngine()
	// Probe depths stay within the window indices an execution can actually
	// reach for plans that construct inner algorithms eagerly (cache
	// extension materialises every intermediate step, and colormis.New at
	// near-saturated guesses computes a gigantic Linial schedule); plans
	// over prebuilt algorithms are probed deep, past exhaustion.
	plans := map[string]struct {
		mk    func() core.Plan
		order []int
	}{
		"theorem1": {func() core.Plan { return core.Theorem1Plan(misNU, misSeq) },
			[]int{5, 0, 8, 3, 8, 1, 0}},
		"theorem2": {func() core.Plan { return core.Theorem2Plan(lubyNU, lubySeq) },
			[]int{5, 0, 17, 3, 17, 64, 1, 200, 64, 0}},
		"theorem4": {func() core.Plan { return core.Theorem4Plan([]local.Algorithm{luby.New()}) },
			[]int{5, 0, 17, 3, 17, 64, 1, 200, 64, 0}},
	}
	for name, tc := range plans {
		t.Run(name, func(t *testing.T) {
			raw := tc.mk()
			memo := core.MemoPlan(tc.mk())
			// Out-of-order probes, repeated to hit both cold and warm paths.
			for _, k := range tc.order {
				wantStep, wantOK := raw.Step(k)
				gotStep, gotOK := memo.Step(k)
				if wantOK != gotOK || wantStep.Budget != gotStep.Budget {
					t.Fatalf("Step(%d): memo (budget=%d, ok=%v) != raw (budget=%d, ok=%v)",
						k, gotStep.Budget, gotOK, wantStep.Budget, wantOK)
				}
				if gotOK && fmt.Sprint(gotStep.Algo.Name()) != fmt.Sprint(wantStep.Algo.Name()) {
					t.Fatalf("Step(%d): algo %q != %q", k, gotStep.Algo.Name(), wantStep.Algo.Name())
				}
			}
		})
	}
	// Idempotent wrapping.
	m := core.MemoPlan(core.Theorem4Plan(nil))
	if core.MemoPlan(m) != m {
		t.Fatal("MemoPlan re-wrapped an already-memoized plan")
	}
}
