package core

// This file defines the pruning-algorithm abstraction of Section 3. A
// pruning algorithm P takes a triplet (G, x, ŷ) — graph, input vector,
// tentative output vector — and selects a set W of nodes to prune, possibly
// rewriting the inputs of the survivors, subject to:
//
//   - solution detection: if (G, x, ŷ) solves the problem, every node is
//     pruned;
//   - gluing: any solution of the surviving configuration (G', x') combines
//     with ŷ restricted to W into a solution for (G, x).
//
// The framework runs pruners as constant-round local procedures: each node
// gathers the radius-Radius() ball of the *current induced graph* (records
// carry identity, input, tentative output and active-neighbour lists) and
// evaluates Decide on it. This matches the paper's convention that a
// pruning algorithm is a uniform constant-time local algorithm.

// BallNode is one record of a gathered ball view.
type BallNode struct {
	// ID is the node's identity.
	ID int64
	// Dist is its distance from the ball's centre in the induced graph.
	Dist int
	// Input is its current problem input x(v).
	Input any
	// Tentative is its tentative output ŷ(v). It may be nil or of an
	// unexpected type (the "restricted to i rounds" convention produces
	// arbitrary outputs); pruners must treat such values as non-solutions.
	Tentative any
	// Neighbors lists the identities of its neighbours in the induced graph.
	Neighbors []int64
}

// HasNeighbor reports whether the record lists the given identity.
func (b *BallNode) HasNeighbor(id int64) bool {
	for _, x := range b.Neighbors {
		if x == id {
			return true
		}
	}
	return false
}

// Ball is the radius-r view around a node.
type Ball struct {
	// CenterID is the identity of the node deciding.
	CenterID int64
	// Nodes maps identities to records; it always contains the centre.
	Nodes map[int64]*BallNode
}

// Center returns the centre record.
func (b *Ball) Center() *BallNode { return b.Nodes[b.CenterID] }

// Get returns the record with the given identity, or nil.
func (b *Ball) Get(id int64) *BallNode { return b.Nodes[id] }

// Decision is a pruner's verdict for one node.
type Decision struct {
	// Prune indicates the node's tentative output is final: the node leaves
	// the computation (it joins the set W of the paper).
	Prune bool
	// NewInput, if non-nil, replaces the node's input for the surviving
	// configuration (the x' of the paper). Ignored for pruned nodes.
	NewInput any
}

// Pruner is a pruning algorithm. Decide must be a pure function of the ball
// (it runs concurrently at every node) and must satisfy solution detection
// and gluing for its problem; the tests in this package check both
// properties on randomized instances.
type Pruner interface {
	Name() string
	// Radius is the ball radius Decide inspects; the framework charges
	// Radius+2 rounds per pruning phase (Radius gather rounds, one announce
	// round, one absorb round).
	Radius() int
	Decide(b *Ball) Decision
}
