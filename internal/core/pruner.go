package core

import "sort"

// This file defines the pruning-algorithm abstraction of Section 3. A
// pruning algorithm P takes a triplet (G, x, ŷ) — graph, input vector,
// tentative output vector — and selects a set W of nodes to prune, possibly
// rewriting the inputs of the survivors, subject to:
//
//   - solution detection: if (G, x, ŷ) solves the problem, every node is
//     pruned;
//   - gluing: any solution of the surviving configuration (G', x') combines
//     with ŷ restricted to W into a solution for (G, x).
//
// The framework runs pruners as constant-round local procedures: each node
// gathers the radius-Radius() ball of the *current induced graph* (records
// carry identity, input, tentative output and active-neighbour lists) and
// evaluates Decide on it. This matches the paper's convention that a
// pruning algorithm is a uniform constant-time local algorithm.

// BallRecord is one record of a gathered ball view. Records are plain
// values: the gather phase floods them as flat slices and stores them in a
// per-node arena, so a ball never owns per-record heap objects.
type BallRecord struct {
	// ID is the node's identity.
	ID int64
	// Dist is its distance from the ball's centre in the induced graph.
	Dist int
	// Input is its current problem input x(v).
	Input any
	// Tentative is its tentative output ŷ(v). It may be nil or of an
	// unexpected type (the "restricted to i rounds" convention produces
	// arbitrary outputs); pruners must treat such values as non-solutions.
	Tentative any
	// Neighbors lists the identities of its neighbours in the induced graph.
	// The slice is shared and immutable for the lifetime of the ball.
	Neighbors []int64
}

// HasNeighbor reports whether the record lists the given identity.
func (b *BallRecord) HasNeighbor(id int64) bool {
	for _, x := range b.Neighbors {
		if x == id {
			return true
		}
	}
	return false
}

// Ball is the radius-r view around a node. Its records live in one flat
// slice ordered by non-decreasing Dist (BFS discovery order), with the
// centre first; the order is deterministic, so pruners that scan Records()
// are replay-stable and may stop early once Dist exceeds their horizon.
type Ball struct {
	// CenterID is the identity of the node deciding.
	CenterID int64

	records []BallRecord
	index   map[int64]int32
}

// NewBall assembles a ball from loose records (one of which must carry
// CenterID = centerID). It is the constructor used by tests and by central
// (non-distributed) gathers; the transformer hot path builds balls in place
// from its pooled arena instead. Records are re-ordered to the canonical
// (Dist, ID) order with the centre first.
func NewBall(centerID int64, records []BallRecord) *Ball {
	sort.Slice(records, func(i, j int) bool {
		if records[i].ID == centerID {
			return records[j].ID != centerID
		}
		if records[j].ID == centerID {
			return false
		}
		if records[i].Dist != records[j].Dist {
			return records[i].Dist < records[j].Dist
		}
		return records[i].ID < records[j].ID
	})
	b := &Ball{CenterID: centerID, records: records, index: make(map[int64]int32, len(records))}
	for i := range records {
		b.index[records[i].ID] = int32(i)
	}
	return b
}

// reset points the ball at an externally pooled arena and index. The arena
// must hold the centre record first and be in BFS discovery order.
func (b *Ball) reset(centerID int64, records []BallRecord, index map[int64]int32) {
	b.CenterID = centerID
	b.records = records
	b.index = index
}

// Center returns the centre record.
func (b *Ball) Center() *BallRecord {
	if len(b.records) > 0 && b.records[0].ID == b.CenterID {
		return &b.records[0]
	}
	return b.Get(b.CenterID)
}

// Get returns the record with the given identity, or nil. The pointer is
// into the ball's backing array and is only valid for the duration of the
// Decide call that received the ball.
func (b *Ball) Get(id int64) *BallRecord {
	if i, ok := b.index[id]; ok {
		return &b.records[i]
	}
	return nil
}

// Records returns the full record slice in non-decreasing Dist order with
// the centre first. Callers must treat it as read-only and must not retain
// it past the Decide call.
func (b *Ball) Records() []BallRecord { return b.records }

// Len returns the number of records in the ball.
func (b *Ball) Len() int { return len(b.records) }

// Decision is a pruner's verdict for one node.
type Decision struct {
	// Prune indicates the node's tentative output is final: the node leaves
	// the computation (it joins the set W of the paper).
	Prune bool
	// NewInput, if non-nil, replaces the node's input for the surviving
	// configuration (the x' of the paper). Ignored for pruned nodes.
	NewInput any
}

// Pruner is a pruning algorithm. Decide must be a pure function of the ball
// (it runs concurrently at every node) and must satisfy solution detection
// and gluing for its problem; the tests in this package check both
// properties on randomized instances. Decide must not retain the ball or
// any record pointer obtained from it: the backing storage is pooled and
// rewritten by the next window.
type Pruner interface {
	Name() string
	// Radius is the ball radius Decide inspects; the framework charges
	// Radius+2 rounds per pruning phase (Radius gather rounds, one announce
	// round, one absorb round).
	Radius() int
	Decide(b *Ball) Decision
}
