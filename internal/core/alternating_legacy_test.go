package core_test

// newAlternatingLegacy is the pre-refactor alternating-algorithm hot path,
// frozen verbatim (modulo being moved outside the package, and building the
// Decide ball through core.NewBall now that Ball no longer exposes a map)
// as a comparison baseline for the BenchmarkAlternating* benchmarks and as
// a differential-testing oracle: every gather round it re-floods the whole
// known ball as a fresh []*BallRecord, keeps the ball in a freshly
// allocated map per window, rebuilds the active-id slice in both
// beginWindow and gather, allocates a degree-sized send slice per
// announce/gather round, and re-walks the plan schedule from scratch at
// every window of every node.

import (
	"math/rand/v2"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/local"
)

func newAlternatingLegacy(name string, plan core.Plan, pruner core.Pruner) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info local.Info) local.Node {
			n := &legacyAltNode{info: info, plan: plan, pruner: pruner, input: info.Input}
			n.activePorts = make([]int, info.Degree)
			for p := range n.activePorts {
				n.activePorts[p] = p
			}
			return n
		},
	}
}

// legacyGatherMsg floods whole-ball record sets during the pruning phase.
type legacyGatherMsg struct {
	records []*core.BallRecord
}

// legacyAnnounceMsg reports whether the sender survives.
type legacyAnnounceMsg struct {
	surviving bool
}

type legacyAltNode struct {
	info   local.Info
	plan   core.Plan
	pruner core.Pruner

	k      int
	step   core.Step
	offset int
	sub    *local.Subrun

	activePorts []int
	input       any
	tentative   any
	known       map[int64]*core.BallRecord
	decision    core.Decision
	exhausted   bool
}

func (n *legacyAltNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.exhausted {
		return nil, false
	}
	if n.offset == 0 && !n.beginWindow() {
		return nil, false
	}
	budget := n.step.Budget
	radius := n.pruner.Radius()
	var send []local.Message
	switch {
	case n.offset < budget: // run phase
		send = n.stepInner(recv)
	case n.offset < budget+radius: // gather phase
		send = n.gather(n.offset-budget == 0, recv)
	case n.offset == budget+radius: // announce phase
		n.mergeRecords(recv)
		records := make([]core.BallRecord, 0, len(n.known))
		for _, rec := range n.known {
			records = append(records, *rec)
		}
		n.decision = n.pruner.Decide(core.NewBall(n.info.ID, records))
		n.known = nil
		send = n.broadcastActive(legacyAnnounceMsg{surviving: !n.decision.Prune})
		if n.decision.Prune {
			return send, true
		}
	default: // absorb phase
		n.absorb(recv)
		n.k++
		n.offset = 0
		return nil, false
	}
	n.offset++
	return send, false
}

func (n *legacyAltNode) beginWindow() bool {
	step, ok := n.plan.Step(n.k)
	if !ok {
		n.exhausted = true
		return false
	}
	if step.Budget < 1 {
		step.Budget = 1
	}
	n.step = step
	ids := make([]int64, len(n.activePorts))
	for i, p := range n.activePorts {
		ids[i] = n.info.Neighbors[p]
	}
	info := local.Info{
		ID:        n.info.ID,
		Degree:    len(n.activePorts),
		Neighbors: ids,
		Input:     n.input,
		Rand:      rand.New(rand.NewPCG(n.info.Rand.Uint64(), n.info.Rand.Uint64())),
	}
	n.sub = local.NewSubrun(step.Algo.New(info), n.activePorts)
	return true
}

func (n *legacyAltNode) stepInner(recv []local.Message) []local.Message {
	send := n.sub.Step(recv, n.info.Degree)
	if n.offset+1 == n.step.Budget {
		n.tentative = n.sub.Output()
		n.sub = nil
	}
	return send
}

func (n *legacyAltNode) gather(first bool, recv []local.Message) []local.Message {
	if first {
		ids := make([]int64, len(n.activePorts))
		for i, p := range n.activePorts {
			ids[i] = n.info.Neighbors[p]
		}
		n.known = map[int64]*core.BallRecord{n.info.ID: {
			ID:        n.info.ID,
			Dist:      0,
			Input:     n.input,
			Tentative: n.tentative,
			Neighbors: ids,
		}}
	} else {
		n.mergeRecords(recv)
	}
	records := make([]*core.BallRecord, 0, len(n.known))
	for _, rec := range n.known {
		records = append(records, rec)
	}
	return n.broadcastActive(legacyGatherMsg{records: records})
}

func (n *legacyAltNode) mergeRecords(recv []local.Message) {
	for _, p := range n.activePorts {
		gm, ok := recv[p].(legacyGatherMsg)
		if !ok {
			continue
		}
		for _, rec := range gm.records {
			d := rec.Dist + 1
			if have, seen := n.known[rec.ID]; !seen {
				cp := &core.BallRecord{ID: rec.ID, Dist: d, Input: rec.Input, Tentative: rec.Tentative, Neighbors: rec.Neighbors}
				n.known[rec.ID] = cp
			} else if d < have.Dist {
				have.Dist = d
			}
		}
	}
}

func (n *legacyAltNode) absorb(recv []local.Message) {
	next := n.activePorts[:0]
	for _, p := range n.activePorts {
		if am, ok := recv[p].(legacyAnnounceMsg); ok && am.surviving {
			next = append(next, p)
		}
	}
	n.activePorts = next
	if n.decision.NewInput != nil {
		n.input = n.decision.NewInput
	}
}

func (n *legacyAltNode) broadcastActive(msg local.Message) []local.Message {
	if len(n.activePorts) == 0 {
		return nil
	}
	send := make([]local.Message, n.info.Degree)
	for _, p := range n.activePorts {
		send[p] = msg
	}
	return send
}

func (n *legacyAltNode) Output() any { return n.tentative }

var _ local.Node = (*legacyAltNode)(nil)
