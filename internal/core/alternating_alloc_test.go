package core

// Allocation regression tests for the transformer hot path: the gather
// phase must run windows out of pooled state (arena, index, id slice, send
// buffer, window RNG) instead of reallocating per round, and a warm
// memoized plan must serve steps without allocating. A regression to
// per-window reallocation (the pre-refactor shape: fresh ball map, record
// pointers, whole-set re-flood slices, degree-sized send slices, fresh
// RNGs) costs >20 allocations per node per window and trips these bounds.

import (
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// falseAlgo outputs false immediately: under the MIS pruner nobody is
// selected, so nobody is pruned and the surviving population stays
// constant — windows built from it isolate the pruning machinery's cost.
type falseNode struct{}

func (falseNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, true }
func (falseNode) Output() any                                        { return false }

var falseAlgo = local.AlgorithmFunc{
	AlgoName: "always-false",
	NewNode:  func(local.Info) local.Node { return falseNode{} },
}

// paddedPlan runs `pad` idle windows before one correct MIS window.
func paddedPlan(g *graph.Graph, pad int) Plan {
	correct := colormis.New(g.MaxDegree(), g.MaxIDValue())
	budget := colormis.BoundDelta(g.MaxDegree()) + colormis.BoundM(int(g.MaxIDValue()))
	steps := make([]Step, 0, pad+1)
	for i := 0; i < pad; i++ {
		steps = append(steps, Step{Algo: falseAlgo, Budget: 2})
	}
	steps = append(steps, Step{Algo: correct, Budget: budget})
	return listPlan{steps: steps}
}

func runPadded(t *testing.T, g *graph.Graph, pad int) float64 {
	t.Helper()
	// NewAlternating memoizes the plan; constructing it outside the measured
	// function matches real usage, where one algorithm value serves many
	// runs and windows.
	alt := NewAlternating("alloc-probe", paddedPlan(g, pad), MISPruner())
	return testing.AllocsPerRun(20, func() {
		if _, err := local.Run(g, alt, local.Options{Seed: 1, Sequential: true}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGatherSteadyStateAllocs(t *testing.T) {
	g, err := graph.GNP(64, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := runPadded(t, g, 2)
	long := runPadded(t, g, 6)
	perWindow := (long - base) / float64(4*g.N())
	t.Logf("allocs: pad=2 %.0f, pad=6 %.0f, per node-window %.2f", base, long, perWindow)
	// Steady-state budget per node per idle window: one gatherMsg boxing
	// per gather round (pruner radius 2) plus small constant slack for the
	// pruner's Decide. The legacy path costs >20 here.
	if perWindow > 8 {
		t.Errorf("gather phase allocates %.2f allocs per node-window; pooled-state budget is 8", perWindow)
	}
}

func TestMemoPlanStepAllocs(t *testing.T) {
	nu := NonUniformFunc{
		AlgoName: "probe",
		Needs:    []Param{ParamMaxID},
		Build:    func(Params) local.Algorithm { return falseAlgo },
	}
	plan := MemoPlan(Theorem1Plan(nu, Additive(func(x int) int { return x })))
	// Warm the cache, then the read path must be allocation-free.
	for k := 0; k < 12; k++ {
		if _, ok := plan.Step(k); !ok {
			t.Fatalf("plan exhausted at %d during warmup", k)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < 12; k++ {
			plan.Step(k)
		}
	})
	if allocs != 0 {
		t.Errorf("warm MemoPlan.Step allocates %.1f per 12-step sweep, want 0", allocs)
	}
}
