package core

import (
	"github.com/unilocal/unilocal/internal/mathutil"
)

// SetSequence is a bounded set-sequence (S_f(i))_i for a running-time bound
// f, per Section 4.2 of the paper:
//
//   - every guess vector y with f(y) <= i is dominated (coordinate-wise) by
//     some vector in Sets(i);
//   - every vector x in Sets(i) satisfies f(x) <= C()*i (boundedness).
//
// |Sets(i)| plays the role of the sequence-number function s_f(i); for the
// constructions below it is 1 (additive bounds) or O(log i) (product
// bounds), matching Observation 4.1.
type SetSequence interface {
	Sets(i int) [][]int
	C() int
	// Arity is the number of coordinates of the vectors produced.
	Arity() int
}

// Additive returns the set-sequence of an additive bound
// f(x_1..x_l) = sum_k terms[k](x_k) (Observation 4.1, first case):
// S_f(i) is a single vector whose k-th coordinate is the largest value with
// terms[k] <= i, and the bounding constant is l.
func Additive(terms ...AscFunc) SetSequence {
	return additiveSeq{terms: terms}
}

type additiveSeq struct{ terms []AscFunc }

func (s additiveSeq) Arity() int { return len(s.terms) }
func (s additiveSeq) C() int     { return len(s.terms) }

func (s additiveSeq) Sets(i int) [][]int {
	if i < 1 {
		return nil
	}
	x := make([]int, len(s.terms))
	for k, f := range s.terms {
		x[k] = MaxArg(f, i)
		if x[k] == 0 {
			return nil // no vector exists: S_f(i) is empty
		}
	}
	return [][]int{x}
}

// Product returns the set-sequence of a product bound
// f(x, y) = f_a(x) * f_b(y) over the concatenated coordinates of a and b
// (Observation 4.1, second case, generalised to compose recursively): for
// budget i it crosses a.Sets(2^j) with b.Sets(2^(L-j+1)) for j = 0..L,
// L = ceil(log2 i), giving |S(i)| = O(log i) vectors with bounding constant
// 4*C_a*C_b. Both factors must be >= 1 pointwise.
func Product(a, b SetSequence) SetSequence {
	return productSeq{a: a, b: b}
}

type productSeq struct{ a, b SetSequence }

func (s productSeq) Arity() int { return s.a.Arity() + s.b.Arity() }
func (s productSeq) C() int     { return 4 * s.a.C() * s.b.C() }

func (s productSeq) Sets(i int) [][]int {
	if i < 1 {
		return nil
	}
	li := mathutil.CeilLog2(i)
	var out [][]int
	for j := 0; j <= li; j++ {
		xa := s.a.Sets(mathutil.SatPow2(j))
		xb := s.b.Sets(mathutil.SatPow2(li - j + 1))
		for _, va := range xa {
			for _, vb := range xb {
				v := make([]int, 0, len(va)+len(vb))
				v = append(v, va...)
				v = append(v, vb...)
				out = append(out, v)
			}
		}
	}
	return out
}

// IsModeratelySlow numerically checks the Section 2 property
// alpha*f(i) >= f(2i) for all sampled i in [2, maxX].
func IsModeratelySlow(f AscFunc, alpha, maxX int) bool {
	for i := 2; i <= maxX; i = sampleNext(i) {
		if mathutil.SatMul(alpha, f(i)) < f(mathutil.SatMul(2, i)) {
			return false
		}
	}
	return true
}

// IsModeratelyIncreasing additionally checks f(alpha*i) >= 2*f(i).
func IsModeratelyIncreasing(f AscFunc, alpha, maxX int) bool {
	if !IsModeratelySlow(f, alpha, maxX) {
		return false
	}
	for i := 2; i <= maxX; i = sampleNext(i) {
		if f(mathutil.SatMul(alpha, i)) < mathutil.SatMul(2, f(i)) {
			return false
		}
	}
	return true
}

// IsModeratelyFast additionally checks x < f(x) <= x^degree (the polynomial
// envelope of Section 2) on the sampled range.
func IsModeratelyFast(f AscFunc, alpha, degree, maxX int) bool {
	if !IsModeratelyIncreasing(f, alpha, maxX) {
		return false
	}
	for i := 2; i <= maxX; i = sampleNext(i) {
		fx := f(i)
		if fx <= i {
			return false
		}
		if fx > mathutil.SatPow(i, degree) {
			return false
		}
	}
	return true
}

// sampleNext steps the numeric property checks over a dense-then-geometric
// grid.
func sampleNext(i int) int {
	if i < 64 {
		return i + 1
	}
	return i + i/3
}
