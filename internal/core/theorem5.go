package core

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
	"github.com/unilocal/unilocal/internal/problems"
)

// This file implements Section 5.2 of the paper (Theorem 5): the strong
// list coloring (SLC) problem, its pruning algorithm, the degree layering
// D_1 = 1, D_{i+1} = min{l : g(l) >= 2 g(D_i)}, and the two-phase
// construction that turns a non-uniform g(Δ̃)-coloring algorithm into a
// uniform O(g(Δ))-coloring algorithm.

// SLCInput is the input of the strong list coloring problem at one node:
// the degree estimate Δ̂ shared by its layer, the palette bound Ĝ = g(Δ̂),
// and the set of removed colors. The implicit list is
// L(v) = [1,Ĝ] x [1,Δ̂+1] minus Removed; the SLC invariant maintained by
// the pruner is that every base color retains at least deg(v)+1 indices.
// SLCInput values are shared in messages and must be treated as immutable.
type SLCInput struct {
	DeltaHat int
	GHat     int
	Removed  map[problems.SLCColor]bool
}

// InList reports whether the color is in the node's list.
func (in *SLCInput) InList(c problems.SLCColor) bool {
	return c.C >= 1 && c.C <= in.GHat && c.J >= 1 && c.J <= in.DeltaHat+1 && !in.Removed[c]
}

// withRemoved returns a copy of the input with extra colors removed.
func (in *SLCInput) withRemoved(extra []problems.SLCColor) *SLCInput {
	out := &SLCInput{DeltaHat: in.DeltaHat, GHat: in.GHat,
		Removed: make(map[problems.SLCColor]bool, len(in.Removed)+len(extra))}
	for c := range in.Removed {
		out.Removed[c] = true
	}
	for _, c := range extra {
		out.Removed[c] = true
	}
	return out
}

// sameInstance reports whether two SLC inputs belong to the same layer
// instance.
func sameInstance(a, b *SLCInput) bool {
	return a != nil && b != nil && a.DeltaHat == b.DeltaHat && a.GHat == b.GHat
}

// SLCPruner returns the pruning algorithm for strong list coloring from the
// proof of Theorem 5: a node is pruned iff its tentative color lies in its
// list and differs from the tentative colors of all neighbours of its layer
// instance; survivors remove the pruned neighbours' colors from their
// lists. It is monotone with respect to the layer parameters (inputs keep
// their Δ̂) and with respect to every non-decreasing graph parameter.
func SLCPruner() Pruner { return slcPruner{} }

type slcPruner struct{}

func (slcPruner) Name() string { return "P_SLC" }

// Radius is 2: deciding whether a neighbour is pruned needs that
// neighbour's neighbourhood.
func (slcPruner) Radius() int { return 2 }

func (p slcPruner) Decide(b *Ball) Decision {
	c := b.Center()
	if p.pruned(b, c) {
		return Decision{Prune: true}
	}
	in, ok := c.Input.(*SLCInput)
	if !ok {
		return Decision{}
	}
	var removed []problems.SLCColor
	for _, nbid := range c.Neighbors {
		nb := b.Get(nbid)
		if nb == nil || !p.pruned(b, nb) {
			continue
		}
		nbin, okIn := nb.Input.(*SLCInput)
		if !okIn || !sameInstance(in, nbin) {
			continue
		}
		if col, okC := nb.Tentative.(problems.SLCColor); okC {
			removed = append(removed, col)
		}
	}
	if len(removed) == 0 {
		return Decision{}
	}
	return Decision{NewInput: in.withRemoved(removed)}
}

// pruned evaluates the prune predicate for any record whose neighbourhood
// is inside the ball.
func (slcPruner) pruned(b *Ball, x *BallRecord) bool {
	in, ok := x.Input.(*SLCInput)
	if !ok {
		return false
	}
	col, ok := x.Tentative.(problems.SLCColor)
	if !ok || !in.InList(col) {
		return false
	}
	for _, nbid := range x.Neighbors {
		nb := b.Get(nbid)
		if nb == nil {
			continue
		}
		nbin, okIn := nb.Input.(*SLCInput)
		if !okIn || !sameInstance(in, nbin) {
			continue
		}
		if nbcol, okC := nb.Tentative.(problems.SLCColor); okC && nbcol == col {
			return false
		}
	}
	return true
}

var _ Pruner = slcPruner{}

// ColoringEngine is a non-uniform coloring algorithm consumed by Theorem 5:
// New(Δ̃, m̃) colors with palette [1, G(Δ̃)] in at most
// BoundDelta(Δ̃)+BoundM(m̃) rounds, treating an int node input as initial
// color (identities by default). G must be moderately-fast (Section 2).
type ColoringEngine interface {
	Name() string
	G(delta int) int
	New(deltaHat int, mHat int64) local.Algorithm
	BoundDelta(d int) int
	BoundM(m int) int
}

// Layers computes the degree thresholds D_1, D_2, ... of the proof of
// Theorem 5 for the palette bound g.
func Layers(g func(int) int) []int {
	ds := []int{1}
	for len(ds) < 128 {
		last := ds[len(ds)-1]
		// Stop before saturated palette arithmetic can stall the doubling;
		// degrees beyond the final threshold fall back to Δ̂ = deg+1.
		if last >= GuessCap/4 || g(last) >= mathutil.MaxRoundBudget/4 {
			break
		}
		target := mathutil.SatMul(2, g(last))
		// Smallest l with g(l) >= target.
		lo, hi := last, last
		for g(hi) < target && hi < GuessCap/4 {
			hi *= 2
		}
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if g(mid) >= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		if g(hi) < target {
			break
		}
		ds = append(ds, hi)
	}
	return ds
}

// layerIndex returns i such that D_i <= max(deg,1) < D_{i+1}, together with
// the degree estimate Δ̂_i = D_{i+1}.
func layerIndex(ds []int, deg int) (int, int) {
	if deg < 1 {
		deg = 1
	}
	i := 0
	for i+1 < len(ds) && ds[i+1] <= deg {
		i++
	}
	deltaHat := deg + 1
	if i+1 < len(ds) {
		deltaHat = ds[i+1]
	}
	return i, deltaHat
}

// UniformColoringPalette bounds the number of colors used by
// UniformColoring(engine) on graphs with maximum degree maxDeg: colors lie
// in (g(Δ̂), 2g(Δ̂)] per layer, so the total is at most 2g(D_{i_max+1}).
func UniformColoringPalette(engine ColoringEngine, maxDeg int) int {
	ds := Layers(engine.G)
	_, deltaHat := layerIndex(ds, maxDeg)
	return 2 * engine.G(deltaHat)
}

// UniformColoring applies Theorem 5 to the engine, producing a uniform
// O(g(Δ))-coloring algorithm (output: int color). It verifies numerically
// that g is moderately-fast.
func UniformColoring(engine ColoringEngine) (local.Algorithm, error) {
	if !IsModeratelyFast(engine.G, 16, 8, 1<<12) {
		return nil, fmt.Errorf("core: palette bound of %s is not moderately-fast", engine.Name())
	}
	ds := Layers(engine.G)

	// Phase 1: uniform SLC via Theorem 1 (Γ = {Δ̂-instance-max, m}; the
	// degree guess only sizes the budget, every node reads its own Δ̂ from
	// its input).
	slcNU := NonUniformFunc{
		AlgoName: "slc(" + engine.Name() + ")",
		Needs:    []Param{ParamMaxDegree, ParamMaxID},
		Build: func(p Params) local.Algorithm {
			return slcSolver(engine, p.M)
		},
	}
	seq := Additive(
		func(d int) int { return mathutil.SatAdd(engine.BoundDelta(d), 8) },
		engine.BoundM,
	)
	phase1 := Uniform(slcNU, seq, SLCPruner())
	phase1WithInput := local.AlgorithmFunc{
		AlgoName: phase1.Name(),
		NewNode: func(info local.Info) local.Node {
			_, deltaHat := layerIndex(ds, info.Degree)
			info.Input = &SLCInput{DeltaHat: deltaHat, GHat: engine.G(deltaHat)}
			return phase1.New(info)
		},
	}

	phase2 := local.AlgorithmFunc{
		AlgoName: "relist(" + engine.Name() + ")",
		NewNode: func(info local.Info) local.Node {
			return newPhase2Node(engine, ds, info)
		},
	}
	return local.Compose("theorem5("+engine.Name()+")",
		local.Stage{Algo: phase1WithInput, MakeInput: func(orig, _ any) any { return orig }},
		local.Stage{Algo: phase2},
	), nil
}

// maskKey is exchanged in round 0 of the masked sub-executions.
type maskKey struct {
	deltaHat int
}

// slcSolver adapts the engine to the SLC problem: run the engine with the
// node's own Δ̂ and the guessed m̃, masked to the same layer instance, then
// project the color into the list.
func slcSolver(engine ColoringEngine, mHat int64) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "slc-solve(" + engine.Name() + ")",
		NewNode: func(info local.Info) local.Node {
			in, _ := info.Input.(*SLCInput)
			return &maskedNode{
				info: info,
				key:  slcKey(in),
				makeInner: func(ports []int, ids []int64) local.Node {
					dh := 0
					if in != nil {
						dh = in.DeltaHat
					}
					return engine.New(dh, mHat).New(local.Info{
						ID: info.ID, Degree: len(ports), Neighbors: ids,
						Rand: local.DeriveRand(int64(info.Rand.Uint64()), info.ID, 5),
					})
				},
				project: func(out any) any {
					return projectSLC(in, out)
				},
			}
		},
	}
}

func slcKey(in *SLCInput) maskKey {
	if in == nil {
		return maskKey{deltaHat: -1}
	}
	return maskKey{deltaHat: in.DeltaHat}
}

// projectSLC maps an engine color to a list color (c, min j available).
func projectSLC(in *SLCInput, out any) any {
	if in == nil {
		return nil
	}
	c, ok := out.(int)
	if !ok || c < 1 || c > in.GHat {
		c = 1
	}
	for j := 1; j <= in.DeltaHat+1; j++ {
		col := problems.SLCColor{C: c, J: j}
		if in.InList(col) {
			return col
		}
	}
	return problems.SLCColor{C: c, J: 1}
}

// newPhase2Node recolors within the layer: the phase-1 list color, encoded
// as an integer, seeds a fresh engine run with guesses derived from the
// layer alone; the final color is offset into the layer's private range
// (g(Δ̂), 2g(Δ̂)].
func newPhase2Node(engine ColoringEngine, ds []int, info local.Info) local.Node {
	_, deltaHat := layerIndex(ds, info.Degree)
	gHat := engine.G(deltaHat)
	mHat := int64(gHat) * int64(deltaHat+1)
	col, _ := info.Input.(problems.SLCColor)
	encoded := (col.C-1)*(deltaHat+1) + col.J
	if encoded < 1 {
		encoded = 1
	}
	return &maskedNode{
		info: info,
		key:  maskKey{deltaHat: deltaHat},
		makeInner: func(ports []int, ids []int64) local.Node {
			return engine.New(deltaHat, mHat).New(local.Info{
				ID: info.ID, Degree: len(ports), Neighbors: ids,
				Input: encoded,
				Rand:  local.DeriveRand(int64(info.Rand.Uint64()), info.ID, 7),
			})
		},
		project: func(out any) any {
			c, ok := out.(int)
			if !ok || c < 1 || c > gHat {
				c = 1
			}
			return gHat + c
		},
	}
}

// maskedNode exchanges mask keys in round 0 and then drives an inner node
// over the ports whose neighbours share the key, projecting the inner
// output on termination.
type maskedNode struct {
	info      local.Info
	key       maskKey
	makeInner func(ports []int, ids []int64) local.Node
	project   func(out any) any

	sub *local.Subrun
	out any
}

func (n *maskedNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if r == 0 {
		return local.Broadcast(n.key, n.info.Degree), false
	}
	if r == 1 {
		ports := make([]int, 0, n.info.Degree)
		ids := make([]int64, 0, n.info.Degree)
		for p, m := range recv {
			if k, ok := m.(maskKey); ok && k == n.key {
				ports = append(ports, p)
				ids = append(ids, n.info.Neighbors[p])
			}
		}
		n.sub = local.NewSubrun(n.makeInner(ports, ids), ports)
		send := n.sub.Step(make([]local.Message, n.info.Degree), n.info.Degree)
		return send, n.finishIfDone()
	}
	send := n.sub.Step(recv, n.info.Degree)
	return send, n.finishIfDone()
}

func (n *maskedNode) finishIfDone() bool {
	if !n.sub.Done() {
		return false
	}
	n.out = n.project(n.sub.Output())
	return true
}

func (n *maskedNode) Output() any {
	if n.out != nil {
		return n.out
	}
	if n.sub != nil {
		return n.project(n.sub.Output())
	}
	return nil
}

var _ local.Node = (*maskedNode)(nil)
