package core

import (
	"sync"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/matching"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// TestUniformMISUnderWakeupSkew composes the full Theorem 1 transformer
// with the Section 2 wake-up machinery: the uniform algorithm must stay
// correct when nodes wake up at different times (the α-synchronizer carries
// the whole alternating schedule).
func TestUniformMISUnderWakeupSkew(t *testing.T) {
	nu, seq := misEngine()
	uniform := Uniform(nu, seq, MISPruner())
	skewed := local.WithWakeup(uniform, func(id int64) int { return int(id*13) % 23 })
	g, err := graph.GNP(120, 0.05, 91)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, skewed, local.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
}

// spyCollector records the Info every inner instantiation observes, so the
// test can check what the alternating wrapper presents to its engines.
type spyCollector struct {
	mu    sync.Mutex
	infos []local.Info
}

func (c *spyCollector) record(info local.Info) {
	c.mu.Lock()
	c.infos = append(c.infos, info)
	c.mu.Unlock()
}

// spyAlgorithm funnels all instantiations into one shared collector.
type spyAlgorithm struct {
	collector *spyCollector
	inner     local.Algorithm
}

func (s *spyAlgorithm) Name() string { return "spy(" + s.inner.Name() + ")" }

func (s *spyAlgorithm) New(info local.Info) local.Node {
	s.collector.record(info)
	return s.inner.New(info)
}

// TestAlternatingPresentsInducedSubgraphs verifies the heart of the
// alternating wrapper: every inner incarnation sees only surviving
// neighbours, and neighbourhoods shrink monotonically window by window.
func TestAlternatingPresentsInducedSubgraphs(t *testing.T) {
	g, err := graph.GNP(80, 0.06, 95)
	if err != nil {
		t.Fatal(err)
	}
	nu, seq := misEngine()
	collector := &spyCollector{}
	spied := NonUniformFunc{
		AlgoName: nu.Name(),
		Needs:    nu.Params(),
		Build: func(p Params) local.Algorithm {
			return &spyAlgorithm{collector: collector, inner: nu.WithParams(p)}
		},
	}
	uniform := Uniform(spied, seq, MISPruner())
	res, err := local.Run(g, uniform, local.Options{Seed: 4, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
	// Every info's neighbour list must be a subset of the node's true
	// neighbourhood in g, with matching degree.
	idIndex := make(map[int64]int, g.N())
	for u := 0; u < g.N(); u++ {
		idIndex[g.ID(u)] = u
	}
	checked := 0
	seen := make(map[int64]int) // id -> last seen induced degree
	for _, info := range collector.infos {
		u, ok := idIndex[info.ID]
		if !ok {
			t.Fatalf("inner saw unknown identity %d", info.ID)
		}
		if info.Degree != len(info.Neighbors) {
			t.Fatalf("degree %d != |neighbours| %d", info.Degree, len(info.Neighbors))
		}
		for _, nb := range info.Neighbors {
			v, okN := idIndex[nb]
			if !okN || !g.HasEdge(u, v) {
				t.Fatalf("inner neighbour %d of %d not a real edge", nb, info.ID)
			}
		}
		if last, had := seen[info.ID]; had && info.Degree > last {
			t.Fatalf("induced degree of %d grew from %d to %d", info.ID, last, info.Degree)
		}
		seen[info.ID] = info.Degree
		checked++
	}
	if checked < g.N() {
		t.Fatalf("spy saw only %d incarnations for %d nodes", checked, g.N())
	}
}

// forgeMatching is an adversarial engine: it emits claims that *look* like
// canonical matching claims but name other nodes' edges, plus half-claims.
// The matching pruner must never glue these into an invalid matching, and
// the transformer must still converge once the real engine runs.
type forgeNode struct {
	info local.Info
}

func (n forgeNode) Round(r int, _ []local.Message) ([]local.Message, bool) {
	return nil, true
}

func (n forgeNode) Output() any {
	if len(n.info.Neighbors) == 0 {
		return problems.EdgeClaim{}
	}
	switch n.info.ID % 4 {
	case 0: // half-claim: name a real incident edge, partner disagrees
		return problems.NewEdgeClaim(n.info.ID, n.info.Neighbors[0])
	case 1: // forged: name an edge between two other nodes
		if len(n.info.Neighbors) >= 2 {
			return problems.NewEdgeClaim(n.info.Neighbors[0], n.info.Neighbors[1])
		}
		return problems.NewEdgeClaim(n.info.Neighbors[0], n.info.Neighbors[0]+1)
	case 2:
		return "garbage"
	default:
		return problems.EdgeClaim{}
	}
}

func TestTransformerSurvivesForgedClaims(t *testing.T) {
	g, err := graph.GNP(70, 0.07, 97)
	if err != nil {
		t.Fatal(err)
	}
	forger := local.AlgorithmFunc{
		AlgoName: "forger",
		NewNode:  func(info local.Info) local.Node { return forgeNode{info: info} },
	}
	d, m := g.MaxDegree(), g.MaxIDValue()
	real := matching.New(d, m)
	budget := matching.BoundDelta(d) + matching.BoundM(int(m))
	plan := listPlan{steps: []Step{
		{Algo: forger, Budget: 2},
		{Algo: forger, Budget: 2},
		{Algo: real, Budget: budget},
		{Algo: real, Budget: budget},
		{Algo: real, Budget: budget},
	}}
	alt := NewAlternating("forged-then-real", plan, MatchingPruner())
	res, err := local.Run(g, alt, local.Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMaximalMatching(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

// TestUniformMISDeterministicReplay pins the full transformer pipeline:
// identical seeds give identical outputs and running times across parallel
// and sequential engines.
func TestUniformMISDeterministicReplay(t *testing.T) {
	nu, seq := misEngine()
	uniform := Uniform(nu, seq, MISPruner())
	g, err := graph.GNP(90, 0.05, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, err := local.Run(g, uniform, local.Options{Seed: 21, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := local.Run(g, uniform, local.Options{Seed: 21, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ across schedulers: %d vs %d", a.Rounds, b.Rounds)
	}
	for u := range a.Outputs {
		if a.Outputs[u] != b.Outputs[u] {
			t.Fatalf("output %d differs across schedulers", u)
		}
	}
}

// TestLasVegasManySeeds hammers the Theorem 2 transform: correctness must
// hold on every seed (the Las Vegas guarantee), with only the running time
// varying.
func TestLasVegasManySeeds(t *testing.T) {
	nu, seq := lubyEngine()
	lv := LasVegas(nu, seq, MISPruner())
	g, err := graph.GNP(100, 0.06, 101)
	if err != nil {
		t.Fatal(err)
	}
	minRounds, maxRounds := 1<<30, 0
	for seed := int64(0); seed < 12; seed++ {
		res, err := local.Run(g, lv, local.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		in, err := problems.Bools(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		minRounds = min(minRounds, res.Rounds)
		maxRounds = max(maxRounds, res.Rounds)
	}
	t.Logf("Las Vegas running-time range over 12 seeds: [%d, %d]", minRounds, maxRounds)
}

// TestFastestOfPicksCheapEngineOnStars pins Theorem 4's selectivity
// quantitatively: on a star the greedy engine finishes in O(1), so the
// combination must stay well below the Δ-engine's Ω(Δ) cost.
func TestFastestOfPicksCheapEngineOnStars(t *testing.T) {
	nu, seq := misEngine()
	uniformDet := Uniform(nu, seq, MISPruner())
	greedy := local.AlgorithmFunc{
		AlgoName: "greedy-seq",
		NewNode:  func(info local.Info) local.Node { return &greedyStarNode{info: info} },
	}
	combined := FastestOf("fastest", MISPruner(), uniformDet, greedy)
	g := graph.Star(800)
	res, err := local.Run(g, combined, local.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(g, in); err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 120 {
		t.Errorf("Theorem 4 took %d rounds on a star; the O(1) engine should dominate", res.Rounds)
	}
}

// greedyStarNode is the minimal greedy MIS (joins when minimal among
// undecided neighbours) used as the cheap engine.
type greedyStarNode struct {
	info    local.Info
	in      bool
	retired map[int64]bool
}

func (n *greedyStarNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.retired == nil {
		n.retired = make(map[int64]bool)
	}
	for _, m := range recv {
		switch v := m.(type) {
		case int64:
			if v > 0 {
				return local.Broadcast(int64(-n.info.ID), n.info.Degree), true
			}
			n.retired[-v] = true
		}
	}
	for _, nb := range n.info.Neighbors {
		if !n.retired[nb] && nb < n.info.ID {
			return nil, false
		}
	}
	n.in = true
	return local.Broadcast(n.info.ID, n.info.Degree), true
}

func (n *greedyStarNode) Output() any { return n.in }

// Silence the unused-import guard for colormis, which misEngine references
// indirectly through transform_test.
var _ = colormis.New
