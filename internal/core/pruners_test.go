package core

import (
	"math/rand/v2"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/problems"
)

// decideAll evaluates the pruner at every node of g, with the given inputs
// and tentative outputs, by centrally building each radius-R ball. It
// returns the prune mask (the set W of the paper).
func decideAll(g *graph.Graph, p Pruner, inputs, outputs []any) []bool {
	pruned := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		pruned[u] = p.Decide(buildBall(g, p.Radius(), u, inputs, outputs)).Prune
	}
	return pruned
}

// buildBall gathers the radius-R ball around u centrally (test-only
// counterpart of the distributed gather phase).
func buildBall(g *graph.Graph, radius, u int, inputs, outputs []any) *Ball {
	dist := map[int]int{u: 0}
	queue := []int{u}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		if dist[x] < radius {
			for _, y := range g.Neighbors(x) {
				if _, seen := dist[int(y)]; !seen {
					dist[int(y)] = dist[x] + 1
					queue = append(queue, int(y))
				}
			}
		}
	}
	records := make([]BallRecord, 0, len(queue))
	for _, x := range queue {
		var in, out any
		if inputs != nil {
			in = inputs[x]
		}
		if outputs != nil {
			out = outputs[x]
		}
		records = append(records, BallRecord{
			ID:        g.ID(x),
			Dist:      dist[x],
			Input:     in,
			Tentative: out,
			Neighbors: g.NeighborIDs(nil, x),
		})
	}
	return NewBall(g.ID(u), records)
}

func boolsToAny(bs []bool) []any {
	out := make([]any, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}

func testGraphSuite(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(70, 0.08, 13)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(15)
	return map[string]*graph.Graph{
		"path":   graph.Path(12),
		"cycle":  cyc,
		"star":   graph.Star(9),
		"clique": graph.Complete(8),
		"grid":   graph.Grid(5, 6),
		"gnp":    gnp,
		"tree":   graph.RandomTree(40, 7),
	}
}

func TestRulingSetPrunerSolutionDetection(t *testing.T) {
	for name, g := range testGraphSuite(t) {
		in := problems.GreedyMIS(g, nil)
		pruned := decideAll(g, MISPruner(), nil, boolsToAny(in))
		for u, p := range pruned {
			if !p {
				t.Errorf("%s: node %d not pruned on a valid MIS", name, u)
			}
		}
	}
}

func TestRulingSetPrunerGluing(t *testing.T) {
	// Random tentative outputs: prune, solve the surviving subgraph with a
	// greedy MIS, and verify the combined output is an MIS of G (the gluing
	// property). Repeated over many random outputs and graphs.
	rng := rand.New(rand.NewPCG(11, 12))
	for name, g := range testGraphSuite(t) {
		for trial := 0; trial < 30; trial++ {
			tentative := make([]bool, g.N())
			for u := range tentative {
				tentative[u] = rng.IntN(3) == 0
			}
			pruned := decideAll(g, MISPruner(), nil, boolsToAny(tentative))
			// Solve the surviving induced subgraph (any valid solution works;
			// greedy MIS blocked by nothing is one).
			sub, orig, err := graph.InducedSubgraph(g, invert(pruned))
			if err != nil {
				t.Fatal(err)
			}
			subMIS := problems.GreedyMIS(sub, nil)
			combined := make([]bool, g.N())
			for u := range combined {
				if pruned[u] {
					combined[u] = tentative[u]
				}
			}
			for i, o := range orig {
				combined[o] = subMIS[i]
			}
			if err := problems.ValidMIS(g, combined); err != nil {
				t.Fatalf("%s trial %d: gluing violated: %v", name, trial, err)
			}
		}
	}
}

func TestRulingSetPrunerBeta2Gluing(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g, err := graph.GNP(60, 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := RulingSetPruner(2)
	if p.Radius() != 3 {
		t.Fatalf("P(2,2) radius = %d, want 3", p.Radius())
	}
	for trial := 0; trial < 40; trial++ {
		tentative := make([]bool, g.N())
		for u := range tentative {
			tentative[u] = rng.IntN(4) == 0
		}
		pruned := decideAll(g, p, nil, boolsToAny(tentative))
		sub, orig, err := graph.InducedSubgraph(g, invert(pruned))
		if err != nil {
			t.Fatal(err)
		}
		subSol := problems.GreedyMIS(sub, nil) // an MIS is a (2,2)-ruling set
		combined := make([]bool, g.N())
		for u := range combined {
			if pruned[u] {
				combined[u] = tentative[u]
			}
		}
		for i, o := range orig {
			combined[o] = subSol[i]
		}
		if err := problems.ValidRulingSet(g, combined, 2, 2); err != nil {
			t.Fatalf("trial %d: gluing violated: %v", trial, err)
		}
	}
}

func TestRulingSetPrunerGarbageOutputs(t *testing.T) {
	// Non-bool tentative outputs must never be pruned as members.
	g := graph.Path(5)
	outputs := []any{nil, "garbage", 3, true, false}
	pruned := decideAll(g, MISPruner(), nil, outputs)
	// Node 3 (true) has neighbours with non-true outputs: it is an isolated
	// member, so it and its dominated neighbours are pruned.
	if !pruned[3] {
		t.Error("valid isolated member not pruned")
	}
	if pruned[0] || pruned[1] {
		t.Error("nodes far from any member must survive")
	}
}

func TestMatchingPrunerSolutionDetection(t *testing.T) {
	for name, g := range testGraphSuite(t) {
		y := problems.GreedyMatching(g)
		pruned := decideAll(g, MatchingPruner(), nil, y)
		for u, p := range pruned {
			if !p {
				t.Errorf("%s: node %d not pruned on a valid maximal matching", name, u)
			}
		}
	}
}

func TestMatchingPrunerGluing(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for name, g := range testGraphSuite(t) {
		for trial := 0; trial < 30; trial++ {
			tentative := randomClaims(rng, g)
			pruned := decideAll(g, MatchingPruner(), nil, tentative)
			sub, orig, err := graph.InducedSubgraph(g, invert(pruned))
			if err != nil {
				t.Fatal(err)
			}
			subSol := problems.GreedyMatching(sub)
			combined := make([]any, g.N())
			for u := range combined {
				if pruned[u] {
					combined[u] = tentative[u]
				} else {
					combined[u] = problems.EdgeClaim{}
				}
			}
			for i, o := range orig {
				combined[o] = subSol[i]
			}
			if err := problems.ValidMaximalMatching(g, combined); err != nil {
				t.Fatalf("%s trial %d: gluing violated: %v", name, trial, err)
			}
		}
	}
}

// randomClaims builds adversarial tentative matching outputs: a mix of
// correct canonical claims, half-claims (only one endpoint), garbage values
// and zeros.
func randomClaims(rng *rand.Rand, g *graph.Graph) []any {
	y := make([]any, g.N())
	for u := 0; u < g.N(); u++ {
		switch rng.IntN(5) {
		case 0: // canonical claim with a random neighbour (possibly one-sided)
			if g.Degree(u) > 0 {
				v := g.Neighbor(u, rng.IntN(g.Degree(u)))
				claim := problems.NewEdgeClaim(g.ID(u), g.ID(v))
				y[u] = claim
				if rng.IntN(2) == 0 {
					y[v] = claim
				}
			} else {
				y[u] = problems.EdgeClaim{}
			}
		case 1:
			y[u] = problems.NewEdgeClaim(int64(rng.IntN(100)+1), int64(rng.IntN(100)+200))
		case 2:
			y[u] = "garbage"
		default:
			if y[u] == nil {
				y[u] = problems.EdgeClaim{}
			}
		}
	}
	return y
}

func invert(mask []bool) []bool {
	out := make([]bool, len(mask))
	for i, b := range mask {
		out[i] = !b
	}
	return out
}

func TestMatchingPrunerIsolatedNode(t *testing.T) {
	g := graph.Empty(3)
	pruned := decideAll(g, MatchingPruner(), nil, []any{problems.EdgeClaim{}, nil, "junk"})
	for u, p := range pruned {
		if !p {
			t.Errorf("isolated node %d not pruned", u)
		}
	}
}
