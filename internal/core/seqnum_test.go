package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/unilocal/unilocal/internal/mathutil"
)

func TestMaxArg(t *testing.T) {
	sq := func(x int) int { return x * x }
	tests := []struct {
		budget, want int
	}{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {10, 3}, {100, 10}, {101, 10}, {120, 10}, {121, 11},
	}
	for _, tt := range tests {
		if got := MaxArg(sq, tt.budget); got != tt.want {
			t.Errorf("MaxArg(x², %d) = %d, want %d", tt.budget, got, tt.want)
		}
	}
	// Functions exceeding the cap saturate at GuessCap.
	constOne := func(x int) int { return 1 }
	if got := MaxArg(constOne, 5); got != GuessCap {
		t.Errorf("MaxArg(1, 5) = %d, want GuessCap", got)
	}
}

func TestMaxArgProperty(t *testing.T) {
	f := func(a, b uint8, budget uint16) bool {
		// Random non-decreasing function x -> a*x + b*ceil(log2 x).
		fn := func(x int) int {
			return int(a%7+1)*x + int(b%5)*mathutil.CeilLog2(x)
		}
		x := MaxArg(fn, int(budget))
		if x == 0 {
			return fn(1) > int(budget)
		}
		if fn(x) > int(budget) {
			return false
		}
		return x == GuessCap || fn(x+1) > int(budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// checkSetSequence verifies the two defining properties of a bounded
// set-sequence for bound f on random sample vectors.
func checkSetSequence(t *testing.T, seq SetSequence, f func([]int) int, rng *rand.Rand, budgets []int, sample func(*rand.Rand) []int) {
	t.Helper()
	for _, i := range budgets {
		sets := seq.Sets(i)
		// Boundedness: f(x) <= C*i for every emitted vector.
		for _, x := range sets {
			if f(x) > seq.C()*i {
				t.Fatalf("boundedness violated: f(%v) = %d > %d*%d", x, f(x), seq.C(), i)
			}
		}
		// Domination: random y with f(y) <= i must be dominated.
		for trial := 0; trial < 200; trial++ {
			y := sample(rng)
			if f(y) > i {
				continue
			}
			dominated := false
			for _, x := range sets {
				ok := true
				for k := range y {
					if x[k] < y[k] {
						ok = false
						break
					}
				}
				if ok {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("domination violated at i=%d: y=%v f(y)=%d not dominated by %v", i, y, f(y), sets)
			}
		}
	}
}

func TestAdditiveSetSequence(t *testing.T) {
	f1 := func(x int) int { return 3*x + 1 }
	f2 := func(x int) int { return x * x }
	f3 := func(x int) int { return mathutil.CeilLog2(x) + 1 }
	seq := Additive(f1, f2, f3)
	if seq.C() != 3 || seq.Arity() != 3 {
		t.Fatalf("C=%d arity=%d", seq.C(), seq.Arity())
	}
	total := func(x []int) int { return f1(x[0]) + f2(x[1]) + f3(x[2]) }
	rng := rand.New(rand.NewPCG(1, 2))
	sample := func(r *rand.Rand) []int {
		return []int{r.IntN(50) + 1, r.IntN(50) + 1, r.IntN(1 << 20)}
	}
	checkSetSequence(t, seq, total, rng, []int{1, 5, 17, 64, 333, 5000}, sample)
	// Sequence number of an additive bound is 1 (Observation 4.1).
	for _, i := range []int{10, 100, 1000} {
		if got := len(seq.Sets(i)); got > 1 {
			t.Errorf("additive |S(%d)| = %d, want <= 1", i, got)
		}
	}
	// Empty when even the minimal vector is too expensive.
	if got := seq.Sets(3); len(got) != 0 {
		t.Errorf("S(3) = %v, want empty (f(1,1,1) = 6 > 3)", got)
	}
}

func TestProductSetSequence(t *testing.T) {
	fa := func(x int) int { return x }
	fb := func(x int) int { return 2*x + 3 }
	seq := Product(Additive(fa), Additive(fb))
	total := func(x []int) int { return fa(x[0]) * fb(x[1]) }
	rng := rand.New(rand.NewPCG(3, 4))
	sample := func(r *rand.Rand) []int {
		return []int{r.IntN(64) + 1, r.IntN(64) + 1}
	}
	checkSetSequence(t, seq, total, rng, []int{5, 16, 100, 1000, 4096}, sample)
	// Sequence number of a product bound is O(log i) (Observation 4.1).
	for _, i := range []int{16, 256, 4096} {
		if got, lim := len(seq.Sets(i)), mathutil.CeilLog2(i)+2; got > lim {
			t.Errorf("product |S(%d)| = %d, want <= %d", i, got, lim)
		}
	}
}

func TestNestedProductSetSequence(t *testing.T) {
	// f(n, a, m) = log(n) * (a + log*(m)) — the arbmis shape.
	fn := func(x int) int { return mathutil.CeilLog2(x) + 1 }
	fa := func(x int) int { return x }
	fm := func(x int) int { return mathutil.LogStar(x) + 1 }
	seq := Product(Additive(fn), Additive(fa, fm))
	total := func(x []int) int { return fn(x[0]) * (fa(x[1]) + fm(x[2])) }
	rng := rand.New(rand.NewPCG(5, 6))
	sample := func(r *rand.Rand) []int {
		return []int{r.IntN(1<<16) + 1, r.IntN(20) + 1, r.IntN(1<<30) + 1}
	}
	checkSetSequence(t, seq, total, rng, []int{8, 64, 777, 9999}, sample)
}

func TestModeratelyPredicates(t *testing.T) {
	logf := func(x int) int { return mathutil.CeilLog2(x) + 1 }
	linear := func(x int) int { return 4 * x }
	quadratic := func(x int) int { return x * x }
	exp := func(x int) int { return mathutil.SatPow2(min(x, 62)) }
	if !IsModeratelySlow(logf, 2, 1<<20) {
		t.Error("log should be moderately slow")
	}
	if !IsModeratelySlow(linear, 2, 1<<20) {
		t.Error("linear should be moderately slow")
	}
	if IsModeratelySlow(exp, 4, 1<<10) {
		t.Error("2^x should not be moderately slow")
	}
	if !IsModeratelyIncreasing(linear, 2, 1<<20) {
		t.Error("linear should be moderately increasing")
	}
	if IsModeratelyIncreasing(logf, 2, 1<<20) {
		t.Error("log should not be moderately increasing (paper, Section 2)")
	}
	if !IsModeratelyFast(quadratic, 4, 3, 1<<10) {
		t.Error("x² should be moderately fast (with α = 4)")
	}
	if IsModeratelyFast(quadratic, 2, 3, 1<<10) {
		t.Error("x² needs α >= 4 for α·f(i) >= f(2i)")
	}
	if IsModeratelyFast(logf, 2, 3, 1<<10) {
		t.Error("log should not be moderately fast (f(x) <= x)")
	}
}
