package core

import (
	"fmt"
	"math"
)

// Knowledge regimes: how much of the true parameter vector a non-uniform
// algorithm is told. The paper's theme is removing the exact-knowledge
// assumption; the regimes below make that assumption an experimental axis.
const (
	// KnowExact advertises the measured parameters unchanged — the classic
	// baseline assumption (and the zero value's meaning).
	KnowExact = "exact"
	// KnowUpperBound advertises ⌈λ·x⌉ for every parameter, modelling a loose
	// a-priori bound (λ >= 1 is the looseness factor).
	KnowUpperBound = "upper-bound"
	// KnowNone advertises nothing: non-uniform algorithms cannot run, only
	// uniform ones — the regime the paper's transformers target.
	KnowNone = "none"
)

// Knowledge is a knowledge regime together with its looseness factor. The
// zero value means exact knowledge.
type Knowledge struct {
	// Regime is one of KnowExact, KnowUpperBound, KnowNone ("" = exact).
	Regime string
	// Looseness is the factor λ of the upper-bound regime; it must be >= 1
	// there and unset (0) elsewhere.
	Looseness float64
}

// Exact returns the exact-knowledge regime.
func Exact() Knowledge { return Knowledge{Regime: KnowExact} }

// UpperBound returns the upper-bound regime with looseness lambda.
func UpperBound(lambda float64) Knowledge {
	return Knowledge{Regime: KnowUpperBound, Looseness: lambda}
}

// None returns the no-knowledge regime.
func None() Knowledge { return Knowledge{Regime: KnowNone} }

// IsExact reports whether k advertises the true parameters unchanged.
func (k Knowledge) IsExact() bool {
	return (k.Regime == "" || k.Regime == KnowExact) && k.Looseness == 0
}

// Validate checks the regime/looseness combination.
func (k Knowledge) Validate() error {
	switch k.Regime {
	case "", KnowExact, KnowNone:
		if k.Looseness != 0 {
			return fmt.Errorf("core: the %s regime takes no looseness factor (got %g)", orExact(k.Regime), k.Looseness)
		}
		return nil
	case KnowUpperBound:
		if math.IsNaN(k.Looseness) || math.IsInf(k.Looseness, 0) || k.Looseness < 1 {
			return fmt.Errorf("core: upper-bound looseness must be a finite factor >= 1, got %g", k.Looseness)
		}
		return nil
	}
	return fmt.Errorf("core: unknown knowledge regime %q (want %s, %s or %s)",
		k.Regime, KnowExact, KnowUpperBound, KnowNone)
}

func orExact(regime string) string {
	if regime == "" {
		return KnowExact
	}
	return regime
}

// String renders the regime for tables and validation reports.
func (k Knowledge) String() string {
	if k.Regime == KnowUpperBound {
		return fmt.Sprintf("%s(λ=%g)", KnowUpperBound, k.Looseness)
	}
	return orExact(k.Regime)
}

// Advertise maps the measured parameter vector to the one a non-uniform
// algorithm is told under this regime. Exact knowledge is the identity;
// upper-bound inflates every parameter to ⌈λ·x⌉ (saturating at GuessCap; a
// true Δ of 0 stays 0 — there is nothing to be loose about on an edgeless
// graph); none refuses, because a non-uniform algorithm cannot run without
// its guesses.
func (k Knowledge) Advertise(p Params) (Params, error) {
	if err := k.Validate(); err != nil {
		return Params{}, err
	}
	switch k.Regime {
	case "", KnowExact:
		return p, nil
	case KnowNone:
		return Params{}, fmt.Errorf("core: the %s regime advertises no parameters; only uniform algorithms can run", KnowNone)
	}
	return Params{
		N:     loosenInt(p.N, k.Looseness),
		Delta: loosenInt(p.Delta, k.Looseness),
		Arb:   loosenInt(p.Arb, k.Looseness),
		M:     loosenInt64(p.M, k.Looseness),
	}, nil
}

// loosenInt is ⌈λ·x⌉ saturated at GuessCap. The float64 round-trip is exact
// for every value the harness produces (parameters stay far below 2^53).
func loosenInt(x int, lambda float64) int {
	if x <= 0 {
		return x
	}
	v := math.Ceil(lambda * float64(x))
	if v >= float64(GuessCap) {
		return GuessCap
	}
	return int(v)
}

func loosenInt64(x int64, lambda float64) int64 {
	if x <= 0 {
		return x
	}
	v := math.Ceil(lambda * float64(x))
	if v >= float64(GuessCap) {
		return int64(GuessCap)
	}
	return int64(v)
}
