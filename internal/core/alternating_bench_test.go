package core_test

// BenchmarkAlternating* measures the transformer hot path against the
// frozen legacy implementation (alternating_legacy_test.go) on the two
// experiment shapes the paper's Table 1 reproduction leans on: the E11
// alternating cascade (Theorem 2 Las Vegas MIS, many windows, shrinking
// survivor set) and the E14 transformer-overhead sweep (Theorem 1 uniform
// MIS on a sparse regular graph). BenchmarkAlternatingGather isolates the
// pruning machinery itself with idle run phases, and BenchmarkPlanStep
// isolates the plan schedule arithmetic. Run with -benchmem: the
// acceptance bar for this refactor is >= 2x fewer allocs/op on the E11 and
// E14 shapes.

import (
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// benchPair runs the same workload through the current and the legacy
// alternating implementation.
func benchPair(b *testing.B, g *graph.Graph, mk func(alternating func(string, core.Plan, core.Pruner) local.Algorithm) local.Algorithm) {
	impls := []struct {
		name string
		alt  func(string, core.Plan, core.Pruner) local.Algorithm
	}{
		{"new", core.NewAlternating},
		{"legacy", newAlternatingLegacy},
	}
	for _, impl := range impls {
		b.Run("impl="+impl.name, func(b *testing.B) {
			a := mk(impl.alt)
			b.ReportAllocs()
			b.ResetTimer()
			var res *local.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = local.Run(g, a, local.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Messages), "messages")
		})
	}
}

// BenchmarkAlternatingCascade is the E11 shape: a weak Monte Carlo engine
// under Theorem 2, so the execution crosses many pruning windows while the
// surviving graph shrinks.
func BenchmarkAlternatingCascade(b *testing.B) {
	n := 1024
	g, err := graph.GNP(n, 8/float64(n-1), int64(n))
	if err != nil {
		b.Fatal(err)
	}
	nu, seq := oracleLubyEngine()
	benchPair(b, g, func(alt func(string, core.Plan, core.Pruner) local.Algorithm) local.Algorithm {
		return alt("lasvegas(luby)", core.Theorem2Plan(nu, seq), core.MISPruner())
	})
}

// BenchmarkAlternatingOverhead is the E14 shape: the Theorem 1 uniform MIS
// on a sparse regular graph, where the doubling schedule and the pruning
// phases are the entire overhead over the non-uniform baseline.
func BenchmarkAlternatingOverhead(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g, err := graph.RandomRegular(n, 4, int64(n+4))
		if err != nil {
			b.Fatal(err)
		}
		nu, seq := oracleMISEngine()
		b.Run(fmt.Sprintf("regular4/n=%d", n), func(b *testing.B) {
			benchPair(b, g, func(alt func(string, core.Plan, core.Pruner) local.Algorithm) local.Algorithm {
				return alt("uniform(colormis)", core.Theorem1Plan(nu, seq), core.MISPruner())
			})
		})
	}
}

// BenchmarkAlternatingGather isolates the pruning machinery: idle run
// phases (nobody is ever selected, nobody pruned) for several windows, then
// one correct window. Virtually every round measured is a gather, announce
// or absorb round over the full node set.
func BenchmarkAlternatingGather(b *testing.B) {
	n := 512
	g, err := graph.GNP(n, 10/float64(n-1), int64(n))
	if err != nil {
		b.Fatal(err)
	}
	idle := local.AlgorithmFunc{
		AlgoName: "always-false",
		NewNode:  func(local.Info) local.Node { return benchFalseNode{} },
	}
	correct := colormis.New(g.MaxDegree(), g.MaxIDValue())
	budget := colormis.BoundDelta(g.MaxDegree()) + colormis.BoundM(int(g.MaxIDValue()))
	steps := make([]core.Step, 0, 9)
	for i := 0; i < 8; i++ {
		steps = append(steps, core.Step{Algo: idle, Budget: 2})
	}
	steps = append(steps, core.Step{Algo: correct, Budget: budget})
	benchPair(b, g, func(alt func(string, core.Plan, core.Pruner) local.Algorithm) local.Algorithm {
		return alt("gather-probe", benchListPlan{steps: steps}, core.MISPruner())
	})
}

type benchFalseNode struct{}

func (benchFalseNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, true }
func (benchFalseNode) Output() any                                        { return false }

type benchListPlan struct{ steps []core.Step }

func (p benchListPlan) Step(k int) (core.Step, bool) {
	if k < len(p.steps) {
		return p.steps[k], true
	}
	return core.Step{}, false
}

// BenchmarkPlanStep isolates the schedule arithmetic: a warm memoized plan
// versus re-walking the raw Theorem 2 doubling schedule, as every node of
// every window did before the cache.
func BenchmarkPlanStep(b *testing.B) {
	nu, seq := oracleLubyEngine()
	const windows = 24
	b.Run("memo", func(b *testing.B) {
		plan := core.MemoPlan(core.Theorem2Plan(nu, seq))
		for k := 0; k < windows; k++ {
			plan.Step(k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < windows; k++ {
				plan.Step(k)
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		plan := core.Theorem2Plan(nu, seq)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < windows; k++ {
				plan.Step(k)
			}
		}
	})
}
