package core

import (
	"math"
	"strings"
	"testing"
)

// TestNewParamsClampPolicy pins the constructor's domain floor: n, a and m
// are raised to 1 (they are positive by definition in Section 2), Δ is
// passed through untouched because 0 is its true value on an edgeless graph.
func TestNewParamsClampPolicy(t *testing.T) {
	cases := []struct {
		name          string
		n, delta, arb int
		m             int64
		want          Params
	}{
		{"single node", 1, 0, 0, 0, Params{N: 1, Delta: 0, Arb: 1, M: 1}},
		{"edgeless", 8, 0, 0, 7, Params{N: 8, Delta: 0, Arb: 1, M: 7}},
		{"empty graph", 0, 0, 0, 0, Params{N: 1, Delta: 0, Arb: 1, M: 1}},
		{"negative junk", -3, -2, -1, -4, Params{N: 1, Delta: -2, Arb: 1, M: 1}},
		{"ordinary", 100, 5, 3, 512, Params{N: 100, Delta: 5, Arb: 3, M: 512}},
	}
	for _, c := range cases {
		if got := NewParams(c.n, c.delta, c.arb, c.m); got != c.want {
			t.Errorf("%s: NewParams(%d, %d, %d, %d) = %+v, want %+v",
				c.name, c.n, c.delta, c.arb, c.m, got, c.want)
		}
	}
}

func TestParamsValueWithRoundTrip(t *testing.T) {
	p := NewParams(10, 4, 2, 99)
	for _, q := range []Param{ParamN, ParamMaxDegree, ParamArboricity, ParamMaxID} {
		if got := p.With(q, 7).Value(q); got != 7 {
			t.Errorf("With/Value round trip on %s: got %d, want 7", q, got)
		}
	}
	if p.Value(ParamN) != 10 || p.Value(ParamMaxDegree) != 4 || p.Value(ParamArboricity) != 2 || p.Value(ParamMaxID) != 99 {
		t.Errorf("Value read back %d/%d/%d/%d", p.Value(ParamN), p.Value(ParamMaxDegree), p.Value(ParamArboricity), p.Value(ParamMaxID))
	}
}

func TestParamsFromVector(t *testing.T) {
	p := ParamsFromVector([]Param{ParamMaxDegree, ParamMaxID}, []int{5, 200})
	if p.Delta != 5 || p.M != 200 {
		t.Errorf("ParamsFromVector gave %+v", p)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short vector", func() {
		ParamsFromVector([]Param{ParamN, ParamMaxID}, []int{1})
	})
	mustPanic("duplicate parameter", func() {
		ParamsFromVector([]Param{ParamN, ParamN}, []int{1, 2})
	})
	mustPanic("unknown parameter", func() {
		ParamsFromVector([]Param{Param("bogus")}, []int{1})
	})
}

func TestKnowledgeValidate(t *testing.T) {
	good := []Knowledge{{}, Exact(), None(), UpperBound(1), UpperBound(1.5), UpperBound(16)}
	for _, k := range good {
		if err := k.Validate(); err != nil {
			t.Errorf("%v rejected: %v", k, err)
		}
	}
	bad := []Knowledge{
		{Regime: KnowExact, Looseness: 2},
		{Regime: "", Looseness: 2},
		{Regime: KnowNone, Looseness: 2},
		UpperBound(0.5),
		UpperBound(0),
		UpperBound(-1),
		UpperBound(math.NaN()),
		UpperBound(math.Inf(1)),
		{Regime: "psychic"},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("%+v not rejected", k)
		}
	}
}

func TestKnowledgeAdvertise(t *testing.T) {
	true_ := NewParams(100, 7, 3, 512)

	for _, k := range []Knowledge{{}, Exact()} {
		got, err := k.Advertise(true_)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != true_ {
			t.Errorf("%v changed the parameters: %+v", k, got)
		}
	}

	if _, err := None().Advertise(true_); err == nil {
		t.Error("none regime advertised parameters")
	}

	got, err := UpperBound(1).Advertise(true_)
	if err != nil {
		t.Fatal(err)
	}
	if got != true_ {
		t.Errorf("λ=1 changed the parameters: %+v", got)
	}

	got, err = UpperBound(1.5).Advertise(true_)
	if err != nil {
		t.Fatal(err)
	}
	want := Params{N: 150, Delta: 11, Arb: 5, M: 768} // ⌈1.5·7⌉ = 11, ⌈1.5·3⌉ = 5
	if got != want {
		t.Errorf("λ=1.5 advertised %+v, want %+v", got, want)
	}

	// A true Δ of 0 (edgeless graph) stays 0 at any looseness.
	got, err = UpperBound(16).Advertise(NewParams(4, 0, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta != 0 {
		t.Errorf("edgeless Δ inflated to %d", got.Delta)
	}
	if got.N != 64 || got.Arb != 16 || got.M != 48 {
		t.Errorf("λ=16 advertised %+v", got)
	}

	// Inflation saturates at GuessCap instead of overflowing.
	got, err = UpperBound(1e30).Advertise(true_)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != GuessCap || got.Delta != GuessCap || got.Arb != GuessCap || got.M != int64(GuessCap) {
		t.Errorf("huge λ did not saturate: %+v", got)
	}

	// An invalid regime is refused before any arithmetic.
	if _, err := UpperBound(0.25).Advertise(true_); err == nil {
		t.Error("invalid looseness not refused")
	}
}

func TestKnowledgeString(t *testing.T) {
	cases := map[string]Knowledge{
		"exact":              {},
		"none":               None(),
		"upper-bound(λ=4)":   UpperBound(4),
		"upper-bound(λ=1.5)": UpperBound(1.5),
	}
	for want, k := range cases {
		if got := k.String(); got != want {
			t.Errorf("%+v renders %q, want %q", k, got, want)
		}
	}
	if !strings.Contains(Params{N: 2, Delta: 1, Arb: 1, M: 3}.String(), "n=2") {
		t.Error("Params.String lost n")
	}
}
