package core

import (
	"sync"
	"sync/atomic"
)

// MemoPlan wraps a plan in a shared, lazily-extended step cache. Plans are
// pure functions of the step index, but the transformer schedules walk
// non-trivial arithmetic per call — Theorem1Plan re-runs the doubling loop
// and materialises SetSequence.Sets vectors from scratch — and the
// alternating algorithm calls Step(k) once per node per window. Memoizing
// turns n·w schedule walks into one per distinct k for the whole network.
//
// The cache is safe for concurrent use from any number of nodes, workers
// and simultaneous Runs. The read path is lock-free: an atomic pointer to
// an immutable (steps, done) snapshot, so a warm Step costs one atomic load
// and no allocation (enforced by TestMemoPlanStepAllocs). Extension takes a
// mutex, appends, and publishes a fresh snapshot; readers of older
// snapshots never index past their own length, so sharing the backing
// array across snapshots is race-free. An RWMutex variant was benchmarked
// (BenchmarkPlanStep) and loses on the warm path — RLock/RUnlock cost more
// than the atomic load and contend under the engine's worker fan-out.
//
// Wrapping an already-memoized plan returns it unchanged. Cached Steps
// share their Algo values across all nodes and windows; local.Algorithm
// requires New to be safe for concurrent use, so this is within contract
// (Theorem4Plan always shared its algos this way).
//
// Extension is sequential: Step(k) materialises every step up to k,
// constructing each step's Algo eagerly — the same prefix an execution
// reaching window k would have constructed node by node. Callers must not
// probe far beyond the reachable window range of plans whose step
// construction is expensive at saturated guesses (an execution never gets
// there: window budgets grow geometrically, so the engine's round cap
// fires first).
func MemoPlan(plan Plan) Plan {
	if m, ok := plan.(*memoPlan); ok {
		return m
	}
	m := &memoPlan{inner: plan}
	m.view.Store(&memoPlanView{})
	return m
}

type memoPlan struct {
	inner Plan
	mu    sync.Mutex // serialises extension
	view  atomic.Pointer[memoPlanView]
}

// memoPlanView is an immutable snapshot of the cache: the first len(steps)
// steps of the plan, plus whether the plan exhausted at that length.
type memoPlanView struct {
	steps []Step
	done  bool
}

func (m *memoPlan) Step(k int) (Step, bool) {
	if k < 0 {
		return Step{}, false
	}
	v := m.view.Load()
	if k < len(v.steps) {
		return v.steps[k], true
	}
	if v.done {
		return Step{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v = m.view.Load()
	steps, done := v.steps, v.done
	for !done && len(steps) <= k {
		s, ok := m.inner.Step(len(steps))
		if !ok {
			done = true
			break
		}
		steps = append(steps, s)
	}
	m.view.Store(&memoPlanView{steps: steps, done: done})
	if k < len(steps) {
		return steps[k], true
	}
	return Step{}, false
}

var _ Plan = (*memoPlan)(nil)
