package core

import (
	"math/rand/v2"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/coloralgo"
	"github.com/unilocal/unilocal/internal/algorithms/linial"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
	"github.com/unilocal/unilocal/internal/problems"
)

// quadEngine is the O(Δ̃²)-coloring engine (Linial's reduction) for
// Theorem 5 — the paper's Corollary 1(iii) "O(Δ²) colors in O(log* n)"
// instance.
type quadEngine struct{}

func (quadEngine) Name() string { return "linial-quad" }
func (quadEngine) G(d int) int {
	if d < 0 {
		d = 0
	}
	return mathutil.SatMul(3*d+4, 3*d+4)
}
func (quadEngine) New(deltaHat int, mHat int64) local.Algorithm { return linial.New(deltaHat, mHat) }
func (quadEngine) BoundDelta(d int) int                         { return mathutil.CeilLog2(d+1) + 16 }
func (quadEngine) BoundM(m int) int                             { return coloralgo.BoundM(m) }

// lambdaEngine is the λ(Δ̃+1)-coloring engine (Linial + one batched pass).
type lambdaEngine struct{ lambda int }

func (e lambdaEngine) Name() string { return "lambda-coloring" }
func (e lambdaEngine) G(d int) int {
	if d < 0 {
		d = 0
	}
	return coloralgo.LambdaPalette(e.lambda, d)
}
func (e lambdaEngine) New(deltaHat int, mHat int64) local.Algorithm {
	return coloralgo.Lambda(e.lambda, deltaHat, mHat)
}
func (e lambdaEngine) BoundDelta(d int) int { return coloralgo.LambdaBoundDelta(e.lambda, d) }
func (e lambdaEngine) BoundM(m int) int     { return coloralgo.BoundM(m) }

func coloringSuite(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(120, 0.05, 51)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(31)
	mixed := graph.DisjointUnion(graph.Star(40), graph.Path(20), graph.Complete(8))
	return map[string]*graph.Graph{
		"path":  graph.Path(50),
		"cycle": cyc,
		"star":  graph.Star(35),
		"gnp":   gnp,
		"tree":  graph.RandomTree(80, 3),
		"mixed": mixed,
	}
}

func TestTheorem5QuadColoring(t *testing.T) {
	uniform, err := UniformColoring(quadEngine{})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range coloringSuite(t) {
		t.Run(name, func(t *testing.T) {
			res, err := local.Run(g, uniform, local.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			palette := UniformColoringPalette(quadEngine{}, g.MaxDegree())
			if err := problems.ValidColoring(g, colors, palette); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTheorem5LambdaColoring(t *testing.T) {
	for _, lambda := range []int{1, 4} {
		uniform, err := UniformColoring(lambdaEngine{lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		for name, g := range coloringSuite(t) {
			res, err := local.Run(g, uniform, local.Options{Seed: 9})
			if err != nil {
				t.Fatalf("λ=%d %s: %v", lambda, name, err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			palette := UniformColoringPalette(lambdaEngine{lambda: lambda}, g.MaxDegree())
			if err := problems.ValidColoring(g, colors, palette); err != nil {
				t.Fatalf("λ=%d %s: %v", lambda, name, err)
			}
		}
	}
}

func TestTheorem5PaletteIsLinearInG(t *testing.T) {
	// O(g(Δ)) palette: the layered construction costs at most a constant
	// factor over g (2·g at the next threshold). Verify the envelope is at
	// most 2·g(16Δ) across degrees for the quadratic engine.
	e := quadEngine{}
	for _, d := range []int{1, 2, 5, 17, 60, 250, 1000} {
		p := UniformColoringPalette(e, d)
		if limit := 2 * e.G(16*d); p > limit {
			t.Errorf("palette(%d) = %d exceeds 2g(16Δ) = %d", d, p, limit)
		}
	}
}

func TestLayersGeometric(t *testing.T) {
	g := quadEngine{}.G
	ds := Layers(g)
	if ds[0] != 1 {
		t.Fatalf("D_1 = %d, want 1", ds[0])
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatalf("layer thresholds not increasing at %d", i)
		}
		if g(ds[i]) < 2*g(ds[i-1]) {
			t.Fatalf("g(D_%d) = %d < 2 g(D_%d) = %d", i+1, g(ds[i]), i, 2*g(ds[i-1]))
		}
		// Minimality: the previous value must not already satisfy the bound.
		if g(ds[i]-1) >= 2*g(ds[i-1]) {
			t.Fatalf("D_%d = %d not minimal", i+1, ds[i])
		}
	}
	// layerIndex is consistent with the thresholds.
	for _, deg := range []int{0, 1, 2, 3, 10, 100, 5000} {
		i, deltaHat := layerIndex(ds, deg)
		if deg >= 1 && ds[i] > deg {
			t.Errorf("layerIndex(%d): D_i = %d > deg", deg, ds[i])
		}
		if deltaHat <= deg {
			t.Errorf("layerIndex(%d): Δ̂ = %d <= deg", deg, deltaHat)
		}
	}
}

func TestUniformColoringRejectsSlowPalette(t *testing.T) {
	if _, err := UniformColoring(constEngine{}); err == nil {
		t.Fatal("constant palette bound accepted (not moderately-fast)")
	}
}

type constEngine struct{}

func (constEngine) Name() string                   { return "const" }
func (constEngine) G(int) int                      { return 7 }
func (constEngine) New(int, int64) local.Algorithm { return luby.New() }
func (constEngine) BoundDelta(int) int             { return 1 }
func (constEngine) BoundM(int) int                 { return 1 }

// slcConfig builds a random SLC configuration for pruner property tests.
func slcConfig(rng *rand.Rand, g *graph.Graph) ([]any, []any) {
	inputs := make([]any, g.N())
	outputs := make([]any, g.N())
	for u := 0; u < g.N(); u++ {
		deltaHat := g.MaxDegree() + 1
		in := &SLCInput{DeltaHat: deltaHat, GHat: 3 * deltaHat, Removed: map[problems.SLCColor]bool{}}
		inputs[u] = in
		switch rng.IntN(4) {
		case 0:
			outputs[u] = problems.SLCColor{C: rng.IntN(in.GHat) + 1, J: rng.IntN(deltaHat+1) + 1}
		case 1:
			outputs[u] = problems.SLCColor{C: in.GHat + 5, J: 1} // out of list
		case 2:
			outputs[u] = "garbage"
		default:
			outputs[u] = problems.SLCColor{C: 1, J: 1} // likely conflicting
		}
	}
	return inputs, outputs
}

func TestSLCPrunerSolutionDetection(t *testing.T) {
	g, err := graph.GNP(60, 0.08, 61)
	if err != nil {
		t.Fatal(err)
	}
	// A valid SLC solution: greedy proper coloring mapped into the lists.
	colors := problems.GreedyColoring(g)
	inputs := make([]any, g.N())
	outputs := make([]any, g.N())
	deltaHat := g.MaxDegree() + 1
	for u := 0; u < g.N(); u++ {
		inputs[u] = &SLCInput{DeltaHat: deltaHat, GHat: deltaHat + 2}
		outputs[u] = problems.SLCColor{C: colors[u], J: 1}
	}
	pruned := decideAll(g, SLCPruner(), inputs, outputs)
	for u, p := range pruned {
		if !p {
			t.Errorf("node %d not pruned on a valid SLC solution", u)
		}
	}
}

func TestSLCPrunerGluing(t *testing.T) {
	// Random tentative outputs; pruned nodes keep their colors, survivors
	// get their lists trimmed; a greedy list-coloring of the survivors must
	// glue into a proper coloring of G with all colors in the lists.
	rng := rand.New(rand.NewPCG(71, 72))
	g, err := graph.GNP(50, 0.1, 73)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		inputs, outputs := slcConfig(rng, g)
		pruner := SLCPruner()
		pruned := make([]bool, g.N())
		newInputs := make([]any, g.N())
		for u := 0; u < g.N(); u++ {
			d := pruner.Decide(buildBall(g, pruner.Radius(), u, inputs, outputs))
			pruned[u] = d.Prune
			newInputs[u] = inputs[u]
			if !d.Prune && d.NewInput != nil {
				newInputs[u] = d.NewInput
			}
		}
		// Survivors: greedy list coloring on the trimmed lists.
		final := make([]any, g.N())
		for u := 0; u < g.N(); u++ {
			if pruned[u] {
				final[u] = outputs[u]
			}
		}
		for u := 0; u < g.N(); u++ {
			if pruned[u] {
				continue
			}
			in := newInputs[u].(*SLCInput)
			picked := false
			for c := 1; c <= in.GHat && !picked; c++ {
				for j := 1; j <= in.DeltaHat+1 && !picked; j++ {
					cand := problems.SLCColor{C: c, J: j}
					if !in.InList(cand) {
						continue
					}
					ok := true
					for _, v := range g.Neighbors(u) {
						if fc, isCol := final[v].(problems.SLCColor); isCol && !pruned[int(v)] == false {
							_ = fc
						}
						if fc, isCol := final[v].(problems.SLCColor); isCol && fc == cand {
							ok = false
							break
						}
					}
					if ok {
						final[u] = cand
						picked = true
					}
				}
			}
			if !picked {
				t.Fatalf("trial %d: survivor %d has no available list color (invariant broken)", trial, u)
			}
		}
		// Combined output: proper and in-list everywhere.
		for u := 0; u < g.N(); u++ {
			cu, ok := final[u].(problems.SLCColor)
			if !ok {
				if pruned[u] {
					t.Fatalf("trial %d: pruned node %d has non-color output", trial, u)
				}
				continue
			}
			if pruned[u] && !inputs[u].(*SLCInput).InList(cu) {
				t.Fatalf("trial %d: pruned node %d color outside list", trial, u)
			}
			for _, v := range g.Neighbors(u) {
				if cv, ok2 := final[v].(problems.SLCColor); ok2 && cv == cu {
					t.Fatalf("trial %d: edge %d-%d monochromatic after gluing", trial, u, int(v))
				}
			}
		}
	}
}

func TestColoringFromMIS(t *testing.T) {
	uniform := ColoringFromMIS(luby.New())
	for name, g := range coloringSuite(t) {
		t.Run(name, func(t *testing.T) {
			res, err := local.Run(g, uniform, local.Options{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := problems.ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
				t.Fatal(err)
			}
			// The Section 5.1 construction colors every node within its own
			// degree + 1 — stronger than Δ+1.
			for u := 0; u < g.N(); u++ {
				if colors[u] > g.Degree(u)+1 {
					t.Errorf("node %d color %d exceeds deg+1 = %d", u, colors[u], g.Degree(u)+1)
				}
			}
		})
	}
}
