package core

import (
	"github.com/unilocal/unilocal/internal/algorithms/lift"
	"github.com/unilocal/unilocal/internal/local"
)

// ColoringFromMIS implements Section 5.1 of the paper: it turns any uniform
// MIS algorithm into a uniform (deg+1)-coloring algorithm by simulating it
// on the clique product G × K_{deg+1}. A maximal independent set of the
// product contains exactly one copy u_i per clique C_u, and setting
// color(u) = i yields a proper coloring with color(u) <= deg(u)+1.
//
// The output at each node is an int color; 0 signals that the MIS output
// was invalid (no copy selected), which cannot happen when mis is correct.
func ColoringFromMIS(mis local.Algorithm) local.Algorithm {
	inner := lift.Product(mis)
	return local.AlgorithmFunc{
		AlgoName: "degplus1(" + mis.Name() + ")",
		NewNode: func(info local.Info) local.Node {
			return &productColorNode{inner: inner.New(info)}
		},
	}
}

type productColorNode struct {
	inner local.Node
	color int
}

func (n *productColorNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	send, done := n.inner.Round(r, recv)
	if done {
		if outs, ok := n.inner.Output().([]any); ok {
			for i, o := range outs {
				if in, okB := o.(bool); okB && in {
					n.color = i + 1
					break
				}
			}
		}
	}
	return send, done
}

func (n *productColorNode) Output() any { return n.color }

var _ local.Node = (*productColorNode)(nil)
