package core

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/problems"
)

// RulingSetPruner returns the pruning algorithm P(2,β) of Observation 3.2
// for the (2, beta)-ruling set problem; beta = 1 is the MIS pruner. A node u
// is pruned iff
//
//   - ŷ(u) = 1 and no neighbour has ŷ = 1 (u is a correctly isolated
//     member), or
//   - ŷ(u) = 0 and some node v within distance beta has ŷ(v) = 1 with no
//     neighbour of v having ŷ = 1 (u is dominated by a correct member).
//
// It never rewrites inputs, so by Observation 3.1 it is monotone with
// respect to every non-decreasing parameter.
func RulingSetPruner(beta int) Pruner {
	if beta < 1 {
		beta = 1
	}
	return rulingPruner{beta: beta}
}

// MISPruner is P(2,1), the pruning algorithm for maximal independent set.
func MISPruner() Pruner { return RulingSetPruner(1) }

type rulingPruner struct{ beta int }

func (p rulingPruner) Name() string { return fmt.Sprintf("P(2,%d)", p.beta) }

// Radius is beta+1: deciding whether a member v at distance <= beta is
// isolated requires v's neighbours, at distance <= beta+1.
func (p rulingPruner) Radius() int { return p.beta + 1 }

func (p rulingPruner) Decide(b *Ball) Decision {
	selected := func(n *BallRecord) bool {
		v, ok := n.Tentative.(bool)
		return ok && v
	}
	isolatedMember := func(n *BallRecord) bool {
		if !selected(n) {
			return false
		}
		for _, nb := range n.Neighbors {
			if r := b.Get(nb); r != nil && selected(r) {
				return false
			}
		}
		return true
	}
	c := b.Center()
	if selected(c) {
		return Decision{Prune: isolatedMember(c)}
	}
	// Records are in non-decreasing Dist order, so the scan for a dominating
	// member stops at the first record beyond distance beta.
	recs := b.Records()
	for i := range recs {
		if recs[i].Dist > p.beta {
			break
		}
		if isolatedMember(&recs[i]) {
			return Decision{Prune: true}
		}
	}
	return Decision{}
}

// MatchingPruner returns the pruning algorithm P_MM of Observation 3.3 for
// maximal matching: a node u is pruned iff
//
//   - some neighbour v is matched with u, or
//   - every neighbour v of u is matched with some w != u.
//
// "Matched" is the canonical-claim predicate of problems.Matched (see the
// deviation note there): both endpoints carry the canonical claim of their
// shared edge and no other neighbour does. With canonical claims a matched
// pair is stable — no later output can invalidate it — which yields the
// gluing property: every pruned neighbour of a survivor is rule-1 matched
// (a rule-2 pruning of v certifies all of v's neighbours matched, and
// matched nodes are themselves pruned), so any maximal matching of the
// surviving graph combines with the pruned outputs into a maximal matching
// of the whole graph.
//
// The pruner never rewrites inputs, so it is monotone with respect to every
// parameter.
func MatchingPruner() Pruner { return matchingPruner{} }

type matchingPruner struct{}

func (matchingPruner) Name() string { return "P_MM" }

// Radius is 3: deciding whether a neighbour v is matched to w requires the
// values of w's neighbours, at distance <= 3 from u.
func (matchingPruner) Radius() int { return 3 }

func (matchingPruner) Decide(b *Ball) Decision {
	val := func(n *BallRecord) problems.EdgeClaim {
		if n == nil {
			return problems.EdgeClaim{A: -1, B: -1} // unknown: equals nothing
		}
		switch v := n.Tentative.(type) {
		case nil:
			return problems.EdgeClaim{}
		case problems.EdgeClaim:
			return v
		default:
			return problems.EdgeClaim{A: -1, B: -1}
		}
	}
	// matched reports the canonical predicate for adjacent records u, v.
	matched := func(u, v *BallRecord) bool {
		if u == nil || v == nil || !u.HasNeighbor(v.ID) {
			return false
		}
		want := problems.NewEdgeClaim(u.ID, v.ID)
		if val(u) != want || val(v) != want {
			return false
		}
		for _, wid := range u.Neighbors {
			if wid != v.ID && val(b.Get(wid)) == want {
				return false
			}
		}
		for _, wid := range v.Neighbors {
			if wid != u.ID && val(b.Get(wid)) == want {
				return false
			}
		}
		return true
	}
	c := b.Center()
	for _, vid := range c.Neighbors {
		if matched(c, b.Get(vid)) {
			return Decision{Prune: true}
		}
	}
	if len(c.Neighbors) == 0 {
		// An isolated node is vacuously maximal.
		return Decision{Prune: true}
	}
	for _, vid := range c.Neighbors {
		v := b.Get(vid)
		if v == nil {
			return Decision{}
		}
		vMatched := false
		for _, wid := range v.Neighbors {
			if wid != c.ID && matched(v, b.Get(wid)) {
				vMatched = true
				break
			}
		}
		if !vMatched {
			return Decision{}
		}
	}
	return Decision{Prune: true}
}

var (
	_ Pruner = rulingPruner{}
	_ Pruner = matchingPruner{}
)
