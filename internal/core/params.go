// Package core implements the contribution of Korman, Sereni and Viennot,
// "Toward more localized local algorithms: removing assumptions concerning
// global knowledge" (PODC 2011 / Distributed Computing 2013):
//
//   - pruning algorithms (Section 3): constant-radius local procedures with
//     the solution-detection and gluing properties, including the concrete
//     pruners P(2,β) for ruling sets (Observation 3.2), P_MM for maximal
//     matching (Observation 3.3) and the strong-list-coloring pruner of
//     Section 5.2;
//
//   - alternating algorithms (Section 3.3, Figure 1): running a sequence of
//     budget-restricted algorithms interleaved with a pruning algorithm so
//     that the global output never deteriorates (Observation 3.4);
//
//   - sequence-number machinery (Section 4.2): bounded set-sequences for
//     additive and product running-time bounds (Observation 4.1), exposed as
//     a small composable algebra;
//
//   - the transformers: Theorem 1 (Uniform), Theorem 2 (LasVegas),
//     Theorem 3 (UniformWeaklyDominated), Theorem 4 (FastestOf), Theorem 5
//     (UniformColoring via strong list coloring) and the Section 5.1
//     MIS-to-(deg+1)-coloring product construction.
//
// The package requires a 64-bit int: parameter guesses range up to 2^62
// (packed identities of derived graphs).
package core

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
)

// Param names a non-decreasing graph parameter in the sense of Section 2.
type Param string

// The parameters used by the paper's applications.
const (
	// ParamN is the number of nodes n.
	ParamN Param = "n"
	// ParamMaxDegree is the maximum degree Δ.
	ParamMaxDegree Param = "Delta"
	// ParamArboricity is the arboricity a.
	ParamArboricity Param = "a"
	// ParamMaxID is the maximum identity m (also used for "maximum initial
	// color" in the coloring applications of Section 5).
	ParamMaxID Param = "m"
)

// GuessCap is the largest guess value the machinery will produce; it
// accommodates the packed identities of derived graphs.
const GuessCap = int(1) << 62

// NonUniform is a non-uniform local algorithm in the sense of Section 2: a
// black box whose code consumes one guess per parameter in Params. The
// contract required by the transformers is:
//
//  1. WithGuesses(g) terminates at every node within the running-time bound
//     encoded by the SetSequence supplied alongside it, for any guesses;
//  2. if every guess is good (>= the true parameter value on the current
//     instance), the output solves the problem;
//  3. with bad guesses the output may be arbitrary (it is never trusted:
//     only the pruning algorithm certifies outputs).
type NonUniform interface {
	Name() string
	Params() []Param
	WithGuesses(guesses []int) local.Algorithm
}

// NonUniformFunc packages a NonUniform from closures.
type NonUniformFunc struct {
	AlgoName  string
	ParamList []Param
	Build     func(guesses []int) local.Algorithm
}

// Name implements NonUniform.
func (a NonUniformFunc) Name() string { return a.AlgoName }

// Params implements NonUniform.
func (a NonUniformFunc) Params() []Param { return a.ParamList }

// WithGuesses implements NonUniform.
func (a NonUniformFunc) WithGuesses(guesses []int) local.Algorithm { return a.Build(guesses) }

var _ NonUniform = NonUniformFunc{}

// AscFunc is an ascending function on positive integers: non-decreasing and
// tending to infinity (Section 2). Ascending functions are the building
// blocks of running-time bounds; MaxArg inverts them.
type AscFunc func(x int) int

// MaxArg returns the largest x in [1, GuessCap] with f(x) <= budget, or 0 if
// f(1) > budget. f must be non-decreasing.
func MaxArg(f AscFunc, budget int) int {
	if f(1) > budget {
		return 0
	}
	lo := 1 // f(lo) <= budget
	hi := 2
	for hi <= GuessCap/2 && f(hi) <= budget {
		lo = hi
		hi *= 2
	}
	if hi > GuessCap {
		hi = GuessCap
	}
	if f(hi) <= budget {
		return hi
	}
	// Invariant: f(lo) <= budget < f(hi).
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if f(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// guessString formats guesses for algorithm names.
func guessString(params []Param, guesses []int) string {
	s := ""
	for i, p := range params {
		if i > 0 {
			s += ","
		}
		if i < len(guesses) {
			s += fmt.Sprintf("%s=%d", p, guesses[i])
		}
	}
	return s
}
