// Package core implements the contribution of Korman, Sereni and Viennot,
// "Toward more localized local algorithms: removing assumptions concerning
// global knowledge" (PODC 2011 / Distributed Computing 2013):
//
//   - pruning algorithms (Section 3): constant-radius local procedures with
//     the solution-detection and gluing properties, including the concrete
//     pruners P(2,β) for ruling sets (Observation 3.2), P_MM for maximal
//     matching (Observation 3.3) and the strong-list-coloring pruner of
//     Section 5.2;
//
//   - alternating algorithms (Section 3.3, Figure 1): running a sequence of
//     budget-restricted algorithms interleaved with a pruning algorithm so
//     that the global output never deteriorates (Observation 3.4);
//
//   - sequence-number machinery (Section 4.2): bounded set-sequences for
//     additive and product running-time bounds (Observation 4.1), exposed as
//     a small composable algebra;
//
//   - the transformers: Theorem 1 (Uniform), Theorem 2 (LasVegas),
//     Theorem 3 (UniformWeaklyDominated), Theorem 4 (FastestOf), Theorem 5
//     (UniformColoring via strong list coloring) and the Section 5.1
//     MIS-to-(deg+1)-coloring product construction.
//
// The package requires a 64-bit int: parameter guesses range up to 2^62
// (packed identities of derived graphs).
package core

import (
	"fmt"

	"github.com/unilocal/unilocal/internal/local"
)

// Param names a non-decreasing graph parameter in the sense of Section 2.
type Param string

// The parameters used by the paper's applications.
const (
	// ParamN is the number of nodes n.
	ParamN Param = "n"
	// ParamMaxDegree is the maximum degree Δ.
	ParamMaxDegree Param = "Delta"
	// ParamArboricity is the arboricity a.
	ParamArboricity Param = "a"
	// ParamMaxID is the maximum identity m (also used for "maximum initial
	// color" in the coloring applications of Section 5).
	ParamMaxID Param = "m"
)

// GuessCap is the largest guess value the machinery will produce; it
// accommodates the packed identities of derived graphs.
const GuessCap = int(1) << 62

// Params is the typed parameter vector Γ of Section 2: the guessed (or
// measured) values of the four graph parameters the paper's applications
// consume. An algorithm reads only the fields named by its Params() list;
// the others carry no meaning for it.
type Params struct {
	// N is the number of nodes n.
	N int
	// Delta is the maximum degree Δ.
	Delta int
	// Arb is the arboricity bound a.
	Arb int
	// M is the maximum identity m (also "maximum initial color").
	M int64
}

// NewParams builds the measured parameter vector of a concrete graph with
// the domain floor applied explicitly: n, m and the arboricity bound are
// positive integers by definition (Section 2), so degenerate measurements —
// n = 0 or m = 0 on an empty graph, an arboricity bound of 0 on an edgeless
// one — are raised to 1 here, in one visible place. Δ is NOT floored: 0 is
// its true value on an edgeless graph and every engine accepts it.
func NewParams(n, delta, arb int, m int64) Params {
	if n < 1 {
		n = 1
	}
	if arb < 1 {
		arb = 1
	}
	if m < 1 {
		m = 1
	}
	return Params{N: n, Delta: delta, Arb: arb, M: m}
}

// Value returns the named parameter as a guess value. M is reported as int:
// guesses are bounded by GuessCap, which fits the required 64-bit int.
func (p Params) Value(q Param) int {
	switch q {
	case ParamN:
		return p.N
	case ParamMaxDegree:
		return p.Delta
	case ParamArboricity:
		return p.Arb
	case ParamMaxID:
		return int(p.M)
	}
	panic(fmt.Sprintf("core: unknown parameter %q", q))
}

// With returns a copy of p with the named parameter set to v.
func (p Params) With(q Param, v int) Params {
	switch q {
	case ParamN:
		p.N = v
	case ParamMaxDegree:
		p.Delta = v
	case ParamArboricity:
		p.Arb = v
	case ParamMaxID:
		p.M = int64(v)
	default:
		panic(fmt.Sprintf("core: unknown parameter %q", q))
	}
	return p
}

// String lists the vector in the paper's order.
func (p Params) String() string {
	return fmt.Sprintf("n=%d,Δ=%d,a=%d,m=%d", p.N, p.Delta, p.Arb, p.M)
}

// ParamsFromVector converts a positional guess vector — coordinates follow
// params, as emitted by a SetSequence — into a typed Params. The list must
// be duplicate-free; schedules whose coordinate lists repeat a parameter
// (Theorem 3's Λ may) translate positionally before reaching this form.
func ParamsFromVector(params []Param, vec []int) Params {
	if len(vec) < len(params) {
		panic(fmt.Sprintf("core: guess vector of arity %d for %d parameters", len(vec), len(params)))
	}
	var p Params
	for i, q := range params {
		for _, prev := range params[:i] {
			if prev == q {
				panic(fmt.Sprintf("core: duplicate parameter %q in vector conversion", q))
			}
		}
		p = p.With(q, vec[i])
	}
	return p
}

// NonUniform is a non-uniform local algorithm in the sense of Section 2: a
// black box whose code consumes the guessed values of the parameters in
// Params. The contract required by the transformers is:
//
//  1. WithParams(p) terminates at every node within the running-time bound
//     encoded by the SetSequence supplied alongside it, for any guesses;
//  2. if every guess is good (>= the true parameter value on the current
//     instance), the output solves the problem;
//  3. with bad guesses the output may be arbitrary (it is never trusted:
//     only the pruning algorithm certifies outputs).
type NonUniform interface {
	Name() string
	Params() []Param
	WithParams(p Params) local.Algorithm
}

// NonUniformFunc packages a NonUniform from closures.
type NonUniformFunc struct {
	AlgoName string
	Needs    []Param
	Build    func(p Params) local.Algorithm
}

// Name implements NonUniform.
func (a NonUniformFunc) Name() string { return a.AlgoName }

// Params implements NonUniform.
func (a NonUniformFunc) Params() []Param { return a.Needs }

// WithParams implements NonUniform.
func (a NonUniformFunc) WithParams(p Params) local.Algorithm { return a.Build(p) }

var _ NonUniform = NonUniformFunc{}

// AscFunc is an ascending function on positive integers: non-decreasing and
// tending to infinity (Section 2). Ascending functions are the building
// blocks of running-time bounds; MaxArg inverts them.
type AscFunc func(x int) int

// MaxArg returns the largest x in [1, GuessCap] with f(x) <= budget, or 0 if
// f(1) > budget. f must be non-decreasing.
func MaxArg(f AscFunc, budget int) int {
	if f(1) > budget {
		return 0
	}
	lo := 1 // f(lo) <= budget
	hi := 2
	for hi <= GuessCap/2 && f(hi) <= budget {
		lo = hi
		hi *= 2
	}
	if hi > GuessCap {
		hi = GuessCap
	}
	if f(hi) <= budget {
		return hi
	}
	// Invariant: f(lo) <= budget < f(hi).
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if f(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
