package core

import (
	"math/rand/v2"

	"github.com/unilocal/unilocal/internal/local"
)

// Step is one link of an alternating algorithm's chain: run Algo restricted
// to Budget rounds on the surviving subgraph, then prune.
type Step struct {
	Algo   local.Algorithm
	Budget int
}

// Plan enumerates the steps of an alternating algorithm. Implementations
// must be pure functions of k (they are invoked concurrently by every node,
// and every node must derive the identical schedule). Returning ok = false
// means the plan is exhausted; a correct transformer plan is infinite in
// principle and exhausts only on arithmetic saturation.
type Plan interface {
	Step(k int) (step Step, ok bool)
}

// NewAlternating returns the alternating algorithm π((A_k)_k, P) of Section
// 3.3 as a single uniform LOCAL algorithm (Figure 1 of the paper). Each
// node repeats:
//
//	window k:   run plan.Step(k).Algo for exactly Budget rounds on the
//	            subgraph induced by the surviving nodes (ports of pruned
//	            neighbours are masked away);
//	gather:     flood (identity, input, tentative output, active-neighbour
//	            list) records for Radius rounds;
//	announce:   evaluate the pruner on the gathered ball; pruned nodes
//	            broadcast departure and terminate with their tentative
//	            output; survivors broadcast survival;
//	absorb:     survivors update their active-port sets and inputs and move
//	            to window k+1.
//
// Because every window length is a pure function of k, all nodes stay in
// lockstep without any synchronisation traffic, exactly as in Algorithm 1
// and Algorithm 2 of the paper. By Observation 3.4, if the execution
// terminates the combined output solves the pruner's problem.
func NewAlternating(name string, plan Plan, pruner Pruner) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info local.Info) local.Node {
			n := &altNode{info: info, plan: plan, pruner: pruner, input: info.Input}
			n.activePorts = make([]int, info.Degree)
			for p := range n.activePorts {
				n.activePorts[p] = p
			}
			return n
		},
	}
}

// gatherMsg floods ball records during the pruning phase.
type gatherMsg struct {
	records []*BallNode
}

// announceMsg reports whether the sender survives into the next window.
type announceMsg struct {
	surviving bool
}

type altNode struct {
	info   local.Info
	plan   Plan
	pruner Pruner

	k      int // current step index
	step   Step
	offset int // round offset within the current window
	sub    *local.Subrun

	activePorts []int // host ports of surviving neighbours
	input       any   // current input x_k(v)
	tentative   any
	known       map[int64]*BallNode
	decision    Decision
	exhausted   bool
}

func (n *altNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.exhausted {
		// Plan ran out of steps: idle (the engine's round cap will surface
		// this as an error; it indicates a broken plan or bound).
		return nil, false
	}
	if n.offset == 0 && !n.beginWindow() {
		return nil, false
	}
	budget := n.step.Budget
	radius := n.pruner.Radius()
	var send []local.Message
	switch {
	case n.offset < budget: // run phase
		send = n.stepInner(recv)
	case n.offset < budget+radius: // gather phase
		send = n.gather(n.offset-budget == 0, recv)
	case n.offset == budget+radius: // announce phase
		n.mergeRecords(recv)
		n.decision = n.pruner.Decide(&Ball{CenterID: n.info.ID, Nodes: n.known})
		n.known = nil
		send = n.broadcastActive(announceMsg{surviving: !n.decision.Prune})
		if n.decision.Prune {
			return send, true
		}
	default: // absorb phase
		n.absorb(recv)
		n.k++
		n.offset = 0
		return nil, false
	}
	n.offset++
	return send, false
}

// beginWindow fetches step k and instantiates the inner node on the current
// induced neighbourhood. It reports false (and idles) if the plan is
// exhausted.
func (n *altNode) beginWindow() bool {
	step, ok := n.plan.Step(n.k)
	if !ok {
		n.exhausted = true
		return false
	}
	if step.Budget < 1 {
		step.Budget = 1
	}
	n.step = step
	ids := make([]int64, len(n.activePorts))
	for i, p := range n.activePorts {
		ids[i] = n.info.Neighbors[p]
	}
	info := local.Info{
		ID:        n.info.ID,
		Degree:    len(n.activePorts),
		Neighbors: ids,
		Input:     n.input,
		Rand:      rand.New(rand.NewPCG(n.info.Rand.Uint64(), n.info.Rand.Uint64())),
	}
	n.sub = local.NewSubrun(step.Algo.New(info), n.activePorts)
	return true
}

// stepInner advances the restricted inner execution by one round.
func (n *altNode) stepInner(recv []local.Message) []local.Message {
	send := n.sub.Step(recv, n.info.Degree)
	if n.offset+1 == n.step.Budget {
		// Budget expires after this round: record the tentative output
		// (final if the inner node halted, arbitrary otherwise — the
		// "restricted to i rounds" convention).
		n.tentative = n.sub.Output()
		n.sub = nil
	}
	return send
}

// gather floods ball records through the induced graph.
func (n *altNode) gather(first bool, recv []local.Message) []local.Message {
	if first {
		ids := make([]int64, len(n.activePorts))
		for i, p := range n.activePorts {
			ids[i] = n.info.Neighbors[p]
		}
		n.known = map[int64]*BallNode{n.info.ID: {
			ID:        n.info.ID,
			Dist:      0,
			Input:     n.input,
			Tentative: n.tentative,
			Neighbors: ids,
		}}
	} else {
		n.mergeRecords(recv)
	}
	records := make([]*BallNode, 0, len(n.known))
	for _, rec := range n.known {
		records = append(records, rec)
	}
	return n.broadcastActive(gatherMsg{records: records})
}

// mergeRecords ingests flooded records, keeping minimal distances.
func (n *altNode) mergeRecords(recv []local.Message) {
	for _, p := range n.activePorts {
		gm, ok := recv[p].(gatherMsg)
		if !ok {
			continue
		}
		for _, rec := range gm.records {
			d := rec.Dist + 1
			if have, seen := n.known[rec.ID]; !seen {
				cp := &BallNode{ID: rec.ID, Dist: d, Input: rec.Input, Tentative: rec.Tentative, Neighbors: rec.Neighbors}
				n.known[rec.ID] = cp
			} else if d < have.Dist {
				have.Dist = d
			}
		}
	}
}

// absorb processes survival announcements and applies the input rewrite.
func (n *altNode) absorb(recv []local.Message) {
	next := n.activePorts[:0]
	for _, p := range n.activePorts {
		if am, ok := recv[p].(announceMsg); ok && am.surviving {
			next = append(next, p)
		}
	}
	n.activePorts = next
	if n.decision.NewInput != nil {
		n.input = n.decision.NewInput
	}
}

// broadcastActive sends msg to the surviving neighbours only.
func (n *altNode) broadcastActive(msg local.Message) []local.Message {
	if len(n.activePorts) == 0 {
		return nil
	}
	send := make([]local.Message, n.info.Degree)
	for _, p := range n.activePorts {
		send[p] = msg
	}
	return send
}

func (n *altNode) Output() any { return n.tentative }

var _ local.Node = (*altNode)(nil)
