package core

import (
	"math/rand/v2"

	"github.com/unilocal/unilocal/internal/local"
)

// Step is one link of an alternating algorithm's chain: run Algo restricted
// to Budget rounds on the surviving subgraph, then prune.
type Step struct {
	Algo   local.Algorithm
	Budget int
}

// Plan enumerates the steps of an alternating algorithm. Implementations
// must be pure functions of k (they are invoked concurrently by every node,
// and every node must derive the identical schedule). Returning ok = false
// means the plan is exhausted; a correct transformer plan is infinite in
// principle and exhausts only on arithmetic saturation.
type Plan interface {
	Step(k int) (step Step, ok bool)
}

// NewAlternating returns the alternating algorithm π((A_k)_k, P) of Section
// 3.3 as a single uniform LOCAL algorithm (Figure 1 of the paper). Each
// node repeats:
//
//	window k:   run plan.Step(k).Algo for exactly Budget rounds on the
//	            subgraph induced by the surviving nodes (ports of pruned
//	            neighbours are masked away);
//	gather:     flood (identity, input, tentative output, active-neighbour
//	            list) records for Radius rounds;
//	announce:   evaluate the pruner on the gathered ball; pruned nodes
//	            broadcast departure and terminate with their tentative
//	            output; survivors broadcast survival;
//	absorb:     survivors update their active-port sets and inputs and move
//	            to window k+1.
//
// Because every window length is a pure function of k, all nodes stay in
// lockstep without any synchronisation traffic, exactly as in Algorithm 1
// and Algorithm 2 of the paper. By Observation 3.4, if the execution
// terminates the combined output solves the pruner's problem.
//
// The plan is wrapped in a shared memoized step cache (MemoPlan), so the
// schedule arithmetic — doubling loops, SetSequence materialisations — runs
// once per step index for the whole network instead of once per node per
// window. The returned algorithm may be reused across any number of
// concurrent Runs; see DESIGN.md §2.5 for the sharing rules.
func NewAlternating(name string, plan Plan, pruner Pruner) local.Algorithm {
	plan = MemoPlan(plan)
	return local.AlgorithmFunc{
		AlgoName: name,
		NewNode: func(info local.Info) local.Node {
			n := &altNode{info: info, plan: plan, pruner: pruner, input: info.Input}
			n.activePorts = make([]int, info.Degree)
			for p := range n.activePorts {
				n.activePorts[p] = p
			}
			return n
		},
	}
}

// gatherMsg floods ball records during the pruning phase. The records slice
// is a sub-slice of the sender's arena holding only the records the sender
// first learned in the previous round (the BFS frontier of its ball): the
// standard flooding argument gives every record one shortest-path journey,
// so per-window traffic is O(|ball|) records per node instead of the
// O(radius·|ball|) of whole-set re-flooding. Receivers copy records out
// within one round; the sender only ever appends past the sub-slice, so the
// shared backing array is race-free. Messages are sent as pointers into a
// per-node parity-double-buffered pair: a receiver reads the envelope only
// in the round after the send, and the same parity slot is rewritten no
// sooner than two rounds later.
type gatherMsg struct {
	records []BallRecord
}

// announceMsg reports whether the sender survives into the next window.
type announceMsg struct {
	surviving bool
}

type altNode struct {
	info   local.Info
	plan   Plan
	pruner Pruner

	k      int // current step index
	step   Step
	offset int // round offset within the current window
	sub    *local.Subrun

	activePorts []int // host ports of surviving neighbours
	input       any   // current input x_k(v)
	tentative   any
	decision    Decision
	exhausted   bool

	// Pooled pruning state, reset (not reallocated) every window. arena
	// holds the gathered ball in BFS discovery order with the own record
	// first; index maps identities to arena positions; deltaLo marks the
	// start of the newest BFS frontier (the records to forward next round).
	arena   []BallRecord
	index   map[int64]int32
	ball    Ball
	deltaLo int

	// ids holds the identities of the surviving neighbours, rebuilt in
	// place at every window start. It backs both the inner Info.Neighbors
	// and the own ball record's Neighbors for that window: lockstep
	// guarantees every remote Decide that can observe it has finished
	// before the next rewrite.
	ids []int64

	// sendBuf is the degree-sized broadcast buffer, reused every
	// announce/gather round (the engine consumes a send slice before the
	// next Round call, so one backing array is safe). gmBuf holds the two
	// parity-alternating gather envelopes.
	sendBuf []local.Message
	gmBuf   [2]gatherMsg

	// winPCG/winRand are the per-window RNG handed to the inner algorithm,
	// reseeded in place at every window start with the same draws a fresh
	// PCG would consume.
	winPCG  rand.PCG
	winRand *rand.Rand
}

func (n *altNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	if n.exhausted {
		// Plan ran out of steps: idle (the engine's round cap will surface
		// this as an error; it indicates a broken plan or bound).
		return nil, false
	}
	if n.offset == 0 && !n.beginWindow() {
		return nil, false
	}
	budget := n.step.Budget
	radius := n.pruner.Radius()
	var send []local.Message
	switch {
	case n.offset < budget: // run phase
		send = n.stepInner(recv)
	case n.offset < budget+radius: // gather phase
		send = n.gather(n.offset-budget == 0, r&1, recv)
	case n.offset == budget+radius: // announce phase
		n.mergeRecords(recv)
		n.ball.reset(n.info.ID, n.arena, n.index)
		n.decision = n.pruner.Decide(&n.ball)
		send = n.broadcastActive(announceMsg{surviving: !n.decision.Prune})
		if n.decision.Prune {
			n.release()
			return send, true
		}
	default: // absorb phase
		n.absorb(recv)
		n.k++
		n.offset = 0
		return nil, false
	}
	n.offset++
	return send, false
}

// beginWindow fetches step k and instantiates the inner node on the current
// induced neighbourhood. It reports false (and idles) if the plan is
// exhausted.
func (n *altNode) beginWindow() bool {
	step, ok := n.plan.Step(n.k)
	if !ok {
		n.exhausted = true
		n.release()
		return false
	}
	if step.Budget < 1 {
		step.Budget = 1
	}
	n.step = step
	if n.ids == nil {
		n.ids = make([]int64, 0, len(n.activePorts))
	}
	n.ids = n.ids[:0]
	for _, p := range n.activePorts {
		n.ids = append(n.ids, n.info.Neighbors[p])
	}
	s1 := n.info.Rand.Uint64()
	s2 := n.info.Rand.Uint64()
	n.winPCG.Seed(s1, s2)
	if n.winRand == nil {
		n.winRand = rand.New(&n.winPCG)
	}
	info := local.Info{
		ID:        n.info.ID,
		Degree:    len(n.activePorts),
		Neighbors: n.ids,
		Input:     n.input,
		Rand:      n.winRand,
	}
	if n.sub == nil {
		n.sub = local.NewSubrun(step.Algo.New(info), n.activePorts)
	} else {
		n.sub.Reset(step.Algo.New(info), n.activePorts)
	}
	return true
}

// stepInner advances the restricted inner execution by one round.
func (n *altNode) stepInner(recv []local.Message) []local.Message {
	send := n.sub.Step(recv, n.info.Degree)
	if n.offset+1 == n.step.Budget {
		// Budget expires after this round: record the tentative output
		// (final if the inner node halted, arbitrary otherwise — the
		// "restricted to i rounds" convention) and drop the inner state
		// machine so the window's state is collectable.
		n.tentative = n.sub.Output()
		n.sub.Clear()
	}
	return send
}

// gather floods ball records through the induced graph by delta flooding:
// each round a node forwards exactly the records it first learned in the
// previous round. Records travel along shortest paths, so after the first
// round plus t forwarding rounds every node knows every record at induced
// distance <= t+1, the same ball whole-set re-flooding produces.
func (n *altNode) gather(first bool, parity int, recv []local.Message) []local.Message {
	if first {
		if n.arena == nil {
			// Pre-size for the common small-radius case: a radius-2 ball
			// holds at most 1 + deg + deg·(deg-1) records, and the arena
			// grows (once, keeping capacity forever) if the ball is larger.
			hint := 2 + 4*len(n.activePorts)
			n.arena = make([]BallRecord, 0, hint)
			n.index = make(map[int64]int32, hint)
		} else {
			n.arena = n.arena[:0]
			clear(n.index)
		}
		n.arena = append(n.arena, BallRecord{
			ID:        n.info.ID,
			Dist:      0,
			Input:     n.input,
			Tentative: n.tentative,
			Neighbors: n.ids,
		})
		n.index[n.info.ID] = 0
		n.deltaLo = 0
	} else {
		n.deltaLo = len(n.arena)
		n.mergeRecords(recv)
	}
	// An empty delta is still broadcast: the fixed message pattern keeps the
	// phase structure (and Result.Messages) independent of ball shape.
	gm := &n.gmBuf[parity]
	gm.records = n.arena[n.deltaLo:len(n.arena):len(n.arena)]
	return n.broadcastActive(gm)
}

// mergeRecords ingests flooded deltas, appending first-seen records to the
// arena. First arrival is along a shortest path, so the recorded distance
// is minimal; later copies of the same record are duplicates and dropped.
func (n *altNode) mergeRecords(recv []local.Message) {
	for _, p := range n.activePorts {
		gm, ok := recv[p].(*gatherMsg)
		if !ok {
			continue
		}
		for i := range gm.records {
			rec := &gm.records[i]
			if _, seen := n.index[rec.ID]; seen {
				continue
			}
			n.index[rec.ID] = int32(len(n.arena))
			n.arena = append(n.arena, BallRecord{
				ID:        rec.ID,
				Dist:      rec.Dist + 1,
				Input:     rec.Input,
				Tentative: rec.Tentative,
				Neighbors: rec.Neighbors,
			})
		}
	}
}

// absorb processes survival announcements and applies the input rewrite.
func (n *altNode) absorb(recv []local.Message) {
	next := n.activePorts[:0]
	for _, p := range n.activePorts {
		if am, ok := recv[p].(announceMsg); ok && am.surviving {
			next = append(next, p)
		}
	}
	n.activePorts = next
	if n.decision.NewInput != nil {
		n.input = n.decision.NewInput
	}
}

// broadcastActive sends msg to the surviving neighbours only.
func (n *altNode) broadcastActive(msg local.Message) []local.Message {
	if len(n.activePorts) == 0 {
		return nil
	}
	if n.sendBuf == nil {
		n.sendBuf = make([]local.Message, n.info.Degree)
	}
	send := n.sendBuf
	for p := range send {
		send[p] = nil
	}
	for _, p := range n.activePorts {
		send[p] = msg
	}
	return send
}

// release drops the pooled state of a node that will never run another
// window (pruned or exhausted), so the engine's states table does not pin
// every terminated node's last ball for the rest of the run.
func (n *altNode) release() {
	n.arena, n.index, n.ids, n.sendBuf, n.sub = nil, nil, nil, nil, nil
	n.ball = Ball{}
}

func (n *altNode) Output() any { return n.tentative }

var _ local.Node = (*altNode)(nil)
