package sweep_test

// Cancellation semantics of the batch scheduler: a canceled batch must
// return partially-filled results where every incomplete slot carries an
// error wrapping sweep.ErrCanceled (and the context's own error) — never a
// zero-valued Result indistinguishable from a successful run. Run under
// -race in CI: cancellation races against the claim loop by construction.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/sweep"
)

// gateAlgo blocks its round loop until released, then halts; it lets a test
// hold a batch mid-flight at a deterministic point without sleeping.
func gateAlgo(gate <-chan struct{}, started *atomic.Int64) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: "gate",
		NewNode: func(local.Info) local.Node {
			return &gateNode{gate: gate, started: started}
		},
	}
}

type gateNode struct {
	gate    <-chan struct{}
	started *atomic.Int64
	waited  bool
}

func (n *gateNode) Round(int, []local.Message) ([]local.Message, bool) {
	if !n.waited {
		n.waited = true
		if n.started != nil {
			n.started.Add(1)
		}
		<-n.gate
	}
	return nil, true
}

func (n *gateNode) Output() any { return true }

// TestSweepCanceledBeforeStart pins the all-sentinel case: a context that is
// already dead yields no zero slots and no real runs.
func TestSweepCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := testJobs(t)
	results, stats := sweep.Run(jobs, sweep.Options{Parallel: 4, Context: ctx})
	if stats.Jobs != len(jobs) {
		t.Fatalf("stats.Jobs = %d, want %d", stats.Jobs, len(jobs))
	}
	for i := range results {
		if results[i].Res != nil {
			t.Fatalf("job %d ran despite pre-canceled context", i)
		}
		if !errors.Is(results[i].Err, sweep.ErrCanceled) {
			t.Fatalf("job %d: err = %v, want ErrCanceled", i, results[i].Err)
		}
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want it to wrap context.Canceled", i, results[i].Err)
		}
	}
	if err := sweep.FirstErr(results); !errors.Is(err, sweep.ErrCanceled) {
		t.Fatalf("FirstErr = %v, want ErrCanceled", err)
	}
}

// TestSweepCanceledMidBatch holds the first wave of jobs on a gate, cancels,
// and checks the three slot classes: completed results are kept, interrupted
// or unstarted slots all carry the sentinel, and no slot is zero-valued.
func TestSweepCanceledMidBatch(t *testing.T) {
	const parallel = 4
	gate := make(chan struct{})
	var started atomic.Int64
	blocking := gateAlgo(gate, &started)
	quick := spreadAlgo(2)

	// Jobs 0..3 complete before the gate jobs are claimed is impossible: the
	// first parallel claims are the gate jobs, which block; the quick jobs
	// behind them never start.
	var jobs []sweep.Job
	for i := 0; i < parallel; i++ {
		jobs = append(jobs, sweep.Job{
			Label: fmt.Sprintf("gate%d", i),
			Graph: graph.Path(8),
			Algo:  func() local.Algorithm { return blocking },
		})
	}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, sweep.Job{
			Label: fmt.Sprintf("quick%d", i),
			Graph: graph.Path(64),
			Algo:  func() local.Algorithm { return quick },
			Seed:  int64(i),
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results []sweep.Result
	go func() {
		defer close(done)
		results, _ = sweep.Run(jobs, sweep.Options{Parallel: parallel, Context: ctx})
	}()
	// Wait until every worker is parked inside a gate job, then cancel and
	// release the gates so the held runs finish their (single) round.
	for started.Load() < parallel {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	close(gate)
	<-done

	completed := 0
	for i := range results {
		r := results[i]
		switch {
		case r.Res != nil && r.Err == nil:
			completed++
		case r.Err != nil:
			if !errors.Is(r.Err, sweep.ErrCanceled) {
				t.Fatalf("job %d (%s): err = %v, want ErrCanceled", i, jobs[i].Label, r.Err)
			}
		default:
			t.Fatalf("job %d (%s): zero-valued Result slot after cancellation", i, jobs[i].Label)
		}
	}
	// The gate jobs' nodes halt in their first round, so the held runs
	// complete once released; the quick jobs behind them must not have run.
	for i := parallel; i < len(jobs); i++ {
		if results[i].Err == nil {
			t.Fatalf("job %d (%s) completed after cancellation", i, jobs[i].Label)
		}
	}
	if completed == 0 {
		t.Fatal("no job completed; expected the gate jobs to finish after release")
	}
}

// TestSweepDeadlineStopsLongRuns checks that a deadline interrupts jobs
// mid-run (not only between jobs): a single never-halting job must come back
// with ErrCanceled wrapping DeadlineExceeded, not spin to MaxRounds.
func TestSweepDeadlineStopsLongRuns(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	forever := local.AlgorithmFunc{
		AlgoName: "forever",
		NewNode:  func(local.Info) local.Node { return foreverNode{} },
	}
	jobs := []sweep.Job{{
		Label: "stuck",
		Graph: graph.Star(16),
		Algo:  func() local.Algorithm { return forever },
	}}
	results, _ := sweep.Run(jobs, sweep.Options{Parallel: 1, Context: ctx})
	if !errors.Is(results[0].Err, sweep.ErrCanceled) || !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", results[0].Err)
	}
	if results[0].Res != nil {
		t.Fatal("interrupted job carries a Result")
	}
}

// TestSweepUnfiredContextByteIdentical pins that merely carrying a context
// does not perturb scheduling or results.
func TestSweepUnfiredContextByteIdentical(t *testing.T) {
	jobs := testJobs(t)
	ref, _ := sweep.Run(jobs, sweep.Options{Parallel: 1})
	got, _ := sweep.Run(jobs, sweep.Options{Parallel: 3, Context: context.Background()})
	if err := sweep.FirstErr(got); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if got[i].Res == nil || got[i].Res.Rounds != ref[i].Res.Rounds || got[i].Res.Messages != ref[i].Res.Messages {
			t.Fatalf("job %d diverges under an unfired context", i)
		}
	}
}
