package sweep_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/sweep"
)

// spreadAlgo is a message- and randomness-sensitive algorithm whose running
// time varies with rounds, so jobs of different sizes finish out of
// submission order and any cross-job state leakage (shared RunState, lane
// slots, RNG streams) changes the outputs.
func spreadAlgo(rounds int) local.Algorithm {
	return local.AlgorithmFunc{
		AlgoName: fmt.Sprintf("spread-%d", rounds),
		NewNode: func(info local.Info) local.Node {
			return &spreadNode{info: info, rounds: rounds + int(info.Rand.Uint64()%5)}
		},
	}
}

type spreadNode struct {
	info   local.Info
	rounds int
	mix    uint64
}

func (n *spreadNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if v, ok := m.(uint64); ok {
			n.mix ^= v + uint64(r)
		}
	}
	if r >= n.rounds {
		return nil, true
	}
	return local.Broadcast(n.info.Rand.Uint64(), n.info.Degree), false
}

func (n *spreadNode) Output() any { return n.mix }

// testJobs builds a batch mixing shapes, sizes, run lengths and seeds so a
// parallel schedule completes in a thoroughly shuffled order.
func testJobs(t testing.TB) []sweep.Job {
	t.Helper()
	gnp, err := graph.GNP(300, 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{gnp, graph.Path(400), graph.Star(150), graph.Complete(40)}
	var jobs []sweep.Job
	for i, g := range graphs {
		for seed := int64(0); seed < 3; seed++ {
			rounds := 2 + (len(graphs)-i)*13 // earlier jobs run longer
			a := spreadAlgo(rounds)
			jobs = append(jobs, sweep.Job{
				Label: fmt.Sprintf("g%d/seed%d", i, seed),
				Graph: g,
				Algo:  func() local.Algorithm { return a },
				Seed:  seed,
			})
		}
	}
	return jobs
}

// TestSweepDeterministicOrdering is the scheduler's core invariant: for
// every parallelism level, results arrive in job order with deterministic
// fields identical to the sequential batch, even though completion order is
// shuffled (long jobs first). Run under -race in CI.
func TestSweepDeterministicOrdering(t *testing.T) {
	jobs := testJobs(t)
	ref, refStats := sweep.Run(jobs, sweep.Options{Parallel: 1})
	if err := sweep.FirstErr(ref); err != nil {
		t.Fatal(err)
	}
	if refStats.Jobs != len(jobs) || refStats.Workers != 1 {
		t.Fatalf("stats = %+v, want %d jobs on 1 worker", refStats, len(jobs))
	}
	for _, parallel := range []int{2, 4, 16} {
		res, stats := sweep.Run(jobs, sweep.Options{Parallel: parallel})
		if err := sweep.FirstErr(res); err != nil {
			t.Fatal(err)
		}
		if want := min(parallel, len(jobs)); stats.Workers != want {
			t.Fatalf("parallel=%d: stats.Workers = %d, want %d", parallel, stats.Workers, want)
		}
		for i := range jobs {
			if !reflect.DeepEqual(res[i].Res, ref[i].Res) {
				t.Fatalf("parallel=%d: job %d (%s) diverges from sequential batch",
					parallel, i, jobs[i].Label)
			}
		}
	}
}

// TestSweepEngineWorkerIndependence pins that pinning the inner engine's
// worker count does not change deterministic results.
func TestSweepEngineWorkerIndependence(t *testing.T) {
	jobs := testJobs(t)[:6]
	ref, _ := sweep.Run(jobs, sweep.Options{Parallel: 1, EngineWorkers: 1})
	for _, ew := range []int{0, 2, 7} {
		res, _ := sweep.Run(jobs, sweep.Options{Parallel: 3, EngineWorkers: ew})
		for i := range jobs {
			if !reflect.DeepEqual(res[i].Res, ref[i].Res) {
				t.Fatalf("engineWorkers=%d: job %d diverges", ew, i)
			}
		}
	}
}

// TestSweepErrorIsolation checks that a failing job reports its error in its
// own slot and leaves every other job untouched.
func TestSweepErrorIsolation(t *testing.T) {
	jobs := testJobs(t)[:4]
	forever := local.AlgorithmFunc{
		AlgoName: "forever",
		NewNode:  func(local.Info) local.Node { return foreverNode{} },
	}
	bad := sweep.Job{
		Label:     "stuck",
		Graph:     graph.Star(16),
		Algo:      func() local.Algorithm { return forever },
		MaxRounds: 32,
	}
	jobs = append(jobs[:2:2], bad, jobs[2], jobs[3])
	res, _ := sweep.Run(jobs, sweep.Options{Parallel: 2})
	if !errors.Is(res[2].Err, local.ErrMaxRounds) {
		t.Fatalf("bad job error = %v, want ErrMaxRounds", res[2].Err)
	}
	if res[2].Res != nil {
		t.Fatal("failed job carries a Result")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if res[i].Err != nil || res[i].Res == nil {
			t.Fatalf("job %d polluted by failing neighbour: err=%v", i, res[i].Err)
		}
	}
	if err := sweep.FirstErr(res); !errors.Is(err, local.ErrMaxRounds) {
		t.Fatalf("FirstErr = %v", err)
	}
}

type foreverNode struct{}

func (foreverNode) Round(int, []local.Message) ([]local.Message, bool) { return nil, false }
func (foreverNode) Output() any                                        { return nil }

// TestSweepMetrics sanity-checks the per-job and batch metrics: wall times
// are positive, rounds/messages mirror the engine Result, warm same-shape
// jobs report zero engine allocations, and the batch stats add up.
func TestSweepMetrics(t *testing.T) {
	g := graph.Path(256)
	a := spreadAlgo(6)
	var jobs []sweep.Job
	for seed := int64(0); seed < 5; seed++ {
		jobs = append(jobs, sweep.Job{
			Label: fmt.Sprintf("seed%d", seed),
			Graph: g,
			Algo:  func() local.Algorithm { return a },
			Seed:  seed,
		})
	}
	res, stats := sweep.Run(jobs, sweep.Options{Parallel: 1})
	if err := sweep.FirstErr(res); err != nil {
		t.Fatal(err)
	}
	var allocs uint64
	for i := range res {
		if res[i].Wall <= 0 {
			t.Fatalf("job %d: wall = %v", i, res[i].Wall)
		}
		if res[i].Res.Rounds <= 0 || res[i].Res.Messages <= 0 {
			t.Fatalf("job %d: empty result %+v", i, res[i].Res)
		}
		allocs += res[i].Allocs
	}
	// All five jobs share one shape on one worker: at most the first can be
	// cold (and even it may hit a warm pooled state from an earlier test).
	for i := 1; i < len(res); i++ {
		if res[i].Allocs != 0 {
			t.Errorf("warm job %d performed %d engine allocations", i, res[i].Allocs)
		}
	}
	if stats.EngineAllocs != allocs {
		t.Errorf("stats.EngineAllocs = %d, want %d", stats.EngineAllocs, allocs)
	}
	if stats.JobsPerSec <= 0 {
		t.Errorf("stats.JobsPerSec = %v", stats.JobsPerSec)
	}
	if stats.Wall <= 0 {
		t.Errorf("stats.Wall = %v", stats.Wall)
	}
}

// TestSweepEmptyBatch keeps the degenerate case total.
func TestSweepEmptyBatch(t *testing.T) {
	res, stats := sweep.Run(nil, sweep.Options{})
	if len(res) != 0 || stats.Jobs != 0 {
		t.Fatalf("empty batch: res=%v stats=%+v", res, stats)
	}
}
