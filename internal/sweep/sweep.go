// Package sweep schedules batches of independent LOCAL simulations — the
// workload the paper implies: many (graph, algorithm, seed) runs per
// transformer, swept over graph families. Runs are embarrassingly parallel at
// run granularity, so the scheduler executes whole simulations concurrently
// over a bounded worker set while keeping everything the harness consumes
// deterministic:
//
//   - Result ordering is positional: results[i] always belongs to jobs[i],
//     regardless of completion order.
//   - Simulation outcomes (outputs, halt rounds, rounds, messages) are pure
//     functions of (graph, algorithm, seed) — the engine guarantees
//     byte-identical Results for any worker count — so a parallel sweep
//     reproduces a sequential one exactly.
//   - Per-job metrics avoid the global-runtime.MemStats hack: each worker
//     owns a pooled local.RunState and reads per-run allocation deltas from
//     its counter, which no concurrent run, GC cycle or unrelated goroutine
//     can perturb. (At Parallel == 1 the alloc metric is additionally
//     reproducible across invocations; in a parallel batch the job→worker
//     placement — and hence which jobs find a warm state — is
//     timing-dependent, though the counters themselves stay exact.)
//
// cmd/localbench and the repo-level benchmarks submit their experiments here;
// Stats carries the batch-level throughput (jobs/sec, cumulative engine
// allocations) recorded in BENCH.json across PRs.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// ErrCanceled marks every result slot a canceled batch did not complete. It
// aliases local.ErrCanceled so one errors.Is check covers both a job the
// engine stopped mid-run and a job the scheduler never started; the slot
// errors additionally wrap the context's own error (context.Canceled or
// context.DeadlineExceeded).
var ErrCanceled = local.ErrCanceled

// Job specifies one independent simulation.
type Job struct {
	// Label identifies the job in harness output; the scheduler ignores it.
	Label string
	// Graph is the (immutable, shareable) topology to run on.
	Graph *graph.Graph
	// Algo returns the algorithm to simulate. It is invoked on the scheduler
	// worker executing the job, concurrently with other jobs' factories, so
	// it must be safe for concurrent use. Returning one shared memoized
	// algorithm value from many factories is both safe and preferred (the
	// plan cache is then paid once, see DESIGN.md §2.5).
	Algo func() local.Algorithm
	// Seed drives the run's randomness.
	Seed int64
	// MaxRounds caps the simulation; 0 means the engine default.
	MaxRounds int
	// Permute, when non-nil, selects the engine's adversarial per-round
	// delivery permutation for this job (see local.Options.Permute).
	Permute *local.Permute
}

// Result is the outcome of one job.
type Result struct {
	// Res is the simulation result, nil when Err is non-nil.
	Res *local.Result
	// Err is the simulation error, if any. One failing job does not stop the
	// batch; callers decide what a failure means for their sweep.
	Err error
	// Wall is the wall-clock duration of this run alone.
	Wall time.Duration
	// Allocs is the number of engine-buffer allocations this run performed
	// (the per-worker RunState counter delta). Warm runs on shapes the
	// worker has already seen report 0. The counter is exact — never
	// polluted by concurrent runs or GC — and reproducible across
	// invocations at Parallel == 1; in a parallel batch, which jobs land on
	// a warm worker depends on scheduling.
	Allocs uint64
}

// Stats aggregates one batch.
type Stats struct {
	// Jobs is the number of jobs executed.
	Jobs int
	// Workers is the resolved scheduler worker count.
	Workers int
	// Wall is the wall-clock duration of the whole batch.
	Wall time.Duration
	// JobsPerSec is Jobs divided by Wall.
	JobsPerSec float64
	// EngineAllocs is the sum of all per-job Allocs.
	EngineAllocs uint64
	// NodeSteps is the sum of all per-job Result.Steps — the batch's total
	// engine work in node-steps, deterministic at any parallelism (the
	// instruction-count proxy BENCH.json schema v4 pins).
	NodeSteps int64
	// StepSlots is the sum over jobs of Rounds × n — the node-steps a
	// frontier-less engine would execute. NodeSteps/StepSlots is the batch's
	// frontier occupancy.
	StepSlots int64
	// FrontierOccupancy is NodeSteps / StepSlots: the mean fraction of nodes
	// live per round across the batch (0 when the batch ran no rounds).
	FrontierOccupancy float64
}

// Options configures a batch.
type Options struct {
	// Parallel is the number of simulations in flight; 0 means GOMAXPROCS,
	// and the count is clamped to the job count. Parallel == 1 runs inline
	// on the calling goroutine with no scheduling overhead.
	Parallel int
	// EngineWorkers pins the per-simulation engine worker count. 0 picks the
	// sensible default for the batch shape: sequential engines when the
	// scheduler itself is parallel (run-level parallelism replaces
	// round-level parallelism without oversubscribing), GOMAXPROCS engines
	// when Parallel == 1.
	EngineWorkers int
	// Context, when non-nil, cancels the batch: no new job starts after it
	// fires, jobs already running stop at their next round boundary (the
	// engine checks it between rounds), and every slot that did not run to
	// completion carries an error wrapping ErrCanceled — never a zero
	// Result indistinguishable from a successful run. Results of jobs that
	// completed before the cancellation are kept, so callers see exactly
	// which prefix of work is trustworthy. nil means run the batch to
	// completion.
	Context context.Context
	// OnResult, when non-nil, is invoked once per job right after its result
	// lands at results[i] — the progress hook the serving layer's SSE streams
	// feed from. It is called from scheduler workers, concurrently with other
	// jobs' callbacks, so it must be safe for concurrent use and should be
	// cheap (it runs on the worker's critical path). Only jobs a worker
	// actually finished report — including jobs interrupted mid-run by a
	// fired context — slots stamped with ErrCanceled after the drain because
	// they never started do not.
	OnResult func(i int, r Result)
}

// Results is a batch's outcomes in job order. The helper methods are the
// slot bookkeeping shard executors and retry coordinators lean on: a slot
// is "complete" exactly when it carries a successful simulation, and
// cancellation is distinguishable from genuine failure without callers
// re-deriving either from error chains.
type Results []Result

// FirstIncomplete returns the index of the first slot that did not complete
// successfully — a nil Res or a non-nil Err, including canceled slots — or
// -1 when every slot completed. A non-negative return is what a shard-level
// retry must re-run.
func (rs Results) FirstIncomplete() int {
	for i := range rs {
		if rs[i].Err != nil || rs[i].Res == nil {
			return i
		}
	}
	return -1
}

// FirstErr returns the first error that is a genuine failure — not a
// cancellation — in job order; when the only errors are cancellations
// (slots stamped with ErrCanceled by a fired context) it returns the first
// of those instead, and nil when every slot completed. Retry bookkeeping
// depends on the distinction: a canceled slot is re-runnable as-is, while a
// failed slot would fail again deterministically.
func (rs Results) FirstErr() error {
	var canceled error
	for i := range rs {
		err := rs[i].Err
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCanceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return err
	}
	return canceled
}

// MergeSlots scatters a shard's sub-results into the full-width result
// slice: sub[k] lands at dst[slots[k]]. It refuses shape mismatches, slot
// indices outside dst and slots already holding a completed result, so two
// shards that were (incorrectly) assigned overlapping slots fail loudly
// instead of silently overwriting each other. Because results are pure
// functions of (graph, algorithm, seed), a merge of disjoint shard results
// is byte-identical to running the whole grid in one process.
func MergeSlots(dst Results, slots []int, sub Results) error {
	if len(slots) != len(sub) {
		return fmt.Errorf("sweep: merging %d results into %d slots", len(sub), len(slots))
	}
	for k, slot := range slots {
		if slot < 0 || slot >= len(dst) {
			return fmt.Errorf("sweep: slot %d outside grid of %d", slot, len(dst))
		}
		if dst[slot].Res != nil || dst[slot].Err != nil {
			return fmt.Errorf("sweep: slot %d already filled", slot)
		}
		dst[slot] = sub[k]
	}
	return nil
}

// Run executes the jobs and returns their results in job order plus the
// batch statistics. Deterministic fields of the results are identical for
// every Parallel and EngineWorkers setting. When Options.Context fires
// mid-batch the returned slice is partially filled: completed jobs keep
// their results, every other slot errors with ErrCanceled.
func Run(jobs []Job, opts Options) (Results, Stats) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	if parallel < 1 {
		parallel = 1
	}
	engineOpts := local.Options{Workers: opts.EngineWorkers, Context: opts.Context}
	if opts.EngineWorkers == 0 && parallel > 1 {
		engineOpts.Sequential = true
	}
	ctx := opts.Context

	results := make([]Result, len(jobs))
	start := time.Now()
	var cursor atomic.Int64
	worker := func() {
		// One pooled engine state per worker: jobs on this worker reuse its
		// buffers back to back, and the pool recycles it across batches.
		var st *local.RunState
		defer func() {
			if st != nil {
				st.Release()
			}
		}()
		for {
			// A fired context stops the claim loop; unclaimed slots are
			// stamped with the cancellation sentinel after the workers drain.
			if ctx != nil && ctx.Err() != nil {
				return
			}
			i := int(cursor.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			j := &jobs[i]
			if st == nil {
				st = local.AcquireRunState(j.Graph.N(), j.Graph.NumEdges())
			}
			o := engineOpts
			o.Seed = j.Seed
			o.MaxRounds = j.MaxRounds
			o.State = st
			o.Permute = j.Permute
			before := st.Allocs()
			t0 := time.Now()
			res, err := local.Run(j.Graph, j.Algo(), o)
			results[i] = Result{
				Res:    res,
				Err:    err,
				Wall:   time.Since(t0),
				Allocs: st.Allocs() - before,
			}
			if opts.OnResult != nil {
				opts.OnResult(i, results[i])
			}
		}
	}
	if parallel == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(parallel)
		for w := 0; w < parallel; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	if ctx != nil && ctx.Err() != nil {
		// Every slot the batch did not finish must be distinguishable from a
		// success: a claimed-and-interrupted job already carries the engine's
		// ErrCanceled, an unclaimed one gets the scheduler's sentinel here.
		// (All workers have returned, so the remaining zero slots are exactly
		// the jobs that never started.)
		for i := range results {
			if results[i].Res == nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("%w: %w: job %q never started", ErrCanceled, ctx.Err(), jobs[i].Label)
			}
		}
	}

	stats := Stats{Jobs: len(jobs), Workers: parallel, Wall: time.Since(start)}
	for i := range results {
		stats.EngineAllocs += results[i].Allocs
		if res := results[i].Res; res != nil {
			stats.NodeSteps += res.Steps
			stats.StepSlots += int64(res.Rounds) * int64(len(res.HaltRounds))
		}
	}
	if stats.StepSlots > 0 {
		stats.FrontierOccupancy = float64(stats.NodeSteps) / float64(stats.StepSlots)
	}
	if secs := stats.Wall.Seconds(); secs > 0 {
		stats.JobsPerSec = float64(stats.Jobs) / secs
	}
	return results, stats
}

// FirstErr is Results.FirstErr as a free function, for callers holding a
// plain slice.
func FirstErr(results []Result) error {
	return Results(results).FirstErr()
}
