package sweep_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/sweep"
)

var errBoom = errors.New("boom")

func mkResults() sweep.Results {
	ok := &local.Result{Rounds: 1}
	canceled := fmt.Errorf("%w: %w: job never started", sweep.ErrCanceled, context.Canceled)
	return sweep.Results{
		{Res: ok},
		{Err: canceled},
		{Err: errBoom},
		{Res: ok},
	}
}

func TestFirstIncomplete(t *testing.T) {
	rs := mkResults()
	if got := rs.FirstIncomplete(); got != 1 {
		t.Fatalf("FirstIncomplete = %d, want 1", got)
	}
	if got := (sweep.Results{{Res: &local.Result{}}}).FirstIncomplete(); got != -1 {
		t.Fatalf("complete batch: FirstIncomplete = %d, want -1", got)
	}
	// A zero-valued slot (never started, never stamped) is incomplete too.
	if got := (make(sweep.Results, 3)).FirstIncomplete(); got != 0 {
		t.Fatalf("zero slots: FirstIncomplete = %d, want 0", got)
	}
}

func TestFirstErrPrefersFailureOverCancellation(t *testing.T) {
	rs := mkResults()
	// Slot 1 is canceled, slot 2 genuinely failed: the failure wins even
	// though the cancellation comes first in job order.
	if err := rs.FirstErr(); !errors.Is(err, errBoom) {
		t.Fatalf("FirstErr = %v, want errBoom", err)
	}
	// All-canceled batches still report the cancellation.
	onlyCanceled := sweep.Results{rs[0], rs[1], rs[3]}
	if err := onlyCanceled.FirstErr(); !errors.Is(err, sweep.ErrCanceled) {
		t.Fatalf("FirstErr = %v, want ErrCanceled", err)
	}
	if err := (sweep.Results{rs[0], rs[3]}).FirstErr(); err != nil {
		t.Fatalf("clean batch: FirstErr = %v", err)
	}
	// The free function keeps working on plain slices.
	if err := sweep.FirstErr(rs); !errors.Is(err, errBoom) {
		t.Fatalf("free FirstErr = %v, want errBoom", err)
	}
}

func TestMergeSlots(t *testing.T) {
	ok := &local.Result{Rounds: 2}
	dst := make(sweep.Results, 6)
	if err := sweep.MergeSlots(dst, []int{0, 2, 4}, sweep.Results{{Res: ok}, {Res: ok}, {Err: errBoom}}); err != nil {
		t.Fatal(err)
	}
	if err := sweep.MergeSlots(dst, []int{1, 3, 5}, sweep.Results{{Res: ok}, {Res: ok}, {Res: ok}}); err != nil {
		t.Fatal(err)
	}
	if got := dst.FirstIncomplete(); got != 4 {
		t.Fatalf("FirstIncomplete after merge = %d, want 4 (the failed slot)", got)
	}

	// Shape mismatch, out-of-range slots and double fills are refused.
	if err := sweep.MergeSlots(dst, []int{0}, sweep.Results{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := sweep.MergeSlots(make(sweep.Results, 2), []int{2}, sweep.Results{{Res: ok}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := sweep.MergeSlots(dst, []int{0}, sweep.Results{{Res: ok}}); err == nil {
		t.Fatal("double fill accepted")
	}
	// An error-carrying slot counts as filled: a retry must clear it first.
	if err := sweep.MergeSlots(dst, []int{4}, sweep.Results{{Res: ok}}); err == nil {
		t.Fatal("overwrite of failed slot accepted")
	}
}

// TestMergeSlotsReproducesFullRun is the determinism half of the shard
// contract at the sweep layer: running a grid's shards separately and
// merging by slot index reproduces the single-batch results exactly.
func TestMergeSlotsReproducesFullRun(t *testing.T) {
	g, err := graph.GNP(48, 0.12, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := spreadAlgo(9)
	jobs := make([]sweep.Job, 8)
	for i := range jobs {
		jobs[i] = sweep.Job{
			Label: fmt.Sprintf("job-%d", i),
			Graph: g,
			Algo:  func() local.Algorithm { return a },
			Seed:  int64(i + 1),
		}
	}
	full, _ := sweep.Run(jobs, sweep.Options{Parallel: 1})

	const shards = 3
	merged := make(sweep.Results, len(jobs))
	for s := 0; s < shards; s++ {
		var slots []int
		var sub []sweep.Job
		for i := s; i < len(jobs); i += shards {
			slots = append(slots, i)
			sub = append(sub, jobs[i])
		}
		res, _ := sweep.Run(sub, sweep.Options{Parallel: 2})
		if err := sweep.MergeSlots(merged, slots, res); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.FirstIncomplete(); got != -1 {
		t.Fatalf("merged grid incomplete at %d", got)
	}
	for i := range full {
		if full[i].Res.Rounds != merged[i].Res.Rounds || full[i].Res.Messages != merged[i].Res.Messages {
			t.Fatalf("slot %d diverges: full (%d rounds, %d msgs), merged (%d rounds, %d msgs)",
				i, full[i].Res.Rounds, full[i].Res.Messages, merged[i].Res.Rounds, merged[i].Res.Messages)
		}
	}
}
