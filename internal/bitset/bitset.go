// Package bitset implements the dense word-level node-set representation
// the LOCAL engine's steady state runs on: a Set packs one bit per node
// into 64-bit words, so membership tests are a shift and a mask, whole-set
// operations (clear, fill, and-not, population count) touch n/64 words with
// branch-free instructions (POPCNT, TZCNT) instead of n bytes with a branch
// per element, and iterating the members of a sparse set skips 64 absent
// elements per word probe.
//
// The paper's uniform algorithms spend most of their simulated time in long
// pseudo-halted tails where almost every node is inactive every round; a
// Set is the right steady-state shape for that regime because the per-round
// bookkeeping cost is measured in words scanned, not nodes considered.
//
// Invariant (tail masking): for a Set of Len n, every bit at position >= n
// in the last word is zero. All mutators preserve it and Count, NextZero
// and the iteration helpers rely on it; Fill establishes it explicitly.
// Storage beyond WordsFor(n) words may hold stale data from a larger
// previous use — Reset and Fill size the live window and never touch words
// past it (the word-granular lazy clear the engine's RunState pooling
// depends on).
//
// A Set is not safe for concurrent mutation except through AddAtomic, which
// may race with other AddAtomic calls (bit-or is commutative, so the final
// word value is deterministic) but not with readers or plain mutators.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

// WordsFor returns the number of 64-bit words backing a set of n bits.
func WordsFor(n int) int { return (n + 63) >> 6 }

// Set is a fixed-length bit set. The zero value is an empty set of length
// 0; Reset or Fill size it. See the package comment for the tail-masking
// invariant and the concurrency contract.
type Set struct {
	words []uint64
	n     int
}

// Len returns the length of the set in bits (the node count it covers).
func (s *Set) Len() int { return s.n }

// Words exposes the backing words for tight read loops (the engine's
// per-round scans iterate these directly rather than paying a call per
// member). The slice is exactly WordsFor(Len()) long; callers must not
// change its length or violate the tail-masking invariant when writing.
func (s *Set) Words() []uint64 { return s.words }

// size reslices the backing array to cover n bits without initializing the
// window, growing it when the capacity does not fit. It reports whether it
// allocated, so pooled holders can count buffer growth deterministically.
func (s *Set) size(n int) (grew bool) {
	w := WordsFor(n)
	if cap(s.words) < w {
		s.words = make([]uint64, w)
		grew = true
	} else {
		s.words = s.words[:w]
	}
	s.n = n
	return grew
}

// Reset makes s the empty set of n bits, clearing exactly the live word
// window (words past WordsFor(n) are left as they are — the lazy,
// word-granular clear). It reports whether the backing array grew.
func (s *Set) Reset(n int) (grew bool) {
	grew = s.size(n)
	if !grew {
		clear(s.words)
	}
	return grew
}

// Fill makes s the full set {0, …, n-1}, masking the tail bits of the last
// word to keep the invariant. It reports whether the backing array grew.
func (s *Set) Fill(n int) (grew bool) {
	grew = s.size(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		s.words[len(s.words)-1] = 1<<rem - 1
	}
	return grew
}

// Add inserts i into the set.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// AddAtomic inserts i with an atomic or, safe against concurrent AddAtomic
// calls on any bit of the set (the engine's parallel workers record halts
// this way; or is commutative, so the final contents are deterministic).
func (s *Set) AddAtomic(i int) { atomic.OrUint64(&s.words[i>>6], 1<<(uint(i)&63)) }

// Remove deletes i from the set.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of members — a straight popcount over the live
// window, with no tail correction thanks to the masking invariant.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the smallest member >= i, or Len() when there is none.
// The scan is branch-free within a word: mask below i, then TZCNT.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return s.n
	}
	wi := i >> 6
	w := s.words[wi] &^ (1<<(uint(i)&63) - 1)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi == len(s.words) {
			return s.n
		}
		w = s.words[wi]
	}
}

// NextZero returns the smallest non-member >= i, or Len() when every
// position from i on is a member. This is the complement scan the engine
// uses to walk still-live nodes over a halted set: one inverted word probe
// covers 64 nodes.
func (s *Set) NextZero(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return s.n
	}
	wi := i >> 6
	w := ^s.words[wi] &^ (1<<(uint(i)&63) - 1)
	for {
		if w != 0 {
			// Tail bits of the last word are zero members, so their
			// complement is set; clamp to the logical length.
			return min(wi<<6+bits.TrailingZeros64(w), s.n)
		}
		wi++
		if wi == len(s.words) {
			return s.n
		}
		w = ^s.words[wi]
	}
}

// ForEachSet calls fn for every member in ascending order.
func (s *Set) ForEachSet(fn func(i int)) {
	for wi, w := range s.words {
		for ; w != 0; w &= w - 1 {
			fn(wi<<6 + bits.TrailingZeros64(w))
		}
	}
}

// AppendSet appends every member to dst in ascending order and returns the
// extended slice — the rank materialization the adversarial permutation
// scheduler shuffles (member k of the result is the set's rank-k element).
func (s *Set) AppendSet(dst []int32) []int32 {
	for wi, w := range s.words {
		for ; w != 0; w &= w - 1 {
			dst = append(dst, int32(wi<<6+bits.TrailingZeros64(w)))
		}
	}
	return dst
}

// AndNotCount removes every member of t from s (s &^= t, word-wise) and
// returns the number of members left. This is the engine's between-rounds
// frontier update: one pass of and-not + popcount replaces the per-node
// compaction loop. t must have the same length as s.
func (s *Set) AndNotCount(t *Set) int {
	if s.n != t.n {
		panic("bitset: AndNotCount over sets of different lengths")
	}
	c := 0
	tw := t.words[:len(s.words)]
	for i := range s.words {
		w := s.words[i] &^ tw[i]
		s.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}
