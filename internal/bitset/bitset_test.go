package bitset_test

// Exhaustive word-boundary tests for the Set representation. Every length
// that straddles a 64-bit word edge (63, 64, 65, 127, 129) is exercised
// empty, full and in mixed patterns, because the bugs a packed
// representation invites — an off-by-one in the tail mask, a scan running
// into stale storage past the live window, a popcount including tail bits —
// all live exactly at those boundaries. FuzzSetVsBool drives the whole API
// against a naive []bool reference.

import (
	"math/bits"
	"testing"

	"github.com/unilocal/unilocal/internal/bitset"
)

// boundaryLens is every length the boundary tests sweep: the word-edge
// straddlers from the issue plus degenerate and comfortable sizes.
var boundaryLens = []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 200}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 127: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := bitset.WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEmptySet(t *testing.T) {
	for _, n := range boundaryLens {
		var s bitset.Set
		if grew := s.Reset(n); n > 0 && !grew {
			t.Fatalf("n=%d: fresh Reset did not report growth", n)
		}
		if s.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, s.Len())
		}
		if got := s.Count(); got != 0 {
			t.Errorf("n=%d: empty Count = %d", n, got)
		}
		if got := s.NextSet(0); got != n {
			t.Errorf("n=%d: empty NextSet(0) = %d, want %d", n, got, n)
		}
		if got := s.NextZero(0); n > 0 && got != 0 {
			t.Errorf("n=%d: empty NextZero(0) = %d, want 0", n, got)
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				t.Fatalf("n=%d: empty set contains %d", n, i)
			}
		}
		s.ForEachSet(func(i int) { t.Errorf("n=%d: empty ForEachSet visited %d", n, i) })
	}
}

func TestFullSet(t *testing.T) {
	for _, n := range boundaryLens {
		var s bitset.Set
		s.Fill(n)
		if got := s.Count(); got != n {
			t.Errorf("n=%d: full Count = %d", n, got)
		}
		if got := s.NextZero(0); got != n {
			t.Errorf("n=%d: full NextZero(0) = %d, want %d", n, got, n)
		}
		if n == 0 {
			continue
		}
		if got := s.NextSet(0); got != 0 {
			t.Errorf("n=%d: full NextSet(0) = %d, want 0", n, got)
		}
		// The tail-masking invariant, checked directly on the last word.
		words := s.Words()
		if rem := uint(n) & 63; rem != 0 {
			if want := uint64(1)<<rem - 1; words[len(words)-1] != want {
				t.Errorf("n=%d: last word %#x, want tail-masked %#x", n, words[len(words)-1], want)
			}
		}
		visited := 0
		s.ForEachSet(func(i int) {
			if i != visited {
				t.Fatalf("n=%d: ForEachSet visited %d, want %d", n, i, visited)
			}
			visited++
		})
		if visited != n {
			t.Errorf("n=%d: ForEachSet visited %d members", n, visited)
		}
	}
}

// TestBoundaryMembership plants single bits at every position near word
// edges and checks membership, scans and count around each.
func TestBoundaryMembership(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 129} {
		for _, i := range []int{0, 1, 62, 63, 64, 65, 126, 127, 128} {
			if i >= n {
				continue
			}
			var s bitset.Set
			s.Reset(n)
			s.Add(i)
			if !s.Contains(i) {
				t.Fatalf("n=%d: Add(%d) not visible", n, i)
			}
			if got := s.Count(); got != 1 {
				t.Fatalf("n=%d bit=%d: Count = %d", n, i, got)
			}
			if got := s.NextSet(0); got != i {
				t.Fatalf("n=%d bit=%d: NextSet(0) = %d", n, i, got)
			}
			if got := s.NextSet(i + 1); got != n {
				t.Fatalf("n=%d bit=%d: NextSet(%d) = %d, want %d", n, i, i+1, got, n)
			}
			if got := s.NextZero(i); got != i+1 && !(i+1 == n && got == n) {
				t.Fatalf("n=%d bit=%d: NextZero(%d) = %d", n, i, i, got)
			}
			s.Remove(i)
			if s.Contains(i) || s.Count() != 0 {
				t.Fatalf("n=%d: Remove(%d) left the set non-empty", n, i)
			}
		}
	}
}

// TestClearThenScan pins the lazy-clear contract: a Reset after a larger,
// fully-populated use must leave no stale member visible to any scan, even
// though storage past the new window is deliberately untouched.
func TestClearThenScan(t *testing.T) {
	for _, big := range []int{129, 200} {
		for _, small := range []int{1, 63, 64, 65, 127} {
			var s bitset.Set
			s.Fill(big)
			s.Reset(small)
			if got := s.Count(); got != 0 {
				t.Errorf("Fill(%d) then Reset(%d): Count = %d", big, small, got)
			}
			if got := s.NextSet(0); got != small {
				t.Errorf("Fill(%d) then Reset(%d): NextSet(0) = %d, want %d", big, small, got, small)
			}
			if got := s.NextZero(0); got != 0 {
				t.Errorf("Fill(%d) then Reset(%d): NextZero(0) = %d, want 0", big, small, got)
			}
			s.ForEachSet(func(i int) { t.Errorf("stale member %d survived Reset(%d)", i, small) })
			// And the other direction: growing back must not resurrect bits.
			if small < big {
				s.Reset(big)
				if got := s.Count(); got != 0 {
					t.Errorf("Reset(%d) after Reset(%d): Count = %d", big, small, got)
				}
			}
		}
	}
}

func TestAndNotCount(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 129} {
		var s, d bitset.Set
		s.Fill(n)
		d.Reset(n)
		for i := 0; i < n; i += 3 {
			d.Add(i)
		}
		want := n - d.Count()
		if got := s.AndNotCount(&d); got != want {
			t.Fatalf("n=%d: AndNotCount = %d, want %d", n, got, want)
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != (i%3 != 0) {
				t.Fatalf("n=%d: member %d = %v after and-not", n, i, s.Contains(i))
			}
		}
		// Idempotent: removing the same members again changes nothing.
		if got := s.AndNotCount(&d); got != want {
			t.Fatalf("n=%d: second AndNotCount = %d, want %d", n, got, want)
		}
	}
}

func TestAppendSetRanks(t *testing.T) {
	var s bitset.Set
	s.Reset(129)
	members := []int{0, 1, 63, 64, 65, 100, 127, 128}
	for _, i := range members {
		s.Add(i)
	}
	got := s.AppendSet(nil)
	if len(got) != len(members) {
		t.Fatalf("AppendSet returned %d members, want %d", len(got), len(members))
	}
	for k, i := range members {
		if int(got[k]) != i {
			t.Errorf("rank %d = %d, want %d", k, got[k], i)
		}
	}
}

func TestAddAtomicMatchesAdd(t *testing.T) {
	var a, b bitset.Set
	a.Reset(129)
	b.Reset(129)
	for i := 0; i < 129; i += 5 {
		a.Add(i)
		b.AddAtomic(i)
	}
	for i := 0; i < 129; i++ {
		if a.Contains(i) != b.Contains(i) {
			t.Fatalf("bit %d: Add=%v AddAtomic=%v", i, a.Contains(i), b.Contains(i))
		}
	}
}

// FuzzSetVsBool drives a Set and a []bool reference through the same
// operation stream and requires every observable — membership, count,
// scans, iteration order — to agree. Each op byte selects an operation and
// each following byte a position; lengths cycle through word boundaries.
func FuzzSetVsBool(f *testing.F) {
	f.Add(63, []byte{0, 1, 2, 3})
	f.Add(64, []byte{0, 63, 1, 64})
	f.Add(65, []byte{5, 9, 64, 13, 0})
	f.Add(129, []byte{128, 7, 127, 2, 64, 11})
	f.Fuzz(func(t *testing.T, n int, ops []byte) {
		if n < 0 || n > 512 {
			t.Skip()
		}
		var s bitset.Set
		s.Reset(n)
		ref := make([]bool, n)
		for k := 0; k+1 < len(ops); k += 2 {
			if n == 0 {
				break
			}
			i := int(ops[k+1]) % n
			switch ops[k] % 4 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				ref[i] = false
			case 2:
				s.AddAtomic(i)
				ref[i] = true
			case 3: // scan checkpoints mid-stream
				wantSet, wantZero := n, n
				for j := i; j < n; j++ {
					if ref[j] && wantSet == n {
						wantSet = j
					}
					if !ref[j] && wantZero == n {
						wantZero = j
					}
				}
				if got := s.NextSet(i); got != wantSet {
					t.Fatalf("NextSet(%d) = %d, want %d", i, got, wantSet)
				}
				if got := s.NextZero(i); got != wantZero {
					t.Fatalf("NextZero(%d) = %d, want %d", i, got, wantZero)
				}
			}
		}
		count := 0
		for i := range ref {
			if s.Contains(i) != ref[i] {
				t.Fatalf("bit %d: set=%v ref=%v", i, s.Contains(i), ref[i])
			}
			if ref[i] {
				count++
			}
		}
		if got := s.Count(); got != count {
			t.Fatalf("Count = %d, want %d", got, count)
		}
		var visited []int
		s.ForEachSet(func(i int) { visited = append(visited, i) })
		k := 0
		for i := range ref {
			if ref[i] {
				if k >= len(visited) || visited[k] != i {
					t.Fatalf("ForEachSet order diverged at rank %d", k)
				}
				k++
			}
		}
		if appended := s.AppendSet(nil); len(appended) != count {
			t.Fatalf("AppendSet materialized %d members, want %d", len(appended), count)
		}
		// AndNotCount against a random-ish mask derived from the op bytes.
		var mask bitset.Set
		mask.Reset(n)
		for i := 0; i < n; i++ {
			if len(ops) > 0 && ops[i%len(ops)]&1 == 1 {
				mask.Add(i)
			}
		}
		want := 0
		for i := range ref {
			if ref[i] && !mask.Contains(i) {
				want++
			}
		}
		if got := s.AndNotCount(&mask); got != want {
			t.Fatalf("AndNotCount = %d, want %d", got, want)
		}
	})
}

// sink defeats dead-code elimination in the benchmarks.
var sink int

func BenchmarkBitsetAndNotCount(b *testing.B) {
	const n = 1 << 16
	var s, d bitset.Set
	s.Fill(n)
	d.Reset(n)
	for i := 0; i < n; i += 7 {
		d.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = s.AndNotCount(&d)
	}
}

func BenchmarkBitsetSparseScan(b *testing.B) {
	// The long-tail shape: 1 in 64 nodes live on a 64k-node graph.
	const n = 1 << 16
	var s bitset.Set
	s.Reset(n)
	for i := 0; i < n; i += 64 {
		s.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc := 0
		for _, w := range s.Words() {
			for ; w != 0; w &= w - 1 {
				acc += bits.TrailingZeros64(w)
			}
		}
		sink = acc
	}
}
