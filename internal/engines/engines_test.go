package engines

import (
	"testing"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func suite(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp, err := graph.GNP(100, 0.05, 77)
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := graph.Cycle(24)
	return map[string]*graph.Graph{
		"path":   graph.Path(40),
		"cycle":  cyc,
		"star":   graph.Star(25),
		"clique": graph.Complete(10),
		"gnp":    gnp,
		"forest": graph.ForestUnion(70, 2, 5),
	}
}

func runBools(t *testing.T, g *graph.Graph, a local.Algorithm, seed int64) ([]bool, int) {
	t.Helper()
	res, err := local.Run(g, a, local.Options{Seed: seed})
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	bs, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return bs, res.Rounds
}

func TestAllMISEnginesProduceValidMIS(t *testing.T) {
	algos := map[string]local.Algorithm{
		"uniform-delta": UniformMISDelta(),
		"uniform-id":    UniformMISID(),
		"uniform-arb":   UniformMISArb(),
		"best":          BestMIS(),
		"luby":          LubyMIS(),
		"lasvegas":      LasVegasMIS(),
	}
	t3, err := UniformMISArbTheorem3()
	if err != nil {
		t.Fatal(err)
	}
	algos["uniform-arb-thm3"] = t3
	for gname, g := range suite(t) {
		for aname, a := range algos {
			in, _ := runBools(t, g, a, 13)
			if err := problems.ValidMIS(g, in); err != nil {
				t.Errorf("%s on %s: %v", aname, gname, err)
			}
		}
	}
}

func TestNonUniformBaselines(t *testing.T) {
	for gname, g := range suite(t) {
		for aname, build := range map[string]func(core.Params) local.Algorithm{
			"colormis": NonUniformMISDelta,
			"seqmis":   NonUniformMISID,
			"arbmis":   NonUniformMISArb,
		} {
			in, _ := runBools(t, g, build(GraphParams(g)), 3)
			if err := problems.ValidMIS(g, in); err != nil {
				t.Errorf("%s on %s: %v", aname, gname, err)
			}
		}
	}
}

func TestUniformMatchingRow(t *testing.T) {
	for gname, g := range suite(t) {
		res, err := local.Run(g, UniformMatching(), local.Options{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		if err := problems.ValidMaximalMatching(g, res.Outputs); err != nil {
			t.Errorf("%s: %v", gname, err)
		}
	}
}

func TestNonUniformMatchingBaseline(t *testing.T) {
	for gname, g := range suite(t) {
		res, err := local.Run(g, NonUniformMatching(GraphParams(g)), local.Options{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		if err := problems.ValidMaximalMatching(g, res.Outputs); err != nil {
			t.Errorf("%s: %v", gname, err)
		}
	}
}

func TestLasVegasRulingSetRow(t *testing.T) {
	g, err := graph.GNP(90, 0.06, 81)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []int{1, 2} {
		lv := LasVegasRulingSet(beta)
		for seed := int64(0); seed < 2; seed++ {
			in, _ := runBools(t, g, lv, seed)
			if err := problems.ValidRulingSet(g, in, 2, beta); err != nil {
				t.Errorf("β=%d seed %d: %v", beta, seed, err)
			}
		}
	}
}

func TestColoringRows(t *testing.T) {
	quad, err := UniformQuadColoring()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := UniformLambdaColoring(3)
	if err != nil {
		t.Fatal(err)
	}
	deg1 := UniformDegPlusOneColoring(LubyMIS())
	for gname, g := range suite(t) {
		for aname, a := range map[string]local.Algorithm{"quad": quad, "lambda": lam, "deg+1": deg1} {
			res, err := local.Run(g, a, local.Options{Seed: 7})
			if err != nil {
				t.Fatalf("%s on %s: %v", aname, gname, err)
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				t.Fatal(err)
			}
			palette := 0 // skip range check except deg+1
			if aname == "deg+1" {
				palette = g.MaxDegree() + 1
			}
			if err := problems.ValidColoring(g, colors, palette); err != nil {
				t.Errorf("%s on %s: %v", aname, gname, err)
			}
		}
	}
}

// edgeColors converts per-port outputs to the canonical edge-color slice.
func edgeColors(g *graph.Graph, outputs []any) []int {
	edges := g.Edges()
	colors := make([]int, len(edges))
	for i, e := range edges {
		outs, ok := outputs[e.U].([]int)
		if !ok {
			continue
		}
		for p := 0; p < g.Degree(int(e.U)); p++ {
			if g.Neighbor(int(e.U), p) == int(e.V) {
				colors[i] = outs[p]
				break
			}
		}
	}
	return colors
}

func TestEdgeColoringRows(t *testing.T) {
	for gname, g := range suite(t) {
		if g.NumEdges() == 0 {
			continue
		}
		res, err := local.Run(g, NonUniformEdgeColoring(GraphParams(g)), local.Options{})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		colors := edgeColors(g, res.Outputs)
		if err := problems.ValidEdgeColoring(g, colors, 2*g.MaxDegree()-1); err != nil {
			t.Errorf("non-uniform %s: %v", gname, err)
		}
	}
	uni, err := UniformEdgeColoring()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.GNP(60, 0.06, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(g, uni, local.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The uniform Theorem-5 edge coloring emits per-port []any of ints.
	edges := g.Edges()
	colors := make([]int, len(edges))
	for i, e := range edges {
		outs := res.Outputs[e.U].([]any)
		for p := 0; p < g.Degree(int(e.U)); p++ {
			if g.Neighbor(int(e.U), p) == int(e.V) {
				if c, ok := outs[p].(int); ok {
					colors[i] = c
				}
				break
			}
		}
	}
	if err := problems.ValidEdgeColoring(g, colors, 0); err != nil {
		t.Error(err)
	}
}
