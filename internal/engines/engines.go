// Package engines wires every Table 1 row of Korman–Sereni–Viennot to its
// concrete algorithms and transformers: for each row it exposes the
// non-uniform engine (instantiated with correct guesses, the baseline the
// paper compares against) and the uniform algorithm obtained through the
// paper's machinery (Theorems 1–5 and Section 5.1). The benchmark harness,
// the command-line tools and the examples all build on this package, so the
// wiring of each experiment lives in exactly one place.
//
// Every uniform algorithm returned here is an alternating algorithm whose
// plan is backed by a shared memoized step cache (core.MemoPlan, see
// DESIGN.md §2.5): construct it once and reuse the value across any number
// of graphs, seeds and concurrent Runs — the schedule arithmetic is paid
// once per step index for the lifetime of the value, and results are
// byte-identical to a fresh instance per run. Constructing a new algorithm
// per run (as a throwaway script might) is correct but re-pays the
// schedule walks.
package engines

import (
	"github.com/unilocal/unilocal/internal/algorithms/arbmis"
	"github.com/unilocal/unilocal/internal/algorithms/coloralgo"
	"github.com/unilocal/unilocal/internal/algorithms/colormis"
	"github.com/unilocal/unilocal/internal/algorithms/edgecolor"
	"github.com/unilocal/unilocal/internal/algorithms/lift"
	"github.com/unilocal/unilocal/internal/algorithms/linial"
	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/algorithms/matching"
	"github.com/unilocal/unilocal/internal/algorithms/rulingset"
	"github.com/unilocal/unilocal/internal/algorithms/seqmis"
	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/mathutil"
)

// GraphParams measures the true parameter vector (n, Δ, arboricity upper
// bound, m) of a graph — the values a non-uniform baseline is fed under
// exact knowledge. The domain floor on degenerate values (n, a, m raised to
// at least 1; Δ untouched) is core.NewParams's documented policy.
func GraphParams(g *graph.Graph) core.Params {
	_, arb := graph.ArboricityBounds(g)
	return core.NewParams(g.N(), g.MaxDegree(), arb, g.MaxIDValue())
}

// --- Row "Det. MIS and (Δ+1)-coloring, O(Δ + log* n)" (BE/Kuhn regime) ---

// MISDeltaEngine is the colormis stack as a Theorem 1 black box with
// Γ = {Δ, m} and an additive bound.
func MISDeltaEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "colormis",
		Needs:    []core.Param{core.ParamMaxDegree, core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return colormis.New(p.Delta, p.M)
		},
	}
	return nu, core.Additive(colormis.BoundDelta, colormis.BoundM)
}

// NonUniformMISDelta is the baseline under the advertised parameters.
func NonUniformMISDelta(p core.Params) local.Algorithm {
	return colormis.New(p.Delta, p.M)
}

// UniformMISDelta is the Theorem 1 uniform MIS (Corollary 2, first item).
func UniformMISDelta() local.Algorithm {
	nu, seq := MISDeltaEngine()
	return core.Uniform(nu, seq, core.MISPruner())
}

// --- Row "Det. MIS, 2^O(√log n)" (Panconesi–Srinivasan slot; see
// DESIGN.md §4 for the greedy-by-identity substitution) ---

// MISIDEngine is the truncated sequential-greedy MIS with Γ = {m}.
func MISIDEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "seqmis",
		Needs:    []core.Param{core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return seqmis.Truncated(int(p.M))
		},
	}
	return nu, core.Additive(seqmis.Rounds)
}

// NonUniformMISID is the baseline under the advertised parameters.
func NonUniformMISID(p core.Params) local.Algorithm {
	return seqmis.Truncated(int(p.M))
}

// UniformMISID is the Theorem 1 uniform MIS whose time depends on m only.
func UniformMISID() local.Algorithm {
	nu, seq := MISIDEngine()
	return core.Uniform(nu, seq, core.MISPruner())
}

// --- Arboricity rows (Barenboim–Elkin [6] regime) ---

// MISArbEngine is the H-partition MIS with Γ = {n, a, m} and the
// product-form bound f(ñ)·(f(ã)+f(m̃)) of Observation 4.1.
func MISArbEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "arbmis",
		Needs:    []core.Param{core.ParamN, core.ParamArboricity, core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return arbmis.New(p.Arb, p.N, p.M)
		},
	}
	seq := core.Product(
		core.Additive(arbmis.BoundLayers),
		core.Additive(arbmis.BoundA, arbmis.BoundM),
	)
	return nu, seq
}

// NonUniformMISArb is the baseline under the advertised parameters
// (arboricity taken as its degeneracy upper bound).
func NonUniformMISArb(p core.Params) local.Algorithm {
	return arbmis.New(p.Arb, p.N, p.M)
}

// UniformMISArb is the Theorem 1 uniform arboricity MIS (Corollaries 3/4).
func UniformMISArb() local.Algorithm {
	nu, seq := MISArbEngine()
	return core.Uniform(nu, seq, core.MISPruner())
}

// UniformMISArbTheorem3 derives the same uniform algorithm via Theorem 3,
// with Λ = {n, m} and the arboricity weakly dominated by n (a <= n).
func UniformMISArbTheorem3() (local.Algorithm, error) {
	nu, _ := MISArbEngine()
	seq := core.Product(
		core.Additive(arbmis.BoundLayers),
		core.Additive(
			func(n int) int { return arbmis.BoundA(n) }, // a replaced by its dominator
			arbmis.BoundM,
		),
	)
	return core.UniformWeaklyDominated(nu,
		[]core.Param{core.ParamN, core.ParamN, core.ParamMaxID},
		[]core.Domination{{Param: core.ParamArboricity, ByIndex: 1, G: func(x int) int { return x }}},
		seq, core.MISPruner())
}

// --- Corollary 1(i): min of the three MIS engines via Theorem 4 ---

// BestMIS combines the three uniform MIS algorithms (Δ-engine, m-engine,
// arboricity engine) with Theorem 4, running as fast as the fastest.
func BestMIS() local.Algorithm {
	return core.FastestOf("best-mis", core.MISPruner(),
		UniformMISDelta(), UniformMISArb(), seqmis.New())
}

// --- Row "Rand. MIS, uniform O(log n)" ---

// LubyMIS is the uniform randomized baseline.
func LubyMIS() local.Algorithm { return luby.New() }

// --- Theorem 2: Monte Carlo → Las Vegas ---

// LasVegasMIS transforms truncated Luby (weak Monte Carlo) into a uniform
// Las Vegas MIS.
func LasVegasMIS() local.Algorithm {
	nu := core.NonUniformFunc{
		AlgoName: "luby-truncated",
		Needs:    []core.Param{core.ParamN},
		Build: func(p core.Params) local.Algorithm {
			return luby.Truncated(p.N)
		},
	}
	return core.LasVegas(nu, core.Additive(luby.Rounds), core.MISPruner())
}

// LasVegasRulingSet transforms the truncated power-graph Luby into a
// uniform Las Vegas (2, beta)-ruling set (Corollary 1(vii) slot).
func LasVegasRulingSet(beta int) local.Algorithm {
	nu := core.NonUniformFunc{
		AlgoName: "power-luby",
		Needs:    []core.Param{core.ParamN},
		Build: func(p core.Params) local.Algorithm {
			return rulingset.TruncatedPowerLuby(beta, p.N)
		},
	}
	seq := core.Additive(func(n int) int { return rulingset.PowerLubyRounds(beta, n) })
	return core.LasVegas(nu, seq, core.RulingSetPruner(beta))
}

// NonUniformRulingSet is the weak Monte Carlo baseline under the advertised
// parameters.
func NonUniformRulingSet(beta int) func(p core.Params) local.Algorithm {
	return func(p core.Params) local.Algorithm {
		return rulingset.TruncatedPowerLuby(beta, p.N)
	}
}

// --- Matching row (Corollary 1(vi)) ---

// MatchingEngine is the line-graph matching with Γ = {Δ, m}.
func MatchingEngine() (core.NonUniform, core.SetSequence) {
	nu := core.NonUniformFunc{
		AlgoName: "line-matching",
		Needs:    []core.Param{core.ParamMaxDegree, core.ParamMaxID},
		Build: func(p core.Params) local.Algorithm {
			return matching.New(p.Delta, p.M)
		},
	}
	return nu, core.Additive(matching.BoundDelta, matching.BoundM)
}

// NonUniformMatching is the baseline under the advertised parameters.
func NonUniformMatching(p core.Params) local.Algorithm {
	return matching.New(p.Delta, p.M)
}

// UniformMatching is the Theorem 1 uniform maximal matching.
func UniformMatching() local.Algorithm {
	nu, seq := MatchingEngine()
	return core.Uniform(nu, seq, core.MatchingPruner())
}

// --- Coloring rows (Theorem 5 and Section 5.1) ---

// QuadEngine is the O(Δ̃²)-coloring engine (Linial) for Theorem 5.
type QuadEngine struct{}

// Name implements core.ColoringEngine.
func (QuadEngine) Name() string { return "linial-quad" }

// G implements core.ColoringEngine.
func (QuadEngine) G(d int) int {
	if d < 0 {
		d = 0
	}
	return mathutil.SatMul(3*d+4, 3*d+4)
}

// New implements core.ColoringEngine.
func (QuadEngine) New(deltaHat int, mHat int64) local.Algorithm { return linial.New(deltaHat, mHat) }

// BoundDelta implements core.ColoringEngine.
func (QuadEngine) BoundDelta(d int) int { return mathutil.CeilLog2(d+1) + 16 }

// BoundM implements core.ColoringEngine.
func (QuadEngine) BoundM(m int) int { return coloralgo.BoundM(m) }

// LambdaColoringEngine is the λ(Δ̃+1)-coloring engine for Theorem 5.
type LambdaColoringEngine struct{ Lambda int }

// Name implements core.ColoringEngine.
func (e LambdaColoringEngine) Name() string { return "lambda-coloring" }

// G implements core.ColoringEngine.
func (e LambdaColoringEngine) G(d int) int {
	if d < 0 {
		d = 0
	}
	return coloralgo.LambdaPalette(e.Lambda, d)
}

// New implements core.ColoringEngine.
func (e LambdaColoringEngine) New(deltaHat int, mHat int64) local.Algorithm {
	return coloralgo.Lambda(e.Lambda, deltaHat, mHat)
}

// BoundDelta implements core.ColoringEngine.
func (e LambdaColoringEngine) BoundDelta(d int) int { return coloralgo.LambdaBoundDelta(e.Lambda, d) }

// BoundM implements core.ColoringEngine.
func (e LambdaColoringEngine) BoundM(m int) int { return coloralgo.BoundM(m) }

// UniformQuadColoring is the Theorem 5 uniform O(Δ²)-coloring in O(log* m)
// rounds (Corollary 1(iii), second item).
func UniformQuadColoring() (local.Algorithm, error) {
	return core.UniformColoring(QuadEngine{})
}

// UniformLambdaColoring is the Theorem 5 uniform λ(Δ+1)-style coloring
// (Corollary 1(iii), first item).
func UniformLambdaColoring(lambda int) (local.Algorithm, error) {
	return core.UniformColoring(LambdaColoringEngine{Lambda: lambda})
}

// NonUniformLambdaColoring is the baseline under the advertised parameters.
func NonUniformLambdaColoring(lambda int) func(p core.Params) local.Algorithm {
	return func(p core.Params) local.Algorithm {
		return coloralgo.Lambda(lambda, p.Delta, p.M)
	}
}

// UniformDegPlusOneColoring is the Section 5.1 uniform (deg+1)-coloring
// built on a uniform MIS (Corollary 1(ii) route).
func UniformDegPlusOneColoring(mis local.Algorithm) local.Algorithm {
	return core.ColoringFromMIS(mis)
}

// --- Edge-coloring rows (Corollary 1(v), via the line-graph lift) ---

// NonUniformEdgeColoring is the (2Δ−1)-edge-coloring baseline.
func NonUniformEdgeColoring(p core.Params) local.Algorithm {
	return edgecolor.New(p.Delta, p.M)
}

// UniformEdgeColoring runs the Theorem 5 uniform coloring on the line
// graph: a uniform O(Δ²)-edge-coloring (the λ engine gives the trade-off
// variant).
func UniformEdgeColoring() (local.Algorithm, error) {
	inner, err := core.UniformColoring(QuadEngine{})
	if err != nil {
		return nil, err
	}
	return lift.LineGraph(inner, nil), nil
}
