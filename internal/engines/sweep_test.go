package engines

import (
	"fmt"
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
	sweeppkg "github.com/unilocal/unilocal/internal/sweep"
)

// sweepSizes returns the full size sweep, or the reduced one under -short
// (the shapes and assertions are identical; only the largest instances
// shrink).
func sweepSizes(full, short []int) []int {
	if testing.Short() {
		return short
	}
	return full
}

// testCorpus caches the sweep topologies across this package's tests.
var testCorpus = graph.NewCorpus()

// TestRatioFlatAcrossSizes is the headline reproduction claim in test form:
// the uniform/non-uniform round ratio of the Theorem 1 MIS must not grow
// with n (measured over a 16x sweep on bounded-degree graphs). The whole
// sweep runs as one scheduler batch, the same way cmd/localbench submits
// it.
func TestRatioFlatAcrossSizes(t *testing.T) {
	uniform := UniformMISDelta()
	var jobs []sweeppkg.Job
	var graphs []*graph.Graph
	for _, n := range sweepSizes([]int{128, 512, 2048}, []int{64, 256, 1024}) {
		g, err := testCorpus.RandomRegular(n, 4, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
		baseline := NonUniformMISDelta(GraphParams(g))
		jobs = append(jobs,
			sweeppkg.Job{Label: fmt.Sprintf("n=%d/uniform", n), Graph: g,
				Algo: func() local.Algorithm { return uniform }, Seed: 1},
			sweeppkg.Job{Label: fmt.Sprintf("n=%d/nonuniform", n), Graph: g,
				Algo: func() local.Algorithm { return baseline }, Seed: 1},
		)
	}
	results, _ := sweeppkg.Run(jobs, sweeppkg.Options{Parallel: 4})
	if err := sweeppkg.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	ratios := make([]float64, 0, len(graphs))
	for i, g := range graphs {
		un, nu := results[2*i].Res, results[2*i+1].Res
		in, err := problems.Bools(un.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, in); err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(un.Rounds)/float64(nu.Rounds))
	}
	t.Logf("ratios across sweep: %v", ratios)
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 3*ratios[0] {
			t.Errorf("ratio grew from %.2f to %.2f across the sweep — transformer overhead not flat", ratios[0], ratios[i])
		}
	}
}

// TestBestMISSelectivity pins Theorem 4's selection on opposite extremes.
func TestBestMISSelectivity(t *testing.T) {
	combined := BestMIS()
	star := testCorpus.Star(sweepSizes([]int{1500}, []int{600})[0])
	res, err := local.Run(star, combined, local.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(star, in); err != nil {
		t.Fatal(err)
	}
	// The greedy engine solves a star in O(1); with Theorem 4 interleaving
	// the combination must stay far below Δ = 1499.
	if res.Rounds > 150 {
		t.Errorf("best-MIS took %d rounds on a star (Δ=%d); expected the O(1) engine to win", res.Rounds, star.MaxDegree())
	}
}

// TestLambdaTradeoffShape verifies the paper's trade-off direction on the
// non-uniform row: doubling λ must never slow the coloring down.
func TestLambdaTradeoffShape(t *testing.T) {
	g, err := graph.RandomRegular(256, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, lambda := range []int{1, 2, 4, 8, 16} {
		res, err := local.Run(g, NonUniformLambdaColoring(lambda)(GraphParams(g)), local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidColoring(g, colors, 0); err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if res.Rounds > prev+2 {
			t.Errorf("λ=%d: %d rounds after %d — trade-off direction violated", lambda, res.Rounds, prev)
		}
		prev = res.Rounds
	}
}

// TestLubyLogShape verifies the O(log n) growth of the uniform randomized
// row: quadrupling n must not triple the rounds. The (n, seed) grid runs as
// one scheduler batch.
func TestLubyLogShape(t *testing.T) {
	sizes := sweepSizes([]int{1024, 4096, 16384}, []int{512, 2048, 8192})
	var jobs []sweeppkg.Job
	for _, n := range sizes {
		g, err := testCorpus.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			jobs = append(jobs, sweeppkg.Job{
				Label: fmt.Sprintf("n=%d/seed=%d", n, seed),
				Graph: g,
				Algo:  func() local.Algorithm { return LubyMIS() },
				Seed:  seed,
			})
		}
	}
	results, _ := sweeppkg.Run(jobs, sweeppkg.Options{Parallel: 3})
	if err := sweeppkg.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	rounds := make([]int, 0, len(sizes))
	for i := range sizes {
		total := 0
		for seed := 0; seed < 3; seed++ {
			total += results[3*i+seed].Res.Rounds
		}
		rounds = append(rounds, total/3)
	}
	t.Logf("luby rounds across n sweep: %v", rounds)
	if rounds[2] > rounds[0]*3 {
		t.Errorf("luby rounds grew superlogarithmically: %v", rounds)
	}
}
