package engines

import (
	"testing"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

// sweep returns the full size sweep, or the reduced one under -short (the
// shapes and assertions are identical; only the largest instances shrink).
func sweep(full, short []int) []int {
	if testing.Short() {
		return short
	}
	return full
}

// TestRatioFlatAcrossSizes is the headline reproduction claim in test form:
// the uniform/non-uniform round ratio of the Theorem 1 MIS must not grow
// with n (measured over a 16x sweep on bounded-degree graphs).
func TestRatioFlatAcrossSizes(t *testing.T) {
	uniform := UniformMISDelta()
	ratios := make([]float64, 0, 3)
	for _, n := range sweep([]int{128, 512, 2048}, []int{64, 256, 1024}) {
		g, err := graph.RandomRegular(n, 4, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		un, err := local.Run(g, uniform, local.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		nu, err := local.Run(g, NonUniformMISDelta(g), local.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		in, err := problems.Bools(un.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidMIS(g, in); err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(un.Rounds)/float64(nu.Rounds))
	}
	t.Logf("ratios across sweep: %v", ratios)
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 3*ratios[0] {
			t.Errorf("ratio grew from %.2f to %.2f across the sweep — transformer overhead not flat", ratios[0], ratios[i])
		}
	}
}

// TestBestMISSelectivity pins Theorem 4's selection on opposite extremes.
func TestBestMISSelectivity(t *testing.T) {
	combined := BestMIS()
	star := graph.Star(sweep([]int{1500}, []int{600})[0])
	res, err := local.Run(star, combined, local.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problems.Bools(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := problems.ValidMIS(star, in); err != nil {
		t.Fatal(err)
	}
	// The greedy engine solves a star in O(1); with Theorem 4 interleaving
	// the combination must stay far below Δ = 1499.
	if res.Rounds > 150 {
		t.Errorf("best-MIS took %d rounds on a star (Δ=%d); expected the O(1) engine to win", res.Rounds, star.MaxDegree())
	}
}

// TestLambdaTradeoffShape verifies the paper's trade-off direction on the
// non-uniform row: doubling λ must never slow the coloring down.
func TestLambdaTradeoffShape(t *testing.T) {
	g, err := graph.RandomRegular(256, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, lambda := range []int{1, 2, 4, 8, 16} {
		res, err := local.Run(g, NonUniformLambdaColoring(lambda)(g), local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := problems.ValidColoring(g, colors, 0); err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if res.Rounds > prev+2 {
			t.Errorf("λ=%d: %d rounds after %d — trade-off direction violated", lambda, res.Rounds, prev)
		}
		prev = res.Rounds
	}
}

// TestLubyLogShape verifies the O(log n) growth of the uniform randomized
// row: quadrupling n must not triple the rounds.
func TestLubyLogShape(t *testing.T) {
	rounds := make([]int, 0, 3)
	for _, n := range sweep([]int{1024, 4096, 16384}, []int{512, 2048, 8192}) {
		g, err := graph.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for seed := int64(0); seed < 3; seed++ {
			res, err := local.Run(g, LubyMIS(), local.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		rounds = append(rounds, total/3)
	}
	t.Logf("luby rounds across n sweep: %v", rounds)
	if rounds[2] > rounds[0]*3 {
		t.Errorf("luby rounds grew superlogarithmically: %v", rounds)
	}
}
