package engines

import (
	"testing"

	"github.com/unilocal/unilocal/internal/core"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

// TestGraphParamsDegenerateGraphs pins the measured parameter vector on the
// degenerate graphs that used to be clamped silently: the floor now lives in
// core.NewParams, and GraphParams must surface exactly its policy — n, a, m
// floored at 1, Δ reported as measured (0 on an edgeless graph).
func TestGraphParamsDegenerateGraphs(t *testing.T) {
	single, err := graph.NewBuilder(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := GraphParams(single), (core.Params{N: 1, Delta: 0, Arb: 1, M: 1}); got != want {
		t.Errorf("single node: %+v, want %+v", got, want)
	}

	b := graph.NewBuilder(5)
	for u := 0; u < 5; u++ {
		b.SetID(u, int64(10+u))
	}
	edgeless, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := GraphParams(edgeless), (core.Params{N: 5, Delta: 0, Arb: 1, M: 14}); got != want {
		t.Errorf("edgeless: %+v, want %+v", got, want)
	}

	// Every baseline constructor must accept the degenerate vectors without
	// panicking — the explicit clamp is what makes that safe.
	for name, build := range map[string]func(core.Params) local.Algorithm{
		"colormis": NonUniformMISDelta,
		"seqmis":   NonUniformMISID,
		"arbmis":   NonUniformMISArb,
		"matching": NonUniformMatching,
		"edgecol":  NonUniformEdgeColoring,
	} {
		for gname, g := range map[string]*graph.Graph{"single": single, "edgeless": edgeless} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s on %s graph panicked: %v", name, gname, r)
					}
				}()
				build(GraphParams(g))
			}()
		}
	}
}
