// Package fabric is the fault-tolerant distributed sweep coordinator: it
// fans one scenario corpus out over a set of localserved replicas as shard
// requests, supervises the replicas through failures, and merges the shard
// documents into the exact byte sequence the single-process render path
// (cmd/localbench -scenarios, scenario.Render) produces.
//
// The determinism contract does the heavy lifting. Every shard document
// field is a pure function of (spec, seed) — the serve layer ships no
// outputs, no timing, nothing placement-dependent — so the coordinator is
// free to be aggressively non-deterministic about *where* and *how often*
// work runs: shards are retried on other replicas after failures, hedged
// when a replica is slow, and executed in-process when every replica is
// down, and none of it can change a byte of the merged document. Robustness
// machinery here is therefore purely additive:
//
//   - per-attempt timeouts scaled by the same work estimators the serve
//     layer's admission uses (graph nodes+edges × shard slots);
//   - bounded retries with deterministic jittered exponential backoff and a
//     global retry budget, so a dead fleet produces a bounded number of
//     requests, never a storm;
//   - a per-replica circuit breaker (closed → open after consecutive
//     failures → half-open after a /healthz probe succeeds), so a dead
//     replica costs probes, not request timeouts;
//   - optional hedging: a straggling shard is re-issued to an idle replica
//     and the first response wins — safe because both responses are
//     byte-identical by contract;
//   - graceful degradation: when no replica can take work, shards fall back
//     to in-process execution through the same serve.ExecuteShard code path
//     the replicas run.
//
// Deterministic client errors (HTTP 400/413/422: the spec itself is bad)
// abort the sweep immediately — retrying them elsewhere would fail
// identically. Everything else (transport errors, timeouts, 429, 5xx,
// corrupted or truncated documents) is retriable. See DESIGN.md §2.9.
package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/scenario"
)

// ErrTerminal wraps replica answers that retrying cannot fix: the request
// itself is invalid (bad spec, over the replica's work bounds, max_rounds
// expiry). The sweep aborts with it instead of burning the retry budget.
var ErrTerminal = errors.New("fabric: terminal replica error")

// ErrExhausted reports a shard that failed on every allowed attempt with
// fallback disabled, or a sweep whose global retry budget ran out.
var ErrExhausted = errors.New("fabric: retry budget exhausted")

// Config configures a Coordinator. The zero value of every field selects a
// sensible default (see New); Endpoints is the only required field unless
// Fallback is set.
type Config struct {
	// Endpoints are the replica base URLs (e.g. http://127.0.0.1:8080).
	Endpoints []string
	// Shards is the shard count per spec; 0 means one per endpoint. The
	// count is clamped to each spec's job count so no empty shard ships.
	Shards int
	// Client issues the HTTP requests; nil means a plain http.Client.
	// Wrapping its Transport (see faultinject) is how tests inject faults.
	Client *http.Client
	// Seed is the sweep seed, identical to localbench -seed; 0 means 1.
	Seed int64

	// MaxAttempts bounds how many times one shard is tried against replicas
	// before falling back (or failing); 0 means 4.
	MaxAttempts int
	// RetryBudget bounds retries across the whole sweep — the anti-storm
	// backstop when many shards fail at once; 0 means 4 per shard task.
	RetryBudget int
	// BaseBackoff/MaxBackoff shape the exponential backoff between a shard's
	// attempts; 0 means 50ms / 2s. Jitter is deterministic in BackoffSeed,
	// so a replayed sweep issues the same request schedule.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BackoffSeed seeds the jitter; 0 means 1.
	BackoffSeed int64

	// TimeoutBase/TimeoutPerUnit/TimeoutMax shape per-attempt timeouts:
	// base + units×perUnit capped at max, where units is the shard's slot
	// count times the spec's estimated nodes+edges (the serve admission
	// estimators). 0 means 10s / 20µs / 60s.
	TimeoutBase    time.Duration
	TimeoutPerUnit time.Duration
	TimeoutMax     time.Duration

	// FailureThreshold opens a replica's circuit breaker after that many
	// consecutive failures; 0 means 3.
	FailureThreshold int
	// ProbeInterval is how long an open breaker waits before a /healthz
	// probe; 0 means 250ms.
	ProbeInterval time.Duration
	// Hedge re-issues a shard to a second idle replica when the first
	// attempt has been in flight this long; 0 disables hedging.
	Hedge time.Duration
	// Fallback executes a shard in-process (serve.ExecuteShard, the code
	// path the replicas themselves run) when its attempts are exhausted or
	// no replica can take work. With it set, a sweep completes — byte-
	// identically — even with every replica dead.
	Fallback bool
	// FallbackParallel is the sweep parallelism of in-process fallback
	// execution; 0 means GOMAXPROCS.
	FallbackParallel int
	// CorpusStore, when non-nil, backs the fallback corpus with the
	// content-addressed CSR image store — graphs the replica fleet already
	// built load from disk instead of regenerating when the coordinator has
	// to execute shards in-process.
	CorpusStore *graph.Store

	// Logf, when non-nil, receives one line per notable supervision event
	// (retry, breaker transition, hedge, fallback).
	Logf func(format string, args ...any)
}

// Stats counts what a sweep's supervision actually did.
type Stats struct {
	Tasks        int // shard tasks (spec × shard)
	Attempts     int // HTTP attempts issued, hedges included
	Retries      int // failed attempts that were retried or fell back
	RetryBudget  int // the sweep-wide retry ceiling Retries counts against
	Hedges       int // duplicate attempts issued for stragglers
	Fallbacks    int // tasks completed by in-process execution
	Probes       int // /healthz probes of open breakers
	BreakerOpens int // closed/half-open → open transitions
	// Replicas is each endpoint's supervision state at sweep end, in
	// Config.Endpoints order — what cmd/localsweepd -status prints.
	Replicas []ReplicaStatus
}

// ReplicaStatus is one replica's supervision state at sweep end: where its
// circuit breaker finished, how close it sits to opening, and what its
// attempts amounted to. Successes+Failures can undercount Attempts — an
// attempt canceled by the drain or a lost hedge race scores neither.
type ReplicaStatus struct {
	URL              string `json:"url"`
	Breaker          string `json:"breaker"` // closed | open | half-open
	ConsecutiveFails int    `json:"consecutive_fails"`
	Attempts         int    `json:"attempts"`
	Successes        int    `json:"successes"`
	Failures         int    `json:"failures"`
}

// Coordinator runs distributed sweeps. Create with New; Sweep may be called
// repeatedly and reuses the fallback graph corpus across calls.
type Coordinator struct {
	cfg    Config
	client *http.Client
	corpus *graph.Corpus
}

// New validates the configuration and fills defaults.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Endpoints) == 0 && !cfg.Fallback {
		return nil, errors.New("fabric: no endpoints and no fallback")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("fabric: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(cfg.Endpoints)
		if cfg.Shards == 0 {
			cfg.Shards = 1
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BackoffSeed == 0 {
		cfg.BackoffSeed = 1
	}
	if cfg.TimeoutBase <= 0 {
		cfg.TimeoutBase = 10 * time.Second
	}
	if cfg.TimeoutPerUnit <= 0 {
		cfg.TimeoutPerUnit = 20 * time.Microsecond
	}
	if cfg.TimeoutMax <= 0 {
		cfg.TimeoutMax = 60 * time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	corpus := graph.NewCorpus()
	if cfg.CorpusStore != nil {
		corpus.AttachStore(cfg.CorpusStore)
	}
	return &Coordinator{cfg: cfg, client: client, corpus: corpus}, nil
}

// Sweep shards the specs across the replicas, rides out failures, and
// returns the merged markdown document — byte-identical to
// scenario.Render over a single-process run of the same specs and seed —
// plus the supervision statistics. A terminal replica error, an exhausted
// retry budget without fallback, or context cancellation abort the sweep.
func (c *Coordinator) Sweep(ctx context.Context, specs []*scenario.Spec) ([]byte, Stats, error) {
	run, err := c.newRun(specs)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := run.loop(ctx); err != nil {
		return nil, run.stats, err
	}
	tab := &scenario.Table{Sections: make([]scenario.Section, 0, len(run.states))}
	for _, st := range run.states {
		tab.Jobs += st.plan.Jobs()
		sec, err := scenario.SectionFrom(st.plan, st.info, st.slots)
		if err != nil {
			return nil, run.stats, err
		}
		tab.Sections = append(tab.Sections, sec)
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		return nil, run.stats, err
	}
	return buf.Bytes(), run.stats, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
