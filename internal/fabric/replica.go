package fabric

import "time"

// breakerState is a replica's circuit-breaker position.
//
//	closed    — healthy, takes work.
//	open      — too many consecutive failures; takes no work until a
//	            /healthz probe succeeds. Requests it would have received go
//	            to other replicas (or in-process fallback) instead, so a
//	            dead replica costs probe round-trips, not request timeouts.
//	half-open — probe succeeded; one trial request is allowed. Success
//	            closes the breaker, failure reopens it immediately.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the breaker position the way operators read it in the
// -status summary.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// replica is the scheduler-owned state of one endpoint. Only the scheduler
// goroutine touches it.
type replica struct {
	url     string
	state   breakerState
	fails   int // consecutive failures
	busy    int // live attempts on this replica
	probing bool
	probeAt time.Time

	// Cumulative supervision counters, exported as ReplicaStatus at sweep
	// end (the scheduler owns them; no locking).
	attempts  int
	successes int
	failures  int
}

// status snapshots the replica's supervision state.
func (rep *replica) status() ReplicaStatus {
	return ReplicaStatus{
		URL:              rep.url,
		Breaker:          rep.state.String(),
		ConsecutiveFails: rep.fails,
		Attempts:         rep.attempts,
		Successes:        rep.successes,
		Failures:         rep.failures,
	}
}

// pick returns a replica able to take one attempt now, or nil. Closed
// replicas are preferred least-busy-first (spreading shards evenly); a
// half-open replica is used only when idle, as its single trial request.
// When hedging (exclude != nil), replicas already working on that task's
// attempt are skipped so the duplicate lands somewhere independent — with
// one replica total, a straggler is simply not hedged.
func (r *sweepRun) pick(exclude *task) *replica {
	var best *replica
	for _, rep := range r.reps {
		if rep.state != breakerClosed {
			continue
		}
		if exclude != nil && rep.busy > 0 {
			// Cheap independence test: during a hedge every busy replica is
			// suspect of being the straggler's host; an idle one never is.
			continue
		}
		if rep.busy >= maxPerReplica {
			continue
		}
		if best == nil || rep.busy < best.busy {
			best = rep
		}
	}
	if best != nil {
		return best
	}
	if exclude != nil {
		return nil // a hedge never spends a half-open trial
	}
	for _, rep := range r.reps {
		if rep.state == breakerHalfOpen && rep.busy == 0 {
			return rep
		}
	}
	return nil
}

// maxPerReplica caps concurrent attempts per replica: each replica is
// itself a parallel sweep executor, so queueing a second request behind the
// first (instead of a third, fourth, …) keeps its admission queue shallow
// while hiding the coordinator's round-trip latency.
const maxPerReplica = 2

// allOpen reports whether no replica can currently take work at all —
// the "fleet is gone" condition that triggers in-process fallback.
func (r *sweepRun) allOpen() bool {
	for _, rep := range r.reps {
		if rep.state != breakerOpen {
			return false
		}
	}
	return true
}

func (r *sweepRun) noteSuccess(rep *replica) {
	rep.fails = 0
	rep.successes++
	if rep.state != breakerClosed {
		r.c.logf("fabric: %s closed (recovered)", rep.url)
		rep.state = breakerClosed
	}
}

func (r *sweepRun) noteFailure(rep *replica) {
	rep.fails++
	rep.failures++
	if rep.state == breakerHalfOpen || (rep.state == breakerClosed && rep.fails >= r.c.cfg.FailureThreshold) {
		rep.state = breakerOpen
		rep.probeAt = time.Now().Add(r.c.cfg.ProbeInterval)
		r.stats.BreakerOpens++
		r.c.logf("fabric: %s open after %d consecutive failures", rep.url, rep.fails)
	}
}
