package faultinject

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// ErrDiskFault is the error a Fail or FsyncError disk fault surfaces, so
// tests can errors.Is for injected failures specifically.
var ErrDiskFault = errors.New("faultinject: injected disk fault")

// Disk op names, the Match key of a DiskRule.
const (
	OpAppend    = "append"
	OpSync      = "sync"
	OpWriteFile = "writefile"
)

// DiskRule is one disk fault with its firing condition — the disk-layer
// sibling of Rule, sharing the same seeded decision machinery: Every fires
// on every nth matching operation, Prob on a seeded per-operation dice roll,
// and the same (seed, rules, operation sequence) produces the same faults.
type DiskRule struct {
	// Match selects operations by name (OpAppend, OpSync, OpWriteFile);
	// empty matches every operation.
	Match string
	// Every fires the rule on every nth matching operation (1 = all). Prob
	// fires it when the seeded dice land below the value. Neither set: never.
	Every int
	Prob  float64

	// Fail fails the operation with ErrDiskFault before any bytes move — a
	// full disk, a revoked handle.
	Fail bool
	// ShortWrite writes only the first half of the payload and then fails —
	// the torn append a crash mid-write leaves behind. Only meaningful for
	// OpAppend and OpWriteFile.
	ShortWrite bool
	// FsyncError performs the operation but fails the durability report —
	// the write(2)-succeeded-fsync-failed case journals must treat as "the
	// bytes may not be on disk". Only meaningful for OpSync.
	FsyncError bool
}

// DiskStats counts injected disk faults.
type DiskStats struct {
	Ops         uint64 // operations seen
	Fails       uint64
	ShortWrites uint64
	FsyncErrors uint64
}

// Disk applies DiskRules to a spool's durability hooks. Its Append, Sync
// and WriteFile methods have exactly the signatures of job.Hooks, so wiring
// is one field each:
//
//	d := &faultinject.Disk{Seed: 7, Rules: ...}
//	hooks := job.Hooks{Append: d.Append, Sync: d.Sync, WriteFile: d.WriteFile}
//
// Safe for concurrent use.
type Disk struct {
	Seed  int64
	Rules []DiskRule

	mu       sync.Mutex
	matched  []uint64
	stats    DiskStats
	disabled bool
}

// Stats returns a snapshot of the injected-fault counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetDisabled turns injection off (true) or back on.
func (d *Disk) SetDisabled(v bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.disabled = v
}

// decide returns the rule to apply to this operation, or -1. The decision
// counter advances per matching operation, exactly like Transport.decide,
// so a schedule is a pure function of (seed, rules, operation sequence).
func (d *Disk) decide(op string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Ops++
	if d.disabled {
		return -1
	}
	if d.matched == nil {
		d.matched = make([]uint64, len(d.Rules))
	}
	for i := range d.Rules {
		r := &d.Rules[i]
		if r.Match != "" && r.Match != op {
			continue
		}
		k := d.matched[i]
		d.matched[i]++
		fire := false
		if r.Every > 0 && (k+1)%uint64(r.Every) == 0 {
			fire = true
		}
		if !fire && r.Prob > 0 && dice(d.Seed, i, k) < r.Prob {
			fire = true
		}
		if fire {
			switch {
			case r.Fail:
				d.stats.Fails++
			case r.ShortWrite:
				d.stats.ShortWrites++
			case r.FsyncError:
				d.stats.FsyncErrors++
			}
			return i
		}
	}
	return -1
}

// Append is a job.Hooks.Append with faults.
func (d *Disk) Append(f *os.File, p []byte) (int, error) {
	ri := d.decide(OpAppend)
	if ri >= 0 {
		r := &d.Rules[ri]
		switch {
		case r.Fail:
			return 0, fmt.Errorf("%w: append to %s", ErrDiskFault, f.Name())
		case r.ShortWrite:
			n, err := f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("%w: short write to %s (%d of %d bytes)", ErrDiskFault, f.Name(), n, len(p))
		}
	}
	return f.Write(p)
}

// Sync is a job.Hooks.Sync with faults.
func (d *Disk) Sync(f *os.File) error {
	ri := d.decide(OpSync)
	if ri >= 0 {
		r := &d.Rules[ri]
		if r.Fail || r.FsyncError {
			// FsyncError still performs the sync — the bytes probably made
			// it — but reports failure, which is all a caller may assume
			// after a real fsync error anyway.
			if r.FsyncError {
				f.Sync()
			}
			return fmt.Errorf("%w: fsync %s", ErrDiskFault, f.Name())
		}
	}
	return f.Sync()
}

// WriteFile is a job.Hooks.WriteFile with faults.
func (d *Disk) WriteFile(name string, data []byte, perm fs.FileMode) error {
	ri := d.decide(OpWriteFile)
	if ri >= 0 {
		r := &d.Rules[ri]
		switch {
		case r.Fail:
			return fmt.Errorf("%w: writing %s", ErrDiskFault, name)
		case r.ShortWrite:
			// Leave the torn half on disk: the caller's atomic-rename
			// protocol must never promote it.
			os.WriteFile(name, data[:len(data)/2], perm)
			return fmt.Errorf("%w: short write to %s", ErrDiskFault, name)
		}
	}
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
