// Package faultinject wraps an http.RoundTripper with a deterministic
// fault schedule: dropped connections, added latency, synthesized error
// statuses, corrupted bodies and truncated bodies, each fired by a seeded
// per-rule decision. The same (seed, rules, request sequence) produces the
// same faults, which is what lets the fabric chaos tests assert exact
// coordinator behaviour — byte-identical merged output, bounded retries —
// under a hostile transport instead of a merely flaky one.
//
// Faults are injected at the transport layer, beneath the coordinator's
// retry/breaker machinery and above the replica, so every failure mode a
// real network produces is representable without touching either side:
// Drop ≈ connection refused/reset, Delay ≈ congestion (tripping the
// attempt timeout when large), Status ≈ a dying or proxied replica, and
// Corrupt/Truncate ≈ damaged or cut-short payloads.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrDropped is the transport error a Drop fault surfaces (wrapped in
// *url.Error by http.Client, like a real connection failure).
var ErrDropped = errors.New("faultinject: connection dropped")

// Rule is one fault with its firing condition. Exactly one of the fault
// fields (Drop, Delay, Status, Corrupt, Truncate) should be set; the first
// rule that matches and fires is applied, at most one fault per request.
type Rule struct {
	// Match selects requests the rule considers; nil matches every request.
	Match func(*http.Request) bool
	// Every fires the rule on every nth matching request (1 = all). Prob
	// fires it when the seeded per-request dice land below the value.
	// Setting neither means the rule never fires.
	Every int
	Prob  float64

	// Drop fails the request with ErrDropped before it reaches the base
	// transport.
	Drop bool
	// Delay sleeps before forwarding (honoring the request context, so a
	// delay longer than the attempt timeout becomes a timeout).
	Delay time.Duration
	// Status short-circuits with a synthesized response of this code.
	Status int
	// Corrupt forwards the request, then overwrites one byte of the
	// response body with 0x00 — invalid anywhere in a JSON document, so a
	// corrupted shard document always fails decoding rather than silently
	// merging wrong numbers.
	Corrupt bool
	// Truncate forwards the request, then serves only the first half of the
	// body while keeping the original Content-Length, so the client sees an
	// unexpected EOF mid-read — a connection cut short.
	Truncate bool
}

// Stats counts injected faults.
type Stats struct {
	Requests  uint64 // requests seen by the transport
	Drops     uint64
	Delays    uint64
	Statuses  uint64
	Corrupts  uint64
	Truncates uint64
}

// Transport applies Rules on top of Base. Safe for concurrent use.
type Transport struct {
	Base  http.RoundTripper
	Seed  int64
	Rules []Rule

	mu       sync.Mutex
	matched  []uint64 // per-rule matching-request counter
	stats    Stats
	disabled bool
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// SetDisabled turns injection off (true) or back on; useful for fault
// schedules that only cover a phase of a test.
func (t *Transport) SetDisabled(v bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.disabled = v
}

// decide returns the index of the rule to apply to this request, or -1.
func (t *Transport) decide(req *http.Request) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	if t.disabled {
		return -1
	}
	if t.matched == nil {
		t.matched = make([]uint64, len(t.Rules))
	}
	for i := range t.Rules {
		r := &t.Rules[i]
		if r.Match != nil && !r.Match(req) {
			continue
		}
		k := t.matched[i]
		t.matched[i]++
		fire := false
		if r.Every > 0 && (k+1)%uint64(r.Every) == 0 {
			fire = true
		}
		if !fire && r.Prob > 0 && dice(t.Seed, i, k) < r.Prob {
			fire = true
		}
		if fire {
			switch {
			case r.Drop:
				t.stats.Drops++
			case r.Delay > 0:
				t.stats.Delays++
			case r.Status != 0:
				t.stats.Statuses++
			case r.Corrupt:
				t.stats.Corrupts++
			case r.Truncate:
				t.stats.Truncates++
			}
			return i
		}
	}
	return -1
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	ri := t.decide(req)
	if ri < 0 {
		return base.RoundTrip(req)
	}
	r := &t.Rules[ri]
	switch {
	case r.Drop:
		return nil, ErrDropped
	case r.Delay > 0:
		timer := time.NewTimer(r.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case r.Status != 0:
		body := fmt.Sprintf("faultinject: synthesized %d\n", r.Status)
		return &http.Response{
			StatusCode:    r.Status,
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case r.Corrupt, r.Truncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if r.Corrupt && len(body) > 0 {
			body = bytes.Clone(body)
			body[len(body)/2] = 0x00
			resp.Body = io.NopCloser(bytes.NewReader(body))
			return resp, nil
		}
		// Truncate: deliver half the body and then a connection-cut error,
		// so the reader hits io.ErrUnexpectedEOF instead of a clean short
		// document.
		resp.Body = io.NopCloser(io.MultiReader(bytes.NewReader(body[:len(body)/2]), cutReader{}))
		resp.ContentLength = int64(len(body))
		return resp, nil
	default:
		return base.RoundTrip(req)
	}
}

// cutReader simulates the connection dying mid-body.
type cutReader struct{}

func (cutReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

// dice maps (seed, rule, occurrence) to [0, 1) deterministically.
func dice(seed int64, rule int, k uint64) float64 {
	h := fnv.New64a()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:16], uint64(rule))
	binary.LittleEndian.PutUint64(b[16:], k)
	h.Write(b[:])
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
