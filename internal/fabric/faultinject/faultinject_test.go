package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func docServer(t *testing.T) (*httptest.Server, *http.Client, *Transport) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{
  "schema_version": 1,
  "rounds": 12,
  "messages": 3456
}
`)
	}))
	t.Cleanup(ts.Close)
	ft := &Transport{}
	return ts, &http.Client{Transport: ft}, ft
}

func TestEveryFiresDeterministically(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 3, Status: http.StatusServiceUnavailable}}
	var codes []int
	for i := 0; i < 9; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	for i, code := range codes {
		want := http.StatusOK
		if (i+1)%3 == 0 {
			want = http.StatusServiceUnavailable
		}
		if code != want {
			t.Fatalf("request %d: status %d, want %d (codes %v)", i, code, want, codes)
		}
	}
	if st := ft.Stats(); st.Statuses != 3 || st.Requests != 9 {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	ts, _, _ := docServer(t)
	run := func(seed int64) []bool {
		ft := &Transport{Seed: seed, Rules: []Rule{{Prob: 0.4, Status: 503}}}
		client := &http.Client{Transport: ft}
		var fired []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fired = append(fired, resp.StatusCode == 503)
		}
		return fired
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule (suspicious)")
	}
}

func TestDropSurfacesTransportError(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 1, Drop: true}}
	_, err := client.Get(ts.URL)
	if err == nil || !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if st := ft.Stats(); st.Drops != 1 {
		t.Fatalf("stats off: %+v", st)
	}
}

// TestCorruptAlwaysBreaksJSON is the property the fabric's
// validate-then-merge depends on: a corrupted document must fail decoding,
// never parse into silently wrong numbers. The injected 0x00 byte is
// invalid in JSON both inside and outside strings.
func TestCorruptAlwaysBreaksJSON(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 1, Corrupt: true}}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(body, &v); err == nil {
		t.Fatalf("corrupted body still parsed: %q", body)
	}
}

func TestTruncateCausesUnexpectedEOF(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 1, Truncate: true}}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("truncated body read cleanly")
	}
}

func TestDelayHonorsContext(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 1, Delay: 5 * time.Second}}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Do(req.WithContext(ctx))
	if err == nil {
		t.Fatal("delayed request succeeded before the deadline?")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("delay ignored the context: took %v", time.Since(start))
	}
}

func TestMatchScopesRules(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{
		Match: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/run") },
		Every: 1, Status: 503,
	}}
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched request got %d", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("matched request got %d", resp.StatusCode)
	}
}

func TestSetDisabled(t *testing.T) {
	ts, client, ft := docServer(t)
	ft.Rules = []Rule{{Every: 1, Status: 503}}
	ft.SetDisabled(true)
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled transport still injected: %d", resp.StatusCode)
	}
}
