package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
)

// specState is one spec's coordinator-side bookkeeping: the graph-free plan
// fixes the grid shape up front, slots fill as shard documents arrive, and
// the graph header is cross-checked across shards — two replicas reporting
// different graphs for one spec is a determinism violation, not a fault to
// retry around.
type specState struct {
	spec     *scenario.Spec
	plan     *scenario.Plan
	body     []byte // canonical request body, shared by every attempt
	slots    []scenario.SlotOutcome
	have     []bool
	info     scenario.GraphInfo
	haveInfo bool
}

func (st *specState) merge(doc *serve.ShardDoc) error {
	if !st.haveInfo {
		st.info, st.haveInfo = doc.Graph, true
	} else if st.info != doc.Graph {
		return fmt.Errorf("%w: scenario %s: shard %s reports graph %+v, earlier shards reported %+v",
			ErrTerminal, st.spec.Name, doc.Shard, doc.Graph, st.info)
	}
	for _, so := range doc.Slots {
		if st.have[so.Slot] {
			return fmt.Errorf("%w: scenario %s: slot %d delivered twice", ErrTerminal, st.spec.Name, so.Slot)
		}
		st.have[so.Slot] = true
		st.slots[so.Slot] = so
	}
	return nil
}

type taskPhase int

const (
	taskReady    taskPhase = iota // dispatchable now
	taskWaiting                   // backing off until readyAt
	taskInflight                  // one or two attempts running
	taskDone
)

// task is one (spec, shard) unit of work and its retry bookkeeping.
type task struct {
	si       int
	shard    scenario.Shard
	phase    taskPhase
	attempts int // failed attempts so far
	readyAt  time.Time
	started  time.Time // when the current attempt wave began (hedge timing)
	inflight int
	hedged   bool
	cancels  map[int]context.CancelFunc // live attempt id → cancel
}

func (t *task) key() string { return fmt.Sprintf("%d:%s", t.si, t.shard) }

// attemptDone is an attempt goroutine's single report back to the scheduler.
type attemptDone struct {
	t          *task
	rep        *replica // nil for in-process fallback
	id         int
	doc        *serve.ShardDoc
	kind       outcomeKind
	err        error
	retryAfter time.Duration // 429 Retry-After floor, 0 otherwise
}

type probeDone struct {
	rep *replica
	ok  bool
}

type sweepRun struct {
	c      *Coordinator
	states []*specState
	tasks  []*task
	reps   []*replica
	budget int

	events      chan any
	outstanding int
	attemptSeq  int
	remaining   int
	stats       Stats
	err         error
	canceled    bool
}

func (c *Coordinator) newRun(specs []*scenario.Spec) (*sweepRun, error) {
	run := &sweepRun{c: c, events: make(chan any)}
	for si, spec := range specs {
		plan, err := scenario.PlanOf(spec, c.cfg.Seed-1)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		st := &specState{
			spec:  spec,
			plan:  plan,
			body:  body,
			slots: make([]scenario.SlotOutcome, plan.Jobs()),
			have:  make([]bool, plan.Jobs()),
		}
		run.states = append(run.states, st)
		shards := c.cfg.Shards
		if jobs := plan.Jobs(); shards > jobs {
			shards = jobs // no empty shards on the wire
		}
		if shards < 1 {
			shards = 1
		}
		for i := 0; i < shards; i++ {
			run.tasks = append(run.tasks, &task{
				si:      si,
				shard:   scenario.Shard{Index: i, Count: shards},
				cancels: make(map[int]context.CancelFunc),
			})
		}
	}
	for _, url := range c.cfg.Endpoints {
		run.reps = append(run.reps, &replica{url: url})
	}
	run.remaining = len(run.tasks)
	run.stats.Tasks = len(run.tasks)
	run.budget = c.cfg.RetryBudget
	if run.budget <= 0 {
		run.budget = 4 * len(run.tasks)
	}
	return run, nil
}

func (r *sweepRun) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// loop is the scheduler: a single goroutine owning every piece of task and
// replica state. Attempt and probe goroutines only perform I/O and report
// back over the events channel, so there is no locking anywhere, and the
// drain at the end guarantees no goroutine outlives the sweep.
func (r *sweepRun) loop(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	for r.remaining > 0 && r.err == nil {
		now := time.Now()
		for _, t := range r.tasks {
			if t.phase == taskWaiting && !now.Before(t.readyAt) {
				t.phase = taskReady
			}
		}
		r.launchProbes(ctx, now)
		r.dispatch(ctx, now)

		timer := time.NewTimer(r.wake(now))
		select {
		case ev := <-r.events:
			r.outstanding--
			r.handle(ctx, ev)
		case <-timer.C:
		case <-ctx.Done():
			r.canceled = true
			r.fail(ctx.Err())
		}
		timer.Stop()
	}

	// Drain: cancel every live attempt, then wait for each outstanding
	// goroutine's report. After this, the sweep owns no goroutines.
	cancel()
	for r.outstanding > 0 {
		<-r.events
		r.outstanding--
	}
	r.stats.RetryBudget = r.budget
	for _, rep := range r.reps {
		r.stats.Replicas = append(r.stats.Replicas, rep.status())
	}
	return r.err
}

// dispatch hands ready tasks to available replicas, falls back in-process
// when no replica can take work, and hedges stragglers.
func (r *sweepRun) dispatch(ctx context.Context, now time.Time) {
	for _, t := range r.tasks {
		if t.phase != taskReady {
			continue
		}
		if rep := r.pick(nil); rep != nil {
			r.launch(ctx, t, rep)
			continue
		}
		// No replica can take the task. If none will ever recover without a
		// probe cycle and fallback is on, run it here rather than stalling
		// the sweep on a fleet that may be entirely gone.
		if r.c.cfg.Fallback && r.allOpen() {
			r.launchFallback(ctx, t)
		}
	}
	if r.c.cfg.Hedge <= 0 {
		return
	}
	for _, t := range r.tasks {
		if t.phase != taskInflight || t.hedged || t.inflight != 1 {
			continue
		}
		if now.Sub(t.started) < r.c.cfg.Hedge {
			continue
		}
		if rep := r.pick(t); rep != nil {
			t.hedged = true
			r.stats.Hedges++
			r.c.logf("fabric: hedging %s on %s", t.key(), rep.url)
			r.launch(ctx, t, rep)
		}
	}
}

// launch starts one HTTP attempt of t on rep.
func (r *sweepRun) launch(ctx context.Context, t *task, rep *replica) {
	r.attemptSeq++
	id := r.attemptSeq
	st := r.states[t.si]
	actx, acancel := context.WithTimeout(ctx, r.attemptTimeout(st, t.shard))
	t.cancels[id] = acancel
	if t.inflight == 0 {
		t.started = time.Now()
	}
	t.inflight++
	t.phase = taskInflight
	rep.busy++
	rep.attempts++
	r.outstanding++
	r.stats.Attempts++
	go func() {
		defer acancel()
		doc, kind, retryAfter, err := r.c.call(actx, ctx, rep.url, st, t.shard)
		r.events <- attemptDone{t: t, rep: rep, id: id, doc: doc, kind: kind, err: err, retryAfter: retryAfter}
	}()
}

// launchFallback executes t in-process through the exact code path the
// replicas run, so the merged document cannot tell the difference.
func (r *sweepRun) launchFallback(ctx context.Context, t *task) {
	r.attemptSeq++
	id := r.attemptSeq
	st := r.states[t.si]
	actx, acancel := context.WithCancel(ctx)
	t.cancels[id] = acancel
	if t.inflight == 0 {
		t.started = time.Now()
	}
	t.inflight++
	t.phase = taskInflight
	r.outstanding++
	r.stats.Fallbacks++
	r.c.logf("fabric: executing %s in-process (no replica available)", t.key())
	go func() {
		defer acancel()
		doc, _, err := serve.ExecuteShard(st.spec, t.shard, serve.ExecOptions{
			Corpus:     r.c.corpus,
			SeedOffset: r.c.cfg.Seed - 1,
			Parallel:   r.c.cfg.FallbackParallel,
			Context:    actx,
		})
		kind := outcomeOK
		if err != nil {
			// Local execution failures are deterministic (the same spec
			// would fail anywhere) — except a cancellation racing the drain.
			kind = outcomeTerminal
			if actx.Err() != nil {
				kind = outcomeCanceled
			}
		}
		r.events <- attemptDone{t: t, rep: nil, id: id, doc: doc, kind: kind, err: err}
	}()
}

func (r *sweepRun) launchProbes(ctx context.Context, now time.Time) {
	for _, rep := range r.reps {
		if rep.state != breakerOpen || rep.probing || now.Before(rep.probeAt) {
			continue
		}
		rep.probing = true
		r.outstanding++
		r.stats.Probes++
		rep := rep
		go func() {
			ok := r.c.probe(ctx, rep.url)
			r.events <- probeDone{rep: rep, ok: ok}
		}()
	}
}

func (r *sweepRun) handle(ctx context.Context, ev any) {
	switch ev := ev.(type) {
	case probeDone:
		ev.rep.probing = false
		if ev.ok {
			ev.rep.state = breakerHalfOpen
			r.c.logf("fabric: %s half-open after probe", ev.rep.url)
		} else {
			ev.rep.probeAt = time.Now().Add(r.c.cfg.ProbeInterval)
		}
	case attemptDone:
		t := ev.t
		delete(t.cancels, ev.id)
		t.inflight--
		if ev.rep != nil {
			ev.rep.busy--
		}
		if t.phase == taskDone {
			// The loser of a hedge race (or an attempt canceled by the
			// drain). A genuine success still counts toward replica health;
			// a cancellation-induced failure does not count against it.
			if ev.rep != nil && ev.kind == outcomeOK {
				r.noteSuccess(ev.rep)
			}
			return
		}
		switch ev.kind {
		case outcomeOK:
			if ev.rep != nil {
				r.noteSuccess(ev.rep)
			}
			st := r.states[t.si]
			if err := ev.doc.Validate(st.spec.Name, r.c.cfg.Seed, t.shard, st.plan.Jobs()); err != nil {
				// Defense in depth: call already validated; a failure here
				// means the scheduler mismatched task and document.
				r.fail(fmt.Errorf("%w: %v", ErrTerminal, err))
				return
			}
			if err := st.merge(ev.doc); err != nil {
				r.fail(err)
				return
			}
			t.phase = taskDone
			r.remaining--
			for id, cancel := range t.cancels {
				cancel()
				delete(t.cancels, id)
			}
		case outcomeTerminal:
			r.fail(fmt.Errorf("%w: %s: %v", ErrTerminal, t.key(), ev.err))
		case outcomeCanceled:
			if ctx.Err() != nil {
				r.canceled = true
				r.fail(ctx.Err())
				return
			}
			// Not the sweep's context: the attempt's own deadline. Retriable.
			fallthrough
		case outcomeRetriable:
			if ev.rep != nil {
				r.noteFailure(ev.rep)
			}
			if t.inflight > 0 {
				// A hedge partner is still running; let it race.
				return
			}
			t.attempts++
			t.hedged = false
			r.stats.Retries++
			r.c.logf("fabric: %s attempt %d failed: %v", t.key(), t.attempts, ev.err)
			if t.attempts >= r.c.cfg.MaxAttempts || r.stats.Retries > r.budget {
				if r.c.cfg.Fallback {
					r.launchFallback(ctx, t)
					return
				}
				r.fail(fmt.Errorf("%w: %s after %d attempts: %v", ErrExhausted, t.key(), t.attempts, ev.err))
				return
			}
			t.phase = taskWaiting
			t.readyAt = time.Now().Add(r.backoff(t, ev.retryAfter))
		}
	}
}

// wake bounds how long the scheduler sleeps when no event arrives: until
// the next backoff expiry, probe due time or hedge deadline, whichever is
// first. Events (attempt and probe completions) interrupt it anyway.
func (r *sweepRun) wake(now time.Time) time.Duration {
	const idle = 500 * time.Millisecond
	d := idle
	consider := func(at time.Time) {
		if w := at.Sub(now); w < d {
			if w < time.Millisecond {
				w = time.Millisecond
			}
			d = w
		}
	}
	for _, t := range r.tasks {
		switch t.phase {
		case taskWaiting:
			consider(t.readyAt)
		case taskInflight:
			if r.c.cfg.Hedge > 0 && !t.hedged && t.inflight == 1 {
				consider(t.started.Add(r.c.cfg.Hedge))
			}
		}
	}
	for _, rep := range r.reps {
		if rep.state == breakerOpen && !rep.probing {
			consider(rep.probeAt)
		}
	}
	return d
}

// backoff computes the delay before t's next attempt: exponential in the
// attempt count, jittered deterministically by (seed, task, attempt), and
// floored at a replica's Retry-After hint when one was given.
func (r *sweepRun) backoff(t *task, floor time.Duration) time.Duration {
	d := r.c.cfg.BaseBackoff << (t.attempts - 1)
	if d > r.c.cfg.MaxBackoff || d <= 0 {
		d = r.c.cfg.MaxBackoff
	}
	// Jitter into [d/2, d): full jitter trades contention for tail latency;
	// half keeps the expected schedule predictable while still de-phasing
	// simultaneous failures.
	j := jitter(r.c.cfg.BackoffSeed, t.key(), t.attempts)
	d = d/2 + time.Duration(j*float64(d/2))
	if d < floor {
		d = floor
	}
	return d
}
