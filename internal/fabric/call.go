package fabric

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
)

// outcomeKind classifies one attempt for the retry machinery.
type outcomeKind int

const (
	outcomeOK outcomeKind = iota
	// outcomeRetriable: transport error, timeout, 429/5xx, or a response
	// that failed decoding or document validation (corruption, truncation).
	outcomeRetriable
	// outcomeTerminal: the replica deterministically refused the request
	// (400/413/422) — every replica would, so retrying is pointless.
	outcomeTerminal
	// outcomeCanceled: the attempt's context fired. The scheduler decides
	// whether that was the sweep dying (abort) or a local deadline (retry).
	outcomeCanceled
)

// maxErrBodyBytes bounds how much of an error response is read for the
// error message; maxDocBodyBytes bounds a shard document.
const (
	maxErrBodyBytes = 4 << 10
	maxDocBodyBytes = 64 << 20
)

// call issues one shard request and classifies the outcome. actx carries
// the per-attempt timeout; sweepCtx distinguishes "this attempt timed out"
// (retriable) from "the whole sweep is over" (canceled).
func (c *Coordinator) call(actx, sweepCtx context.Context, base string, st *specState, sh scenario.Shard) (*serve.ShardDoc, outcomeKind, time.Duration, error) {
	url := fmt.Sprintf("%s/run?seed=%d&shard=%s", base, c.cfg.Seed, sh)
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(st.body))
	if err != nil {
		return nil, outcomeTerminal, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if sweepCtx.Err() != nil {
			return nil, outcomeCanceled, 0, err
		}
		return nil, outcomeRetriable, 0, err
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxDocBodyBytes))
		if err != nil {
			if sweepCtx.Err() != nil {
				return nil, outcomeCanceled, 0, err
			}
			return nil, outcomeRetriable, 0, fmt.Errorf("reading shard document: %w", err)
		}
		var doc serve.ShardDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return nil, outcomeRetriable, 0, fmt.Errorf("decoding shard document: %w", err)
		}
		if err := doc.Validate(st.spec.Name, c.cfg.Seed, sh, st.plan.Jobs()); err != nil {
			return nil, outcomeRetriable, 0, err
		}
		return &doc, outcomeOK, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// Alive but saturated: back off at least as long as the replica
		// asked for, and do not count it as hard down more than any other
		// failure would.
		var retryAfter time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, outcomeRetriable, retryAfter, fmt.Errorf("replica busy: %s", readErrBody(resp.Body))
	case resp.StatusCode == http.StatusBadRequest,
		resp.StatusCode == http.StatusRequestEntityTooLarge,
		resp.StatusCode == http.StatusUnprocessableEntity:
		return nil, outcomeTerminal, 0, fmt.Errorf("replica answered %d: %s", resp.StatusCode, readErrBody(resp.Body))
	default:
		return nil, outcomeRetriable, 0, fmt.Errorf("replica answered %d: %s", resp.StatusCode, readErrBody(resp.Body))
	}
}

func readErrBody(body io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(body, maxErrBodyBytes))
	return strings.TrimSpace(string(b))
}

// probe asks an open replica's /healthz whether it is worth a trial request
// again. Probe timeouts are short and fixed: a probe is about liveness, not
// capacity.
func (c *Coordinator) probe(ctx context.Context, base string) bool {
	timeout := c.cfg.TimeoutBase
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrBodyBytes))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// attemptTimeout scales the per-attempt deadline by the work the shard
// commissions, using the same estimators the serve layer's admission does:
// slots × (approximate nodes + edges). A tiny shard fails fast; a huge one
// is not declared dead while legitimately computing.
func (r *sweepRun) attemptTimeout(st *specState, sh scenario.Shard) time.Duration {
	per := int64(st.spec.Graph.ApproxNodes()) + int64(st.spec.Graph.ApproxEdges())
	units := int64(sh.Size(st.plan.Jobs())) * per
	d := r.c.cfg.TimeoutBase + time.Duration(units)*r.c.cfg.TimeoutPerUnit
	if d > r.c.cfg.TimeoutMax || d <= 0 {
		d = r.c.cfg.TimeoutMax
	}
	return d
}

// jitter maps (seed, key, attempt) to a fraction in [0, 1) through FNV-1a
// plus a splitmix64 finalizer. Deterministic on purpose: a replayed sweep
// under the same fault schedule issues the same backoff schedule, which is
// what lets the chaos tests assert exact retry behaviour.
func jitter(seed int64, key string, attempt int) float64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(attempt))
	h.Write(b[:])
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
